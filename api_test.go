package wsgossip_test

import (
	"context"
	"encoding/xml"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wsgossip"
	"wsgossip/internal/clock"
	"wsgossip/internal/soap"
)

type apiPayload struct {
	XMLName xml.Name `xml:"urn:apitest Event"`
	Value   int      `xml:"Value"`
}

type apiApp struct {
	mu     sync.Mutex
	values []int
}

func (a *apiApp) HandleSOAP(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var p apiPayload
	if err := req.Envelope.DecodeBody(&p); err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.values = append(a.values, p.Value)
	return nil, nil
}

func (a *apiApp) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.values)
}

// TestPublicAPIEndToEnd drives a complete WS-Gossip deployment exclusively
// through the public wsgossip package.
func TestPublicAPIEndToEnd(t *testing.T) {
	ctx := context.Background()
	bus := soap.NewMemBus()

	coordinator := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(3)),
		Params: func(n int) (int, int) {
			_, hops := wsgossip.DefaultParamPolicy(n)
			return 5, hops
		},
	})
	bus.Register("mem://coordinator", coordinator.Handler())

	const services = 24
	apps := make([]*apiApp, services)
	for i := 0; i < services; i++ {
		addr := fmt.Sprintf("mem://svc%02d", i)
		apps[i] = &apiApp{}
		d, err := wsgossip.NewDisseminator(wsgossip.DisseminatorConfig{
			Address: addr, Caller: bus, App: apps[i],
			RNG: rand.New(rand.NewSource(int64(i) + 10)),
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, d.Handler())
		if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", addr, wsgossip.RoleDisseminator); err != nil {
			t.Fatal(err)
		}
	}
	consumerApp := &apiApp{}
	bus.Register("mem://consumer", wsgossip.NewConsumer(consumerApp).Handler())
	if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", "mem://consumer", wsgossip.RoleConsumer); err != nil {
		t.Fatal(err)
	}

	initiator, err := wsgossip.NewInitiator(wsgossip.InitiatorConfig{
		Address: "mem://init", Caller: bus, Activation: "mem://coordinator",
	})
	if err != nil {
		t.Fatal(err)
	}
	interaction, err := initiator.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const events = 5
	for e := 0; e < events; e++ {
		if _, _, err := initiator.Notify(ctx, interaction, apiPayload{Value: e}); err != nil {
			t.Fatal(err)
		}
	}
	full := 0
	for _, app := range apps {
		if app.count() == events {
			full++
		}
	}
	if full < services-2 {
		t.Fatalf("only %d/%d services received the complete stream", full, services)
	}
	if consumerApp.count() < events {
		t.Fatalf("consumer received %d/%d", consumerApp.count(), events)
	}
	if got := len(coordinator.Subscribers()); got != services+1 {
		t.Fatalf("subscribers = %d", got)
	}
}

// TestPublicAPIAggregation drives an aggregation exclusively through the
// public wsgossip package: coordinator, 16 aggregate services, one querier.
func TestPublicAPIAggregation(t *testing.T) {
	ctx := context.Background()
	bus := soap.NewMemBus()
	coordinator := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(21)),
	})
	bus.Register("mem://coordinator", coordinator.Handler())

	const services = 16
	svcs := make([]*wsgossip.AggregateService, services)
	sum := 0.0
	for i := 0; i < services; i++ {
		addr := fmt.Sprintf("mem://agg%02d", i)
		v := float64(i + 1)
		sum += v
		svc, err := wsgossip.NewAggregateService(wsgossip.AggregateServiceConfig{
			Address: addr, Caller: bus,
			Value: func() float64 { return v },
			RNG:   rand.New(rand.NewSource(int64(i) + 30)),
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, svc.Handler())
		svcs[i] = svc
		if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", addr,
			wsgossip.RoleDisseminator, wsgossip.ProtocolAggregate); err != nil {
			t.Fatal(err)
		}
	}
	querier, err := wsgossip.NewQuerier(wsgossip.QuerierConfig{
		Address: "mem://querier", Caller: bus, Activation: "mem://coordinator",
		RNG: rand.New(rand.NewSource(99)),
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://querier", querier.Handler())
	if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", "mem://querier",
		wsgossip.RoleDisseminator, wsgossip.ProtocolAggregate); err != nil {
		t.Fatal(err)
	}

	task, err := querier.StartAggregation(ctx, wsgossip.FuncAvg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < task.Params.MaxRounds && !querier.Converged(task.ID); r++ {
		for _, svc := range svcs {
			svc.Tick(ctx)
		}
		querier.Tick(ctx)
	}
	est, ok := querier.Estimate(task.ID)
	if !ok {
		t.Fatal("no estimate")
	}
	truth := sum / services
	if diff := est - truth; diff > truth*0.01 || diff < -truth*0.01 {
		t.Fatalf("estimate %.4f vs truth %.4f beyond 1%%", est, truth)
	}
}

func TestEpidemicHelpers(t *testing.T) {
	cov, err := wsgossip.ExpectedCoverage(1000, 3, 14)
	if err != nil {
		t.Fatal(err)
	}
	if cov < 0.9 || cov > 1 {
		t.Fatalf("coverage = %v", cov)
	}
	r, err := wsgossip.RoundsForCoverage(1000, 4, 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r < 4 || r > 30 {
		t.Fatalf("rounds = %d", r)
	}
	f, h := wsgossip.DefaultParamPolicy(256)
	if f != 3 || h != 10 {
		t.Fatalf("policy = (%d, %d)", f, h)
	}
	gamma, err := wsgossip.PushSumContraction(256, 3)
	if err != nil || gamma <= 0 || gamma >= 1 {
		t.Fatalf("contraction = %v, %v", gamma, err)
	}
	pr, err := wsgossip.PushSumRoundsToEpsilon(256, 3, 1e-4)
	if err != nil || pr < 5 || pr > 40 {
		t.Fatalf("push-sum rounds = %d, %v", pr, err)
	}
}

// TestPublicAPIRunner drives the aggregation flow through the exported
// Runner on a virtual clock: exchange rounds fire from each participant's
// own self-clocking loops, the test only advances time.
func TestPublicAPIRunner(t *testing.T) {
	ctx := context.Background()
	bus := soap.NewMemBus()
	vc := clock.NewVirtual()
	coordinator := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(77)),
	})
	bus.Register("mem://coordinator", coordinator.Handler())

	const (
		services = 12
		period   = 50 * time.Millisecond
	)
	var runners []*wsgossip.Runner
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	startRunner := func(svc interface{ Tick(context.Context) }, seed int64) {
		t.Helper()
		r, err := wsgossip.NewRunner(wsgossip.RunnerConfig{
			Clock:          vc,
			RNG:            rand.New(rand.NewSource(seed)),
			Aggregator:     svc,
			AggregateEvery: period,
			JitterFrac:     0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(ctx); err != nil {
			t.Fatal(err)
		}
		runners = append(runners, r)
	}
	sum := 0.0
	for i := 0; i < services; i++ {
		addr := fmt.Sprintf("mem://run%02d", i)
		v := float64(i + 1)
		sum += v
		svc, err := wsgossip.NewAggregateService(wsgossip.AggregateServiceConfig{
			Address: addr, Caller: bus,
			Value: func() float64 { return v },
			RNG:   rand.New(rand.NewSource(int64(i) + 60)),
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, svc.Handler())
		if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", addr,
			wsgossip.RoleDisseminator, wsgossip.ProtocolAggregate); err != nil {
			t.Fatal(err)
		}
		startRunner(svc, int64(i)+600)
	}
	querier, err := wsgossip.NewQuerier(wsgossip.QuerierConfig{
		Address: "mem://querier", Caller: bus, Activation: "mem://coordinator",
		RNG: rand.New(rand.NewSource(66)),
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://querier", querier.Handler())
	if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", "mem://querier",
		wsgossip.RoleDisseminator, wsgossip.ProtocolAggregate); err != nil {
		t.Fatal(err)
	}
	startRunner(querier, 666)

	task, err := querier.StartAggregation(ctx, wsgossip.FuncAvg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < task.Params.MaxRounds && !querier.Converged(task.ID); r++ {
		vc.Advance(period) // rounds fire from the runners, not the test
	}
	if !querier.Converged(task.ID) {
		t.Fatal("self-clocked aggregation did not converge within the round budget")
	}
	est, ok := querier.Estimate(task.ID)
	if !ok {
		t.Fatal("no estimate")
	}
	truth := sum / services
	if diff := est - truth; diff > truth*0.01 || diff < -truth*0.01 {
		t.Fatalf("estimate %.4f vs truth %.4f beyond 1%%", est, truth)
	}
}

// apiRefuser fails every send with a connection error and answers no calls;
// it stands in for a broken direct link in the prober test below.
type apiRefuser struct{}

func (apiRefuser) Call(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
	return nil, fmt.Errorf("refused")
}
func (apiRefuser) Send(context.Context, string, *soap.Envelope) error {
	return fmt.Errorf("refused")
}

// TestPublicAPIFaultTolerance drives the asymmetric-failure surface through
// the public package: a parsed fault plan applied to a fault table, and a
// prober whose helperless round escalates to the down callback.
func TestPublicAPIFaultTolerance(t *testing.T) {
	plan, err := wsgossip.ParseFaultPlan("0ms refuse a->b name=oneway\n10ms heal oneway\n")
	if err != nil {
		t.Fatal(err)
	}
	tbl := wsgossip.NewFaultTable()
	clk := clock.NewVirtual()
	if err := plan.Schedule(clk, wsgossip.FaultApplier{Table: tbl}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(0)
	if d := tbl.Check("a", "b"); d.Outcome.String() != "refuse" {
		t.Fatalf("outcome = %v", d.Outcome)
	}
	if d := tbl.Check("b", "a"); d.Outcome.String() != "deliver" {
		t.Fatalf("reverse direction = %v, want deliver (the fault is asymmetric)", d.Outcome)
	}
	clk.Advance(10 * time.Millisecond)
	if d := tbl.Check("a", "b"); d.Outcome.String() != "deliver" {
		t.Fatalf("after heal = %v", d.Outcome)
	}
	if tbl.Counts()["oneway"] != 1 {
		t.Fatalf("counts = %v", tbl.Counts())
	}

	var down []string
	prober := wsgossip.NewProber(wsgossip.ProberConfig{
		Self:   "urn:self",
		Caller: apiRefuser{},
		Clock:  clk,
		OnDown: func(addr string) { down = append(down, addr) },
	})
	prober.Confirm("urn:peer") // no helpers: immediate confirmed-down
	if len(down) != 1 || down[0] != "urn:peer" {
		t.Fatalf("down = %v", down)
	}
	if st := prober.Stats(); st.NoHelpers != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
