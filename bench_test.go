// Benchmarks regenerating every experiment of DESIGN.md §4 — one bench per
// table/figure (E0–E8, A1, A2) — plus micro-benchmarks of the hot paths.
// The experiment benches run the same code as cmd/wsgossip-bench in quick
// mode and report headline metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the shape of every result.
package wsgossip_test

import (
	"context"
	"encoding/xml"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"wsgossip/internal/experiments"
	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/soap"
	"wsgossip/internal/transport"
	"wsgossip/internal/wsa"
)

func runExperiment(b *testing.B, run func(experiments.Options) ([]experiments.Table, error)) []experiments.Table {
	b.Helper()
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = run(experiments.Options{Seed: int64(i + 1), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

func cellMetric(b *testing.B, t experiments.Table, row, col int, name string) {
	b.Helper()
	if row < 0 {
		row += len(t.Rows)
	}
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(t.Rows[row][col], "%"), 64)
	if err != nil {
		return
	}
	b.ReportMetric(v, name)
}

// BenchmarkE0_Figure1Flow regenerates the paper's Figure 1 dissemination.
func BenchmarkE0_Figure1Flow(b *testing.B) {
	tables := runExperiment(b, experiments.E0Figure1)
	_ = tables
}

// BenchmarkE1_Scalability regenerates the latency/rounds-vs-N table.
func BenchmarkE1_Scalability(b *testing.B) {
	tables := runExperiment(b, experiments.E1Scalability)
	cellMetric(b, tables[0], -1, 2, "rounds@maxN")
	cellMetric(b, tables[0], -1, 6, "msgs/node@maxN")
}

// BenchmarkE2_FanoutCoverage regenerates the coverage-vs-fanout table.
func BenchmarkE2_FanoutCoverage(b *testing.B) {
	tables := runExperiment(b, experiments.E2FanoutCoverage)
	cellMetric(b, tables[0], 2, 1, "coverage@f3")
	cellMetric(b, tables[0], -1, 1, "coverage@f8")
}

// BenchmarkE3_Resilience regenerates the crash/loss resilience tables.
func BenchmarkE3_Resilience(b *testing.B) {
	tables := runExperiment(b, experiments.E3Resilience)
	cellMetric(b, tables[0], -1, 1, "push-cov@50pct-crash")
	cellMetric(b, tables[1], -1, 2, "pushpull-cov@40pct-loss")
}

// BenchmarkE4_Throughput regenerates the perturbation-throughput table.
func BenchmarkE4_Throughput(b *testing.B) {
	tables := runExperiment(b, experiments.E4Throughput)
	cellMetric(b, tables[0], -1, 1, "pbcast-msg/s@25pct")
	cellMetric(b, tables[0], -1, 3, "ackmc-msg/s@25pct")
}

// BenchmarkE5_Load regenerates the per-node load table.
func BenchmarkE5_Load(b *testing.B) {
	tables := runExperiment(b, experiments.E5Load)
	cellMetric(b, tables[0], -1, 1, "gossip-sends/node@maxN")
}

// BenchmarkE6_ParameterTable regenerates the (f, r) configuration grid.
func BenchmarkE6_ParameterTable(b *testing.B) {
	tables := runExperiment(b, experiments.E6ParameterTable)
	cellMetric(b, tables[0], -1, 4, "model-error@last-cell")
}

// BenchmarkE7_Overhead regenerates the middleware-overhead table.
func BenchmarkE7_Overhead(b *testing.B) {
	tables := runExperiment(b, experiments.E7Overhead)
	cellMetric(b, tables[0], 0, 1, "encode-ns")
	cellMetric(b, tables[0], 1, 1, "decode-ns")
}

// BenchmarkE8_DistCoordinator regenerates the distributed-coordinator table.
func BenchmarkE8_DistCoordinator(b *testing.B) {
	tables := runExperiment(b, experiments.E8DistributedCoordinator)
	cellMetric(b, tables[0], -1, 5, "replications@k8")
}

// BenchmarkA1_Styles regenerates the gossip-style ablation.
func BenchmarkA1_Styles(b *testing.B) {
	tables := runExperiment(b, experiments.A1Styles)
	cellMetric(b, tables[0], 0, 1, "push-coverage")
}

// BenchmarkA2_Dedup regenerates the seen-cache sizing ablation.
func BenchmarkA2_Dedup(b *testing.B) {
	tables := runExperiment(b, experiments.A2DedupCache)
	cellMetric(b, tables[0], 0, 1, "redeliveries@cache16")
}

// ---- Micro-benchmarks of hot paths ----

type benchBody struct {
	XMLName xml.Name `xml:"urn:bench Payload"`
	Data    string   `xml:"Data"`
}

func benchEnvelope(b *testing.B) *soap.Envelope {
	b.Helper()
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To: "mem://x", Action: "urn:bench:op", MessageID: wsa.NewMessageID(),
	}); err != nil {
		b.Fatal(err)
	}
	if err := env.SetBody(benchBody{Data: strings.Repeat("x", 1024)}); err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkSOAPEncode measures envelope serialization (1 KiB body).
func BenchmarkSOAPEncode(b *testing.B) {
	env := benchEnvelope(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSOAPDecode measures envelope parsing (1 KiB body).
func BenchmarkSOAPDecode(b *testing.B) {
	env := benchEnvelope(b)
	data, err := env.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := soap.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePublish measures one rumor publish + full dissemination
// over a 64-node simulated cluster (per-op cost of a whole epidemic).
func BenchmarkEnginePublish(b *testing.B) {
	const n = 64
	net := simnet.New(simnet.DefaultConfig(1))
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "n" + strconv.Itoa(i)
	}
	peers := gossip.NewStaticPeers(addrs)
	engines := make([]*gossip.Engine, n)
	for i := range addrs {
		eng, err := gossip.New(gossip.Config{
			Style: gossip.StylePush, Fanout: 3, Hops: 8,
			Endpoint: net.Node(addrs[i]), Peers: peers,
			RNG: rand.New(rand.NewSource(int64(i))),
		})
		if err != nil {
			b.Fatal(err)
		}
		mux := transport.NewMux()
		eng.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		engines[i] = eng
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engines[i%n].Publish(ctx, []byte("payload")); err != nil {
			b.Fatal(err)
		}
		net.Run()
	}
}

// BenchmarkSamplePeers measures peer sampling from a 1k-node view.
func BenchmarkSamplePeers(b *testing.B) {
	addrs := make([]string, 1000)
	for i := range addrs {
		addrs[i] = "n" + strconv.Itoa(i)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gossip.SamplePeers(rng, addrs, 4, "n0")
	}
}

// BenchmarkSeenSet measures the dedup fast path.
func BenchmarkSeenSet(b *testing.B) {
	s := gossip.NewSeenSet(1 << 16)
	ids := make([]string, 1024)
	for i := range ids {
		ids[i] = "id-" + strconv.Itoa(i)
		s.Add(ids[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(ids[i%len(ids)])
	}
}

// BenchmarkA3_Assignment regenerates the target-assignment ablation.
func BenchmarkA3_Assignment(b *testing.B) {
	tables := runExperiment(b, experiments.A3TargetAssignment)
	cellMetric(b, tables[0], 0, 1, "balanced-delivery")
}

// BenchmarkE9_Churn regenerates the dissemination-under-churn table.
func BenchmarkE9_Churn(b *testing.B) {
	tables := runExperiment(b, experiments.E9Churn)
	cellMetric(b, tables[0], 1, 2, "coverage@churn")
}
