// Command wsgossip-bench regenerates every experiment table (E0–E10 plus
// the A1–A3 ablations). Each table maps to one claim of the paper; the IDs
// and expected shapes are documented in EXPERIMENTS.md.
//
// Usage:
//
//	wsgossip-bench                 # run everything at full size
//	wsgossip-bench -exp e3         # one experiment (e0..e10, a1..a3)
//	wsgossip-bench -quick          # reduced sizes (CI)
//	wsgossip-bench -seed 42        # change the reproducibility seed
//	wsgossip-bench -list           # list experiment IDs
//	wsgossip-bench -cpuprofile cpu.pprof -memprofile mem.pprof
//	                               # profile the run (inspect with go tool pprof)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"wsgossip/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wsgossip-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment id (e0..e10, a1..a3) or 'all'")
		seed       = flag.Int64("seed", 1, "reproducibility seed")
		quick      = flag.Bool("quick", false, "reduced problem sizes")
		list       = flag.Bool("list", false, "list experiments and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Description)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wsgossip-bench: create mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "wsgossip-bench: write mem profile:", err)
			}
		}()
	}

	opt := experiments.Options{Seed: *seed, Quick: *quick}
	start := time.Now()
	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		e, err := experiments.Find(*exp)
		if err != nil {
			return err
		}
		toRun = []experiments.Experiment{e}
	}
	for _, e := range toRun {
		tables, err := e.Run(opt)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
	fmt.Printf("completed in %v (seed=%d quick=%v)\n", time.Since(start).Round(time.Millisecond), *seed, *quick)
	return nil
}
