// Command wsgossip-node runs one WS-Gossip node over real SOAP 1.2 / HTTP in
// any of the paper's four roles.
//
// A minimal cluster on one machine:
//
//	wsgossip-node -role coordinator -listen :8070 &
//	wsgossip-node -role disseminator -listen :8071 -coordinator http://localhost:8070/ &
//	wsgossip-node -role disseminator -listen :8072 -coordinator http://localhost:8070/ &
//	wsgossip-node -role consumer     -listen :8073 -coordinator http://localhost:8070/ &
//	wsgossip-node -role initiator -coordinator http://localhost:8070/ -message "hello gossip"
//
// Disseminators and consumers print every notification they deliver.
package main

import (
	"context"
	"encoding/xml"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wsgossip/internal/core"
	"wsgossip/internal/gossip"
	"wsgossip/internal/soap"
)

// noteBody is the demonstration notification payload.
type noteBody struct {
	XMLName xml.Name `xml:"urn:wsgossip:demo Note"`
	Text    string   `xml:"Text"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wsgossip-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role        = flag.String("role", "", "coordinator | disseminator | consumer | initiator")
		listen      = flag.String("listen", ":8070", "listen address (server roles)")
		public      = flag.String("public", "", "public base URL of this node (default http://<listen>/)")
		coordinator = flag.String("coordinator", "", "coordinator base URL (non-coordinator roles)")
		message     = flag.String("message", "hello from wsgossip", "notification text (initiator)")
		count       = flag.Int("count", 1, "notifications to send (initiator)")
		style       = flag.String("style", "push", "dissemination style handed to registrants: push or lazypush (coordinator)")
		repair      = flag.Duration("repair", 0, "anti-entropy digest interval, 0 disables (disseminator)")
	)
	flag.Parse()

	client := soap.NewHTTPClient(&http.Client{Timeout: 10 * time.Second})
	switch *role {
	case "coordinator":
		return runCoordinator(*listen, *public, *style)
	case "disseminator", "consumer":
		if *coordinator == "" {
			return fmt.Errorf("-coordinator is required for role %s", *role)
		}
		return runSubscriber(*role, *listen, *public, *coordinator, *repair, client)
	case "initiator":
		if *coordinator == "" {
			return fmt.Errorf("-coordinator is required for role initiator")
		}
		return runInitiator(*coordinator, *message, *count, client)
	default:
		return fmt.Errorf("unknown role %q (want coordinator, disseminator, consumer, or initiator)", *role)
	}
}

func publicURL(public, listen string) string {
	if public != "" {
		return public
	}
	host, port, err := net.SplitHostPort(listen)
	if err != nil || host == "" {
		host = "localhost"
	}
	if err == nil {
		return fmt.Sprintf("http://%s:%s/", host, port)
	}
	return "http://localhost" + listen + "/"
}

func serve(listen string, handler soap.Handler) error {
	srv := &http.Server{
		Addr:              listen,
		Handler:           soap.NewHTTPServer(handler),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

func runCoordinator(listen, public, styleName string) error {
	style, err := gossip.ParseStyle(styleName)
	if err != nil {
		return err
	}
	if style != gossip.StylePush && style != gossip.StyleLazyPush {
		return fmt.Errorf("coordinator style must be push or lazypush, got %s", style)
	}
	addr := publicURL(public, listen)
	coord := core.NewCoordinator(core.CoordinatorConfig{Address: addr, Style: style})
	log.Printf("coordinator serving at %s (listen %s, style %s)", addr, listen, style)
	return serve(listen, coord.Handler())
}

// printingApp logs every notification body.
type printingApp struct {
	role string
}

func (p *printingApp) HandleSOAP(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var note noteBody
	if err := req.Envelope.DecodeBody(&note); err != nil {
		log.Printf("[%s] notification with unreadable body: %v", p.role, err)
		return nil, nil
	}
	log.Printf("[%s] delivered: %q (message %s)", p.role, note.Text, req.Addressing.MessageID)
	return nil, nil
}

func runSubscriber(role, listen, public, coordinator string, repair time.Duration, client *soap.HTTPClient) error {
	addr := publicURL(public, listen)
	app := &printingApp{role: role}
	var handler soap.Handler
	subscribedRole := core.RoleConsumer
	if role == "disseminator" {
		d, err := core.NewDisseminator(core.DisseminatorConfig{
			Address: addr,
			Caller:  client,
			App:     app,
		})
		if err != nil {
			return err
		}
		handler = d.Handler()
		subscribedRole = core.RoleDisseminator
		if repair > 0 {
			ticker := time.NewTicker(repair)
			defer ticker.Stop()
			done := make(chan struct{})
			defer close(done)
			go func() {
				for {
					select {
					case <-ticker.C:
						d.TickRepair(context.Background())
					case <-done:
						return
					}
				}
			}()
			log.Printf("[%s] anti-entropy repair every %v", role, repair)
		}
	} else {
		handler = core.NewConsumer(app).Handler()
	}
	// Subscribe once the server is up; retry briefly to tolerate start order.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for {
			err := core.SubscribeClient(ctx, client, coordinator, addr, subscribedRole)
			if err == nil {
				log.Printf("[%s] subscribed %s at %s", role, addr, coordinator)
				return
			}
			log.Printf("[%s] subscribe retry: %v", role, err)
			select {
			case <-ctx.Done():
				log.Printf("[%s] subscription failed permanently", role)
				return
			case <-time.After(time.Second):
			}
		}
	}()
	log.Printf("%s serving at %s (listen %s)", role, addr, listen)
	return serve(listen, handler)
}

func runInitiator(coordinator, message string, count int, client *soap.HTTPClient) error {
	init, err := core.NewInitiator(core.InitiatorConfig{
		Address:    "urn:wsgossip:initiator",
		Caller:     client,
		Activation: coordinator,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		return err
	}
	log.Printf("interaction %s: fanout=%d hops=%d targets=%v",
		inter.Context.Identifier, inter.Params.Fanout, inter.Params.Hops, inter.Params.Targets)
	for i := 0; i < count; i++ {
		text := message
		if count > 1 {
			text = fmt.Sprintf("%s [%d/%d]", message, i+1, count)
		}
		msgID, sent, err := init.Notify(ctx, inter, noteBody{Text: text})
		if err != nil {
			return err
		}
		log.Printf("notified %d targets (message %s)", sent, msgID)
	}
	return nil
}
