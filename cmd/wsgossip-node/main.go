// Command wsgossip-node runs one WS-Gossip node over real SOAP 1.2 / HTTP in
// any of the paper's four roles.
//
// A minimal cluster on one machine:
//
//	wsgossip-node -role coordinator -listen :8070 &
//	wsgossip-node -role disseminator -listen :8071 -coordinator http://localhost:8070/ &
//	wsgossip-node -role disseminator -listen :8072 -coordinator http://localhost:8070/ &
//	wsgossip-node -role consumer     -listen :8073 -coordinator http://localhost:8070/ &
//	wsgossip-node -role initiator -coordinator http://localhost:8070/ -message "hello gossip"
//
// Disseminators and consumers print every notification they deliver.
package main

import (
	"context"
	"encoding/xml"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/clock"
	"wsgossip/internal/core"
	"wsgossip/internal/delivery"
	"wsgossip/internal/gossip"
	"wsgossip/internal/membership"
	"wsgossip/internal/metrics"
	"wsgossip/internal/obs"
	"wsgossip/internal/probe"
	"wsgossip/internal/soap"
	"wsgossip/internal/transport"
)

// noteBody is the demonstration notification payload.
type noteBody struct {
	XMLName xml.Name `xml:"urn:wsgossip:demo Note"`
	Text    string   `xml:"Text"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wsgossip-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role        = flag.String("role", "", "coordinator | disseminator | consumer | initiator")
		listen      = flag.String("listen", ":8070", "listen address (server roles)")
		public      = flag.String("public", "", "public base URL of this node (default http://<listen>/)")
		coordinator = flag.String("coordinator", "", "coordinator base URL (non-coordinator roles)")
		message     = flag.String("message", "hello from wsgossip", "notification text (initiator)")
		count       = flag.Int("count", 1, "notifications to send (initiator)")
		style       = flag.String("style", "push", "dissemination style handed to registrants: push or lazypush (coordinator)")
		pull        = flag.Duration("pull", 0, "WS-PullGossip round interval, 0 disables (disseminator)")
		repair      = flag.Duration("repair", 2*time.Second, "anti-entropy digest interval, 0 disables (disseminator)")
		announce    = flag.Duration("announce", 0, "deferred lazy-push announce interval, 0 announces on receipt (disseminator)")
		aggEvery    = flag.Duration("aggregate", time.Second, "push-sum exchange interval when -value is set (disseminator)")
		value       = flag.Float64("value", math.NaN(), "local measurement: joins aggregation interactions as a participant (disseminator)")
		clusterQ    = flag.String("cluster-queries", "", "comma-separated continuous cluster queries as func:metric pairs (e.g. count:nodes,avg:load): runs this node as the querier restarting each query every -cluster-window; participants resolve the metric name against their local value sources, falling back to -value (disseminator)")
		clusterWin  = flag.Duration("cluster-window", 10*time.Second, "epoch window for -cluster-queries; every node re-contributes at each window boundary so estimates track churn (disseminator)")
		jitter      = flag.Float64("jitter", 0.1, "round jitter as a fraction of each period, in [0,1) (disseminator)")
		seed        = flag.Int64("seed", 0, "round-schedule seed, 0 derives one from the address (disseminator)")
		members     = flag.String("members", "", "comma-separated membership seed URLs: runs a live peer view that fan-outs sample instead of coordinator target lists (disseminator)")
		memberEvery = flag.Duration("membership", time.Second, "membership view-exchange interval when -members is set (disseminator)")
		quiescent   = flag.Duration("quiescent-max", 0, "adaptive pacing cap: pull/repair/aggregate rounds back off toward this period while idle, 0 keeps them fixed (disseminator)")
		activityTTL = flag.Duration("activity-ttl", 0, "default expiry stamped on coordination activities, 0 = never (coordinator)")
		pruneEvery  = flag.Duration("prune", 0, "activity-expiry pruning round interval, 0 disables (coordinator)")
		metricsAddr = flag.String("metrics-addr", "", "extra listen address dedicated to /metrics and /healthz; they are always also served on -listen (server roles)")
		deliver     = flag.Bool("delivery", false, "route outbound gossip through the failure-aware delivery plane: per-peer queues, retries with backoff, circuit breaking (disseminator, initiator)")
		delTries    = flag.Int("delivery-attempts", 0, "per-message attempt budget on the delivery plane, 0 = default 4 (disseminator, initiator)")
		delTimeout  = flag.Duration("delivery-timeout", 0, "per-attempt send timeout on the delivery plane, 0 = default 2s (disseminator, initiator)")
		brkThresh   = flag.Int("breaker-threshold", 0, "consecutive failures that open a peer's circuit, 0 = default 5 (disseminator, initiator)")
		brkCooldown = flag.Duration("breaker-cooldown", 0, "open-circuit cooldown before a half-open probe, 0 = default 5s (disseminator, initiator)")
		probeK      = flag.Int("probe-k", 3, "helpers asked to confirm a suspect indirectly before it is declared down; needs -delivery and -members, negative asks every helper, 0 disables indirect probing (disseminator)")
		probeWait   = flag.Duration("probe-timeout", 0, "indirect-probe round deadline, 0 = default 2s (disseminator)")
		admitRate   = flag.Float64("admit-rate", 0, "inbound admission rate in requests/second: excess requests are shed with a retry-after fault senders honor, 0 disables (disseminator)")
		admitBurst  = flag.Int("admit-burst", 0, "admission token-bucket depth, 0 = max(1, -admit-rate) (disseminator)")
	)
	flag.Parse()
	df := deliveryFlags{
		enabled: *deliver, attempts: *delTries, timeout: *delTimeout,
		threshold: *brkThresh, cooldown: *brkCooldown,
	}

	client := soap.NewHTTPClient(&http.Client{Timeout: 10 * time.Second})
	switch *role {
	case "coordinator":
		return runCoordinator(*listen, *public, *style, *activityTTL, *pruneEvery, *metricsAddr)
	case "disseminator", "consumer":
		if *coordinator == "" {
			return fmt.Errorf("-coordinator is required for role %s", *role)
		}
		cfg := subscriberConfig{
			role: *role, listen: *listen, public: *public, coordinator: *coordinator,
			pull: *pull, repair: *repair, announce: *announce,
			aggEvery: *aggEvery, value: *value, jitter: *jitter, seed: *seed,
			clusterQueries: *clusterQ, clusterWindow: *clusterWin,
			members: *members, memberEvery: *memberEvery, quiescent: *quiescent,
			metricsAddr:  *metricsAddr,
			delivery:     df,
			probeK:       *probeK,
			probeTimeout: *probeWait,
			admitRate:    *admitRate,
			admitBurst:   *admitBurst,
		}
		return runSubscriber(cfg, client)
	case "initiator":
		if *coordinator == "" {
			return fmt.Errorf("-coordinator is required for role initiator")
		}
		return runInitiator(*coordinator, *message, *count, client, df)
	default:
		return fmt.Errorf("unknown role %q (want coordinator, disseminator, consumer, or initiator)", *role)
	}
}

// deliveryFlags carries the -delivery* flag values to the roles that build a
// failure-aware outbound plane. Zero fields fall back to delivery.Config
// defaults.
type deliveryFlags struct {
	enabled   bool
	attempts  int
	timeout   time.Duration
	threshold int
	cooldown  time.Duration
}

// newPlane wraps caller in a delivery.Plane configured from the flags.
// onDown, when non-nil, runs on each closed → open circuit transition;
// onUp on each open → closed recovery.
func (f deliveryFlags) newPlane(caller soap.Caller, clk clock.Clock, rng *rand.Rand, reg *metrics.Registry, onDown, onUp func(addr string)) *delivery.Plane {
	return delivery.NewPlane(delivery.Config{
		Caller:           caller,
		Clock:            clk,
		RNG:              rng,
		Metrics:          reg,
		MaxAttempts:      f.attempts,
		AttemptTimeout:   f.timeout,
		BreakerThreshold: f.threshold,
		BreakerCooldown:  f.cooldown,
		OnPeerDown:       onDown,
		OnPeerUp:         onUp,
	})
}

// drainPlane waits until the plane's queues and in-flight window are empty,
// so a short-lived role does not exit with retries still pending. Returns
// false when the timeout expired with work outstanding.
func drainPlane(p *delivery.Plane, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		st := p.Stats()
		if st.Queued == 0 && st.Inflight == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func publicURL(public, listen string) string {
	if public != "" {
		return public
	}
	host, port, err := net.SplitHostPort(listen)
	if err != nil || host == "" {
		host = "localhost"
	}
	if err == nil {
		return fmt.Sprintf("http://%s:%s/", host, port)
	}
	return "http://localhost" + listen + "/"
}

// serve runs the node's SOAP endpoint with the observability endpoints
// (/metrics, /healthz) mounted on the same binding; a non-empty metricsAddr
// additionally serves them on a dedicated listener, the usual arrangement
// when the scrape port must stay off the service port.
func serve(listen string, handler soap.Handler, reg *metrics.Registry, health func() obs.Health, metricsAddr string) error {
	var root http.Handler = soap.NewHTTPServer(handler)
	if reg != nil {
		root = obs.Mount(root, reg, health)
	}
	srv := &http.Server{
		Addr:              listen,
		Handler:           root,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 2)
	go func() { errCh <- srv.ListenAndServe() }()
	var msrv *http.Server
	if reg != nil && metricsAddr != "" {
		msrv = &http.Server{
			Addr:              metricsAddr,
			Handler:           obs.Handler(reg, health),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { errCh <- msrv.ListenAndServe() }()
		log.Printf("metrics at http://%s/metrics (health at /healthz)", metricsAddr)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if msrv != nil {
			_ = msrv.Shutdown(ctx)
		}
		return srv.Shutdown(ctx)
	}
	select {
	case err := <-errCh:
		_ = shutdown()
		return err
	case <-sig:
		return shutdown()
	}
}

func runCoordinator(listen, public, styleName string, activityTTL, pruneEvery time.Duration, metricsAddr string) error {
	style, err := gossip.ParseStyle(styleName)
	if err != nil {
		return err
	}
	if style != gossip.StylePush && style != gossip.StyleLazyPush {
		return fmt.Errorf("coordinator style must be push or lazypush, got %s", style)
	}
	addr := publicURL(public, listen)
	reg := metrics.NewRegistry()
	soap.InstallWireMetrics(reg)
	coord := core.NewCoordinator(core.CoordinatorConfig{
		Address:     addr,
		Style:       style,
		ActivityTTL: activityTTL,
		Metrics:     reg,
	})
	var runner *core.Runner
	if pruneEvery > 0 {
		// Expiry pruning is a self-clocking coordinator round, scheduled by
		// the same Runner the gossip services use for theirs.
		runner, err = core.NewRunner(core.RunnerConfig{
			RNG:     rand.New(rand.NewSource(scheduleSeed(0, addr))),
			Metrics: reg,
			Loops: []core.Loop{{
				Name:   "prune",
				Period: pruneEvery,
				Jitter: pruneEvery / 10,
				Tick:   coord.Tick,
			}},
		})
		if err != nil {
			return err
		}
		if err := runner.Start(context.Background()); err != nil {
			return err
		}
		defer runner.Stop()
		log.Printf("coordinator pruning expired activities every %v (ttl %v)", pruneEvery, activityTTL)
	}
	health := func() obs.Health {
		h := obs.Health{
			Node:       addr,
			Role:       "coordinator",
			Activities: uint64(coord.LiveActivities()),
		}
		if runner != nil {
			h.Loops = obs.LoopsFrom(runner.LoopStates())
		}
		return h
	}
	log.Printf("coordinator serving at %s (listen %s, style %s)", addr, listen, style)
	return serve(listen, coord.Handler(), reg, health, metricsAddr)
}

// printingApp logs every notification body.
type printingApp struct {
	role string
}

func (p *printingApp) HandleSOAP(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var note noteBody
	if err := req.Envelope.DecodeBody(&note); err != nil {
		log.Printf("[%s] notification with unreadable body: %v", p.role, err)
		return nil, nil
	}
	log.Printf("[%s] delivered: %q (message %s)", p.role, note.Text, req.Addressing().MessageID)
	return nil, nil
}

// subscriberConfig carries the disseminator/consumer wiring options.
type subscriberConfig struct {
	role, listen, public, coordinator string
	pull, repair, announce, aggEvery  time.Duration
	value                             float64
	clusterQueries                    string
	clusterWindow                     time.Duration
	jitter                            float64
	seed                              int64
	members                           string
	memberEvery                       time.Duration
	quiescent                         time.Duration
	metricsAddr                       string
	delivery                          deliveryFlags
	probeK                            int
	probeTimeout                      time.Duration
	admitRate                         float64
	admitBurst                        int
}

// runSubscriber builds the node's middleware stack and — for disseminators —
// a core.Runner on the wall clock, so pull, repair, announce, and push-sum
// rounds fire autonomously: no external tick calls, exactly as the paper's
// self-scheduled gossip services.
func runSubscriber(cfg subscriberConfig, client *soap.HTTPClient) error {
	addr := publicURL(cfg.public, cfg.listen)
	app := &printingApp{role: cfg.role}
	reg := metrics.NewRegistry()
	soap.InstallWireMetrics(reg)
	var d *core.Disseminator
	var msvc *membership.Service
	var plane *delivery.Plane
	var prober *probe.Prober
	var handler soap.Handler
	subscribedRole := core.RoleConsumer
	// Consumers can only take notifications; disseminators extend this
	// below with what their stack actually serves.
	subscribeProtocols := []string{core.ProtocolPushGossip}
	var runner *core.Runner
	var window *aggregate.Window
	if cfg.role == "disseminator" {
		dispatcher := soap.NewDispatcher()
		dcfg := core.DisseminatorConfig{
			Address: addr,
			Caller:  client,
			App:     app,
			RNG:     rand.New(rand.NewSource(scheduleSeed(cfg.seed, addr) + 1)),
			Metrics: reg,
		}
		// A live membership view: exchanges ride this node's SOAP endpoint,
		// and every fan-out samples the view instead of the coordinator's
		// frozen target lists (which stay as the bootstrap fallback).
		if cfg.members != "" {
			if cfg.memberEvery <= 0 {
				return fmt.Errorf("-members requires a positive -membership interval")
			}
			ep := membership.NewSOAPEndpoint(addr, client)
			var err error
			msvc, err = membership.New(membership.Config{
				Endpoint:     ep,
				Clock:        transport.NewWallClock(),
				RNG:          rand.New(rand.NewSource(scheduleSeed(cfg.seed, addr) + 3)),
				Fanout:       3,
				SuspectAfter: 5 * cfg.memberEvery,
				RemoveAfter:  10 * cfg.memberEvery,
				Metrics:      reg,
			})
			if err != nil {
				return err
			}
			mux := transport.NewMux()
			msvc.Register(mux)
			mux.Bind(ep)
			ep.RegisterActions(dispatcher)
			dcfg.Peers = msvc
		}
		// The failure-aware delivery plane wraps the data plane only: notify
		// fan-out, pull, repair, and push-sum sends get per-peer queues,
		// retries, and circuit breaking. Membership exchanges stay on the
		// raw binding — the heartbeat protocol is itself the failure
		// detector and must observe the real link, not a retried view of it.
		// An opening circuit feeds back into that detector via Suspect, and
		// sampling skips open-circuit peers until their half-open probe.
		//
		// With a live view and -probe-k, an opened circuit first asks K
		// peers to reach the suspect indirectly (SWIM-style ping-req): a
		// positive indirect ack means the fault is ours alone — the
		// suspicion is averted and the link marked asymmetric-degraded;
		// only a fully negative round escalates to Suspect. The probes ride
		// the raw client for the same reason membership does.
		if cfg.delivery.enabled {
			suspect := func(peer string) {
				if msvc != nil {
					msvc.Suspect(peer)
				}
				log.Printf("[%s] delivery: circuit opened for %s", cfg.role, peer)
			}
			onDown := suspect
			var onUp func(string)
			if msvc != nil && cfg.probeK != 0 {
				prober = probe.New(probe.Config{
					Self:    addr,
					Caller:  client,
					Clock:   clock.NewReal(),
					Peers:   msvc,
					K:       cfg.probeK,
					Timeout: cfg.probeTimeout,
					RNG:     rand.New(rand.NewSource(scheduleSeed(cfg.seed, addr) + 5)),
					Metrics: reg,
					OnDown: func(peer string) {
						log.Printf("[%s] probe: no indirect path to %s; confirming down", cfg.role, peer)
						if msvc != nil {
							msvc.Suspect(peer)
						}
					},
					OnAverted: func(peer string) {
						log.Printf("[%s] probe: %s alive via indirect path; suspicion averted, link degraded", cfg.role, peer)
					},
				})
				prober.RegisterActions(dispatcher)
				onDown = func(peer string) {
					log.Printf("[%s] delivery: circuit opened for %s; adjudicating indirectly", cfg.role, peer)
					prober.Confirm(peer)
				}
				onUp = prober.ClearDegraded
				log.Printf("[%s] indirect probing on: k=%d", cfg.role, cfg.probeK)
			}
			plane = cfg.delivery.newPlane(client, clock.NewReal(),
				rand.New(rand.NewSource(scheduleSeed(cfg.seed, addr)+4)), reg, onDown, onUp)
			defer plane.Close()
			dcfg.Caller = plane
			if msvc != nil {
				dcfg.Peers = plane.FilterView(msvc)
			}
			log.Printf("[%s] delivery plane on: per-peer queues, retries, circuit breaking", cfg.role)
		}
		var err error
		d, err = core.NewDisseminator(dcfg)
		if err != nil {
			return err
		}
		d.RegisterActions(dispatcher)
		subscribedRole = core.RoleDisseminator
		// Advertise exactly the protocols this stack serves: a node
		// without -value must not be handed out as an aggregation target
		// (push-sum mass sent to it would vanish).
		protocols := []string{core.ProtocolPushGossip, core.ProtocolPullGossip}
		rcfg := core.RunnerConfig{
			RNG:           rand.New(rand.NewSource(scheduleSeed(cfg.seed, addr))),
			Metrics:       reg,
			Disseminator:  d,
			PullEvery:     cfg.pull,
			RepairEvery:   cfg.repair,
			AnnounceEvery: cfg.announce,
			JitterFrac:    cfg.jitter,
			QuiescentMax:  cfg.quiescent,
		}
		if msvc != nil {
			rcfg.Membership = msvc
			rcfg.MembershipEvery = cfg.memberEvery
		}
		if cfg.clusterQueries != "" {
			queries, err := parseClusterQueries(cfg.clusterQueries)
			if err != nil {
				return err
			}
			if cfg.aggEvery <= 0 {
				return fmt.Errorf("-cluster-queries requires a positive -aggregate interval")
			}
			if cfg.clusterWindow < 4*cfg.aggEvery {
				// An epoch needs several exchange rounds to mix before the
				// boundary freezes it, or every frozen estimate is garbage.
				return fmt.Errorf("-cluster-window %v is too short for -aggregate %v (want at least 4 rounds per window)",
					cfg.clusterWindow, cfg.aggEvery)
			}
			var valueFn func() float64
			if !math.IsNaN(cfg.value) {
				valueFn = func() float64 { return cfg.value }
			}
			// This node is the querier: it activates each query once and
			// re-seeds the anchor weight every window. Participants need no
			// flag at all — the start flood tells them the window and metric,
			// and the Unix-epoch wall clock gives every node the same epoch
			// index without coordination.
			q, err := aggregate.NewQuerier(aggregate.QuerierConfig{
				Address:    addr,
				Caller:     dcfg.Caller,
				Activation: cfg.coordinator,
				Value:      valueFn,
				RNG:        rand.New(rand.NewSource(scheduleSeed(cfg.seed, addr) + 2)),
				Metrics:    reg,
				Clock:      clock.NewWall(),
			})
			if err != nil {
				return err
			}
			q.RegisterActions(dispatcher)
			window, err = aggregate.NewWindow(aggregate.WindowConfig{
				Querier: q,
				Window:  cfg.clusterWindow,
				Queries: queries,
			})
			if err != nil {
				return err
			}
			rcfg.Aggregator = window
			rcfg.AggregateEvery = cfg.aggEvery
			protocols = append(protocols, core.ProtocolAggregate)
			log.Printf("[%s] continuous cluster queries: %s (window %v, exchanges every %v)",
				cfg.role, cfg.clusterQueries, cfg.clusterWindow, cfg.aggEvery)
		} else if !math.IsNaN(cfg.value) {
			if cfg.aggEvery <= 0 {
				// An advertised aggregation participant that never runs
				// exchange rounds parks every share it absorbs: the
				// cluster's estimates would silently exclude that mass.
				return fmt.Errorf("-value requires a positive -aggregate interval")
			}
			svc, err := aggregate.NewService(aggregate.ServiceConfig{
				Address: addr,
				Caller:  dcfg.Caller,
				Value:   func() float64 { return cfg.value },
				RNG:     rand.New(rand.NewSource(scheduleSeed(cfg.seed, addr) + 2)),
				Metrics: reg,
			})
			if err != nil {
				return err
			}
			svc.RegisterActions(dispatcher)
			rcfg.Aggregator = svc
			rcfg.AggregateEvery = cfg.aggEvery
			protocols = append(protocols, core.ProtocolAggregate)
		}
		subscribeProtocols = protocols
		handler = dispatcher
		// Inbound overload shedding: past -admit-rate requests/second the
		// node answers with a retry-after fault instead of decoding and
		// processing — senders running a delivery plane defer that queue and
		// retry after the hint. Membership exchanges are exempt: shedding
		// the failure detector under load would read as node death.
		if cfg.admitRate > 0 {
			gate := delivery.NewGate(delivery.GateConfig{
				Clock:   clock.NewReal(),
				Rate:    cfg.admitRate,
				Burst:   cfg.admitBurst,
				Metrics: reg,
				Exempt: func(action string) bool {
					return action == membership.ActionExchange || action == membership.ActionLeave
				},
			})
			handler = soap.Chain(dispatcher, gate.Middleware())
			log.Printf("[%s] admission gate on: %.0f req/s", cfg.role, cfg.admitRate)
		}
		if cfg.pull > 0 || cfg.repair > 0 || cfg.announce > 0 || rcfg.Aggregator != nil || msvc != nil {
			runner, err = core.NewRunner(rcfg)
			if err != nil {
				return err
			}
			if err := runner.Start(context.Background()); err != nil {
				return err
			}
			defer runner.Stop()
			log.Printf("[%s] self-clocking rounds: %s (jitter ±%.0f%%)",
				cfg.role, strings.Join(runner.Loops(), ", "), cfg.jitter*100)
			if cfg.quiescent > 0 {
				log.Printf("[%s] adaptive pacing: idle rounds back off toward %v", cfg.role, cfg.quiescent)
			}
		}
		if msvc != nil {
			var seeds []string
			for _, s := range strings.Split(cfg.members, ",") {
				if s = strings.TrimSpace(s); s != "" && s != addr {
					seeds = append(seeds, s)
				}
			}
			// Join in the background, retrying until a peer's exchange
			// actually lands in the view (tolerates start order, like the
			// subscribe loop below). Join itself inserts the seed addresses
			// at heartbeat 0, so "joined" means some member's heartbeat has
			// advanced — only a received exchange does that. A node seeded
			// only with itself waits to be discovered.
			joined := func() bool {
				for _, m := range msvc.Members() {
					if m.Heartbeat > 0 {
						return true
					}
				}
				return false
			}
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				for len(seeds) > 0 {
					msvc.Join(ctx, seeds)
					if joined() {
						log.Printf("[%s] membership joined via %d seed(s); view exchanges every %v",
							cfg.role, len(seeds), cfg.memberEvery)
						return
					}
					select {
					case <-ctx.Done():
						log.Printf("[%s] membership join got no seed reply; relying on periodic exchanges", cfg.role)
						return
					case <-time.After(cfg.memberEvery):
					}
				}
			}()
		}
	} else {
		handler = core.NewConsumer(app).Handler()
	}
	// Subscribe once the server is up; retry briefly to tolerate start order.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for {
			err := core.SubscribeClient(ctx, client, cfg.coordinator, addr, subscribedRole, subscribeProtocols...)
			if err == nil {
				log.Printf("[%s] subscribed %s at %s", cfg.role, addr, cfg.coordinator)
				return
			}
			log.Printf("[%s] subscribe retry: %v", cfg.role, err)
			select {
			case <-ctx.Done():
				log.Printf("[%s] subscription failed permanently", cfg.role)
				return
			case <-time.After(time.Second):
			}
		}
	}()
	health := func() obs.Health {
		h := obs.Health{Node: addr, Role: cfg.role}
		if d != nil {
			h.Activities = d.ActivityCount()
		}
		if msvc != nil {
			h.Peers = msvc.Alive()
		}
		if runner != nil {
			h.Loops = obs.LoopsFrom(runner.LoopStates())
		}
		h.Delivery = obs.DeliveryFrom(plane)
		h.Probe = obs.ProbeFrom(prober)
		h.Cluster = obs.ClusterFrom(window)
		return h
	}
	log.Printf("%s serving at %s (listen %s)", cfg.role, addr, cfg.listen)
	return serve(cfg.listen, handler, reg, health, cfg.metricsAddr)
}

// parseClusterQueries reads the -cluster-queries spec: comma-separated
// func:metric pairs, e.g. "count:nodes,avg:load". The function names are the
// aggregate functions (count, sum, avg, min, max); the metric labels the
// query and selects each participant's local value source.
func parseClusterQueries(spec string) ([]aggregate.ContinuousQuery, error) {
	var out []aggregate.ContinuousQuery
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fnName, metric, ok := strings.Cut(part, ":")
		if !ok || strings.TrimSpace(metric) == "" {
			return nil, fmt.Errorf("-cluster-queries entry %q: want func:metric (e.g. count:nodes)", part)
		}
		fn, err := aggregate.ParseFunc(strings.TrimSpace(fnName))
		if err != nil {
			return nil, fmt.Errorf("-cluster-queries entry %q: %w", part, err)
		}
		out = append(out, aggregate.ContinuousQuery{Name: strings.TrimSpace(metric), Func: fn})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-cluster-queries is empty")
	}
	return out, nil
}

// scheduleSeed derives a per-node seed so peers' round schedules
// desynchronize even when started with identical flags.
func scheduleSeed(seed int64, addr string) int64 {
	if seed != 0 {
		return seed
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	return int64(h.Sum64())
}

func runInitiator(coordinator, message string, count int, client *soap.HTTPClient, df deliveryFlags) error {
	const initAddr = "urn:wsgossip:initiator"
	reg := metrics.NewRegistry()
	var caller soap.Caller = client
	var plane *delivery.Plane
	if df.enabled {
		plane = df.newPlane(client, clock.NewReal(),
			rand.New(rand.NewSource(scheduleSeed(0, initAddr))), reg, nil, nil)
		defer plane.Close()
		caller = plane
	}
	init, err := core.NewInitiator(core.InitiatorConfig{
		Address:    initAddr,
		Caller:     caller,
		Activation: coordinator,
		Metrics:    reg,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		return err
	}
	log.Printf("interaction %s: fanout=%d hops=%d targets=%v",
		inter.Context.Identifier, inter.Params.Fanout, inter.Params.Hops, inter.Params.Targets)
	for i := 0; i < count; i++ {
		text := message
		if count > 1 {
			text = fmt.Sprintf("%s [%d/%d]", message, i+1, count)
		}
		msgID, sent, err := init.Notify(ctx, inter, noteBody{Text: text})
		if err != nil {
			return err
		}
		log.Printf("notified %d targets (message %s)", sent, msgID)
	}
	if plane != nil {
		// A plane Send returning nil may mean "queued for retry": hold the
		// process open until the queues drain so no accepted notification is
		// abandoned by exit.
		if !drainPlane(plane, 30*time.Second) {
			st := plane.Stats()
			log.Printf("delivery: exiting with %d message(s) undelivered (%d open circuit(s))",
				st.Queued+st.Inflight, st.OpenCircuits)
		}
		if retries := reg.Counter("delivery_retries_total").Value(); retries > 0 {
			log.Printf("delivery: %d retried attempt(s) during fan-out", retries)
		}
	}
	return nil
}
