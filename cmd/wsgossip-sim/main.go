// Command wsgossip-sim runs a single parameterized gossip dissemination on
// the deterministic network simulator and reports coverage, latency, and
// traffic. It is the exploratory companion to wsgossip-bench: sweep any
// point of the (N, f, r, style, loss, crash) space by hand.
//
// Example:
//
//	wsgossip-sim -n 1024 -fanout 4 -hops 14 -style push -loss 0.2 -crash 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"wsgossip/internal/epidemic"
	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wsgossip-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 256, "number of nodes")
		fanout    = flag.Int("fanout", 3, "gossip fanout f")
		hops      = flag.Int("hops", 0, "hop budget r (0 = ceil(log2 n)+2)")
		styleName = flag.String("style", "push", "gossip style: push, pull, pushpull, lazypush, flood")
		loss      = flag.Float64("loss", 0, "message loss probability [0,1)")
		crash     = flag.Float64("crash", 0, "crashed-node fraction [0,1)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		ticks     = flag.Int("ticks", 0, "anti-entropy rounds after the push phase (pull styles)")
		events    = flag.Int("events", 1, "number of rumors published")
	)
	flag.Parse()

	style, err := gossip.ParseStyle(*styleName)
	if err != nil {
		return err
	}
	if *hops == 0 {
		h := 1
		for size := 1; size < *n; size *= 2 {
			h++
		}
		*hops = h + 1
	}
	if *loss < 0 || *loss >= 1 || *crash < 0 || *crash >= 1 {
		return fmt.Errorf("loss and crash must be in [0,1)")
	}

	net := simnet.New(simnet.DefaultConfig(*seed))
	addrs := make([]string, *n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("n%05d", i)
	}
	peers := gossip.NewStaticPeers(addrs)
	engines := make([]*gossip.Engine, *n)
	deliveries := make([]map[string]time.Duration, *n)
	for i := range addrs {
		i := i
		deliveries[i] = make(map[string]time.Duration)
		eng, err := gossip.New(gossip.Config{
			Style:    style,
			Fanout:   *fanout,
			Hops:     *hops,
			Endpoint: net.Node(addrs[i]),
			Peers:    peers,
			RNG:      rand.New(rand.NewSource(*seed*7919 + int64(i))),
			Deliver: func(r gossip.Rumor) {
				if _, ok := deliveries[i][r.ID]; !ok {
					deliveries[i][r.ID] = net.Now()
				}
			},
		})
		if err != nil {
			return err
		}
		mux := transport.NewMux()
		eng.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		engines[i] = eng
	}
	net.SetLossRate(*loss)
	rng := rand.New(rand.NewSource(*seed))
	crashed := gossip.SamplePeers(rng, addrs, int(float64(*n)**crash), addrs[0])
	for _, a := range crashed {
		net.Crash(a)
	}

	ctx := context.Background()
	ids := make([]string, 0, *events)
	t0 := net.Now()
	for e := 0; e < *events; e++ {
		r, err := engines[e%*n].Publish(ctx, []byte("event"))
		if err != nil {
			return err
		}
		ids = append(ids, r.ID)
	}
	net.Run()
	for t := 0; t < *ticks; t++ {
		for i, eng := range engines {
			if net.Crashed(addrs[i]) {
				continue
			}
			eng.Tick(ctx)
		}
		net.RunFor(20 * time.Millisecond)
	}

	alive := *n - len(crashed)
	var covSum float64
	var times []float64
	for _, id := range ids {
		reached := 0
		for i := range engines {
			if net.Crashed(addrs[i]) {
				continue
			}
			if at, ok := deliveries[i][id]; ok {
				reached++
				times = append(times, float64(at-t0)/float64(time.Millisecond))
			}
		}
		covSum += float64(reached) / float64(alive)
	}
	sort.Float64s(times)
	pct := func(q float64) float64 {
		if len(times) == 0 {
			return 0
		}
		idx := int(q*float64(len(times))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(times) {
			idx = len(times) - 1
		}
		return times[idx]
	}

	var total gossip.Stats
	for _, e := range engines {
		s := e.Stats()
		total.Forwarded += s.Forwarded
		total.Duplicates += s.Duplicates
		total.IHaveSent += s.IHaveSent
		total.IWantSent += s.IWantSent
		total.PullReqs += s.PullReqs
		total.PullResps += s.PullResps
	}
	st := net.Stats()

	fmt.Printf("wsgossip-sim: N=%d style=%s f=%d r=%d loss=%.2f crash=%.2f seed=%d events=%d\n",
		*n, style, *fanout, *hops, *loss, *crash, *seed, *events)
	fmt.Printf("  coverage (alive nodes):   %.4f\n", covSum/float64(len(ids)))
	if predicted, err := epidemic.ExpectedCoverageLossy(alive, *fanout, *hops, *loss); err == nil && style == gossip.StylePush {
		fmt.Printf("  analytic prediction:      %.4f\n", predicted)
	}
	fmt.Printf("  delivery latency ms:      p50=%.2f p99=%.2f max=%.2f\n", pct(0.50), pct(0.99), pct(1))
	fmt.Printf("  payload forwards:         %d (%.2f per node)\n", total.Forwarded, float64(total.Forwarded)/float64(*n))
	fmt.Printf("  duplicates suppressed:    %d\n", total.Duplicates)
	fmt.Printf("  control msgs:             %d\n", total.IHaveSent+total.IWantSent+total.PullReqs+total.PullResps)
	fmt.Printf("  network: sent=%d delivered=%d dropped=%d bytes=%d\n", st.Sent, st.Delivered, st.Dropped, st.Bytes)
	fmt.Printf("  virtual time:             %v\n", net.Now())
	return nil
}
