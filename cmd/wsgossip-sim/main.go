// Command wsgossip-sim runs a single parameterized gossip workload on the
// deterministic network simulator and reports coverage, latency, and
// traffic. It is the exploratory companion to wsgossip-bench: sweep any
// point of the (N, f, r, style, loss, crash) space by hand.
//
// Two modes:
//
//	wsgossip-sim -n 1024 -fanout 4 -hops 14 -style push -loss 0.2 -crash 0.1
//	wsgossip-sim -mode aggregate -n 4096 -fanout 3 -agg avg -eps 1e-4
//
// Dissemination mode spreads rumors; aggregate mode runs push-sum
// aggregation (count/sum/avg/min/max) and reports estimate accuracy,
// convergence rounds vs the analytic variance-decay model, and — on lossy
// links — how much conserved mass the network destroyed.
//
// Gossip and churn modes additionally accept -faults <file>, a fault plan
// (see internal/faults.ParsePlan for the grammar) scheduled on the
// simulation clock: directional cuts, connection-refused links, NAT'd
// nodes, per-link loss and delay, and node crash/recover, all replayable
// under the run's seed. The report then carries per-rule fault counters,
// and the run exits non-zero if the table's totals disagree with the
// network's fault-attributed stats — exact fault↔counter accounting is a
// gate, not a printout.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/core"
	"wsgossip/internal/epidemic"
	"wsgossip/internal/experiments"
	"wsgossip/internal/faults"
	"wsgossip/internal/gossip"
	"wsgossip/internal/membership"
	"wsgossip/internal/metrics"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// roundPeriod is the nominal virtual-time round interval self-clocking
// nodes fire at; roundJitter desynchronizes peers around it.
const (
	roundPeriod = 20 * time.Millisecond
	roundJitter = 2 * time.Millisecond
)

// startRunners attaches one self-clocking Runner per alive node to the
// network's virtual clock, so protocol rounds fire from node-owned timers
// on the shared timeline instead of harness tick loops. It returns the
// runners for shutdown.
func startRunners(net *simnet.Network, addrs []string, seed int64, reg *metrics.Registry, tick func(i int) func(context.Context)) ([]*core.Runner, error) {
	runners := make([]*core.Runner, 0, len(addrs))
	for i, addr := range addrs {
		if net.Crashed(addr) {
			continue
		}
		r, err := core.NewRunner(core.RunnerConfig{
			Clock:   net.Clock(),
			Metrics: reg,
			RNG:     rand.New(rand.NewSource(seed*2693 + int64(i))),
			Loops: []core.Loop{{
				Name:   "round",
				Period: roundPeriod,
				Jitter: roundJitter,
				Tick:   tick(i),
			}},
		})
		if err != nil {
			return nil, err
		}
		if err := r.Start(context.Background()); err != nil {
			return nil, err
		}
		runners = append(runners, r)
	}
	return runners, nil
}

func stopRunners(runners []*core.Runner) {
	for _, r := range runners {
		r.Stop()
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wsgossip-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode      = flag.String("mode", "gossip", "workload: gossip (dissemination), aggregate (push-sum), or churn (membership-driven dissemination under join/leave)")
		n         = flag.Int("n", 256, "number of nodes")
		fanout    = flag.Int("fanout", 3, "gossip fanout f")
		hops      = flag.Int("hops", 0, "hop budget r (0 = ceil(log2 n)+2)")
		styleName = flag.String("style", "push", "gossip style: push, pull, pushpull, lazypush, flood")
		loss      = flag.Float64("loss", 0, "message loss probability [0,1)")
		crash     = flag.Float64("crash", 0, "crashed-node fraction [0,1)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		ticks     = flag.Int("ticks", 0, "anti-entropy rounds after the push phase (pull styles)")
		events    = flag.Int("events", 1, "number of rumors published")
		aggName   = flag.String("agg", "avg", "aggregate mode function: count, sum, avg, min, max")
		eps       = flag.Float64("eps", 1e-4, "aggregate mode convergence threshold")
		maxRounds = flag.Int("rounds", 0, "aggregate mode round cap (0 = 2x analytic prediction + 10)")
		epochs    = flag.Int("epochs", 0, "aggregate mode: run this many continuous epoch windows (acked, loss-tolerant exchange); 0 = legacy one-shot convergence run")
		window    = flag.Duration("window", 500*time.Millisecond, "aggregate mode epoch window length (with -epochs)")
		dumpReg   = flag.Bool("metrics", false, "dump the run's metrics-registry snapshot at end of run")
		minCov    = flag.Float64("min-coverage", 0, "coverage budget: exit non-zero when the run's coverage falls below this fraction, 0 disables")
		expName   = flag.String("exp", "", "large-N scaling experiment: coverage (E1-style point) or churn (E9-style point); uses the memory-diet harness, N=10^5..10^6 is the design target")
		maxRSSMB  = flag.Int("max-rss-mb", 0, "memory budget for -exp runs: exit non-zero when peak RSS (VmHWM) exceeds this many MiB, 0 disables")
		faultPath = flag.String("faults", "", "fault plan file scheduled on the simulation clock (gossip and churn modes); events apply as virtual time advances, so plan times should land inside the run's horizon")
	)
	flag.Parse()
	if *minCov < 0 || *minCov > 1 {
		return fmt.Errorf("min-coverage must be in [0,1]")
	}
	var plan *faults.Plan
	if *faultPath != "" {
		if *expName != "" || (*mode == "aggregate" && *epochs == 0) {
			return fmt.Errorf("-faults applies to gossip, churn, and windowed aggregate (-epochs) modes")
		}
		var err error
		if plan, err = loadFaultPlan(*faultPath); err != nil {
			return err
		}
	}

	if *expName != "" {
		return runExp(*expName, *n, *fanout, *hops, *loss, *crash, *seed, *events, *minCov, *maxRSSMB)
	}

	if *mode == "aggregate" {
		if *epochs > 0 {
			return runWindowedAggregate(*n, *fanout, *aggName, *loss, *seed, *dumpReg, *minCov, *epochs, *window, plan)
		}
		return runAggregate(*n, *fanout, *aggName, *eps, *maxRounds, *loss, *seed, *dumpReg, *minCov)
	}
	if *mode == "churn" {
		return runChurn(*n, *fanout, *loss, *crash, *seed, *ticks, *dumpReg, *minCov, plan)
	}
	if *mode != "gossip" {
		return fmt.Errorf("unknown mode %q (want gossip, aggregate, or churn)", *mode)
	}

	style, err := gossip.ParseStyle(*styleName)
	if err != nil {
		return err
	}
	if *hops == 0 {
		h := 1
		for size := 1; size < *n; size *= 2 {
			h++
		}
		*hops = h + 1
	}
	if *loss < 0 || *loss >= 1 || *crash < 0 || *crash >= 1 {
		return fmt.Errorf("loss and crash must be in [0,1)")
	}

	reg := metrics.NewRegistry()
	net := simnet.New(simnet.DefaultConfig(*seed))
	ftbl, err := installFaults(net, plan)
	if err != nil {
		return err
	}
	addrs := make([]string, *n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("n%05d", i)
	}
	peers := gossip.NewStaticPeers(addrs)
	engines := make([]*gossip.Engine, *n)
	deliveries := make([]map[string]time.Duration, *n)
	for i := range addrs {
		i := i
		deliveries[i] = make(map[string]time.Duration)
		eng, err := gossip.New(gossip.Config{
			Style:    style,
			Fanout:   *fanout,
			Hops:     *hops,
			Endpoint: net.Node(addrs[i]),
			Peers:    peers,
			RNG:      rand.New(rand.NewSource(*seed*7919 + int64(i))),
			Deliver: func(r gossip.Rumor) {
				if _, ok := deliveries[i][r.ID]; !ok {
					deliveries[i][r.ID] = net.Now()
				}
			},
		})
		if err != nil {
			return err
		}
		mux := transport.NewMux()
		eng.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		engines[i] = eng
	}
	net.SetLossRate(*loss)
	rng := rand.New(rand.NewSource(*seed))
	crashed := gossip.SamplePeers(rng, addrs, int(float64(*n)**crash), addrs[0])
	for _, a := range crashed {
		net.Crash(a)
	}

	ctx := context.Background()
	ids := make([]string, 0, *events)
	t0 := net.Now()
	for e := 0; e < *events; e++ {
		r, err := engines[e%*n].Publish(ctx, []byte("event"))
		if err != nil {
			return err
		}
		ids = append(ids, r.ID)
	}
	net.Run()
	if *ticks > 0 {
		// Anti-entropy rounds fire from per-node self-clocking runners on
		// the shared virtual clock, not from a harness loop.
		runners, err := startRunners(net, addrs, *seed, reg, func(i int) func(context.Context) {
			return engines[i].Tick
		})
		if err != nil {
			return err
		}
		net.RunFor(time.Duration(*ticks) * roundPeriod)
		stopRunners(runners)
		net.Run() // drain in-flight deliveries from the final rounds
	}

	alive := *n - len(crashed)
	var covSum float64
	var times []float64
	for _, id := range ids {
		reached := 0
		for i := range engines {
			if net.Crashed(addrs[i]) {
				continue
			}
			if at, ok := deliveries[i][id]; ok {
				reached++
				times = append(times, float64(at-t0)/float64(time.Millisecond))
			}
		}
		covSum += float64(reached) / float64(alive)
	}
	sort.Float64s(times)
	pct := func(q float64) float64 {
		if len(times) == 0 {
			return 0
		}
		idx := int(q*float64(len(times))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(times) {
			idx = len(times) - 1
		}
		return times[idx]
	}

	var total gossip.Stats
	for _, e := range engines {
		s := e.Stats()
		total.Forwarded += s.Forwarded
		total.Duplicates += s.Duplicates
		total.IHaveSent += s.IHaveSent
		total.IWantSent += s.IWantSent
		total.PullReqs += s.PullReqs
		total.PullResps += s.PullResps
	}
	st := net.Stats()

	fmt.Printf("wsgossip-sim: N=%d style=%s f=%d r=%d loss=%.2f crash=%.2f seed=%d events=%d\n",
		*n, style, *fanout, *hops, *loss, *crash, *seed, *events)
	fmt.Printf("  coverage (alive nodes):   %.4f\n", covSum/float64(len(ids)))
	if predicted, err := epidemic.ExpectedCoverageLossy(alive, *fanout, *hops, *loss); err == nil && style == gossip.StylePush {
		fmt.Printf("  analytic prediction:      %.4f\n", predicted)
	}
	fmt.Printf("  delivery latency ms:      p50=%.2f p99=%.2f max=%.2f\n", pct(0.50), pct(0.99), pct(1))
	fmt.Printf("  payload forwards:         %d (%.2f per node)\n", total.Forwarded, float64(total.Forwarded)/float64(*n))
	fmt.Printf("  duplicates suppressed:    %d\n", total.Duplicates)
	fmt.Printf("  control msgs:             %d\n", total.IHaveSent+total.IWantSent+total.PullReqs+total.PullResps)
	fmt.Printf("  network: sent=%d delivered=%d dropped=%d bytes=%d\n", st.Sent, st.Delivered, st.Dropped, st.Bytes)
	fmt.Printf("  virtual time:             %v\n", net.Now())
	if ftbl != nil {
		reg.Counter("net_fault_refused_total").Add(st.FaultRefused)
		reg.Counter("net_fault_dropped_total").Add(st.FaultDropped)
		if err := reportFaults(ftbl, st); err != nil {
			return err
		}
	}
	reg.Counter("gossip_forwarded_total").Add(total.Forwarded)
	reg.Counter("gossip_duplicates_total").Add(total.Duplicates)
	reg.Counter("net_sent_total").Add(st.Sent)
	reg.Counter("net_delivered_total").Add(st.Delivered)
	reg.Counter("net_dropped_total").Add(st.Dropped)
	reg.Counter("net_bytes_total").Add(st.Bytes)
	return finish(reg, *dumpReg, covSum/float64(len(ids)), *minCov)
}

// loadFaultPlan reads and parses a fault plan file.
func loadFaultPlan(path string) (*faults.Plan, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	plan, err := faults.ParsePlan(string(body))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return plan, nil
}

// installFaults puts a fresh fault table on the network and schedules the
// plan's timeline on the simulation clock, binding crash/recover ops to the
// fabric's node lifecycle. A nil plan installs nothing (and costs nothing:
// without a table the network's RNG stream is byte-identical to pre-fault
// builds).
func installFaults(net *simnet.Network, plan *faults.Plan) (*faults.Table, error) {
	if plan == nil {
		return nil, nil
	}
	tbl := faults.NewTable()
	net.SetFaults(tbl)
	err := plan.Schedule(net.Clock(), faults.Applier{
		Table:   tbl,
		Crash:   net.Crash,
		Recover: net.Recover,
	})
	if err != nil {
		return nil, err
	}
	return tbl, nil
}

// reportFaults prints the per-rule fault counters (sorted by rule name) and
// enforces exact accounting: every refusal the table charged to a rule must
// show up in the network's FaultRefused, and every cut/partition/link-loss
// drop in FaultDropped. A mismatch means a consumer miscounted — that is a
// bug in the harness, so the run fails rather than printing a wrong report.
func reportFaults(tbl *faults.Table, st simnet.Stats) error {
	counts := tbl.Counts()
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("  faults: refused=%d dropped=%d\n", st.FaultRefused, st.FaultDropped)
	for _, name := range names {
		fmt.Printf("    rule %-24s %d\n", name, counts[name])
	}
	tot := tbl.Totals()
	if tot.Refused != st.FaultRefused || tot.Dropped+tot.Lost != st.FaultDropped {
		return fmt.Errorf("fault accounting breach: table totals %+v vs network stats refused=%d dropped=%d",
			tot, st.FaultRefused, st.FaultDropped)
	}
	return nil
}

// finish stamps the run's coverage into the registry, dumps the snapshot
// when requested, and enforces the coverage budget: a run below budget
// exits non-zero so scripted sweeps fail loudly instead of just printing a
// bad number.
func finish(reg *metrics.Registry, dump bool, coverage, minCov float64) error {
	reg.FloatGauge("sim_coverage").Set(coverage)
	if dump {
		fmt.Println("  metrics registry snapshot:")
		for _, line := range strings.Split(strings.TrimRight(reg.Snapshot(), "\n"), "\n") {
			fmt.Println("    " + line)
		}
	}
	if minCov > 0 && coverage < minCov {
		return fmt.Errorf("coverage %.4f below budget %.4f", coverage, minCov)
	}
	return nil
}

// runExp routes the -exp large-N scaling modes. These are the E1/E9 curves
// re-run at populations the table experiments cannot touch (10^5..10^6
// nodes): the experiments.Scale harness puts every node on the memory diet
// (compact RNG state, shared rumor-ID index, bitset seen-sets) so the run
// fits in single-digit GiB, and the report ends with the process's heap and
// peak-RSS numbers so regressions in per-node footprint are visible — and
// enforceable via -max-rss-mb.
func runExp(name string, n, fanout, hops int, loss, churn float64, seed int64, events int, minCov float64, maxRSSMB int) error {
	opt := experiments.ScaleOptions{
		N: n, Fanout: fanout, Hops: hops, Events: events,
		Loss: loss, Churn: churn, Seed: seed,
	}
	var coverage float64
	switch name {
	case "coverage":
		s, err := experiments.ScaleCoverage(opt)
		if err != nil {
			return err
		}
		coverage = s.Coverage
		fmt.Printf("wsgossip-sim exp=coverage: N=%d f=%d r=%d loss=%.2f seed=%d events=%d\n",
			s.N, s.Fanout, s.Hops, s.Loss, seed, s.Events)
		fmt.Printf("  coverage:                 %.4f (analytic %.4f)\n", s.Coverage, s.Analytic)
		fmt.Printf("  delivery latency ms:      p50=%.2f p99=%.2f max=%.2f depth=%d\n", s.P50, s.P99, s.MaxMs, s.MaxDepth)
		fmt.Printf("  payload forwards:         %.2f per node\n", s.MsgsPerNode)
		fmt.Printf("  network: sent=%d delivered=%d dropped=%d bytes=%d\n", s.Sent, s.Delivered, s.Dropped, s.Bytes)
		fmt.Printf("  virtual time:             %.2fms\n", s.VirtualMs)
	case "churn":
		if opt.Churn == 0 {
			opt.Churn = 0.2 // -crash carries the churned-out fraction; default to a meaningful one
		}
		s, err := experiments.ScaleChurn(opt)
		if err != nil {
			return err
		}
		coverage = s.PostCoverage
		fmt.Printf("wsgossip-sim exp=churn: N=%d (-%d departed) f=%d r=%d loss=%.2f seed=%d\n",
			s.N, s.Departed, s.Fanout, s.Hops, s.Loss, seed)
		fmt.Printf("  pre-churn coverage:       %.4f of full population\n", s.PreCoverage)
		fmt.Printf("  post-churn coverage:      %.4f of %d survivors (analytic %.4f at eff-loss %.2f)\n",
			s.PostCoverage, s.Alive, s.Analytic, s.EffLoss)
		fmt.Printf("  pending after depart:     %d timers\n", s.PendingAfterDepart)
		fmt.Printf("  network: sent=%d delivered=%d dropped=%d\n", s.Sent, s.Delivered, s.Dropped)
		fmt.Printf("  virtual time:             %.2fms\n", s.VirtualMs)
	default:
		return fmt.Errorf("unknown exp %q (want coverage or churn)", name)
	}
	peakMB := memReport()
	if maxRSSMB > 0 && peakMB > 0 && peakMB > maxRSSMB {
		return fmt.Errorf("peak RSS %d MiB exceeds budget %d MiB", peakMB, maxRSSMB)
	}
	if minCov > 0 && coverage < minCov {
		return fmt.Errorf("coverage %.4f below budget %.4f", coverage, minCov)
	}
	return nil
}

// memReport prints the process's heap profile and (on Linux) peak RSS, and
// returns the peak RSS in MiB (0 when unavailable). The numbers are
// intentionally outside the deterministic summary: byte-identical simulation
// output stays diffable across runs while the memory lines vary.
func memReport() int {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const mib = 1 << 20
	fmt.Printf("  mem: heap=%dMiB total-alloc=%dMiB sys=%dMiB gc=%d\n",
		ms.HeapAlloc/mib, ms.TotalAlloc/mib, ms.Sys/mib, ms.NumGC)
	peak := 0
	if body, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "VmHWM:") || strings.HasPrefix(line, "VmRSS:") {
				fields := strings.Fields(line)
				if len(fields) >= 2 {
					var kb int
					if _, err := fmt.Sscanf(fields[1], "%d", &kb); err == nil {
						fmt.Printf("  mem: %s %dMiB\n", strings.TrimSuffix(fields[0], ":"), kb/1024)
						if fields[0] == "VmHWM:" {
							peak = kb / 1024
						}
					}
				}
			}
		}
	}
	return peak
}

// runChurn drives membership-driven dissemination under churn: every node's
// gossip engine samples its live membership view (no static peer list
// exists anywhere), a crash-fraction of nodes leaves mid-run, fresh nodes
// join, and a rumor published after the churn must still cover the final
// population through view-driven push-pull rounds.
func runChurn(n, fanout int, loss, leaveFrac float64, seed int64, ticks int, dumpReg bool, minCov float64, plan *faults.Plan) error {
	if n < 4 || fanout < 1 {
		return fmt.Errorf("churn mode needs n >= 4 and fanout >= 1")
	}
	if loss < 0 || loss >= 1 || leaveFrac < 0 || leaveFrac >= 0.5 {
		return fmt.Errorf("loss must be in [0,1) and crash (leave fraction) in [0,0.5)")
	}
	if ticks <= 0 {
		ticks = 30
	}
	joiners := n / 4
	total := n + joiners
	// One registry for the whole simulated cluster: per-node series sum, so
	// the snapshot reads as cluster totals.
	reg := metrics.NewRegistry()
	net := simnet.New(simnet.DefaultConfig(seed))
	clk := net.Clock()
	ftbl, err := installFaults(net, plan)
	if err != nil {
		return err
	}

	type churnNode struct {
		addr   string
		msvc   *membership.Service
		engine *gossip.Engine
		runner *core.Runner
		got    map[string]bool
	}
	nodes := make([]*churnNode, 0, total)
	boot := func(i int) (*churnNode, error) {
		addr := fmt.Sprintf("n%05d", i)
		node := &churnNode{addr: addr, got: make(map[string]bool)}
		ep := net.Node(addr)
		msvc, err := membership.New(membership.Config{
			Endpoint:     ep,
			Clock:        net,
			RNG:          rand.New(rand.NewSource(seed*131 + int64(i))),
			Fanout:       3,
			SuspectAfter: 10 * roundPeriod,
			RemoveAfter:  20 * roundPeriod,
			Metrics:      reg,
		})
		if err != nil {
			return nil, err
		}
		eng, err := gossip.New(gossip.Config{
			Style:    gossip.StylePushPull,
			Fanout:   fanout,
			Hops:     12,
			Endpoint: ep,
			Peers:    msvc, // the live view IS the peer provider
			RNG:      rand.New(rand.NewSource(seed*7919 + int64(i))),
			Deliver:  func(r gossip.Rumor) { node.got[r.ID] = true },
		})
		if err != nil {
			return nil, err
		}
		mux := transport.NewMux()
		eng.Register(mux)
		msvc.Register(mux)
		mux.Bind(ep)
		runner, err := core.NewRunner(core.RunnerConfig{
			Clock:           clk,
			Metrics:         reg,
			RNG:             rand.New(rand.NewSource(seed*2693 + int64(i))),
			Membership:      msvc,
			MembershipEvery: 2 * roundPeriod,
			Loops: []core.Loop{{
				Name: "round", Period: roundPeriod, Jitter: roundJitter, Tick: eng.Tick,
			}},
		})
		if err != nil {
			return nil, err
		}
		if err := runner.Start(context.Background()); err != nil {
			return nil, err
		}
		node.msvc = msvc
		node.engine = eng
		node.runner = runner
		nodes = append(nodes, node)
		return node, nil
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		node, err := boot(i)
		if err != nil {
			return err
		}
		if i > 0 {
			node.msvc.Join(ctx, []string{"n00000"})
		}
	}
	meanView := func(ns []*churnNode) float64 {
		if len(ns) == 0 {
			return 0
		}
		sum := 0
		for _, node := range ns {
			sum += node.msvc.Size()
		}
		return float64(sum) / float64(len(ns))
	}
	net.SetLossRate(loss)
	net.RunFor(time.Duration(ticks) * roundPeriod) // views assemble
	viewBefore := meanView(nodes)

	// Event 1 on the assembled overlay.
	if _, err := nodes[0].engine.Publish(ctx, []byte("pre-churn")); err != nil {
		return err
	}
	net.RunFor(time.Duration(ticks) * roundPeriod)

	// Churn: leavers announce and crash; joiners bootstrap from node 0.
	rng := rand.New(rand.NewSource(seed * 31))
	leaving := rng.Perm(n - 1)[:int(float64(n)*leaveFrac)]
	down := make(map[string]bool, len(leaving))
	for _, idx := range leaving {
		node := nodes[idx+1] // never the seed node
		node.msvc.Leave(ctx)
		node.runner.Stop()
		// Leavers are gone for good: Depart (not Crash) drops traffic to them
		// at enqueue, so the churned-out cohort does not keep filling the
		// timer queue with deliveries that would only be dropped on arrival.
		net.Depart(node.addr)
		down[node.addr] = true
	}
	for i := 0; i < joiners; i++ {
		node, err := boot(n + i)
		if err != nil {
			return err
		}
		node.msvc.Join(ctx, []string{"n00000"})
	}
	net.RunFor(time.Duration(ticks) * roundPeriod)

	// Event 2 over the churned overlay: joiners must get it from views
	// they assembled themselves, leavers must not resurrect.
	r2, err := nodes[0].engine.Publish(ctx, []byte("post-churn"))
	if err != nil {
		return err
	}
	net.RunFor(time.Duration(2*ticks) * roundPeriod)
	for _, node := range nodes {
		if !down[node.addr] {
			node.runner.Stop()
		}
	}
	net.Run()

	alive, covered, joinCovered := 0, 0, 0
	for i, node := range nodes {
		if down[node.addr] {
			continue
		}
		alive++
		if node.got[r2.ID] {
			covered++
			if i >= n {
				joinCovered++
			}
		}
	}
	aliveNodes := make([]*churnNode, 0, alive)
	for _, node := range nodes {
		if !down[node.addr] {
			aliveNodes = append(aliveNodes, node)
		}
	}
	viewAfter := meanView(aliveNodes)
	st := net.Stats()
	fmt.Printf("wsgossip-sim churn: N=%d (+%d joined, -%d left) f=%d loss=%.2f seed=%d\n",
		n, joiners, len(leaving), fanout, loss, seed)
	fmt.Printf("  mean view size:           %.1f before churn, %.1f after\n", viewBefore, viewAfter)
	fmt.Printf("  post-churn coverage:      %d/%d alive (%d/%d joiners)\n", covered, alive, joinCovered, joiners)
	fmt.Printf("  network: sent=%d delivered=%d dropped=%d bytes=%d\n", st.Sent, st.Delivered, st.Dropped, st.Bytes)
	fmt.Printf("  virtual time:             %v\n", net.Now())
	if ftbl != nil {
		reg.Counter("net_fault_refused_total").Add(st.FaultRefused)
		reg.Counter("net_fault_dropped_total").Add(st.FaultDropped)
		if err := reportFaults(ftbl, st); err != nil {
			return err
		}
	}
	reg.Counter("net_sent_total").Add(st.Sent)
	reg.Counter("net_delivered_total").Add(st.Delivered)
	reg.Counter("net_dropped_total").Add(st.Dropped)
	return finish(reg, dumpReg, float64(covered)/float64(alive), minCov)
}

// runAggregate drives push-sum aggregation over the simulator.
func runAggregate(n, fanout int, fnName string, eps float64, maxRounds int, loss float64, seed int64, dumpReg bool, minCov float64) error {
	fn, err := aggregate.ParseFunc(fnName)
	if err != nil {
		return err
	}
	if n < 2 || fanout < 1 {
		return fmt.Errorf("aggregate mode needs n >= 2 and fanout >= 1")
	}
	if loss < 0 || loss >= 1 {
		return fmt.Errorf("loss must be in [0,1)")
	}
	analytic, err := epidemic.PushSumRoundsToEpsilon(n, fanout, eps)
	if err != nil {
		return err
	}
	if maxRounds <= 0 {
		maxRounds = 2*analytic + 10
	}

	reg := metrics.NewRegistry()
	net := simnet.New(simnet.DefaultConfig(seed))
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("n%05d", i)
	}
	peers := gossip.NewStaticPeers(addrs)
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]*aggregate.SimNode, n)
	values := make([]float64, n)
	var truthSum, truthMin, truthMax float64
	truthMin, truthMax = math.Inf(1), math.Inf(-1)
	for i := range addrs {
		values[i] = rng.Float64() * 1000
		truthSum += values[i]
		truthMin = math.Min(truthMin, values[i])
		truthMax = math.Max(truthMax, values[i])
		node, err := aggregate.NewSimNode(aggregate.SimNodeConfig{
			Endpoint: net.Node(addrs[i]),
			Peers:    peers,
			Fanout:   fanout,
			TaskID:   "sim",
			Func:     fn,
			Value:    values[i],
			Root:     i == 0,
			RNG:      rand.New(rand.NewSource(seed*6151 + int64(i))),
		})
		if err != nil {
			return err
		}
		mux := transport.NewMux()
		node.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		nodes[i] = node
	}
	net.SetLossRate(loss)

	var truth float64
	switch fn {
	case aggregate.FuncCount:
		truth = float64(n)
	case aggregate.FuncSum:
		truth = truthSum
	case aggregate.FuncAvg:
		truth = truthSum / float64(n)
	case aggregate.FuncMin:
		truth = truthMin
	case aggregate.FuncMax:
		truth = truthMax
	}

	// Exchange rounds fire from per-node self-clocking runners on the
	// shared virtual clock; the harness only advances time and watches for
	// convergence.
	runners, err := startRunners(net, addrs, seed, reg, func(i int) func(context.Context) {
		return nodes[i].Tick
	})
	if err != nil {
		return err
	}
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		net.RunFor(roundPeriod)
		allConverged := true
		for _, node := range nodes {
			if !node.State().Converged(eps) {
				allConverged = false
				break
			}
		}
		if allConverged {
			rounds++
			break
		}
	}
	stopRunners(runners)
	net.Run() // drain in-flight deliveries from the final rounds

	var worstErr, massSum, massWeight float64
	defined := 0
	for _, node := range nodes {
		s, w := node.State().Mass()
		massSum += s
		massWeight += w
		est, ok := node.State().Estimate()
		if !ok {
			continue
		}
		defined++
		relErr := math.Abs(est-truth) / math.Max(math.Abs(truth), 1e-12)
		worstErr = math.Max(worstErr, relErr)
	}
	st := net.Stats()
	fmt.Printf("wsgossip-sim aggregate: N=%d f=%d fn=%s eps=%g loss=%.2f seed=%d\n",
		n, fanout, fn, eps, loss, seed)
	fmt.Printf("  ground truth:             %.6f\n", truth)
	fmt.Printf("  rounds run:               %d (analytic ε-rounds: %d, cap %d)\n", rounds, analytic, maxRounds)
	fmt.Printf("  nodes with estimates:     %d/%d\n", defined, n)
	fmt.Printf("  worst relative error:     %.3e\n", worstErr)
	if fn == aggregate.FuncAvg || fn == aggregate.FuncSum || fn == aggregate.FuncCount {
		fmt.Printf("  conserved mass:           sum=%.6f weight=%.6f (loss destroys mass)\n", massSum, massWeight)
	}
	fmt.Printf("  network: sent=%d delivered=%d dropped=%d bytes=%d\n", st.Sent, st.Delivered, st.Dropped, st.Bytes)
	fmt.Printf("  virtual time:             %v\n", net.Now())
	reg.Counter("net_sent_total").Add(st.Sent)
	reg.Counter("net_delivered_total").Add(st.Delivered)
	reg.Counter("net_dropped_total").Add(st.Dropped)
	reg.FloatGauge("aggregate_worst_rel_error").Set(worstErr)
	// Coverage in aggregate mode is the fraction of nodes holding a defined
	// estimate at the end of the run.
	return finish(reg, dumpReg, float64(defined)/float64(n), minCov)
}

// runWindowedAggregate drives the continuous, epoch-windowed form of
// aggregate mode: every node runs the acked loss-tolerant exchange, push-sum
// restarts at each multiple of -window, and each closed epoch is reported as
// it freezes. The conservation contract is enforced, not just printed: any
// node whose mass-error residual leaves exact zero at any sampled instant
// fails the run with a non-zero exit — this is the CI smoke gate for the
// loss-tolerance claim.
func runWindowedAggregate(n, fanout int, fnName string, loss float64, seed int64, dumpReg bool, minCov float64, epochs int, window time.Duration, plan *faults.Plan) error {
	fn, err := aggregate.ParseFunc(fnName)
	if err != nil {
		return err
	}
	if n < 2 || fanout < 1 {
		return fmt.Errorf("aggregate mode needs n >= 2 and fanout >= 1")
	}
	if loss < 0 || loss >= 1 {
		return fmt.Errorf("loss must be in [0,1)")
	}
	if window < 4*roundPeriod {
		return fmt.Errorf("window %v too short: epochs need several %v rounds to mix", window, roundPeriod)
	}

	reg := metrics.NewRegistry()
	net := simnet.New(simnet.DefaultConfig(seed))
	ftbl, err := installFaults(net, plan)
	if err != nil {
		return err
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("n%05d", i)
	}
	peers := gossip.NewStaticPeers(addrs)
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]*aggregate.SimNode, n)
	var truthSum, truthMin, truthMax float64
	truthMin, truthMax = math.Inf(1), math.Inf(-1)
	for i := range addrs {
		v := rng.Float64() * 1000
		truthSum += v
		truthMin = math.Min(truthMin, v)
		truthMax = math.Max(truthMax, v)
		node, err := aggregate.NewSimNode(aggregate.SimNodeConfig{
			Endpoint: net.Node(addrs[i]),
			Peers:    peers,
			Fanout:   fanout,
			TaskID:   "sim",
			Func:     fn,
			Value:    v,
			Root:     i == 0,
			RNG:      rand.New(rand.NewSource(seed*6151 + int64(i))),
			Window:   window,
			Clock:    net,
		})
		if err != nil {
			return err
		}
		mux := transport.NewMux()
		node.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		nodes[i] = node
	}
	net.SetLossRate(loss)
	var truth float64
	switch fn {
	case aggregate.FuncCount:
		truth = float64(n)
	case aggregate.FuncSum:
		truth = truthSum
	case aggregate.FuncAvg:
		truth = truthSum / float64(n)
	case aggregate.FuncMin:
		truth = truthMin
	case aggregate.FuncMax:
		truth = truthMax
	}

	runners, err := startRunners(net, addrs, seed, reg, func(i int) func(context.Context) {
		return nodes[i].Tick
	})
	if err != nil {
		return err
	}
	fmt.Printf("wsgossip-sim aggregate (windowed): N=%d f=%d fn=%s epochs=%d window=%v loss=%.2f seed=%d faults=%v\n",
		n, fanout, fn, epochs, window, loss, seed, ftbl != nil)

	// Sample the conservation residual every round on every node; the gate
	// is exact zero at every instant, which is what the acked exchange
	// guarantees no matter what the fault plan does to the links.
	massViolations := 0
	var worstMassErr float64
	sampleMass := func() {
		for _, node := range nodes {
			if e := node.MassError(); e != 0 {
				massViolations++
				worstMassErr = math.Max(worstMassErr, math.Abs(e))
			}
		}
	}
	for e := 1; e <= epochs; e++ {
		// Run to just past this epoch's closing boundary so every node has
		// rolled and frozen it (runner jitter keeps ticks within one period
		// of the boundary).
		target := time.Duration(e)*window + 2*roundPeriod
		for net.Now() < target {
			net.RunFor(roundPeriod)
			sampleMass()
		}
		defined := 0
		var worstErr float64
		for _, node := range nodes {
			fr, ok := node.Frozen()
			if !ok || fr.Epoch != uint64(e) || !fr.Defined {
				continue
			}
			defined++
			worstErr = math.Max(worstErr, math.Abs(fr.Estimate-truth)/math.Max(math.Abs(truth), 1e-12))
		}
		fmt.Printf("  epoch %d: estimates %d/%d defined, worst rel err %.3e\n", e, defined, n, worstErr)
		reg.FloatGauge("aggregate_worst_rel_error").Set(worstErr)
	}
	stopRunners(runners)
	net.Run() // drain in-flight shares and acks from the final rounds
	sampleMass()

	var stats aggregate.SimNodeStats
	for _, node := range nodes {
		st := node.SimStats()
		stats.SharesSent += st.SharesSent
		stats.SharesAbsorbed += st.SharesAbsorbed
		stats.Duplicates += st.Duplicates
		stats.Stale += st.Stale
		stats.Commits += st.Commits
		stats.Retries += st.Retries
		stats.Recovered += st.Recovered
		stats.UnackedDiscarded += st.UnackedDiscarded
	}
	st := net.Stats()
	fmt.Printf("  exchange: sent=%d absorbed=%d committed=%d retried=%d dup=%d stale=%d recovered=%d retired=%d\n",
		stats.SharesSent, stats.SharesAbsorbed, stats.Commits, stats.Retries,
		stats.Duplicates, stats.Stale, stats.Recovered, stats.UnackedDiscarded)
	fmt.Printf("  mass error: %d violation(s), worst %g (gate: exactly 0 everywhere, always)\n",
		massViolations, worstMassErr)
	fmt.Printf("  network: sent=%d delivered=%d dropped=%d bytes=%d\n", st.Sent, st.Delivered, st.Dropped, st.Bytes)
	fmt.Printf("  virtual time:             %v\n", net.Now())
	if ftbl != nil {
		reg.Counter("net_fault_refused_total").Add(st.FaultRefused)
		reg.Counter("net_fault_dropped_total").Add(st.FaultDropped)
		if err := reportFaults(ftbl, st); err != nil {
			return err
		}
	}
	reg.Counter("net_sent_total").Add(st.Sent)
	reg.Counter("net_delivered_total").Add(st.Delivered)
	reg.Counter("net_dropped_total").Add(st.Dropped)
	reg.FloatGauge("aggregate_mass_error").Set(worstMassErr)
	if massViolations > 0 {
		return fmt.Errorf("mass conservation violated %d time(s), worst residual %g: the acked exchange must hold aggregate_mass_error at exactly 0 under loss",
			massViolations, worstMassErr)
	}
	// Coverage is the fraction of nodes whose final epoch froze with a
	// defined estimate.
	finalDefined := 0
	for _, node := range nodes {
		if fr, ok := node.Frozen(); ok && fr.Epoch == uint64(epochs) && fr.Defined {
			finalDefined++
		}
	}
	return finish(reg, dumpReg, float64(finalDefined)/float64(n), minCov)
}
