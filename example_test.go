package wsgossip_test

import (
	"context"
	"encoding/xml"
	"fmt"
	"math/rand"

	"wsgossip"
	"wsgossip/internal/soap"
)

type exampleEvent struct {
	XMLName xml.Name `xml:"urn:example Event"`
	Text    string   `xml:"Text"`
}

type exampleApp struct {
	name string
}

func (a *exampleApp) HandleSOAP(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var ev exampleEvent
	if err := req.Envelope.DecodeBody(&ev); err != nil {
		return nil, err
	}
	fmt.Printf("%s received %q\n", a.name, ev.Text)
	return nil, nil
}

// Example shows the paper's Figure 1 in miniature: a Coordinator, one
// Disseminator, one unchanged Consumer, and an Initiator that issues a
// single notification.
func Example() {
	ctx := context.Background()
	bus := soap.NewMemBus()

	// Hops 0 keeps the example deterministic: the initiator reaches both
	// subscribers directly and nobody re-forwards (the unchanged consumer
	// has no duplicate suppression, so gossip redundancy would print
	// duplicate lines here).
	coordinator := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(1)),
		Params:  func(int) (int, int) { return 1, 0 },
	})
	bus.Register("mem://coordinator", coordinator.Handler())

	disseminator, err := wsgossip.NewDisseminator(wsgossip.DisseminatorConfig{
		Address: "mem://service",
		Caller:  bus,
		App:     &exampleApp{name: "service"},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	bus.Register("mem://service", disseminator.Handler())
	if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", "mem://service", wsgossip.RoleDisseminator); err != nil {
		fmt.Println("error:", err)
		return
	}

	bus.Register("mem://viewer", wsgossip.NewConsumer(&exampleApp{name: "viewer"}).Handler())
	if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", "mem://viewer", wsgossip.RoleConsumer); err != nil {
		fmt.Println("error:", err)
		return
	}

	initiator, err := wsgossip.NewInitiator(wsgossip.InitiatorConfig{
		Address:    "mem://feed",
		Caller:     bus,
		Activation: "mem://coordinator",
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	interaction, err := initiator.StartInteraction(ctx)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, _, err := initiator.Notify(ctx, interaction, exampleEvent{Text: "hello"}); err != nil {
		fmt.Println("error:", err)
		return
	}
	// Unordered output:
	// service received "hello"
	// viewer received "hello"
}

// ExampleExpectedCoverage sizes gossip parameters from the analytic model,
// the way a Coordinator's parameter policy does.
func ExampleExpectedCoverage() {
	cov, _ := wsgossip.ExpectedCoverage(1000, 3, 12)
	fmt.Printf("f=3, r=12, N=1000: expected coverage %.2f\n", cov)
	rounds, _ := wsgossip.RoundsForCoverage(1000, 6, 0.99, 100)
	fmt.Printf("f=6 reaches 99%% in %d rounds\n", rounds)
	// Output:
	// f=3, r=12, N=1000: expected coverage 0.94
	// f=6 reaches 99% in 6 rounds
}
