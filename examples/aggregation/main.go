// Aggregation demo: a Querier computes the average, count, and maximum of
// 64 services' local load figures with nothing but gossip exchanges —
// WS-Gossip's aggregation protocol (push-sum) over the in-memory SOAP
// binding.
//
// A Coordinator hosts Activation/Registration; 64 aggregation services
// subscribe advertising the aggregation protocol; the Querier activates an
// aggregation interaction, the start message floods the coordinator-assigned
// overlay, push-sum rounds run until the estimate stabilizes, and the
// Querier collects the converged result.
//
//	go run ./examples/aggregation
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"wsgossip"
	"wsgossip/internal/soap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggregation:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	bus := soap.NewMemBus()

	// 1. The Coordinator role.
	coordinator := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(1)),
	})
	bus.Register("mem://coordinator", coordinator.Handler())

	// 2. 64 aggregation services, each holding one local measurement
	//    (here: a synthetic load figure).
	const n = 64
	rng := rand.New(rand.NewSource(2))
	truthSum, truthMax := 0.0, 0.0
	var services []*wsgossip.AggregateService
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("mem://service%02d", i)
		load := 10 + rng.Float64()*90
		truthSum += load
		if load > truthMax {
			truthMax = load
		}
		v := load
		svc, err := wsgossip.NewAggregateService(wsgossip.AggregateServiceConfig{
			Address: addr,
			Caller:  bus,
			Value:   func() float64 { return v },
			RNG:     rand.New(rand.NewSource(int64(i) + 3)),
		})
		if err != nil {
			return err
		}
		bus.Register(addr, svc.Handler())
		services = append(services, svc)
		if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", addr,
			wsgossip.RoleDisseminator, wsgossip.ProtocolAggregate); err != nil {
			return err
		}
	}

	// 3. The Querier: the one role whose application code changes.
	querier, err := wsgossip.NewQuerier(wsgossip.QuerierConfig{
		Address:    "mem://querier",
		Caller:     bus,
		Activation: "mem://coordinator",
		RNG:        rand.New(rand.NewSource(4)),
	})
	if err != nil {
		return err
	}
	bus.Register("mem://querier", querier.Handler())
	if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", "mem://querier",
		wsgossip.RoleDisseminator, wsgossip.ProtocolAggregate); err != nil {
		return err
	}

	for _, fn := range []wsgossip.AggregateFunc{
		wsgossip.FuncAvg, wsgossip.FuncCount, wsgossip.FuncMax,
	} {
		task, err := querier.StartAggregation(ctx, fn)
		if err != nil {
			return err
		}
		rounds := 0
		for ; rounds < task.Params.MaxRounds && !querier.Converged(task.ID); rounds++ {
			for _, svc := range services {
				svc.Tick(ctx)
			}
			querier.Tick(ctx)
		}
		est, _ := querier.Estimate(task.ID)
		var truth float64
		switch fn {
		case wsgossip.FuncAvg:
			truth = truthSum / n
		case wsgossip.FuncCount:
			truth = n
		case wsgossip.FuncMax:
			truth = truthMax
		}
		log.Printf("%-5s converged in %2d rounds: estimate %10.4f, ground truth %10.4f (ε budget %d rounds)",
			fn, rounds, est, truth, task.Params.MaxRounds)
		peers, err := querier.Collect(ctx, task, 3)
		if err != nil {
			return err
		}
		for _, p := range peers {
			log.Printf("      peer agrees: estimate %10.4f after %d rounds (converged=%v)",
				p.Estimate, p.Rounds, p.Converged)
		}
	}
	return nil
}
