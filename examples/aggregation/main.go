// Aggregation demo: a Querier computes the average, count, and maximum of
// 64 services' local load figures with nothing but gossip exchanges —
// WS-Gossip's aggregation protocol (push-sum) over the in-memory SOAP
// binding.
//
// A Coordinator hosts Activation/Registration; 64 aggregation services
// subscribe advertising the aggregation protocol; the Querier activates an
// aggregation interaction, the start message floods the coordinator-assigned
// overlay, push-sum rounds fire from each node's own self-clocking Runner on
// a shared deterministic virtual clock — nothing hand-ticks the services —
// and the Querier collects the converged result.
//
//	go run ./examples/aggregation
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"wsgossip"
	"wsgossip/internal/clock"
	"wsgossip/internal/soap"
)

// exchangeEvery is each node's push-sum round period on the virtual clock.
const exchangeEvery = 50 * time.Millisecond

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggregation:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	bus := soap.NewMemBus()
	vc := clock.NewVirtual()
	var runners []*wsgossip.Runner
	startRunner := func(svc interface{ Tick(context.Context) }, seed int64) error {
		r, err := wsgossip.NewRunner(wsgossip.RunnerConfig{
			Clock:          vc,
			RNG:            rand.New(rand.NewSource(seed)),
			Aggregator:     svc,
			AggregateEvery: exchangeEvery,
			JitterFrac:     0.2,
		})
		if err != nil {
			return err
		}
		if err := r.Start(ctx); err != nil {
			return err
		}
		runners = append(runners, r)
		return nil
	}

	// 1. The Coordinator role.
	coordinator := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(1)),
	})
	bus.Register("mem://coordinator", coordinator.Handler())

	// 2. 64 aggregation services, each holding one local measurement
	//    (here: a synthetic load figure).
	const n = 64
	rng := rand.New(rand.NewSource(2))
	truthSum, truthMax := 0.0, 0.0
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("mem://service%02d", i)
		load := 10 + rng.Float64()*90
		truthSum += load
		if load > truthMax {
			truthMax = load
		}
		v := load
		svc, err := wsgossip.NewAggregateService(wsgossip.AggregateServiceConfig{
			Address: addr,
			Caller:  bus,
			Value:   func() float64 { return v },
			RNG:     rand.New(rand.NewSource(int64(i) + 3)),
		})
		if err != nil {
			return err
		}
		bus.Register(addr, svc.Handler())
		if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", addr,
			wsgossip.RoleDisseminator, wsgossip.ProtocolAggregate); err != nil {
			return err
		}
		if err := startRunner(svc, int64(i)+1000); err != nil {
			return err
		}
	}

	// 3. The Querier: the one role whose application code changes.
	querier, err := wsgossip.NewQuerier(wsgossip.QuerierConfig{
		Address:    "mem://querier",
		Caller:     bus,
		Activation: "mem://coordinator",
		RNG:        rand.New(rand.NewSource(4)),
	})
	if err != nil {
		return err
	}
	bus.Register("mem://querier", querier.Handler())
	if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", "mem://querier",
		wsgossip.RoleDisseminator, wsgossip.ProtocolAggregate); err != nil {
		return err
	}
	if err := startRunner(querier, 999); err != nil {
		return err
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	for _, fn := range []wsgossip.AggregateFunc{
		wsgossip.FuncAvg, wsgossip.FuncCount, wsgossip.FuncMax,
	} {
		task, err := querier.StartAggregation(ctx, fn)
		if err != nil {
			return err
		}
		// Advance virtual time round by round; every node's exchange timer
		// fires on its own jittered schedule within each window.
		rounds := 0
		for ; rounds < task.Params.MaxRounds && !querier.Converged(task.ID); rounds++ {
			vc.Advance(exchangeEvery)
		}
		est, _ := querier.Estimate(task.ID)
		var truth float64
		switch fn {
		case wsgossip.FuncAvg:
			truth = truthSum / n
		case wsgossip.FuncCount:
			truth = n
		case wsgossip.FuncMax:
			truth = truthMax
		}
		log.Printf("%-5s converged in %2d rounds: estimate %10.4f, ground truth %10.4f (ε budget %d rounds)",
			fn, rounds, est, truth, task.Params.MaxRounds)
		peers, err := querier.Collect(ctx, task, 3)
		if err != nil {
			return err
		}
		for _, p := range peers {
			log.Printf("      peer agrees: estimate %10.4f after %d rounds (converged=%v)",
				p.Estimate, p.Rounds, p.Converged)
		}
	}
	return nil
}
