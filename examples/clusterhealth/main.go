// Cluster health demo: continuous queries over epoch-windowed push-sum.
//
// A Querier drives three continuous queries — node count, average load, and
// peak load — through an AggregateWindow: every node restarts push-sum at
// each 500ms window boundary on the shared clock, so the frozen estimate of
// the last closed epoch is never more than one window stale and churn is
// absorbed at the next boundary. Eight services join mid-window and the
// demo shows exactly when the count re-tracks: the epoch they joined still
// freezes the old population (joiners relay passively), the one after
// counts them. The closing act prints the same estimates as the /healthz
// "cluster" section every wsgossip-node serves when run with
// -cluster-queries.
//
//	go run ./examples/clusterhealth
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"wsgossip"
	"wsgossip/internal/clock"
	"wsgossip/internal/gossip"
	"wsgossip/internal/obs"
	"wsgossip/internal/soap"
)

const (
	window        = 500 * time.Millisecond // epoch length
	exchangeEvery = 25 * time.Millisecond  // each node's push-sum round period
	initial       = 24                     // services at activation
	joiners       = 8                      // services joining mid-window
)

// view is the demo's stand-in for the membership plane: a mutable peer set
// every node samples its exchange targets from, so nodes that join after
// the coordinator handed out target lists still receive shares. A real
// deployment points AggregateServiceConfig.Peers at a MembershipService.
type view struct {
	mu    sync.Mutex
	addrs []string
}

func (v *view) SelectPeers(rng *rand.Rand, n int, exclude string) []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return gossip.SamplePeers(rng, v.addrs, n, exclude)
}

func (v *view) add(addr string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.addrs = append(v.addrs, addr)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clusterhealth:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	bus := soap.NewMemBus()
	vc := clock.NewVirtual()
	peers := &view{}
	var runners []*wsgossip.Runner
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	startRunner := func(svc interface{ Tick(context.Context) }, seed int64) error {
		r, err := wsgossip.NewRunner(wsgossip.RunnerConfig{
			Clock:          vc,
			RNG:            rand.New(rand.NewSource(seed)),
			Aggregator:     svc,
			AggregateEvery: exchangeEvery,
			JitterFrac:     0.2,
		})
		if err != nil {
			return err
		}
		if err := r.Start(ctx); err != nil {
			return err
		}
		runners = append(runners, r)
		return nil
	}

	coordinator := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(1)),
	})
	bus.Register("mem://coordinator", coordinator.Handler())

	// Each service exposes a named "load" source (ContinuousQuery metrics
	// resolve against Values) plus a default Value the count query falls
	// back to. Loads are 20..20+n so the expected avg/max are obvious.
	addService := func(i int) error {
		addr := fmt.Sprintf("mem://service%02d", i)
		load := 20 + float64(i)
		svc, err := wsgossip.NewAggregateService(wsgossip.AggregateServiceConfig{
			Address: addr,
			Caller:  bus,
			Value:   func() float64 { return load },
			Values:  map[string]func() float64{"load": func() float64 { return load }},
			RNG:     rand.New(rand.NewSource(int64(i) + 10)),
			Clock:   vc,
			Peers:   peers,
		})
		if err != nil {
			return err
		}
		bus.Register(addr, svc.Handler())
		if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", addr,
			wsgossip.RoleDisseminator, wsgossip.ProtocolAggregate); err != nil {
			return err
		}
		peers.add(addr)
		return startRunner(svc, int64(i)+1000)
	}
	for i := 0; i < initial; i++ {
		if err := addService(i); err != nil {
			return err
		}
	}

	// The Querier is the root: it activates each query once and re-seeds
	// the anchor weight every epoch. It holds no load of its own, so the
	// count query counts exactly the contributing services.
	querier, err := wsgossip.NewQuerier(wsgossip.QuerierConfig{
		Address:    "mem://querier",
		Caller:     bus,
		Activation: "mem://coordinator",
		RNG:        rand.New(rand.NewSource(7)),
		Clock:      vc,
		Peers:      peers,
	})
	if err != nil {
		return err
	}
	bus.Register("mem://querier", querier.Handler())
	if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", "mem://querier",
		wsgossip.RoleDisseminator, wsgossip.ProtocolAggregate); err != nil {
		return err
	}
	peers.add("mem://querier")
	win, err := wsgossip.NewAggregateWindow(wsgossip.AggregateWindowConfig{
		Querier: querier,
		Window:  window,
		Queries: []wsgossip.ContinuousQuery{
			{Name: "nodes", Func: wsgossip.FuncCount},
			{Name: "load", Func: wsgossip.FuncAvg},
			{Name: "load-peak", Func: wsgossip.FuncMax},
		},
	})
	if err != nil {
		return err
	}
	if err := startRunner(win, 999); err != nil {
		return err
	}

	advance := func(d time.Duration) {
		for t := time.Duration(0); t < d; t += exchangeEvery {
			vc.Advance(exchangeEvery)
		}
	}
	show := func(when string) {
		log.Printf("%s:", when)
		for _, est := range win.Estimates() {
			log.Printf("  %-5s(%-9s) epoch %d frozen: %8.3f (defined=%v)  live: %8.3f",
				est.Function, est.Query, est.FrozenEpoch, est.Estimate, est.Defined, est.Live)
		}
	}

	// Two full windows: epoch 2 is closed, every query has a stable frozen
	// estimate of the 24-service population.
	advance(2*window + exchangeEvery)
	show(fmt.Sprintf("t=%v, %d services", vc.Now(), initial))

	// Eight services join mid-window. They absorb and relay shares
	// immediately but contribute only from the next epoch boundary on, so
	// the epoch in progress still freezes the population it started with.
	for i := initial; i < initial+joiners; i++ {
		if err := addService(i); err != nil {
			return err
		}
	}
	log.Printf("t=%v: %d services joined mid-window", vc.Now(), joiners)
	advance(window)
	show(fmt.Sprintf("t=%v, epoch the join landed in (joiners still passive)", vc.Now()))
	advance(window)
	show(fmt.Sprintf("t=%v, one boundary later (joiners counted)", vc.Now()))

	// This is exactly what a wsgossip-node run with -cluster-queries
	// serves as the "cluster" section of GET /healthz.
	doc := obs.Health{Node: "mem://querier", Role: "querier", Cluster: obs.ClusterFrom(win)}
	body, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("\nGET /healthz →\n%s\n", body)
	return nil
}
