// Httpcluster: a real SOAP-1.2-over-HTTP WS-Gossip deployment on localhost.
// One coordinator, six disseminators, and one unchanged consumer run as
// actual HTTP servers on ephemeral ports; an initiator activates a gossip
// interaction and issues notifications that spread hop by hop over the wire.
//
//	go run ./examples/httpcluster
package main

import (
	"context"
	"encoding/xml"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"wsgossip"
	"wsgossip/internal/soap"
)

type alert struct {
	XMLName xml.Name `xml:"urn:example:alert Alert"`
	Text    string   `xml:"Text"`
}

// delivered signals each application delivery so the main goroutine waits
// on events instead of sleep-polling.
var delivered = make(chan struct{}, 256)

type recorder struct {
	mu    sync.Mutex
	name  string
	texts []string
}

func (r *recorder) HandleSOAP(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var a alert
	if err := req.Envelope.DecodeBody(&a); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.texts = append(r.texts, a.Text)
	r.mu.Unlock()
	select {
	case delivered <- struct{}{}:
	default:
	}
	return nil, nil
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.texts)
}

// serveSOAP starts an HTTP server for the handler on an ephemeral port and
// returns its base URL and a shutdown function.
func serveSOAP(h soap.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: soap.NewHTTPServer(h), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	url := fmt.Sprintf("http://%s/", ln.Addr().String())
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return url, stop, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "httpcluster:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := soap.NewHTTPClient(&http.Client{Timeout: 5 * time.Second})

	// Coordinator, served over real HTTP. Its public address is only known
	// after the listener binds, so construct it in two steps.
	var coordinator *wsgossip.Coordinator
	coordHandler := soap.HandlerFunc(func(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
		return coordinator.Handler().HandleSOAP(ctx, req)
	})
	coordURL, stopCoord, err := serveSOAP(coordHandler)
	if err != nil {
		return err
	}
	defer stopCoord()
	coordinator = wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{Address: coordURL})
	log.Printf("coordinator at %s", coordURL)

	// Six disseminators.
	const disseminators = 6
	recorders := make([]*recorder, disseminators)
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < disseminators; i++ {
		rec := &recorder{name: fmt.Sprintf("dissem%d", i)}
		recorders[i] = rec
		var d *wsgossip.Disseminator
		handler := soap.HandlerFunc(func(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
			return d.Handler().HandleSOAP(ctx, req)
		})
		url, stop, err := serveSOAP(handler)
		if err != nil {
			return err
		}
		stops = append(stops, stop)
		d, err = wsgossip.NewDisseminator(wsgossip.DisseminatorConfig{
			Address: url,
			Caller:  client,
			App:     rec,
		})
		if err != nil {
			return err
		}
		if err := wsgossip.Subscribe(ctx, client, coordURL, url, wsgossip.RoleDisseminator); err != nil {
			return err
		}
		log.Printf("disseminator %d at %s", i, url)
	}

	// One unchanged consumer.
	consumerRec := &recorder{name: "consumer"}
	consumerURL, stopConsumer, err := serveSOAP(wsgossip.NewConsumer(consumerRec).Handler())
	if err != nil {
		return err
	}
	defer stopConsumer()
	if err := wsgossip.Subscribe(ctx, client, coordURL, consumerURL, wsgossip.RoleConsumer); err != nil {
		return err
	}
	log.Printf("consumer at %s", consumerURL)

	// Initiator.
	initiator, err := wsgossip.NewInitiator(wsgossip.InitiatorConfig{
		Address:    "urn:wsgossip:httpcluster:initiator",
		Caller:     client,
		Activation: coordURL,
	})
	if err != nil {
		return err
	}
	interaction, err := initiator.StartInteraction(ctx)
	if err != nil {
		return err
	}
	log.Printf("interaction %s: fanout=%d hops=%d",
		interaction.Context.Identifier, interaction.Params.Fanout, interaction.Params.Hops)

	const notifications = 3
	for i := 1; i <= notifications; i++ {
		if _, sent, err := initiator.Notify(ctx, interaction, alert{
			Text: fmt.Sprintf("alert %d: breaker tripped", i),
		}); err != nil {
			return err
		} else {
			log.Printf("notification %d issued to %d targets", i, sent)
		}
	}

	// HTTP dissemination is asynchronous one-way at each hop; each delivery
	// signals, so wait on events rather than polling.
	complete := func() bool {
		if consumerRec.count() < 1 {
			return false
		}
		for _, rec := range recorders {
			if rec.count() < notifications {
				return false
			}
		}
		return true
	}
	timeout := time.After(5 * time.Second)
wait:
	for !complete() {
		select {
		case <-delivered:
		case <-timeout:
			log.Printf("epidemic incomplete at the 5s budget; reporting what arrived")
			break wait
		}
	}

	for i, rec := range recorders {
		log.Printf("disseminator %d delivered %d/%d notifications", i, rec.count(), notifications)
	}
	log.Printf("unchanged consumer delivered %d copies", consumerRec.count())
	return nil
}
