// Membership demo: dissemination with no target list anywhere. The
// Coordinator hands out gossip parameters (fanout, hop budget) but zero
// peers — every node discovers the overlay through gossip-maintained
// membership views, joins knowing only one seed address, and samples its
// live view for every pull round. Nodes then leave and join
// mid-interaction and the epidemic still reaches the final population.
//
// Everything runs on one deterministic virtual clock over the in-memory
// SOAP binding: membership exchanges, pull rounds, and the notifications
// all share a single timeline, so the demo prints the same numbers on
// every run.
//
//	go run ./examples/membership
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"wsgossip"
	"wsgossip/internal/clock"
	"wsgossip/internal/soap"
	"wsgossip/internal/transport"
)

const (
	pullEvery     = 50 * time.Millisecond
	exchangeEvery = 100 * time.Millisecond
)

// countingApp counts delivered notifications.
type countingApp struct{ n atomic.Int64 }

func (a *countingApp) HandleSOAP(context.Context, *soap.Request) (*soap.Envelope, error) {
	a.n.Add(1)
	return nil, nil
}

// node is one membership-driven participant.
type node struct {
	addr   string
	app    *countingApp
	dissem *wsgossip.Disseminator
	msvc   *wsgossip.MembershipService
	runner *wsgossip.Runner
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "membership:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	bus := soap.NewMemBus()
	vc := clock.NewVirtual()

	// The coordinator never learns any subscriber: it can only assign
	// parameters. Dissemination must ride the membership overlay.
	coord := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{
		Address: "mem://coordinator",
		Params:  func(int) (fanout, hops int) { return 3, 8 },
	})
	bus.Register("mem://coordinator", coord.Handler())

	nodes := make(map[string]*node)
	boot := func(i int, seeds []string) (*node, error) {
		addr := fmt.Sprintf("mem://node%02d", i)
		dispatcher := soap.NewDispatcher()
		ep := wsgossip.NewMembershipSOAPEndpoint(addr, bus)
		msvc, err := wsgossip.NewMembershipService(wsgossip.MembershipConfig{
			Endpoint:     ep,
			Clock:        vc,
			RNG:          rand.New(rand.NewSource(int64(i)*131 + 7)),
			Fanout:       3,
			SuspectAfter: 8 * exchangeEvery,
			RemoveAfter:  16 * exchangeEvery,
		})
		if err != nil {
			return nil, err
		}
		mux := transport.NewMux()
		msvc.Register(mux)
		mux.Bind(ep)
		ep.RegisterActions(dispatcher)

		app := &countingApp{}
		d, err := wsgossip.NewDisseminator(wsgossip.DisseminatorConfig{
			Address: addr,
			Caller:  bus,
			App:     app,
			RNG:     rand.New(rand.NewSource(int64(i)*31 + 3)),
			Peers:   msvc, // sample the live view, not a frozen list
		})
		if err != nil {
			return nil, err
		}
		d.RegisterActions(dispatcher)
		bus.Register(addr, dispatcher)

		r, err := wsgossip.NewRunner(wsgossip.RunnerConfig{
			Clock:           vc,
			RNG:             rand.New(rand.NewSource(int64(i)*977 + 5)),
			Disseminator:    d,
			PullEvery:       pullEvery,
			Membership:      msvc,
			MembershipEvery: exchangeEvery,
			JitterFrac:      0.2,
		})
		if err != nil {
			return nil, err
		}
		if err := r.Start(ctx); err != nil {
			return nil, err
		}
		n := &node{addr: addr, app: app, dissem: d, msvc: msvc, runner: r}
		nodes[addr] = n
		msvc.Join(ctx, seeds)
		return n, nil
	}

	const nStart = 16
	for i := 0; i < nStart; i++ {
		var seeds []string
		if i > 0 {
			seeds = []string{"mem://node00"}
		}
		if _, err := boot(i, seeds); err != nil {
			return err
		}
	}
	vc.Advance(time.Second) // views self-assemble from one seed address
	meanView := func() float64 {
		sum := 0
		for _, n := range nodes {
			sum += n.msvc.Size()
		}
		return float64(sum) / float64(len(nodes))
	}
	log.Printf("%d nodes bootstrapped from one seed; mean view size %.1f", nStart, meanView())

	// A pull interaction: the initiator (node 0) seeds from its own view.
	n0 := nodes["mem://node00"]
	init, err := wsgossip.NewInitiator(wsgossip.InitiatorConfig{
		Address:    n0.addr,
		Caller:     bus,
		Activation: "mem://coordinator",
		Peers:      n0.msvc,
		RNG:        rand.New(rand.NewSource(11)),
	})
	if err != nil {
		return err
	}
	inter, err := init.StartProtocolInteraction(ctx, wsgossip.ProtocolPullGossip)
	if err != nil {
		return err
	}
	log.Printf("interaction %s: fanout=%d hops=%d, %d coordinator-assigned targets",
		inter.Context.Identifier, inter.Params.Fanout, inter.Params.Hops, len(inter.Params.Targets))
	for _, n := range nodes {
		if err := n.dissem.JoinInteraction(ctx, inter.Context, wsgossip.ProtocolPullGossip); err != nil {
			return err
		}
	}
	type event struct {
		XMLName struct{} `xml:"urn:example:membership Event"`
		Seq     int      `xml:"Seq"`
	}
	if _, _, err := init.Notify(ctx, inter, event{Seq: 1}); err != nil {
		return err
	}
	covered := func(want int64) int {
		got := 0
		for _, n := range nodes {
			if n.app.n.Load() >= want {
				got++
			}
		}
		return got
	}
	w := 0
	for ; covered(1) < len(nodes) && w < 60; w++ {
		vc.Advance(pullEvery)
	}
	log.Printf("event 1 reached all %d nodes in %d pull windows", len(nodes), w)

	// Churn mid-interaction: four nodes leave, six join from the seed.
	for i := 1; i <= 4; i++ {
		addr := fmt.Sprintf("mem://node%02d", i)
		n := nodes[addr]
		n.msvc.Leave(ctx)
		n.runner.Stop()
		bus.Unregister(addr)
		delete(nodes, addr)
	}
	for i := nStart; i < nStart+6; i++ {
		n, err := boot(i, []string{"mem://node00"})
		if err != nil {
			return err
		}
		if err := n.dissem.JoinInteraction(ctx, inter.Context, wsgossip.ProtocolPullGossip); err != nil {
			return err
		}
	}
	if _, _, err := init.Notify(ctx, inter, event{Seq: 2}); err != nil {
		return err
	}
	w = 0
	for ; w < 120; w++ {
		vc.Advance(pullEvery)
		done := 0
		for _, n := range nodes {
			// Joiners pull both events; survivors already hold event 1.
			if n.app.n.Load() >= 2 {
				done++
			}
		}
		if done == len(nodes) {
			break
		}
	}
	log.Printf("after -4/+6 churn, both events reached all %d live nodes (window %d); mean view %.1f",
		len(nodes), w, meanView())

	for _, n := range nodes {
		n.runner.Stop()
	}
	log.Printf("no target list was ever configured: the overlay came entirely from membership gossip")
	return nil
}
