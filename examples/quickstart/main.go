// Quickstart: the paper's Figure 1 in one file, scaled to 32 services over
// the in-memory SOAP binding.
//
// A Coordinator hosts Activation/Registration and the subscription list; 30
// Disseminators (application code untouched, gossip handler in the stack)
// and one unchanged Consumer subscribe; an Initiator activates a gossip
// interaction and issues a single notification, which gossip spreads to
// everyone.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"encoding/xml"
	"fmt"
	"log"
	"math/rand"
	"os"

	"wsgossip"
	"wsgossip/internal/soap"
)

type greeting struct {
	XMLName xml.Name `xml:"urn:example:quickstart Greeting"`
	Text    string   `xml:"Text"`
}

// countingApp is a trivial application service: it counts deliveries.
type countingApp struct {
	name  string
	count int
}

func (a *countingApp) HandleSOAP(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var g greeting
	if err := req.Envelope.DecodeBody(&g); err != nil {
		return nil, err
	}
	a.count++
	return nil, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	bus := soap.NewMemBus()

	// 1. The Coordinator role.
	coordinator := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(1)),
		// Fanout 5 puts the epidemic's expected coverage above 99%; the
		// default policy's fanout 3 stops at the ~94% fixed point.
		Params: func(n int) (int, int) {
			_, hops := wsgossip.DefaultParamPolicy(n)
			return 5, hops
		},
	})
	bus.Register("mem://coordinator", coordinator.Handler())

	// 2. Thirty Disseminators: each wraps an ordinary application service
	//    with the gossip middleware handler.
	const disseminators = 30
	apps := make([]*countingApp, 0, disseminators)
	for i := 0; i < disseminators; i++ {
		addr := fmt.Sprintf("mem://service%02d", i)
		app := &countingApp{name: addr}
		d, err := wsgossip.NewDisseminator(wsgossip.DisseminatorConfig{
			Address: addr,
			Caller:  bus,
			App:     app,
			RNG:     rand.New(rand.NewSource(int64(i) + 2)),
		})
		if err != nil {
			return err
		}
		bus.Register(addr, d.Handler())
		apps = append(apps, app)
		if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", addr, wsgossip.RoleDisseminator); err != nil {
			return err
		}
	}

	// 3. One completely unchanged Consumer.
	consumerApp := &countingApp{name: "mem://consumer"}
	bus.Register("mem://consumer", wsgossip.NewConsumer(consumerApp).Handler())
	if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", "mem://consumer", wsgossip.RoleConsumer); err != nil {
		return err
	}

	// 4. The Initiator: the only role whose application code changes.
	initiator, err := wsgossip.NewInitiator(wsgossip.InitiatorConfig{
		Address:    "mem://initiator",
		Caller:     bus,
		Activation: "mem://coordinator",
	})
	if err != nil {
		return err
	}
	interaction, err := initiator.StartInteraction(ctx)
	if err != nil {
		return err
	}
	log.Printf("interaction %s activated: fanout=%d hops=%d",
		interaction.Context.Identifier, interaction.Params.Fanout, interaction.Params.Hops)

	msgID, sent, err := initiator.Notify(ctx, interaction, greeting{Text: "hello, gossiping services"})
	if err != nil {
		return err
	}
	log.Printf("issued a single notification %s to %d initial targets", msgID, sent)

	// The in-memory bus is synchronous: dissemination has completed.
	reached := 0
	for _, app := range apps {
		if app.count > 0 {
			reached++
		}
	}
	log.Printf("disseminators reached: %d/%d (each delivered exactly once to its app)", reached, disseminators)
	log.Printf("unchanged consumer received %d copy/copies", consumerApp.count)
	return nil
}
