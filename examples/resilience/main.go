// Resilience: the paper's fault-tolerance claim demonstrated at scale on
// the deterministic simulator. 400 gossiping services disseminate an event
// while 30% of them crash mid-dissemination; delivery among survivors stays
// near-complete, and a push-pull repair phase closes the rest. The same
// event through a centralized notifier is shown losing exactly its link
// loss rate.
//
//	go run ./examples/resilience
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"wsgossip/internal/core"
	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
	"wsgossip/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n        = 400
		crashPct = 30
		loss     = 0.15
		seed     = 21
	)
	ctx := context.Background()
	net := simnet.New(simnet.DefaultConfig(seed))
	net.SetLossRate(loss)

	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("svc%03d", i)
	}
	peers := gossip.NewStaticPeers(addrs)
	delivered := make([]map[string]bool, n)
	engines := make([]*gossip.Engine, n)
	for i := range addrs {
		i := i
		delivered[i] = make(map[string]bool)
		eng, err := gossip.New(gossip.Config{
			Style:    gossip.StylePushPull,
			Fanout:   4,
			Hops:     12,
			Endpoint: net.Node(addrs[i]),
			Peers:    peers,
			RNG:      rand.New(rand.NewSource(seed + int64(i))),
			Deliver:  func(r gossip.Rumor) { delivered[i][r.ID] = true },
		})
		if err != nil {
			return err
		}
		mux := transport.NewMux()
		eng.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		engines[i] = eng
	}

	// Crash 30% of the nodes 5 virtual ms after the publish (mid-epidemic).
	rng := rand.New(rand.NewSource(seed))
	crashed := gossip.SamplePeers(rng, addrs, n*crashPct/100, addrs[0])
	net.AfterFunc(5*time.Millisecond, func() {
		for _, a := range crashed {
			net.Crash(a)
		}
	})

	r, err := engines[0].Publish(ctx, []byte("market-halt"))
	if err != nil {
		return err
	}
	net.Run()
	log.Printf("published one event; %d/%d nodes crashed 5ms in", len(crashed), n)
	log.Printf("coverage among survivors after push phase: %.1f%%", 100*coverage(net, addrs, delivered, r.ID))

	// Push-pull anti-entropy closes the gap. Each survivor owns its repair
	// schedule: a self-clocking Runner on the network's virtual clock fires
	// the rounds — the harness only advances time.
	var runners []*core.Runner
	for i := range addrs {
		if net.Crashed(addrs[i]) {
			continue
		}
		runner, err := core.NewRunner(core.RunnerConfig{
			Clock: net.Clock(),
			RNG:   rand.New(rand.NewSource(seed*977 + int64(i))),
			Loops: []core.Loop{{
				Name:   "repair",
				Period: 20 * time.Millisecond,
				Jitter: 2 * time.Millisecond,
				Tick:   engines[i].Tick,
			}},
		})
		if err != nil {
			return err
		}
		if err := runner.Start(ctx); err != nil {
			return err
		}
		runners = append(runners, runner)
	}
	net.RunFor(10 * 20 * time.Millisecond)
	for _, runner := range runners {
		runner.Stop()
	}
	net.Run() // drain deliveries in flight from the final rounds
	log.Printf("coverage among survivors after 10 repair rounds: %.1f%%", 100*coverage(net, addrs, delivered, r.ID))

	// The centralized baseline under the same loss (broker survives).
	bNet := simnet.New(simnet.DefaultConfig(seed + 1))
	bNet.SetLossRate(loss)
	broker := wsn.NewBroker(bNet.Node("broker"))
	bmux := transport.NewMux()
	broker.Register(bmux)
	bmux.Bind(bNet.Node("broker"))
	consumers := make([]*wsn.Consumer, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("c%03d", i)
		consumers[i] = wsn.NewConsumer(bNet.Node(addr))
		mux := transport.NewMux()
		consumers[i].Register(mux)
		mux.Bind(bNet.Node(addr))
		broker.SubscribeLocal(addr)
	}
	if err := broker.Publish(ctx, wsn.Notification{ID: "market-halt"}); err != nil {
		return err
	}
	bNet.Run()
	got := 0
	for _, c := range consumers {
		if c.Has("market-halt") {
			got++
		}
	}
	log.Printf("centralized broker under the same %.0f%% loss: %.1f%% delivered (no redundancy, no repair)",
		loss*100, 100*float64(got)/float64(n))
	return nil
}

func coverage(net *simnet.Network, addrs []string, delivered []map[string]bool, id string) float64 {
	alive, reached := 0, 0
	for i, a := range addrs {
		if net.Crashed(a) {
			continue
		}
		alive++
		if delivered[i][id] {
			reached++
		}
	}
	return float64(reached) / float64(alive)
}
