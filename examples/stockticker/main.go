// Stockticker: the paper's motivating scenario (Section 1) — market data
// flowing among many interconnected trading services. A synthetic Zipf-
// popular quote feed is disseminated through WS-Gossip to 64 subscribed
// services; the example reports per-service delivery and the traffic cost
// against what a centralized notifier would pay.
//
//	go run ./examples/stockticker
package main

import (
	"context"
	"encoding/xml"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"

	"wsgossip"
	"wsgossip/internal/soap"
	"wsgossip/internal/stockfeed"
)

type quoteBody struct {
	XMLName xml.Name `xml:"urn:example:stock Quote"`
	Symbol  string   `xml:"Symbol"`
	Seq     uint64   `xml:"Seq"`
	Price   float64  `xml:"Price"`
}

// tickerApp tracks the quotes a service received, by symbol.
type tickerApp struct {
	mu       sync.Mutex
	received int
	symbols  map[string]int
}

func newTickerApp() *tickerApp {
	return &tickerApp{symbols: make(map[string]int)}
}

func (a *tickerApp) HandleSOAP(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var q quoteBody
	if err := req.Envelope.DecodeBody(&q); err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.received++
	a.symbols[q.Symbol]++
	return nil, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stockticker:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		services = 64
		quotes   = 200
	)
	ctx := context.Background()
	bus := soap.NewMemBus()

	coordinator := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(11)),
		// Size hops for near-complete coverage at this fanout/population.
		Params: func(n int) (int, int) {
			if n < 2 {
				return 1, 1
			}
			fanout := 5
			hops, err := wsgossip.RoundsForCoverage(n, fanout, 0.99, 64)
			if err != nil || hops > 64 {
				hops = 12
			}
			return fanout, hops + 2
		},
	})
	bus.Register("mem://coordinator", coordinator.Handler())

	apps := make([]*tickerApp, services)
	dissems := make([]*wsgossip.Disseminator, services)
	for i := 0; i < services; i++ {
		addr := fmt.Sprintf("mem://trader%02d", i)
		apps[i] = newTickerApp()
		d, err := wsgossip.NewDisseminator(wsgossip.DisseminatorConfig{
			Address: addr,
			Caller:  bus,
			App:     apps[i],
			RNG:     rand.New(rand.NewSource(100 + int64(i))),
		})
		if err != nil {
			return err
		}
		dissems[i] = d
		bus.Register(addr, d.Handler())
		if err := wsgossip.Subscribe(ctx, bus, "mem://coordinator", addr, wsgossip.RoleDisseminator); err != nil {
			return err
		}
	}

	// The market feed is the Initiator.
	initiator, err := wsgossip.NewInitiator(wsgossip.InitiatorConfig{
		Address:    "mem://feed",
		Caller:     bus,
		Activation: "mem://coordinator",
	})
	if err != nil {
		return err
	}
	interaction, err := initiator.StartInteraction(ctx)
	if err != nil {
		return err
	}
	log.Printf("feed interaction: fanout=%d hops=%d", interaction.Params.Fanout, interaction.Params.Hops)

	feed, err := stockfeed.New(stockfeed.DefaultConfig(7))
	if err != nil {
		return err
	}
	for i := 0; i < quotes; i++ {
		q := feed.Next()
		if _, _, err := initiator.Notify(ctx, interaction, quoteBody{
			Symbol: q.Symbol, Seq: q.Seq, Price: q.Price,
		}); err != nil {
			return err
		}
	}

	// Report delivery.
	full, total := 0, 0
	for _, app := range apps {
		app.mu.Lock()
		n := app.received
		app.mu.Unlock()
		total += n
		if n == quotes {
			full++
		}
	}
	log.Printf("disseminated %d quotes to %d services", quotes, services)
	log.Printf("services with complete feed: %d/%d (mean delivery %.1f%%)",
		full, services, 100*float64(total)/float64(quotes*services))

	// Traffic accounting: gossip forwards vs the N sends/quote a broker pays.
	var forwards int64
	for _, d := range dissems {
		forwards += d.Stats().Forwarded
	}
	log.Printf("gossip forwards: %d total (%.1f per quote; a centralized broker sends %d per quote)",
		forwards, float64(forwards)/float64(quotes), services)

	// Hot symbols, per the Zipf popularity of the synthetic market.
	hot := make(map[string]int)
	for _, app := range apps {
		app.mu.Lock()
		for s, c := range app.symbols {
			hot[s] += c
		}
		app.mu.Unlock()
	}
	type kv struct {
		sym string
		n   int
	}
	var ranked []kv
	for s, c := range hot {
		ranked = append(ranked, kv{s, c})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })
	top := ranked
	if len(top) > 3 {
		top = top[:3]
	}
	for i, e := range top {
		log.Printf("hot symbol #%d: %s (%d deliveries)", i+1, e.sym, e.n)
	}
	return nil
}
