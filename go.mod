module wsgossip

go 1.24
