package aggregate

import (
	"encoding/xml"
	"fmt"
	"math"

	"wsgossip/internal/core"
)

// Func identifies the aggregate function an interaction computes.
type Func string

// Supported aggregate functions.
const (
	FuncCount Func = "count"
	FuncSum   Func = "sum"
	FuncAvg   Func = "avg"
	FuncMin   Func = "min"
	FuncMax   Func = "max"
)

// ParseFunc validates an aggregate function name.
func ParseFunc(name string) (Func, error) {
	switch Func(name) {
	case FuncCount, FuncSum, FuncAvg, FuncMin, FuncMax:
		return Func(name), nil
	}
	return "", fmt.Errorf("aggregate: unknown function %q", name)
}

// Aggregation protocol SOAP actions.
const (
	// ActionStart disseminates the start of an aggregation task over the
	// coordinator-assigned overlay (hop-bounded flood, deduplicated per
	// task).
	ActionStart = core.Namespace + ":aggregate:start"
	// ActionExchange carries one push-sum share between peers.
	ActionExchange = core.Namespace + ":aggregate:exchange"
	// ActionQuery asks a participant for its current estimate.
	ActionQuery = core.Namespace + ":aggregate:query"
	// ActionQueryResponse answers ActionQuery.
	ActionQueryResponse = core.Namespace + ":aggregate:queryResponse"
)

// Start announces an aggregation task. It travels with the interaction's
// CoordinationContext header so first-contact services can register.
type Start struct {
	XMLName  xml.Name `xml:"urn:wsgossip:2008 AggregateStart"`
	TaskID   string   `xml:"TaskID"`
	Function string   `xml:"Function"`
	// Root is the address holding the anchor weight for count/sum.
	Root string `xml:"Root"`
	// Hops is the remaining flood budget for re-forwarding the start.
	Hops int `xml:"Hops"`
	// WindowMillis, when positive, marks the task continuous: push-sum
	// restarts every window, and exchanges ride the acked protocol.
	WindowMillis int64 `xml:"WindowMillis,omitempty"`
	// Metric names the local value source a continuous task samples each
	// epoch (resolved against ServiceConfig.Values, falling back to Value).
	Metric string `xml:"Metric,omitempty"`
}

// Share is one push-sum exchange: a (sum, weight) mass transfer plus the
// idempotent extreme merge for min/max tasks. It also travels with the
// CoordinationContext header, so a service that missed the start can still
// join passively and conserve the mass it receives.
type Share struct {
	XMLName  xml.Name `xml:"urn:wsgossip:2008 AggregateShare"`
	TaskID   string   `xml:"TaskID"`
	Function string   `xml:"Function"`
	From     string   `xml:"From"`
	Sum      float64  `xml:"Sum"`
	Weight   float64  `xml:"Weight"`
	// HasExtremes marks Min/Max as valid (a passive node has none yet).
	HasExtremes bool    `xml:"HasExtremes"`
	Min         float64 `xml:"Min,omitempty"`
	Max         float64 `xml:"Max,omitempty"`
	// Continuous-mode fields. WindowMillis > 0 marks the share as part of
	// an epoch-windowed task; it carries everything a node that never saw
	// the start needs to join: the window, the epoch, the anchor address,
	// and the metric name. Seq is the sender's per-task sequence number —
	// the receiver dedups on (From, Seq) so a retried share is absorbed
	// exactly once, and the ack quotes it back.
	WindowMillis int64  `xml:"WindowMillis,omitempty"`
	Epoch        uint64 `xml:"Epoch,omitempty"`
	Seq          uint64 `xml:"Seq,omitempty"`
	Root         string `xml:"Root,omitempty"`
	Metric       string `xml:"Metric,omitempty"`
}

// Query requests a participant's current estimate.
type Query struct {
	XMLName xml.Name `xml:"urn:wsgossip:2008 AggregateQuery"`
	TaskID  string   `xml:"TaskID"`
}

// QueryResult is the answer to a Query.
type QueryResult struct {
	XMLName   xml.Name `xml:"urn:wsgossip:2008 AggregateQueryResult"`
	TaskID    string   `xml:"TaskID"`
	Function  string   `xml:"Function"`
	Estimate  float64  `xml:"Estimate"`
	Weight    float64  `xml:"Weight"`
	Rounds    int      `xml:"Rounds"`
	Converged bool     `xml:"Converged"`
}

// convergenceWindow is how many consecutive stable rounds declare
// convergence.
const convergenceWindow = 3

// minWeight is the weight below which an estimate is considered undefined
// (a passive node that has not yet received meaningful mass).
const minWeight = 1e-12

// State is one node's push-sum state for a single aggregation task. It is
// pure protocol math — no I/O — so it is shared by the SOAP-level Service
// and the transport-level SimNode, and unit-testable in isolation.
type State struct {
	fn     Func
	sum    float64
	weight float64

	hasExtremes bool
	min, max    float64

	contributed bool // local value already injected into the mass
	rooted      bool // anchor weight already seeded

	rounds  int
	history []float64 // estimates recorded at each round start
}

// NewState returns the initial state of one participant.
//
//	avg:      (value, 1) everywhere — estimates converge to the mean.
//	sum:      (value, 0); the root contributes the single anchor weight.
//	count:    (1, 0);     idem — estimates converge to the population size.
//	min/max:  extremes only; (sum, weight) stay zero.
//
// root marks the anchor node (normally the Querier); passive marks a node
// that joined without a local value (it relays mass but contributes none).
func NewState(fn Func, value float64, root, passive bool) *State {
	s := &State{fn: fn}
	if !passive {
		s.Contribute(value)
	}
	if root {
		s.weight += anchorWeight(fn)
		s.rooted = true
	}
	return s
}

// Contribute injects the node's local value into the conserved mass. It is
// called once at task creation for nodes that know their value then, and
// once more by the upgrade path when a node that joined passively (an
// exchange share outran the start flood) finally receives the start.
// Contributed guards against double counting.
func (s *State) Contribute(value float64) {
	if s.contributed {
		return
	}
	s.contributed = true
	switch s.fn {
	case FuncAvg:
		s.sum += value
		s.weight++
	case FuncSum:
		s.sum += value
	case FuncCount:
		s.sum++
	case FuncMin, FuncMax:
		s.Absorb(Share{HasExtremes: true, Min: value, Max: value})
	}
}

// ContributeAnchor injects the root's anchor weight if it has not been
// seeded yet (the upgrade path's counterpart for a root that was first
// reached by an exchange share).
func (s *State) ContributeAnchor() {
	if s.rooted {
		return
	}
	s.rooted = true
	s.weight += anchorWeight(s.fn)
}

// Contributed reports whether the node's local value is already part of the
// conserved mass.
func (s *State) Contributed() bool { return s.contributed }

// anchorWeight is the root's weight contribution per function.
func anchorWeight(fn Func) float64 {
	switch fn {
	case FuncSum, FuncCount:
		return 1
	}
	return 0
}

// Func returns the task's aggregate function.
func (s *State) Func() Func { return s.fn }

// Rounds returns how many exchange rounds the node has run.
func (s *State) Rounds() int { return s.rounds }

// Mass returns the node's current (sum, weight) pair — the conserved
// quantities.
func (s *State) Mass() (sum, weight float64) { return s.sum, s.weight }

// Estimate returns the node's current estimate and whether it is defined.
func (s *State) Estimate() (float64, bool) {
	switch s.fn {
	case FuncMin:
		return s.min, s.hasExtremes
	case FuncMax:
		return s.max, s.hasExtremes
	}
	if s.weight < minWeight {
		return 0, false
	}
	return s.sum / s.weight, true
}

// Split carves the state into n+1 equal shares, keeps one, and returns the
// n outgoing (sum, weight) shares' common value. Extremes are copied, not
// split — they merge idempotently.
func (s *State) Split(n int) (shareSum, shareWeight float64) {
	if n <= 0 {
		return 0, 0
	}
	parts := float64(n + 1)
	shareSum = s.sum / parts
	shareWeight = s.weight / parts
	s.sum -= shareSum * float64(n)
	s.weight -= shareWeight * float64(n)
	return shareSum, shareWeight
}

// Absorb merges an incoming share into the state.
func (s *State) Absorb(sh Share) {
	s.sum += sh.Sum
	s.weight += sh.Weight
	if sh.HasExtremes {
		if !s.hasExtremes {
			s.hasExtremes = true
			s.min, s.max = sh.Min, sh.Max
		} else {
			s.min = math.Min(s.min, sh.Min)
			s.max = math.Max(s.max, sh.Max)
		}
	}
}

// Share builds the wire share for one outgoing transfer.
func (s *State) share(taskID, from string, shareSum, shareWeight float64) Share {
	return Share{
		TaskID:      taskID,
		Function:    string(s.fn),
		From:        from,
		Sum:         shareSum,
		Weight:      shareWeight,
		HasExtremes: s.hasExtremes,
		Min:         s.min,
		Max:         s.max,
	}
}

// BeginRound records the round boundary for convergence detection and
// returns the round number.
func (s *State) BeginRound() int {
	est, ok := s.Estimate()
	if !ok {
		est = math.NaN()
	}
	s.history = append(s.history, est)
	if len(s.history) > convergenceWindow {
		s.history = s.history[len(s.history)-convergenceWindow:]
	}
	s.rounds++
	return s.rounds
}

// Converged reports whether the estimate has been defined and stable to
// within relative eps over the last convergenceWindow recorded rounds.
func (s *State) Converged(eps float64) bool {
	if len(s.history) < convergenceWindow {
		return false
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range s.history {
		if math.IsNaN(e) {
			return false
		}
		lo = math.Min(lo, e)
		hi = math.Max(hi, e)
	}
	scale := math.Max(math.Abs(lo), math.Abs(hi))
	if scale < minWeight {
		return true // stable at zero
	}
	return (hi-lo)/scale <= eps
}
