package aggregate

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"wsgossip/internal/core"
	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
	"wsgossip/internal/wscoord"
)

// cluster is an N-service aggregation deployment over the in-memory SOAP
// bus, plus its querier.
type cluster struct {
	bus      *soap.MemBus
	coord    *core.Coordinator
	querier  *Querier
	services []*Service
	values   []float64
}

func newCluster(t *testing.T, n int, seed int64, value func(i int) float64) *cluster {
	t.Helper()
	ctx := context.Background()
	bus := soap.NewMemBus()
	c := &cluster{bus: bus}
	c.coord = core.NewCoordinator(core.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(seed)),
	})
	bus.Register("mem://coordinator", c.coord.Handler())
	for i := 0; i < n; i++ {
		addr := addrOf(i)
		v := value(i)
		c.values = append(c.values, v)
		svc, err := NewService(ServiceConfig{
			Address: addr,
			Caller:  bus,
			Value:   func() float64 { return v },
			RNG:     rand.New(rand.NewSource(seed + 100 + int64(i))),
		})
		if err != nil {
			t.Fatalf("NewService: %v", err)
		}
		bus.Register(addr, svc.Handler())
		c.services = append(c.services, svc)
		if err := core.SubscribeClient(ctx, bus, "mem://coordinator", addr,
			core.RoleDisseminator, core.ProtocolAggregate); err != nil {
			t.Fatalf("subscribe %s: %v", addr, err)
		}
	}
	q, err := NewQuerier(QuerierConfig{
		Address:    "mem://querier",
		Caller:     bus,
		Activation: "mem://coordinator",
		RNG:        rand.New(rand.NewSource(seed + 7)),
	})
	if err != nil {
		t.Fatalf("NewQuerier: %v", err)
	}
	bus.Register("mem://querier", q.Handler())
	if err := core.SubscribeClient(ctx, bus, "mem://coordinator", "mem://querier",
		core.RoleDisseminator, core.ProtocolAggregate); err != nil {
		t.Fatalf("subscribe querier: %v", err)
	}
	c.querier = q
	return c
}

func addrOf(i int) string {
	return "mem://agg" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// run starts an aggregation and drives exchange rounds until the querier's
// estimate converges (or the round budget runs out). Returns the task and
// the number of driven rounds.
func (c *cluster) run(t *testing.T, fn Func) (*Task, int) {
	t.Helper()
	ctx := context.Background()
	tk, err := c.querier.StartAggregation(ctx, fn)
	if err != nil {
		t.Fatalf("StartAggregation(%s): %v", fn, err)
	}
	maxRounds := tk.Params.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100
	}
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		for _, svc := range c.services {
			svc.Tick(ctx)
		}
		c.querier.Tick(ctx)
		if c.querier.Converged(tk.ID) {
			rounds++
			break
		}
	}
	return tk, rounds
}

// participants counts services that joined the task.
func (c *cluster) participants(taskID string) int {
	n := 0
	for _, svc := range c.services {
		if _, _, ok := svc.Mass(taskID); ok {
			n++
		}
	}
	return n
}

// totalMass sums (s, w) across every participant including the querier.
func (c *cluster) totalMass(taskID string) (float64, float64) {
	var sum, weight float64
	for _, svc := range c.services {
		s, w, ok := svc.Mass(taskID)
		if ok {
			sum += s
			weight += w
		}
	}
	s, w, _ := c.querier.svc.Mass(taskID)
	return sum + s, weight + w
}

// TestQuerierAvgWithinOnePercentN64 is the acceptance bar: a Querier over
// an N=64 MemBus cluster obtains an average within 1% of ground truth using
// only gossip exchanges.
func TestQuerierAvgWithinOnePercentN64(t *testing.T) {
	const n = 64
	c := newCluster(t, n, 11, func(i int) float64 { return 10 + 3*float64(i) })
	truth := 0.0
	for _, v := range c.values {
		truth += v
	}
	truth /= float64(n)

	tk, rounds := c.run(t, FuncAvg)
	if got := c.participants(tk.ID); got != n {
		t.Fatalf("start dissemination reached %d/%d services", got, n)
	}
	est, ok := c.querier.Estimate(tk.ID)
	if !ok {
		t.Fatalf("querier has no defined estimate after %d rounds", rounds)
	}
	relErr := math.Abs(est-truth) / truth
	t.Logf("avg: truth=%.4f est=%.4f relErr=%.2e rounds=%d", truth, est, relErr, rounds)
	if relErr > 0.01 {
		t.Fatalf("avg estimate %.6f vs truth %.6f: relative error %.4f > 1%%", est, truth, relErr)
	}
	if !c.querier.Converged(tk.ID) {
		t.Fatalf("querier did not converge within %d rounds", tk.Params.MaxRounds)
	}
}

// TestMassConservation verifies the engine's core invariant: Σs and Σw are
// unchanged by any number of exchange rounds.
func TestMassConservation(t *testing.T) {
	const n = 32
	c := newCluster(t, n, 3, func(i int) float64 { return float64(i * i) })
	tk, _ := c.run(t, FuncAvg)

	wantSum := 0.0
	for _, svc := range c.services {
		if _, _, ok := svc.Mass(tk.ID); ok {
			_ = svc
		}
	}
	for i, v := range c.values {
		if _, _, ok := c.services[i].Mass(tk.ID); ok {
			wantSum += v
		}
	}
	gotSum, gotWeight := c.totalMass(tk.ID)
	wantWeight := float64(c.participants(tk.ID)) // avg: w=1 per participant
	if math.Abs(gotSum-wantSum) > 1e-6*math.Abs(wantSum) {
		t.Fatalf("sum mass not conserved: got %.9f want %.9f", gotSum, wantSum)
	}
	if math.Abs(gotWeight-wantWeight) > 1e-9 {
		t.Fatalf("weight mass not conserved: got %.9f want %.9f", gotWeight, wantWeight)
	}
}

// TestCountSumMinMax checks the remaining aggregate functions end to end.
func TestCountSumMinMax(t *testing.T) {
	const n = 48
	value := func(i int) float64 { return 5 + float64((i*37)%101) }
	cases := []struct {
		fn    Func
		truth func(vals []float64) float64
	}{
		{FuncCount, func(vals []float64) float64 { return float64(len(vals)) }},
		{FuncSum, func(vals []float64) float64 {
			s := 0.0
			for _, v := range vals {
				s += v
			}
			return s
		}},
		{FuncMin, func(vals []float64) float64 {
			m := math.Inf(1)
			for _, v := range vals {
				m = math.Min(m, v)
			}
			return m
		}},
		{FuncMax, func(vals []float64) float64 {
			m := math.Inf(-1)
			for _, v := range vals {
				m = math.Max(m, v)
			}
			return m
		}},
	}
	for _, tc := range cases {
		t.Run(string(tc.fn), func(t *testing.T) {
			c := newCluster(t, n, int64(len(tc.fn))*13, func(i int) float64 { return value(i) })
			tk, rounds := c.run(t, tc.fn)
			if got := c.participants(tk.ID); got != n {
				t.Fatalf("start reached %d/%d services", got, n)
			}
			truth := tc.truth(c.values)
			est, ok := c.querier.Estimate(tk.ID)
			if !ok {
				t.Fatalf("no defined estimate after %d rounds", rounds)
			}
			relErr := math.Abs(est-truth) / math.Max(math.Abs(truth), 1)
			t.Logf("%s: truth=%.4f est=%.4f relErr=%.2e rounds=%d", tc.fn, truth, est, relErr, rounds)
			if relErr > 0.01 {
				t.Fatalf("%s estimate %.6f vs truth %.6f: relative error %.4f > 1%%", tc.fn, est, truth, relErr)
			}
		})
	}
}

// TestCollectAgreement drives a task to convergence and checks that sampled
// peers report estimates agreeing with the querier's.
func TestCollectAgreement(t *testing.T) {
	const n = 32
	c := newCluster(t, n, 5, func(i int) float64 { return 100 + float64(i) })
	tk, _ := c.run(t, FuncAvg)
	results, err := c.querier.Collect(context.Background(), tk, 5)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(results) == 0 {
		t.Fatalf("Collect returned no results")
	}
	own, _ := c.querier.Estimate(tk.ID)
	for _, r := range results {
		if math.Abs(r.Estimate-own)/own > 0.01 {
			t.Fatalf("peer estimate %.6f disagrees with querier %.6f by >1%%", r.Estimate, own)
		}
	}
}

// TestQueryUnknownTaskFaults checks the negative path of the query action.
func TestQueryUnknownTaskFaults(t *testing.T) {
	c := newCluster(t, 4, 9, func(i int) float64 { return 1 })
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To:        addrOf(0),
		Action:    ActionQuery,
		MessageID: wsa.NewMessageID(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(Query{TaskID: "no-such-task"}); err != nil {
		t.Fatal(err)
	}
	_, err := c.bus.Call(context.Background(), addrOf(0), env)
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("expected SOAP fault, got %v", err)
	}
}

// TestPassiveJoinUpgradedByLateStart reproduces an exchange share outrunning
// the start flood: the node first joins passively (contributing nothing),
// then the start arrives and must inject the node's local value exactly once.
func TestPassiveJoinUpgradedByLateStart(t *testing.T) {
	ctx := context.Background()
	c := newCluster(t, 4, 13, func(i int) float64 { return 100 })
	// Activate a real interaction so registration works.
	tk, err := c.querier.StartAggregation(ctx, FuncAvg)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh service that the start flood has not reached yet.
	late, err := NewService(ServiceConfig{
		Address: "mem://late",
		Caller:  c.bus,
		Value:   func() float64 { return 42 },
		RNG:     rand.New(rand.NewSource(99)),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.bus.Register("mem://late", late.Handler())

	sendTo := func(action string, body any) {
		env := soap.NewEnvelope()
		if err := env.SetAddressing(wsa.Headers{
			To: "mem://late", Action: action, MessageID: wsa.NewMessageID(),
		}); err != nil {
			t.Fatal(err)
		}
		if err := wscoord.AttachContext(env, tk.Context); err != nil {
			t.Fatal(err)
		}
		if err := env.SetBody(body); err != nil {
			t.Fatal(err)
		}
		if err := c.bus.Send(ctx, "mem://late", env); err != nil {
			t.Fatal(err)
		}
	}

	// 1. Exchange share arrives first: passive join, no value contributed.
	sendTo(ActionExchange, Share{TaskID: tk.ID, Function: string(FuncAvg), From: "mem://peer", Sum: 7, Weight: 0.5})
	sum, weight, ok := late.Mass(tk.ID)
	if !ok || sum != 7 || weight != 0.5 {
		t.Fatalf("passive join mass = (%v, %v, %v), want (7, 0.5, true)", sum, weight, ok)
	}
	// 2. The start finally arrives: the local value must be injected once.
	start := Start{TaskID: tk.ID, Function: string(FuncAvg), Root: c.querier.Address(), Hops: 0}
	sendTo(ActionStart, start)
	sum, weight, _ = late.Mass(tk.ID)
	if sum != 7+42 || weight != 1.5 {
		t.Fatalf("after late start mass = (%v, %v), want (49, 1.5)", sum, weight)
	}
	// 3. A duplicate start must not double-count.
	sendTo(ActionStart, start)
	sum, weight, _ = late.Mass(tk.ID)
	if sum != 7+42 || weight != 1.5 {
		t.Fatalf("duplicate start double-counted: mass = (%v, %v)", sum, weight)
	}
}

// TestStateSplitAbsorbRoundTrip checks the pure push-sum math.
func TestStateSplitAbsorbRoundTrip(t *testing.T) {
	a := NewState(FuncAvg, 10, false, false)
	b := NewState(FuncAvg, 30, false, false)
	for r := 0; r < 50; r++ {
		sa, wa := a.Split(1)
		sb, wb := b.Split(1)
		a.Absorb(Share{Sum: sb, Weight: wb})
		b.Absorb(Share{Sum: sa, Weight: wa})
	}
	ea, _ := a.Estimate()
	eb, _ := b.Estimate()
	if math.Abs(ea-20) > 1e-9 || math.Abs(eb-20) > 1e-9 {
		t.Fatalf("two-node push-sum should converge to 20, got %.9f and %.9f", ea, eb)
	}
	sa, wa := a.Mass()
	sb, wb := b.Mass()
	if math.Abs(sa+sb-40) > 1e-9 || math.Abs(wa+wb-2) > 1e-9 {
		t.Fatalf("mass not conserved: sums %.9f weights %.9f", sa+sb, wa+wb)
	}
}
