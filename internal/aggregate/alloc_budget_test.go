package aggregate

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"wsgossip/internal/gossip"
	"wsgossip/internal/transport"
)

// Allocation-budget regression guard for the windowed per-exchange hot
// path: one full acked exchange — encode and send a share, decode and
// absorb it, encode and send the ack, decode and commit it. A million-node
// window runs this path fanout×nodes times per round, so its cost must not
// silently regress. The budget is committed in testdata/alloc_budget.json;
// CI runs this test on every push.

// staticClock pins virtual time so no epoch roll happens inside the
// measured loop. It sits exactly on an epoch boundary so both nodes
// contribute from their first roll (mid-window creation defers to the next
// boundary and would leave the pair passive).
type staticClock struct{ now time.Duration }

func (c staticClock) Now() time.Duration { return c.now }
func (c staticClock) AfterFunc(time.Duration, func()) func() bool {
	panic("aggregate: alloc bench must not schedule timers")
}

// loopback is a two-endpoint synchronous fabric: Send invokes the peer's
// handler inline, so one Tick completes the whole share→absorb→ack→commit
// cycle before returning.
type loopback struct {
	handlers map[string]transport.Handler
}

type loopEndpoint struct {
	fab  *loopback
	addr string
}

func (e *loopEndpoint) Addr() string { return e.addr }
func (e *loopEndpoint) Send(ctx context.Context, msg transport.Message) error {
	h := e.fab.handlers[msg.To]
	if h == nil {
		return transport.ErrUnreachable
	}
	msg.From = e.addr
	return h(ctx, msg)
}
func (e *loopEndpoint) SetHandler(h transport.Handler) { e.fab.handlers[e.addr] = h }

func newExchangePair(t testing.TB) (*SimNode, *SimNode) {
	t.Helper()
	fab := &loopback{handlers: make(map[string]transport.Handler)}
	clk := staticClock{now: 2 * time.Second}
	mk := func(addr, peer string, root bool) *SimNode {
		ep := &loopEndpoint{fab: fab, addr: addr}
		n, err := NewSimNode(SimNodeConfig{
			Endpoint: ep,
			Peers:    gossip.NewStaticPeers([]string{peer}),
			Fanout:   1,
			TaskID:   "bench",
			Func:     FuncAvg,
			Value:    1,
			Root:     root,
			RNG:      rand.New(rand.NewSource(1)),
			Window:   time.Second,
			Clock:    clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := transport.NewMux()
		n.Register(mux)
		mux.Bind(ep)
		return n
	}
	a := mk("a", "b", true)
	b := mk("b", "a", false)
	return a, b
}

func TestWindowedExchangeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	raw, err := os.ReadFile("testdata/alloc_budget.json")
	if err != nil {
		t.Fatalf("read alloc budget: %v", err)
	}
	var budget struct {
		MaxAllocs float64 `json:"windowed_exchange_max_allocs"`
	}
	if err := json.Unmarshal(raw, &budget); err != nil {
		t.Fatalf("parse alloc budget: %v", err)
	}
	if budget.MaxAllocs <= 0 {
		t.Fatal("alloc budget missing windowed_exchange_max_allocs")
	}
	a, b := newExchangePair(t)
	ctx := context.Background()
	// Warm up: first tick rolls the epoch and sizes the maps.
	a.Tick(ctx)
	b.Tick(ctx)
	allocs := testing.AllocsPerRun(200, func() {
		a.Tick(ctx)
	})
	st := a.SimStats()
	if st.Commits == 0 || st.Recovered != 0 {
		t.Fatalf("bench pair did not exercise the commit path: %+v", st)
	}
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding = %g after synchronous acks, want 0", a.Outstanding())
	}
	if e := a.MassError(); e != 0 {
		t.Fatalf("mass error = %g, want exactly 0", e)
	}
	if allocs > budget.MaxAllocs {
		t.Errorf("windowed exchange = %.1f allocs/op, budget %.0f (testdata/alloc_budget.json)",
			allocs, budget.MaxAllocs)
	}
	t.Logf("windowed exchange: %.1f allocs/op (budget %.0f)", allocs, budget.MaxAllocs)
}
