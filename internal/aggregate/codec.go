package aggregate

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

// Hand-rolled codec for the simulator exchange wire format. The encoder
// emits plain JSON (field order fixed, minimal escaping) and the decoder is
// a strict single-purpose parser, so the per-exchange hot path stays within
// an allocation budget instead of paying encoding/json's reflection. The
// contract, enforced by FuzzSimShareCodec differentially: whenever
// decodeSimShare accepts an input, encoding/json accepts it too and decodes
// the same values; and append→decode round-trips every encodable share
// exactly. The decoder may reject inputs encoding/json would accept — the
// wire only ever carries this encoder's output.

// appendJSONString appends s as a JSON string literal, escaping exactly the
// characters RFC 8259 requires (quote, backslash, control bytes).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			dst = append(dst, '\\', '"')
		case c == '\\':
			dst = append(dst, '\\', '\\')
		case c < 0x20:
			switch c {
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				const hex = "0123456789abcdef"
				dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
			}
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// appendFloat appends f in the shortest round-trippable form. Non-finite
// values are not representable in JSON; the protocol never produces them.
func appendFloat(dst []byte, f float64) []byte {
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}

// appendSimShare encodes sh onto dst.
func appendSimShare(dst []byte, sh *simShare) []byte {
	dst = append(dst, `{"task":`...)
	dst = appendJSONString(dst, sh.Task)
	dst = append(dst, `,"fn":`...)
	dst = appendJSONString(dst, sh.Function)
	dst = append(dst, `,"s":`...)
	dst = appendFloat(dst, sh.Sum)
	dst = append(dst, `,"w":`...)
	dst = appendFloat(dst, sh.Weight)
	if sh.HasExtremes {
		dst = append(dst, `,"he":true,"min":`...)
		dst = appendFloat(dst, sh.Min)
		dst = append(dst, `,"max":`...)
		dst = appendFloat(dst, sh.Max)
	}
	if sh.Epoch != 0 {
		dst = append(dst, `,"e":`...)
		dst = strconv.AppendUint(dst, sh.Epoch, 10)
	}
	if sh.Seq != 0 {
		dst = append(dst, `,"q":`...)
		dst = strconv.AppendUint(dst, sh.Seq, 10)
	}
	return append(dst, '}')
}

// appendSimAck encodes an exchange ack onto dst.
func appendSimAck(dst []byte, a *simAck) []byte {
	dst = append(dst, `{"task":`...)
	dst = appendJSONString(dst, a.Task)
	dst = append(dst, `,"e":`...)
	dst = strconv.AppendUint(dst, a.Epoch, 10)
	dst = append(dst, `,"q":`...)
	return append(strconv.AppendUint(dst, a.Seq, 10), '}')
}

// simDecoder is a minimal JSON scanner over one message body.
type simDecoder struct {
	data []byte
	pos  int
}

func (d *simDecoder) errf(format string, args ...any) error {
	return fmt.Errorf("aggregate: sim codec at %d: %s", d.pos, fmt.Sprintf(format, args...))
}

func (d *simDecoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

func (d *simDecoder) expect(c byte) error {
	d.skipWS()
	if d.pos >= len(d.data) || d.data[d.pos] != c {
		return d.errf("expected %q", string(c))
	}
	d.pos++
	return nil
}

// str decodes a JSON string literal, handling the full escape set
// (including \uXXXX with surrogate pairs) the way encoding/json does.
func (d *simDecoder) str() (string, error) {
	d.skipWS()
	if d.pos >= len(d.data) || d.data[d.pos] != '"' {
		return "", d.errf("expected string")
	}
	d.pos++
	start := d.pos
	// Fast path: no escapes, no control bytes. Invalid UTF-8 is rejected
	// (stricter than encoding/json's U+FFFD substitution — the dual-success
	// agreement the fuzzer enforces only requires our accepts to be a
	// value-identical subset of encoding/json's).
	for d.pos < len(d.data) {
		c := d.data[d.pos]
		if c == '"' {
			s := string(d.data[start:d.pos])
			d.pos++
			if !utf8.ValidString(s) {
				return "", d.errf("invalid UTF-8 in string")
			}
			return s, nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
		d.pos++
	}
	// Slow path with escapes.
	buf := append([]byte(nil), d.data[start:d.pos]...)
	for d.pos < len(d.data) {
		c := d.data[d.pos]
		switch {
		case c == '"':
			d.pos++
			if !utf8.Valid(buf) {
				return "", d.errf("invalid UTF-8 in string")
			}
			return string(buf), nil
		case c < 0x20:
			return "", d.errf("control byte in string")
		case c == '\\':
			d.pos++
			if d.pos >= len(d.data) {
				return "", d.errf("truncated escape")
			}
			e := d.data[d.pos]
			d.pos++
			switch e {
			case '"', '\\', '/':
				buf = append(buf, e)
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				r, err := d.uescape()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					// A high surrogate may pair with a following \u escape;
					// anything else becomes U+FFFD, as encoding/json does.
					r2 := unicode_replacement
					if d.pos+1 < len(d.data) && d.data[d.pos] == '\\' && d.data[d.pos+1] == 'u' {
						save := d.pos
						d.pos += 2
						lo, err := d.uescape()
						if err != nil {
							return "", err
						}
						if dec := utf16.DecodeRune(r, lo); dec != unicode_replacement {
							r2 = dec
						} else {
							d.pos = save
						}
					}
					if r2 == unicode_replacement {
						buf = utf8.AppendRune(buf, unicode_replacement)
						continue
					}
					buf = utf8.AppendRune(buf, r2)
					continue
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return "", d.errf("bad escape %q", string(e))
			}
		default:
			buf = append(buf, c)
			d.pos++
		}
	}
	return "", d.errf("unterminated string")
}

const unicode_replacement = '�'

func (d *simDecoder) uescape() (rune, error) {
	if d.pos+4 > len(d.data) {
		return 0, d.errf("truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := d.data[d.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, d.errf("bad \\u escape")
		}
	}
	d.pos += 4
	return r, nil
}

// numToken scans one JSON number token and returns its text.
func (d *simDecoder) numToken() (string, error) {
	d.skipWS()
	start := d.pos
	if d.pos < len(d.data) && d.data[d.pos] == '-' {
		d.pos++
	}
	digits := 0
	for d.pos < len(d.data) {
		c := d.data[d.pos]
		if c >= '0' && c <= '9' {
			digits++
			d.pos++
			continue
		}
		if c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			d.pos++
			continue
		}
		break
	}
	if digits == 0 {
		return "", d.errf("expected number")
	}
	tok := string(d.data[start:d.pos])
	// Reject shapes encoding/json rejects so dual-success agreement holds:
	// leading zeros, bare dots, dangling exponents.
	if _, err := strconv.ParseFloat(tok, 64); err != nil {
		return "", d.errf("bad number %q", tok)
	}
	if !jsonNumberShape(tok) {
		return "", d.errf("bad number %q", tok)
	}
	return tok, nil
}

// jsonNumberShape reports whether tok matches RFC 8259 number grammar
// (ParseFloat is laxer: it accepts "0x1p4", ".5", "1.", "+1").
func jsonNumberShape(tok string) bool {
	i := 0
	if i < len(tok) && tok[i] == '-' {
		i++
	}
	// int part: 0 | [1-9][0-9]*
	if i >= len(tok) || tok[i] < '0' || tok[i] > '9' {
		return false
	}
	if tok[i] == '0' {
		i++
	} else {
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	if i < len(tok) && tok[i] == '.' {
		i++
		if i >= len(tok) || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	if i < len(tok) && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
			i++
		}
		if i >= len(tok) || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	return i == len(tok)
}

func (d *simDecoder) float() (float64, error) {
	tok, err := d.numToken()
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(tok, 64)
	if err != nil || math.IsInf(f, 0) {
		return 0, d.errf("bad float %q", tok)
	}
	return f, nil
}

func (d *simDecoder) uint() (uint64, error) {
	tok, err := d.numToken()
	if err != nil {
		return 0, err
	}
	u, err := strconv.ParseUint(tok, 10, 64)
	if err != nil {
		return 0, d.errf("bad uint %q", tok)
	}
	return u, nil
}

func (d *simDecoder) bool() (bool, error) {
	d.skipWS()
	rest := d.data[d.pos:]
	if len(rest) >= 4 && string(rest[:4]) == "true" {
		d.pos += 4
		return true, nil
	}
	if len(rest) >= 5 && string(rest[:5]) == "false" {
		d.pos += 5
		return false, nil
	}
	return false, d.errf("expected bool")
}

// skipValue skips one JSON value of any shape (unknown fields).
func (d *simDecoder) skipValue() error {
	d.skipWS()
	if d.pos >= len(d.data) {
		return d.errf("expected value")
	}
	switch c := d.data[d.pos]; {
	case c == '"':
		_, err := d.str()
		return err
	case c == '{':
		d.pos++
		d.skipWS()
		if d.pos < len(d.data) && d.data[d.pos] == '}' {
			d.pos++
			return nil
		}
		for {
			if _, err := d.str(); err != nil {
				return err
			}
			if err := d.expect(':'); err != nil {
				return err
			}
			if err := d.skipValue(); err != nil {
				return err
			}
			d.skipWS()
			if d.pos >= len(d.data) {
				return d.errf("unterminated object")
			}
			if d.data[d.pos] == ',' {
				d.pos++
				continue
			}
			if d.data[d.pos] == '}' {
				d.pos++
				return nil
			}
			return d.errf("bad object")
		}
	case c == '[':
		d.pos++
		d.skipWS()
		if d.pos < len(d.data) && d.data[d.pos] == ']' {
			d.pos++
			return nil
		}
		for {
			if err := d.skipValue(); err != nil {
				return err
			}
			d.skipWS()
			if d.pos >= len(d.data) {
				return d.errf("unterminated array")
			}
			if d.data[d.pos] == ',' {
				d.pos++
				continue
			}
			if d.data[d.pos] == ']' {
				d.pos++
				return nil
			}
			return d.errf("bad array")
		}
	case c == 't' || c == 'f':
		_, err := d.bool()
		return err
	case c == 'n':
		if d.pos+4 <= len(d.data) && string(d.data[d.pos:d.pos+4]) == "null" {
			d.pos += 4
			return nil
		}
		return d.errf("bad literal")
	default:
		_, err := d.numToken()
		return err
	}
}

// object walks one JSON object, calling field for each key. field must
// consume the value.
func (d *simDecoder) object(field func(key string) error) error {
	if err := d.expect('{'); err != nil {
		return err
	}
	d.skipWS()
	if d.pos < len(d.data) && d.data[d.pos] == '}' {
		d.pos++
		return d.end()
	}
	for {
		key, err := d.str()
		if err != nil {
			return err
		}
		if err := d.expect(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		d.skipWS()
		if d.pos >= len(d.data) {
			return d.errf("unterminated object")
		}
		switch d.data[d.pos] {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return d.end()
		default:
			return d.errf("bad object")
		}
	}
}

// end requires only trailing whitespace after the top-level value.
func (d *simDecoder) end() error {
	d.skipWS()
	if d.pos != len(d.data) {
		return d.errf("trailing data")
	}
	return nil
}

// decodeSimShare parses one exchange body into sh (reset first). Field
// names match case-insensitively because encoding/json's do — the fuzzed
// dual-success contract requires identical values whenever both decoders
// accept (testdata/fuzz/FuzzSimShareCodec/689a9db499f1d7d5 is the shrunk
// counterexample from the exact-match version of this switch).
func decodeSimShare(data []byte, sh *simShare) error {
	*sh = simShare{}
	d := simDecoder{data: data}
	return d.object(func(key string) error {
		var err error
		switch {
		case strings.EqualFold(key, "task"):
			sh.Task, err = d.str()
		case strings.EqualFold(key, "fn"):
			sh.Function, err = d.str()
		case strings.EqualFold(key, "s"):
			sh.Sum, err = d.float()
		case strings.EqualFold(key, "w"):
			sh.Weight, err = d.float()
		case strings.EqualFold(key, "he"):
			sh.HasExtremes, err = d.bool()
		case strings.EqualFold(key, "min"):
			sh.Min, err = d.float()
		case strings.EqualFold(key, "max"):
			sh.Max, err = d.float()
		case strings.EqualFold(key, "e"):
			sh.Epoch, err = d.uint()
		case strings.EqualFold(key, "q"):
			sh.Seq, err = d.uint()
		default:
			err = d.skipValue()
		}
		return err
	})
}

// decodeSimAck parses one exchange-ack body into a (reset first).
func decodeSimAck(data []byte, a *simAck) error {
	*a = simAck{}
	d := simDecoder{data: data}
	return d.object(func(key string) error {
		var err error
		switch {
		case strings.EqualFold(key, "task"):
			a.Task, err = d.str()
		case strings.EqualFold(key, "e"):
			a.Epoch, err = d.uint()
		case strings.EqualFold(key, "q"):
			a.Seq, err = d.uint()
		default:
			err = d.skipValue()
		}
		return err
	})
}
