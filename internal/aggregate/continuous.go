package aggregate

import (
	"context"
	"sort"
	"time"

	"wsgossip/internal/core"
	"wsgossip/internal/soap"
	"wsgossip/internal/wscoord"
)

// contState is the epoch-windowed side of a task: which epoch the node is
// in, which split shares are still awaiting their ack, which (sender, seq)
// pairs have already been absorbed this epoch, and the last closed epoch's
// frozen estimate.
type contState struct {
	window time.Duration
	root   string
	metric string
	// epoch is the 1-based live epoch; 0 until the first roll.
	epoch uint64
	// contributeFrom is the first epoch this node contributes its local
	// value (and anchor weight, if root) into. A node that joins through
	// the start flood contributes immediately; one that joins through a
	// stray share stays passive for the remainder of the current window
	// and is absorbed at the next boundary.
	contributeFrom uint64
	// nextSeq allocates per-task share sequence numbers. Never reset: a
	// seq identifies one transfer attempt across retries and epochs.
	nextSeq uint64
	// pending holds split shares not yet acknowledged, keyed by seq.
	pending map[uint64]*pendingShare
	// seen dedups absorbed shares per sender for the live epoch.
	seen map[string]map[uint64]struct{}
	// frozen is the last closed epoch's final estimate.
	frozen *EpochEstimate
	// contributed is the weight this node injected into the live epoch
	// (contribution plus anchor) — the conservation tests' ground truth.
	contributed float64
}

// pendingShare is one outstanding transfer: the share as sent (so retries
// are byte-identical) and how often it has been retried.
type pendingShare struct {
	to    string
	epoch uint64
	share Share
	tries int
}

// contSend is one continuous-mode wire operation staged under the lock and
// sent outside it.
type contSend struct {
	taskID string
	cctx   wscoord.CoordinationContext
	share  Share
	to     string
	seq    uint64
	// retry marks a re-send: a synchronous failure must not recover the
	// mass, because an earlier attempt may have been delivered.
	retry bool
}

// newContState builds the continuous side of a task from a start message.
// addr is the local node, which contributes from the current epoch onward
// (contributeFrom 0 = immediately at the first roll).
func newContState(start Start, addr string) *contState {
	return &contState{
		window:  time.Duration(start.WindowMillis) * time.Millisecond,
		root:    start.Root,
		metric:  start.Metric,
		pending: make(map[uint64]*pendingShare),
		seen:    make(map[string]map[uint64]struct{}),
	}
}

// valueForLocked resolves the local value source for a metric name: the
// named entry in Values, else the default Value, else none (passive).
func (s *Service) valueForLocked(metric string) (func() float64, bool) {
	if metric != "" && s.cfg.Values != nil {
		if f, ok := s.cfg.Values[metric]; ok && f != nil {
			return f, true
		}
	}
	if s.cfg.Value != nil {
		return s.cfg.Value, true
	}
	return nil, false
}

// rollTaskLocked retires the task's live epoch and enters epoch k. The old
// epoch's outstanding shares, dedup state, and ledger are discarded as a
// unit — its balance was zero, so removing all of it keeps the gauge at
// zero, and any absorbed-but-unacked ambiguity dies with the epoch. The
// node then re-contributes its local value (and anchor weight if it is the
// root) into the fresh state. Caller holds s.mu and re-evaluates the gauge.
func (s *Service) rollTaskLocked(t *task, k uint64, now time.Duration) {
	c := t.cont
	if k <= c.epoch {
		return
	}
	if c.epoch != 0 {
		est, ok := t.state.Estimate()
		_, w := t.state.Mass()
		c.frozen = &EpochEstimate{
			Epoch:    c.epoch,
			Estimate: est,
			Defined:  ok,
			Weight:   w,
			Rounds:   t.state.Rounds(),
			ClosedAt: now,
		}
	}
	if n := len(c.pending); n > 0 {
		s.stats.unacked.Add(int64(n))
	}
	c.pending = make(map[uint64]*pendingShare)
	c.seen = make(map[string]map[uint64]struct{})
	t.led = ledger{}
	c.contributed = 0
	c.epoch = k

	passive := true
	var value float64
	if k >= c.contributeFrom {
		if vf, ok := s.valueForLocked(c.metric); ok {
			passive = false
			value = vf()
		}
	}
	root := c.root != "" && c.root == s.cfg.Address && k >= c.contributeFrom
	t.state = NewState(t.state.Func(), value, root, passive)
	_, w := t.state.Mass()
	t.led.in += w
	c.contributed = w
	s.stats.epochs.Inc()
}

// tickContinuousLocked runs one continuous-task round: roll the epoch if
// the clock crossed a boundary, stage retries for every outstanding share,
// then split fresh shares for sampled targets (skipping targets whose
// oldest pending share has timed out — see suspectTries). Caller holds
// s.mu; the staged sends go out after the lock is released.
func (s *Service) tickContinuousLocked(t *task, id string) []contSend {
	c := t.cont
	now := s.clk.Now()
	if k := EpochAt(now, c.window); k > c.epoch {
		s.rollTaskLocked(t, k, now)
	}
	var sends []contSend
	// Retry every outstanding share in seq order (determinism). The
	// receiver dedups on (From, Seq), so a share whose first copy arrived
	// but whose ack was lost is absorbed exactly once and simply re-acked.
	if len(c.pending) > 0 {
		seqs := make([]uint64, 0, len(c.pending))
		for q := range c.pending {
			seqs = append(seqs, q)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, q := range seqs {
			p := c.pending[q]
			p.tries++
			s.stats.retries.Inc()
			sends = append(sends, contSend{
				taskID: id, cctx: t.cctx, share: p.share, to: p.to, seq: q, retry: true,
			})
		}
	}
	fanout := t.params.Fanout
	if fanout <= 0 {
		if s.cfg.Peers == nil && len(t.params.Targets) == 0 {
			return sends
		}
		fanout = passiveFanout
	}
	targets := core.SelectTargets(s.cfg.Peers, s.rng, fanout, s.cfg.Address, t.params.Targets)
	if len(c.pending) > 0 {
		suspect := make(map[string]bool)
		for _, p := range c.pending {
			if p.tries >= suspectTries {
				suspect[p.to] = true
			}
		}
		if len(suspect) > 0 {
			kept := targets[:0]
			for _, tg := range targets {
				if !suspect[tg] {
					kept = append(kept, tg)
				}
			}
			targets = kept
		}
	}
	if len(targets) == 0 {
		return sends
	}
	t.state.BeginRound()
	s.stats.rounds.Inc()
	shareSum, shareWeight := t.state.Split(len(targets))
	for _, tg := range targets {
		c.nextSeq++
		sh := t.state.share(id, s.cfg.Address, shareSum, shareWeight)
		sh.WindowMillis = c.window.Milliseconds()
		sh.Epoch = c.epoch
		sh.Seq = c.nextSeq
		sh.Root = c.root
		sh.Metric = c.metric
		c.pending[c.nextSeq] = &pendingShare{to: tg, epoch: c.epoch, share: sh}
		// Outstanding is charged per share (not batched) so a later
		// per-share recovery or commit cancels its entry term-for-term.
		t.led.outstanding += shareWeight
		sends = append(sends, contSend{
			taskID: id, cctx: t.cctx, share: sh, to: tg, seq: sh.Seq,
		})
	}
	return sends
}

// sendContinuous performs the staged continuous sends outside the service
// lock. A synchronous refusal on a share's first send proves it was never
// delivered, so its mass is recovered immediately; a refused retry proves
// nothing (an earlier copy may have arrived) and the share stays pending
// until its ack or the epoch boundary.
func (s *Service) sendContinuous(ctx context.Context, sends []contSend) {
	for _, cs := range sends {
		env, err := buildMessage(ActionExchange, cs.cctx, cs.share)
		if err != nil {
			if !cs.retry {
				s.recoverPending(cs.taskID, cs.seq)
			}
			continue
		}
		if err := s.cfg.Caller.Send(ctx, cs.to, env); err != nil {
			if cs.retry {
				s.stats.sendErrors.Inc()
			} else {
				s.recoverPending(cs.taskID, cs.seq)
			}
			continue
		}
		s.stats.sharesSent.Inc()
	}
}

// recoverPending reclaims the mass of a share whose first send was refused
// synchronously: the share provably never left this node, so absorbing it
// back and cancelling its outstanding entry keeps the ledger exact.
func (s *Service) recoverPending(taskID string, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[taskID]
	if !ok || t.cont == nil {
		return
	}
	p, ok := t.cont.pending[seq]
	if !ok || p.epoch != t.cont.epoch {
		return
	}
	delete(t.cont.pending, seq)
	t.state.Absorb(Share{
		Sum:         p.share.Sum,
		Weight:      p.share.Weight,
		HasExtremes: p.share.HasExtremes,
		Min:         p.share.Min,
		Max:         p.share.Max,
	})
	// The mass moves straight from outstanding back to held: in/out are
	// untouched, so the cancellation stays term-exact.
	t.led.outstanding -= p.share.Weight
	s.stats.recovered.Inc()
	s.stats.sendErrors.Inc()
	s.evalMassLocked()
}

// handleContinuousShare absorbs one epoch-tagged share and acks it. A node
// that never saw the start joins passively — the share carries the window,
// root, and metric — and begins contributing at the next epoch boundary.
func (s *Service) handleContinuousShare(ctx context.Context, req *soap.Request, share Share) (*soap.Envelope, error) {
	s.mu.Lock()
	t, known := s.tasks[share.TaskID]
	s.mu.Unlock()
	if !known {
		fn, err := ParseFunc(share.Function)
		if err != nil {
			return nil, soap.NewFault(soap.CodeSender, err.Error())
		}
		cctx, err := wscoord.ContextFrom(req.Envelope)
		if err != nil {
			return nil, soap.NewFault(soap.CodeSender, "aggregate share without coordination context: "+err.Error())
		}
		// Registration can fail (coordinator down); the node still holds
		// the mass it absorbs, so the totals stay conserved.
		params, _ := s.registerTask(ctx, cctx)
		c := newContState(Start{
			WindowMillis: share.WindowMillis,
			Root:         share.Root,
			Metric:       share.Metric,
		}, s.cfg.Address)
		t = &task{state: NewState(fn, 0, false, true), params: params, cctx: cctx, cont: c}
		s.mu.Lock()
		if existing, raced := s.tasks[share.TaskID]; raced {
			t = existing
		} else {
			// Mid-window joiner: relay passively for the rest of this
			// window, contribute from the next boundary on.
			now := s.clk.Now()
			c.contributeFrom = EpochAt(now, c.window) + 1
			s.tasks[share.TaskID] = t
			s.stats.passiveJoins.Inc()
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	c := t.cont
	if c == nil {
		s.mu.Unlock()
		return nil, soap.NewFault(soap.CodeSender, "continuous share for one-shot task "+share.TaskID)
	}
	now := s.clk.Now()
	k := EpochAt(now, c.window)
	if share.Epoch > k {
		k = share.Epoch
	}
	if k > c.epoch {
		s.rollTaskLocked(t, k, now)
	}
	switch {
	case share.Epoch == c.epoch:
		m := c.seen[share.From]
		if m == nil {
			m = make(map[uint64]struct{})
			c.seen[share.From] = m
		}
		if _, dup := m[share.Seq]; dup {
			s.stats.dups.Inc()
		} else {
			m[share.Seq] = struct{}{}
			t.state.Absorb(share)
			t.led.in += share.Weight
			s.stats.sharesAbsorbed.Inc()
		}
	default:
		// share.Epoch < c.epoch: the sender is still in a retired epoch.
		// Ack without absorbing — the mass died with that epoch everywhere,
		// and the ack both stops the retries and rolls the sender forward.
		s.stats.stale.Inc()
	}
	ackEpoch := c.epoch
	cctx := t.cctx
	s.evalMassLocked()
	s.mu.Unlock()
	s.bumpActivity()
	if share.From != "" && share.From != s.cfg.Address {
		ack := ExchangeAck{TaskID: share.TaskID, From: s.cfg.Address, Epoch: ackEpoch, Seq: share.Seq}
		if env, err := buildMessage(ActionExchangeAck, cctx, ack); err == nil {
			if s.cfg.Caller.Send(ctx, share.From, env) == nil {
				s.stats.acksSent.Inc()
			} else {
				s.stats.sendErrors.Inc()
			}
		}
	}
	return nil, nil
}

// handleExchangeAck commits one outstanding transfer: the share's mass
// moves from the outstanding account to the committed-out ledger at the
// moment the ack arrives — the commit point the mass-error gauge is
// re-evaluated at. An ack from a later epoch also rolls this node forward.
func (s *Service) handleExchangeAck(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var ack ExchangeAck
	if err := req.Envelope.DecodeBody(&ack); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed AggregateExchangeAck: "+err.Error())
	}
	s.mu.Lock()
	t, ok := s.tasks[ack.TaskID]
	if !ok || t.cont == nil {
		s.mu.Unlock()
		return nil, nil
	}
	c := t.cont
	if p, ok := c.pending[ack.Seq]; ok && p.epoch == c.epoch {
		delete(c.pending, ack.Seq)
		t.led.outstanding -= p.share.Weight
		t.led.out += p.share.Weight
		s.stats.commits.Inc()
	}
	if ack.Epoch > c.epoch {
		s.rollTaskLocked(t, ack.Epoch, s.clk.Now())
	}
	s.evalMassLocked()
	s.mu.Unlock()
	return nil, nil
}

// startContinuousLocal installs a continuous task created by this node (the
// Querier's path): the node is the root, contributes immediately, and rolls
// into the current epoch on the spot.
func (s *Service) startContinuousLocal(taskID string, fn Func, cctx wscoord.CoordinationContext, params core.AggregateParameters, window time.Duration, metric string) {
	s.mu.Lock()
	if _, ok := s.tasks[taskID]; ok {
		s.mu.Unlock()
		return
	}
	c := newContState(Start{
		WindowMillis: window.Milliseconds(),
		Root:         s.cfg.Address,
		Metric:       metric,
	}, s.cfg.Address)
	t := &task{state: NewState(fn, 0, false, true), params: params, cctx: cctx, cont: c}
	s.tasks[taskID] = t
	now := s.clk.Now()
	s.rollTaskLocked(t, EpochAt(now, window), now)
	s.stats.started.Inc()
	s.evalMassLocked()
	s.mu.Unlock()
	s.bumpActivity()
}

// ContinuousEstimate is one continuous task's consumer view: the frozen
// estimate from the last closed epoch (the stable value — at most one
// window plus one exchange round stale) and the still-mixing live one.
type ContinuousEstimate struct {
	TaskID   string
	Metric   string
	Function Func
	Window   time.Duration
	// Epoch is the live epoch the node is currently mixing.
	Epoch uint64
	// Frozen is the last closed epoch's final estimate; nil while the
	// first window is still open.
	Frozen *EpochEstimate
	// Live is the current epoch's (unconverged) estimate.
	Live        float64
	LiveDefined bool
}

// ContinuousEstimates snapshots every continuous task, sorted by task ID.
func (s *Service) ContinuousEstimates() []ContinuousEstimate {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ContinuousEstimate, 0)
	ids := make([]string, 0, len(s.tasks))
	for id, t := range s.tasks {
		if t.cont != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := s.tasks[id]
		live, ok := t.state.Estimate()
		ce := ContinuousEstimate{
			TaskID:      id,
			Metric:      t.cont.metric,
			Function:    t.state.Func(),
			Window:      t.cont.window,
			Epoch:       t.cont.epoch,
			Live:        live,
			LiveDefined: ok,
		}
		if t.cont.frozen != nil {
			f := *t.cont.frozen
			ce.Frozen = &f
		}
		out = append(out, ce)
	}
	return out
}

// EpochOf returns the live epoch of a continuous task (0 if unknown or
// one-shot).
func (s *Service) EpochOf(taskID string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tasks[taskID]; ok && t.cont != nil {
		return t.cont.epoch
	}
	return 0
}

// FrozenEstimate returns the last closed epoch's estimate for a continuous
// task.
func (s *Service) FrozenEstimate(taskID string) (EpochEstimate, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tasks[taskID]; ok && t.cont != nil && t.cont.frozen != nil {
		return *t.cont.frozen, true
	}
	return EpochEstimate{}, false
}

// Outstanding returns a continuous task's unacked outstanding weight and
// the weight this node contributed into the live epoch — the conservation
// property tests' accounting hooks.
func (s *Service) Outstanding(taskID string) (outstanding, contributed float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tasks[taskID]; ok && t.cont != nil {
		return t.led.outstanding, t.cont.contributed
	}
	return 0, 0
}
