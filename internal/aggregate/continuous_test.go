package aggregate

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/core"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
)

func TestEpochAt(t *testing.T) {
	w := time.Second
	cases := []struct {
		now  time.Duration
		want uint64
	}{
		{0, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 2},
		{2500 * time.Millisecond, 3},
		{-time.Second, 1}, // clamped: virtual time starts at zero
	}
	for _, c := range cases {
		if got := EpochAt(c.now, w); got != c.want {
			t.Errorf("EpochAt(%v, %v) = %d, want %d", c.now, w, got, c.want)
		}
	}
	if got := EpochAt(time.Second, 0); got != 0 {
		t.Errorf("EpochAt with zero window = %d, want 0", got)
	}
}

// ackGate wraps a Caller and, while holding, parks exchange acks instead of
// delivering them — the deterministic stand-in for ack loss. Single
// goroutine only (MemBus dispatch is synchronous).
type ackGate struct {
	inner soap.Caller
	hold  bool
	held  []func() error
}

func (g *ackGate) Call(ctx context.Context, to string, env *soap.Envelope) (*soap.Envelope, error) {
	return g.inner.Call(ctx, to, env)
}

func (g *ackGate) Send(ctx context.Context, to string, env *soap.Envelope) error {
	if g.hold && env.Addressing().Action == ActionExchangeAck {
		e := env.Clone()
		g.held = append(g.held, func() error {
			return g.inner.Send(context.Background(), to, e)
		})
		return nil
	}
	return g.inner.Send(ctx, to, env)
}

func (g *ackGate) release() {
	held := g.held
	g.held = nil
	for _, send := range held {
		_ = send()
	}
}

// contCluster is an N-service continuous-aggregation deployment on a shared
// virtual clock, with per-node registries so every node's mass-error gauge
// can be pinned.
type contCluster struct {
	bus      *soap.MemBus
	gate     *ackGate
	clk      *clock.Virtual
	querier  *Querier
	window   *Window
	services []*Service
	regs     []*metrics.Registry
	qreg     *metrics.Registry
}

func newContCluster(t *testing.T, n int, seed int64, window time.Duration) *contCluster {
	t.Helper()
	ctx := context.Background()
	bus := soap.NewMemBus()
	c := &contCluster{bus: bus, gate: &ackGate{inner: bus}, clk: clock.NewVirtual()}
	coord := core.NewCoordinator(core.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(seed)),
	})
	bus.Register("mem://coordinator", coord.Handler())
	for i := 0; i < n; i++ {
		addr := addrOf(i)
		load := float64(i + 1)
		reg := metrics.NewRegistry()
		svc, err := NewService(ServiceConfig{
			Address: addr,
			Caller:  c.gate,
			Clock:   c.clk,
			Values: map[string]func() float64{
				"ones": func() float64 { return 1 },
				"load": func() float64 { return load },
			},
			RNG:     rand.New(rand.NewSource(seed + 100 + int64(i))),
			Metrics: reg,
		})
		if err != nil {
			t.Fatalf("NewService: %v", err)
		}
		bus.Register(addr, svc.Handler())
		c.services = append(c.services, svc)
		c.regs = append(c.regs, reg)
		if err := core.SubscribeClient(ctx, bus, "mem://coordinator", addr,
			core.RoleDisseminator, core.ProtocolAggregate); err != nil {
			t.Fatalf("subscribe %s: %v", addr, err)
		}
	}
	c.qreg = metrics.NewRegistry()
	q, err := NewQuerier(QuerierConfig{
		Address:    "mem://querier",
		Caller:     c.gate,
		Activation: "mem://coordinator",
		Clock:      c.clk,
		Values: map[string]func() float64{
			"ones": func() float64 { return 1 },
			"load": func() float64 { return 0 },
		},
		RNG:     rand.New(rand.NewSource(seed + 7)),
		Metrics: c.qreg,
	})
	if err != nil {
		t.Fatalf("NewQuerier: %v", err)
	}
	bus.Register("mem://querier", q.Handler())
	if err := core.SubscribeClient(ctx, bus, "mem://coordinator", "mem://querier",
		core.RoleDisseminator, core.ProtocolAggregate); err != nil {
		t.Fatalf("subscribe querier: %v", err)
	}
	c.querier = q
	w, err := NewWindow(WindowConfig{
		Querier: q,
		Window:  window,
		Queries: []ContinuousQuery{
			{Name: "ones", Func: FuncCount},
			{Name: "load", Func: FuncAvg},
		},
	})
	if err != nil {
		t.Fatalf("NewWindow: %v", err)
	}
	c.window = w
	return c
}

// step advances the shared clock and runs one exchange round everywhere.
func (c *contCluster) step(ctx context.Context, dt time.Duration) {
	c.clk.Advance(dt)
	for _, svc := range c.services {
		svc.Tick(ctx)
	}
	c.window.Tick(ctx)
}

// assertGaugesZero pins every node's mass-error gauge at exactly zero —
// the conservation contract holds at commit points, not just round
// boundaries, so this may be asserted at any instant between steps.
func (c *contCluster) assertGaugesZero(t *testing.T, when string) {
	t.Helper()
	for i, reg := range c.regs {
		if e := reg.FloatGauge("aggregate_mass_error").Value(); e != 0 {
			t.Fatalf("%s: node %d aggregate_mass_error = %g, want exactly 0", when, i, e)
		}
	}
	if e := c.qreg.FloatGauge("aggregate_mass_error").Value(); e != 0 {
		t.Fatalf("%s: querier aggregate_mass_error = %g, want exactly 0", when, e)
	}
}

// TestContinuousWindowTracksCluster is the happy-path acceptance test for
// the tentpole: a Window over a MemBus cluster rolls epochs on the shared
// clock, every closed epoch's count matches the population, the avg matches
// ground truth, and each node's conservation gauge is exactly zero at every
// round — including mid-window instants.
func TestContinuousWindowTracksCluster(t *testing.T) {
	const n = 6
	window := 500 * time.Millisecond
	c := newContCluster(t, n, 11, window)
	ctx := context.Background()

	for i := 0; i < 35; i++ {
		c.step(ctx, 50*time.Millisecond)
		c.assertGaugesZero(t, "mid-run")
	}

	ests := c.window.Estimates()
	if len(ests) != 2 {
		t.Fatalf("estimates = %d queries, want 2", len(ests))
	}
	byName := map[string]ClusterEstimate{}
	for _, e := range ests {
		byName[e.Query] = e
	}
	count := byName["ones"]
	if count.FrozenEpoch < 3 {
		t.Fatalf("count frozen epoch = %d, want >= 3 after 3.5 windows", count.FrozenEpoch)
	}
	if !count.Defined {
		t.Fatal("count estimate undefined")
	}
	wantCount := float64(n + 1) // n services + the querier
	if math.Abs(count.Estimate-wantCount)/wantCount > 0.01 {
		t.Fatalf("count estimate = %g, want %g within 1%%", count.Estimate, wantCount)
	}
	load := byName["load"]
	if !load.Defined {
		t.Fatal("load estimate undefined")
	}
	wantAvg := 0.0
	for i := 0; i < n; i++ {
		wantAvg += float64(i + 1)
	}
	wantAvg /= float64(n + 1) // querier contributes load 0
	if math.Abs(load.Estimate-wantAvg)/wantAvg > 0.01 {
		t.Fatalf("load estimate = %g, want %g within 1%%", load.Estimate, wantAvg)
	}

	// Epochs rolled on every node, not just the root.
	for i, svc := range c.services {
		if got := svc.Stats().Epochs; got < 3 {
			t.Fatalf("node %d epochs = %d, want >= 3", i, got)
		}
	}
}

// TestContinuousAckWithheldGaugeExactAtCommitPoints is the regression test
// for evaluating the mass-error gauge at exchange commit points. While acks
// are withheld the sender's split mass sits in the outstanding account: a
// gauge computed without that account — or only refreshed at round
// boundaries — reads a phantom deficit at exactly this instant. The
// contract: the gauge is exactly zero while shares are unacked, and stays
// exactly zero through the ack commits that later settle them.
func TestContinuousAckWithheldGaugeExactAtCommitPoints(t *testing.T) {
	const n = 4
	c := newContCluster(t, n, 23, time.Second)
	ctx := context.Background()

	// Two rounds with acks parked: every split share stays outstanding.
	c.gate.hold = true
	c.step(ctx, 50*time.Millisecond)
	c.step(ctx, 50*time.Millisecond)

	outstanding := 0.0
	for _, e := range c.querier.svc.ContinuousEstimates() {
		o, _ := c.querier.svc.Outstanding(e.TaskID)
		outstanding += o
	}
	if outstanding == 0 {
		t.Fatal("no outstanding mass while acks are withheld; the gate is not exercising the commit path")
	}
	c.assertGaugesZero(t, "acks withheld")

	before := c.querier.Stats().Commits
	c.gate.hold = false
	c.gate.release() // commits happen here, between round boundaries
	c.assertGaugesZero(t, "after ack release")
	if got := c.querier.Stats().Commits; got <= before {
		t.Fatalf("querier commits = %d after release, want > %d", got, before)
	}
}

// TestContinuousShareSemantics drives crafted shares at one service to pin
// the receive-side contract: a passive join contributes only from the next
// boundary, duplicates are absorbed once, and stale-epoch shares are acked
// but never absorbed.
func TestContinuousShareSemantics(t *testing.T) {
	const n = 3
	window := time.Second
	c := newContCluster(t, n, 31, window)
	ctx := context.Background()

	// Start the queries and let one round run.
	c.step(ctx, 50*time.Millisecond)
	tk, ok := c.window.Task("load")
	if !ok {
		t.Fatal("load query not started")
	}
	svc := c.services[0]
	epoch := svc.EpochOf(tk.ID)
	if epoch == 0 {
		t.Fatal("service has not rolled into an epoch")
	}

	_, w0, ok := svc.Mass(tk.ID)
	if !ok {
		t.Fatal("service does not hold the task")
	}
	share := Share{
		TaskID:       tk.ID,
		Function:     string(FuncAvg),
		From:         "mem://ghost",
		Sum:          3,
		Weight:       0.5,
		WindowMillis: window.Milliseconds(),
		Epoch:        epoch,
		Seq:          1,
		Root:         "mem://querier",
		Metric:       "load",
	}
	env, err := buildMessage(ActionExchange, tk.Context, share)
	if err != nil {
		t.Fatal(err)
	}
	deliver := func() {
		if err := c.bus.Send(ctx, addrOf(0), env); err != nil {
			t.Fatalf("deliver share: %v", err)
		}
	}
	deliver()
	_, w1, _ := svc.Mass(tk.ID)
	if math.Abs((w1-w0)-share.Weight) > 1e-12 {
		t.Fatalf("absorbed weight delta = %g, want %g", w1-w0, share.Weight)
	}
	dupBefore := svc.Stats().DuplicateShares
	deliver() // identical (From, Seq): must not absorb again
	_, w2, _ := svc.Mass(tk.ID)
	if w2 != w1 {
		t.Fatalf("duplicate share changed mass: %g -> %g", w1, w2)
	}
	if got := svc.Stats().DuplicateShares; got != dupBefore+1 {
		t.Fatalf("duplicate counter = %d, want %d", got, dupBefore+1)
	}

	// Stale epoch: ack-only.
	stale := share
	stale.Seq = 2
	stale.Epoch = epoch - 1
	if stale.Epoch == 0 {
		// First epoch is 1; force a roll so epoch-1 is a real retired epoch.
		c.clk.Advance(window)
		svc.Tick(ctx)
		stale.Epoch = svc.EpochOf(tk.ID) - 1
		_, w2, _ = svc.Mass(tk.ID)
	}
	staleEnv, err := buildMessage(ActionExchange, tk.Context, stale)
	if err != nil {
		t.Fatal(err)
	}
	staleBefore := svc.Stats().StaleShares
	if err := c.bus.Send(ctx, addrOf(0), staleEnv); err != nil {
		t.Fatalf("deliver stale share: %v", err)
	}
	_, w3, _ := svc.Mass(tk.ID)
	if w3 != w2 {
		t.Fatalf("stale share changed mass: %g -> %g", w2, w3)
	}
	if got := svc.Stats().StaleShares; got != staleBefore+1 {
		t.Fatalf("stale counter = %d, want %d", got, staleBefore+1)
	}
}

// TestContinuousPassiveJoinContributesNextEpoch pins the churn-absorption
// rule: a node first reached by a stray share relays passively for the rest
// of the window and injects its value only at the next boundary.
func TestContinuousPassiveJoinContributesNextEpoch(t *testing.T) {
	const n = 3
	window := time.Second
	c := newContCluster(t, n, 41, window)
	ctx := context.Background()
	c.step(ctx, 50*time.Millisecond)
	tk, ok := c.window.Task("load")
	if !ok {
		t.Fatal("load query not started")
	}

	// A fresh node that never saw the start flood.
	reg := metrics.NewRegistry()
	late, err := NewService(ServiceConfig{
		Address: "mem://late",
		Caller:  c.gate,
		Clock:   c.clk,
		Values: map[string]func() float64{
			"load": func() float64 { return 42 },
		},
		RNG:     rand.New(rand.NewSource(99)),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.bus.Register("mem://late", late.Handler())

	epoch := c.services[0].EpochOf(tk.ID)
	share := Share{
		TaskID:       tk.ID,
		Function:     string(FuncAvg),
		From:         addrOf(0),
		Sum:          0.25,
		Weight:       0.25,
		WindowMillis: window.Milliseconds(),
		Epoch:        epoch,
		Seq:          7001,
		Root:         "mem://querier",
		Metric:       "load",
	}
	env, err := buildMessage(ActionExchange, tk.Context, share)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.bus.Send(ctx, "mem://late", env); err != nil {
		t.Fatalf("deliver share to joiner: %v", err)
	}
	if got := late.EpochOf(tk.ID); got != epoch {
		t.Fatalf("joiner epoch = %d, want %d", got, epoch)
	}
	if _, contributed := late.Outstanding(tk.ID); contributed != 0 {
		t.Fatalf("joiner contributed %g mid-window, want 0 until the boundary", contributed)
	}
	_, w, _ := late.Mass(tk.ID)
	if math.Abs(w-share.Weight) > 1e-12 {
		t.Fatalf("joiner holds weight %g, want the absorbed share %g", w, share.Weight)
	}

	// Cross the boundary: the joiner's first roll into the new epoch
	// injects its value (weight 1 for avg).
	c.clk.Advance(window)
	late.Tick(ctx)
	if _, contributed := late.Outstanding(tk.ID); contributed != 1 {
		t.Fatalf("joiner contributed %g after the boundary, want 1", contributed)
	}
	if e := reg.FloatGauge("aggregate_mass_error").Value(); e != 0 {
		t.Fatalf("joiner aggregate_mass_error = %g, want exactly 0", e)
	}
}

// Regression: the nil-Clock fallback was once a zero-value clock.Real whose
// year-1 epoch saturates Now at the time.Duration maximum — every continuous
// task then ran in epoch ~9.2e9 and froze garbage at first roll. The
// fallback must be the Unix-epoch wall clock, and two services constructed
// at different moments must agree on the open epoch index, or the node with
// the larger offset perpetually drags its peers' epochs forward.
func TestNilClockFallbackSharedEpoch(t *testing.T) {
	bus := soap.NewMemBus()
	a, err := NewService(ServiceConfig{Address: "mem://wall-a", Caller: bus})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewService(ServiceConfig{Address: "mem://wall-b", Caller: bus})
	if err != nil {
		t.Fatal(err)
	}
	const window = time.Hour
	ka, kb := EpochAt(a.clk.Now(), window), EpochAt(b.clk.Now(), window)
	if ka != kb {
		t.Fatalf("services disagree on the open epoch: %d vs %d", ka, kb)
	}
	// ~56 years of hours since the Unix epoch, nowhere near saturation.
	if ka == 0 || ka > 10_000_000 {
		t.Fatalf("implausible epoch index %d for a %v window (saturated clock?)", ka, window)
	}
}
