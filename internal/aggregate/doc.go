// Package aggregate implements WS-Gossip aggregation: a push-sum engine
// (Kempe et al., FOCS 2003) lifted to the WS layer as a coordination
// protocol (core.ProtocolAggregate). Where the dissemination protocols move
// one notification to many services, aggregation moves a *summary* of many
// services' local values to whoever asks: count, sum, average, minimum, or
// maximum over thousands of subscribers, computed with nothing but gossip
// exchanges of (sum, weight) pairs.
//
// Roles:
//
//   - A Service participates: it holds a local value, joins an aggregation
//     interaction on first contact (registering with the Coordinator's
//     Registration service exactly like a Disseminator does), and exchanges
//     push-sum shares each round — with coordinator-assigned peers, or with
//     peers sampled from a live membership view when ServiceConfig.Peers is
//     set (core.PeerView).
//   - A Querier activates an aggregation interaction, seeds the weight that
//     anchors count/sum queries, disseminates the start message over the
//     assigned overlay, and collects the converged estimate.
//   - A SimNode is the transport-level participant for simulator-scale runs
//     (cmd/wsgossip-sim -mode aggregate).
//
// Exchange rounds fire from a core.Runner (RunnerConfig.Aggregator); with
// QuiescentMax set the exchange loop backs off exponentially once every
// task has converged or exhausted its round budget, snapping back when a
// new task or share arrives (Service.ActivityCount / OnActivity).
//
// Mass conservation is the engine's invariant: shares are only ever moved,
// never created or destroyed, so the sums Σsᵢ and Σwᵢ are constant and
// every estimate sᵢ/wᵢ converges to Σs/Σw. The analytic convergence rate
// lives in internal/epidemic (PushSumContraction and friends); experiment
// e10 cross-checks the implementation against it.
package aggregate
