// Package aggregate implements WS-Gossip aggregation: a push-sum engine
// (Kempe et al., FOCS 2003) lifted to the WS layer as a coordination
// protocol (core.ProtocolAggregate). Where the dissemination protocols move
// one notification to many services, aggregation moves a *summary* of many
// services' local values to whoever asks: count, sum, average, minimum, or
// maximum over thousands of subscribers, computed with nothing but gossip
// exchanges of (sum, weight) pairs.
//
// Roles:
//
//   - A Service participates: it holds a local value, joins an aggregation
//     interaction on first contact (registering with the Coordinator's
//     Registration service exactly like a Disseminator does), and exchanges
//     push-sum shares each round — with coordinator-assigned peers, or with
//     peers sampled from a live membership view when ServiceConfig.Peers is
//     set (core.PeerView).
//   - A Querier activates an aggregation interaction, seeds the weight that
//     anchors count/sum queries, disseminates the start message over the
//     assigned overlay, and collects the converged estimate.
//   - A SimNode is the transport-level participant for simulator-scale runs
//     (cmd/wsgossip-sim -mode aggregate).
//   - A Window turns one-shot queries into continuous ones: driven as the
//     querier's Runner loop, it keeps every configured query
//     (ContinuousQuery) fresh by restarting push-sum each epoch.
//
// Exchange rounds fire from a core.Runner (RunnerConfig.Aggregator); with
// QuiescentMax set the exchange loop backs off exponentially once every
// task has converged or exhausted its round budget, snapping back when a
// new task or share arrives (Service.ActivityCount / OnActivity).
//
// Mass conservation is the engine's invariant: shares are only ever moved,
// never created or destroyed, so the sums Σsᵢ and Σwᵢ are constant and
// every estimate sᵢ/wᵢ converges to Σs/Σw. The analytic convergence rate
// lives in internal/epidemic (PushSumContraction and friends); experiment
// e10 cross-checks the implementation against it.
//
// Continuous tasks extend both halves of that story. Time is cut into
// epochs on a shared clock (EpochAt: epoch k occupies [(k-1)·w, k·w)):
// crossing a boundary freezes the closing epoch's estimate — the stable
// value consumers read — and re-contributes the node's live local value
// into fresh state, so the estimate tracks churn window by window. A node
// that joins mid-window relays passively until the next boundary and only
// then contributes (contributeFrom), never retroactively. And because a
// long-lived query meets real loss, the continuous exchange is
// pairwise-atomic: a sent share stays in the sender's outstanding ledger
// until the receiver's ack commits it, absorb+ack is idempotent under
// (sender, seq) dedup, and only a synchronous first-send failure may
// recover mass locally (a retry failure never does — an earlier attempt
// may have been delivered). The aggregate_mass_error gauge is evaluated at
// every commit point and reads exactly zero at every observable instant;
// the property-based suite in internal/scenario holds it there under
// generated loss/churn/partition schedules.
package aggregate
