package aggregate

import (
	"encoding/xml"
	"math"
	"time"

	"wsgossip/internal/core"
)

// Continuous (epoch-windowed) aggregation: instead of converging once and
// stopping, a continuous task restarts push-sum every window. Epoch identity
// is a pure function of the shared clock, so every participant rolls into
// the same epoch without coordinator traffic, and each epoch's mass is
// accounted for independently — when an epoch closes, its outstanding
// unacked shares, its dedup state, and its conservation ledger retire as a
// unit, so nothing ambiguous leaks into the live estimate.

// ActionExchangeAck acknowledges custody transfer of one continuous-mode
// exchange share. The sender keeps a transferred share's mass in its
// outstanding ledger until this ack arrives; only then is the transfer
// committed.
const ActionExchangeAck = core.Namespace + ":aggregate:exchangeAck"

// EpochAt returns the 1-based epoch index at time now for the given window
// length. Index 0 is reserved for "not yet in any epoch", so a node that
// has never rolled is distinguishable from one in the first window.
func EpochAt(now, window time.Duration) uint64 {
	if window <= 0 {
		return 0
	}
	if now < 0 {
		now = 0
	}
	return uint64(now/window) + 1
}

// ExchangeAck is the wire body confirming one continuous exchange share.
type ExchangeAck struct {
	XMLName xml.Name `xml:"urn:wsgossip:2008 AggregateExchangeAck"`
	TaskID  string   `xml:"TaskID"`
	// From is the acking node's address.
	From string `xml:"From"`
	// Epoch is the acker's current epoch. A sender seeing an ack from a
	// later epoch rolls forward immediately — epochs spread epidemically,
	// the clock is only the local trigger.
	Epoch uint64 `xml:"Epoch"`
	// Seq identifies the acknowledged share (per-task sender sequence).
	Seq uint64 `xml:"Seq"`
}

// massSnapTol is the relative tolerance below which a task's ledger balance
// is treated as float residue and snapped to exactly zero. The ledger and
// the push-sum state apply the same share values through different
// expression trees, so sub-ulp drift accumulates; real conservation bugs
// (a lost share's worth of mass) sit many orders of magnitude above this.
const massSnapTol = 1e-9

// ledger is one task's conservation account. Mass held by the push-sum
// state plus mass split off but not yet acknowledged (outstanding) must
// equal everything that entered local custody (in) minus everything whose
// transfer was committed (out). The aggregate_mass_error gauge is the sum
// of these balances across tasks, re-evaluated at every commit point.
type ledger struct {
	in          float64
	out         float64
	outstanding float64
}

// balance returns the task's conservation error given the weight its state
// currently holds, with sub-ulp residue snapped to exactly zero.
func (l *ledger) balance(held float64) float64 {
	bal := (held + l.outstanding) - (l.in - l.out)
	scale := math.Max(1, math.Abs(l.in)+math.Abs(l.out))
	if math.Abs(bal) <= massSnapTol*scale {
		return 0
	}
	return bal
}

// EpochEstimate is one closed epoch's final local estimate — the stable
// value consumers read while the next epoch is still mixing.
type EpochEstimate struct {
	// Epoch is the closed epoch's index.
	Epoch uint64
	// Estimate is the final local estimate; Defined reports whether the
	// node held enough weight for it to mean anything.
	Estimate float64
	Defined  bool
	// Weight is the weight held when the epoch closed.
	Weight float64
	// Rounds is how many exchange rounds the node ran in the epoch.
	Rounds int
	// ClosedAt is the clock offset at which the epoch was retired locally.
	ClosedAt time.Duration
}

// suspectTries is the per-target timeout, measured in exchange rounds: a
// target whose oldest unacked share has been retried this many times is
// excluded from new share fan-out for the rest of the epoch. The pending
// share itself keeps being retried — if the target heals, the ack commits
// the transfer; if not, the epoch boundary recovers the mass by retiring
// the epoch.
const suspectTries = 3
