package aggregate

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"wsgossip/internal/soap"
	"wsgossip/internal/wscoord"
)

// fuzzableXML reports whether s survives an XML encode/decode unchanged:
// valid UTF-8, no control characters (XML 1.0 cannot carry them), and no
// carriage returns (normalized to newlines by the parser).
func fuzzableXML(s string) bool {
	if !utf8.ValidString(s) {
		return false
	}
	for _, r := range s {
		if r < 0x20 && r != '\t' && r != '\n' {
			return false
		}
		if r == 0xFFFE || r == 0xFFFF {
			return false
		}
	}
	return true
}

// FuzzExchangeRoundTrip drives the full continuous-exchange wire cycle for
// arbitrary share payloads: build the SOAP message (epoch ID, weight, mass,
// window, seq), encode it, re-decode it through the scanner path, and
// require the extracted Share to be field-exact. This is the codec contract
// the acked exchange's retries depend on — a retried share must carry
// byte-identical semantics or dedup and commit break.
func FuzzExchangeRoundTrip(f *testing.F) {
	f.Add("task-1", "mem://a", "load", "mem://root", "avg", 1.5, 0.25, -3.0, 7.0, true, uint64(3), uint64(41), int64(5000))
	f.Add("t", "", "", "", "count", 0.0, 0.0, 0.0, 0.0, false, uint64(0), uint64(0), int64(0))
	f.Add("epoch&window <q>", "mem://ünïcødé", "lag", "mem://r", "max", -0.0, 1e-300, math.MaxFloat64, -math.MaxFloat64, true, uint64(math.MaxUint64), uint64(1), int64(1))
	f.Fuzz(func(t *testing.T, taskID, from, metric, root, fn string,
		sum, weight, min, max float64, hasExtremes bool,
		epoch, seq uint64, windowMillis int64) {
		for _, s := range []string{taskID, from, metric, root, fn} {
			if !fuzzableXML(s) {
				return
			}
		}
		for _, v := range []float64{sum, weight, min, max} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		in := Share{
			TaskID:       taskID,
			Function:     fn,
			From:         from,
			Sum:          sum,
			Weight:       weight,
			HasExtremes:  hasExtremes,
			Min:          min,
			Max:          max,
			WindowMillis: windowMillis,
			Epoch:        epoch,
			Seq:          seq,
			Root:         root,
			Metric:       metric,
		}
		cctx := wscoord.CoordinationContext{
			Identifier:          "urn:fuzz:task",
			CoordinationType:    "urn:fuzz:type",
			RegistrationService: wscoord.ServiceRef{Address: "mem://reg"},
		}
		env, err := buildMessage(ActionExchange, cctx, in)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		data, err := env.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		decoded, err := soap.Decode(data)
		if err != nil {
			t.Fatalf("scanner decode: %v\nwire: %q", err, data)
		}
		var out Share
		if err := decoded.DecodeBody(&out); err != nil {
			t.Fatalf("decode body: %v\nwire: %q", err, data)
		}
		out.XMLName = in.XMLName
		if out != in {
			t.Fatalf("share round trip mismatch:\n in: %+v\nout: %+v\nwire: %q", in, out, data)
		}
	})
}

// FuzzSimShareCodec is the differential contract for the hand-rolled
// simulator codec: whenever decodeSimShare accepts an input, encoding/json
// must accept it too and decode the identical values; and every accepted
// share must survive append → decode unchanged. (The hand decoder may
// reject inputs encoding/json would take — the wire only ever carries the
// hand encoder's output.) The same bytes are also driven through the ack
// codec under the same contract.
func FuzzSimShareCodec(f *testing.F) {
	f.Add([]byte(`{"task":"t1","fn":"avg","s":1.5,"w":0.5}`))
	f.Add([]byte(`{"task":"t","fn":"max","s":0,"w":0,"he":true,"min":-1e-9,"max":2.75,"e":3,"q":17}`))
	f.Add([]byte(`{"task":"escA\n\"x\"","fn":"count","s":-0,"w":1e300,"e":18446744073709551615,"q":1}`))
	f.Add([]byte(`{"task":"surrogate 😀 pair","fn":"sum","s":2,"w":3,"unknown":[{"a":1},null,true,"x"]}`))
	f.Add([]byte(` { "task" : "ws" , "fn" : "avg" , "s" : 1e2 , "w" : 0.125 } `))
	f.Add([]byte(`{"task":"a","e":2,"q":9}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var hand simShare
		if err := decodeSimShare(data, &hand); err == nil {
			var std simShare
			if jerr := json.Unmarshal(data, &std); jerr != nil {
				t.Fatalf("hand decoder accepted what encoding/json rejects (%v):\n%q", jerr, data)
			}
			if hand != std {
				t.Fatalf("value divergence:\nhand: %+v\n std: %+v\ninput: %q", hand, std, data)
			}
			// Identity holds for canonical shares: the encoder omits
			// min/max when HasExtremes is false, because the protocol
			// ignores (and never sends) extremes without the flag.
			canon := hand
			if !canon.HasExtremes {
				canon.Min, canon.Max = 0, 0
			}
			wire := appendSimShare(nil, &canon)
			var again simShare
			if err := decodeSimShare(wire, &again); err != nil {
				t.Fatalf("re-decode of own encoding failed: %v\nwire: %q", err, wire)
			}
			if again != canon {
				t.Fatalf("encode/decode not identity:\nfirst: %+v\nagain: %+v\nwire: %q", canon, again, wire)
			}
		}
		var ack simAck
		if err := decodeSimAck(data, &ack); err == nil {
			var std simAck
			if jerr := json.Unmarshal(data, &std); jerr != nil {
				t.Fatalf("ack decoder accepted what encoding/json rejects (%v):\n%q", jerr, data)
			}
			if ack != std {
				t.Fatalf("ack value divergence:\nhand: %+v\n std: %+v\ninput: %q", ack, std, data)
			}
			wire := appendSimAck(nil, &ack)
			var again simAck
			if err := decodeSimAck(wire, &again); err != nil {
				t.Fatalf("ack re-decode failed: %v\nwire: %q", err, wire)
			}
			if again != ack {
				t.Fatalf("ack encode/decode not identity: %+v vs %+v", ack, again)
			}
		}
	})
}

// TestSimShareCodecRejects pins decoder strictness on shapes that must not
// be silently accepted.
func TestSimShareCodecRejects(t *testing.T) {
	bad := []string{
		``,
		`null`,
		`[]`,
		`{"task":"x"} trailing`,
		`{"task":1}`,
		`{"s":"1"}`,
		`{"e":-1}`,
		`{"e":1.5}`,
		`{"q":18446744073709551616}`, // uint64 overflow
		`{"s":01}`,                   // leading zero
		`{"s":.5}`,                   // bare fraction
		`{"s":1.}`,                   // dangling dot
		`{"s":1e}`,                   // dangling exponent
		`{"s":1e999}`,                // float overflow
		`{"task":"` + string([]byte{0xff}) + `"}`, // invalid UTF-8
		`{"task":"unterminated`,
		`{"task":}`,
		`{1:2}`,
	}
	for _, in := range bad {
		var sh simShare
		if err := decodeSimShare([]byte(in), &sh); err == nil {
			t.Errorf("decodeSimShare accepted %q", in)
		}
	}
	// strings.Repeat guards against decoder stack depth issues on deep
	// nesting in skipped unknown fields.
	deep := `{"task":"x","fn":"avg","s":1,"w":1,"junk":` +
		strings.Repeat("[", 64) + strings.Repeat("]", 64) + `}`
	var sh simShare
	if err := decodeSimShare([]byte(deep), &sh); err != nil {
		t.Errorf("decodeSimShare rejected deep unknown array: %v", err)
	}
	if sh.Task != "x" || sh.Sum != 1 {
		t.Errorf("deep-skip decode mangled fields: %+v", sh)
	}
}
