package aggregate

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wsgossip/internal/core"
	"wsgossip/internal/soap"
)

// lateBound registers a SOAP handler after the server URL is known (role
// addresses are their public URLs).
type lateBound struct {
	mu sync.Mutex
	h  soap.Handler
}

func (l *lateBound) set(h soap.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h = h
}

func (l *lateBound) HandleSOAP(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		return nil, soap.NewFault(soap.CodeReceiver, "handler not ready")
	}
	return h.HandleSOAP(ctx, req)
}

// TestAggregationOverRealHTTP runs a small aggregation over actual SOAP 1.2
// / HTTP servers: coordinator, eight services, one querier — the same wire
// path a distributed deployment uses.
func TestAggregationOverRealHTTP(t *testing.T) {
	client := soap.NewHTTPClient(&http.Client{Timeout: 5 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	startServer := func() (*lateBound, string, func()) {
		lb := &lateBound{}
		srv := httptest.NewServer(soap.NewHTTPServer(lb))
		return lb, srv.URL + "/", srv.Close
	}

	coordLB, coordURL, closeCoord := startServer()
	defer closeCoord()
	coord := core.NewCoordinator(core.CoordinatorConfig{
		Address: coordURL,
		RNG:     rand.New(rand.NewSource(1)),
	})
	coordLB.set(coord.Handler())

	const n = 8
	values := make([]float64, n)
	services := make([]*Service, n)
	for i := 0; i < n; i++ {
		lb, url, closeSrv := startServer()
		defer closeSrv()
		values[i] = 10 * float64(i+1)
		v := values[i]
		svc, err := NewService(ServiceConfig{
			Address: url,
			Caller:  client,
			Value:   func() float64 { return v },
			RNG:     rand.New(rand.NewSource(int64(i) + 2)),
		})
		if err != nil {
			t.Fatalf("NewService: %v", err)
		}
		lb.set(svc.Handler())
		services[i] = svc
		if err := core.SubscribeClient(ctx, client, coordURL, url,
			core.RoleDisseminator, core.ProtocolAggregate); err != nil {
			t.Fatalf("subscribe: %v", err)
		}
	}

	qLB, qURL, closeQ := startServer()
	defer closeQ()
	q, err := NewQuerier(QuerierConfig{
		Address:    qURL,
		Caller:     client,
		Activation: coordURL,
		RNG:        rand.New(rand.NewSource(77)),
	})
	if err != nil {
		t.Fatalf("NewQuerier: %v", err)
	}
	qLB.set(q.Handler())
	if err := core.SubscribeClient(ctx, client, coordURL, qURL,
		core.RoleDisseminator, core.ProtocolAggregate); err != nil {
		t.Fatalf("subscribe querier: %v", err)
	}

	tk, err := q.StartAggregation(ctx, FuncAvg)
	if err != nil {
		t.Fatalf("StartAggregation: %v", err)
	}
	maxRounds := tk.Params.MaxRounds
	if maxRounds <= 0 || maxRounds > 60 {
		maxRounds = 60
	}
	for r := 0; r < maxRounds && !q.Converged(tk.ID); r++ {
		for _, svc := range services {
			svc.Tick(ctx)
		}
		q.Tick(ctx)
	}

	truth := 0.0
	for _, v := range values {
		truth += v
	}
	truth /= float64(n)
	est, ok := q.Estimate(tk.ID)
	if !ok {
		t.Fatalf("querier has no defined estimate")
	}
	if relErr := math.Abs(est-truth) / truth; relErr > 0.01 {
		t.Fatalf("HTTP aggregation estimate %.4f vs truth %.4f: rel err %.4f > 1%%", est, truth, relErr)
	}
	results, err := q.Collect(ctx, tk, 3)
	if err != nil {
		t.Fatalf("Collect over HTTP: %v", err)
	}
	if len(results) == 0 {
		t.Fatalf("Collect over HTTP returned no results")
	}
}
