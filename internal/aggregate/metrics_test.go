package aggregate

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"wsgossip/internal/core"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
)

// TestAggregateMetricsViews runs an avg aggregation over a small cluster
// with a per-node registry and checks Stats() is a view over the scraped
// series, rounds are counted, and the mass-conservation gauge stays at
// float-rounding scale.
func TestAggregateMetricsViews(t *testing.T) {
	ctx := context.Background()
	bus := soap.NewMemBus()
	coord := core.NewCoordinator(core.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(9)),
	})
	bus.Register("mem://coordinator", coord.Handler())

	const n = 4
	regs := make([]*metrics.Registry, n)
	svcs := make([]*Service, n)
	for i := 0; i < n; i++ {
		addr := addrOf(i)
		v := float64(i + 1)
		regs[i] = metrics.NewRegistry()
		svc, err := NewService(ServiceConfig{
			Address: addr,
			Caller:  bus,
			Value:   func() float64 { return v },
			RNG:     rand.New(rand.NewSource(int64(i) + 100)),
			Metrics: regs[i],
		})
		if err != nil {
			t.Fatalf("NewService: %v", err)
		}
		bus.Register(addr, svc.Handler())
		svcs[i] = svc
		if err := core.SubscribeClient(ctx, bus, "mem://coordinator", addr,
			core.RoleDisseminator, core.ProtocolAggregate); err != nil {
			t.Fatalf("subscribe %s: %v", addr, err)
		}
	}
	qreg := metrics.NewRegistry()
	q, err := NewQuerier(QuerierConfig{
		Address:    "mem://querier",
		Caller:     bus,
		Activation: "mem://coordinator",
		RNG:        rand.New(rand.NewSource(7)),
		Metrics:    qreg,
	})
	if err != nil {
		t.Fatalf("NewQuerier: %v", err)
	}
	bus.Register("mem://querier", q.Handler())
	if err := core.SubscribeClient(ctx, bus, "mem://coordinator", "mem://querier",
		core.RoleDisseminator, core.ProtocolAggregate); err != nil {
		t.Fatalf("subscribe querier: %v", err)
	}

	tk, err := q.StartAggregation(ctx, FuncAvg)
	if err != nil {
		t.Fatalf("StartAggregation: %v", err)
	}
	for r := 0; r < 10; r++ {
		for _, svc := range svcs {
			svc.Tick(ctx)
		}
		q.Tick(ctx)
	}
	// One extra round boundary so every node re-evaluates its ledger after
	// the final exchanges settled.
	for _, svc := range svcs {
		svc.Tick(ctx)
	}

	for i, svc := range svcs {
		stats := svc.Stats()
		if stats.Started != 1 {
			t.Fatalf("node %d started = %d, want 1", i, stats.Started)
		}
		if got := regs[i].Counter("aggregate_tasks_started_total").Value(); got != stats.Started {
			t.Fatalf("node %d registry started = %d, stats = %d", i, got, stats.Started)
		}
		if got := regs[i].Counter("aggregate_shares_sent_total").Value(); got != stats.SharesSent {
			t.Fatalf("node %d registry sent = %d, stats = %d", i, got, stats.SharesSent)
		}
		if got := regs[i].Counter("aggregate_shares_absorbed_total").Value(); got != stats.SharesAbsorbed {
			t.Fatalf("node %d registry absorbed = %d, stats = %d", i, got, stats.SharesAbsorbed)
		}
		if got, want := regs[i].Counter("aggregate_rounds_total").Value(), int64(svc.Rounds(tk.ID)); got != want {
			t.Fatalf("node %d rounds counter = %d, state rounds = %d", i, got, want)
		}
		if e := regs[i].FloatGauge("aggregate_mass_error").Value(); math.Abs(e) > 1e-9 {
			t.Fatalf("node %d mass-conservation error = %g, want ~0", i, e)
		}
	}

	var sb strings.Builder
	if err := regs[0].WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"aggregate_tasks_started_total", "aggregate_rounds_total", "aggregate_mass_error"} {
		if !strings.Contains(sb.String(), family) {
			t.Fatalf("exposition missing %s:\n%s", family, sb.String())
		}
	}
}
