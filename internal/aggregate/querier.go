package aggregate

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/core"
	"wsgossip/internal/gossip"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
	"wsgossip/internal/wscoord"
)

// QuerierConfig configures a Querier.
type QuerierConfig struct {
	// Address is the querier's endpoint address. Subscribe it with the
	// Coordinator (advertising core.ProtocolAggregate) so peers' exchange
	// overlays include it — the anchor weight it seeds must mix with the
	// population's mass.
	Address string
	// Caller sends SOAP messages.
	Caller soap.Caller
	// Activation is the Coordinator's Activation service address.
	Activation string
	// Value optionally contributes the querier's own local value; nil
	// (the common case) makes it a passive anchor.
	Value func() float64
	// RNG drives peer sampling; nil falls back to a fixed seed.
	RNG *rand.Rand
	// Metrics is forwarded to the querier's embedded participant Service;
	// nil uses a private registry.
	Metrics *metrics.Registry
	// Clock, Values, and Peers are forwarded to the embedded Service: the
	// shared clock continuous epochs derive from, the named local value
	// sources continuous queries sample, and the live peer view exchange
	// targets are drawn from (see ServiceConfig).
	Clock  clock.Clock
	Values map[string]func() float64
	Peers  core.PeerView
}

// Querier is the aggregation counterpart of the Initiator role: the one
// node whose application code changes. It activates an aggregation
// interaction, seeds the anchor weight that count/sum queries need,
// disseminates the start message, and collects the converged estimate.
type Querier struct {
	cfg        QuerierConfig
	svc        *Service
	activation *wscoord.ActivationClient

	// mu guards rng: the inner service uses its own generator under its
	// own lock, so Collect can run concurrently with a timer-driven Tick.
	mu  sync.Mutex
	rng *rand.Rand
}

// Task is one activated aggregation interaction as seen by its querier.
type Task struct {
	// ID is the task (= coordination activity) identifier.
	ID string
	// Func is the aggregate function being computed.
	Func Func
	// Params carries the coordinator-assigned configuration.
	Params core.AggregateParameters
	// Context is the interaction's coordination context.
	Context wscoord.CoordinationContext
}

// NewQuerier returns a querier.
func NewQuerier(cfg QuerierConfig) (*Querier, error) {
	if cfg.Address == "" || cfg.Caller == nil || cfg.Activation == "" {
		return nil, fmt.Errorf("aggregate: querier config requires address, caller, and activation address")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	svc, err := NewService(ServiceConfig{
		Address: cfg.Address,
		Caller:  cfg.Caller,
		Value:   cfg.Value,
		RNG:     rng,
		Metrics: cfg.Metrics,
		Clock:   cfg.Clock,
		Values:  cfg.Values,
		Peers:   cfg.Peers,
	})
	if err != nil {
		return nil, err
	}
	return &Querier{
		cfg:        cfg,
		svc:        svc,
		activation: wscoord.NewActivationClient(cfg.Caller, cfg.Address),
		// Derived, not shared: the service's generator is guarded by the
		// service mutex and must not be touched from Collect.
		rng: rand.New(rand.NewSource(rng.Int63())),
	}, nil
}

// Address returns the querier's endpoint address.
func (q *Querier) Address() string { return q.cfg.Address }

// Handler returns the querier's SOAP handler (it participates in exchanges
// like any aggregation service).
func (q *Querier) Handler() soap.Handler { return q.svc.Handler() }

// RegisterActions installs the querier's aggregation actions on an existing
// dispatcher, for stacks that colocate the querier with other services
// (e.g. a Disseminator) on one endpoint.
func (q *Querier) RegisterActions(d *soap.Dispatcher) { q.svc.RegisterActions(d) }

// StartAggregation activates an aggregation interaction for fn, registers
// the querier (obtaining fanout, epsilon, round budget, and targets), seeds
// the anchor state, and disseminates the start message over the assigned
// overlay. Exchange rounds are driven by Tick.
func (q *Querier) StartAggregation(ctx context.Context, fn Func) (*Task, error) {
	if _, err := ParseFunc(string(fn)); err != nil {
		return nil, err
	}
	cctx, err := q.activation.Create(ctx, q.cfg.Activation, core.CoordinationTypeGossip)
	if err != nil {
		return nil, fmt.Errorf("aggregate: activate interaction: %w", err)
	}
	params, err := q.svc.registerTask(ctx, cctx)
	if err != nil {
		return nil, fmt.Errorf("aggregate: register querier: %w", err)
	}
	q.svc.startLocalTask(cctx.Identifier, fn, cctx, params, true)
	start := Start{
		TaskID:   cctx.Identifier,
		Function: string(fn),
		Root:     q.cfg.Address,
		Hops:     params.Hops,
	}
	if len(params.Targets) > 0 {
		// The start flood is one logical message: serialized once, a
		// per-target copy rendered at wsa:To (encode-once wire path).
		env, err := buildMessage(ActionStart, cctx, start)
		if err != nil {
			return nil, err
		}
		sent, failed := soap.Fanout(ctx, q.cfg.Caller, env, params.Targets)
		q.svc.stats.sendErrors.Add(int64(len(failed)))
		if sent == 0 {
			return nil, fmt.Errorf("aggregate: start reached none of %d targets", len(params.Targets))
		}
	}
	return &Task{ID: cctx.Identifier, Func: fn, Params: params, Context: cctx}, nil
}

// StartContinuous activates an epoch-windowed aggregation: like
// StartAggregation, but the task never converges-and-stops — every node
// restarts push-sum at each window boundary on the shared clock, so the
// estimate tracks churn. name selects the participants' local value source
// (ServiceConfig.Values) and labels the query for consumers. The querier
// is the root: it re-seeds the anchor weight every epoch.
func (q *Querier) StartContinuous(ctx context.Context, name string, fn Func, window time.Duration) (*Task, error) {
	if _, err := ParseFunc(string(fn)); err != nil {
		return nil, err
	}
	if window <= 0 {
		return nil, fmt.Errorf("aggregate: continuous aggregation requires a positive window, got %v", window)
	}
	cctx, err := q.activation.Create(ctx, q.cfg.Activation, core.CoordinationTypeGossip)
	if err != nil {
		return nil, fmt.Errorf("aggregate: activate interaction: %w", err)
	}
	params, err := q.svc.registerTask(ctx, cctx)
	if err != nil {
		return nil, fmt.Errorf("aggregate: register querier: %w", err)
	}
	q.svc.startContinuousLocal(cctx.Identifier, fn, cctx, params, window, name)
	start := Start{
		TaskID:       cctx.Identifier,
		Function:     string(fn),
		Root:         q.cfg.Address,
		Hops:         params.Hops,
		WindowMillis: window.Milliseconds(),
		Metric:       name,
	}
	if len(params.Targets) > 0 {
		env, err := buildMessage(ActionStart, cctx, start)
		if err != nil {
			return nil, err
		}
		sent, failed := soap.Fanout(ctx, q.cfg.Caller, env, params.Targets)
		q.svc.stats.sendErrors.Add(int64(len(failed)))
		if sent == 0 {
			return nil, fmt.Errorf("aggregate: start reached none of %d targets", len(params.Targets))
		}
	}
	return &Task{ID: cctx.Identifier, Func: fn, Params: params, Context: cctx}, nil
}

// Tick runs one of the querier's own exchange rounds.
func (q *Querier) Tick(ctx context.Context) { q.svc.Tick(ctx) }

// EpochOf returns the querier's live epoch for a continuous task.
func (q *Querier) EpochOf(taskID string) uint64 { return q.svc.EpochOf(taskID) }

// FrozenEstimate returns the querier's last closed-epoch estimate for a
// continuous task.
func (q *Querier) FrozenEstimate(taskID string) (EpochEstimate, bool) {
	return q.svc.FrozenEstimate(taskID)
}

// ActivityCount is the querier participant's monotonic traffic counter
// (see Service.ActivityCount); it lets an adaptive Runner pace the
// querier's exchange loop.
func (q *Querier) ActivityCount() uint64 { return q.svc.ActivityCount() }

// OnActivity registers the adaptive Runner's snap-back callback (see
// Service.OnActivity).
func (q *Querier) OnActivity(fn func()) { q.svc.OnActivity(fn) }

// Estimate returns the querier's current local estimate for the task.
func (q *Querier) Estimate(taskID string) (float64, bool) { return q.svc.Estimate(taskID) }

// Converged reports whether the querier's local estimate has stabilized.
func (q *Querier) Converged(taskID string) bool { return q.svc.Converged(taskID) }

// Rounds returns how many exchange rounds the querier has run for the task.
func (q *Querier) Rounds(taskID string) int { return q.svc.Rounds(taskID) }

// Stats returns the querier's participant counters.
func (q *Querier) Stats() ServiceStats { return q.svc.Stats() }

// Collect queries up to sample peers from the task's overlay for their
// current estimates — the converged-estimate collection step. The returned
// results let the caller check population-wide agreement; the querier's own
// estimate is available via Estimate.
func (q *Querier) Collect(ctx context.Context, tk *Task, sample int) ([]QueryResult, error) {
	if tk == nil {
		return nil, fmt.Errorf("aggregate: collect without a task")
	}
	q.mu.Lock()
	peers := gossip.SamplePeers(q.rng, tk.Params.Targets, sample, q.cfg.Address)
	q.mu.Unlock()
	out := make([]QueryResult, 0, len(peers))
	for _, peer := range peers {
		env := soap.NewEnvelope()
		from := wsa.NewEPR(q.cfg.Address)
		if err := env.SetAddressing(wsa.Headers{
			To:        peer,
			Action:    ActionQuery,
			MessageID: wsa.NewMessageID(),
			ReplyTo:   &from,
		}); err != nil {
			return out, err
		}
		if err := env.SetBody(Query{TaskID: tk.ID}); err != nil {
			return out, err
		}
		resp, err := q.cfg.Caller.Call(ctx, peer, env)
		if err != nil {
			continue // unreachable or late joiner; gossip tolerates it
		}
		var result QueryResult
		if resp == nil || resp.DecodeBody(&result) != nil {
			continue
		}
		out = append(out, result)
	}
	return out, nil
}
