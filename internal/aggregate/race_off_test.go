//go:build !race

package aggregate

const raceEnabled = false
