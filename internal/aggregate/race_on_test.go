//go:build race

package aggregate

// raceEnabled gates allocation-budget assertions: race instrumentation
// changes allocation behaviour, so budgets are only meaningful without it.
const raceEnabled = true
