package aggregate

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"wsgossip/internal/clock"
	"wsgossip/internal/core"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
	"wsgossip/internal/wscoord"
)

// passiveFanout is the exchange fanout a passive joiner without registered
// parameters uses when a live peer view lets it relay anyway.
const passiveFanout = 3

// ServiceStats counts aggregation activity at one node.
type ServiceStats struct {
	// Started counts aggregation tasks this node joined via a start
	// message.
	Started int64
	// PassiveJoins counts tasks joined through an exchange share alone
	// (the start message never arrived; the node relays mass anyway).
	PassiveJoins int64
	// SharesSent counts outgoing push-sum shares.
	SharesSent int64
	// SharesAbsorbed counts incoming shares merged into local state.
	SharesAbsorbed int64
	// StartsForwarded counts start-message re-floods.
	StartsForwarded int64
	// QueriesServed counts answered estimate queries.
	QueriesServed int64
	// SendErrors counts failed sends (mass in unsent shares is returned
	// to local state, preserving conservation).
	SendErrors int64
	// Epochs counts continuous-task epoch rolls.
	Epochs int64
	// AcksSent counts exchange acks sent for absorbed or stale shares.
	AcksSent int64
	// Commits counts outstanding shares whose transfer an ack committed.
	Commits int64
	// Retries counts re-sends of unacked outstanding shares.
	Retries int64
	// Recovered counts shares whose mass was reclaimed after a synchronous
	// send refusal (the only mid-epoch recovery: the share is known unsent).
	Recovered int64
	// StaleShares counts shares from already-retired epochs (acked but not
	// absorbed).
	StaleShares int64
	// DuplicateShares counts retried shares deduplicated on (From, Seq).
	DuplicateShares int64
	// UnackedDropped counts outstanding shares discarded with their epoch
	// at a roll — the per-target-timeout mass recovery path.
	UnackedDropped int64
}

// ServiceConfig configures an aggregation Service.
type ServiceConfig struct {
	// Address is the node's endpoint address.
	Address string
	// Caller sends SOAP messages.
	Caller soap.Caller
	// Value reads the node's local measurement when a task starts (e.g. a
	// queue depth, a price, a load average). Nil joins tasks passively.
	Value func() float64
	// RNG drives peer sampling; nil falls back to a fixed seed.
	RNG *rand.Rand
	// Peers, when set, is the live peer view push-sum exchange targets are
	// drawn from in place of the frozen coordinator-assigned lists, which
	// remain the fallback while the view is empty. With a live view a
	// passive joiner whose registration failed can still relay mass. Nil
	// keeps the classic coordinator-fed behaviour.
	Peers core.PeerView
	// Metrics is the registry the service resolves its series from
	// (aggregate_*_total counters, aggregate_rounds_total, and the
	// aggregate_mass_error gauge). Nil uses a private registry; Stats()
	// reads the same counters either way.
	Metrics *metrics.Registry
	// Clock is the shared time source continuous tasks derive their epoch
	// index from. Nil falls back to the Unix-epoch wall clock (clock.NewWall),
	// which is fine for real deployments — all nodes resolve the same epoch
	// index from synchronized machine clocks — but makes continuous tasks
	// nondeterministic in virtual-time tests; pass the test clock there.
	Clock clock.Clock
	// Values resolves named local value sources for continuous queries
	// (e.g. "load" → a load sampler). A metric with no entry falls back to
	// Value. Value sources are read under the service lock and must be
	// fast and must not call back into the service.
	Values map[string]func() float64
}

// task is one aggregation interaction this node participates in.
type task struct {
	state  *State
	params core.AggregateParameters
	cctx   wscoord.CoordinationContext
	// led is the task's conservation account (see ledger). For one-shot
	// tasks out is charged when a share is handed to the fan-out (the
	// legacy fire-and-forget contract); for continuous tasks a split share
	// sits in outstanding until its ack commits the transfer.
	led ledger
	// cont holds the epoch-windowed state for continuous tasks; nil for
	// classic one-shot aggregations.
	cont *contState
}

// Service is the aggregation participant role: application code supplies
// one local value; the middleware joins aggregation interactions on first
// contact and gossips push-sum shares until the estimate converges.
type Service struct {
	cfg      ServiceConfig
	register *wscoord.RegistrationClient
	// wake, when set (Runner adaptive mode), runs on every absorbed share
	// or task join so quiescence-backed-off exchange rounds snap back.
	wake atomic.Pointer[func()]

	mu    sync.Mutex
	rng   *rand.Rand
	clk   clock.Clock
	tasks map[string]*task
	stats aggCounters
}

// aggCounters is the aggregation layer's registry-resolved series;
// ServiceStats snapshots are views over the same counters.
type aggCounters struct {
	started         *metrics.Counter
	passiveJoins    *metrics.Counter
	sharesSent      *metrics.Counter
	sharesAbsorbed  *metrics.Counter
	startsForwarded *metrics.Counter
	queriesServed   *metrics.Counter
	sendErrors      *metrics.Counter
	rounds          *metrics.Counter
	massErr         *metrics.FloatGauge
	// Continuous-mode series.
	epochs    *metrics.Counter
	acksSent  *metrics.Counter
	commits   *metrics.Counter
	retries   *metrics.Counter
	recovered *metrics.Counter
	stale     *metrics.Counter
	dups      *metrics.Counter
	unacked   *metrics.Counter
}

func newAggCounters(reg *metrics.Registry) aggCounters {
	return aggCounters{
		started:         reg.Counter("aggregate_tasks_started_total"),
		passiveJoins:    reg.Counter("aggregate_passive_joins_total"),
		sharesSent:      reg.Counter("aggregate_shares_sent_total"),
		sharesAbsorbed:  reg.Counter("aggregate_shares_absorbed_total"),
		startsForwarded: reg.Counter("aggregate_starts_forwarded_total"),
		queriesServed:   reg.Counter("aggregate_queries_served_total"),
		sendErrors:      reg.Counter("aggregate_send_errors_total"),
		rounds:          reg.Counter("aggregate_rounds_total"),
		massErr:         reg.FloatGauge("aggregate_mass_error"),
		epochs:          reg.Counter("aggregate_epochs_total"),
		acksSent:        reg.Counter("aggregate_acks_sent_total"),
		commits:         reg.Counter("aggregate_exchange_commits_total"),
		retries:         reg.Counter("aggregate_exchange_retries_total"),
		recovered:       reg.Counter("aggregate_shares_recovered_total"),
		stale:           reg.Counter("aggregate_stale_shares_total"),
		dups:            reg.Counter("aggregate_duplicate_shares_total"),
		unacked:         reg.Counter("aggregate_unacked_discarded_total"),
	}
}

// NewService returns an aggregation service node.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Address == "" || cfg.Caller == nil {
		return nil, fmt.Errorf("aggregate: service config requires address and caller")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	clk := cfg.Clock
	if clk == nil {
		// Unix-epoch anchored, NOT a zero-value Real: the zero value's
		// year-1 epoch saturates Now at the Duration maximum, and not a
		// construction-time epoch either — peers constructed at different
		// moments must still agree on which continuous epoch is open.
		clk = clock.NewWall()
	}
	return &Service{
		cfg:      cfg,
		register: wscoord.NewRegistrationClient(cfg.Caller, cfg.Address),
		rng:      rng,
		clk:      clk,
		tasks:    make(map[string]*task),
		stats:    newAggCounters(reg),
	}, nil
}

// Address returns the node's endpoint address.
func (s *Service) Address() string { return s.cfg.Address }

// Stats returns a snapshot of the counters. The snapshot is a view over
// the same registry series a scrape reads, so the two cannot drift.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Started:         s.stats.started.Value(),
		PassiveJoins:    s.stats.passiveJoins.Value(),
		SharesSent:      s.stats.sharesSent.Value(),
		SharesAbsorbed:  s.stats.sharesAbsorbed.Value(),
		StartsForwarded: s.stats.startsForwarded.Value(),
		QueriesServed:   s.stats.queriesServed.Value(),
		SendErrors:      s.stats.sendErrors.Value(),
		Epochs:          s.stats.epochs.Value(),
		AcksSent:        s.stats.acksSent.Value(),
		Commits:         s.stats.commits.Value(),
		Retries:         s.stats.retries.Value(),
		Recovered:       s.stats.recovered.Value(),
		StaleShares:     s.stats.stale.Value(),
		DuplicateShares: s.stats.dups.Value(),
		UnackedDropped:  s.stats.unacked.Value(),
	}
}

// ActivityCount is a monotonic counter of aggregation traffic at this node:
// tasks joined plus shares absorbed. An adaptive Runner samples it each
// exchange round — an unchanged count between two fires means every task
// has gone quiescent (converged or round-capped) and the exchange period
// may back off.
func (s *Service) ActivityCount() uint64 {
	return uint64(s.stats.started.Value()) +
		uint64(s.stats.passiveJoins.Value()) +
		uint64(s.stats.sharesAbsorbed.Value())
}

// OnActivity registers fn to run whenever ActivityCount advances — an
// adaptive Runner installs its Wake here so a new aggregation task or a
// fresh share snaps backed-off exchange rounds back to their base period.
// One callback; nil clears.
func (s *Service) OnActivity(fn func()) {
	if fn == nil {
		s.wake.Store(nil)
		return
	}
	s.wake.Store(&fn)
}

// bumpActivity runs the registered activity callback, if any. Call outside
// s.mu: the callback re-enters Runner state.
func (s *Service) bumpActivity() {
	if fn := s.wake.Load(); fn != nil {
		(*fn)()
	}
}

// Handler returns the service's SOAP handler.
func (s *Service) Handler() soap.Handler {
	d := soap.NewDispatcher()
	s.RegisterActions(d)
	return d
}

// RegisterActions installs the aggregation actions on an existing
// dispatcher, for stacks that colocate the participant with other services
// (e.g. a Disseminator) on one endpoint.
func (s *Service) RegisterActions(d *soap.Dispatcher) {
	d.Register(ActionStart, soap.HandlerFunc(s.handleStart))
	d.Register(ActionExchange, soap.HandlerFunc(s.handleExchange))
	d.Register(ActionExchangeAck, soap.HandlerFunc(s.handleExchangeAck))
	d.Register(ActionQuery, soap.HandlerFunc(s.handleQuery))
}

// evalMassLocked re-evaluates the aggregate_mass_error gauge from the
// per-task ledgers. It runs at every commit point — contribution, split,
// absorb, ack commit, recovery, epoch roll — so the gauge can never show a
// stale or phantom value mid-round: mass that is merely in flight sits in a
// task's outstanding account and balances to zero. Caller holds s.mu.
func (s *Service) evalMassLocked() {
	var err float64
	for _, t := range s.tasks {
		_, w := t.state.Mass()
		err += t.led.balance(w)
	}
	s.stats.massErr.Set(err)
}

// Tasks returns the IDs of the tasks the node participates in, sorted.
func (s *Service) Tasks() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tasks))
	for id := range s.tasks {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Estimate returns the node's current estimate for the task.
func (s *Service) Estimate(taskID string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[taskID]
	if !ok {
		return 0, false
	}
	return t.state.Estimate()
}

// Converged reports whether the task's estimate has stabilized to within
// the coordinator-assigned epsilon.
func (s *Service) Converged(taskID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[taskID]
	if !ok {
		return false
	}
	return t.state.Converged(t.params.Epsilon)
}

// Mass returns the node's conserved (sum, weight) pair for the task.
func (s *Service) Mass(taskID string) (sum, weight float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, found := s.tasks[taskID]
	if !found {
		return 0, 0, false
	}
	sum, weight = t.state.Mass()
	return sum, weight, true
}

// Rounds returns how many exchange rounds the node has run for the task.
func (s *Service) Rounds(taskID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[taskID]
	if !ok {
		return 0
	}
	return t.state.Rounds()
}

// handleStart joins an aggregation task: register with the interaction's
// Registration service for the aggregation protocol, contribute the local
// value, and re-flood the start over the assigned overlay while hop budget
// remains.
func (s *Service) handleStart(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	var start Start
	if err := req.Envelope.DecodeBody(&start); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed AggregateStart: "+err.Error())
	}
	fn, err := ParseFunc(start.Function)
	if err != nil {
		return nil, soap.NewFault(soap.CodeSender, err.Error())
	}
	cctx, err := wscoord.ContextFrom(req.Envelope)
	if err != nil {
		return nil, soap.NewFault(soap.CodeSender, "aggregate start without coordination context: "+err.Error())
	}
	s.mu.Lock()
	existing, known := s.tasks[start.TaskID]
	s.mu.Unlock()
	if known {
		// Usually a duplicate flood copy — but if an exchange share
		// outran the start (passive join), this start is the node's first
		// chance to contribute its local value and, if registration had
		// failed back then, to obtain targets.
		s.upgradePassiveTask(ctx, existing, start, cctx)
		return nil, nil
	}
	params, err := s.registerTask(ctx, cctx)
	if err != nil {
		return nil, err
	}
	passive := s.cfg.Value == nil
	var value float64
	if !passive {
		value = s.cfg.Value()
	}
	st := NewState(fn, value, start.Root == s.cfg.Address, passive)
	s.mu.Lock()
	if _, raced := s.tasks[start.TaskID]; raced {
		s.mu.Unlock()
		return nil, nil
	}
	t := &task{state: st, params: params, cctx: cctx}
	if start.WindowMillis > 0 {
		// A continuous start: the state built above is discarded in favour
		// of an epoch roll, which contributes the local value into the
		// current epoch and seeds the anchor if this node is the root.
		t.state = NewState(fn, 0, false, true)
		t.cont = newContState(start, s.cfg.Address)
		now := s.clk.Now()
		s.rollTaskLocked(t, EpochAt(now, t.cont.window), now)
	} else {
		_, w := st.Mass()
		t.led.in += w
	}
	s.tasks[start.TaskID] = t
	s.stats.started.Inc()
	s.evalMassLocked()
	s.mu.Unlock()
	s.bumpActivity()
	if start.Hops > 0 {
		s.forwardStart(ctx, start, cctx, params.Targets)
	}
	return nil, nil
}

// upgradePassiveTask completes a passive join once the start arrives: the
// node contributes its local value (guarded against double counting), seeds
// the anchor weight if it is the root, and retries registration when the
// passive join's attempt failed and left it without targets.
func (s *Service) upgradePassiveTask(ctx context.Context, t *task, start Start, cctx wscoord.CoordinationContext) {
	s.mu.Lock()
	needTargets := len(t.params.Targets) == 0
	if t.cont != nil {
		// Continuous task that joined through a share: the start only
		// confirms what the share already carried. The node begins
		// contributing at the next epoch boundary (set by the passive
		// join), never retroactively mid-window.
		if t.cont.root == "" {
			t.cont.root = start.Root
		}
		if t.cont.metric == "" {
			t.cont.metric = start.Metric
		}
	} else {
		_, w0 := t.state.Mass()
		if s.cfg.Value != nil && !t.state.Contributed() {
			s.mu.Unlock()
			value := s.cfg.Value()
			s.mu.Lock()
			// Re-baseline: a share absorbed between the unlock and relock
			// is already in the ledger; only the contribution delta is new
			// mass.
			_, w0 = t.state.Mass()
			t.state.Contribute(value)
		}
		if start.Root == s.cfg.Address {
			t.state.ContributeAnchor()
		}
		_, w1 := t.state.Mass()
		t.led.in += w1 - w0
		s.evalMassLocked()
	}
	s.mu.Unlock()
	if !needTargets {
		return
	}
	params, err := s.registerTask(ctx, cctx)
	if err != nil {
		return
	}
	s.mu.Lock()
	if len(t.params.Targets) == 0 {
		t.params = params
		t.cctx = cctx
	}
	s.mu.Unlock()
	if start.Hops > 0 {
		s.forwardStart(ctx, start, cctx, params.Targets)
	}
}

// registerTask performs the first-contact Register call for the aggregation
// protocol and decodes the parameter extension.
func (s *Service) registerTask(ctx context.Context, cctx wscoord.CoordinationContext) (core.AggregateParameters, error) {
	resp, err := s.register.Register(ctx, cctx, core.ProtocolAggregate, s.cfg.Address)
	if err != nil {
		return core.AggregateParameters{}, fmt.Errorf("aggregate: register task %s: %w", cctx.Identifier, err)
	}
	params, err := core.AggregateParametersFrom(resp)
	if err != nil {
		return core.AggregateParameters{}, fmt.Errorf("aggregate: registration response without parameters: %w", err)
	}
	return params, nil
}

// buildMessage assembles one logical multi-target message: addressing with
// the action and a single message ID but no To (the fan-out splices it per
// target), the coordination context, and the body.
func buildMessage(action string, cctx wscoord.CoordinationContext, body any) (*soap.Envelope, error) {
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		Action:    action,
		MessageID: wsa.NewMessageID(),
	}); err != nil {
		return nil, err
	}
	if err := wscoord.AttachContext(env, cctx); err != nil {
		return nil, err
	}
	if err := env.SetBody(body); err != nil {
		return nil, err
	}
	return env, nil
}

// forwardStart re-floods the start to every assigned target with a
// decremented hop budget; receivers that already know the task drop it.
// The flood is one logical message, serialized once.
func (s *Service) forwardStart(ctx context.Context, start Start, cctx wscoord.CoordinationContext, targets []string) {
	next := start
	next.Hops = start.Hops - 1
	env, err := buildMessage(ActionStart, cctx, next)
	if err != nil {
		s.addSendErrors(len(targets))
		return
	}
	sent, failed := soap.Fanout(ctx, s.cfg.Caller, env, targets)
	s.stats.startsForwarded.Add(int64(sent))
	s.stats.sendErrors.Add(int64(len(failed)))
}

// handleExchange absorbs an incoming push-sum share. A node that never saw
// the start still conserves the mass: it registers through the share's
// coordination context and joins passively.
func (s *Service) handleExchange(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	var share Share
	if err := req.Envelope.DecodeBody(&share); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed AggregateShare: "+err.Error())
	}
	if share.WindowMillis > 0 {
		return s.handleContinuousShare(ctx, req, share)
	}
	s.mu.Lock()
	t, known := s.tasks[share.TaskID]
	s.mu.Unlock()
	if !known {
		fn, err := ParseFunc(share.Function)
		if err != nil {
			return nil, soap.NewFault(soap.CodeSender, err.Error())
		}
		cctx, err := wscoord.ContextFrom(req.Envelope)
		if err != nil {
			return nil, soap.NewFault(soap.CodeSender, "aggregate share without coordination context: "+err.Error())
		}
		// Registration can fail (coordinator down); the node still holds
		// the mass so the totals stay conserved — it just cannot relay
		// until a later start or share brings usable targets.
		params, _ := s.registerTask(ctx, cctx)
		t = &task{state: NewState(fn, 0, false, true), params: params, cctx: cctx}
		s.mu.Lock()
		if existing, raced := s.tasks[share.TaskID]; raced {
			t = existing
		} else {
			s.tasks[share.TaskID] = t
			s.stats.passiveJoins.Inc()
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	t.state.Absorb(share)
	t.led.in += share.Weight
	s.stats.sharesAbsorbed.Inc()
	s.evalMassLocked()
	s.mu.Unlock()
	s.bumpActivity()
	return nil, nil
}

// handleQuery answers with the node's current estimate.
func (s *Service) handleQuery(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var q Query
	if err := req.Envelope.DecodeBody(&q); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed AggregateQuery: "+err.Error())
	}
	s.mu.Lock()
	t, ok := s.tasks[q.TaskID]
	if !ok {
		s.mu.Unlock()
		return nil, soap.NewFault(soap.CodeSender, fmt.Sprintf("unknown aggregation task %q", q.TaskID))
	}
	est, _ := t.state.Estimate()
	_, weight := t.state.Mass()
	result := QueryResult{
		TaskID:    q.TaskID,
		Function:  string(t.state.Func()),
		Estimate:  est,
		Weight:    weight,
		Rounds:    t.state.Rounds(),
		Converged: t.state.Converged(t.params.Epsilon),
	}
	s.stats.queriesServed.Inc()
	s.mu.Unlock()
	resp := soap.NewEnvelope()
	if err := resp.SetAddressing(req.Addressing().Reply(ActionQueryResponse)); err != nil {
		return nil, err
	}
	if err := resp.SetBody(result); err != nil {
		return nil, err
	}
	return resp, nil
}

// Tick runs one push-sum round for every active task: split the local
// (sum, weight) into fanout+1 shares, keep one, send one to each of fanout
// sampled targets. Extremes ride along and merge idempotently. Tasks whose
// round budget is exhausted go quiescent (they still absorb and answer
// queries). Call it from a timer at the deployment's exchange interval.
func (s *Service) Tick(ctx context.Context) {
	type outgoing struct {
		taskID  string
		cctx    wscoord.CoordinationContext
		share   Share
		targets []string
	}
	var sends []outgoing
	var contSends []contSend
	s.mu.Lock()
	ids := make([]string, 0, len(s.tasks))
	for id := range s.tasks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		t := s.tasks[id]
		if t.cont != nil {
			contSends = append(contSends, s.tickContinuousLocked(t, id)...)
			continue
		}
		fanout := t.params.Fanout
		if fanout <= 0 {
			// A passive joiner whose registration failed has no parameters;
			// with a live view it can still relay at the default fanout so
			// the mass it holds keeps circulating.
			if s.cfg.Peers == nil {
				continue
			}
			fanout = passiveFanout
		}
		if s.cfg.Peers == nil && len(t.params.Targets) == 0 {
			continue
		}
		if t.params.MaxRounds > 0 && t.state.Rounds() >= t.params.MaxRounds {
			continue
		}
		// Sample before starting the round: with a live view that is still
		// empty (membership bootstrap) a tick must not burn round budget or
		// convergence history when no exchange can happen. On the static
		// path an earlier guard covers emptiness and assigned targets never
		// reduce to only the local address, so the round accounting is
		// unchanged there.
		targets := core.SelectTargets(s.cfg.Peers, s.rng, fanout, s.cfg.Address, t.params.Targets)
		if len(targets) == 0 {
			continue
		}
		t.state.BeginRound()
		s.stats.rounds.Inc()
		shareSum, shareWeight := t.state.Split(len(targets))
		// One-shot contract: the fan-out takes responsibility at split, so
		// the transfer is committed (out) immediately; failures come back
		// synchronously and are re-absorbed by returnShares.
		t.led.out += shareWeight * float64(len(targets))
		sends = append(sends, outgoing{
			taskID:  id,
			cctx:    t.cctx,
			share:   t.state.share(id, s.cfg.Address, shareSum, shareWeight),
			targets: targets,
		})
	}
	s.evalMassLocked()
	s.mu.Unlock()
	for _, out := range sends {
		// Every target of a round receives the same share, so the exchange
		// is one logical message: encode once, render per target.
		env, err := buildMessage(ActionExchange, out.cctx, out.share)
		if err != nil {
			s.returnShares(out.taskID, out.share, len(out.targets))
			continue
		}
		sent, failed := soap.Fanout(ctx, s.cfg.Caller, env, out.targets)
		if len(failed) > 0 {
			// Return the unsent mass to local state: conservation holds
			// even when peers are unreachable.
			s.returnShares(out.taskID, out.share, len(failed))
		}
		s.stats.sharesSent.Add(int64(sent))
	}
	s.sendContinuous(ctx, contSends)
}

// returnShares re-absorbs n undeliverable copies of a share and counts the
// failures, preserving mass conservation.
func (s *Service) returnShares(taskID string, share Share, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tasks[taskID]; ok {
		for i := 0; i < n; i++ {
			t.state.Absorb(Share{Sum: share.Sum, Weight: share.Weight})
		}
		t.led.in += share.Weight * float64(n)
		s.evalMassLocked()
	}
	s.stats.sendErrors.Add(int64(n))
}

func (s *Service) addSendErrors(n int) {
	s.stats.sendErrors.Add(int64(n))
}

// startLocalTask installs a task created by this node itself (the Querier's
// path: it already holds the parameters from its own registration).
func (s *Service) startLocalTask(taskID string, fn Func, cctx wscoord.CoordinationContext, params core.AggregateParameters, root bool) {
	passive := s.cfg.Value == nil
	var value float64
	if !passive {
		value = s.cfg.Value()
	}
	s.mu.Lock()
	if _, ok := s.tasks[taskID]; ok {
		s.mu.Unlock()
		return
	}
	st := NewState(fn, value, root, passive)
	t := &task{
		state:  st,
		params: params,
		cctx:   cctx,
	}
	_, w := st.Mass()
	t.led.in += w
	s.tasks[taskID] = t
	s.stats.started.Inc()
	s.evalMassLocked()
	s.mu.Unlock()
	// The node's own new task is traffic too: snap a backed-off exchange
	// loop to base pace so the first push-sum round is not delayed by a
	// stretched quiescent interval.
	s.bumpActivity()
}
