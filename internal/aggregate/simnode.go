package aggregate

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"wsgossip/internal/gossip"
	"wsgossip/internal/transport"
)

// Transport-level push-sum node: the same State machine as the SOAP-level
// Service, attached directly to a transport.Endpoint. It is what lets
// cmd/wsgossip-sim drive aggregation over the deterministic simulator at
// scales (and loss rates) the SOAP harness does not reach, mirroring how
// the dissemination engine has both a SOAP binding and a simnet binding.
// With a Window configured it runs the epoch-windowed, acked exchange of
// the continuous plane instead of one-shot fire-and-forget.

// Wire actions for simulator push-sum exchanges and their acks.
const (
	ActionSimExchange    = "urn:wsgossip:aggregate:exchange"
	ActionSimExchangeAck = "urn:wsgossip:aggregate:exchange-ack"
)

// simShare is the simulator wire format (JSON, like the gossip engine's).
// Epoch and Seq are zero on the legacy one-shot path.
type simShare struct {
	Task        string  `json:"task"`
	Function    string  `json:"fn"`
	Sum         float64 `json:"s"`
	Weight      float64 `json:"w"`
	HasExtremes bool    `json:"he,omitempty"`
	Min         float64 `json:"min,omitempty"`
	Max         float64 `json:"max,omitempty"`
	Epoch       uint64  `json:"e,omitempty"`
	Seq         uint64  `json:"q,omitempty"`
}

// simAck acknowledges one absorbed (or retired) share. Epoch is the
// receiver's live epoch, which may roll the sender forward.
type simAck struct {
	Task  string `json:"task"`
	Epoch uint64 `json:"e"`
	Seq   uint64 `json:"q"`
}

// simPending is one outstanding windowed transfer awaiting its ack.
type simPending struct {
	to    string
	share Share
	tries int
}

// SimNodeStats counts one simulator node's windowed-exchange events.
type SimNodeStats struct {
	// Epochs is how many epoch rolls the node has performed.
	Epochs int64
	// SharesSent counts shares handed to the network without a synchronous
	// refusal (first sends and retries alike).
	SharesSent int64
	// SharesAbsorbed counts shares merged into local mass.
	SharesAbsorbed int64
	// Duplicates counts re-deliveries dropped by (sender, seq) dedup.
	Duplicates int64
	// Stale counts shares from retired epochs (acked, not absorbed).
	Stale int64
	// AcksSent counts acknowledgements handed to the network.
	AcksSent int64
	// Commits counts pending shares settled by an ack.
	Commits int64
	// Retries counts re-sends of still-unacked shares.
	Retries int64
	// Recovered counts shares reclaimed after a synchronous first-send
	// refusal (the only case where mid-epoch recovery is sound).
	Recovered int64
	// UnackedDiscarded counts pending shares retired wholesale at epoch
	// boundaries.
	UnackedDiscarded int64
	// SendErrors counts synchronous send refusals that did not recover mass
	// (retries and acks).
	SendErrors int64
}

// SimNodeConfig configures a simulator aggregation node.
type SimNodeConfig struct {
	// Endpoint attaches the node to the simulated network. Required.
	Endpoint transport.Endpoint
	// Peers supplies exchange targets. Required.
	Peers gossip.PeerProvider
	// Fanout is the number of share recipients per round.
	Fanout int
	// TaskID names the single aggregation task the node runs.
	TaskID string
	// Func is the aggregate function.
	Func Func
	// Value is the node's local measurement.
	Value float64
	// Root marks the anchor node for count/sum.
	Root bool
	// RNG drives peer selection; nil falls back to a fixed seed.
	RNG *rand.Rand
	// Window enables the epoch-windowed continuous mode: push-sum restarts
	// at every multiple of Window on Clock, and exchanges become acked and
	// loss-tolerant. Zero keeps the legacy one-shot fire-and-forget mode.
	Window time.Duration
	// Clock supplies the shared time epochs derive from. Required when
	// Window is set.
	Clock transport.Clock
}

// SimNode is one simulator participant. All calls arrive from the
// simulator's single-threaded event loop, so no locking is needed.
type SimNode struct {
	cfg   SimNodeConfig
	rng   *rand.Rand
	state *State

	// Windowed-mode machinery; zero-valued and unused in legacy mode.
	epoch          uint64
	contributeFrom uint64
	nextSeq        uint64
	led            ledger
	pending        map[uint64]*simPending
	seen           map[string]map[uint64]struct{}
	frozen         *EpochEstimate
	contributed    float64
	stats          SimNodeStats
}

// encodeCap sizes encode buffers so a typical share fits in one allocation.
// Bodies cannot be pooled or reused: the simulator holds the slice until
// the (possibly much later) delivery timer fires.
const encodeCap = 160

// NewSimNode validates cfg and returns a node with its initial state.
func NewSimNode(cfg SimNodeConfig) (*SimNode, error) {
	if cfg.Endpoint == nil || cfg.Peers == nil {
		return nil, fmt.Errorf("aggregate: sim node requires endpoint and peers")
	}
	if cfg.Fanout < 1 {
		return nil, fmt.Errorf("aggregate: sim node fanout must be >= 1, got %d", cfg.Fanout)
	}
	if _, err := ParseFunc(string(cfg.Func)); err != nil {
		return nil, err
	}
	if cfg.Window > 0 && cfg.Clock == nil {
		return nil, fmt.Errorf("aggregate: windowed sim node requires a clock")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	n := &SimNode{cfg: cfg, rng: rng}
	if cfg.Window > 0 {
		// Passive until the first roll. A node created mid-window is
		// absorbed at the NEXT epoch boundary: it relays and holds mass for
		// the in-progress epoch but contributes its own value only from the
		// first epoch that starts after it exists — the same deferral the
		// SOAP continuous plane applies to passive joiners, so a joiner
		// never retroactively pollutes an epoch it did not fully live.
		n.contributeFrom = EpochAt(cfg.Clock.Now(), cfg.Window)
		if cfg.Clock.Now()%cfg.Window != 0 {
			n.contributeFrom++
		}
		n.state = NewState(cfg.Func, 0, false, true)
		n.pending = make(map[uint64]*simPending)
		n.seen = make(map[string]map[uint64]struct{})
	} else {
		n.state = NewState(cfg.Func, cfg.Value, cfg.Root, false)
	}
	return n, nil
}

// Register installs the node's wire actions on the mux.
func (n *SimNode) Register(mux *transport.Mux) {
	mux.Handle(ActionSimExchange, n.handleExchange)
	mux.Handle(ActionSimExchangeAck, n.handleAck)
}

// State exposes the node's push-sum state (estimates, mass, convergence).
func (n *SimNode) State() *State { return n.state }

// Epoch returns the live epoch (0 = legacy mode or not yet rolled).
func (n *SimNode) Epoch() uint64 { return n.epoch }

// Frozen returns the last closed epoch's final estimate.
func (n *SimNode) Frozen() (EpochEstimate, bool) {
	if n.frozen == nil {
		return EpochEstimate{}, false
	}
	return *n.frozen, true
}

// Outstanding returns the unacked split weight awaiting commit.
func (n *SimNode) Outstanding() float64 { return n.led.outstanding }

// Contributed returns the weight this node injected into the live epoch.
func (n *SimNode) Contributed() float64 { return n.contributed }

// SimStats returns the windowed-exchange counters.
func (n *SimNode) SimStats() SimNodeStats { return n.stats }

// MassError returns the node's conservation residual: held plus outstanding
// weight minus the ledger's net injections, snapped to exactly zero within
// float tolerance. Under the acked exchange it must be zero at every commit
// point regardless of loss — the windowed chaos gates assert exactly that.
func (n *SimNode) MassError() float64 {
	_, w := n.state.Mass()
	return n.led.balance(w)
}

// roll retires the live epoch and enters epoch k, mirroring the Service's
// rollTaskLocked: freeze the closing estimate, discard the old epoch's
// pending/dedup/ledger state as a unit, then re-contribute the local value
// (and anchor weight if root) into the fresh state.
func (n *SimNode) roll(k uint64, now time.Duration) {
	if k <= n.epoch {
		return
	}
	if n.epoch != 0 {
		est, ok := n.state.Estimate()
		_, w := n.state.Mass()
		n.frozen = &EpochEstimate{
			Epoch:    n.epoch,
			Estimate: est,
			Defined:  ok,
			Weight:   w,
			Rounds:   n.state.Rounds(),
			ClosedAt: now,
		}
	}
	n.stats.UnackedDiscarded += int64(len(n.pending))
	n.pending = make(map[uint64]*simPending)
	n.seen = make(map[string]map[uint64]struct{})
	n.led = ledger{}
	n.epoch = k
	if k >= n.contributeFrom {
		n.state = NewState(n.cfg.Func, n.cfg.Value, n.cfg.Root, false)
	} else {
		// Still inside the epoch the node joined mid-window: relay only.
		n.state = NewState(n.cfg.Func, 0, false, true)
	}
	_, w := n.state.Mass()
	n.led.in += w
	n.contributed = w
	n.stats.Epochs++
}

// Tick runs one push-sum round. In legacy mode: split and fire-and-forget.
// In windowed mode: roll the epoch when the clock crosses a boundary, retry
// unacked shares, then split fresh acked shares for sampled peers.
func (n *SimNode) Tick(ctx context.Context) {
	if n.cfg.Window > 0 {
		n.tickWindowed(ctx)
		return
	}
	n.state.BeginRound()
	peers := n.cfg.Peers.SelectPeers(n.rng, n.cfg.Fanout, n.cfg.Endpoint.Addr())
	if len(peers) == 0 {
		return
	}
	shareSum, shareWeight := n.state.Split(len(peers))
	sh := simShare{
		Task:        n.cfg.TaskID,
		Function:    string(n.cfg.Func),
		Sum:         shareSum,
		Weight:      shareWeight,
		HasExtremes: n.state.hasExtremes,
		Min:         n.state.min,
		Max:         n.state.max,
	}
	// One body shared by the whole fanout; never mutated after encode.
	body := appendSimShare(make([]byte, 0, encodeCap), &sh)
	for _, p := range peers {
		msg := transport.Message{To: p, Action: ActionSimExchange, Body: body}
		if err := n.cfg.Endpoint.Send(ctx, msg); err != nil {
			// Unreachable peer: reclaim the share so local mass stays
			// conserved. (Shares lost *in flight* on a lossy network are
			// gone — that is the protocol's real sensitivity to loss, and
			// exactly what the simulator measures.)
			n.state.Absorb(Share{Sum: shareSum, Weight: shareWeight})
		}
	}
}

func (n *SimNode) tickWindowed(ctx context.Context) {
	now := n.cfg.Clock.Now()
	if k := EpochAt(now, n.cfg.Window); k > n.epoch {
		n.roll(k, now)
	}
	// Retry outstanding shares in seq order (determinism). Receivers dedup
	// on (sender, seq), so a share whose copy already arrived is absorbed
	// once and simply re-acked; a refused retry proves nothing and must not
	// recover mass.
	if len(n.pending) > 0 {
		seqs := make([]uint64, 0, len(n.pending))
		for q := range n.pending {
			seqs = append(seqs, q)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, q := range seqs {
			p := n.pending[q]
			p.tries++
			n.stats.Retries++
			if err := n.sendShare(ctx, p.to, &p.share); err != nil {
				n.stats.SendErrors++
				continue
			}
			n.stats.SharesSent++
		}
	}
	peers := n.cfg.Peers.SelectPeers(n.rng, n.cfg.Fanout, n.cfg.Endpoint.Addr())
	if len(n.pending) > 0 {
		suspect := make(map[string]bool)
		for _, p := range n.pending {
			if p.tries >= suspectTries {
				suspect[p.to] = true
			}
		}
		if len(suspect) > 0 {
			kept := peers[:0]
			for _, p := range peers {
				if !suspect[p] {
					kept = append(kept, p)
				}
			}
			peers = kept
		}
	}
	if len(peers) == 0 {
		return
	}
	n.state.BeginRound()
	shareSum, shareWeight := n.state.Split(len(peers))
	for _, p := range peers {
		n.nextSeq++
		sh := n.state.share(n.cfg.TaskID, n.cfg.Endpoint.Addr(), shareSum, shareWeight)
		sh.Epoch = n.epoch
		sh.Seq = n.nextSeq
		n.pending[sh.Seq] = &simPending{to: p, share: sh}
		// Charged per share, not batched, so each commit or recovery
		// cancels its own entry term-for-term.
		n.led.outstanding += shareWeight
		if err := n.sendShare(ctx, p, &sh); err != nil {
			// A refused *first* send proves the share never left this node:
			// reclaim it. (Retries never recover — see above.)
			delete(n.pending, sh.Seq)
			n.state.Absorb(Share{
				Sum:         sh.Sum,
				Weight:      sh.Weight,
				HasExtremes: sh.HasExtremes,
				Min:         sh.Min,
				Max:         sh.Max,
			})
			n.led.outstanding -= sh.Weight
			n.stats.Recovered++
			continue
		}
		n.stats.SharesSent++
	}
}

// sendShare encodes and sends one windowed share.
func (n *SimNode) sendShare(ctx context.Context, to string, sh *Share) error {
	wire := simShare{
		Task:        n.cfg.TaskID,
		Function:    string(n.cfg.Func),
		Sum:         sh.Sum,
		Weight:      sh.Weight,
		HasExtremes: sh.HasExtremes,
		Min:         sh.Min,
		Max:         sh.Max,
		Epoch:       sh.Epoch,
		Seq:         sh.Seq,
	}
	body := appendSimShare(make([]byte, 0, encodeCap), &wire)
	return n.cfg.Endpoint.Send(ctx, transport.Message{To: to, Action: ActionSimExchange, Body: body})
}

func (n *SimNode) handleExchange(ctx context.Context, msg transport.Message) error {
	var sh simShare
	if err := decodeSimShare(msg.Body, &sh); err != nil {
		return err
	}
	if sh.Task != n.cfg.TaskID {
		return nil
	}
	if n.cfg.Window == 0 {
		n.state.Absorb(Share{
			Sum:         sh.Sum,
			Weight:      sh.Weight,
			HasExtremes: sh.HasExtremes,
			Min:         sh.Min,
			Max:         sh.Max,
		})
		return nil
	}
	now := n.cfg.Clock.Now()
	k := EpochAt(now, n.cfg.Window)
	if sh.Epoch > k {
		k = sh.Epoch
	}
	if k > n.epoch {
		n.roll(k, now)
	}
	switch {
	case sh.Epoch == n.epoch:
		m := n.seen[msg.From]
		if m == nil {
			m = make(map[uint64]struct{})
			n.seen[msg.From] = m
		}
		if _, dup := m[sh.Seq]; dup {
			n.stats.Duplicates++
		} else {
			m[sh.Seq] = struct{}{}
			n.state.Absorb(Share{
				Sum:         sh.Sum,
				Weight:      sh.Weight,
				HasExtremes: sh.HasExtremes,
				Min:         sh.Min,
				Max:         sh.Max,
			})
			n.led.in += sh.Weight
			n.stats.SharesAbsorbed++
		}
	default:
		// sh.Epoch < n.epoch: the sender is still in a retired epoch. Ack
		// without absorbing — that epoch's mass died everywhere, and the
		// ack both stops the retries and rolls the sender forward.
		n.stats.Stale++
	}
	if msg.From == "" || msg.From == n.cfg.Endpoint.Addr() {
		return nil
	}
	ack := simAck{Task: n.cfg.TaskID, Epoch: n.epoch, Seq: sh.Seq}
	body := appendSimAck(make([]byte, 0, 64), &ack)
	if err := n.cfg.Endpoint.Send(ctx, transport.Message{To: msg.From, Action: ActionSimExchangeAck, Body: body}); err != nil {
		n.stats.SendErrors++
		return nil
	}
	n.stats.AcksSent++
	return nil
}

// handleAck commits one outstanding transfer at the moment its ack arrives
// — the commit point where MassError is defined to be zero. An ack from a
// later epoch also rolls this node forward.
func (n *SimNode) handleAck(_ context.Context, msg transport.Message) error {
	if n.cfg.Window == 0 {
		return nil
	}
	var ack simAck
	if err := decodeSimAck(msg.Body, &ack); err != nil {
		return err
	}
	if ack.Task != n.cfg.TaskID {
		return nil
	}
	if p, ok := n.pending[ack.Seq]; ok {
		delete(n.pending, ack.Seq)
		n.led.outstanding -= p.share.Weight
		n.led.out += p.share.Weight
		n.stats.Commits++
	}
	if ack.Epoch > n.epoch {
		n.roll(ack.Epoch, n.cfg.Clock.Now())
	}
	return nil
}
