package aggregate

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"

	"wsgossip/internal/gossip"
	"wsgossip/internal/transport"
)

// Transport-level push-sum node: the same State machine as the SOAP-level
// Service, attached directly to a transport.Endpoint. It is what lets
// cmd/wsgossip-sim drive aggregation over the deterministic simulator at
// scales (and loss rates) the SOAP harness does not reach, mirroring how
// the dissemination engine has both a SOAP binding and a simnet binding.

// Wire action for simulator push-sum exchanges.
const ActionSimExchange = "urn:wsgossip:aggregate:exchange"

// simShare is the simulator wire format (JSON, like the gossip engine's).
type simShare struct {
	Task        string  `json:"task"`
	Function    string  `json:"fn"`
	Sum         float64 `json:"s"`
	Weight      float64 `json:"w"`
	HasExtremes bool    `json:"he,omitempty"`
	Min         float64 `json:"min,omitempty"`
	Max         float64 `json:"max,omitempty"`
}

// SimNodeConfig configures a simulator aggregation node.
type SimNodeConfig struct {
	// Endpoint attaches the node to the simulated network. Required.
	Endpoint transport.Endpoint
	// Peers supplies exchange targets. Required.
	Peers gossip.PeerProvider
	// Fanout is the number of share recipients per round.
	Fanout int
	// TaskID names the single aggregation task the node runs.
	TaskID string
	// Func is the aggregate function.
	Func Func
	// Value is the node's local measurement.
	Value float64
	// Root marks the anchor node for count/sum.
	Root bool
	// RNG drives peer selection; nil falls back to a fixed seed.
	RNG *rand.Rand
}

// SimNode is one simulator participant. All calls arrive from the
// simulator's single-threaded event loop, so no locking is needed.
type SimNode struct {
	cfg   SimNodeConfig
	rng   *rand.Rand
	state *State
}

// NewSimNode validates cfg and returns a node with its initial state.
func NewSimNode(cfg SimNodeConfig) (*SimNode, error) {
	if cfg.Endpoint == nil || cfg.Peers == nil {
		return nil, fmt.Errorf("aggregate: sim node requires endpoint and peers")
	}
	if cfg.Fanout < 1 {
		return nil, fmt.Errorf("aggregate: sim node fanout must be >= 1, got %d", cfg.Fanout)
	}
	if _, err := ParseFunc(string(cfg.Func)); err != nil {
		return nil, err
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &SimNode{
		cfg:   cfg,
		rng:   rng,
		state: NewState(cfg.Func, cfg.Value, cfg.Root, false),
	}, nil
}

// Register installs the node's wire action on the mux.
func (n *SimNode) Register(mux *transport.Mux) {
	mux.Handle(ActionSimExchange, n.handleExchange)
}

// State exposes the node's push-sum state (estimates, mass, convergence).
func (n *SimNode) State() *State { return n.state }

// Tick runs one push-sum round: split the mass into fanout+1 shares and
// send fanout of them to sampled peers.
func (n *SimNode) Tick(ctx context.Context) {
	n.state.BeginRound()
	peers := n.cfg.Peers.SelectPeers(n.rng, n.cfg.Fanout, n.cfg.Endpoint.Addr())
	if len(peers) == 0 {
		return
	}
	shareSum, shareWeight := n.state.Split(len(peers))
	min, max := n.state.min, n.state.max
	body, err := json.Marshal(simShare{
		Task:        n.cfg.TaskID,
		Function:    string(n.cfg.Func),
		Sum:         shareSum,
		Weight:      shareWeight,
		HasExtremes: n.state.hasExtremes,
		Min:         min,
		Max:         max,
	})
	if err != nil {
		return
	}
	for _, p := range peers {
		msg := transport.Message{To: p, Action: ActionSimExchange, Body: body}
		if err := n.cfg.Endpoint.Send(ctx, msg); err != nil {
			// Unreachable peer: reclaim the share so local mass stays
			// conserved. (Shares lost *in flight* on a lossy network are
			// gone — that is the protocol's real sensitivity to loss, and
			// exactly what the simulator measures.)
			n.state.Absorb(Share{Sum: shareSum, Weight: shareWeight})
		}
	}
}

func (n *SimNode) handleExchange(_ context.Context, msg transport.Message) error {
	var sh simShare
	if err := json.Unmarshal(msg.Body, &sh); err != nil {
		return err
	}
	if sh.Task != n.cfg.TaskID {
		return nil
	}
	n.state.Absorb(Share{
		Sum:         sh.Sum,
		Weight:      sh.Weight,
		HasExtremes: sh.HasExtremes,
		Min:         sh.Min,
		Max:         sh.Max,
	})
	return nil
}
