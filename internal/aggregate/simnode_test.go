package aggregate

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// TestSimNodePushSumConvergence runs the transport-level push-sum binding
// over the deterministic simulator and checks estimate accuracy and mass
// conservation at N=128.
func TestSimNodePushSumConvergence(t *testing.T) {
	const (
		n      = 128
		fanout = 3
		rounds = 30
	)
	net := simnet.New(simnet.DefaultConfig(9))
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "s" + string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + string(rune('a'+i/676))
	}
	peers := gossip.NewStaticPeers(addrs)
	nodes := make([]*SimNode, n)
	truth := 0.0
	for i := range addrs {
		v := float64(i * 3)
		truth += v
		node, err := NewSimNode(SimNodeConfig{
			Endpoint: net.Node(addrs[i]),
			Peers:    peers,
			Fanout:   fanout,
			TaskID:   "t1",
			Func:     FuncAvg,
			Value:    v,
			RNG:      rand.New(rand.NewSource(int64(i) + 5)),
		})
		if err != nil {
			t.Fatalf("NewSimNode: %v", err)
		}
		mux := transport.NewMux()
		node.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		nodes[i] = node
	}
	truth /= n

	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		for _, node := range nodes {
			node.Tick(ctx)
		}
		net.RunFor(20 * time.Millisecond)
	}

	var massSum, massWeight float64
	for _, node := range nodes {
		s, w := node.State().Mass()
		massSum += s
		massWeight += w
		est, ok := node.State().Estimate()
		if !ok {
			t.Fatalf("node %s has no estimate after %d rounds", node.cfg.Endpoint.Addr(), rounds)
		}
		if relErr := math.Abs(est-truth) / truth; relErr > 0.01 {
			t.Fatalf("node estimate %.4f vs truth %.4f: rel err %.4f > 1%%", est, truth, relErr)
		}
	}
	if math.Abs(massSum-truth*n) > 1e-6*truth*n {
		t.Fatalf("sum mass not conserved: got %.6f want %.6f", massSum, truth*n)
	}
	if math.Abs(massWeight-n) > 1e-9 {
		t.Fatalf("weight mass not conserved: got %.6f want %d", massWeight, n)
	}
}
