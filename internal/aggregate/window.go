package aggregate

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// ContinuousQuery declares one cluster-wide quantity a Window keeps fresh:
// a name (doubles as the metric resolved against ServiceConfig.Values) and
// the aggregate function over it.
type ContinuousQuery struct {
	Name string
	Func Func
}

// WindowConfig configures a Window controller.
type WindowConfig struct {
	// Querier is the node driving the continuous queries: it activates
	// each query's coordination activity once and participates in every
	// epoch's exchanges like any other node.
	Querier *Querier
	// Window is the epoch length. Each query restarts push-sum at every
	// multiple of it on the shared clock.
	Window time.Duration
	// Queries are the cluster quantities to maintain (e.g. node count,
	// average load, max lag).
	Queries []ContinuousQuery
}

// Window is the continuous-query controller: driven as a core.Runner
// aggregator loop on the shared clock, it starts each configured query
// once (retrying while the coordinator is unreachable) and then ticks the
// underlying participant, whose epoch machinery restarts push-sum every
// window. Every node in the deployment ends up holding a fresh estimate of
// each queried quantity that tracks churn epoch by epoch.
type Window struct {
	cfg WindowConfig

	mu    sync.Mutex
	tasks map[string]*Task // by query name, once started
}

// NewWindow validates cfg and returns a controller. Nothing is activated
// until the first Tick, so a Window can be built before the coordinator is
// reachable.
func NewWindow(cfg WindowConfig) (*Window, error) {
	if cfg.Querier == nil {
		return nil, fmt.Errorf("aggregate: window config requires a querier")
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("aggregate: window config requires a positive window, got %v", cfg.Window)
	}
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("aggregate: window config requires at least one query")
	}
	seen := make(map[string]bool, len(cfg.Queries))
	for _, q := range cfg.Queries {
		if q.Name == "" {
			return nil, fmt.Errorf("aggregate: continuous query requires a name")
		}
		if seen[q.Name] {
			return nil, fmt.Errorf("aggregate: duplicate continuous query %q", q.Name)
		}
		seen[q.Name] = true
		if _, err := ParseFunc(string(q.Func)); err != nil {
			return nil, err
		}
	}
	return &Window{cfg: cfg, tasks: make(map[string]*Task)}, nil
}

// Tick is the Runner hook: start any query not yet activated, then run one
// exchange round (which also rolls epochs at window boundaries).
func (w *Window) Tick(ctx context.Context) {
	for _, q := range w.cfg.Queries {
		w.mu.Lock()
		_, started := w.tasks[q.Name]
		w.mu.Unlock()
		if started {
			continue
		}
		tk, err := w.cfg.Querier.StartContinuous(ctx, q.Name, q.Func, w.cfg.Window)
		if err != nil {
			continue // coordinator unreachable; retry next tick
		}
		w.mu.Lock()
		w.tasks[q.Name] = tk
		w.mu.Unlock()
	}
	w.cfg.Querier.Tick(ctx)
}

// ActivityCount lets an adaptive Runner pace the window loop (continuous
// tasks keep absorbing shares, so the loop never backs off while the
// cluster is alive).
func (w *Window) ActivityCount() uint64 { return w.cfg.Querier.ActivityCount() }

// OnActivity registers the adaptive Runner's snap-back callback.
func (w *Window) OnActivity(fn func()) { w.cfg.Querier.OnActivity(fn) }

// Task returns the activated task behind a query name, once started.
func (w *Window) Task(name string) (*Task, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	tk, ok := w.tasks[name]
	return tk, ok
}

// ClusterEstimate is one continuous query's health view: the stable
// estimate from the last closed epoch plus the still-mixing live one.
// Consumers may assume the frozen estimate is at most one window plus one
// exchange round stale, and that a churn event is fully reflected within
// one epoch of the boundary that follows it.
type ClusterEstimate struct {
	Query    string        `json:"query"`
	Function string        `json:"function"`
	TaskID   string        `json:"taskId"`
	Window   string        `json:"window"`
	Epoch    uint64        `json:"epoch"`
	Estimate float64       `json:"estimate"`
	Defined  bool          `json:"defined"`
	EpochAge time.Duration `json:"-"`
	// FrozenEpoch is the closed epoch Estimate came from (0 while the
	// first window is still open and only Live is available).
	FrozenEpoch uint64  `json:"frozenEpoch"`
	Live        float64 `json:"live"`
	LiveDefined bool    `json:"liveDefined"`
}

// Estimates snapshots every started query, ordered as configured.
func (w *Window) Estimates() []ClusterEstimate {
	byTask := make(map[string]ContinuousEstimate)
	for _, ce := range w.cfg.Querier.svc.ContinuousEstimates() {
		byTask[ce.TaskID] = ce
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]ClusterEstimate, 0, len(w.cfg.Queries))
	for _, q := range w.cfg.Queries {
		tk, ok := w.tasks[q.Name]
		if !ok {
			continue
		}
		ce, ok := byTask[tk.ID]
		if !ok {
			continue
		}
		est := ClusterEstimate{
			Query:       q.Name,
			Function:    string(ce.Function),
			TaskID:      ce.TaskID,
			Window:      ce.Window.String(),
			Epoch:       ce.Epoch,
			Live:        ce.Live,
			LiveDefined: ce.LiveDefined,
		}
		if ce.Frozen != nil {
			est.Estimate = ce.Frozen.Estimate
			est.Defined = ce.Frozen.Defined
			est.FrozenEpoch = ce.Frozen.Epoch
		}
		out = append(out, est)
	}
	return out
}
