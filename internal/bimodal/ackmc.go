package bimodal

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"wsgossip/internal/transport"
)

type ackMsg struct {
	Seq uint64 `json:"seq"`
}

// AckSender is the comparator protocol: a reliable multicast whose sender
// multicasts one message, then blocks the stream until every group member
// has acknowledged it (stop-and-wait group flow control, the behaviour
// Birman et al. show collapsing under perturbation).
type AckSender struct {
	ep      transport.Endpoint
	members []string

	mu        sync.Mutex
	seq       uint64
	acked     map[uint64]map[string]struct{}
	completed uint64
	onDone    func(seq uint64)
}

// NewAckSender returns a sender for the given receiver set.
func NewAckSender(ep transport.Endpoint, members []string) *AckSender {
	cp := make([]string, len(members))
	copy(cp, members)
	return &AckSender{
		ep:      ep,
		members: cp,
		acked:   make(map[uint64]map[string]struct{}),
	}
}

// Register installs the ack action on the mux.
func (s *AckSender) Register(mux *transport.Mux) {
	mux.Handle(ActionAck, s.handleAck)
}

// SetOnComplete installs a callback fired when a message is fully acked.
func (s *AckSender) SetOnComplete(fn func(seq uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onDone = fn
}

// Completed returns the count of fully acknowledged messages.
func (s *AckSender) Completed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// InFlight reports whether a message is still awaiting acknowledgements.
func (s *AckSender) InFlight() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.acked) > 0
}

// Multicast sends the next message to all members and begins tracking acks.
// The caller enforces the stop-and-wait discipline by sending the next
// message only from the completion callback.
func (s *AckSender) Multicast(ctx context.Context, payload []byte) (uint64, error) {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.acked[seq] = make(map[string]struct{}, len(s.members))
	members := s.members
	s.mu.Unlock()
	m := Message{Sender: s.ep.Addr(), Seq: seq, Payload: payload}
	body, err := json.Marshal(batchMsg{Messages: []Message{m}})
	if err != nil {
		return 0, fmt.Errorf("bimodal: encode ack multicast: %w", err)
	}
	for _, p := range members {
		_ = s.ep.Send(ctx, transport.Message{To: p, Action: ActionAckData, Body: body})
	}
	return seq, nil
}

func (s *AckSender) handleAck(_ context.Context, msg transport.Message) error {
	var a ackMsg
	if err := json.Unmarshal(msg.Body, &a); err != nil {
		return fmt.Errorf("bimodal: decode ack: %w", err)
	}
	s.mu.Lock()
	pending, ok := s.acked[a.Seq]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	pending[msg.From] = struct{}{}
	var done func(uint64)
	if len(pending) >= len(s.members) {
		delete(s.acked, a.Seq)
		s.completed++
		done = s.onDone
	}
	s.mu.Unlock()
	if done != nil {
		done(a.Seq)
	}
	return nil
}

// AckReceiver is a group member of the ack-based protocol: it delivers each
// message and acknowledges it to the sender.
type AckReceiver struct {
	ep transport.Endpoint

	mu        sync.Mutex
	delivered map[uint64]struct{}
}

// NewAckReceiver attaches a receiver to the endpoint.
func NewAckReceiver(ep transport.Endpoint) *AckReceiver {
	return &AckReceiver{ep: ep, delivered: make(map[uint64]struct{})}
}

// Register installs the data action on the mux.
func (r *AckReceiver) Register(mux *transport.Mux) {
	mux.Handle(ActionAckData, r.handleData)
}

// Delivered returns the number of unique messages received.
func (r *AckReceiver) Delivered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.delivered)
}

func (r *AckReceiver) handleData(ctx context.Context, msg transport.Message) error {
	var b batchMsg
	if err := json.Unmarshal(msg.Body, &b); err != nil {
		return fmt.Errorf("bimodal: decode ack data: %w", err)
	}
	for _, m := range b.Messages {
		r.mu.Lock()
		r.delivered[m.Seq] = struct{}{}
		r.mu.Unlock()
		body, err := json.Marshal(ackMsg{Seq: m.Seq})
		if err != nil {
			return err
		}
		if err := r.ep.Send(ctx, transport.Message{To: m.Sender, Action: ActionAck, Body: body}); err != nil {
			return err
		}
	}
	return nil
}
