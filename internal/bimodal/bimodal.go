package bimodal

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"wsgossip/internal/gossip"
	"wsgossip/internal/transport"
)

// Wire actions.
const (
	ActionData       = "urn:wsgossip:pbcast:data"
	ActionDigest     = "urn:wsgossip:pbcast:digest"
	ActionSolicit    = "urn:wsgossip:pbcast:solicit"
	ActionRetransmit = "urn:wsgossip:pbcast:retransmit"

	ActionAckData = "urn:wsgossip:ackmc:data"
	ActionAck     = "urn:wsgossip:ackmc:ack"
)

// Message is one multicast data message.
type Message struct {
	Sender  string `json:"sender"`
	Seq     uint64 `json:"seq"`
	Payload []byte `json:"payload,omitempty"`
}

type digestMsg struct {
	// MaxSeq maps sender address to the highest sequence number known.
	MaxSeq map[string]uint64 `json:"maxSeq"`
}

type solicitMsg struct {
	// Want maps sender address to the missing sequence numbers.
	Want map[string][]uint64 `json:"want"`
}

type batchMsg struct {
	Messages []Message `json:"messages"`
}

// solicitCap bounds retransmission requests per exchange.
const solicitCap = 64

// NodeConfig configures a pbcast node.
type NodeConfig struct {
	// Endpoint attaches the node to the network. Required.
	Endpoint transport.Endpoint
	// Peers is the full group membership (pbcast gossips over the whole
	// group). Required.
	Peers *gossip.StaticPeers
	// Fanout is the anti-entropy gossip fanout per round.
	Fanout int
	// RNG drives peer selection and perturbation. Required for
	// reproducibility; nil falls back to a fixed seed.
	RNG *rand.Rand
	// DropRate is this node's probability of losing an incoming best-effort
	// data message (models a perturbed process whose buffers overflow).
	DropRate float64
	// Deliver is invoked once per unique message. Optional.
	Deliver func(Message)
}

// NodeStats counts pbcast activity at one node.
type NodeStats struct {
	Delivered   int64
	Dropped     int64
	Duplicates  int64
	DigestsSent int64
	Solicited   int64
	Repaired    int64
}

// Node is one pbcast group member.
type Node struct {
	cfg NodeConfig

	mu       sync.Mutex
	rng      *rand.Rand
	received map[string]map[uint64]Message
	maxSeq   map[string]uint64
	seq      uint64
	stats    NodeStats
}

// NewNode returns a pbcast node.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Endpoint == nil || cfg.Peers == nil {
		return nil, fmt.Errorf("bimodal: node config requires endpoint and peers")
	}
	if cfg.Fanout < 1 {
		return nil, fmt.Errorf("bimodal: fanout must be >= 1, got %d", cfg.Fanout)
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Node{
		cfg:      cfg,
		rng:      rng,
		received: make(map[string]map[uint64]Message),
		maxSeq:   make(map[string]uint64),
	}, nil
}

// Register installs the node's wire actions on the mux.
func (n *Node) Register(mux *transport.Mux) {
	mux.Handle(ActionData, n.handleData)
	mux.Handle(ActionDigest, n.handleDigest)
	mux.Handle(ActionSolicit, n.handleSolicit)
	mux.Handle(ActionRetransmit, n.handleRetransmit)
}

// Addr returns the node's address.
func (n *Node) Addr() string { return n.cfg.Endpoint.Addr() }

// Stats returns a copy of the counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// DeliveredFrom returns how many unique messages from sender were delivered.
func (n *Node) DeliveredFrom(sender string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.received[sender])
}

// Multicast originates a message: phase 1's unreliable multicast to the
// whole group (the local copy is delivered directly).
func (n *Node) Multicast(ctx context.Context, payload []byte) (Message, error) {
	n.mu.Lock()
	n.seq++
	m := Message{Sender: n.Addr(), Seq: n.seq, Payload: payload}
	n.storeLocked(m, false)
	n.mu.Unlock()
	body, err := json.Marshal(batchMsg{Messages: []Message{m}})
	if err != nil {
		return Message{}, fmt.Errorf("bimodal: encode multicast: %w", err)
	}
	for _, p := range n.cfg.Peers.Addrs() {
		if p == n.Addr() {
			continue
		}
		_ = n.cfg.Endpoint.Send(ctx, transport.Message{To: p, Action: ActionData, Body: body})
	}
	return m, nil
}

// storeLocked records m if new; returns whether it was new. viaRepair marks
// anti-entropy retransmissions, which bypass the perturbation drop (they
// arrive when the process has caught up).
func (n *Node) storeLocked(m Message, viaRepair bool) bool {
	bySender, ok := n.received[m.Sender]
	if !ok {
		bySender = make(map[uint64]Message)
		n.received[m.Sender] = bySender
	}
	if _, dup := bySender[m.Seq]; dup {
		n.stats.Duplicates++
		return false
	}
	bySender[m.Seq] = m
	if m.Seq > n.maxSeq[m.Sender] {
		n.maxSeq[m.Sender] = m.Seq
	}
	n.stats.Delivered++
	if n.cfg.Deliver != nil {
		n.cfg.Deliver(m)
	}
	_ = viaRepair
	return true
}

func (n *Node) handleData(_ context.Context, msg transport.Message) error {
	var b batchMsg
	if err := json.Unmarshal(msg.Body, &b); err != nil {
		return fmt.Errorf("bimodal: decode data: %w", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range b.Messages {
		if n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate {
			// Perturbed process: the message reached the host but the
			// process was asleep and its buffer overflowed. Track the max
			// seq is NOT updated — the node genuinely missed it.
			n.stats.Dropped++
			continue
		}
		n.storeLocked(m, false)
	}
	return nil
}

// Tick runs one anti-entropy round: push a digest of known sequence numbers
// to Fanout random peers.
func (n *Node) Tick(ctx context.Context) {
	n.mu.Lock()
	digest := make(map[string]uint64, len(n.maxSeq))
	for s, max := range n.maxSeq {
		digest[s] = max
	}
	n.stats.DigestsSent++
	n.mu.Unlock()
	body, err := json.Marshal(digestMsg{MaxSeq: digest})
	if err != nil {
		return
	}
	targets := n.cfg.Peers.SelectPeers(n.rng, n.cfg.Fanout, n.Addr())
	for _, p := range targets {
		_ = n.cfg.Endpoint.Send(ctx, transport.Message{To: p, Action: ActionDigest, Body: body})
	}
}

// handleDigest compares the peer's digest with local state and solicits the
// messages this node is missing.
func (n *Node) handleDigest(ctx context.Context, msg transport.Message) error {
	var d digestMsg
	if err := json.Unmarshal(msg.Body, &d); err != nil {
		return fmt.Errorf("bimodal: decode digest: %w", err)
	}
	n.mu.Lock()
	want := make(map[string][]uint64)
	total := 0
	for sender, theirMax := range d.MaxSeq {
		bySender := n.received[sender]
		for seq := uint64(1); seq <= theirMax && total < solicitCap; seq++ {
			if _, ok := bySender[seq]; !ok {
				want[sender] = append(want[sender], seq)
				total++
			}
		}
	}
	if total > 0 {
		n.stats.Solicited += int64(total)
	}
	n.mu.Unlock()
	if total == 0 {
		return nil
	}
	body, err := json.Marshal(solicitMsg{Want: want})
	if err != nil {
		return err
	}
	return n.cfg.Endpoint.Send(ctx, transport.Message{To: msg.From, Action: ActionSolicit, Body: body})
}

// handleSolicit retransmits the requested messages it holds.
func (n *Node) handleSolicit(ctx context.Context, msg transport.Message) error {
	var s solicitMsg
	if err := json.Unmarshal(msg.Body, &s); err != nil {
		return fmt.Errorf("bimodal: decode solicit: %w", err)
	}
	n.mu.Lock()
	var out []Message
	senders := make([]string, 0, len(s.Want))
	for sender := range s.Want {
		senders = append(senders, sender)
	}
	sort.Strings(senders)
	for _, sender := range senders {
		bySender := n.received[sender]
		for _, seq := range s.Want[sender] {
			if m, ok := bySender[seq]; ok {
				out = append(out, m)
			}
		}
	}
	n.mu.Unlock()
	if len(out) == 0 {
		return nil
	}
	body, err := json.Marshal(batchMsg{Messages: out})
	if err != nil {
		return err
	}
	return n.cfg.Endpoint.Send(ctx, transport.Message{To: msg.From, Action: ActionRetransmit, Body: body})
}

// handleRetransmit accepts repairs; repairs are never dropped by the
// perturbation model (the process solicits only when it is scheduled).
func (n *Node) handleRetransmit(_ context.Context, msg transport.Message) error {
	var b batchMsg
	if err := json.Unmarshal(msg.Body, &b); err != nil {
		return fmt.Errorf("bimodal: decode retransmit: %w", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range b.Messages {
		if n.storeLocked(m, true) {
			n.stats.Repaired++
		}
	}
	return nil
}
