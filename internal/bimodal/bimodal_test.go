package bimodal

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

type pbcastCluster struct {
	net   *simnet.Network
	nodes []*Node
}

func newPbcastCluster(t *testing.T, n int, seed int64, dropFor func(i int) float64) *pbcastCluster {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(seed))
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("p%03d", i)
	}
	peers := gossip.NewStaticPeers(addrs)
	c := &pbcastCluster{net: net}
	for i := range addrs {
		drop := 0.0
		if dropFor != nil {
			drop = dropFor(i)
		}
		node, err := NewNode(NodeConfig{
			Endpoint: net.Node(addrs[i]),
			Peers:    peers,
			Fanout:   2,
			RNG:      rand.New(rand.NewSource(seed + int64(i))),
			DropRate: drop,
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := transport.NewMux()
		node.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		c.nodes = append(c.nodes, node)
	}
	return c
}

func (c *pbcastCluster) gossipRounds(ctx context.Context, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, n := range c.nodes {
			n.Tick(ctx)
		}
		c.net.RunFor(20 * time.Millisecond)
	}
}

func TestMulticastReachesAllLossless(t *testing.T) {
	c := newPbcastCluster(t, 16, 1, nil)
	ctx := context.Background()
	if _, err := c.nodes[0].Multicast(ctx, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	for i, n := range c.nodes {
		if got := n.DeliveredFrom("p000"); got != 1 {
			t.Fatalf("node %d delivered %d", i, got)
		}
	}
}

func TestAntiEntropyRepairsLinkLoss(t *testing.T) {
	c := newPbcastCluster(t, 24, 2, nil)
	ctx := context.Background()
	c.net.SetLossRate(0.35)
	for i := 0; i < 10; i++ {
		if _, err := c.nodes[0].Multicast(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Run()
	missingBefore := 0
	for _, n := range c.nodes {
		missingBefore += 10 - n.DeliveredFrom("p000")
	}
	if missingBefore == 0 {
		t.Fatal("loss injection produced no gaps; test setup broken")
	}
	c.net.SetLossRate(0)
	c.gossipRounds(ctx, 15)
	for i, n := range c.nodes {
		if got := n.DeliveredFrom("p000"); got != 10 {
			t.Fatalf("node %d has %d/10 after repair", i, got)
		}
	}
	var repaired int64
	for _, n := range c.nodes {
		repaired += n.Stats().Repaired
	}
	if repaired == 0 {
		t.Fatal("repair path never exercised")
	}
}

func TestPerturbedNodeCatchesUp(t *testing.T) {
	// Node 5 drops 60% of best-effort traffic but repairs via gossip.
	c := newPbcastCluster(t, 12, 3, func(i int) float64 {
		if i == 5 {
			return 0.6
		}
		return 0
	})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := c.nodes[0].Multicast(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Run()
	if got := c.nodes[5].DeliveredFrom("p000"); got == 20 {
		t.Fatal("perturbed node dropped nothing; perturbation broken")
	}
	c.gossipRounds(ctx, 20)
	if got := c.nodes[5].DeliveredFrom("p000"); got != 20 {
		t.Fatalf("perturbed node has %d/20 after repair", got)
	}
	if c.nodes[5].Stats().Dropped == 0 {
		t.Fatal("dropped counter not incremented")
	}
}

func TestHealthyNodesUnaffectedByPerturbation(t *testing.T) {
	// The bimodal property: healthy nodes' delivery does not depend on the
	// perturbed minority.
	c := newPbcastCluster(t, 16, 4, func(i int) float64 {
		if i >= 12 {
			return 0.9
		}
		return 0
	})
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if _, err := c.nodes[0].Multicast(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Run()
	for i := 0; i < 12; i++ {
		if got := c.nodes[i].DeliveredFrom("p000"); got != 30 {
			t.Fatalf("healthy node %d delivered %d/30", i, got)
		}
	}
}

func TestNodeConfigValidation(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	peers := gossip.NewStaticPeers([]string{"a"})
	if _, err := NewNode(NodeConfig{Peers: peers, Fanout: 1}); err == nil {
		t.Fatal("missing endpoint accepted")
	}
	if _, err := NewNode(NodeConfig{Endpoint: net.Node("a"), Fanout: 1}); err == nil {
		t.Fatal("missing peers accepted")
	}
	if _, err := NewNode(NodeConfig{Endpoint: net.Node("a"), Peers: peers, Fanout: 0}); err == nil {
		t.Fatal("zero fanout accepted")
	}
}

func TestDeliverCallbackOncePerMessage(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(5))
	addrs := []string{"a", "b"}
	peers := gossip.NewStaticPeers(addrs)
	var deliveries []uint64
	mk := func(addr string, deliver func(Message)) *Node {
		n, err := NewNode(NodeConfig{
			Endpoint: net.Node(addr), Peers: peers, Fanout: 1,
			RNG: rand.New(rand.NewSource(1)), Deliver: deliver,
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := transport.NewMux()
		n.Register(mux)
		mux.Bind(net.Node(addr))
		return n
	}
	a := mk("a", nil)
	mk("b", func(m Message) { deliveries = append(deliveries, m.Seq) })
	ctx := context.Background()
	if _, err := a.Multicast(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	// Gossip rounds must not re-deliver.
	for i := 0; i < 5; i++ {
		a.Tick(ctx)
		net.Run()
	}
	if len(deliveries) != 1 || deliveries[0] != 1 {
		t.Fatalf("deliveries = %v", deliveries)
	}
}

func TestAckMulticastStopAndWait(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(6))
	members := []string{"r0", "r1", "r2"}
	sender := NewAckSender(net.Node("s"), members)
	smux := transport.NewMux()
	sender.Register(smux)
	smux.Bind(net.Node("s"))
	for _, m := range members {
		r := NewAckReceiver(net.Node(m))
		mux := transport.NewMux()
		r.Register(mux)
		mux.Bind(net.Node(m))
	}
	ctx := context.Background()
	const total = 10
	sent := 1
	sender.SetOnComplete(func(uint64) {
		if sent < total {
			sent++
			if _, err := sender.Multicast(ctx, []byte("x")); err != nil {
				t.Errorf("multicast: %v", err)
			}
		}
	})
	if _, err := sender.Multicast(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if got := sender.Completed(); got != total {
		t.Fatalf("completed = %d, want %d", got, total)
	}
	if sender.InFlight() {
		t.Fatal("messages still in flight after drain")
	}
}

func TestAckMulticastThrottledBySlowReceiver(t *testing.T) {
	// The E4 mechanism in miniature: one slow receiver bounds sender
	// throughput because each message waits for all acks.
	run := func(slow time.Duration) time.Duration {
		net := simnet.New(simnet.Config{Seed: 7, MinLatency: time.Millisecond, MaxLatency: time.Millisecond})
		members := []string{"r0", "r1", "r2"}
		sender := NewAckSender(net.Node("s"), members)
		smux := transport.NewMux()
		sender.Register(smux)
		smux.Bind(net.Node("s"))
		for _, m := range members {
			r := NewAckReceiver(net.Node(m))
			mux := transport.NewMux()
			r.Register(mux)
			mux.Bind(net.Node(m))
		}
		if slow > 0 {
			net.SetSlowdown("r2", slow)
		}
		ctx := context.Background()
		const total = 20
		sent := 1
		sender.SetOnComplete(func(uint64) {
			if sent < total {
				sent++
				_, _ = sender.Multicast(ctx, []byte("x"))
			}
		})
		_, _ = sender.Multicast(ctx, []byte("x"))
		net.Run()
		if sender.Completed() != total {
			t.Fatalf("completed = %d", sender.Completed())
		}
		return net.Now()
	}
	fast := run(0)
	throttled := run(50 * time.Millisecond)
	if throttled < 10*fast {
		t.Fatalf("slow receiver did not throttle: fast=%v throttled=%v", fast, throttled)
	}
}
