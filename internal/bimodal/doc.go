// Package bimodal implements Bimodal Multicast (pbcast; Birman, Hayden,
// Ozkasap, Xiao, Budiu, Minsky 1999), reference [2] of the paper and the
// source of its "stable high throughput" claim. The protocol has two phases:
// an unreliable best-effort multicast, followed by periodic anti-entropy
// gossip in which nodes exchange digests of what they received and solicit
// retransmissions of what they missed.
//
// The package also provides the comparator whose collapse motivates pbcast:
// an ACK-based reliable multicast whose sender waits for every receiver
// before sending the next message, so one perturbed (slow) receiver throttles
// the whole group. Experiment E4 regenerates the paper's throughput-under-
// perturbation shape from these two implementations.
//
// Key types: Node (a pbcast participant over transport.Endpoint: Multicast
// + anti-entropy Tick) and the ackmc ACK-based comparator (AckNode). Both
// run over the same transport abstraction as the gossip engine, so the
// comparison is like with like.
package bimodal
