package clock

import "time"

// Clock is the time source and timer factory the runtime schedules on.
//
// Both implementations satisfy transport.Clock (Now + AfterFunc), so a
// Clock can drive the transport-level protocols too.
type Clock interface {
	// Now returns the current time as an offset from the clock's epoch.
	Now() time.Duration

	// AfterFunc schedules fn to run once, d from now. The returned stop
	// function cancels the timer if it has not fired yet and reports
	// whether cancellation succeeded. fn runs on the clock's firing
	// goroutine: a timer goroutine for Real, the Advance caller for
	// Virtual — it must not block indefinitely.
	AfterFunc(d time.Duration, fn func()) (stop func() bool)

	// After returns a channel that receives the fire time (epoch offset)
	// once, d from now. The channel is buffered: the send never blocks the
	// clock.
	After(d time.Duration) <-chan time.Duration

	// NewTicker returns a ticker that delivers the fire time every d.
	// Like time.Ticker it drops ticks when the receiver lags (capacity-1
	// channel) and panics if d <= 0.
	NewTicker(d time.Duration) Ticker
}

// Ticker delivers periodic fire times until stopped.
type Ticker interface {
	// C returns the delivery channel. Fire times are epoch offsets.
	C() <-chan time.Duration
	// Stop cancels future deliveries. It does not drain the channel.
	Stop()
}
