package clock

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualStartsAtZero(t *testing.T) {
	v := NewVirtual()
	if v.Now() != 0 {
		t.Fatalf("new virtual clock at %v, want 0", v.Now())
	}
	v.Advance(3 * time.Second)
	if v.Now() != 3*time.Second {
		t.Fatalf("after Advance(3s) clock at %v", v.Now())
	}
}

func TestVirtualAfterFuncOrdering(t *testing.T) {
	v := NewVirtual()
	var order []string
	v.AfterFunc(20*time.Millisecond, func() { order = append(order, "b") })
	v.AfterFunc(10*time.Millisecond, func() { order = append(order, "a") })
	// Equal deadlines fire in schedule order.
	v.AfterFunc(30*time.Millisecond, func() { order = append(order, "c1") })
	v.AfterFunc(30*time.Millisecond, func() { order = append(order, "c2") })
	v.Advance(time.Second)
	want := []string{"a", "b", "c1", "c2"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestVirtualTimerSeesFireTime(t *testing.T) {
	v := NewVirtual()
	var at time.Duration
	v.AfterFunc(10*time.Millisecond, func() { at = v.Now() })
	v.Advance(time.Minute)
	if at != 10*time.Millisecond {
		t.Fatalf("callback saw Now=%v, want 10ms", at)
	}
	if v.Now() != time.Minute {
		t.Fatalf("clock at %v after Advance(1m)", v.Now())
	}
}

func TestVirtualCancel(t *testing.T) {
	v := NewVirtual()
	fired := false
	stop := v.AfterFunc(10*time.Millisecond, func() { fired = true })
	if !stop() {
		t.Fatal("first cancel should succeed")
	}
	if stop() {
		t.Fatal("second cancel should report false")
	}
	v.Advance(time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestVirtualCascadeWithinWindow(t *testing.T) {
	// A callback schedules a follow-up inside the window: the follow-up
	// fires in the same Advance (the barrier guarantee).
	v := NewVirtual()
	var hops int
	var schedule func()
	schedule = func() {
		hops++
		if hops < 5 {
			v.AfterFunc(10*time.Millisecond, schedule)
		}
	}
	v.AfterFunc(10*time.Millisecond, schedule)
	v.Advance(100 * time.Millisecond)
	if hops != 5 {
		t.Fatalf("cascade ran %d hops in window, want 5", hops)
	}
}

func TestVirtualBarrier(t *testing.T) {
	v := NewVirtual()
	fired := false
	v.AfterFunc(0, func() { fired = true })
	if fired {
		t.Fatal("zero-delay timer fired at schedule time")
	}
	v.Barrier()
	if !fired {
		t.Fatal("Barrier did not fire due timer")
	}
	if v.Now() != 0 {
		t.Fatalf("Barrier moved the clock to %v", v.Now())
	}
}

func TestVirtualAfterChannel(t *testing.T) {
	v := NewVirtual()
	ch := v.After(25 * time.Millisecond)
	v.Advance(20 * time.Millisecond)
	select {
	case got := <-ch:
		t.Fatalf("After fired early at %v", got)
	default:
	}
	v.Advance(10 * time.Millisecond)
	select {
	case got := <-ch:
		if got != 25*time.Millisecond {
			t.Fatalf("After delivered %v, want 25ms", got)
		}
	default:
		t.Fatal("After did not fire")
	}
}

func TestVirtualTicker(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(10 * time.Millisecond)
	var got []time.Duration
	for i := 0; i < 4; i++ {
		v.Advance(10 * time.Millisecond)
		select {
		case at := <-tk.C():
			got = append(got, at)
		default:
			t.Fatalf("tick %d not delivered", i)
		}
	}
	for i, at := range got {
		if want := time.Duration(i+1) * 10 * time.Millisecond; at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	// Undrained ticks are dropped, not queued.
	v.Advance(50 * time.Millisecond)
	<-tk.C()
	select {
	case <-tk.C():
		t.Fatal("lagging ticker queued more than one tick")
	default:
	}
	tk.Stop()
	v.Advance(time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker delivered")
	default:
	}
}

func TestVirtualStepAndRun(t *testing.T) {
	v := NewVirtual()
	var n int
	v.AfterFunc(5*time.Millisecond, func() { n++ })
	v.AfterFunc(10*time.Millisecond, func() { n++ })
	if !v.Step() {
		t.Fatal("Step found no event")
	}
	if n != 1 || v.Now() != 5*time.Millisecond {
		t.Fatalf("after one Step: n=%d now=%v", n, v.Now())
	}
	v.Run()
	if n != 2 {
		t.Fatalf("Run left events: n=%d", n)
	}
	if v.Step() {
		t.Fatal("Step on drained clock reported an event")
	}
}

func TestVirtualConcurrentScheduling(t *testing.T) {
	// Scheduling from many goroutines while another drives must be
	// race-free (run under -race).
	v := NewVirtual()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v.AfterFunc(time.Duration(i)*time.Millisecond, func() { fired.Add(1) })
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			v.Advance(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	v.Advance(time.Second)
	if got := fired.Load(); got != 800 {
		t.Fatalf("fired %d timers, want 800", got)
	}
}

func TestRealClockSmoke(t *testing.T) {
	r := NewReal()
	// Now is monotone across an AfterFunc wait — synchronized, no sleeps.
	a := r.Now()
	<-r.After(2 * time.Millisecond)
	if b := r.Now(); b <= a {
		t.Fatalf("real clock not advancing: %v then %v", a, b)
	}
	fired := make(chan struct{})
	r.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
}

func TestRealTicker(t *testing.T) {
	r := NewReal()
	tk := r.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real ticker never ticked")
	}
}

func TestRealCancel(t *testing.T) {
	r := NewReal()
	var fired atomic.Bool
	stop := r.AfterFunc(time.Hour, func() { fired.Store(true) })
	if !stop() {
		t.Fatal("cancel failed")
	}
	if fired.Load() {
		t.Fatal("cancelled timer fired")
	}
}

func TestWallSharedEpochBase(t *testing.T) {
	// Two wall clocks constructed at different moments must report the
	// same offset: protocol state derived from Now()/window (continuous
	// aggregation epochs) has to resolve identically on every node.
	a := NewWall()
	time.Sleep(2 * time.Millisecond)
	b := NewWall()
	if diff := (a.Now() - b.Now()).Abs(); diff > time.Second {
		t.Fatalf("wall clocks disagree by %v; epoch must be shared, not construction time", diff)
	}
	now := a.Now()
	// Regression: a zero-value Real's year-1 epoch saturates Now at the
	// Duration maximum, turning every derived epoch index into garbage.
	if now >= math.MaxInt64/2 {
		t.Fatalf("wall Now %d is saturated", now)
	}
	if got, want := now, time.Since(time.Unix(0, 0)); (got - want).Abs() > time.Minute {
		t.Fatalf("wall Now %v is not anchored at the Unix epoch (want ~%v)", got, want)
	}
}
