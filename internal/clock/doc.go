// Package clock abstracts time behind a pluggable interface so the same
// protocol runtime — the self-clocking gossip loops of core.Runner, the
// simulated network, the coordinator's activity expiry — runs identically on
// the wall clock in production and on a deterministic virtual clock in tests
// and large-N experiments.
//
// Two implementations ship:
//
//   - Real delegates to package time. Timers fire from the Go runtime's
//     timer goroutines at wall-clock rate.
//   - Virtual is a discrete-event scheduler: time stands still until a
//     driver calls Advance/RunUntil, timers fire in deterministic
//     (deadline, schedule order) sequence inside the driving goroutine, and
//     when Advance returns every timer due in the window has fully fired —
//     the barrier that makes virtual-time tests assertable without sleeps.
//
// Times are expressed as offsets (time.Duration) from an arbitrary
// per-clock epoch rather than as time.Time, matching transport.Clock: an
// epoch-free timeline is the only honest representation a simulation has.
//
// Key types: Clock (Now / AfterFunc / After / NewTicker), Ticker, Real,
// Virtual. The paper's protocols are specified in rounds; this package is
// what lets those rounds be tested in virtual time (internal/scenario) and
// shipped on real time (cmd/wsgossip-node) from one code path.
package clock
