// Package clock abstracts time behind a pluggable interface so the same
// protocol runtime — the self-clocking gossip loops of core.Runner, the
// simulated network, the coordinator's activity expiry — runs identically on
// the wall clock in production and on a deterministic virtual clock in tests
// and large-N experiments.
//
// Two implementations ship:
//
//   - Real delegates to package time. Timers fire from the Go runtime's
//     timer goroutines at wall-clock rate.
//   - Virtual is a discrete-event scheduler: time stands still until a
//     driver calls Advance/RunUntil, timers fire in deterministic
//     (deadline, schedule order) sequence inside the driving goroutine, and
//     when Advance returns every timer due in the window has fully fired —
//     the barrier that makes virtual-time tests assertable without sleeps.
//
// Virtual is built for simulated populations of 10^5..10^6 nodes: timers
// spread over sharded heaps (scheduling from many goroutines contends a
// shard, not the clock), cancelled timers are compacted lazily once they
// dominate a shard, and fired timers recycle through per-shard free lists
// guarded by generation counters. A global sequence number keeps the total
// firing order exactly that of a single heap, so the sharding is invisible
// to observers. SetWorkers optionally fans same-deadline callbacks — the
// only cohort whose concurrent execution cannot reorder observable time —
// across a bounded worker pool; callbacks' own scheduling calls are
// buffered per worker slot and flushed in slot order, so a multi-worker run
// is bit-identical to a sequential one provided same-deadline callbacks
// are mutually independent.
//
// Times are expressed as offsets (time.Duration) from an arbitrary
// per-clock epoch rather than as time.Time, matching transport.Clock: an
// epoch-free timeline is the only honest representation a simulation has.
//
// Key types: Clock (Now / AfterFunc / After / NewTicker), Ticker, Real,
// Virtual. The paper's protocols are specified in rounds; this package is
// what lets those rounds be tested in virtual time (internal/scenario) and
// shipped on real time (cmd/wsgossip-node) from one code path.
package clock
