package clock

import (
	"sync"
	"time"
)

// Real is a Clock backed by package time. Its epoch is fixed at
// construction, so Now is monotone and starts near zero.
type Real struct {
	epoch time.Time
}

var _ Clock = (*Real)(nil)

// NewReal returns a wall clock with its epoch at construction time.
func NewReal() *Real {
	return &Real{epoch: time.Now()}
}

// NewWall returns a wall clock anchored at the Unix epoch, so Now is the
// same offset in every process whose machine clock is synchronized. This is
// the clock for protocol state that must agree across nodes — continuous
// aggregation derives its epoch index from Now()/window, and two nodes with
// construction-time epochs would disagree on which epoch is open.
//
// A zero-value Real is NOT a substitute: its epoch is the zero time.Time
// (year 1), Now saturates time.Duration at its maximum, and every derived
// epoch index is garbage.
func NewWall() *Real {
	return &Real{epoch: time.Unix(0, 0)}
}

// Now returns the elapsed wall time since the epoch.
func (r *Real) Now() time.Duration { return time.Since(r.epoch) }

// AfterFunc schedules fn on the wall clock.
func (r *Real) AfterFunc(d time.Duration, fn func()) func() bool {
	t := time.AfterFunc(d, fn)
	return t.Stop
}

// After returns a channel receiving the fire time once, d from now.
func (r *Real) After(d time.Duration) <-chan time.Duration {
	ch := make(chan time.Duration, 1)
	time.AfterFunc(d, func() { ch <- time.Since(r.epoch) })
	return ch
}

// NewTicker returns a wall-clock ticker.
func (r *Real) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	rt := &realTicker{
		epoch: r.epoch,
		t:     time.NewTicker(d),
		c:     make(chan time.Duration, 1),
		done:  make(chan struct{}),
	}
	go rt.forward()
	return rt
}

// realTicker adapts time.Ticker's time.Time channel to epoch offsets.
type realTicker struct {
	epoch time.Time
	t     *time.Ticker
	c     chan time.Duration
	done  chan struct{}
	once  sync.Once
}

func (rt *realTicker) forward() {
	for {
		select {
		case tm := <-rt.t.C:
			select {
			case rt.c <- tm.Sub(rt.epoch):
			default: // receiver lags: drop the tick, like time.Ticker
			}
		case <-rt.done:
			return
		}
	}
}

func (rt *realTicker) C() <-chan time.Duration { return rt.c }

func (rt *realTicker) Stop() {
	rt.once.Do(func() {
		rt.t.Stop()
		close(rt.done)
	})
}
