package clock

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Virtual is a deterministic discrete-event Clock. Time does not pass on its
// own: a driver advances it with Advance/RunUntil/Step, and due timers fire
// inside that call, in (deadline, schedule order) sequence, on the driving
// goroutine.
//
// The barrier property: when Advance(d) (or RunUntil/Barrier) returns, every
// timer whose deadline fell inside the window has fired and its callback has
// run to completion — including timers those callbacks scheduled inside the
// window. Tests can therefore assert on protocol state immediately after
// advancing, with no sleeps and no races.
//
// Scheduling (Now, AfterFunc, After, NewTicker) is safe from any goroutine,
// including from inside firing callbacks. Driving (Advance, RunUntil, Step,
// Run, Barrier) is serialized internally; callbacks must not drive the clock
// re-entrantly — that would deadlock, and a round firing mid-round is not a
// meaningful timeline anyway.
//
// Internally the event queue is sharded: timers land in one of timerShards
// independent heaps and the driver merges the shard heads at every pop, so
// scheduling from many goroutines contends on 1/timerShards of the queue
// while the firing order stays the exact global (deadline, seq) sequence a
// single heap would produce. Fired and cancelled timers are recycled through
// per-shard free lists, so steady-state timer churn (a core.Runner
// rescheduling every round for a million nodes) does not allocate. Cancelled
// timers keep their heap slot until popped or until a shard's dead fraction
// exceeds half, at which point the shard compacts — Pending stays bounded
// under cancel/reschedule churn (adaptive pacing's Wake storms).
type Virtual struct {
	runMu sync.Mutex // serializes drivers

	now    atomic.Int64 // current virtual time, as time.Duration
	seq    atomic.Int64 // global schedule order; ties on deadline break by seq
	rr     atomic.Uint32
	shards [timerShards]timerShard

	workers int // same-deadline batch parallelism; <=1 is strictly sequential
	batch   batchState
}

var _ Clock = (*Virtual)(nil)

// timerShards is the number of independent timer heaps. A power of two so
// round-robin placement is a mask. 16 keeps the per-pop head merge cheap
// while cutting scheduling contention and per-heap sift depth.
const timerShards = 16

// freeListCap bounds each shard's recycled-timer free list so a transient
// million-timer spike does not pin its arena forever.
const freeListCap = 4096

// compactMinLen is the minimum shard heap length before lazy compaction is
// considered; below it dead entries are cheaper to pop than to filter.
const compactMinLen = 64

// timer is one scheduled callback. A cancelled timer keeps its heap slot
// with fn nil and is skipped when popped; shards compact lazily when dead
// entries dominate. Timers are recycled: gen is bumped on every recycle so
// stale stop functions from a previous life cannot cancel the current one.
// A timer is bound to one shard for all its lives — the stop function locks
// that shard to synchronize with pops, pushes, and compaction.
type timer struct {
	at     time.Duration
	seq    int64
	fn     func()
	shard  int32
	gen    uint32
	inHeap bool
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// timerShard is one slice of the event queue. head caches h[0] so the
// driver's merge scan reads one atomic pointer per shard instead of taking
// every shard lock per pop.
type timerShard struct {
	mu   sync.Mutex
	h    timerHeap
	dead int // cancelled entries still occupying heap slots
	head atomic.Pointer[timer]
	free []*timer
}

// storeHeadLocked refreshes the cached head pointer after any heap mutation.
func (s *timerShard) storeHeadLocked() {
	if len(s.h) > 0 {
		s.head.Store(s.h[0])
	} else {
		s.head.Store(nil)
	}
}

// recycleLocked retires a timer that left the heap (fired, discarded, or
// compacted away). The generation bump invalidates outstanding stop funcs.
func (s *timerShard) recycleLocked(t *timer) {
	t.gen++
	t.fn = nil
	t.inHeap = false
	if len(s.free) < freeListCap {
		s.free = append(s.free, t)
	}
}

// maybeCompactLocked rebuilds the shard heap without its dead entries once
// they outnumber the live ones and the heap is big enough to matter. This is
// what bounds Pending under cancel-heavy workloads: a shard is never more
// than half garbage (above compactMinLen).
func (s *timerShard) maybeCompactLocked() {
	if len(s.h) < compactMinLen || s.dead*2 <= len(s.h) {
		return
	}
	live := s.h[:0]
	for _, t := range s.h {
		if t.fn != nil {
			live = append(live, t)
		} else {
			s.recycleLocked(t)
		}
	}
	// Zero the tail so evicted slots do not pin recycled timers.
	for i := len(live); i < len(s.h); i++ {
		s.h[i] = nil
	}
	s.h = live
	s.dead = 0
	heap.Init(&s.h)
	s.storeHeadLocked()
}

// NewVirtual returns a virtual clock at time zero with no timers.
func NewVirtual() *Virtual {
	return &Virtual{}
}

// SetWorkers sets the bounded worker pool size for firing same-deadline
// timer batches; n <= 1 (the default) fires every callback sequentially on
// the driving goroutine. With n > 1, when two or more due timers share the
// exact same deadline their callbacks run concurrently on up to n
// goroutines. Determinism contract: such callbacks must be mutually
// independent — they may not interact through shared state in an
// order-dependent way — and in exchange every timer they schedule is
// sequenced exactly as if the batch had run sequentially in (deadline, seq)
// order, so the global firing order is identical to the sequential clock's.
// Call before driving; switching while an Advance is in flight is not
// supported.
func (v *Virtual) SetWorkers(n int) {
	v.runMu.Lock()
	defer v.runMu.Unlock()
	v.workers = n
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Duration {
	return time.Duration(v.now.Load())
}

// newTimer draws a timer from the chosen shard's free list (or allocates
// one) and arms it. The timer is not yet in the shard heap and has no seq.
// The returned gen is read under the shard lock and identifies this life of
// the struct; it must be captured before the timer becomes poppable.
func (v *Virtual) newTimer(at time.Duration, fn func()) (*timer, uint32) {
	idx := int32(v.rr.Add(1) & (timerShards - 1))
	s := &v.shards[idx]
	s.mu.Lock()
	var t *timer
	if n := len(s.free); n > 0 {
		t = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		t = &timer{shard: idx}
	}
	t.at = at
	t.fn = fn
	t.inHeap = false
	gen := t.gen
	s.mu.Unlock()
	return t, gen
}

// push assigns the next global seq and inserts the timer into its shard. A
// timer cancelled before the push (batch-deferred scheduling) still takes
// its heap slot as a dead entry, exactly as a post-push cancel would.
func (v *Virtual) push(t *timer) {
	t.seq = v.seq.Add(1)
	s := &v.shards[t.shard]
	s.mu.Lock()
	t.inHeap = true
	if t.fn == nil {
		s.dead++
	}
	heap.Push(&s.h, t)
	s.storeHeadLocked()
	s.mu.Unlock()
}

// stopFunc builds the cancellation closure for generation gen of t.
func (v *Virtual) stopFunc(t *timer, gen uint32) func() bool {
	s := &v.shards[t.shard]
	return func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if t.gen != gen || t.fn == nil {
			return false
		}
		t.fn = nil
		if t.inHeap {
			s.dead++
			s.maybeCompactLocked()
		}
		return true
	}
}

// AfterFunc schedules fn at now+d (d < 0 counts as 0). fn runs inside a
// future Advance/RunUntil/Step call.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) func() bool {
	if d < 0 {
		d = 0
	}
	at := v.Now() + d
	t, gen := v.newTimer(at, fn)
	stop := v.stopFunc(t, gen)
	if v.batch.active.Load() {
		if ref := v.batch.slotOf(goid()); ref != nil {
			// Scheduled from inside a parallel same-deadline batch: defer
			// into the slot buffer; the driver flushes buffers in slot order
			// after the batch joins, assigning seqs exactly as a sequential
			// run of the batch would have.
			*ref.cur = append(*ref.cur, t)
			return stop
		}
	}
	v.push(t)
	return stop
}

// After returns a channel receiving the virtual fire time once, d from now.
func (v *Virtual) After(d time.Duration) <-chan time.Duration {
	ch := make(chan time.Duration, 1)
	v.AfterFunc(d, func() { ch <- v.Now() })
	return ch
}

// NewTicker returns a virtual ticker firing every d. Ticks are delivered
// during Advance through a capacity-1 channel; if the receiver has not
// drained the previous tick, the new one is dropped (time.Ticker semantics).
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	vt := &virtualTicker{v: v, period: d, c: make(chan time.Duration, 1)}
	vt.mu.Lock()
	vt.cancel = v.AfterFunc(d, vt.fire)
	vt.mu.Unlock()
	return vt
}

type virtualTicker struct {
	v      *Virtual
	period time.Duration
	c      chan time.Duration

	mu      sync.Mutex
	cancel  func() bool
	stopped bool
}

func (vt *virtualTicker) fire() {
	vt.mu.Lock()
	if vt.stopped {
		vt.mu.Unlock()
		return
	}
	vt.cancel = vt.v.AfterFunc(vt.period, vt.fire)
	vt.mu.Unlock()
	select {
	case vt.c <- vt.v.Now():
	default:
	}
}

func (vt *virtualTicker) C() <-chan time.Duration { return vt.c }

func (vt *virtualTicker) Stop() {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	vt.stopped = true
	if vt.cancel != nil {
		vt.cancel()
		vt.cancel = nil
	}
}

// Advance moves the clock forward by d, firing every timer due in the
// window in deterministic order. The window's start is read after the
// driver lock is held, so concurrent Advance calls compose: two Advance(d)
// calls always move the clock 2d in total. See the type comment for the
// barrier guarantee.
func (v *Virtual) Advance(d time.Duration) {
	v.runMu.Lock()
	defer v.runMu.Unlock()
	v.runUntilLocked(v.Now() + d)
}

// RunUntil fires every timer with deadline <= t (including timers scheduled
// by firing callbacks, while their deadlines stay <= t), then sets the clock
// to exactly t. A target in the past is a no-op barrier at the current time.
func (v *Virtual) RunUntil(t time.Duration) {
	v.runMu.Lock()
	defer v.runMu.Unlock()
	v.runUntilLocked(t)
}

// runUntilLocked is RunUntil with runMu already held.
func (v *Virtual) runUntilLocked(t time.Duration) {
	for {
		fn, ok := v.popDue(t, true)
		if !ok {
			return
		}
		if v.workers > 1 {
			// Collect the rest of the deadline cohort; if the cohort has two
			// or more members it runs on the worker pool.
			if batch := v.popDeadlineCohort(fn); len(batch) > 1 {
				v.runBatch(batch)
				continue
			}
		}
		fn()
	}
}

// popDeadlineCohort pops every already-queued live timer sharing the current
// deadline (the one the just-popped first callback fired at) and returns the
// full batch, first callback included, in (deadline, seq) order. Timers the
// batch itself schedules at this same deadline are not part of the cohort:
// they get later seqs, exactly as in a sequential run, and fire in the next
// iteration.
func (v *Virtual) popDeadlineCohort(first func()) []func() {
	at := v.Now()
	batch := []func(){first}
	for {
		fn, ok := v.popAt(at)
		if !ok {
			return batch
		}
		batch = append(batch, fn)
	}
}

// popDue pops the next live timer with deadline <= t and advances now to its
// deadline. When none remains it advances now to t (if later and advance is
// set) and reports false.
func (v *Virtual) popDue(t time.Duration, advance bool) (func(), bool) {
	for {
		best, idx := v.minHead()
		if best == nil || best.at > t {
			if advance && v.Now() < t {
				v.now.Store(int64(t))
			}
			return nil, false
		}
		fn, ok := v.popVerified(best, idx)
		if !ok {
			continue // head moved or was a dead entry; rescan
		}
		v.now.Store(int64(best.at))
		return fn, true
	}
}

// popAt pops the next live timer with deadline exactly at; it never moves
// the clock (the caller is already at that deadline).
func (v *Virtual) popAt(at time.Duration) (func(), bool) {
	for {
		best, idx := v.minHead()
		if best == nil || best.at != at {
			return nil, false
		}
		fn, ok := v.popVerified(best, idx)
		if !ok {
			continue
		}
		return fn, true
	}
}

// minHead scans the cached shard heads and returns the global minimum by
// (deadline, seq), dead entries included — they are discarded at pop.
func (v *Virtual) minHead() (*timer, int) {
	var best *timer
	idx := -1
	for i := range v.shards {
		h := v.shards[i].head.Load()
		if h == nil {
			continue
		}
		if best == nil || h.at < best.at || (h.at == best.at && h.seq < best.seq) {
			best, idx = h, i
		}
	}
	return best, idx
}

// popVerified pops want from shard idx if it is still that shard's head,
// returning its callback. ok is false when the head changed under the scan
// (rescan) or the entry was dead (discarded; rescan).
func (v *Virtual) popVerified(want *timer, idx int) (func(), bool) {
	s := &v.shards[idx]
	s.mu.Lock()
	if len(s.h) == 0 || s.h[0] != want {
		s.mu.Unlock()
		return nil, false
	}
	heap.Pop(&s.h)
	s.storeHeadLocked()
	fn := want.fn
	if fn == nil {
		s.dead--
	}
	s.recycleLocked(want)
	s.mu.Unlock()
	return fn, fn != nil
}

// Barrier fires every timer already due at the current virtual time and
// returns when their callbacks have completed. Use it after delivering an
// external event that scheduled zero-delay work.
func (v *Virtual) Barrier() {
	v.RunUntil(v.Now())
}

// Step fires the single next pending timer regardless of its deadline,
// advancing the clock to it, and reports whether one existed.
func (v *Virtual) Step() bool {
	v.runMu.Lock()
	defer v.runMu.Unlock()
	fn, ok := v.popDue(1<<63-1, false)
	if !ok {
		return false
	}
	fn()
	return true
}

// Run fires pending timers until none remain. With self-rescheduling work
// on the clock — a Ticker, a core.Runner loop — it never returns; drive
// those timelines with Advance/RunUntil instead.
func (v *Virtual) Run() {
	for v.Step() {
	}
}

// Pending reports the number of scheduled timer slots across all shards,
// including cancelled ones not yet discarded or compacted away. Lazy
// compaction keeps the dead share of any large shard below half, so Pending
// stays within a small constant factor of the live timer count.
func (v *Virtual) Pending() int {
	n := 0
	for i := range v.shards {
		s := &v.shards[i]
		s.mu.Lock()
		n += len(s.h)
		s.mu.Unlock()
	}
	return n
}

// batchState routes AfterFunc calls made from inside a parallel
// same-deadline batch to the calling worker's slot buffer, keyed by
// goroutine id. Only consulted while a batch is active.
type batchState struct {
	active atomic.Bool
	mu     sync.Mutex
	slots  map[uint64]*slotRef
}

// slotRef is one worker's view of where deferred timers go; cur is repointed
// by the worker between slots and read only from that worker's goroutine.
type slotRef struct {
	cur *[]*timer
}

func (b *batchState) slotOf(id uint64) *slotRef {
	b.mu.Lock()
	ref := b.slots[id]
	b.mu.Unlock()
	return ref
}

// runBatch fires a same-deadline cohort on the bounded worker pool. Slot i
// of deferred collects the timers callback i scheduled; after the join they
// are flushed in slot order, reproducing the seq assignment of a sequential
// run. Workers register their goroutine id so AfterFunc can find the active
// slot buffer; scheduling from non-worker goroutines during the batch takes
// the immediate path, exactly as it would have raced a sequential callback.
func (v *Virtual) runBatch(batch []func()) {
	deferred := make([][]*timer, len(batch))
	v.batch.mu.Lock()
	v.batch.slots = make(map[uint64]*slotRef, v.workers)
	v.batch.mu.Unlock()
	v.batch.active.Store(true)

	w := v.workers
	if w > len(batch) {
		w = len(batch)
	}
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			ref := &slotRef{}
			id := goid()
			v.batch.mu.Lock()
			v.batch.slots[id] = ref
			v.batch.mu.Unlock()
			for slot := wk; slot < len(batch); slot += w {
				ref.cur = &deferred[slot]
				batch[slot]()
			}
			v.batch.mu.Lock()
			delete(v.batch.slots, id)
			v.batch.mu.Unlock()
		}(wk)
	}
	wg.Wait()
	v.batch.active.Store(false)
	for _, buf := range deferred {
		for _, t := range buf {
			v.push(t)
		}
	}
}

// goid returns the current goroutine's id, parsed from the runtime stack
// header. Only used to route scheduling inside parallel batches; the
// sequential clock never calls it.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Header: "goroutine <id> [...".
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
