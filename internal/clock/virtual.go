package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event Clock. Time does not pass on its
// own: a driver advances it with Advance/RunUntil/Step, and due timers fire
// inside that call, in (deadline, schedule order) sequence, on the driving
// goroutine.
//
// The barrier property: when Advance(d) (or RunUntil/Barrier) returns, every
// timer whose deadline fell inside the window has fired and its callback has
// run to completion — including timers those callbacks scheduled inside the
// window. Tests can therefore assert on protocol state immediately after
// advancing, with no sleeps and no races.
//
// Scheduling (Now, AfterFunc, After, NewTicker) is safe from any goroutine,
// including from inside firing callbacks. Driving (Advance, RunUntil, Step,
// Run, Barrier) is serialized internally; callbacks must not drive the clock
// re-entrantly — that would deadlock, and a round firing mid-round is not a
// meaningful timeline anyway.
type Virtual struct {
	runMu sync.Mutex // serializes drivers

	mu    sync.Mutex // guards now, seq, queue
	now   time.Duration
	seq   int64
	queue timerHeap
}

var _ Clock = (*Virtual)(nil)

// timer is one scheduled callback. A cancelled timer keeps its heap slot
// with fn nil and is skipped when popped.
type timer struct {
	at  time.Duration
	seq int64
	fn  func()
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// NewVirtual returns a virtual clock at time zero with no timers.
func NewVirtual() *Virtual {
	return &Virtual{}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc schedules fn at now+d (d < 0 counts as 0). fn runs inside a
// future Advance/RunUntil/Step call.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) func() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := v.scheduleLocked(d, fn)
	return func() bool {
		v.mu.Lock()
		defer v.mu.Unlock()
		if t.fn == nil {
			return false
		}
		t.fn = nil
		return true
	}
}

func (v *Virtual) scheduleLocked(d time.Duration, fn func()) *timer {
	if d < 0 {
		d = 0
	}
	v.seq++
	t := &timer{at: v.now + d, seq: v.seq, fn: fn}
	heap.Push(&v.queue, t)
	return t
}

// After returns a channel receiving the virtual fire time once, d from now.
func (v *Virtual) After(d time.Duration) <-chan time.Duration {
	ch := make(chan time.Duration, 1)
	v.AfterFunc(d, func() { ch <- v.Now() })
	return ch
}

// NewTicker returns a virtual ticker firing every d. Ticks are delivered
// during Advance through a capacity-1 channel; if the receiver has not
// drained the previous tick, the new one is dropped (time.Ticker semantics).
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	vt := &virtualTicker{v: v, period: d, c: make(chan time.Duration, 1)}
	vt.mu.Lock()
	vt.cancel = v.AfterFunc(d, vt.fire)
	vt.mu.Unlock()
	return vt
}

type virtualTicker struct {
	v      *Virtual
	period time.Duration
	c      chan time.Duration

	mu      sync.Mutex
	cancel  func() bool
	stopped bool
}

func (vt *virtualTicker) fire() {
	vt.mu.Lock()
	if vt.stopped {
		vt.mu.Unlock()
		return
	}
	vt.cancel = vt.v.AfterFunc(vt.period, vt.fire)
	vt.mu.Unlock()
	select {
	case vt.c <- vt.v.Now():
	default:
	}
}

func (vt *virtualTicker) C() <-chan time.Duration { return vt.c }

func (vt *virtualTicker) Stop() {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	vt.stopped = true
	if vt.cancel != nil {
		vt.cancel()
		vt.cancel = nil
	}
}

// Advance moves the clock forward by d, firing every timer due in the
// window in deterministic order. The window's start is read after the
// driver lock is held, so concurrent Advance calls compose: two Advance(d)
// calls always move the clock 2d in total. See the type comment for the
// barrier guarantee.
func (v *Virtual) Advance(d time.Duration) {
	v.runMu.Lock()
	defer v.runMu.Unlock()
	v.mu.Lock()
	target := v.now + d
	v.mu.Unlock()
	v.runUntilLocked(target)
}

// RunUntil fires every timer with deadline <= t (including timers scheduled
// by firing callbacks, while their deadlines stay <= t), then sets the clock
// to exactly t. A target in the past is a no-op barrier at the current time.
func (v *Virtual) RunUntil(t time.Duration) {
	v.runMu.Lock()
	defer v.runMu.Unlock()
	v.runUntilLocked(t)
}

// runUntilLocked is RunUntil with runMu already held.
func (v *Virtual) runUntilLocked(t time.Duration) {
	for {
		fn, ok := v.popDueLocked(t)
		if !ok {
			return
		}
		if fn != nil {
			fn()
		}
	}
}

// popDueLocked pops the next live timer with deadline <= t and advances now
// to its deadline. When none remains it advances now to t (if later) and
// reports false.
func (v *Virtual) popDueLocked(t time.Duration) (func(), bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for v.queue.Len() > 0 {
		head := v.queue[0]
		if head.fn == nil {
			heap.Pop(&v.queue) // cancelled: discard
			continue
		}
		if head.at > t {
			break
		}
		heap.Pop(&v.queue)
		v.now = head.at
		fn := head.fn
		head.fn = nil
		return fn, true
	}
	if v.now < t {
		v.now = t
	}
	return nil, false
}

// Barrier fires every timer already due at the current virtual time and
// returns when their callbacks have completed. Use it after delivering an
// external event that scheduled zero-delay work.
func (v *Virtual) Barrier() {
	v.RunUntil(v.Now())
}

// Step fires the single next pending timer regardless of its deadline,
// advancing the clock to it, and reports whether one existed.
func (v *Virtual) Step() bool {
	v.runMu.Lock()
	defer v.runMu.Unlock()
	v.mu.Lock()
	var fn func()
	for v.queue.Len() > 0 {
		t := heap.Pop(&v.queue).(*timer)
		if t.fn == nil {
			continue
		}
		v.now = t.at
		fn = t.fn
		t.fn = nil
		break
	}
	v.mu.Unlock()
	if fn == nil {
		return false
	}
	fn()
	return true
}

// Run fires pending timers until none remain. With self-rescheduling work
// on the clock — a Ticker, a core.Runner loop — it never returns; drive
// those timelines with Advance/RunUntil instead.
func (v *Virtual) Run() {
	for v.Step() {
	}
}

// Pending reports the number of scheduled timer slots, including cancelled
// ones not yet discarded.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.queue.Len()
}
