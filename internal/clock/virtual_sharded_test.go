package clock

import (
	"container/heap"
	"fmt"
	"sync"
	"testing"
	"time"
)

// ---- single-heap reference implementation ----
//
// refClock is the pre-sharding clock.Virtual, kept as the ordering oracle:
// one mutex-guarded heap, (deadline, seq) order, cancelled timers keep their
// slot until popped. The property test checks the sharded clock fires any
// workload in the exact order this reference does.

type refTimer struct {
	at  time.Duration
	seq int64
	fn  func()
}

type refHeap []*refTimer

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refTimer)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

type refClock struct {
	mu    sync.Mutex
	now   time.Duration
	seq   int64
	queue refHeap
}

func (r *refClock) Now() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.now
}

func (r *refClock) AfterFunc(d time.Duration, fn func()) func() bool {
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	r.seq++
	t := &refTimer{at: r.now + d, seq: r.seq, fn: fn}
	heap.Push(&r.queue, t)
	r.mu.Unlock()
	return func() bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		if t.fn == nil {
			return false
		}
		t.fn = nil
		return true
	}
}

func (r *refClock) Advance(d time.Duration) {
	r.mu.Lock()
	target := r.now + d
	for {
		var fn func()
		for len(r.queue) > 0 {
			head := r.queue[0]
			if head.fn == nil {
				heap.Pop(&r.queue)
				continue
			}
			if head.at > target {
				break
			}
			heap.Pop(&r.queue)
			r.now = head.at
			fn = head.fn
			break
		}
		if fn == nil {
			if r.now < target {
				r.now = target
			}
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()
		fn()
		r.mu.Lock()
	}
}

// schedClock is the common surface the property workload drives.
type schedClock interface {
	Now() time.Duration
	AfterFunc(time.Duration, func()) func() bool
}

// splitmix64 gives the workload per-decision determinism without sharing an
// ordered RNG stream between the two clock implementations.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// runOrderWorkload drives a cascading, cancel-heavy workload on c and
// returns the observed firing log. Every decision (child count, delays,
// cancellations) is a pure function of the firing timer's id, so two clocks
// that fire in the same order perform the identical workload.
func runOrderWorkload(seed uint64, c schedClock, advance func(time.Duration)) []string {
	var (
		mu    sync.Mutex
		log   []string
		stops = map[uint64]func() bool{}
		next  uint64
	)
	var schedule func(parent uint64, d time.Duration)
	schedule = func(parent uint64, d time.Duration) {
		mu.Lock()
		id := next
		next++
		mu.Unlock()
		h := splitmix64(seed ^ splitmix64(id))
		stop := c.AfterFunc(d, func() {
			mu.Lock()
			log = append(log, fmt.Sprintf("%d@%d", id, c.Now()))
			mu.Unlock()
			if id < 4000 {
				for k := uint64(0); k < h%3; k++ {
					hk := splitmix64(h ^ k)
					schedule(id, time.Duration(hk%5000)*time.Microsecond)
				}
				// Zero-delay cascade at the current instant, sometimes.
				if h%7 == 0 {
					schedule(id, 0)
				}
			}
			// Cancel an earlier timer's stop, by id — same target both runs.
			if h%5 == 0 && id >= 8 {
				mu.Lock()
				victim := stops[splitmix64(h)%id]
				mu.Unlock()
				if victim != nil {
					victim()
				}
			}
		})
		mu.Lock()
		stops[id] = stop
		mu.Unlock()
	}
	for i := 0; i < 300; i++ {
		h := splitmix64(seed + uint64(i)*0x9e37)
		schedule(0, time.Duration(h%20000)*time.Microsecond)
	}
	for i := 0; i < 64; i++ {
		h := splitmix64(seed ^ (uint64(i) << 32))
		advance(time.Duration(h%2500) * time.Microsecond)
	}
	advance(time.Hour) // drain the rest
	return log
}

// TestShardedMatchesSingleHeapOrder is the tentpole property test: the
// sharded clock must fire a cascading cancel-heavy workload in the exact
// global (deadline, seq) order of the single-heap reference.
func TestShardedMatchesSingleHeapOrder(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		ref := &refClock{}
		refLog := runOrderWorkload(seed, ref, ref.Advance)
		v := NewVirtual()
		gotLog := runOrderWorkload(seed, v, v.Advance)
		if len(refLog) != len(gotLog) {
			t.Fatalf("seed %d: fired %d timers, reference fired %d", seed, len(gotLog), len(refLog))
		}
		for i := range refLog {
			if refLog[i] != gotLog[i] {
				t.Fatalf("seed %d: firing %d diverges: sharded %q, reference %q", seed, i, gotLog[i], refLog[i])
			}
		}
		if len(refLog) < 300 {
			t.Fatalf("seed %d: workload degenerate, only %d firings", seed, len(refLog))
		}
	}
}

// TestPendingBoundedUnderCancelChurn is the heap-bloat regression test: a
// Wake-style cancel/reschedule storm must not accumulate dead heap slots.
// Before lazy compaction, 100k cancelled one-shots left Pending ~= 100k.
func TestPendingBoundedUnderCancelChurn(t *testing.T) {
	v := NewVirtual()
	const live = 100
	for i := 0; i < live; i++ {
		v.AfterFunc(time.Hour, func() {})
	}
	for i := 0; i < 100_000; i++ {
		stop := v.AfterFunc(time.Minute, func() { t.Error("cancelled timer fired") })
		if !stop() {
			t.Fatalf("iteration %d: stop reported already-stopped", i)
		}
	}
	// Per shard, compaction keeps dead <= len/2 once len >= compactMinLen,
	// so the whole queue is bounded by 2*live + shards*compactMinLen.
	bound := 2*live + timerShards*compactMinLen
	if got := v.Pending(); got > bound {
		t.Fatalf("Pending() = %d after cancel churn, want <= %d", got, bound)
	}
	v.Advance(2 * time.Hour)
	if got := v.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
}

// TestZeroDelayAtBarrierFiresSameAdvance pins the lost-wakeup audit: a
// callback firing at exactly the Advance barrier that schedules a zero-delay
// timer (deadline == barrier) must see it fire inside the same Advance.
func TestZeroDelayAtBarrierFiresSameAdvance(t *testing.T) {
	v := NewVirtual()
	depth := 0
	var cascade func()
	cascade = func() {
		depth++
		if depth < 5 {
			v.AfterFunc(0, cascade) // lands exactly on the barrier deadline
		}
	}
	v.AfterFunc(10*time.Millisecond, cascade)
	v.Advance(10 * time.Millisecond) // barrier == first deadline
	if depth != 5 {
		t.Fatalf("zero-delay chain at barrier: fired %d of 5 inside one Advance", depth)
	}
	if v.Pending() != 0 {
		t.Fatalf("Pending() = %d, timers stranded past the barrier", v.Pending())
	}
	if v.Now() != 10*time.Millisecond {
		t.Fatalf("Now() = %v, want 10ms", v.Now())
	}
}

// TestRunUntilZeroDelayAtTarget is the RunUntil half of the lost-wakeup pin.
func TestRunUntilZeroDelayAtTarget(t *testing.T) {
	v := NewVirtual()
	fired := false
	v.AfterFunc(7*time.Millisecond, func() {
		v.AfterFunc(0, func() { fired = true })
	})
	v.RunUntil(7 * time.Millisecond)
	if !fired {
		t.Fatal("zero-delay timer scheduled at the RunUntil target did not fire in the same call")
	}
}

// TestStopAfterRecycleIsInert pins the generation guard: once a timer fires
// and its struct is recycled for a new timer, the old stop function must not
// cancel the new incarnation.
func TestStopAfterRecycleIsInert(t *testing.T) {
	v := NewVirtual()
	stop := v.AfterFunc(time.Millisecond, func() {})
	v.Advance(time.Millisecond) // fires; struct returns to its shard free list
	fired := 0
	// Round-robin placement revisits every shard within timerShards
	// schedules, so one of these reuses the fired timer's struct.
	for i := 0; i < 2*timerShards; i++ {
		v.AfterFunc(time.Millisecond, func() { fired++ })
	}
	if stop() {
		t.Fatal("stale stop function reported stopping a recycled timer")
	}
	v.Advance(time.Millisecond)
	if fired != 2*timerShards {
		t.Fatalf("fired %d of %d timers: a stale stop cancelled a recycled one", fired, 2*timerShards)
	}
}

// workerSimNode is one self-clocking node for the worker-pool determinism
// test: private rng state, private history, rounds aligned so many nodes
// share deadlines (forming parallel batches), occasional self-cancel and
// reschedule to exercise the stop path from inside batches.
type workerSimNode struct {
	id      int
	state   uint64
	history []time.Duration
	stop    func() bool
}

// runWorkerSim runs a heavily-colliding multi-round simulation and returns
// each node's private firing history plus the final clock reading.
func runWorkerSim(workers int) ([][]time.Duration, time.Duration) {
	v := NewVirtual()
	v.SetWorkers(workers)
	const n = 96
	nodes := make([]*workerSimNode, n)
	quantum := time.Millisecond
	var tick func(nd *workerSimNode)
	tick = func(nd *workerSimNode) {
		nd.history = append(nd.history, v.Now())
		if len(nd.history) >= 40 {
			return
		}
		nd.state = splitmix64(nd.state)
		// Quantized delays: 1..4ms, so dozens of nodes collide per deadline.
		d := time.Duration(1+nd.state%4) * quantum
		nd.stop = v.AfterFunc(d, func() { tick(nd) })
		if nd.state%9 == 0 {
			// Cancel and reschedule — only this node's own timer.
			nd.stop()
			nd.state = splitmix64(nd.state)
			nd.stop = v.AfterFunc(time.Duration(1+nd.state%4)*quantum, func() { tick(nd) })
		}
	}
	for i := range nodes {
		nd := &workerSimNode{id: i, state: splitmix64(uint64(i) + 0xabcdef)}
		nodes[i] = nd
		v.AfterFunc(time.Duration(1+nd.state%4)*quantum, func() { tick(nd) })
	}
	for v.Pending() > 0 {
		v.Advance(5 * quantum)
	}
	out := make([][]time.Duration, n)
	for i, nd := range nodes {
		out[i] = nd.history
	}
	return out, v.Now()
}

// TestWorkerPoolDeterminism checks the worker-pool ordering contract: with
// mutually independent same-deadline callbacks, a pooled run's trajectory is
// identical to the sequential clock's. Run with -race -count=5.
func TestWorkerPoolDeterminism(t *testing.T) {
	seqHist, seqNow := runWorkerSim(1)
	for _, workers := range []int{2, 4, 8} {
		gotHist, gotNow := runWorkerSim(workers)
		if gotNow != seqNow {
			t.Fatalf("workers=%d: final Now %v, sequential %v", workers, gotNow, seqNow)
		}
		for i := range seqHist {
			if len(gotHist[i]) != len(seqHist[i]) {
				t.Fatalf("workers=%d node %d: %d firings, sequential %d", workers, i, len(gotHist[i]), len(seqHist[i]))
			}
			for j := range seqHist[i] {
				if gotHist[i][j] != seqHist[i][j] {
					t.Fatalf("workers=%d node %d firing %d: at %v, sequential %v", workers, i, j, gotHist[i][j], seqHist[i][j])
				}
			}
		}
	}
}

// TestWorkerPoolPreservesScheduleOrder checks, black-box, that timers
// scheduled from inside a parallel batch are sequenced exactly as a
// sequential run would: batch callbacks each schedule one echo at a common
// later deadline, and the echoes (fired sequentially) must come out in the
// batch's own (deadline, seq) order.
func TestWorkerPoolPreservesScheduleOrder(t *testing.T) {
	const n = 64
	v := NewVirtual()
	v.SetWorkers(8)
	var mu sync.Mutex
	var order []int
	for i := 0; i < n; i++ {
		i := i
		v.AfterFunc(time.Millisecond, func() { // one 64-wide batch
			v.AfterFunc(time.Millisecond, func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		})
	}
	v.Advance(time.Millisecond) // fire the batch on the pool
	v.SetWorkers(1)             // echoes fire strictly sequentially
	v.Advance(time.Millisecond)
	if len(order) != n {
		t.Fatalf("fired %d echoes, want %d", len(order), n)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("echo %d has id %d: deferred flush broke seq order (%v...)", i, id, order[:i+1])
		}
	}
}
