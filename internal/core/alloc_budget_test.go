package core

import (
	"encoding/json"
	"os"
	"testing"
)

// Allocation-budget regression guard for the fan-out hot path, the
// companion of internal/soap's decode budget: the per-hop cost the paper's
// scalability argument rests on must not silently regress. The budget is
// committed in testdata/alloc_budget.json; CI runs this test (and the
// -benchmem bench smoke) on every push.

func TestForwardFanoutAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	raw, err := os.ReadFile("testdata/alloc_budget.json")
	if err != nil {
		t.Fatalf("read alloc budget: %v", err)
	}
	var budget struct {
		MaxAllocs float64 `json:"forward_fanout_f8_max_allocs"`
	}
	if err := json.Unmarshal(raw, &budget); err != nil {
		t.Fatalf("parse alloc budget: %v", err)
	}
	if budget.MaxAllocs <= 0 {
		t.Fatal("alloc budget missing forward_fanout_f8_max_allocs")
	}
	fb := newForwardBench(t, 8, 1<<10)
	allocs := testing.AllocsPerRun(100, func() {
		fb.d.forward(fb.ctx, fb.env, fb.gh, fb.state)
	})
	if stats := fb.d.Stats(); stats.Forwarded == 0 || stats.SendErrors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if allocs > budget.MaxAllocs {
		t.Errorf("forward fanout-8 = %.1f allocs/op, budget %.0f (testdata/alloc_budget.json)",
			allocs, budget.MaxAllocs)
	}
	t.Logf("forward fanout-8: %.1f allocs/op (budget %.0f)", allocs, budget.MaxAllocs)
}
