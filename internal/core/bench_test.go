package core

import (
	"context"
	"encoding/xml"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
)

// BenchmarkForwardFanout measures the full fan-out hot path: one received
// notification re-routed to fanout peers over the in-memory binding,
// including per-target serialization and the receivers' decode. This is the
// per-hop cost the paper's scalability argument rests on; BENCH_02.json
// records it before and after the encode-once wire path.

type forwardBench struct {
	d       *Disseminator
	env     *soap.Envelope
	gh      GossipHeader
	state   *interactionState
	ctx     context.Context
	targets []string
}

type benchNote struct {
	XMLName xml.Name `xml:"urn:bench Note"`
	Data    string   `xml:"Data"`
}

func newForwardBench(b testing.TB, fanout, payload int) *forwardBench {
	b.Helper()
	bus := soap.NewMemBus()
	noop := soap.HandlerFunc(func(context.Context, *soap.Request) (*soap.Envelope, error) {
		return nil, nil
	})
	targets := make([]string, 16)
	for i := range targets {
		targets[i] = "mem://peer" + strconv.Itoa(i)
		bus.Register(targets[i], noop)
	}
	d, err := NewDisseminator(DisseminatorConfig{
		Address: "mem://self",
		Caller:  bus,
		RNG:     rand.New(rand.NewSource(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	gh := GossipHeader{InteractionID: "urn:bench:interaction", MessageID: "urn:uuid:bench", Hops: 4}
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To:        "mem://self",
		Action:    ActionNotify,
		MessageID: wsa.MessageID(gh.MessageID),
	}); err != nil {
		b.Fatal(err)
	}
	if err := SetGossipHeader(env, gh); err != nil {
		b.Fatal(err)
	}
	if err := env.SetBody(benchNote{Data: strings.Repeat("x", payload)}); err != nil {
		b.Fatal(err)
	}
	state := &interactionState{
		protocol: ProtocolPushGossip,
		params:   GossipParameters{Fanout: fanout, Hops: 4, Targets: targets},
	}
	return &forwardBench{
		d: d, env: env, gh: gh, state: state,
		ctx: context.Background(), targets: targets,
	}
}

// BenchmarkForwardFanout exercises Disseminator.forward at several fanouts
// with a 1 KiB payload.
func BenchmarkForwardFanout(b *testing.B) {
	for _, fanout := range []int{2, 4, 8} {
		b.Run("f"+strconv.Itoa(fanout), func(b *testing.B) {
			fb := newForwardBench(b, fanout, 1<<10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fb.d.forward(fb.ctx, fb.env, fb.gh, fb.state)
			}
			stats := fb.d.Stats()
			if stats.Forwarded == 0 || stats.SendErrors != 0 {
				b.Fatalf("stats = %+v", stats)
			}
		})
	}
}

// BenchmarkRetransmit measures the stored-notification retransmission path
// shared by anti-entropy repair and WS-PullGossip (batch of 16 envelopes).
func BenchmarkRetransmit(b *testing.B) {
	fb := newForwardBench(b, 4, 1<<10)
	for i := 0; i < 16; i++ {
		env := soap.NewEnvelope()
		gh := GossipHeader{
			InteractionID: "urn:bench:interaction",
			MessageID:     "urn:uuid:stored" + strconv.Itoa(i),
			Hops:          4,
		}
		if err := SetGossipHeader(env, gh); err != nil {
			b.Fatal(err)
		}
		if err := env.SetBody(benchNote{Data: strings.Repeat("y", 1<<10)}); err != nil {
			b.Fatal(err)
		}
		fb.d.store.Put(gh.MessageID, env)
	}
	have := map[string]struct{}{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := fb.d.retransmitMissing(fb.ctx, fb.targets[0], have, 16); n != 16 {
			b.Fatalf("retransmitted %d", n)
		}
	}
}
