package core

import (
	"context"
	"sync"

	"wsgossip/internal/soap"
)

// Consumer is the paper's Consumer role: "completely unchanged and
// unaffected by the introduction of gossip". It is nothing but the
// application service routed by action — no gossip code runs here, and the
// WS-Gossip and WS-Coordination header blocks pass through unexamined
// (verified by experiment E7's consumer-unchanged test).
type Consumer struct {
	app soap.Handler
}

// NewConsumer wraps the application service.
func NewConsumer(app soap.Handler) *Consumer {
	return &Consumer{app: app}
}

// Handler returns the consumer's SOAP handler.
func (c *Consumer) Handler() soap.Handler {
	d := soap.NewDispatcher()
	d.Register(ActionNotify, c.app)
	return d
}

// CollectingApp is a test/example application service that records every
// notification body it receives. It stands in for App1..App3 of Figure 1.
type CollectingApp struct {
	mu       sync.Mutex
	received []string
}

var _ soap.Handler = (*CollectingApp)(nil)

// NewCollectingApp returns an empty collector.
func NewCollectingApp() *CollectingApp {
	return &CollectingApp{}
}

// HandleSOAP records the notification body's first block, raw.
func (a *CollectingApp) HandleSOAP(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(req.Envelope.Body.Blocks) > 0 {
		a.received = append(a.received, string(req.Envelope.Body.Blocks[0].Raw))
	} else {
		a.received = append(a.received, "")
	}
	return nil, nil
}

// Received returns a copy of the recorded bodies.
func (a *CollectingApp) Received() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.received))
	copy(out, a.received)
	return out
}

// Count returns the number of recorded notifications.
func (a *CollectingApp) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.received)
}
