package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"wsgossip/internal/gossip"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
	"wsgossip/internal/wscoord"
)

// Subscription is one subscriber known to the Coordinator.
type Subscription struct {
	// Endpoint is the subscriber's notification address.
	Endpoint string
	// Role is RoleDisseminator or RoleConsumer.
	Role string
	// Protocols lists the coordination protocol URIs the subscriber's
	// stack serves. Empty means every protocol (legacy subscribers).
	// Target assignment for a protocol only draws from subscribers that
	// serve it.
	Protocols []string
}

// serves reports whether the subscription is an eligible target for the
// given protocol URI.
func (s Subscription) serves(protocol string) bool {
	if len(s.Protocols) == 0 {
		return true
	}
	for _, p := range s.Protocols {
		if p == protocol {
			return true
		}
	}
	return false
}

// ParamPolicy maps the current subscriber count to gossip parameters. The
// paper's Coordinator "is thus capable of providing adequate parameter
// configurations" — this is that policy, pluggable per deployment.
type ParamPolicy func(subscribers int) (fanout, hops int)

// DefaultParamPolicy returns fanout 3 and hops ceil(log2 n)+2, the standard
// epidemic sizing for near-certain full coverage (Eugster et al. 2004).
func DefaultParamPolicy(subscribers int) (int, int) {
	if subscribers < 2 {
		return 1, 1
	}
	hops := int(math.Ceil(math.Log2(float64(subscribers)))) + 2
	return 3, hops
}

// CoordinatorStats counts coordinator activity for the load experiments.
type CoordinatorStats struct {
	Subscribes    int64
	Registrations int64
	Activations   int64
	Replications  int64
}

// coordCounters is the registry-backed form of CoordinatorStats plus the
// operational series (prunes, live activities) Stats never carried. Stats()
// reads these same counters, so the struct and the scraped metrics agree.
type coordCounters struct {
	subscribes     *metrics.Counter
	registrations  *metrics.Counter
	activations    *metrics.Counter
	replications   *metrics.Counter
	prunes         *metrics.Counter
	liveActivities *metrics.Gauge
}

func newCoordCounters(reg *metrics.Registry) coordCounters {
	return coordCounters{
		subscribes:     reg.Counter("coord_subscribes_total"),
		registrations:  reg.Counter("coord_registrations_total"),
		activations:    reg.Counter("coord_activations_total"),
		replications:   reg.Counter("coord_replications_total"),
		prunes:         reg.Counter("coord_prunes_total"),
		liveActivities: reg.Gauge("coord_live_activities"),
	}
}

// TargetStrategy selects how the Coordinator assigns gossip targets to
// registrants.
type TargetStrategy int

// Target assignment strategies.
const (
	// TargetBalanced (the default) hands out targets round-robin over the
	// subscription list so every subscriber's in-degree is near-uniform.
	// The Coordinator "knows the entire list of subscribers" (paper,
	// Section 3), and exploiting that removes the low-in-degree tail that
	// random assignment leaves behind.
	TargetBalanced TargetStrategy = iota
	// TargetRandom samples targets uniformly per registration (the classic
	// decentralized behaviour; kept for the assignment ablation).
	TargetRandom
)

// CoordinatorConfig configures a WS-Gossip Coordinator.
type CoordinatorConfig struct {
	// Address is the coordinator's endpoint address.
	Address string
	// Params decides (f, r) per registration; nil uses DefaultParamPolicy.
	Params ParamPolicy
	// TargetsPerRegistrant is how many peers a registration response
	// carries; 0 means twice the fanout, so each forwarding decision
	// samples fresh peers per message ("peers for each gossip round",
	// paper Section 3) instead of re-hitting a fixed neighbour set.
	TargetsPerRegistrant int
	// RNG drives target sampling; nil falls back to a fixed seed.
	RNG *rand.Rand
	// Strategy selects target assignment (default TargetBalanced).
	Strategy TargetStrategy
	// Style selects the dissemination style WS-PushGossip participants are
	// configured with (default push; lazy push trades payload traffic for
	// an extra announce/fetch round-trip).
	Style gossip.Style
	// Registry is the protocol registry registrations are validated
	// against; nil installs the built-in family (push, pull, aggregate).
	Registry *ProtocolRegistry
	// AggEpsilon is the aggregation convergence threshold handed to
	// ProtocolAggregate registrants (0 = DefaultAggEpsilon).
	AggEpsilon float64
	// AggMaxRounds caps aggregation exchange rounds (0 = sized from the
	// analytic push-sum model for the current subscriber count).
	AggMaxRounds int
	// Caller and Replicas configure a distributed coordinator: every
	// accepted subscription is replicated one-way to each replica address.
	Caller   soap.Caller
	Replicas []string
	// ReplicateActivities marks this coordinator as part of an
	// activity-replicating ensemble: it replicates every created activity
	// to its Replicas one-way, and it accepts activity imports from peers
	// (a coordinator without the flag answers ActionReplicateActivity with
	// a fault, so strangers cannot grow its activity table). Set it on
	// every member of the ensemble. That is what makes a replica a
	// failover successor: registrants that lose the primary
	// mid-interaction can re-register the same coordination context
	// against a replica (see DisseminatorConfig.Coordinators). Off by
	// default — the classic replication carries subscriptions only.
	ReplicateActivities bool
	// Now supplies the coordinator's time source (activity stamps, expiry);
	// nil uses the wall clock. Virtual-time deployments inject the shared
	// clock here.
	Now func() time.Time
	// ActivityTTL stamps a default expiry on activities created without an
	// explicit one, so a pruning loop (Tick) can shed abandoned
	// interactions. 0 keeps them eternal (the classic behaviour).
	ActivityTTL time.Duration
	// Metrics is the registry the coordinator resolves its counters from
	// (coord_subscribes_total, coord_registrations_total,
	// coord_activations_total, coord_replications_total, coord_prunes_total,
	// coord_live_activities); Stats() reads the same series. Nil uses a
	// private registry.
	Metrics *metrics.Registry
}

// assignState is the balanced-assignment rotation for one protocol: a
// shuffled permutation of that protocol's eligible subscribers plus a
// cursor. Keeping the state per protocol lets each protocol's in-degree
// stay near-uniform over its own eligible population.
type assignState struct {
	order  []string
	cursor int
}

// Coordinator is the WS-Gossip Coordinator role: WS-Coordination Activation
// and Registration services plus the subscription list.
type Coordinator struct {
	cfg      CoordinatorConfig
	wc       *wscoord.Coordinator
	registry *ProtocolRegistry

	mu     sync.Mutex
	rng    *rand.Rand
	subs   []Subscription
	index  map[string]int          // endpoint -> position in subs
	assign map[string]*assignState // protocol URI -> balanced rotation
	stats  coordCounters
}

// NewCoordinator returns a coordinator serving at cfg.Address.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Params == nil {
		cfg.Params = DefaultParamPolicy
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	registry := cfg.Registry
	if registry == nil {
		registry = defaultRegistry()
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Coordinator{
		cfg:      cfg,
		registry: registry,
		rng:      rng,
		index:    make(map[string]int),
		assign:   make(map[string]*assignState),
		stats:    newCoordCounters(reg),
	}
	c.wc = wscoord.NewCoordinator(wscoord.Config{
		Address:              cfg.Address,
		SupportedTypes:       []string{CoordinationTypeGossip},
		Extension:            c.registrationExtension,
		Now:                  cfg.Now,
		DefaultExpiresMillis: uint64(cfg.ActivityTTL / time.Millisecond),
		OnCreate: func(act *wscoord.Activity) {
			c.stats.activations.Inc()
			c.stats.liveActivities.Set(int64(c.LiveActivities()))
			c.replicateActivity(act)
		},
	})
	return c
}

// replicateTimeout bounds how long a single activity-replication send may
// stall the creating request when a replica is unreachable: replication
// exists to survive coordinator failure, so a dead replica must not hold
// the live primary's activation path for the caller's full timeout.
const replicateTimeout = 2 * time.Second

// replicateActivity best-effort copies a created activity to the replica
// coordinators so any of them can serve registrations for it if this
// coordinator fails (ReplicateActivities mode). Sends are one-way,
// individually deadline-bounded, and deliberately sequential on the
// creating request path: asynchronous replication would make the delivery
// order race the virtual clock in deterministic deployments, and an
// activity must reach the successors before the registrants who will fail
// over to them. The worst-case stall is replicateTimeout per dead replica,
// so keep successor lists short (one or two is the intended shape).
func (c *Coordinator) replicateActivity(act *wscoord.Activity) {
	if !c.cfg.ReplicateActivities || c.cfg.Caller == nil || len(c.cfg.Replicas) == 0 {
		return
	}
	for _, replica := range c.cfg.Replicas {
		env := soap.NewEnvelope()
		if err := env.SetAddressing(addressingFor(replica, ActionReplicateActivity)); err != nil {
			continue
		}
		if err := env.SetBody(ReplicateActivity{Context: act.Context}); err != nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), replicateTimeout)
		_ = c.cfg.Caller.Send(ctx, replica, env)
		cancel()
	}
}

// Tick runs one coordinator housekeeping round (activity expiry pruning) —
// the loop shape core.Runner schedules, so a coordinator node's maintenance
// self-clocks exactly like the gossip rounds.
func (c *Coordinator) Tick(ctx context.Context) {
	_ = ctx
	now := time.Now()
	if c.cfg.Now != nil {
		now = c.cfg.Now()
	}
	c.PruneExpired(now)
}

// PruneExpired removes expired activities at the given instant and returns
// how many were removed.
func (c *Coordinator) PruneExpired(now time.Time) int {
	removed := c.wc.PruneExpired(now)
	if removed > 0 {
		c.stats.prunes.Add(int64(removed))
	}
	c.stats.liveActivities.Set(int64(c.LiveActivities()))
	return removed
}

// LiveActivities returns the number of live (unpruned) coordination
// activities.
func (c *Coordinator) LiveActivities() int { return len(c.wc.ActivityIDs()) }

// Address returns the coordinator endpoint address.
func (c *Coordinator) Address() string { return c.cfg.Address }

// Handler returns the coordinator's SOAP handler: Activation, Registration,
// Subscribe, and replica ingestion.
func (c *Coordinator) Handler() soap.Handler {
	d := soap.NewDispatcher()
	c.wc.RegisterActions(d)
	d.Register(ActionSubscribe, soap.HandlerFunc(c.handleSubscribe))
	d.Register(ActionReplicate, soap.HandlerFunc(c.handleReplicate))
	d.Register(ActionReplicateActivity, soap.HandlerFunc(c.handleReplicateActivity))
	return d
}

// Stats returns a copy of the activity counters — a view over the same
// registry series an operator scrapes.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		Subscribes:    c.stats.subscribes.Value(),
		Registrations: c.stats.registrations.Value(),
		Activations:   c.stats.activations.Value(),
		Replications:  c.stats.replications.Value(),
	}
}

// Subscribers returns a snapshot of the subscription list.
func (c *Coordinator) Subscribers() []Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Subscription, len(c.subs))
	copy(out, c.subs)
	return out
}

// SupportedProtocols returns the protocol URIs registrations are accepted
// for, sorted.
func (c *Coordinator) SupportedProtocols() []string { return c.registry.URIs() }

// SubscribeLocal records a subscription without a SOAP round-trip (used by
// colocated deployments and tests; the SOAP path ends up here too).
// protocols lists the coordination protocols the subscriber serves; none
// means all.
func (c *Coordinator) SubscribeLocal(ctx context.Context, endpoint, role string, protocols ...string) error {
	if err := c.addSubscription(endpoint, role, protocols, true); err != nil {
		return err
	}
	c.replicate(ctx, endpoint, role, protocols)
	return nil
}

func (c *Coordinator) addSubscription(endpoint, role string, protocols []string, countIt bool) error {
	if endpoint == "" {
		return fmt.Errorf("core: subscribe with empty endpoint")
	}
	if role != RoleDisseminator && role != RoleConsumer {
		return fmt.Errorf("core: subscribe with unknown role %q", role)
	}
	for _, p := range protocols {
		if _, ok := c.registry.Lookup(p); !ok {
			return fmt.Errorf("core: subscribe advertising unsupported protocol %q", p)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.index[endpoint]; ok {
		c.subs[i].Role = role
		c.subs[i].Protocols = append([]string(nil), protocols...)
		c.assign = make(map[string]*assignState)
		return nil
	}
	c.index[endpoint] = len(c.subs)
	c.subs = append(c.subs, Subscription{
		Endpoint:  endpoint,
		Role:      role,
		Protocols: append([]string(nil), protocols...),
	})
	if countIt {
		c.stats.subscribes.Inc()
	}
	return nil
}

// Unsubscribe removes an endpoint from the subscription list.
func (c *Coordinator) Unsubscribe(endpoint string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[endpoint]
	if !ok {
		return
	}
	last := len(c.subs) - 1
	c.subs[i] = c.subs[last]
	c.index[c.subs[i].Endpoint] = i
	c.subs = c.subs[:last]
	delete(c.index, endpoint)
	c.assign = make(map[string]*assignState)
}

func (c *Coordinator) replicate(ctx context.Context, endpoint, role string, protocols []string) {
	if c.cfg.Caller == nil || len(c.cfg.Replicas) == 0 {
		return
	}
	for _, replica := range c.cfg.Replicas {
		env := soap.NewEnvelope()
		if err := env.SetAddressing(addressingFor(replica, ActionReplicate)); err != nil {
			continue
		}
		if err := env.SetBody(ReplicateSubscription{Endpoint: endpoint, Role: role, Protocols: protocols}); err != nil {
			continue
		}
		// Replication is best-effort one-way; anti-entropy between
		// coordinators would repair gaps in a long-lived deployment.
		_ = c.cfg.Caller.Send(ctx, replica, env)
	}
}

func (c *Coordinator) handleSubscribe(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	var body SubscribeRequest
	if err := req.Envelope.DecodeBody(&body); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed Subscribe: "+err.Error())
	}
	if err := c.addSubscription(body.Endpoint, body.Role, body.Protocols, true); err != nil {
		return nil, soap.NewFault(soap.CodeSender, err.Error())
	}
	c.replicate(ctx, body.Endpoint, body.Role, body.Protocols)
	resp := soap.NewEnvelope()
	if err := resp.SetAddressing(req.Addressing().Reply(ActionSubscribeResponse)); err != nil {
		return nil, err
	}
	if err := resp.SetBody(SubscribeResponse{Accepted: true}); err != nil {
		return nil, err
	}
	return resp, nil
}

// handleReplicateActivity imports an activity created at a peer coordinator
// so this replica can serve registrations for it after a failover. Only a
// coordinator opted into the replicating ensemble accepts imports —
// otherwise any sender could grow the activity table without bound.
func (c *Coordinator) handleReplicateActivity(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	if !c.cfg.ReplicateActivities {
		return nil, soap.NewFault(soap.CodeSender, "coordinator does not accept replicated activities")
	}
	var body ReplicateActivity
	if err := req.Envelope.DecodeBody(&body); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed ReplicateActivity: "+err.Error())
	}
	if err := body.Context.Validate(); err != nil {
		return nil, soap.NewFault(soap.CodeSender, err.Error())
	}
	c.wc.ImportActivity(body.Context)
	c.stats.replications.Inc()
	c.stats.liveActivities.Set(int64(c.LiveActivities()))
	return nil, nil
}

func (c *Coordinator) handleReplicate(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var body ReplicateSubscription
	if err := req.Envelope.DecodeBody(&body); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed ReplicateSubscription: "+err.Error())
	}
	if err := c.addSubscription(body.Endpoint, body.Role, body.Protocols, false); err != nil {
		return nil, soap.NewFault(soap.CodeSender, err.Error())
	}
	c.stats.replications.Inc()
	return nil, nil
}

// CreateActivity starts a gossip coordination activity (Activation service,
// in-process form).
func (c *Coordinator) CreateActivity() (wscoord.CoordinationContext, error) {
	act, err := c.wc.CreateActivity(CoordinationTypeGossip, 0)
	if err != nil {
		return wscoord.CoordinationContext{}, err
	}
	return act.Context, nil
}

// registrationExtension validates the registration against the protocol
// registry and delegates to the matching protocol's extension. Unknown
// protocol URIs are answered with a Sender fault — the registry's negative
// path.
func (c *Coordinator) registrationExtension(_ *wscoord.Activity, reg wscoord.Registrant) ([]any, error) {
	ext, ok := c.registry.Lookup(reg.Protocol)
	if !ok {
		return nil, unsupportedProtocolFault(reg.Protocol)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.registrations.Inc()
	return ext(c, reg)
}

// assignLocked computes (fanout, hops) from the parameter policy and hands
// out the registrant's targets among the subscribers eligible for protocol.
func (c *Coordinator) assignLocked(protocol, registrant string) (fanout, hops int, targets []string) {
	eligible := c.eligibleLocked(protocol)
	fanout, hops = c.cfg.Params(len(eligible))
	want := c.cfg.TargetsPerRegistrant
	if want <= 0 {
		want = 2 * fanout
	}
	if c.cfg.Strategy == TargetRandom {
		targets = gossip.SamplePeers(c.rng, eligible, want, registrant)
	} else {
		targets = c.balancedTargetsLocked(protocol, eligible, want, registrant)
	}
	return fanout, hops, targets
}

// eligibleLocked lists the endpoints of subscribers serving protocol,
// sorted (deterministic base for both strategies).
func (c *Coordinator) eligibleLocked(protocol string) []string {
	out := make([]string, 0, len(c.subs))
	for _, s := range c.subs {
		if s.serves(protocol) {
			out = append(out, s.Endpoint)
		}
	}
	sort.Strings(out)
	return out
}

// balancedTargetsLocked hands out want targets by rotating a cursor over a
// shuffled permutation of the protocol's eligible subscribers, skipping the
// registrant. Across registrations every eligible subscriber is assigned as
// a target equally often (±1) — removing the low-in-degree tail that
// per-registration random sampling produces — while consecutive chunks of a
// random permutation keep the dissemination graph expander-like (contiguous
// chunks of the *sorted* list would form a ring whose diameter exhausts the
// hop budget).
func (c *Coordinator) balancedTargetsLocked(protocol string, eligible []string, want int, exclude string) []string {
	st := c.assign[protocol]
	if st == nil || len(st.order) != len(eligible) {
		st = &assignState{order: append([]string(nil), eligible...)}
		c.rng.Shuffle(len(st.order), func(i, j int) {
			st.order[i], st.order[j] = st.order[j], st.order[i]
		})
		c.assign[protocol] = st
	}
	avail := len(st.order)
	for _, a := range st.order {
		if a == exclude {
			avail--
			break
		}
	}
	if want > avail {
		want = avail
	}
	if want <= 0 || len(st.order) == 0 {
		return nil
	}
	out := make([]string, 0, want)
	scanned := 0
	i := st.cursor
	for len(out) < want && scanned < len(st.order)+want {
		a := st.order[i%len(st.order)]
		i++
		scanned++
		if a == exclude {
			continue
		}
		out = append(out, a)
	}
	st.cursor = i % len(st.order)
	return out
}
