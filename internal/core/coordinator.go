package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"wsgossip/internal/gossip"
	"wsgossip/internal/soap"
	"wsgossip/internal/wscoord"
)

// Subscription is one subscriber known to the Coordinator.
type Subscription struct {
	// Endpoint is the subscriber's notification address.
	Endpoint string
	// Role is RoleDisseminator or RoleConsumer.
	Role string
}

// ParamPolicy maps the current subscriber count to gossip parameters. The
// paper's Coordinator "is thus capable of providing adequate parameter
// configurations" — this is that policy, pluggable per deployment.
type ParamPolicy func(subscribers int) (fanout, hops int)

// DefaultParamPolicy returns fanout 3 and hops ceil(log2 n)+2, the standard
// epidemic sizing for near-certain full coverage (Eugster et al. 2004).
func DefaultParamPolicy(subscribers int) (int, int) {
	if subscribers < 2 {
		return 1, 1
	}
	hops := int(math.Ceil(math.Log2(float64(subscribers)))) + 2
	return 3, hops
}

// CoordinatorStats counts coordinator activity for the load experiments.
type CoordinatorStats struct {
	Subscribes    int64
	Registrations int64
	Activations   int64
	Replications  int64
}

// TargetStrategy selects how the Coordinator assigns gossip targets to
// registrants.
type TargetStrategy int

// Target assignment strategies.
const (
	// TargetBalanced (the default) hands out targets round-robin over the
	// subscription list so every subscriber's in-degree is near-uniform.
	// The Coordinator "knows the entire list of subscribers" (paper,
	// Section 3), and exploiting that removes the low-in-degree tail that
	// random assignment leaves behind.
	TargetBalanced TargetStrategy = iota
	// TargetRandom samples targets uniformly per registration (the classic
	// decentralized behaviour; kept for the assignment ablation).
	TargetRandom
)

// CoordinatorConfig configures a WS-Gossip Coordinator.
type CoordinatorConfig struct {
	// Address is the coordinator's endpoint address.
	Address string
	// Params decides (f, r) per registration; nil uses DefaultParamPolicy.
	Params ParamPolicy
	// TargetsPerRegistrant is how many peers a registration response
	// carries; 0 means twice the fanout, so each forwarding decision
	// samples fresh peers per message ("peers for each gossip round",
	// paper Section 3) instead of re-hitting a fixed neighbour set.
	TargetsPerRegistrant int
	// RNG drives target sampling; nil falls back to a fixed seed.
	RNG *rand.Rand
	// Strategy selects target assignment (default TargetBalanced).
	Strategy TargetStrategy
	// Style selects the dissemination style participants are configured
	// with (default push; lazy push trades payload traffic for an extra
	// announce/fetch round-trip).
	Style gossip.Style
	// Caller and Replicas configure a distributed coordinator: every
	// accepted subscription is replicated one-way to each replica address.
	Caller   soap.Caller
	Replicas []string
}

// Coordinator is the WS-Gossip Coordinator role: WS-Coordination Activation
// and Registration services plus the subscription list.
type Coordinator struct {
	cfg CoordinatorConfig
	wc  *wscoord.Coordinator

	mu     sync.Mutex
	rng    *rand.Rand
	subs   []Subscription
	index  map[string]int // endpoint -> position in subs
	order  []string       // shuffled assignment order (balanced strategy)
	cursor int            // balanced-assignment rotation position
	stats  CoordinatorStats
}

// NewCoordinator returns a coordinator serving at cfg.Address.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Params == nil {
		cfg.Params = DefaultParamPolicy
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	c := &Coordinator{
		cfg:   cfg,
		rng:   rng,
		index: make(map[string]int),
	}
	c.wc = wscoord.NewCoordinator(wscoord.Config{
		Address:        cfg.Address,
		SupportedTypes: []string{CoordinationTypeGossip},
		Extension:      c.registrationExtension,
		OnCreate: func(*wscoord.Activity) {
			c.mu.Lock()
			c.stats.Activations++
			c.mu.Unlock()
		},
	})
	return c
}

// Address returns the coordinator endpoint address.
func (c *Coordinator) Address() string { return c.cfg.Address }

// Handler returns the coordinator's SOAP handler: Activation, Registration,
// Subscribe, and replica ingestion.
func (c *Coordinator) Handler() soap.Handler {
	d := soap.NewDispatcher()
	c.wc.RegisterActions(d)
	d.Register(ActionSubscribe, soap.HandlerFunc(c.handleSubscribe))
	d.Register(ActionReplicate, soap.HandlerFunc(c.handleReplicate))
	return d
}

// Stats returns a copy of the activity counters.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Subscribers returns a snapshot of the subscription list.
func (c *Coordinator) Subscribers() []Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Subscription, len(c.subs))
	copy(out, c.subs)
	return out
}

// SubscribeLocal records a subscription without a SOAP round-trip (used by
// colocated deployments and tests; the SOAP path ends up here too).
func (c *Coordinator) SubscribeLocal(ctx context.Context, endpoint, role string) error {
	if err := c.addSubscription(endpoint, role, true); err != nil {
		return err
	}
	c.replicate(ctx, endpoint, role)
	return nil
}

func (c *Coordinator) addSubscription(endpoint, role string, countIt bool) error {
	if endpoint == "" {
		return fmt.Errorf("core: subscribe with empty endpoint")
	}
	if role != RoleDisseminator && role != RoleConsumer {
		return fmt.Errorf("core: subscribe with unknown role %q", role)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.index[endpoint]; ok {
		c.subs[i].Role = role
		return nil
	}
	c.index[endpoint] = len(c.subs)
	c.subs = append(c.subs, Subscription{Endpoint: endpoint, Role: role})
	if countIt {
		c.stats.Subscribes++
	}
	return nil
}

// Unsubscribe removes an endpoint from the subscription list.
func (c *Coordinator) Unsubscribe(endpoint string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[endpoint]
	if !ok {
		return
	}
	last := len(c.subs) - 1
	c.subs[i] = c.subs[last]
	c.index[c.subs[i].Endpoint] = i
	c.subs = c.subs[:last]
	delete(c.index, endpoint)
}

func (c *Coordinator) replicate(ctx context.Context, endpoint, role string) {
	if c.cfg.Caller == nil || len(c.cfg.Replicas) == 0 {
		return
	}
	for _, replica := range c.cfg.Replicas {
		env := soap.NewEnvelope()
		if err := env.SetAddressing(addressingFor(replica, ActionReplicate)); err != nil {
			continue
		}
		if err := env.SetBody(ReplicateSubscription{Endpoint: endpoint, Role: role}); err != nil {
			continue
		}
		// Replication is best-effort one-way; anti-entropy between
		// coordinators would repair gaps in a long-lived deployment.
		_ = c.cfg.Caller.Send(ctx, replica, env)
	}
}

func (c *Coordinator) handleSubscribe(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	var body SubscribeRequest
	if err := req.Envelope.DecodeBody(&body); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed Subscribe: "+err.Error())
	}
	if err := c.addSubscription(body.Endpoint, body.Role, true); err != nil {
		return nil, soap.NewFault(soap.CodeSender, err.Error())
	}
	c.replicate(ctx, body.Endpoint, body.Role)
	resp := soap.NewEnvelope()
	if err := resp.SetAddressing(req.Addressing.Reply(ActionSubscribeResponse)); err != nil {
		return nil, err
	}
	if err := resp.SetBody(SubscribeResponse{Accepted: true}); err != nil {
		return nil, err
	}
	return resp, nil
}

func (c *Coordinator) handleReplicate(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var body ReplicateSubscription
	if err := req.Envelope.DecodeBody(&body); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed ReplicateSubscription: "+err.Error())
	}
	if err := c.addSubscription(body.Endpoint, body.Role, false); err != nil {
		return nil, soap.NewFault(soap.CodeSender, err.Error())
	}
	c.mu.Lock()
	c.stats.Replications++
	c.mu.Unlock()
	return nil, nil
}

// CreateActivity starts a gossip coordination activity (Activation service,
// in-process form).
func (c *Coordinator) CreateActivity() (wscoord.CoordinationContext, error) {
	act, err := c.wc.CreateActivity(CoordinationTypeGossip, 0)
	if err != nil {
		return wscoord.CoordinationContext{}, err
	}
	return act.Context, nil
}

// registrationExtension builds the GossipParameters header for a
// registration: parameters from the policy, targets sampled uniformly from
// the subscription list excluding the registrant.
func (c *Coordinator) registrationExtension(_ *wscoord.Activity, reg wscoord.Registrant) ([]any, error) {
	if reg.Protocol != ProtocolPushGossip {
		return nil, soap.NewFault(soap.CodeSender,
			fmt.Sprintf("unsupported coordination protocol %q", reg.Protocol))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Registrations++
	fanout, hops := c.cfg.Params(len(c.subs))
	want := c.cfg.TargetsPerRegistrant
	if want <= 0 {
		want = 2 * fanout
	}
	var targets []string
	if c.cfg.Strategy == TargetRandom {
		addrs := make([]string, len(c.subs))
		for i, s := range c.subs {
			addrs[i] = s.Endpoint
		}
		sort.Strings(addrs)
		targets = gossip.SamplePeers(c.rng, addrs, want, reg.Service)
	} else {
		targets = c.balancedTargetsLocked(want, reg.Service)
	}
	style := c.cfg.Style
	if style == 0 {
		style = gossip.StylePush
	}
	return []any{GossipParameters{
		Fanout:  fanout,
		Hops:    hops,
		Style:   style.String(),
		Targets: targets,
	}}, nil
}

// balancedTargetsLocked hands out want targets by rotating a cursor over a
// shuffled permutation of the subscriber list, skipping the registrant.
// Across registrations every subscriber is assigned as a target equally
// often (±1) — removing the low-in-degree tail that per-registration random
// sampling produces — while consecutive chunks of a random permutation keep
// the dissemination graph expander-like (contiguous chunks of the *sorted*
// list would form a ring whose diameter exhausts the hop budget).
func (c *Coordinator) balancedTargetsLocked(want int, exclude string) []string {
	if len(c.order) != len(c.subs) {
		c.order = make([]string, len(c.subs))
		for i, s := range c.subs {
			c.order[i] = s.Endpoint
		}
		sort.Strings(c.order) // deterministic base before the shuffle
		c.rng.Shuffle(len(c.order), func(i, j int) {
			c.order[i], c.order[j] = c.order[j], c.order[i]
		})
		c.cursor = 0
	}
	eligible := len(c.order)
	if _, ok := c.index[exclude]; ok {
		eligible--
	}
	if want > eligible {
		want = eligible
	}
	if want <= 0 || len(c.order) == 0 {
		return nil
	}
	out := make([]string, 0, want)
	scanned := 0
	i := c.cursor
	for len(out) < want && scanned < len(c.order)+want {
		a := c.order[i%len(c.order)]
		i++
		scanned++
		if a == exclude {
			continue
		}
		out = append(out, a)
	}
	c.cursor = i % len(c.order)
	return out
}
