package core

import (
	"encoding/xml"
	"errors"

	"wsgossip/internal/soap"
	"wsgossip/internal/wscoord"
)

// Namespace is the WS-Gossip extension namespace.
const Namespace = "urn:wsgossip:2008"

// Coordination protocol identifiers. The paper frames WS-Gossip as a family
// of gossip-structured protocols; the Coordinator validates registrations
// against a registry of these URIs (see ProtocolRegistry).
const (
	// CoordinationTypeGossip is the WS-Gossip coordination type URI used
	// with WS-Coordination Activation.
	CoordinationTypeGossip = Namespace + ":gossip"
	// ProtocolPushGossip is the WS-PushGossip coordination protocol:
	// eager (or lazy) hop-bounded push dissemination.
	ProtocolPushGossip = Namespace + ":gossip:push"
	// ProtocolPullGossip is the WS-PullGossip coordination protocol: a
	// puller periodically requests digests/batches from coordinator-
	// assigned peers; notifications spread only through pull rounds.
	ProtocolPullGossip = Namespace + ":gossip:pull"
	// ProtocolAggregate is the WS-Gossip aggregation protocol: push-sum
	// value/weight exchanges converging on count/sum/avg/min/max over the
	// subscriber population (see internal/aggregate).
	ProtocolAggregate = Namespace + ":gossip:aggregate"
)

// WS-Gossip action URIs.
const (
	// ActionNotify is the disseminated application operation ("op" in
	// Figure 1).
	ActionNotify = Namespace + ":notify"
	// ActionIHave announces a notification's availability (lazy push).
	ActionIHave = Namespace + ":ihave"
	// ActionIWant requests an announced notification (lazy push).
	ActionIWant = Namespace + ":iwant"
	// ActionSubscribe registers interest with the Coordinator.
	ActionSubscribe = Namespace + ":subscribe"
	// ActionSubscribeResponse acknowledges a subscription.
	ActionSubscribeResponse = Namespace + ":subscribeResponse"
	// ActionReplicate propagates subscription records between the members
	// of a distributed Coordinator.
	ActionReplicate = Namespace + ":replicateSubscription"
	// ActionReplicateActivity propagates created coordination activities
	// between the members of a distributed Coordinator, enabling failover
	// registration at a successor (CoordinatorConfig.ReplicateActivities).
	ActionReplicateActivity = Namespace + ":replicateActivity"
	// ActionPullRequest asks a peer for stored notifications absent from
	// the requester's digest (WS-PullGossip).
	ActionPullRequest = Namespace + ":pullRequest"
)

// Subscriber roles.
const (
	// RoleDisseminator marks a subscriber running a compliant middleware
	// stack that forwards notifications.
	RoleDisseminator = "disseminator"
	// RoleConsumer marks an unchanged subscriber that only consumes.
	RoleConsumer = "consumer"
)

// ErrNoGossipHeader reports a notification without the WS-Gossip header.
var ErrNoGossipHeader = errors.New("core: no gossip header")

// GossipHeader is the SOAP header block that rides on every gossiped
// notification: it names the interaction (the coordination activity), the
// notification, and the remaining hop budget. Protocol names the
// coordination protocol the interaction runs (empty means WS-PushGossip,
// for wire compatibility with pre-registry senders), so a disseminator's
// first-contact registration asks for the right parameter set.
type GossipHeader struct {
	XMLName       xml.Name `xml:"urn:wsgossip:2008 Gossip"`
	InteractionID string   `xml:"InteractionID"`
	MessageID     string   `xml:"MessageID"`
	Hops          int      `xml:"Hops"`
	Protocol      string   `xml:"Protocol,omitempty"`
}

// SetGossipHeader writes gh into the envelope, replacing any existing gossip
// header.
func SetGossipHeader(env *soap.Envelope, gh GossipHeader) error {
	env.RemoveHeader(Namespace, "Gossip")
	return env.AddHeader(gh)
}

// GossipHeaderFrom extracts the gossip header, or ErrNoGossipHeader.
func GossipHeaderFrom(env *soap.Envelope) (GossipHeader, error) {
	var gh GossipHeader
	if err := env.DecodeHeader(Namespace, "Gossip", &gh); err != nil {
		if errors.Is(err, soap.ErrHeaderNotFound) {
			return gh, ErrNoGossipHeader
		}
		return gh, err
	}
	return gh, nil
}

// GossipParameters is the registration-response extension through which the
// Coordinator configures a participant: protocol parameters (the paper's f
// and r) plus the peer targets for its gossip rounds.
type GossipParameters struct {
	XMLName xml.Name `xml:"urn:wsgossip:2008 GossipParameters"`
	Fanout  int      `xml:"Fanout"`
	Hops    int      `xml:"Hops"`
	Style   string   `xml:"Style"`
	Targets []string `xml:"Targets>Target"`
}

// GossipParametersFrom extracts the parameter extension header.
func GossipParametersFrom(env *soap.Envelope) (GossipParameters, error) {
	var gp GossipParameters
	if err := env.DecodeHeader(Namespace, "GossipParameters", &gp); err != nil {
		return gp, err
	}
	return gp, nil
}

// AggregateParameters is the registration-response extension for the
// aggregation protocol: exchange fanout, a hop budget for disseminating the
// start message over the assigned overlay, the convergence criterion, and
// the peer targets for push-sum exchanges.
type AggregateParameters struct {
	XMLName   xml.Name `xml:"urn:wsgossip:2008 AggregateParameters"`
	Fanout    int      `xml:"Fanout"`
	Hops      int      `xml:"Hops"`
	Epsilon   float64  `xml:"Epsilon"`
	MaxRounds int      `xml:"MaxRounds"`
	Targets   []string `xml:"Targets>Target"`
}

// AggregateParametersFrom extracts the aggregation parameter extension.
func AggregateParametersFrom(env *soap.Envelope) (AggregateParameters, error) {
	var ap AggregateParameters
	if err := env.DecodeHeader(Namespace, "AggregateParameters", &ap); err != nil {
		return ap, err
	}
	return ap, nil
}

// SubscribeRequest is the Subscribe operation body. Protocols lists the
// coordination protocol URIs the subscriber's middleware stack serves; empty
// means every protocol (the pre-registry behaviour).
type SubscribeRequest struct {
	XMLName   xml.Name `xml:"urn:wsgossip:2008 Subscribe"`
	Endpoint  string   `xml:"Endpoint"`
	Role      string   `xml:"Role"`
	Protocols []string `xml:"Protocols>Protocol,omitempty"`
}

// SubscribeResponse acknowledges a Subscribe.
type SubscribeResponse struct {
	XMLName  xml.Name `xml:"urn:wsgossip:2008 SubscribeResponse"`
	Accepted bool     `xml:"Accepted"`
}

// ReplicateSubscription propagates one subscription record inside a
// distributed Coordinator.
type ReplicateSubscription struct {
	XMLName   xml.Name `xml:"urn:wsgossip:2008 ReplicateSubscription"`
	Endpoint  string   `xml:"Endpoint"`
	Role      string   `xml:"Role"`
	Protocols []string `xml:"Protocols>Protocol,omitempty"`
}

// ReplicateActivity propagates one created coordination activity inside a
// distributed Coordinator, so replicas can serve registrations for it after
// the creating coordinator fails.
type ReplicateActivity struct {
	XMLName xml.Name `xml:"urn:wsgossip:2008 ReplicateActivity"`
	// Context keeps its own XML name (the wscoor CoordinationContext
	// element), exactly as it appears in coordination headers.
	Context wscoord.CoordinationContext
}

// Announce is the lazy-push IHAVE body: it names a notification without its
// payload; unseen receivers fetch it with Fetch.
type Announce struct {
	XMLName       xml.Name `xml:"urn:wsgossip:2008 Announce"`
	InteractionID string   `xml:"InteractionID"`
	MessageID     string   `xml:"MessageID"`
	Hops          int      `xml:"Hops"`
	Holder        string   `xml:"Holder"`
}

// Fetch is the lazy-push IWANT body: a request for an announced
// notification.
type Fetch struct {
	XMLName   xml.Name `xml:"urn:wsgossip:2008 Fetch"`
	MessageID string   `xml:"MessageID"`
	Requester string   `xml:"Requester"`
}

// PullRequest is the WS-PullGossip digest request: the puller names the
// notifications it already holds; the responder retransmits up to Max
// stored notifications absent from that digest.
type PullRequest struct {
	XMLName    xml.Name `xml:"urn:wsgossip:2008 PullRequest"`
	Requester  string   `xml:"Requester"`
	MessageIDs []string `xml:"MessageIDs>MessageID"`
	Max        int      `xml:"Max"`
}
