// Package core implements the WS-Gossip framework itself: the four roles of
// the paper's Figure 1 (Initiator, Disseminator, Consumer, Coordinator), the
// gossip SOAP header that hop-bounds a disseminated notification, and the
// GossipParameters registration extension through which the Coordinator
// provides "adequate parameter configurations and peers for each gossip
// round" (Section 3).
//
// The division of labour follows the paper exactly:
//
//   - The Initiator's application code is changed: it activates a gossip
//     coordination context, registers, and issues a single notification.
//   - A Disseminator's application code is oblivious to gossip; a handler in
//     its middleware stack intercepts notifications, registers with the
//     Registration service on first contact with an interaction, delivers
//     the message locally, and re-routes copies to selected peers.
//   - A Consumer is completely unchanged: the gossip header passes through
//     its stack unexamined.
//   - The Coordinator hosts Activation/Registration plus the subscription
//     list.
package core

import (
	"encoding/xml"
	"errors"

	"wsgossip/internal/soap"
)

// Namespace is the WS-Gossip extension namespace.
const Namespace = "urn:wsgossip:2008"

// Coordination protocol identifiers.
const (
	// CoordinationTypeGossip is the WS-Gossip coordination type URI used
	// with WS-Coordination Activation.
	CoordinationTypeGossip = Namespace + ":gossip"
	// ProtocolPushGossip is the WS-PushGossip coordination protocol.
	ProtocolPushGossip = Namespace + ":gossip:push"
)

// WS-Gossip action URIs.
const (
	// ActionNotify is the disseminated application operation ("op" in
	// Figure 1).
	ActionNotify = Namespace + ":notify"
	// ActionIHave announces a notification's availability (lazy push).
	ActionIHave = Namespace + ":ihave"
	// ActionIWant requests an announced notification (lazy push).
	ActionIWant = Namespace + ":iwant"
	// ActionSubscribe registers interest with the Coordinator.
	ActionSubscribe = Namespace + ":subscribe"
	// ActionSubscribeResponse acknowledges a subscription.
	ActionSubscribeResponse = Namespace + ":subscribeResponse"
	// ActionReplicate propagates subscription records between the members
	// of a distributed Coordinator.
	ActionReplicate = Namespace + ":replicateSubscription"
)

// Subscriber roles.
const (
	// RoleDisseminator marks a subscriber running a compliant middleware
	// stack that forwards notifications.
	RoleDisseminator = "disseminator"
	// RoleConsumer marks an unchanged subscriber that only consumes.
	RoleConsumer = "consumer"
)

// ErrNoGossipHeader reports a notification without the WS-Gossip header.
var ErrNoGossipHeader = errors.New("core: no gossip header")

// GossipHeader is the SOAP header block that rides on every gossiped
// notification: it names the interaction (the coordination activity), the
// notification, and the remaining hop budget.
type GossipHeader struct {
	XMLName       xml.Name `xml:"urn:wsgossip:2008 Gossip"`
	InteractionID string   `xml:"InteractionID"`
	MessageID     string   `xml:"MessageID"`
	Hops          int      `xml:"Hops"`
}

// SetGossipHeader writes gh into the envelope, replacing any existing gossip
// header.
func SetGossipHeader(env *soap.Envelope, gh GossipHeader) error {
	env.RemoveHeader(Namespace, "Gossip")
	return env.AddHeader(gh)
}

// GossipHeaderFrom extracts the gossip header, or ErrNoGossipHeader.
func GossipHeaderFrom(env *soap.Envelope) (GossipHeader, error) {
	var gh GossipHeader
	if err := env.DecodeHeader(Namespace, "Gossip", &gh); err != nil {
		if errors.Is(err, soap.ErrHeaderNotFound) {
			return gh, ErrNoGossipHeader
		}
		return gh, err
	}
	return gh, nil
}

// GossipParameters is the registration-response extension through which the
// Coordinator configures a participant: protocol parameters (the paper's f
// and r) plus the peer targets for its gossip rounds.
type GossipParameters struct {
	XMLName xml.Name `xml:"urn:wsgossip:2008 GossipParameters"`
	Fanout  int      `xml:"Fanout"`
	Hops    int      `xml:"Hops"`
	Style   string   `xml:"Style"`
	Targets []string `xml:"Targets>Target"`
}

// GossipParametersFrom extracts the parameter extension header.
func GossipParametersFrom(env *soap.Envelope) (GossipParameters, error) {
	var gp GossipParameters
	if err := env.DecodeHeader(Namespace, "GossipParameters", &gp); err != nil {
		return gp, err
	}
	return gp, nil
}

// SubscribeRequest is the Subscribe operation body.
type SubscribeRequest struct {
	XMLName  xml.Name `xml:"urn:wsgossip:2008 Subscribe"`
	Endpoint string   `xml:"Endpoint"`
	Role     string   `xml:"Role"`
}

// SubscribeResponse acknowledges a Subscribe.
type SubscribeResponse struct {
	XMLName  xml.Name `xml:"urn:wsgossip:2008 SubscribeResponse"`
	Accepted bool     `xml:"Accepted"`
}

// ReplicateSubscription propagates one subscription record inside a
// distributed Coordinator.
type ReplicateSubscription struct {
	XMLName  xml.Name `xml:"urn:wsgossip:2008 ReplicateSubscription"`
	Endpoint string   `xml:"Endpoint"`
	Role     string   `xml:"Role"`
}

// Announce is the lazy-push IHAVE body: it names a notification without its
// payload; unseen receivers fetch it with Fetch.
type Announce struct {
	XMLName       xml.Name `xml:"urn:wsgossip:2008 Announce"`
	InteractionID string   `xml:"InteractionID"`
	MessageID     string   `xml:"MessageID"`
	Hops          int      `xml:"Hops"`
	Holder        string   `xml:"Holder"`
}

// Fetch is the lazy-push IWANT body: a request for an announced
// notification.
type Fetch struct {
	XMLName   xml.Name `xml:"urn:wsgossip:2008 Fetch"`
	MessageID string   `xml:"MessageID"`
	Requester string   `xml:"Requester"`
}
