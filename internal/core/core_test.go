package core

import (
	"context"
	"encoding/xml"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"wsgossip/internal/soap"
	"wsgossip/internal/wscoord"
)

type quoteBody struct {
	XMLName xml.Name `xml:"urn:example:stock Quote"`
	Symbol  string   `xml:"Symbol"`
	Price   float64  `xml:"Price"`
}

// figure1 wires the exact topology of the paper's Figure 1 on a MemBus:
// a Coordinator, an Initiator (App0b), two Disseminators (App1, App2), and
// one unchanged Consumer (App3), all subscribed.
type figure1 struct {
	bus         *soap.MemBus
	coord       *Coordinator
	init        *Initiator
	dissems     map[string]*Disseminator
	dissemApps  map[string]*CollectingApp
	consumerApp *CollectingApp
}

func newFigure1(t *testing.T, seed int64) *figure1 {
	t.Helper()
	bus := soap.NewMemBus()
	f := &figure1{
		bus:        bus,
		dissems:    make(map[string]*Disseminator),
		dissemApps: make(map[string]*CollectingApp),
	}
	f.coord = NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(seed)),
		Params:  func(int) (int, int) { return 2, 4 },
	})
	bus.Register("mem://coordinator", f.coord.Handler())

	for _, name := range []string{"mem://app1", "mem://app2"} {
		app := NewCollectingApp()
		d, err := NewDisseminator(DisseminatorConfig{
			Address: name,
			Caller:  bus,
			App:     app,
			RNG:     rand.New(rand.NewSource(seed + int64(len(f.dissems)))),
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(name, d.Handler())
		f.dissems[name] = d
		f.dissemApps[name] = app
	}

	f.consumerApp = NewCollectingApp()
	consumer := NewConsumer(f.consumerApp)
	bus.Register("mem://app3", consumer.Handler())

	var err error
	f.init, err = NewInitiator(InitiatorConfig{
		Address:    "mem://app0b",
		Caller:     bus,
		Activation: "mem://coordinator",
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for endpoint, role := range map[string]string{
		"mem://app1": RoleDisseminator,
		"mem://app2": RoleDisseminator,
		"mem://app3": RoleConsumer,
	} {
		if err := SubscribeClient(ctx, bus, "mem://coordinator", endpoint, role); err != nil {
			t.Fatalf("subscribe %s: %v", endpoint, err)
		}
	}
	return f
}

// TestFigure1Dissemination is experiment E0's core assertion: the complete
// Figure 1 flow — Activation, Registration, Subscription, op — delivers the
// notification to every subscriber, including the unchanged consumer.
func TestFigure1Dissemination(t *testing.T) {
	f := newFigure1(t, 7)
	ctx := context.Background()
	inter, err := f.init.StartInteraction(ctx)
	if err != nil {
		t.Fatalf("start interaction: %v", err)
	}
	if inter.Params.Fanout != 2 || inter.Params.Hops != 4 {
		t.Fatalf("params = %+v", inter.Params)
	}
	if len(inter.Params.Targets) == 0 {
		t.Fatal("initiator got no targets")
	}
	msgID, sent, err := f.init.Notify(ctx, inter, quoteBody{Symbol: "ACME", Price: 42.5})
	if err != nil {
		t.Fatalf("notify: %v", err)
	}
	if msgID == "" || sent == 0 {
		t.Fatalf("msgID=%q sent=%d", msgID, sent)
	}
	// MemBus is synchronous: the epidemic has fully run by now.
	for name, app := range f.dissemApps {
		if app.Count() != 1 {
			t.Fatalf("disseminator %s app deliveries = %d, want exactly 1", name, app.Count())
		}
		if !strings.Contains(app.Received()[0], "ACME") {
			t.Fatalf("disseminator %s got %q", name, app.Received()[0])
		}
	}
	// The Consumer is "completely unchanged" (paper, Section 3): it has no
	// gossip layer, hence no duplicate suppression, so it may legitimately
	// receive more than one copy. It must receive at least one.
	if f.consumerApp.Count() < 1 {
		t.Fatalf("consumer deliveries = %d, want >= 1", f.consumerApp.Count())
	}
}

// TestFigure1DisseminatorsRegisterOnFirstContact asserts the paper's
// first-contact behaviour: a disseminator that receives an unknown gossip
// interaction registers with the Registration service exactly once.
func TestFigure1DisseminatorsRegisterOnFirstContact(t *testing.T) {
	f := newFigure1(t, 8)
	ctx := context.Background()
	inter, err := f.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := f.init.Notify(ctx, inter, quoteBody{Symbol: "X", Price: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	totalRegs := int64(0)
	for name, d := range f.dissems {
		st := d.Stats()
		if st.Received > 0 && st.Registrations != 1 {
			t.Fatalf("disseminator %s registrations = %d, want 1", name, st.Registrations)
		}
		totalRegs += st.Registrations
	}
	cs := f.coord.Stats()
	// Initiator registers once; each contacted disseminator once.
	if cs.Registrations != totalRegs+1 {
		t.Fatalf("coordinator registrations = %d, want %d", cs.Registrations, totalRegs+1)
	}
}

// TestConsumerCompletelyUnchanged is the paper's central Consumer claim: the
// consumer stack contains zero gossip code, receives the notification with
// all gossip headers intact but unexamined, and never contacts the
// coordinator.
func TestConsumerCompletelyUnchanged(t *testing.T) {
	bus := soap.NewMemBus()
	var sawGossipHeader, sawContext bool
	app := soap.HandlerFunc(func(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
		if _, err := GossipHeaderFrom(req.Envelope); err == nil {
			sawGossipHeader = true
		}
		if _, err := wscoord.ContextFrom(req.Envelope); err == nil {
			sawContext = true
		}
		return nil, nil
	})
	bus.Register("mem://consumer", NewConsumer(app).Handler())

	coord := NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(1)),
	})
	bus.Register("mem://coordinator", coord.Handler())
	ctx := context.Background()
	if err := coord.SubscribeLocal(ctx, "mem://consumer", RoleConsumer); err != nil {
		t.Fatal(err)
	}
	init, err := NewInitiator(InitiatorConfig{
		Address: "mem://init", Caller: bus, Activation: "mem://coordinator",
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := init.Notify(ctx, inter, quoteBody{Symbol: "Y", Price: 1}); err != nil {
		t.Fatal(err)
	}
	if !sawGossipHeader || !sawContext {
		t.Fatal("gossip headers did not pass through the unchanged consumer stack")
	}
	regs := coord.Stats().Registrations
	if regs != 1 { // only the initiator's
		t.Fatalf("registrations = %d; the consumer must never register", regs)
	}
}

func TestDisseminatorSuppressesDuplicates(t *testing.T) {
	f := newFigure1(t, 9)
	ctx := context.Background()
	inter, err := f.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Fanout 2 over 3 subscribers with hops 4 guarantees re-receipts.
	if _, _, err := f.init.Notify(ctx, inter, quoteBody{Symbol: "DUP", Price: 1}); err != nil {
		t.Fatal(err)
	}
	var dups int64
	for _, d := range f.dissems {
		dups += d.Stats().Duplicates
	}
	if dups == 0 {
		t.Fatal("no duplicates suppressed; topology should produce re-receipts")
	}
	for name, app := range f.dissemApps {
		if app.Count() != 1 {
			t.Fatalf("%s delivered %d times", name, app.Count())
		}
	}
}

func TestDisseminatorPlainMessagePassThrough(t *testing.T) {
	bus := soap.NewMemBus()
	app := NewCollectingApp()
	d, err := NewDisseminator(DisseminatorConfig{
		Address: "mem://d", Caller: bus, App: app,
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://d", d.Handler())
	env := soap.NewEnvelope()
	if err := env.SetAddressing(addressingFor("mem://d", ActionNotify)); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(quoteBody{Symbol: "PLAIN", Price: 2}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(context.Background(), "mem://d", env); err != nil {
		t.Fatal(err)
	}
	if app.Count() != 1 {
		t.Fatalf("plain message deliveries = %d", app.Count())
	}
	st := d.Stats()
	if st.Received != 0 || st.Forwarded != 0 || st.Registrations != 0 {
		t.Fatalf("plain message touched gossip state: %+v", st)
	}
}

func TestDisseminatorWithoutContextStillDelivers(t *testing.T) {
	bus := soap.NewMemBus()
	app := NewCollectingApp()
	d, err := NewDisseminator(DisseminatorConfig{Address: "mem://d", Caller: bus, App: app})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://d", d.Handler())
	// Gossip header but no coordination context: registration is
	// impossible; the node must degrade to consume-only.
	env := soap.NewEnvelope()
	if err := env.SetAddressing(addressingFor("mem://d", ActionNotify)); err != nil {
		t.Fatal(err)
	}
	if err := SetGossipHeader(env, GossipHeader{InteractionID: "i1", MessageID: "m1", Hops: 3}); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(quoteBody{Symbol: "NOCTX", Price: 3}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(context.Background(), "mem://d", env); err != nil {
		t.Fatal(err)
	}
	if app.Count() != 1 {
		t.Fatalf("deliveries = %d", app.Count())
	}
	if st := d.Stats(); st.Forwarded != 0 {
		t.Fatalf("forwarded without parameters: %+v", st)
	}
}

func TestGossipHeaderRoundTrip(t *testing.T) {
	env := soap.NewEnvelope()
	gh := GossipHeader{InteractionID: "ia", MessageID: "mb", Hops: 5}
	if err := SetGossipHeader(env, gh); err != nil {
		t.Fatal(err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := soap.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GossipHeaderFrom(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if got.InteractionID != gh.InteractionID || got.MessageID != gh.MessageID || got.Hops != gh.Hops {
		t.Fatalf("round trip = %+v, want %+v", got, gh)
	}
}

func TestGossipHeaderMissing(t *testing.T) {
	env := soap.NewEnvelope()
	if _, err := GossipHeaderFrom(env); err != ErrNoGossipHeader {
		t.Fatalf("err = %v", err)
	}
}

func TestSetGossipHeaderReplaces(t *testing.T) {
	env := soap.NewEnvelope()
	if err := SetGossipHeader(env, GossipHeader{InteractionID: "a", MessageID: "1", Hops: 9}); err != nil {
		t.Fatal(err)
	}
	if err := SetGossipHeader(env, GossipHeader{InteractionID: "a", MessageID: "1", Hops: 8}); err != nil {
		t.Fatal(err)
	}
	got, err := GossipHeaderFrom(env)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hops != 8 {
		t.Fatalf("hops = %d, want 8", got.Hops)
	}
	count := 0
	for _, b := range env.Header.Blocks {
		if b.XMLName.Local == "Gossip" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("gossip headers = %d", count)
	}
}

func TestCoordinatorSubscriptionManagement(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Address: "mem://c"})
	ctx := context.Background()
	if err := c.SubscribeLocal(ctx, "mem://a", RoleDisseminator); err != nil {
		t.Fatal(err)
	}
	if err := c.SubscribeLocal(ctx, "mem://b", RoleConsumer); err != nil {
		t.Fatal(err)
	}
	// Re-subscribe updates the role without duplicating.
	if err := c.SubscribeLocal(ctx, "mem://a", RoleConsumer); err != nil {
		t.Fatal(err)
	}
	subs := c.Subscribers()
	if len(subs) != 2 {
		t.Fatalf("subscribers = %+v", subs)
	}
	for _, s := range subs {
		if s.Endpoint == "mem://a" && s.Role != RoleConsumer {
			t.Fatalf("role not updated: %+v", s)
		}
	}
	c.Unsubscribe("mem://a")
	if got := len(c.Subscribers()); got != 1 {
		t.Fatalf("after unsubscribe = %d", got)
	}
	c.Unsubscribe("mem://ghost") // no-op
}

func TestCoordinatorRejectsBadSubscriptions(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{Address: "mem://c"})
	ctx := context.Background()
	if err := c.SubscribeLocal(ctx, "", RoleConsumer); err == nil {
		t.Fatal("empty endpoint accepted")
	}
	if err := c.SubscribeLocal(ctx, "mem://a", "weird"); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestDefaultParamPolicy(t *testing.T) {
	f, h := DefaultParamPolicy(1)
	if f != 1 || h != 1 {
		t.Fatalf("tiny policy = (%d, %d)", f, h)
	}
	f, h = DefaultParamPolicy(1024)
	if f != 3 {
		t.Fatalf("fanout = %d", f)
	}
	if h != 12 { // ceil(log2(1024)) + 2
		t.Fatalf("hops = %d, want 12", h)
	}
}

func TestRegistrationRejectsUnknownProtocol(t *testing.T) {
	f := newFigure1(t, 10)
	ctx := context.Background()
	cctx, err := f.coord.CreateActivity()
	if err != nil {
		t.Fatal(err)
	}
	reg := wscoord.NewRegistrationClient(f.bus, "mem://x")
	_, err = reg.Register(ctx, cctx, "urn:other:protocol", "mem://x")
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestDistributedCoordinatorReplication(t *testing.T) {
	bus := soap.NewMemBus()
	addrs := []string{"mem://c0", "mem://c1", "mem://c2"}
	coords := make([]*Coordinator, len(addrs))
	for i, addr := range addrs {
		var replicas []string
		for j, other := range addrs {
			if j != i {
				replicas = append(replicas, other)
			}
		}
		coords[i] = NewCoordinator(CoordinatorConfig{
			Address:  addr,
			RNG:      rand.New(rand.NewSource(int64(i))),
			Caller:   bus,
			Replicas: replicas,
		})
		bus.Register(addr, coords[i].Handler())
	}
	ctx := context.Background()
	// Subscribe 9 endpoints round-robin across coordinators.
	for i := 0; i < 9; i++ {
		target := addrs[i%3]
		endpoint := fmt.Sprintf("mem://sub%d", i)
		if err := SubscribeClient(ctx, bus, target, endpoint, RoleDisseminator); err != nil {
			t.Fatal(err)
		}
	}
	// Every coordinator must know all 9 subscribers.
	for i, c := range coords {
		if got := len(c.Subscribers()); got != 9 {
			t.Fatalf("coordinator %d subscribers = %d, want 9", i, got)
		}
	}
	// Replications counted, not double-subscribed.
	for i, c := range coords {
		st := c.Stats()
		if st.Subscribes != 3 {
			t.Fatalf("coordinator %d direct subscribes = %d, want 3", i, st.Subscribes)
		}
		if st.Replications != 6 {
			t.Fatalf("coordinator %d replications = %d, want 6", i, st.Replications)
		}
	}
}

func TestInitiatorConfigValidation(t *testing.T) {
	if _, err := NewInitiator(InitiatorConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewDisseminator(DisseminatorConfig{}); err == nil {
		t.Fatal("empty disseminator config accepted")
	}
}

func TestNotifyWithoutInteraction(t *testing.T) {
	bus := soap.NewMemBus()
	init, err := NewInitiator(InitiatorConfig{Address: "mem://i", Caller: bus, Activation: "mem://c"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := init.Notify(context.Background(), nil, quoteBody{}); err == nil {
		t.Fatal("nil interaction accepted")
	}
}

// TestDisseminatorSurvivesCoordinatorCrash: once parameters are cached, the
// epidemic keeps flowing even if the Coordinator disappears; nodes that had
// not yet registered degrade to consume-only instead of failing.
func TestDisseminatorSurvivesCoordinatorCrash(t *testing.T) {
	f := newFigure1(t, 12)
	ctx := context.Background()
	inter, err := f.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// First notification: everyone registers while the coordinator is up.
	if _, _, err := f.init.Notify(ctx, inter, quoteBody{Symbol: "BEFORE", Price: 1}); err != nil {
		t.Fatal(err)
	}
	before := map[string]int{}
	for name, app := range f.dissemApps {
		before[name] = app.Count()
	}
	// Coordinator crashes.
	f.bus.Unregister("mem://coordinator")
	// Dissemination continues from cached interaction state.
	if _, _, err := f.init.Notify(ctx, inter, quoteBody{Symbol: "AFTER", Price: 2}); err != nil {
		t.Fatal(err)
	}
	progressed := 0
	for name, app := range f.dissemApps {
		if app.Count() > before[name] {
			progressed++
		}
	}
	if progressed == 0 {
		t.Fatal("no disseminator delivered after the coordinator crash")
	}
}

// TestInteractionIsolation: two concurrent interactions use distinct
// contexts; a disseminator registers once per interaction and delivers both
// streams independently.
func TestInteractionIsolation(t *testing.T) {
	f := newFigure1(t, 13)
	ctx := context.Background()
	interA, err := f.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	interB, err := f.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if interA.Context.Identifier == interB.Context.Identifier {
		t.Fatal("interactions share an identifier")
	}
	if _, _, err := f.init.Notify(ctx, interA, quoteBody{Symbol: "A", Price: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.init.Notify(ctx, interB, quoteBody{Symbol: "B", Price: 2}); err != nil {
		t.Fatal(err)
	}
	for name, d := range f.dissems {
		st := d.Stats()
		if st.Received > 0 && st.Registrations > 2 {
			t.Fatalf("%s registered %d times for 2 interactions", name, st.Registrations)
		}
		app := f.dissemApps[name]
		if app.Count() != 2 {
			t.Fatalf("%s delivered %d, want both streams", name, app.Count())
		}
	}
}
