package core

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/gossip"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
	"wsgossip/internal/wscoord"
)

// DisseminatorStats counts the gossip layer's activity at one node.
type DisseminatorStats struct {
	// Received counts notifications that reached the gossip layer.
	Received int64
	// Delivered counts unique notifications handed to the application.
	Delivered int64
	// Duplicates counts suppressed re-receipts.
	Duplicates int64
	// Forwarded counts copies re-routed to peers.
	Forwarded int64
	// Registrations counts first-contact registrations with a Registration
	// service.
	Registrations int64
	// SendErrors counts failed forwards (tolerated by redundancy).
	SendErrors int64
	// Announced counts lazy-push IHAVE messages sent.
	Announced int64
	// Fetched counts lazy-push IWANT requests issued.
	Fetched int64
	// Served counts stored notifications served to fetchers.
	Served int64
	// DigestsSent counts anti-entropy digests issued by TickRepair.
	DigestsSent int64
	// Repaired counts notifications retransmitted in response to digests.
	Repaired int64
	// PullsSent counts WS-PullGossip digest requests issued by TickPull.
	PullsSent int64
	// PullServed counts notifications retransmitted in response to pull
	// requests.
	PullServed int64
}

// counters is the live, lock-free form of DisseminatorStats. Every field is
// a registry-resolved counter — the same atomic.Int64 underneath the old
// private atomics, so the fan-out hot path still bumps one atomic per send
// — and Stats() is now a view over the node's metric plane: the numbers an
// operator scrapes from /metrics and the numbers Stats reports cannot
// drift. The send and retransmit counters are children of per-protocol
// labeled families, pre-resolved here so the hot path never touches a map.
type counters struct {
	received      *metrics.Counter
	delivered     *metrics.Counter
	duplicates    *metrics.Counter
	forwarded     *metrics.Counter // gossip_sends_total{protocol="push"}
	registrations *metrics.Counter
	sendErrors    *metrics.Counter
	announced     *metrics.Counter // gossip_sends_total{protocol="lazypush"}
	fetched       *metrics.Counter
	served        *metrics.Counter // gossip_retransmits_total{protocol="lazypush"}
	digestsSent   *metrics.Counter // gossip_sends_total{protocol="repair"}
	repaired      *metrics.Counter // gossip_retransmits_total{protocol="repair"}
	pullsSent     *metrics.Counter // gossip_sends_total{protocol="pull"}
	pullServed    *metrics.Counter // gossip_retransmits_total{protocol="pull"}
	failovers     *metrics.Counter // registrations served by a successor coordinator
	fanoutSeconds *metrics.BucketHistogram
}

// newCounters resolves the gossip-layer series from reg.
func newCounters(reg *metrics.Registry) counters {
	sends := reg.CounterVec("gossip_sends_total", "protocol")
	retransmits := reg.CounterVec("gossip_retransmits_total", "protocol")
	return counters{
		received:      reg.Counter("gossip_received_total"),
		delivered:     reg.Counter("gossip_delivered_total"),
		duplicates:    reg.Counter("gossip_duplicates_total"),
		registrations: reg.Counter("gossip_registrations_total"),
		sendErrors:    reg.Counter("gossip_send_errors_total"),
		fetched:       reg.Counter("gossip_fetches_total"),
		failovers:     reg.Counter("gossip_failover_registrations_total"),
		forwarded:     sends.With("push"),
		announced:     sends.With("lazypush"),
		pullsSent:     sends.With("pull"),
		digestsSent:   sends.With("repair"),
		served:        retransmits.With("lazypush"),
		pullServed:    retransmits.With("pull"),
		repaired:      retransmits.With("repair"),
		fanoutSeconds: reg.BucketHistogram("gossip_fanout_seconds", metrics.DefLatencyBuckets),
	}
}

func (c *counters) snapshot() DisseminatorStats {
	return DisseminatorStats{
		Received:      c.received.Value(),
		Delivered:     c.delivered.Value(),
		Duplicates:    c.duplicates.Value(),
		Forwarded:     c.forwarded.Value(),
		Registrations: c.registrations.Value(),
		SendErrors:    c.sendErrors.Value(),
		Announced:     c.announced.Value(),
		Fetched:       c.fetched.Value(),
		Served:        c.served.Value(),
		DigestsSent:   c.digestsSent.Value(),
		Repaired:      c.repaired.Value(),
		PullsSent:     c.pullsSent.Value(),
		PullServed:    c.pullServed.Value(),
	}
}

// DisseminatorConfig configures a Disseminator node.
type DisseminatorConfig struct {
	// Address is the node's endpoint address.
	Address string
	// Caller sends SOAP messages (forwards and registrations).
	Caller soap.Caller
	// App is the application service the gossip layer wraps. It receives
	// each unique notification exactly once. May be nil for pure relays.
	App soap.Handler
	// RNG drives peer selection; nil falls back to a fixed seed.
	RNG *rand.Rand
	// Peers, when set, is the live peer view consulted at sample time for
	// every fan-out (forward, announce, repair, pull) in place of the
	// frozen coordinator-assigned target lists; the static lists remain the
	// fallback while the view is empty (membership bootstrap). Nil keeps
	// the classic coordinator-fed behaviour.
	Peers PeerView
	// Coordinators lists successor Registration service addresses tried in
	// order when first-contact registration at the coordination context's
	// primary service fails — the coordinator-failover path. The successors
	// must know the activity (see CoordinatorConfig.ReplicateActivities).
	Coordinators []string
	// SeenCacheSize bounds the duplicate-suppression cache (0 = default).
	SeenCacheSize int
	// StoreSize bounds the retained notification envelopes that serve
	// lazy-push fetches (0 = 1024).
	StoreSize int
	// Metrics is the registry the gossip layer resolves its counters from;
	// Stats() reads the same series. Nil uses a private registry, so the
	// layer is always instrumented. Sharing one registry between several
	// disseminators in a process merges their counts — give each node its
	// own registry when per-node numbers matter.
	Metrics *metrics.Registry
	// Clock supplies timestamps for the fan-out latency histogram; on a
	// virtual clock the histogram is deterministic. Nil uses wall time.
	Clock clock.Clock
	// Intern, when set, deduplicates the retained envelope clones that
	// serve lazy-push fetches: nodes sharing one Interner (a simulated
	// cluster) hold a single deep copy per (message, hop count) instead of
	// one per store. Stored envelopes are only ever read via Snapshot, so
	// sharing is safe. Nil keeps private per-store clones.
	Intern *soap.Interner
}

// interactionState caches the protocol and parameters the Coordinator
// assigned for one gossip interaction.
type interactionState struct {
	protocol string
	params   GossipParameters
}

// pull reports whether the interaction spreads through pull rounds only.
func (s *interactionState) pull() bool {
	return s.protocol == ProtocolPullGossip || s.params.Style == gossip.StylePull.String()
}

// Disseminator is the paper's Disseminator role: application code untouched,
// but the middleware stack carries an extra handler — the gossip layer —
// that intercepts notifications and re-routes them to selected destinations.
type Disseminator struct {
	cfg      DisseminatorConfig
	register *wscoord.RegistrationClient
	// wake, when set (Runner adaptive mode), runs on every gossip intake so
	// quiescence-backed-off rounds snap back to their base period.
	wake atomic.Pointer[func()]

	mu           sync.Mutex
	rng          *rand.Rand
	seen         *gossip.SeenSet
	interactions map[string]*interactionState
	store        *envelopeStore
	requested    map[string]struct{}
	deferAnn     bool
	pendingAnn   []pendingAnnounce
	stats        counters
	now          func() time.Duration
}

// pendingAnnounce is one lazy-push advertisement queued for the next
// announce round (deferred mode, see DeferAnnouncements).
type pendingAnnounce struct {
	gh    GossipHeader
	state *interactionState
}

// NewDisseminator returns a disseminator node.
func NewDisseminator(cfg DisseminatorConfig) (*Disseminator, error) {
	if cfg.Address == "" || cfg.Caller == nil {
		return nil, fmt.Errorf("core: disseminator config requires address and caller")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Disseminator{
		cfg:          cfg,
		register:     wscoord.NewRegistrationClient(cfg.Caller, cfg.Address),
		rng:          rng,
		seen:         gossip.NewSeenSet(cfg.SeenCacheSize),
		interactions: make(map[string]*interactionState),
		store:        newEnvelopeStore(cfg.StoreSize),
		requested:    make(map[string]struct{}),
		stats:        newCounters(reg),
		now:          clk.Now,
	}, nil
}

// Address returns the node's endpoint address.
func (d *Disseminator) Address() string { return d.cfg.Address }

// Stats returns a copy of the gossip-layer counters. Each counter is read
// atomically, but the fields are loaded independently: under concurrent
// updates the copy may be mutually inconsistent for an instant (e.g.
// Received already bumped while Delivered still lags).
func (d *Disseminator) Stats() DisseminatorStats {
	return d.stats.snapshot()
}

// ActivityCount is a monotonic counter of gossip traffic at this node:
// notifications taken in plus payloads and repairs served to peers. An
// adaptive Runner samples it each round — an unchanged count between two
// fires means the interval was quiescent and the round period may back off.
func (d *Disseminator) ActivityCount() uint64 {
	return uint64(d.stats.received.Value()) +
		uint64(d.stats.fetched.Value()) +
		uint64(d.stats.served.Value()) +
		uint64(d.stats.repaired.Value()) +
		uint64(d.stats.pullServed.Value())
}

// OnActivity registers fn to run whenever ActivityCount advances — the
// snap-back half of adaptive pacing: an adaptive Runner installs its Wake
// here so backed-off loops reschedule as soon as traffic returns instead of
// sleeping out a maximum-length quiescent period. One callback; nil clears.
func (d *Disseminator) OnActivity(fn func()) {
	if fn == nil {
		d.wake.Store(nil)
		return
	}
	d.wake.Store(&fn)
}

// bumpActivity runs the registered activity callback, if any. Call it after
// the corresponding counter increment and outside d.mu.
func (d *Disseminator) bumpActivity() {
	if fn := d.wake.Load(); fn != nil {
		(*fn)()
	}
}

// sampleTargetsLocked draws up to n fan-out targets for one interaction:
// from the live peer view when one is installed (and non-empty), else from
// the interaction's coordinator-assigned static list. Callers hold d.mu,
// which guards the rng.
func (d *Disseminator) sampleTargetsLocked(n int, static []string) []string {
	return SelectTargets(d.cfg.Peers, d.rng, n, d.cfg.Address, static)
}

// Handler returns the node's SOAP handler: the application service wrapped
// by the gossip layer middleware on the notify action.
func (d *Disseminator) Handler() soap.Handler {
	dispatcher := soap.NewDispatcher()
	d.RegisterActions(dispatcher)
	return dispatcher
}

// RegisterActions installs the gossip-layer actions on an existing
// dispatcher, for stacks that colocate further services (e.g. an
// aggregation participant) on one endpoint.
func (d *Disseminator) RegisterActions(dispatcher *soap.Dispatcher) {
	dispatcher.Register(ActionNotify, soap.HandlerFunc(d.handleNotify))
	dispatcher.Register(ActionIHave, soap.HandlerFunc(d.handleIHave))
	dispatcher.Register(ActionIWant, soap.HandlerFunc(d.handleIWant))
	dispatcher.Register(ActionDigest, soap.HandlerFunc(d.handleDigest))
	dispatcher.Register(ActionPullRequest, soap.HandlerFunc(d.handlePullRequest))
}

// Middleware returns the gossip layer as a reusable soap.Middleware, for
// stacks that compose their own handler chains.
func (d *Disseminator) Middleware() soap.Middleware {
	return func(next soap.Handler) soap.Handler {
		return soap.HandlerFunc(func(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
			return d.intercept(ctx, req, next)
		})
	}
}

func (d *Disseminator) handleNotify(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	return d.intercept(ctx, req, d.cfg.App)
}

// intercept implements the gossip layer: dedup, first-contact registration,
// local delivery, and hop-bounded re-routing.
func (d *Disseminator) intercept(ctx context.Context, req *soap.Request, app soap.Handler) (*soap.Envelope, error) {
	gh, err := GossipHeaderFrom(req.Envelope)
	if err != nil {
		// Not a gossiped message: hand it to the application untouched.
		return d.deliver(ctx, req, app)
	}
	d.stats.received.Add(1)
	d.bumpActivity()
	d.mu.Lock()
	if !d.seen.Add(gh.MessageID) {
		d.mu.Unlock()
		d.stats.duplicates.Add(1)
		return nil, nil
	}
	delete(d.requested, gh.MessageID)
	d.mu.Unlock()
	// Retain the envelope so lazy-push fetches can be served later. The
	// store outlives this delivery, whose inbound buffer the transport
	// recycles once the handler returns — so the one retention point in the
	// stack deep-copies. Paid once per unique message (duplicates, the bulk
	// of gossip traffic, never get here), and copied outside d.mu so
	// concurrent deliveries don't serialize behind a payload memcpy; the
	// seen-set dedup above guarantees a single Put per message ID.
	var clone *soap.Envelope
	if d.cfg.Intern != nil {
		// The stored form varies only by message identity and remaining hop
		// budget (forwarding decrements Hops before re-rendering), so that
		// pair keys the shared clone across every store on this interner.
		clone = d.cfg.Intern.Clone(gh.MessageID+"\x00"+strconv.Itoa(gh.Hops), req.Envelope)
	} else {
		clone = req.Envelope.Clone()
	}
	d.mu.Lock()
	d.store.Put(gh.MessageID, clone)
	state, known := d.interactions[gh.InteractionID]
	d.mu.Unlock()

	if !known {
		state, err = d.registerInteraction(ctx, req.Envelope, gh)
		if err != nil {
			// Without parameters the node still consumes the message; it
			// just cannot forward. This degrades, not fails, matching the
			// epidemic model's tolerance for non-cooperating nodes.
			state = nil
		}
	}

	d.stats.delivered.Add(1)
	resp, appErr := d.deliver(ctx, req, app)

	if state != nil && gh.Hops > 0 {
		switch {
		case state.pull():
			// WS-PullGossip never forwards eagerly: the notification is
			// stored and spreads when peers pull it (TickPull).
		case state.params.Style == gossip.StyleLazyPush.String():
			d.mu.Lock()
			deferred := d.deferAnn
			if deferred && len(d.pendingAnn) < maxPendingAnnounces {
				d.pendingAnn = append(d.pendingAnn, pendingAnnounce{gh: gh, state: state})
			}
			d.mu.Unlock()
			if !deferred {
				d.announce(ctx, gh, state)
			}
		default:
			d.forward(ctx, req.Envelope, gh, state)
		}
	}
	if appErr != nil {
		return nil, appErr
	}
	// Gossiped notifications are one-way: suppress application responses on
	// the gossip path.
	_ = resp
	return nil, nil
}

func (d *Disseminator) deliver(ctx context.Context, req *soap.Request, app soap.Handler) (*soap.Envelope, error) {
	if app == nil {
		return nil, nil
	}
	return app.HandleSOAP(ctx, req)
}

// registerInteraction performs the paper's first-contact handshake: "If
// this is an unknown gossip interaction, it registers itself with the
// Registration service, thus obtaining gossip targets to which it will
// forward the message."
func (d *Disseminator) registerInteraction(ctx context.Context, env *soap.Envelope, gh GossipHeader) (*interactionState, error) {
	cctx, err := wscoord.ContextFrom(env)
	if err != nil {
		return nil, fmt.Errorf("core: gossiped message without coordination context: %w", err)
	}
	protocol := gh.Protocol
	if protocol == "" {
		protocol = ProtocolPushGossip
	}
	// Cache under the header's interaction ID — the key intercept looks
	// up — even if a sender's coordination-context identifier differs.
	return d.registerProtocol(ctx, cctx, protocol, gh.InteractionID)
}

// registerProtocol performs the Register call for one (interaction,
// protocol) pair and caches the returned parameters under cacheKey. When
// the context's primary Registration service is unreachable, the configured
// successor coordinators are tried in order (coordinator failover): the
// coordination context is re-aimed at each successor, which can serve the
// registration if the activity was replicated to it.
func (d *Disseminator) registerProtocol(ctx context.Context, cctx wscoord.CoordinationContext, protocol, cacheKey string) (*interactionState, error) {
	resp, err := d.register.Register(ctx, cctx, protocol, d.cfg.Address)
	for _, successor := range d.cfg.Coordinators {
		if err == nil {
			break
		}
		if successor == cctx.RegistrationService.Address {
			continue
		}
		retry := cctx
		retry.RegistrationService.Address = successor
		resp, err = d.register.Register(ctx, retry, protocol, d.cfg.Address)
		if err == nil {
			d.stats.failovers.Inc()
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: register interaction %s: %w", cctx.Identifier, err)
	}
	params, err := GossipParametersFrom(resp)
	if err != nil {
		return nil, fmt.Errorf("core: registration response without parameters: %w", err)
	}
	state := &interactionState{protocol: protocol, params: params}
	d.mu.Lock()
	d.interactions[cacheKey] = state
	d.mu.Unlock()
	d.stats.registrations.Add(1)
	return state, nil
}

// JoinInteraction proactively registers the disseminator with an
// interaction's Registration service for the given protocol. Pull-driven
// deployments use it: a pure puller never receives an eager first contact,
// so it joins explicitly and then draws the content through TickPull.
func (d *Disseminator) JoinInteraction(ctx context.Context, cctx wscoord.CoordinationContext, protocol string) error {
	d.mu.Lock()
	_, known := d.interactions[cctx.Identifier]
	d.mu.Unlock()
	if known {
		return nil
	}
	_, err := d.registerProtocol(ctx, cctx, protocol, cctx.Identifier)
	return err
}

// forward re-routes a copy of the notification to up to fanout targets with
// a decremented hop budget. The stable part of the message — gossip header,
// action, message ID, coordination context, body — is serialized exactly
// once; only the wsa:To block is rendered per target.
func (d *Disseminator) forward(ctx context.Context, env *soap.Envelope, gh GossipHeader, state *interactionState) {
	d.mu.Lock()
	targets := d.sampleTargetsLocked(state.params.Fanout, state.params.Targets)
	d.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	next := gh
	next.Hops = gh.Hops - 1
	out := env.Snapshot()
	if err := SetGossipHeader(out, next); err != nil {
		d.stats.sendErrors.Add(int64(len(targets)))
		return
	}
	if err := out.SetAddressing(wsa.Headers{
		Action:    ActionNotify,
		MessageID: wsa.MessageID(gh.MessageID),
	}); err != nil {
		d.stats.sendErrors.Add(int64(len(targets)))
		return
	}
	d.stats.forwarded.Add(int64(d.fanout(ctx, out, targets)))
}

// fanout sends env (addressing must omit To) to every target through the
// shared encode-once ladder (soap.Fanout), bumping sendErrors for failures
// and returning the number of successful sends.
func (d *Disseminator) fanout(ctx context.Context, env *soap.Envelope, targets []string) int {
	start := d.now()
	sent, failed := soap.Fanout(ctx, d.cfg.Caller, env, targets)
	d.stats.fanoutSeconds.Observe((d.now() - start).Seconds())
	if len(failed) > 0 {
		d.stats.sendErrors.Add(int64(len(failed)))
	}
	return sent
}
