// Package core implements the WS-Gossip framework itself: the four roles of
// the paper's Figure 1 (Initiator, Disseminator, Consumer, Coordinator), the
// gossip SOAP header that hop-bounds a disseminated notification, and the
// GossipParameters registration extension through which the Coordinator
// provides "adequate parameter configurations and peers for each gossip
// round" (Section 3).
//
// The division of labour follows the paper exactly:
//
//   - The Initiator's application code is changed: it activates a gossip
//     coordination context, registers, and issues a single notification.
//   - A Disseminator's application code is oblivious to gossip; a handler in
//     its middleware stack intercepts notifications, registers with the
//     Registration service on first contact with an interaction, delivers
//     the message locally, and re-routes copies to selected peers.
//   - A Consumer is completely unchanged: the gossip header passes through
//     its stack unexamined.
//   - The Coordinator hosts Activation/Registration plus the subscription
//     list, validating registrations against a ProtocolRegistry of the
//     coordination protocol URIs (WS-PushGossip, WS-PullGossip, and the
//     aggregation protocol; see ProtocolPushGossip and friends).
//
// Key types beyond the roles:
//
//   - GossipHeader / GossipParameters / AggregateParameters — the SOAP
//     extension blocks the protocols ride on.
//   - Runner — the self-clocking round engine: every periodic protocol
//     round (TickPull, TickRepair, TickAnnounce, aggregation exchanges,
//     membership view exchanges, coordinator expiry pruning) fires from a
//     Runner on a pluggable clock.Clock. With RunnerConfig.QuiescentMax
//     set, the pull/repair/aggregate loops back off exponentially while
//     the node sees no traffic and snap back (Runner.Wake) when it
//     returns.
//   - PeerView — the sample-time peer source. The Disseminator, the
//     aggregation Service, and the Initiator consult it on every fan-out,
//     which turns the static coordinator-assigned target list into a mere
//     bootstrap fallback; membership.Service is the live implementation.
//
// The hot send paths run on the encode-once zero-copy wire machinery of
// package soap (see DESIGN.md, "capture → store → splice → patch").
//
// Every role takes an optional Metrics registry (package metrics); nil
// falls back to a private one, so instrumentation is unconditional. The
// Stats() structs are read-side views over the same registry series an
// operator scrapes through package obs (DESIGN.md, "Observability").
package core
