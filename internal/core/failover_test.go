package core

import (
	"context"
	"testing"
	"time"

	"wsgossip/internal/soap"
)

// TestCoordinatorActivityReplicationAndFailover proves the failover path:
// an activity created at the primary is replicated to the successor, and a
// disseminator whose first-contact registration hits the dead primary
// re-registers against the successor and obtains usable parameters.
func TestCoordinatorActivityReplicationAndFailover(t *testing.T) {
	bus := soap.NewMemBus()
	ctx := context.Background()

	successor := NewCoordinator(CoordinatorConfig{
		Address:             "mem://coord-b",
		ReplicateActivities: true, // a successor must accept imports
	})
	bus.Register("mem://coord-b", successor.Handler())
	primary := NewCoordinator(CoordinatorConfig{
		Address:             "mem://coord-a",
		Caller:              bus,
		Replicas:            []string{"mem://coord-b"},
		ReplicateActivities: true,
	})
	bus.Register("mem://coord-a", primary.Handler())

	// Subscribers register at the primary; subscription replication gives
	// the successor an identical assignment base.
	for _, addr := range []string{"mem://n1", "mem://n2", "mem://n3"} {
		if err := primary.SubscribeLocal(ctx, addr, RoleDisseminator); err != nil {
			t.Fatal(err)
		}
	}
	init, err := NewInitiator(InitiatorConfig{
		Address: "mem://init", Caller: bus, Activation: "mem://coord-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := successor.LiveActivities(); got != 1 {
		t.Fatalf("successor imported %d activities, want 1", got)
	}

	// The primary dies; a late joiner's registration must fail over.
	bus.Unregister("mem://coord-a")
	d, err := NewDisseminator(DisseminatorConfig{
		Address:      "mem://n1",
		Caller:       bus,
		Coordinators: []string{"mem://coord-b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.JoinInteraction(ctx, inter.Context, ProtocolPushGossip); err != nil {
		t.Fatalf("registration did not fail over to the successor: %v", err)
	}
	if got := d.Stats().Registrations; got != 1 {
		t.Fatalf("failover registration count %d, want 1", got)
	}

	// Without a configured successor the same registration fails.
	bare, err := NewDisseminator(DisseminatorConfig{Address: "mem://n2", Caller: bus})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.JoinInteraction(ctx, inter.Context, ProtocolPushGossip); err == nil {
		t.Fatal("registration against the dead primary should fail with no successors")
	}

	// A coordinator outside the replicating ensemble refuses imports, so a
	// stranger cannot grow its activity table.
	loner := NewCoordinator(CoordinatorConfig{Address: "mem://coord-c"})
	bus.Register("mem://coord-c", loner.Handler())
	outsider := NewCoordinator(CoordinatorConfig{
		Address:             "mem://outsider",
		Caller:              bus,
		Replicas:            []string{"mem://coord-c"},
		ReplicateActivities: true,
	})
	if _, err := outsider.CreateActivity(); err != nil {
		t.Fatal(err)
	}
	if got := loner.LiveActivities(); got != 0 {
		t.Fatalf("non-replicating coordinator imported %d activities, want 0", got)
	}
}

// TestCoordinatorActivityTTLPruning drives the coordinator's housekeeping
// Tick on an injected clock: activities stamped with the default TTL are
// pruned once their window elapses, and late registrations are refused.
func TestCoordinatorActivityTTLPruning(t *testing.T) {
	now := time.Unix(0, 0)
	c := NewCoordinator(CoordinatorConfig{
		Address:     "mem://coord",
		Now:         func() time.Time { return now },
		ActivityTTL: time.Second,
	})
	if _, err := c.CreateActivity(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateActivity(); err != nil {
		t.Fatal(err)
	}
	if got := c.LiveActivities(); got != 2 {
		t.Fatalf("live activities %d, want 2", got)
	}
	now = now.Add(500 * time.Millisecond)
	c.Tick(context.Background())
	if got := c.LiveActivities(); got != 2 {
		t.Fatalf("mid-window prune removed activities: %d live, want 2", got)
	}
	now = now.Add(600 * time.Millisecond)
	c.Tick(context.Background())
	if got := c.LiveActivities(); got != 0 {
		t.Fatalf("expired activities survive the prune round: %d live, want 0", got)
	}
}
