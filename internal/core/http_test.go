package core

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wsgossip/internal/soap"
)

// lateBound lets us register a SOAP handler after the server URL is known
// (role addresses are their public URLs).
type lateBound struct {
	mu sync.Mutex
	h  soap.Handler
}

func (l *lateBound) set(h soap.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h = h
}

func (l *lateBound) HandleSOAP(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		return nil, soap.NewFault(soap.CodeReceiver, "handler not ready")
	}
	return h.HandleSOAP(ctx, req)
}

// TestFigure1OverRealHTTP runs the full Figure 1 flow over actual SOAP 1.2 /
// HTTP servers: coordinator, three disseminators, one unchanged consumer.
func TestFigure1OverRealHTTP(t *testing.T) {
	client := soap.NewHTTPClient(&http.Client{Timeout: 5 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	startServer := func() (*lateBound, string, func()) {
		lb := &lateBound{}
		srv := httptest.NewServer(soap.NewHTTPServer(lb))
		return lb, srv.URL + "/", srv.Close
	}

	coordLB, coordURL, closeCoord := startServer()
	defer closeCoord()
	coord := NewCoordinator(CoordinatorConfig{
		Address: coordURL,
		RNG:     rand.New(rand.NewSource(1)),
		Params:  func(int) (int, int) { return 3, 5 },
	})
	coordLB.set(coord.Handler())

	// Every application delivery signals, so the waiter below synchronizes
	// on actual events instead of sleep-polling.
	deliveries := make(chan struct{}, 64)
	signalling := func(h soap.Handler) soap.Handler {
		return soap.HandlerFunc(func(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
			resp, err := h.HandleSOAP(ctx, req)
			select {
			case deliveries <- struct{}{}:
			default:
			}
			return resp, err
		})
	}

	const nDissem = 3
	apps := make([]*CollectingApp, nDissem)
	for i := 0; i < nDissem; i++ {
		lb, url, closeSrv := startServer()
		defer closeSrv()
		apps[i] = NewCollectingApp()
		d, err := NewDisseminator(DisseminatorConfig{
			Address: url, Caller: client, App: signalling(apps[i]),
			RNG: rand.New(rand.NewSource(int64(i) + 5)),
		})
		if err != nil {
			t.Fatal(err)
		}
		lb.set(d.Handler())
		if err := SubscribeClient(ctx, client, coordURL, url, RoleDisseminator); err != nil {
			t.Fatalf("subscribe disseminator %d: %v", i, err)
		}
	}

	consumerLB, consumerURL, closeConsumer := startServer()
	defer closeConsumer()
	consumerApp := NewCollectingApp()
	consumerLB.set(NewConsumer(signalling(consumerApp)).Handler())
	if err := SubscribeClient(ctx, client, coordURL, consumerURL, RoleConsumer); err != nil {
		t.Fatalf("subscribe consumer: %v", err)
	}

	init, err := NewInitiator(InitiatorConfig{
		Address: "urn:test:initiator", Caller: client, Activation: coordURL,
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		t.Fatalf("start interaction: %v", err)
	}
	if _, sent, err := init.Notify(ctx, inter, quoteBody{Symbol: "HTTP", Price: 9}); err != nil || sent == 0 {
		t.Fatalf("notify: sent=%d err=%v", sent, err)
	}

	// HTTP hops are asynchronous; each delivery signals, so wait on events.
	allDelivered := func() bool {
		if consumerApp.Count() < 1 {
			return false
		}
		for _, app := range apps {
			if app.Count() < 1 {
				return false
			}
		}
		return true
	}
	timeout := time.After(10 * time.Second)
	for !allDelivered() {
		select {
		case <-deliveries:
		case <-timeout:
			t.Fatal("epidemic did not complete within budget")
		}
	}
	for i, app := range apps {
		if app.Count() != 1 {
			t.Fatalf("disseminator %d deliveries = %d", i, app.Count())
		}
	}
	if consumerApp.Count() < 1 {
		t.Fatalf("consumer deliveries = %d", consumerApp.Count())
	}
}
