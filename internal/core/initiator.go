package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
	"wsgossip/internal/wscoord"
)

// addressingFor builds one-way addressing headers for an outbound message.
func addressingFor(to, action string) wsa.Headers {
	return wsa.Headers{To: to, Action: action, MessageID: wsa.NewMessageID()}
}

// Interaction is one activated gossip dissemination: the coordination
// context, the coordination protocol it runs, and the parameters and
// targets the Coordinator assigned to the initiator.
type Interaction struct {
	Context  wscoord.CoordinationContext
	Protocol string
	Params   GossipParameters
}

// InitiatorConfig configures an Initiator.
type InitiatorConfig struct {
	// Address is the initiator's own endpoint address (used in addressing
	// headers and as its registration participant address).
	Address string
	// Caller sends SOAP messages.
	Caller soap.Caller
	// Activation is the Coordinator's Activation service address.
	Activation string
	// Peers, when set, is the live peer view the notification fan-out is
	// sampled from in place of the coordinator-assigned target list (which
	// remains the fallback while the view is empty). Nil keeps the classic
	// static behaviour.
	Peers PeerView
	// RNG drives live-view sampling; nil falls back to a fixed seed. Unused
	// when Peers is nil.
	RNG *rand.Rand
	// Metrics, when set, records notification fan-out failures under
	// gossip_send_errors_total (sharing the disseminator's family when the
	// registry is shared). Nil means unobserved.
	Metrics *metrics.Registry
}

// Initiator is the one role whose application code changes (paper,
// Section 3): it activates a gossip interaction, registers, and then issues
// a single notification per data item; the middleware does the rest.
type Initiator struct {
	cfg        InitiatorConfig
	activation *wscoord.ActivationClient
	register   *wscoord.RegistrationClient
	sendErrors *metrics.Counter

	mu  sync.Mutex // guards rng
	rng *rand.Rand
}

// NewInitiator returns an initiator.
func NewInitiator(cfg InitiatorConfig) (*Initiator, error) {
	if cfg.Address == "" || cfg.Caller == nil || cfg.Activation == "" {
		return nil, fmt.Errorf("core: initiator config requires address, caller, and activation address")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Initiator{
		cfg:        cfg,
		activation: wscoord.NewActivationClient(cfg.Caller, cfg.Address),
		register:   wscoord.NewRegistrationClient(cfg.Caller, cfg.Address),
		sendErrors: reg.Counter("gossip_send_errors_total"),
		rng:        rng,
	}, nil
}

// StartInteraction activates a gossip coordination context and registers the
// initiator for the push-gossip protocol, obtaining its parameters and
// initial targets.
func (i *Initiator) StartInteraction(ctx context.Context) (*Interaction, error) {
	return i.StartProtocolInteraction(ctx, ProtocolPushGossip)
}

// StartProtocolInteraction activates a gossip coordination context and
// registers the initiator for the given coordination protocol (any URI the
// Coordinator's registry accepts — e.g. ProtocolPushGossip or
// ProtocolPullGossip), obtaining its parameters and initial targets.
func (i *Initiator) StartProtocolInteraction(ctx context.Context, protocol string) (*Interaction, error) {
	cctx, err := i.activation.Create(ctx, i.cfg.Activation, CoordinationTypeGossip)
	if err != nil {
		return nil, fmt.Errorf("core: activate gossip interaction: %w", err)
	}
	resp, err := i.register.Register(ctx, cctx, protocol, i.cfg.Address)
	if err != nil {
		return nil, fmt.Errorf("core: register initiator: %w", err)
	}
	params, err := GossipParametersFrom(resp)
	if err != nil {
		return nil, fmt.Errorf("core: registration response without gossip parameters: %w", err)
	}
	return &Interaction{Context: cctx, Protocol: protocol, Params: params}, nil
}

// Notify issues a single notification carrying body, fanning it out to the
// initiator's assigned targets with the interaction's full hop budget. It
// returns the notification's message ID and the number of targets the send
// succeeded to (gossip redundancy tolerates individual failures). The
// notification is serialized exactly once; only the wsa:To header is
// rendered per target (encode-once wire path).
func (i *Initiator) Notify(ctx context.Context, inter *Interaction, body any) (wsa.MessageID, int, error) {
	if inter == nil {
		return "", 0, fmt.Errorf("core: notify without an interaction")
	}
	msgID := wsa.NewMessageID()
	env, err := i.buildNotification(inter, msgID, body)
	if err != nil {
		return msgID, 0, err
	}
	targets := i.seedTargets(inter)
	sent, failed := soap.Fanout(ctx, i.cfg.Caller, env, targets)
	i.sendErrors.Add(int64(len(failed)))
	if len(targets) > 0 && sent == 0 {
		return msgID, 0, fmt.Errorf("core: notification reached none of %d targets", len(targets))
	}
	return msgID, sent, nil
}

// seedTargets picks the endpoints the initial notification is sent to. The
// classic path uses the coordinator-assigned target list verbatim; with a
// live peer view installed, the same number of seeds is drawn from the view
// (falling back to the assigned list while the view is empty).
func (i *Initiator) seedTargets(inter *Interaction) []string {
	if i.cfg.Peers == nil {
		return inter.Params.Targets
	}
	want := len(inter.Params.Targets)
	if want == 0 {
		want = 2 * inter.Params.Fanout
	}
	if want <= 0 {
		return inter.Params.Targets
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return SelectTargets(i.cfg.Peers, i.rng, want, i.cfg.Address, inter.Params.Targets)
}

// buildNotification assembles the target-independent notification: the
// addressing omits To, which the fan-out loop splices per target.
func (i *Initiator) buildNotification(inter *Interaction, msgID wsa.MessageID, body any) (*soap.Envelope, error) {
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		Action:    ActionNotify,
		MessageID: msgID,
	}); err != nil {
		return nil, err
	}
	if err := wscoord.AttachContext(env, inter.Context); err != nil {
		return nil, err
	}
	protocol := inter.Protocol
	if protocol == ProtocolPushGossip {
		protocol = "" // wire compatibility: empty means push
	}
	if err := SetGossipHeader(env, GossipHeader{
		InteractionID: inter.Context.Identifier,
		MessageID:     string(msgID),
		Hops:          inter.Params.Hops,
		Protocol:      protocol,
	}); err != nil {
		return nil, err
	}
	if err := env.SetBody(body); err != nil {
		return nil, err
	}
	return env, nil
}

// SubscribeClient sends a Subscribe to a Coordinator on behalf of endpoint.
// protocols lists the coordination protocols the endpoint's stack serves;
// none means every protocol.
func SubscribeClient(ctx context.Context, caller soap.Caller, coordinator, endpoint, role string, protocols ...string) error {
	env := soap.NewEnvelope()
	from := wsa.NewEPR(endpoint)
	if err := env.SetAddressing(wsa.Headers{
		To:        coordinator,
		Action:    ActionSubscribe,
		MessageID: wsa.NewMessageID(),
		ReplyTo:   &from,
	}); err != nil {
		return err
	}
	if err := env.SetBody(SubscribeRequest{Endpoint: endpoint, Role: role, Protocols: protocols}); err != nil {
		return err
	}
	resp, err := caller.Call(ctx, coordinator, env)
	if err != nil {
		return fmt.Errorf("core: subscribe %s at %s: %w", endpoint, coordinator, err)
	}
	var ack SubscribeResponse
	if resp == nil {
		return fmt.Errorf("core: subscribe %s: empty response", endpoint)
	}
	if err := resp.DecodeBody(&ack); err != nil {
		return fmt.Errorf("core: subscribe %s: %w", endpoint, err)
	}
	if !ack.Accepted {
		return fmt.Errorf("core: subscribe %s: rejected", endpoint)
	}
	return nil
}
