package core

import (
	"context"
	"fmt"

	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
)

// envelopeStore retains recent notification envelopes so a lazy-push node
// can serve Fetch requests. FIFO eviction, bounded. Entries are never
// reordered, so insertion order lives in a slice-backed deque (ids[start:],
// oldest first) instead of a linked list — at one store per simulated node
// the per-entry list cells were measurable memory.
type envelopeStore struct {
	cap   int
	ids   []string
	start int
	items map[string]*soap.Envelope
}

func newEnvelopeStore(capacity int) *envelopeStore {
	if capacity <= 0 {
		capacity = 1024
	}
	return &envelopeStore{
		cap:   capacity,
		items: make(map[string]*soap.Envelope),
	}
}

func (s *envelopeStore) Put(id string, env *soap.Envelope) {
	if _, ok := s.items[id]; ok {
		return
	}
	s.items[id] = env
	s.ids = append(s.ids, id)
	for len(s.items) > s.cap {
		delete(s.items, s.ids[s.start])
		s.ids[s.start] = ""
		s.start++
	}
	if s.start > len(s.ids)/2 && s.start > 64 {
		s.ids = append(s.ids[:0], s.ids[s.start:]...)
		s.start = 0
	}
}

func (s *envelopeStore) Get(id string) (*soap.Envelope, bool) {
	env, ok := s.items[id]
	return env, ok
}

func (s *envelopeStore) Len() int { return len(s.items) }

// each calls fn for every stored ID, newest first, stopping when fn returns
// false.
func (s *envelopeStore) each(fn func(id string) bool) {
	for i := len(s.ids) - 1; i >= s.start; i-- {
		if !fn(s.ids[i]) {
			return
		}
	}
}

// maxPendingAnnounces bounds the deferred-announcement queue. Beyond it new
// advertisements are dropped (anti-entropy repair closes the residual gap),
// which keeps a node that stopped ticking from buffering without bound.
const maxPendingAnnounces = 4096

// DeferAnnouncements switches the node's lazy-push advertisements from the
// receive path to a timer: instead of sending IHAVE immediately on intake,
// the gossip layer queues the advertisement and TickAnnounce flushes the
// queue each announce round. core.Runner calls this when configured with an
// announce loop; once deferred, the node must be ticked or lazy-push spread
// stalls at it.
func (d *Disseminator) DeferAnnouncements() {
	d.mu.Lock()
	d.deferAnn = true
	d.mu.Unlock()
}

// TickAnnounce flushes the deferred lazy-push advertisement queue: every
// notification taken in since the previous round is announced to freshly
// sampled peers. Call it from a timer at the deployment's announce interval
// (core.Runner's announce loop does).
func (d *Disseminator) TickAnnounce(ctx context.Context) {
	d.mu.Lock()
	queued := d.pendingAnn
	d.pendingAnn = nil
	d.mu.Unlock()
	for _, p := range queued {
		d.announce(ctx, p.gh, p.state)
	}
}

// announce implements the lazy-push spread step: advertise the notification
// to up to fanout targets; unseen receivers fetch the payload. The IHAVE is
// one logical message: it is serialized once and rendered per target.
func (d *Disseminator) announce(ctx context.Context, gh GossipHeader, state *interactionState) {
	d.mu.Lock()
	targets := d.sampleTargetsLocked(state.params.Fanout, state.params.Targets)
	d.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		Action:    ActionIHave,
		MessageID: wsa.NewMessageID(),
	}); err != nil {
		d.stats.sendErrors.Add(int64(len(targets)))
		return
	}
	if err := env.SetBody(Announce{
		InteractionID: gh.InteractionID,
		MessageID:     gh.MessageID,
		Hops:          gh.Hops - 1,
		Holder:        d.cfg.Address,
	}); err != nil {
		d.stats.sendErrors.Add(int64(len(targets)))
		return
	}
	d.stats.announced.Add(int64(d.fanout(ctx, env, targets)))
}

// handleIHave requests the payload of an unseen announced notification.
func (d *Disseminator) handleIHave(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	var ann Announce
	if err := req.Envelope.DecodeBody(&ann); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed Announce: "+err.Error())
	}
	d.mu.Lock()
	if d.seen.Contains(ann.MessageID) {
		d.mu.Unlock()
		d.stats.duplicates.Add(1)
		return nil, nil
	}
	if _, pending := d.requested[ann.MessageID]; pending {
		d.mu.Unlock()
		return nil, nil
	}
	d.requested[ann.MessageID] = struct{}{}
	d.mu.Unlock()

	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To:        ann.Holder,
		Action:    ActionIWant,
		MessageID: wsa.NewMessageID(),
	}); err != nil {
		return nil, err
	}
	if err := env.SetBody(Fetch{MessageID: ann.MessageID, Requester: d.cfg.Address}); err != nil {
		return nil, err
	}
	if err := d.cfg.Caller.Send(ctx, ann.Holder, env); err != nil {
		d.mu.Lock()
		// Allow a later announcer to retrigger the fetch.
		delete(d.requested, ann.MessageID)
		d.mu.Unlock()
		d.stats.sendErrors.Add(1)
		return nil, nil
	}
	d.stats.fetched.Add(1)
	d.bumpActivity()
	return nil, nil
}

// handleIWant serves a stored notification to the requester with a
// decremented hop budget.
func (d *Disseminator) handleIWant(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	var fetch Fetch
	if err := req.Envelope.DecodeBody(&fetch); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed Fetch: "+err.Error())
	}
	d.mu.Lock()
	stored, ok := d.store.Get(fetch.MessageID)
	d.mu.Unlock()
	if !ok {
		return nil, soap.NewFault(soap.CodeSender,
			fmt.Sprintf("notification %q not held", fetch.MessageID))
	}
	gh, err := GossipHeaderFrom(stored)
	if err != nil {
		return nil, err
	}
	out := stored.Snapshot()
	// The transfer consumes one hop, exactly as an eager forward would.
	next := gh
	if next.Hops > 0 {
		next.Hops--
	}
	if err := SetGossipHeader(out, next); err != nil {
		return nil, err
	}
	if err := out.SetAddressing(wsa.Headers{
		To:        fetch.Requester,
		Action:    ActionNotify,
		MessageID: wsa.MessageID(gh.MessageID),
	}); err != nil {
		return nil, err
	}
	if err := d.cfg.Caller.Send(ctx, fetch.Requester, out); err != nil {
		d.stats.sendErrors.Add(1)
		return nil, nil
	}
	d.stats.served.Add(1)
	d.bumpActivity()
	return nil, nil
}
