package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"wsgossip/internal/gossip"
	"wsgossip/internal/soap"
)

// lazyDeployment builds a WS-Gossip deployment whose Coordinator configures
// participants for lazy push.
func newLazyDeployment(t *testing.T, nDissem int, seed int64) (*soap.MemBus, *Initiator, []*Disseminator, []*CollectingApp) {
	t.Helper()
	bus := soap.NewMemBus()
	coord := NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(seed)),
		Params:  func(int) (int, int) { return 4, 8 },
		Style:   gossip.StyleLazyPush,
	})
	bus.Register("mem://coordinator", coord.Handler())
	ctx := context.Background()
	dissems := make([]*Disseminator, nDissem)
	apps := make([]*CollectingApp, nDissem)
	for i := 0; i < nDissem; i++ {
		addr := fmt.Sprintf("mem://lazy%02d", i)
		apps[i] = NewCollectingApp()
		d, err := NewDisseminator(DisseminatorConfig{
			Address: addr, Caller: bus, App: apps[i],
			RNG: rand.New(rand.NewSource(seed + int64(i) + 50)),
		})
		if err != nil {
			t.Fatal(err)
		}
		dissems[i] = d
		bus.Register(addr, d.Handler())
		if err := SubscribeClient(ctx, bus, "mem://coordinator", addr, RoleDisseminator); err != nil {
			t.Fatal(err)
		}
	}
	init, err := NewInitiator(InitiatorConfig{
		Address: "mem://init", Caller: bus, Activation: "mem://coordinator",
	})
	if err != nil {
		t.Fatal(err)
	}
	return bus, init, dissems, apps
}

// TestLazyPushDissemination verifies the SOAP-level lazy-push style: full
// coverage with announce/fetch traffic replacing most payload forwards.
func TestLazyPushDissemination(t *testing.T) {
	_, init, dissems, apps := newLazyDeployment(t, 20, 31)
	ctx := context.Background()
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Params.Style != gossip.StyleLazyPush.String() {
		t.Fatalf("style = %q", inter.Params.Style)
	}
	if _, _, err := init.Notify(ctx, inter, quoteBody{Symbol: "LAZY", Price: 5}); err != nil {
		t.Fatal(err)
	}
	reached := 0
	for _, app := range apps {
		if app.Count() == 1 {
			reached++
		}
	}
	if reached < 18 {
		t.Fatalf("lazy push reached %d/20", reached)
	}
	var announced, fetched, served, forwarded int64
	for _, d := range dissems {
		st := d.Stats()
		announced += st.Announced
		fetched += st.Fetched
		served += st.Served
		forwarded += st.Forwarded
	}
	if announced == 0 || fetched == 0 || served == 0 {
		t.Fatalf("lazy machinery unused: announced=%d fetched=%d served=%d", announced, fetched, served)
	}
	if forwarded != 0 {
		t.Fatalf("lazy deployment used eager forwards: %d", forwarded)
	}
	// Payload transfers (served) must not exceed unique deliveries, unlike
	// eager push where payloads >> deliveries.
	if served > int64(len(dissems)) {
		t.Fatalf("served %d payloads for %d nodes", served, len(dissems))
	}
}

// TestLazyPushPayloadSavings compares payload traffic against an eager
// deployment of the same size and parameters.
func TestLazyPushPayloadSavings(t *testing.T) {
	ctx := context.Background()

	_, lazyInit, lazyDissems, _ := newLazyDeployment(t, 20, 32)
	inter, err := lazyInit.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lazyInit.Notify(ctx, inter, quoteBody{Symbol: "L", Price: 1}); err != nil {
		t.Fatal(err)
	}
	var lazyPayloads int64
	for _, d := range lazyDissems {
		st := d.Stats()
		lazyPayloads += st.Served + st.Forwarded
	}

	eager, err := newE0StyleDeployment(20, 32)
	if err != nil {
		t.Fatal(err)
	}
	eagerInter, err := eager.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eager.init.Notify(ctx, eagerInter, quoteBody{Symbol: "E", Price: 1}); err != nil {
		t.Fatal(err)
	}
	var eagerPayloads int64
	for _, d := range eager.dissems {
		eagerPayloads += d.Stats().Forwarded
	}
	if lazyPayloads >= eagerPayloads {
		t.Fatalf("lazy payloads (%d) not below eager (%d)", lazyPayloads, eagerPayloads)
	}
}

// eagerDeployment mirrors newLazyDeployment with the default push style.
type eagerDeployment struct {
	init    *Initiator
	dissems []*Disseminator
}

func newE0StyleDeployment(nDissem int, seed int64) (*eagerDeployment, error) {
	bus := soap.NewMemBus()
	coord := NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(seed)),
		Params:  func(int) (int, int) { return 4, 8 },
	})
	bus.Register("mem://coordinator", coord.Handler())
	ctx := context.Background()
	d := &eagerDeployment{}
	for i := 0; i < nDissem; i++ {
		addr := fmt.Sprintf("mem://eager%02d", i)
		dd, err := NewDisseminator(DisseminatorConfig{
			Address: addr, Caller: bus, App: NewCollectingApp(),
			RNG: rand.New(rand.NewSource(seed + int64(i) + 50)),
		})
		if err != nil {
			return nil, err
		}
		d.dissems = append(d.dissems, dd)
		bus.Register(addr, dd.Handler())
		if err := SubscribeClient(ctx, bus, "mem://coordinator", addr, RoleDisseminator); err != nil {
			return nil, err
		}
	}
	init, err := NewInitiator(InitiatorConfig{
		Address: "mem://init", Caller: bus, Activation: "mem://coordinator",
	})
	if err != nil {
		return nil, err
	}
	d.init = init
	return d, nil
}

func TestEnvelopeStore(t *testing.T) {
	s := newEnvelopeStore(2)
	mk := func(id string) *soap.Envelope {
		env := soap.NewEnvelope()
		_ = env.SetBody(quoteBody{Symbol: id})
		return env
	}
	s.Put("a", mk("a"))
	s.Put("b", mk("b"))
	s.Put("a", mk("a2")) // idempotent, no duplicate entry
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Put("c", mk("c"))
	if _, ok := s.Get("a"); ok {
		t.Fatal("oldest survived eviction")
	}
	if _, ok := s.Get("c"); !ok {
		t.Fatal("newest missing")
	}
	if s := newEnvelopeStore(0); s.cap != 1024 {
		t.Fatalf("default cap = %d", s.cap)
	}
}

func TestHandleIWantUnknownMessage(t *testing.T) {
	bus := soap.NewMemBus()
	d, err := NewDisseminator(DisseminatorConfig{Address: "mem://d", Caller: bus})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://d", d.Handler())
	env := soap.NewEnvelope()
	if err := env.SetAddressing(addressingFor("mem://d", ActionIWant)); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(Fetch{MessageID: "ghost", Requester: "mem://x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Call(context.Background(), "mem://d", env); err == nil {
		t.Fatal("fetch of unknown message succeeded")
	}
}
