package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
)

// TestRunnerMetricsUnifiedWithFireCount proves the satellite contract: the
// runner_fires_total{loop} metric and Runner.FireCount read the same
// counter, so they cannot drift.
func TestRunnerMetricsUnifiedWithFireCount(t *testing.T) {
	v := clock.NewVirtual()
	reg := metrics.NewRegistry()
	r, err := NewRunner(RunnerConfig{
		Clock:   v,
		Metrics: reg,
		Loops: []Loop{{
			Name:   "count",
			Period: 10 * time.Millisecond,
			Tick:   func(context.Context) {},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	v.Advance(100 * time.Millisecond)

	metricFires := reg.CounterVec("runner_fires_total", "loop").With("count").Value()
	if metricFires == 0 {
		t.Fatal("runner_fires_total never advanced")
	}
	if got := r.FireCount("count"); got != metricFires {
		t.Fatalf("FireCount = %d, metric = %d — bookkeeping drifted", got, metricFires)
	}
	// Ticks on a virtual clock are instantaneous; the duration histogram
	// must deterministically hold all-zero observations.
	tick := reg.BucketHistogramVec("runner_tick_seconds", metrics.DefLatencyBuckets, "loop").With("count")
	if tick.Count() != metricFires {
		t.Fatalf("tick histogram count = %d, fires = %d", tick.Count(), metricFires)
	}
	if tick.Sum() != 0 {
		t.Fatalf("virtual-clock tick durations must be 0, sum = %v", tick.Sum())
	}
}

// TestRunnerBackoffIntrospection drives a loop into quiescent backoff and
// reads the state back through LoopStates and the backoff-level gauge.
func TestRunnerBackoffIntrospection(t *testing.T) {
	v := clock.NewVirtual()
	reg := metrics.NewRegistry()
	var activity uint64
	r, err := NewRunner(RunnerConfig{
		Clock:   v,
		Metrics: reg,
		Loops: []Loop{{
			Name:      "adaptive",
			Period:    10 * time.Millisecond,
			MaxPeriod: 160 * time.Millisecond,
			Activity:  func() uint64 { return activity },
			Tick:      func(context.Context) {},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	states := r.LoopStates()
	if len(states) != 1 || states[0].Name != "adaptive" || states[0].BackoffLevel != 0 {
		t.Fatalf("initial state = %+v", states)
	}

	// Quiescence stretches the loop to its cap: 10→20→40→80→160.
	v.Advance(2 * time.Second)
	st := r.LoopStates()[0]
	if st.Current != 160*time.Millisecond {
		t.Fatalf("backed-off current period = %v, want 160ms", st.Current)
	}
	if st.BackoffLevel != 4 {
		t.Fatalf("backoff level = %d, want 4", st.BackoffLevel)
	}
	if g := reg.GaugeVec("runner_backoff_level", "loop").With("adaptive").Value(); g != 4 {
		t.Fatalf("backoff gauge = %d, want 4", g)
	}
	if st.Fires != r.FireCount("adaptive") {
		t.Fatalf("LoopStates fires %d != FireCount %d", st.Fires, r.FireCount("adaptive"))
	}

	// Wake snaps it back and is counted.
	activity++
	r.Wake()
	if got := reg.Counter("runner_wakes_total").Value(); got != 1 {
		t.Fatalf("runner_wakes_total = %d, want 1", got)
	}
	if st := r.LoopStates()[0]; st.BackoffLevel != 0 || st.Current != 10*time.Millisecond {
		t.Fatalf("state after wake = %+v, want base pace", st)
	}
}

// TestDisseminatorStatsAreRegistryViews sends one gossip notification
// through a two-node pair and checks Stats() agrees with the registry
// series, including the per-protocol labels.
func TestDisseminatorStatsAreRegistryViews(t *testing.T) {
	bus := soap.NewMemBus()
	coord := NewCoordinator(CoordinatorConfig{Address: "mem://coord"})
	bus.Register("mem://coord", coord.Handler())

	regA := metrics.NewRegistry()
	a, err := NewDisseminator(DisseminatorConfig{Address: "mem://a", Caller: bus, Metrics: regA})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://a", a.Handler())
	b, err := NewDisseminator(DisseminatorConfig{Address: "mem://b", Caller: bus})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://b", b.Handler())
	for _, n := range []string{"mem://a", "mem://b"} {
		if err := coord.SubscribeLocal(context.Background(), n, RoleDisseminator); err != nil {
			t.Fatal(err)
		}
	}

	init, err := NewInitiator(InitiatorConfig{Address: "mem://init", Caller: bus, Activation: "mem://coord"})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartInteraction(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := init.Notify(context.Background(), inter, struct {
		XMLName struct{} `xml:"urn:test Event"`
		Data    string   `xml:"Data"`
	}{Data: "p"}); err != nil {
		t.Fatal(err)
	}

	stats := a.Stats()
	if stats.Received == 0 || stats.Delivered == 0 {
		t.Fatalf("stats = %+v, want traffic", stats)
	}
	if got := regA.Counter("gossip_received_total").Value(); got != stats.Received {
		t.Fatalf("registry received = %d, stats = %d", got, stats.Received)
	}
	if got := regA.CounterVec("gossip_sends_total", "protocol").With("push").Value(); got != stats.Forwarded {
		t.Fatalf("registry forwarded = %d, stats = %d", got, stats.Forwarded)
	}
	if stats.Forwarded > 0 {
		if n := regA.BucketHistogram("gossip_fanout_seconds", nil).Count(); n == 0 {
			t.Fatal("fan-out latency histogram empty after a forward")
		}
	}
	var sb strings.Builder
	if err := regA.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `gossip_sends_total{protocol="push"}`) {
		t.Fatalf("exposition missing per-protocol send counter:\n%s", sb.String())
	}
}

// TestCoordinatorStatsAreRegistryViews checks the coordinator counters and
// the prune/live-activity series.
func TestCoordinatorStatsAreRegistryViews(t *testing.T) {
	v := clock.NewVirtual()
	base := time.Unix(0, 0)
	reg := metrics.NewRegistry()
	coord := NewCoordinator(CoordinatorConfig{
		Address:     "mem://coord",
		Metrics:     reg,
		Now:         func() time.Time { return base.Add(v.Now()) },
		ActivityTTL: 50 * time.Millisecond,
	})
	if err := coord.SubscribeLocal(context.Background(), "mem://a", RoleDisseminator); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.CreateActivity(); err != nil {
		t.Fatal(err)
	}
	stats := coord.Stats()
	if stats.Subscribes != 1 || stats.Activations != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := reg.Counter("coord_subscribes_total").Value(); got != stats.Subscribes {
		t.Fatalf("registry subscribes = %d, stats = %d", got, stats.Subscribes)
	}
	if got := reg.Gauge("coord_live_activities").Value(); got != 1 {
		t.Fatalf("live activities gauge = %d, want 1", got)
	}
	v.Advance(100 * time.Millisecond)
	coord.Tick(context.Background())
	if got := reg.Counter("coord_prunes_total").Value(); got != 1 {
		t.Fatalf("prunes = %d, want 1", got)
	}
	if got := reg.Gauge("coord_live_activities").Value(); got != 0 {
		t.Fatalf("live activities gauge after prune = %d, want 0", got)
	}
}
