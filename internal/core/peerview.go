package core

import (
	"math/rand"

	"wsgossip/internal/gossip"
)

// PeerView supplies gossip fan-out targets at sample time.
//
// The paper's Coordinator hands each registrant a frozen target list with
// its gossip parameters ("peers for each gossip round", Section 3). That is
// the right interface for a managed deployment, but it cannot follow churn:
// a node that joins after the registration is invisible, a node that leaves
// keeps absorbing sends. A PeerView closes the gap — the Disseminator, the
// aggregation Service, and the Initiator consult it every time they sample
// targets, so the fan-out always reflects the current overlay.
//
// Implementations: membership.Service (the live, gossip-maintained view —
// the WS-Membership deployment of reference [10]) and gossip.StaticPeers
// (a fixed set). The interface is satisfied by anything implementing
// gossip.PeerProvider; it is re-declared here so the framework layer does
// not force its callers through the engine package.
type PeerView interface {
	// SelectPeers returns up to n distinct peer addresses, excluding the
	// given address (normally the sampling node itself). n < 0 requests all
	// known peers. The rng makes selection reproducible.
	SelectPeers(rng *rand.Rand, n int, exclude string) []string
}

// PeerView and gossip.PeerProvider are intentionally interchangeable.
var (
	_ PeerView            = (gossip.PeerProvider)(nil)
	_ gossip.PeerProvider = (PeerView)(nil)
)

// SelectTargets draws up to n fan-out targets: from the live view when one
// is installed and currently non-empty, otherwise from the static
// coordinator-assigned list. The fallback rule keeps a node functional
// through the membership bootstrap window (an empty view must not silence
// the node when the Coordinator already assigned it peers) and makes the
// static list the exact zero-churn behaviour: with view == nil the call is
// byte-for-byte the pre-PeerView sampling, drawing identically from rng.
func SelectTargets(view PeerView, rng *rand.Rand, n int, exclude string, static []string) []string {
	if view != nil {
		if picked := view.SelectPeers(rng, n, exclude); len(picked) > 0 {
			return picked
		}
	}
	return gossip.SamplePeers(rng, static, n, exclude)
}
