package core

import (
	"context"
	"sort"

	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
)

// WS-PullGossip: instead of eagerly re-routing notifications, a puller
// periodically sends a digest of the notifications it holds to
// coordinator-assigned peers; each peer answers by retransmitting stored
// notifications absent from the digest. The envelope store that serves
// lazy-push fetches (lazy.go) doubles as the pull store, and the batch
// retransmission path is shared with anti-entropy repair (repair.go) — pull
// is the same digest/repair exchange promoted from a backstop to the
// primary dissemination mechanism.

// TickPull runs one WS-PullGossip round: for every pull-style interaction
// the node participates in, it sends a PullRequest digest to up to fanout
// peers drawn from the interaction's targets. Call it from a timer at the
// deployment's pull interval.
func (d *Disseminator) TickPull(ctx context.Context) {
	d.mu.Lock()
	ids := d.storedIDsLocked(digestCap)
	targetSet := make(map[string]struct{})
	for _, state := range d.interactions {
		if !state.pull() {
			continue
		}
		for _, t := range d.sampleTargetsLocked(state.params.Fanout, state.params.Targets) {
			targetSet[t] = struct{}{}
		}
	}
	d.mu.Unlock()
	if len(targetSet) == 0 {
		return
	}
	targets := make([]string, 0, len(targetSet))
	for t := range targetSet {
		targets = append(targets, t)
	}
	sort.Strings(targets) // deterministic send order for reproducible runs
	// The digest request is one logical message: serialize it once and
	// render a per-target copy (encode-once wire path).
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		Action:    ActionPullRequest,
		MessageID: wsa.NewMessageID(),
	}); err != nil {
		d.stats.sendErrors.Add(int64(len(targets)))
		return
	}
	if err := env.SetBody(PullRequest{Requester: d.cfg.Address, MessageIDs: ids, Max: digestCap}); err != nil {
		d.stats.sendErrors.Add(int64(len(targets)))
		return
	}
	d.stats.pullsSent.Add(int64(d.fanout(ctx, env, targets)))
}

// handlePullRequest retransmits stored notifications the requester lacks.
func (d *Disseminator) handlePullRequest(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	var pr PullRequest
	if err := req.Envelope.DecodeBody(&pr); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed PullRequest: "+err.Error())
	}
	if pr.Requester == "" {
		return nil, soap.NewFault(soap.CodeSender, "pull request without requester")
	}
	max := pr.Max
	if max <= 0 || max > digestCap {
		max = digestCap
	}
	have := make(map[string]struct{}, len(pr.MessageIDs))
	for _, id := range pr.MessageIDs {
		have[id] = struct{}{}
	}
	served := d.retransmitMissing(ctx, pr.Requester, have, max)
	d.stats.pullServed.Add(served)
	if served > 0 {
		d.bumpActivity()
	}
	return nil, nil
}

// retransmitMissing sends every stored notification absent from have to the
// given peer (up to max), decrementing each copy's hop budget exactly as an
// eager transfer would. It returns the number of successful retransmissions.
// Both anti-entropy repair (handleDigest) and WS-PullGossip
// (handlePullRequest) converge on this path.
func (d *Disseminator) retransmitMissing(ctx context.Context, to string, have map[string]struct{}, max int) int64 {
	d.mu.Lock()
	var missing []*soap.Envelope
	if max <= 0 {
		d.mu.Unlock()
		return 0
	}
	d.store.each(func(id string) bool {
		if _, ok := have[id]; ok {
			return true
		}
		if env, ok := d.store.Get(id); ok {
			missing = append(missing, env.Snapshot())
		}
		return len(missing) < max
	})
	d.mu.Unlock()
	var served int64
	for _, env := range missing {
		gh, err := GossipHeaderFrom(env)
		if err != nil {
			continue
		}
		next := gh
		if next.Hops > 0 {
			next.Hops--
		}
		if err := SetGossipHeader(env, next); err != nil {
			d.stats.sendErrors.Add(1)
			continue
		}
		if err := env.SetAddressing(wsa.Headers{
			To:        to,
			Action:    ActionNotify,
			MessageID: wsa.MessageID(gh.MessageID),
		}); err != nil {
			d.stats.sendErrors.Add(1)
			continue
		}
		if err := d.cfg.Caller.Send(ctx, to, env); err != nil {
			d.stats.sendErrors.Add(1)
			continue
		}
		served++
	}
	return served
}
