package core

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"wsgossip/internal/soap"
	"wsgossip/internal/wscoord"
)

type pullBody struct {
	XMLName xml.Name `xml:"urn:example:pull Event"`
	Seq     int      `xml:"Seq"`
}

// pullCluster is a coordinator + n disseminators over MemBus, ready for
// WS-PullGossip interactions.
type pullCluster struct {
	bus     *soap.MemBus
	coord   *Coordinator
	init    *Initiator
	dissems []*Disseminator
	apps    []*CollectingApp
}

func newPullCluster(t *testing.T, n int, seed int64) *pullCluster {
	t.Helper()
	ctx := context.Background()
	bus := soap.NewMemBus()
	c := &pullCluster{bus: bus}
	c.coord = NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(seed)),
	})
	bus.Register("mem://coordinator", c.coord.Handler())
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("mem://pull%02d", i)
		app := NewCollectingApp()
		d, err := NewDisseminator(DisseminatorConfig{
			Address: addr,
			Caller:  bus,
			App:     app,
			RNG:     rand.New(rand.NewSource(seed + 50 + int64(i))),
		})
		if err != nil {
			t.Fatalf("NewDisseminator: %v", err)
		}
		bus.Register(addr, d.Handler())
		c.dissems = append(c.dissems, d)
		c.apps = append(c.apps, app)
		if err := SubscribeClient(ctx, bus, "mem://coordinator", addr, RoleDisseminator); err != nil {
			t.Fatalf("subscribe: %v", err)
		}
	}
	var err error
	c.init, err = NewInitiator(InitiatorConfig{
		Address:    "mem://initiator",
		Caller:     bus,
		Activation: "mem://coordinator",
	})
	if err != nil {
		t.Fatalf("NewInitiator: %v", err)
	}
	return c
}

// TestPullGossipSpreadsThroughPullRoundsOnly checks the WS-PullGossip
// protocol end to end: the initiator seeds its targets once; no eager
// forwarding happens; repeated TickPull rounds then spread the notification
// to every joined disseminator.
func TestPullGossipSpreadsThroughPullRoundsOnly(t *testing.T) {
	const n = 24
	ctx := context.Background()
	c := newPullCluster(t, n, 17)

	inter, err := c.init.StartProtocolInteraction(ctx, ProtocolPullGossip)
	if err != nil {
		t.Fatalf("StartProtocolInteraction: %v", err)
	}
	if inter.Params.Style != "pull" {
		t.Fatalf("pull registration returned style %q, want pull", inter.Params.Style)
	}
	if _, _, err := c.init.Notify(ctx, inter, pullBody{Seq: 1}); err != nil {
		t.Fatalf("Notify: %v", err)
	}

	// Seeding reached only the initiator's direct targets; nothing was
	// eagerly re-forwarded.
	seeded := 0
	var forwarded int64
	for i, d := range c.dissems {
		st := d.Stats()
		forwarded += st.Forwarded + st.Announced
		if c.apps[i].Count() > 0 {
			seeded++
		}
	}
	if forwarded != 0 {
		t.Fatalf("pull interaction eagerly forwarded %d copies", forwarded)
	}
	if seeded == 0 || seeded >= n {
		t.Fatalf("seeding should reach some but not all nodes, reached %d/%d", seeded, n)
	}

	// Every remaining node joins the interaction and pulls.
	for _, d := range c.dissems {
		if err := d.JoinInteraction(ctx, inter.Context, ProtocolPullGossip); err != nil {
			t.Fatalf("JoinInteraction: %v", err)
		}
	}
	rounds := 0
	for ; rounds < 20; rounds++ {
		done := true
		for i, d := range c.dissems {
			if c.apps[i].Count() == 0 {
				done = false
				d.TickPull(ctx)
			}
		}
		if done {
			break
		}
	}
	reached := 0
	var pullsSent, pullServed int64
	for i, d := range c.dissems {
		if c.apps[i].Count() > 0 {
			reached++
		}
		st := d.Stats()
		pullsSent += st.PullsSent
		pullServed += st.PullServed
	}
	if reached != n {
		t.Fatalf("pull rounds reached %d/%d nodes after %d rounds", reached, n, rounds)
	}
	if pullsSent == 0 || pullServed == 0 {
		t.Fatalf("expected pull traffic, got pullsSent=%d pullServed=%d", pullsSent, pullServed)
	}
	t.Logf("pull: seeded=%d reached=%d/%d rounds=%d pullsSent=%d pullServed=%d",
		seeded, reached, n, rounds, pullsSent, pullServed)
}

// TestPullRequestNegativePath checks the malformed and empty-requester
// faults of the pull handler.
func TestPullRequestNegativePath(t *testing.T) {
	c := newPullCluster(t, 2, 3)
	env := soap.NewEnvelope()
	if err := env.SetAddressing(addressingFor("mem://pull00", ActionPullRequest)); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(PullRequest{Requester: ""}); err != nil {
		t.Fatal(err)
	}
	_, err := c.bus.Call(context.Background(), "mem://pull00", env)
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("expected SOAP fault for empty requester, got %v", err)
	}
}

// TestRegistryAcceptsKnownProtocolsAndFaultsUnknown is the registry's
// contract: registrations for all three built-in protocol URIs succeed,
// while an unknown URI is answered with a Sender fault (the negative path
// the pre-registry coordinator never had coverage for).
func TestRegistryAcceptsKnownProtocolsAndFaultsUnknown(t *testing.T) {
	ctx := context.Background()
	c := newPullCluster(t, 4, 5)
	cctx, err := c.coord.CreateActivity()
	if err != nil {
		t.Fatalf("CreateActivity: %v", err)
	}
	client := wscoord.NewRegistrationClient(c.bus, "mem://registrant")
	for _, protocol := range []string{ProtocolPushGossip, ProtocolPullGossip, ProtocolAggregate} {
		resp, err := client.Register(ctx, cctx, protocol, "mem://pull00")
		if err != nil {
			t.Fatalf("registration for %s failed: %v", protocol, err)
		}
		if resp == nil {
			t.Fatalf("registration for %s returned no response", protocol)
		}
	}
	_, err = client.Register(ctx, cctx, Namespace+":gossip:bogus", "mem://pull00")
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("expected SOAP fault for unknown protocol, got %v", err)
	}
	if fault.Code.Value != soap.CodeSender {
		t.Fatalf("unknown protocol fault code = %q, want Sender", fault.Code.Value)
	}
	want := c.coord.SupportedProtocols()
	if len(want) != 3 {
		t.Fatalf("SupportedProtocols = %v, want the three built-ins", want)
	}
}

// TestSubscribeAdvertisingUnknownProtocolRejected covers the subscribe-side
// registry check.
func TestSubscribeAdvertisingUnknownProtocolRejected(t *testing.T) {
	c := newPullCluster(t, 1, 1)
	err := SubscribeClient(context.Background(), c.bus, "mem://coordinator",
		"mem://newcomer", RoleDisseminator, "urn:not-a-protocol")
	if err == nil {
		t.Fatalf("subscribe advertising unknown protocol should fail")
	}
}

// TestProtocolTargetEligibility checks that target assignment for a
// protocol only draws from subscribers advertising it.
func TestProtocolTargetEligibility(t *testing.T) {
	ctx := context.Background()
	bus := soap.NewMemBus()
	coord := NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(2)),
	})
	bus.Register("mem://coordinator", coord.Handler())
	// Two push-only subscribers, two aggregate-only subscribers.
	for i := 0; i < 2; i++ {
		if err := coord.SubscribeLocal(ctx, fmt.Sprintf("mem://push%d", i), RoleDisseminator, ProtocolPushGossip); err != nil {
			t.Fatal(err)
		}
		if err := coord.SubscribeLocal(ctx, fmt.Sprintf("mem://agg%d", i), RoleDisseminator, ProtocolAggregate); err != nil {
			t.Fatal(err)
		}
	}
	cctx, err := coord.CreateActivity()
	if err != nil {
		t.Fatal(err)
	}
	client := wscoord.NewRegistrationClient(bus, "mem://registrant")
	resp, err := client.Register(ctx, cctx, ProtocolPushGossip, "mem://registrant")
	if err != nil {
		t.Fatal(err)
	}
	params, err := GossipParametersFrom(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range params.Targets {
		if target == "mem://agg0" || target == "mem://agg1" {
			t.Fatalf("push-gossip targets include aggregate-only subscriber %s", target)
		}
	}
	resp, err = client.Register(ctx, cctx, ProtocolAggregate, "mem://registrant")
	if err != nil {
		t.Fatal(err)
	}
	aparams, err := AggregateParametersFrom(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range aparams.Targets {
		if target == "mem://push0" || target == "mem://push1" {
			t.Fatalf("aggregate targets include push-only subscriber %s", target)
		}
	}
	if len(aparams.Targets) == 0 || aparams.Epsilon <= 0 || aparams.MaxRounds <= 0 {
		t.Fatalf("aggregate parameters incomplete: %+v", aparams)
	}
}
