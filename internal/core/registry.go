package core

import (
	"fmt"
	"sort"

	"wsgossip/internal/epidemic"
	"wsgossip/internal/gossip"
	"wsgossip/internal/soap"
	"wsgossip/internal/wscoord"
)

// ProtocolExtension builds the registration-response extension headers for
// one coordination protocol. It runs with the coordinator's lock held, so it
// may use the *Locked helpers for target assignment.
type ProtocolExtension func(c *Coordinator, reg wscoord.Registrant) ([]any, error)

// ProtocolRegistry maps coordination protocol URIs to their registration
// extensions. The Coordinator validates every Register call against it: a
// registration naming an unlisted protocol is answered with a Sender fault.
// This replaces the original single hard-coded WS-PushGossip check and makes
// the WS layer a protocol *family*, as the paper frames it.
type ProtocolRegistry struct {
	exts map[string]ProtocolExtension
}

// NewProtocolRegistry returns an empty registry.
func NewProtocolRegistry() *ProtocolRegistry {
	return &ProtocolRegistry{exts: make(map[string]ProtocolExtension)}
}

// Register binds a protocol URI to its extension, replacing any previous
// binding.
func (r *ProtocolRegistry) Register(uri string, ext ProtocolExtension) {
	r.exts[uri] = ext
}

// Lookup returns the extension for uri.
func (r *ProtocolRegistry) Lookup(uri string) (ProtocolExtension, bool) {
	ext, ok := r.exts[uri]
	return ext, ok
}

// URIs returns the registered protocol URIs, sorted.
func (r *ProtocolRegistry) URIs() []string {
	out := make([]string, 0, len(r.exts))
	for uri := range r.exts {
		out = append(out, uri)
	}
	sort.Strings(out)
	return out
}

// defaultRegistry returns the built-in protocol family: WS-PushGossip,
// WS-PullGossip, and aggregation.
func defaultRegistry() *ProtocolRegistry {
	r := NewProtocolRegistry()
	r.Register(ProtocolPushGossip, pushGossipExtension)
	r.Register(ProtocolPullGossip, pullGossipExtension)
	r.Register(ProtocolAggregate, aggregateExtension)
	return r
}

// pushGossipExtension configures a WS-PushGossip registrant: (f, r) from the
// parameter policy plus peer targets, in the configured eager or lazy style.
func pushGossipExtension(c *Coordinator, reg wscoord.Registrant) ([]any, error) {
	fanout, hops, targets := c.assignLocked(ProtocolPushGossip, reg.Service)
	style := c.cfg.Style
	if style == 0 {
		style = gossip.StylePush
	}
	return []any{GossipParameters{
		Fanout:  fanout,
		Hops:    hops,
		Style:   style.String(),
		Targets: targets,
	}}, nil
}

// pullGossipExtension configures a WS-PullGossip registrant: the same (f, r)
// sizing, but style pull — the node never forwards eagerly; it spreads and
// repairs through periodic PullRequest digests to its targets.
func pullGossipExtension(c *Coordinator, reg wscoord.Registrant) ([]any, error) {
	fanout, hops, targets := c.assignLocked(ProtocolPullGossip, reg.Service)
	return []any{GossipParameters{
		Fanout:  fanout,
		Hops:    hops,
		Style:   gossip.StylePull.String(),
		Targets: targets,
	}}, nil
}

// aggregateExtension configures an aggregation registrant: exchange fanout
// and targets plus the convergence criterion. MaxRounds is sized from the
// analytic push-sum variance-decay model with headroom, so a deployment that
// runs the assigned budget is expected to be well past ε-accuracy.
func aggregateExtension(c *Coordinator, reg wscoord.Registrant) ([]any, error) {
	fanout, hops, targets := c.assignLocked(ProtocolAggregate, reg.Service)
	eps := c.cfg.AggEpsilon
	if eps <= 0 {
		eps = DefaultAggEpsilon
	}
	maxRounds := c.cfg.AggMaxRounds
	if maxRounds <= 0 {
		n := len(c.subs)
		if n < 2 {
			n = 2
		}
		if r, err := epidemic.PushSumRoundsToEpsilon(n, fanout, eps); err == nil {
			maxRounds = 2*r + 10
		} else {
			maxRounds = 4 * hops
		}
	}
	return []any{AggregateParameters{
		Fanout:    fanout,
		Hops:      hops,
		Epsilon:   eps,
		MaxRounds: maxRounds,
		Targets:   targets,
	}}, nil
}

// DefaultAggEpsilon is the default aggregation convergence threshold: an
// estimate is considered converged when it moves by less than this relative
// amount over the detection window.
const DefaultAggEpsilon = 1e-4

// unsupportedProtocolFault is the negative path of the registry check.
func unsupportedProtocolFault(uri string) *soap.Fault {
	return soap.NewFault(soap.CodeSender,
		fmt.Sprintf("unsupported coordination protocol %q", uri))
}
