package core

import (
	"context"
	"encoding/xml"

	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
)

// Anti-entropy repair: disseminators periodically exchange digests of the
// notifications they hold and retransmit what peers are missing. This is the
// WS-level analogue of Bimodal Multicast's phase 2 and of the engine's pull
// styles — it closes the gaps that one-shot push dissemination leaves under
// loss and churn.

// ActionDigest is the anti-entropy digest exchange action.
const ActionDigest = Namespace + ":digest"

// digestCap bounds the message IDs advertised per digest and the envelopes
// retransmitted per exchange.
const digestCap = 128

// Digest advertises the notifications a node holds.
type Digest struct {
	XMLName    xml.Name `xml:"urn:wsgossip:2008 Digest"`
	Sender     string   `xml:"Sender"`
	MessageIDs []string `xml:"MessageIDs>MessageID"`
}

// TickRepair runs one anti-entropy round: the node sends a digest of its
// stored notifications to up to fanout peers drawn from every interaction it
// participates in. Peers answer by retransmitting notifications absent from
// the digest. Call it from a timer at the deployment's repair interval.
func (d *Disseminator) TickRepair(ctx context.Context) {
	d.mu.Lock()
	ids := d.storedIDsLocked(digestCap)
	targetSet := make(map[string]struct{})
	for _, state := range d.interactions {
		for _, t := range d.sampleTargetsLocked(state.params.Fanout, state.params.Targets) {
			targetSet[t] = struct{}{}
		}
	}
	d.mu.Unlock()
	if len(targetSet) == 0 {
		return
	}
	targets := make([]string, 0, len(targetSet))
	for t := range targetSet {
		targets = append(targets, t)
	}
	// The digest is one logical message: serialize it once and render a
	// per-target copy (encode-once wire path).
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		Action:    ActionDigest,
		MessageID: wsa.NewMessageID(),
	}); err != nil {
		d.stats.sendErrors.Add(int64(len(targets)))
		return
	}
	if err := env.SetBody(Digest{Sender: d.cfg.Address, MessageIDs: ids}); err != nil {
		d.stats.sendErrors.Add(int64(len(targets)))
		return
	}
	d.stats.digestsSent.Add(int64(d.fanout(ctx, env, targets)))
}

// storedIDsLocked lists up to n stored notification IDs, newest first.
func (d *Disseminator) storedIDsLocked(n int) []string {
	if n <= 0 {
		return nil
	}
	ids := make([]string, 0, n)
	d.store.each(func(id string) bool {
		ids = append(ids, id)
		return len(ids) < n
	})
	return ids
}

// handleDigest retransmits stored notifications the digest's sender lacks.
// Retransmissions consume one hop, like any other transfer, so repaired
// receivers can still contribute to the epidemic if budget remains.
func (d *Disseminator) handleDigest(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	var dig Digest
	if err := req.Envelope.DecodeBody(&dig); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed Digest: "+err.Error())
	}
	if dig.Sender == "" {
		return nil, soap.NewFault(soap.CodeSender, "digest without sender")
	}
	have := make(map[string]struct{}, len(dig.MessageIDs))
	for _, id := range dig.MessageIDs {
		have[id] = struct{}{}
	}
	repaired := d.retransmitMissing(ctx, dig.Sender, have, digestCap)
	d.stats.repaired.Add(repaired)
	if repaired > 0 {
		d.bumpActivity()
	}
	return nil, nil
}
