package core

import (
	"context"
	"math/rand"
	"testing"

	"wsgossip/internal/soap"
)

// repairPair builds two disseminators on one bus, with A holding a gossiped
// notification that B never received.
func repairPair(t *testing.T) (bus *soap.MemBus, a, b *Disseminator, bApp *CollectingApp) {
	t.Helper()
	bus = soap.NewMemBus()
	coord := NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(41)),
		Params:  func(int) (int, int) { return 1, 3 },
	})
	bus.Register("mem://coordinator", coord.Handler())
	ctx := context.Background()

	aApp := NewCollectingApp()
	var err error
	a, err = NewDisseminator(DisseminatorConfig{
		Address: "mem://a", Caller: bus, App: aApp,
		RNG: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://a", a.Handler())

	bApp = NewCollectingApp()
	b, err = NewDisseminator(DisseminatorConfig{
		Address: "mem://b", Caller: bus, App: bApp,
		RNG: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://b", b.Handler())

	// Both subscribe; only A is targeted by the initiator.
	if err := coord.SubscribeLocal(ctx, "mem://a", RoleDisseminator); err != nil {
		t.Fatal(err)
	}
	if err := coord.SubscribeLocal(ctx, "mem://b", RoleDisseminator); err != nil {
		t.Fatal(err)
	}
	init, err := NewInitiator(InitiatorConfig{
		Address: "mem://init", Caller: bus, Activation: "mem://coordinator",
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver straight to A only, simulating B having lost its copy.
	env, err := init.buildNotification(inter, "urn:uuid:lost-msg", quoteBody{Symbol: "RPR", Price: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(ctx, "mem://a", env); err != nil {
		t.Fatal(err)
	}
	if aApp.Count() != 1 {
		t.Fatalf("A deliveries = %d", aApp.Count())
	}
	if bApp.Count() != 0 {
		// A forwards to sampled targets; if B was hit the scenario is moot.
		t.Skip("seed delivered to B eagerly; repair scenario not exercised")
	}
	return bus, a, b, bApp
}

// TestDigestRepairDelivers: B sends a digest to A; A retransmits the
// notification B is missing; B delivers it to its application.
func TestDigestRepairDelivers(t *testing.T) {
	bus, a, b, bApp := repairPair(t)
	ctx := context.Background()
	// B advertises an empty store directly to A (TickRepair needs interaction
	// state B does not have yet — the direct digest is the primitive).
	env := soap.NewEnvelope()
	if err := env.SetAddressing(addressingFor("mem://a", ActionDigest)); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(Digest{Sender: "mem://b"}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(ctx, "mem://a", env); err != nil {
		t.Fatal(err)
	}
	if bApp.Count() != 1 {
		t.Fatalf("B deliveries after repair = %d", bApp.Count())
	}
	if got := a.Stats().Repaired; got != 1 {
		t.Fatalf("A repaired = %d", got)
	}
	_ = b
}

// TestDigestNoRetransmitWhenPeerHasAll: a digest listing the stored message
// triggers no retransmission.
func TestDigestNoRetransmitWhenPeerHasAll(t *testing.T) {
	bus, a, _, _ := repairPair(t)
	ctx := context.Background()
	env := soap.NewEnvelope()
	if err := env.SetAddressing(addressingFor("mem://a", ActionDigest)); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(Digest{Sender: "mem://b", MessageIDs: []string{"urn:uuid:lost-msg"}}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(ctx, "mem://a", env); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Repaired; got != 0 {
		t.Fatalf("repaired = %d, want 0", got)
	}
}

// TestDigestRejectsMissingSender: a digest without a reply address is a
// sender fault.
func TestDigestRejectsMissingSender(t *testing.T) {
	bus, _, _, _ := repairPair(t)
	env := soap.NewEnvelope()
	if err := env.SetAddressing(addressingFor("mem://a", ActionDigest)); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(Digest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Call(context.Background(), "mem://a", env); err == nil {
		t.Fatal("senderless digest accepted")
	}
}

// TestTickRepairRoundTrip: B participates in the interaction (empty-ish
// store), runs TickRepair, and recovers the missing notification from A.
func TestTickRepairRoundTrip(t *testing.T) {
	bus := soap.NewMemBus()
	coord := NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(43)),
		Params:  func(int) (int, int) { return 2, 4 },
	})
	bus.Register("mem://coordinator", coord.Handler())
	ctx := context.Background()

	apps := map[string]*CollectingApp{}
	nodes := map[string]*Disseminator{}
	for i, addr := range []string{"mem://a", "mem://b"} {
		app := NewCollectingApp()
		d, err := NewDisseminator(DisseminatorConfig{
			Address: addr, Caller: bus, App: app,
			RNG: rand.New(rand.NewSource(int64(i) + 7)),
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, d.Handler())
		apps[addr] = app
		nodes[addr] = d
		if err := coord.SubscribeLocal(ctx, addr, RoleDisseminator); err != nil {
			t.Fatal(err)
		}
	}
	init, err := NewInitiator(InitiatorConfig{
		Address: "mem://init", Caller: bus, Activation: "mem://coordinator",
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Two notifications: deliver #1 to both (normal), then #2 to A only.
	if _, _, err := init.Notify(ctx, inter, quoteBody{Symbol: "N1", Price: 1}); err != nil {
		t.Fatal(err)
	}
	env, err := init.buildNotification(inter, "urn:uuid:only-a", quoteBody{Symbol: "N2", Price: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Strip the hop budget so A cannot eagerly forward it to B.
	if err := SetGossipHeader(env, GossipHeader{
		InteractionID: inter.Context.Identifier, MessageID: "urn:uuid:only-a", Hops: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(ctx, "mem://a", env); err != nil {
		t.Fatal(err)
	}
	if apps["mem://b"].Count() >= 2 {
		t.Fatal("B already has both; scenario broken")
	}
	// B repairs via digest gossip.
	nodes["mem://b"].TickRepair(ctx)
	if got := apps["mem://b"].Count(); got != 2 {
		t.Fatalf("B deliveries after TickRepair = %d, want 2", got)
	}
}
