package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/metrics"
)

// The paper's gossip services are autonomous: each peer fires its periodic
// push/pull/repair/aggregation rounds on its own schedule. Runner is that
// schedule — a self-clocking round engine on a pluggable clock. On
// clock.Real it is the production runtime (cmd/wsgossip-node); on
// clock.Virtual whole deployments advance deterministically in virtual time
// (internal/scenario, cmd/wsgossip-sim), which is what makes the paper's
// timing behaviour testable at all.

// Loop is one periodic round: a name for diagnostics, a period, a jitter
// bound, and the round body.
type Loop struct {
	// Name identifies the loop in diagnostics.
	Name string
	// Period is the nominal interval between round starts. Required > 0.
	Period time.Duration
	// Jitter is the maximum absolute deviation applied per fire: each
	// interval is drawn uniformly from [Period-Jitter, Period+Jitter].
	// Jitter desynchronizes peers so rounds do not phase-lock across a
	// deployment. Must be < Period; 0 disables.
	Jitter time.Duration
	// Tick runs one round. It is called from the clock's firing goroutine
	// and must return; the next fire is scheduled after it does, so a slow
	// round delays — never overlaps — its own successor.
	Tick func(ctx context.Context)
	// MaxPeriod, when > Period, enables quiescence backoff for this loop:
	// after a round in whose preceding interval Activity did not advance,
	// the next interval doubles (Period, 2·Period, 4·Period, …) up to
	// MaxPeriod; any observed activity — or a Wake call — snaps the loop
	// back to Period. 0 keeps the period fixed.
	MaxPeriod time.Duration
	// Activity is the monotonic traffic counter sampled at every fire to
	// decide quiescence. Required when MaxPeriod is set.
	Activity func() uint64
}

// RunnerConfig configures a Runner. The disseminator and aggregator fields
// are wiring conveniences for the standard loops; Loops adds arbitrary
// extra rounds (membership, custom maintenance).
type RunnerConfig struct {
	// Clock schedules the rounds; nil uses a new clock.Real.
	Clock clock.Clock
	// RNG draws jitter and initial phases; nil falls back to a fixed seed.
	// Give every node its own seed so peers desynchronize.
	RNG *rand.Rand

	// Disseminator, when set, contributes the standard dissemination
	// loops selected by the intervals below.
	Disseminator *Disseminator
	// PullEvery fires Disseminator.TickPull (WS-PullGossip rounds);
	// 0 disables.
	PullEvery time.Duration
	// RepairEvery fires Disseminator.TickRepair (anti-entropy digests);
	// 0 disables.
	RepairEvery time.Duration
	// AnnounceEvery fires Disseminator.TickAnnounce and switches the
	// disseminator to deferred lazy-push announcements (IHAVE batches ride
	// the timer instead of the receive path); 0 disables.
	AnnounceEvery time.Duration

	// Aggregator, when set with AggregateEvery, fires push-sum exchange
	// rounds (aggregate.Service satisfies this).
	Aggregator interface{ Tick(ctx context.Context) }
	// AggregateEvery is the aggregation exchange interval; 0 disables.
	AggregateEvery time.Duration

	// Membership, when set with MembershipEvery, fires peer-view exchange
	// rounds (membership.Service satisfies this): the node's heartbeat and
	// view dissemination ride this runner's clock like every other round.
	// The membership loop never backs off — heartbeats are the failure
	// detector, so a quiescent network must keep exchanging views.
	Membership interface{ Tick(ctx context.Context) }
	// MembershipEvery is the membership exchange interval; 0 disables.
	MembershipEvery time.Duration

	// QuiescentMax, when > 0, enables adaptive pacing for the standard
	// pull, repair, and aggregate loops: each backs off exponentially
	// toward QuiescentMax while its node sees no gossip traffic and snaps
	// back to its base period as soon as traffic returns (the runner
	// registers its Wake with the disseminator's and aggregator's
	// OnActivity hooks). Must exceed every enabled standard period.
	// 0 keeps all periods fixed — the exact pre-adaptive schedule.
	QuiescentMax time.Duration

	// JitterFrac is the jitter bound for the standard loops as a fraction
	// of each period, in [0, 1). Explicit Loops carry their own Jitter.
	JitterFrac float64

	// Loops lists additional custom rounds.
	Loops []Loop

	// Metrics is the registry the runner resolves its per-loop series from:
	// runner_fires_total{loop}, runner_tick_seconds{loop},
	// runner_backoff_level{loop}, runner_wakes_total. FireCount reads the
	// same counters, so the diagnostic and the scraped metric cannot drift.
	// Nil uses a private registry; the runner is always instrumented.
	Metrics *metrics.Registry
}

// Runner states.
const (
	runnerIdle = iota
	runnerRunning
	runnerStopped
)

// Runner owns a node's periodic protocol rounds and fires them from a
// Clock: pull rounds, anti-entropy repair, lazy-push announcements,
// push-sum aggregation. Start launches the loops; Stop (or cancelling the
// Start context) shuts them down cleanly. A Runner runs once: after Stop it
// cannot be restarted.
type Runner struct {
	clk clock.Clock

	mu      sync.Mutex
	rng     *rand.Rand
	loops   []Loop
	onStart []func() // mode flips applied once the loops go live
	onStop  []func() // hook teardown applied when the runner stops
	state   int
	ctx     context.Context
	cancel  context.CancelFunc
	pending []func() bool   // per-loop stop for the scheduled next fire
	cur     []time.Duration // per-loop current base period (adaptive pacing)
	lastAct []uint64        // per-loop Activity sample at the previous fire
	fireFns []func()        // per-loop fire thunk, built once at Start: a
	// round engine reschedules every fire, and at simulation scale a fresh
	// closure per round is pure allocator churn (a Runner runs once, so the
	// Start context never changes under a live loop)

	// Per-loop series, pre-resolved at construction. fires is the single
	// source of truth for FireCount AND the runner_fires_total metric.
	fires   []*metrics.Counter
	tickSec []*metrics.BucketHistogram
	backoff []*metrics.Gauge
	wakes   *metrics.Counter

	// backedOff counts loops whose cur exceeds Period. Wake runs on every
	// gossip intake; this lets it return without touching r.mu in the
	// common fully-active case. Mutated only under mu (setCurLocked);
	// read lock-free as an advisory fast path.
	backedOff atomic.Int32

	inflight sync.WaitGroup
}

// setCurLocked updates loop i's current base period and keeps the lock-free
// backed-off count and the backoff-level gauge in sync. Callers hold r.mu.
func (r *Runner) setCurLocked(i int, d time.Duration) {
	was := r.cur[i] > r.loops[i].Period
	r.cur[i] = d
	if now := d > r.loops[i].Period; now != was {
		if now {
			r.backedOff.Add(1)
		} else {
			r.backedOff.Add(-1)
		}
	}
	r.backoff[i].Set(backoffLevel(r.loops[i].Period, d))
}

// backoffLevel counts how many quiescent doublings separate cur from the
// base period: 0 at base pace, 1 after the first doubling, and so on.
func backoffLevel(period, cur time.Duration) int64 {
	var level int64
	for cur > period {
		cur /= 2
		level++
	}
	return level
}

// NewRunner validates the configuration and returns an idle Runner.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if cfg.JitterFrac < 0 || cfg.JitterFrac >= 1 {
		return nil, fmt.Errorf("core: runner jitter fraction %v outside [0,1)", cfg.JitterFrac)
	}
	if cfg.QuiescentMax < 0 {
		return nil, fmt.Errorf("core: runner quiescent max %v negative", cfg.QuiescentMax)
	}
	std := func(name string, period time.Duration, tick func(context.Context)) Loop {
		return Loop{
			Name:   name,
			Period: period,
			Jitter: time.Duration(cfg.JitterFrac * float64(period)),
			Tick:   tick,
		}
	}
	// adaptive upgrades a standard loop to quiescence backoff when
	// QuiescentMax is set: the loop's base period doubles toward the cap
	// while the probe reports no traffic.
	adaptive := func(l Loop, probe func() uint64) (Loop, error) {
		if cfg.QuiescentMax == 0 {
			return l, nil
		}
		if cfg.QuiescentMax <= l.Period {
			return l, fmt.Errorf("core: quiescent max %v does not exceed loop %q period %v",
				cfg.QuiescentMax, l.Name, l.Period)
		}
		l.MaxPeriod = cfg.QuiescentMax
		l.Activity = probe
		return l, nil
	}
	var loops []Loop
	var onStart, onStop []func()
	r := &Runner{clk: clk, rng: rng}
	if d := cfg.Disseminator; d != nil {
		if cfg.PullEvery > 0 {
			l, err := adaptive(std("pull", cfg.PullEvery, d.TickPull), d.ActivityCount)
			if err != nil {
				return nil, err
			}
			loops = append(loops, l)
		}
		if cfg.RepairEvery > 0 {
			l, err := adaptive(std("repair", cfg.RepairEvery, d.TickRepair), d.ActivityCount)
			if err != nil {
				return nil, err
			}
			loops = append(loops, l)
		}
		if cfg.AnnounceEvery > 0 {
			// The announce loop stays fixed-period even under QuiescentMax:
			// deferred IHAVE advertisements must flush promptly or lazy-push
			// spread stalls at this node.
			loops = append(loops, std("announce", cfg.AnnounceEvery, d.TickAnnounce))
			// Deferring announcements only once the loops are live: a
			// Runner that failed validation or was never started must not
			// leave the disseminator queueing advertisements nobody flushes.
			onStart = append(onStart, d.DeferAnnouncements)
		}
		if cfg.QuiescentMax > 0 {
			onStart = append(onStart, func() { d.OnActivity(r.Wake) })
			onStop = append(onStop, func() { d.OnActivity(nil) })
		}
	}
	if cfg.Aggregator != nil && cfg.AggregateEvery > 0 {
		l := std("aggregate", cfg.AggregateEvery, cfg.Aggregator.Tick)
		if cfg.QuiescentMax > 0 {
			probe, ok := cfg.Aggregator.(interface{ ActivityCount() uint64 })
			if !ok {
				return nil, errors.New("core: quiescent max set but aggregator exposes no ActivityCount")
			}
			var err error
			if l, err = adaptive(l, probe.ActivityCount); err != nil {
				return nil, err
			}
			if hook, ok := cfg.Aggregator.(interface{ OnActivity(func()) }); ok {
				onStart = append(onStart, func() { hook.OnActivity(r.Wake) })
				onStop = append(onStop, func() { hook.OnActivity(nil) })
			}
		}
		loops = append(loops, l)
	}
	if cfg.Membership != nil && cfg.MembershipEvery > 0 {
		// Never adaptive: view exchanges carry the heartbeats peers use for
		// failure detection, so they must keep flowing through quiescence.
		loops = append(loops, std("membership", cfg.MembershipEvery, cfg.Membership.Tick))
	}
	loops = append(loops, cfg.Loops...)
	if len(loops) == 0 {
		return nil, errors.New("core: runner configured with no loops")
	}
	for _, l := range loops {
		if l.Period <= 0 {
			return nil, fmt.Errorf("core: loop %q has non-positive period %v", l.Name, l.Period)
		}
		if l.Jitter < 0 || l.Jitter >= l.Period {
			return nil, fmt.Errorf("core: loop %q jitter %v outside [0, period)", l.Name, l.Jitter)
		}
		if l.Tick == nil {
			return nil, fmt.Errorf("core: loop %q has no tick function", l.Name)
		}
		if l.MaxPeriod != 0 {
			if l.MaxPeriod < l.Period {
				return nil, fmt.Errorf("core: loop %q max period %v below period %v", l.Name, l.MaxPeriod, l.Period)
			}
			if l.Activity == nil {
				return nil, fmt.Errorf("core: adaptive loop %q has no activity probe", l.Name)
			}
		}
	}
	r.loops = loops
	r.onStart = onStart
	r.onStop = onStop
	r.pending = make([]func() bool, len(loops))
	r.cur = make([]time.Duration, len(loops))
	r.lastAct = make([]uint64, len(loops))
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	fireVec := reg.CounterVec("runner_fires_total", "loop")
	tickVec := reg.BucketHistogramVec("runner_tick_seconds", metrics.DefLatencyBuckets, "loop")
	backVec := reg.GaugeVec("runner_backoff_level", "loop")
	r.fires = make([]*metrics.Counter, len(loops))
	r.tickSec = make([]*metrics.BucketHistogram, len(loops))
	r.backoff = make([]*metrics.Gauge, len(loops))
	r.wakes = reg.Counter("runner_wakes_total")
	for i, l := range loops {
		r.cur[i] = l.Period
		r.fires[i] = fireVec.With(l.Name)
		r.tickSec[i] = tickVec.With(l.Name)
		r.backoff[i] = backVec.With(l.Name)
	}
	return r, nil
}

// Loops returns the configured loop names, in firing order.
func (r *Runner) Loops() []string {
	names := make([]string, len(r.loops))
	for i, l := range r.loops {
		names[i] = l.Name
	}
	return names
}

// Running reports whether the loops are live.
func (r *Runner) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == runnerRunning
}

// Start launches every loop. Each loop's first round fires at a random
// phase within its first period (peers booting together must not ring
// together); subsequent rounds fire Period±Jitter after the previous round
// completes. Cancelling ctx shuts the runner down as Stop does. Starting a
// running or stopped runner is an error.
func (r *Runner) Start(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case runnerRunning:
		return errors.New("core: runner already started")
	case runnerStopped:
		return errors.New("core: runner cannot be restarted after stop")
	}
	ctx, cancel := context.WithCancel(ctx)
	r.ctx = ctx
	r.cancel = cancel
	r.state = runnerRunning
	for _, fn := range r.onStart {
		fn()
	}
	r.fireFns = make([]func(), len(r.loops))
	for i := range r.loops {
		i := i
		r.fireFns[i] = func() { r.fire(ctx, i) }
		if l := r.loops[i]; l.MaxPeriod != 0 {
			r.lastAct[i] = l.Activity()
		}
		// Initial phase in (0, Period]: uniform desynchronization.
		phase := time.Duration(r.rng.Float64()*float64(r.loops[i].Period)) + 1
		r.pending[i] = r.clk.AfterFunc(phase, r.fireFns[i])
	}
	go func() {
		<-ctx.Done()
		r.Stop()
	}()
	return nil
}

// fire runs one round of loop i and schedules the next.
func (r *Runner) fire(ctx context.Context, i int) {
	r.mu.Lock()
	if r.state != runnerRunning || ctx.Err() != nil {
		r.mu.Unlock()
		return
	}
	r.pending[i] = nil
	r.fires[i].Inc()
	r.inflight.Add(1)
	r.mu.Unlock()

	// Tick duration through the runner's own clock: deterministic (and
	// instantaneous) on clock.Virtual, wall time on clock.Real.
	tickStart := r.clk.Now()
	r.loops[i].Tick(ctx)
	r.tickSec[i].Observe((r.clk.Now() - tickStart).Seconds())
	r.inflight.Done()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != runnerRunning || ctx.Err() != nil {
		return
	}
	if l := r.loops[i]; l.MaxPeriod != 0 {
		// Quiescence backoff: traffic since the previous fire resets the
		// base period; none doubles it toward the cap. The probe is read
		// after the round, so responses the round itself provoked count as
		// traffic at the next fire.
		if act := l.Activity(); act != r.lastAct[i] {
			r.lastAct[i] = act
			r.setCurLocked(i, l.Period)
		} else if r.cur[i] < l.MaxPeriod {
			next := r.cur[i] * 2
			if next > l.MaxPeriod {
				next = l.MaxPeriod
			}
			r.setCurLocked(i, next)
		}
	}
	r.pending[i] = r.clk.AfterFunc(r.nextDelayLocked(i), r.fireFns[i])
}

// nextDelayLocked draws the next interval for loop i: the current base
// period (the configured Period unless quiescence backoff stretched it)
// ± U(0, Jitter).
func (r *Runner) nextDelayLocked(i int) time.Duration {
	l := r.loops[i]
	d := r.cur[i]
	if l.Jitter > 0 {
		d += time.Duration((r.rng.Float64()*2 - 1) * float64(l.Jitter))
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Wake snaps every backed-off adaptive loop to its base period: a loop whose
// current interval was stretched by quiescence backoff has its pending fire
// cancelled and rescheduled within one base period of now. Fixed-period
// loops and loops already at base pace are untouched. The adaptive Runner
// registers Wake with its services' OnActivity hooks so new traffic is
// answered at base cadence immediately instead of after a stretched sleep.
// Safe to call from handler callbacks; a no-op unless running. Wake runs on
// every gossip intake in adaptive mode, so it first checks a lock-free
// backed-off count and returns without locking when every loop is already
// at base pace — the sustained-traffic common case. The check is advisory:
// a loop backing off concurrently can be missed, but its very next fire
// resamples the activity counter and snaps back on its own.
func (r *Runner) Wake() {
	if r.backedOff.Load() == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != runnerRunning {
		return
	}
	r.wakes.Inc()
	for i := range r.loops {
		l := r.loops[i]
		if l.MaxPeriod == 0 || r.cur[i] <= l.Period {
			continue
		}
		stop := r.pending[i]
		if stop == nil || !stop() {
			// The fire is already running (or unscheduled); it will resample
			// activity itself and return to base pace.
			continue
		}
		r.setCurLocked(i, l.Period)
		r.pending[i] = r.clk.AfterFunc(r.nextDelayLocked(i), r.fireFns[i])
	}
}

// FireCount returns how many rounds of the named loop have started. It is a
// diagnostic for adaptive pacing: under quiescence an adaptive loop's count
// grows logarithmically-then-capped rather than linearly. The count is read
// from the runner_fires_total{loop} metric itself — there is no second
// bookkeeping to drift from what an operator scrapes. Same-name loops share
// one counter (the vector child is identity-stable), so the value is
// already the sum over all of them.
func (r *Runner) FireCount(name string) int64 {
	for i, l := range r.loops {
		if l.Name == name {
			return r.fires[i].Value()
		}
	}
	return 0
}

// LoopState is one loop's live scheduling state, as reported by LoopStates.
type LoopState struct {
	// Name is the loop's diagnostic name.
	Name string
	// Period is the configured base interval.
	Period time.Duration
	// Current is the interval in effect now; above Period when quiescence
	// backoff has stretched the loop.
	Current time.Duration
	// BackoffLevel counts the quiescent doublings applied (0 = base pace).
	BackoffLevel int64
	// Fires is the number of rounds started.
	Fires int64
}

// LoopStates reports every loop's live scheduling state, in firing order:
// the quiescent-backoff introspection the health endpoint serves. Same-name
// loops report the same (shared) fire counter.
func (r *Runner) LoopStates() []LoopState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]LoopState, len(r.loops))
	for i, l := range r.loops {
		out[i] = LoopState{
			Name:         l.Name,
			Period:       l.Period,
			Current:      r.cur[i],
			BackoffLevel: backoffLevel(l.Period, r.cur[i]),
			Fires:        r.fires[i].Value(),
		}
	}
	return out
}

// Stop cancels the pending round timers, waits for in-flight rounds to
// finish, and leaves the runner stopped. It is idempotent and a no-op on a
// never-started runner. Do not call Stop from inside a loop's Tick — it
// waits on that very round.
func (r *Runner) Stop() {
	r.mu.Lock()
	if r.state != runnerRunning {
		r.mu.Unlock()
		r.inflight.Wait()
		return
	}
	r.state = runnerStopped
	cancel := r.cancel
	stops := make([]func() bool, 0, len(r.pending))
	for i, stop := range r.pending {
		if stop != nil {
			stops = append(stops, stop)
			r.pending[i] = nil
		}
	}
	teardown := r.onStop
	r.mu.Unlock()
	cancel()
	for _, stop := range stops {
		stop()
	}
	for _, fn := range teardown {
		fn()
	}
	r.inflight.Wait()
}
