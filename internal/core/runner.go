package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wsgossip/internal/clock"
)

// The paper's gossip services are autonomous: each peer fires its periodic
// push/pull/repair/aggregation rounds on its own schedule. Runner is that
// schedule — a self-clocking round engine on a pluggable clock. On
// clock.Real it is the production runtime (cmd/wsgossip-node); on
// clock.Virtual whole deployments advance deterministically in virtual time
// (internal/scenario, cmd/wsgossip-sim), which is what makes the paper's
// timing behaviour testable at all.

// Loop is one periodic round: a name for diagnostics, a period, a jitter
// bound, and the round body.
type Loop struct {
	// Name identifies the loop in diagnostics.
	Name string
	// Period is the nominal interval between round starts. Required > 0.
	Period time.Duration
	// Jitter is the maximum absolute deviation applied per fire: each
	// interval is drawn uniformly from [Period-Jitter, Period+Jitter].
	// Jitter desynchronizes peers so rounds do not phase-lock across a
	// deployment. Must be < Period; 0 disables.
	Jitter time.Duration
	// Tick runs one round. It is called from the clock's firing goroutine
	// and must return; the next fire is scheduled after it does, so a slow
	// round delays — never overlaps — its own successor.
	Tick func(ctx context.Context)
}

// RunnerConfig configures a Runner. The disseminator and aggregator fields
// are wiring conveniences for the standard loops; Loops adds arbitrary
// extra rounds (membership, custom maintenance).
type RunnerConfig struct {
	// Clock schedules the rounds; nil uses a new clock.Real.
	Clock clock.Clock
	// RNG draws jitter and initial phases; nil falls back to a fixed seed.
	// Give every node its own seed so peers desynchronize.
	RNG *rand.Rand

	// Disseminator, when set, contributes the standard dissemination
	// loops selected by the intervals below.
	Disseminator *Disseminator
	// PullEvery fires Disseminator.TickPull (WS-PullGossip rounds);
	// 0 disables.
	PullEvery time.Duration
	// RepairEvery fires Disseminator.TickRepair (anti-entropy digests);
	// 0 disables.
	RepairEvery time.Duration
	// AnnounceEvery fires Disseminator.TickAnnounce and switches the
	// disseminator to deferred lazy-push announcements (IHAVE batches ride
	// the timer instead of the receive path); 0 disables.
	AnnounceEvery time.Duration

	// Aggregator, when set with AggregateEvery, fires push-sum exchange
	// rounds (aggregate.Service satisfies this).
	Aggregator interface{ Tick(ctx context.Context) }
	// AggregateEvery is the aggregation exchange interval; 0 disables.
	AggregateEvery time.Duration

	// JitterFrac is the jitter bound for the standard loops as a fraction
	// of each period, in [0, 1). Explicit Loops carry their own Jitter.
	JitterFrac float64

	// Loops lists additional custom rounds.
	Loops []Loop
}

// Runner states.
const (
	runnerIdle = iota
	runnerRunning
	runnerStopped
)

// Runner owns a node's periodic protocol rounds and fires them from a
// Clock: pull rounds, anti-entropy repair, lazy-push announcements,
// push-sum aggregation. Start launches the loops; Stop (or cancelling the
// Start context) shuts them down cleanly. A Runner runs once: after Stop it
// cannot be restarted.
type Runner struct {
	clk clock.Clock

	mu      sync.Mutex
	rng     *rand.Rand
	loops   []Loop
	onStart []func() // mode flips applied once the loops go live
	state   int
	cancel  context.CancelFunc
	pending []func() bool // per-loop stop for the scheduled next fire

	inflight sync.WaitGroup
}

// NewRunner validates the configuration and returns an idle Runner.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if cfg.JitterFrac < 0 || cfg.JitterFrac >= 1 {
		return nil, fmt.Errorf("core: runner jitter fraction %v outside [0,1)", cfg.JitterFrac)
	}
	std := func(name string, period time.Duration, tick func(context.Context)) Loop {
		return Loop{
			Name:   name,
			Period: period,
			Jitter: time.Duration(cfg.JitterFrac * float64(period)),
			Tick:   tick,
		}
	}
	var loops []Loop
	var onStart []func()
	if d := cfg.Disseminator; d != nil {
		if cfg.PullEvery > 0 {
			loops = append(loops, std("pull", cfg.PullEvery, d.TickPull))
		}
		if cfg.RepairEvery > 0 {
			loops = append(loops, std("repair", cfg.RepairEvery, d.TickRepair))
		}
		if cfg.AnnounceEvery > 0 {
			loops = append(loops, std("announce", cfg.AnnounceEvery, d.TickAnnounce))
			// Deferring announcements only once the loops are live: a
			// Runner that failed validation or was never started must not
			// leave the disseminator queueing advertisements nobody flushes.
			onStart = append(onStart, d.DeferAnnouncements)
		}
	}
	if cfg.Aggregator != nil && cfg.AggregateEvery > 0 {
		loops = append(loops, std("aggregate", cfg.AggregateEvery, cfg.Aggregator.Tick))
	}
	loops = append(loops, cfg.Loops...)
	if len(loops) == 0 {
		return nil, errors.New("core: runner configured with no loops")
	}
	for _, l := range loops {
		if l.Period <= 0 {
			return nil, fmt.Errorf("core: loop %q has non-positive period %v", l.Name, l.Period)
		}
		if l.Jitter < 0 || l.Jitter >= l.Period {
			return nil, fmt.Errorf("core: loop %q jitter %v outside [0, period)", l.Name, l.Jitter)
		}
		if l.Tick == nil {
			return nil, fmt.Errorf("core: loop %q has no tick function", l.Name)
		}
	}
	return &Runner{
		clk:     clk,
		rng:     rng,
		loops:   loops,
		onStart: onStart,
		pending: make([]func() bool, len(loops)),
	}, nil
}

// Loops returns the configured loop names, in firing order.
func (r *Runner) Loops() []string {
	names := make([]string, len(r.loops))
	for i, l := range r.loops {
		names[i] = l.Name
	}
	return names
}

// Running reports whether the loops are live.
func (r *Runner) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == runnerRunning
}

// Start launches every loop. Each loop's first round fires at a random
// phase within its first period (peers booting together must not ring
// together); subsequent rounds fire Period±Jitter after the previous round
// completes. Cancelling ctx shuts the runner down as Stop does. Starting a
// running or stopped runner is an error.
func (r *Runner) Start(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case runnerRunning:
		return errors.New("core: runner already started")
	case runnerStopped:
		return errors.New("core: runner cannot be restarted after stop")
	}
	ctx, cancel := context.WithCancel(ctx)
	r.cancel = cancel
	r.state = runnerRunning
	for _, fn := range r.onStart {
		fn()
	}
	for i := range r.loops {
		i := i
		// Initial phase in (0, Period]: uniform desynchronization.
		phase := time.Duration(r.rng.Float64()*float64(r.loops[i].Period)) + 1
		r.pending[i] = r.clk.AfterFunc(phase, func() { r.fire(ctx, i) })
	}
	go func() {
		<-ctx.Done()
		r.Stop()
	}()
	return nil
}

// fire runs one round of loop i and schedules the next.
func (r *Runner) fire(ctx context.Context, i int) {
	r.mu.Lock()
	if r.state != runnerRunning || ctx.Err() != nil {
		r.mu.Unlock()
		return
	}
	r.pending[i] = nil
	r.inflight.Add(1)
	r.mu.Unlock()

	r.loops[i].Tick(ctx)
	r.inflight.Done()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != runnerRunning || ctx.Err() != nil {
		return
	}
	r.pending[i] = r.clk.AfterFunc(r.nextDelayLocked(i), func() { r.fire(ctx, i) })
}

// nextDelayLocked draws the next interval for loop i: Period ± U(0, Jitter).
func (r *Runner) nextDelayLocked(i int) time.Duration {
	l := r.loops[i]
	d := l.Period
	if l.Jitter > 0 {
		d += time.Duration((r.rng.Float64()*2 - 1) * float64(l.Jitter))
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Stop cancels the pending round timers, waits for in-flight rounds to
// finish, and leaves the runner stopped. It is idempotent and a no-op on a
// never-started runner. Do not call Stop from inside a loop's Tick — it
// waits on that very round.
func (r *Runner) Stop() {
	r.mu.Lock()
	if r.state != runnerRunning {
		r.mu.Unlock()
		r.inflight.Wait()
		return
	}
	r.state = runnerStopped
	cancel := r.cancel
	stops := make([]func() bool, 0, len(r.pending))
	for i, stop := range r.pending {
		if stop != nil {
			stops = append(stops, stop)
			r.pending[i] = nil
		}
	}
	r.mu.Unlock()
	cancel()
	for _, stop := range stops {
		stop()
	}
	r.inflight.Wait()
}
