package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/gossip"
	"wsgossip/internal/soap"
)

func countingLoop(name string, period, jitter time.Duration, fn func(context.Context)) Loop {
	return Loop{Name: name, Period: period, Jitter: jitter, Tick: fn}
}

func TestRunnerConfigValidation(t *testing.T) {
	if _, err := NewRunner(RunnerConfig{}); err == nil {
		t.Fatal("runner with no loops must be rejected")
	}
	if _, err := NewRunner(RunnerConfig{
		Loops: []Loop{countingLoop("x", 0, 0, func(context.Context) {})},
	}); err == nil {
		t.Fatal("non-positive period must be rejected")
	}
	if _, err := NewRunner(RunnerConfig{
		Loops: []Loop{countingLoop("x", time.Second, time.Second, func(context.Context) {})},
	}); err == nil {
		t.Fatal("jitter >= period must be rejected")
	}
	if _, err := NewRunner(RunnerConfig{
		Loops: []Loop{{Name: "x", Period: time.Second}},
	}); err == nil {
		t.Fatal("nil tick must be rejected")
	}
	if _, err := NewRunner(RunnerConfig{
		JitterFrac: 1.5,
		Loops:      []Loop{countingLoop("x", time.Second, 0, func(context.Context) {})},
	}); err == nil {
		t.Fatal("jitter fraction >= 1 must be rejected")
	}
}

func TestRunnerLifecycle(t *testing.T) {
	v := clock.NewVirtual()
	rounds := 0
	r, err := NewRunner(RunnerConfig{
		Clock: v,
		Loops: []Loop{countingLoop("count", 10*time.Millisecond, 0, func(context.Context) { rounds++ })},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stop before start is a harmless no-op; the runner stays startable.
	r.Stop()
	if r.Running() {
		t.Fatal("runner running before start")
	}

	ctx := context.Background()
	if err := r.Start(ctx); err != nil {
		t.Fatalf("start: %v", err)
	}
	if !r.Running() {
		t.Fatal("runner not running after start")
	}
	if err := r.Start(ctx); err == nil {
		t.Fatal("double start must error")
	}

	v.Advance(105 * time.Millisecond)
	if rounds < 9 || rounds > 10 {
		t.Fatalf("rounds = %d after 105ms at 10ms period, want 9..10", rounds)
	}

	r.Stop()
	r.Stop() // idempotent
	if r.Running() {
		t.Fatal("runner running after stop")
	}
	got := rounds
	v.Advance(time.Second)
	if rounds != got {
		t.Fatalf("rounds advanced after stop: %d -> %d", got, rounds)
	}
	if err := r.Start(ctx); err == nil {
		t.Fatal("restart after stop must error")
	}
}

func TestRunnerContextCancellationMidRound(t *testing.T) {
	v := clock.NewVirtual()
	ctx, cancel := context.WithCancel(context.Background())
	rounds := 0
	r, err := NewRunner(RunnerConfig{
		Clock: v,
		Loops: []Loop{countingLoop("count", 10*time.Millisecond, 0, func(context.Context) {
			rounds++
			if rounds == 3 {
				cancel() // cancelled from inside the round
			}
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(ctx); err != nil {
		t.Fatal(err)
	}
	v.Advance(time.Second)
	if rounds != 3 {
		t.Fatalf("rounds = %d after mid-round cancellation, want exactly 3", rounds)
	}
	r.Stop() // waits out the watcher; safe after cancellation
}

func TestRunnerPreCancelledContext(t *testing.T) {
	v := clock.NewVirtual()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rounds := 0
	r, err := NewRunner(RunnerConfig{
		Clock: v,
		Loops: []Loop{countingLoop("count", 10*time.Millisecond, 0, func(context.Context) { rounds++ })},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(ctx); err != nil {
		t.Fatal(err)
	}
	v.Advance(time.Second)
	if rounds != 0 {
		t.Fatalf("rounds = %d under pre-cancelled context, want 0", rounds)
	}
	r.Stop()
}

// TestRunnerJitterBounds is the property test for the schedule: every
// inter-round gap stays within Period ± Jitter, the initial phase within
// (0, Period], and two loops with private RNG streams desynchronize.
func TestRunnerJitterBounds(t *testing.T) {
	const (
		period = 100 * time.Millisecond
		jitter = 20 * time.Millisecond
		fires  = 300
	)
	v := clock.NewVirtual()
	var times []time.Duration
	r, err := NewRunner(RunnerConfig{
		Clock: v,
		RNG:   rand.New(rand.NewSource(42)),
		Loops: []Loop{countingLoop("jittered", period, jitter, func(context.Context) {
			times = append(times, v.Now())
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for len(times) < fires {
		v.Advance(period)
	}
	r.Stop()

	if times[0] <= 0 || times[0] > period {
		t.Fatalf("initial phase %v outside (0, period]", times[0])
	}
	var spread bool
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap < period-jitter || gap > period+jitter {
			t.Fatalf("fire %d gap %v outside [%v, %v]", i, gap, period-jitter, period+jitter)
		}
		if gap != period {
			spread = true
		}
	}
	if !spread {
		t.Fatal("jitter never moved a fire off the nominal period")
	}
}

// TestRunnerSelfClockingDissemination wires a full Figure-1 deployment in
// pull style and lets the Runner — not the harness — fire the rounds on a
// virtual clock: publish, advance, and the content spreads.
func TestRunnerSelfClockingDissemination(t *testing.T) {
	v := clock.NewVirtual()
	bus := soap.NewMemBus()
	coord := NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(3)),
	})
	bus.Register("mem://coordinator", coord.Handler())

	const nodes = 8
	apps := make([]*CollectingApp, nodes)
	dissems := make([]*Disseminator, nodes)
	runners := make([]*Runner, nodes)
	ctx := context.Background()
	for i := 0; i < nodes; i++ {
		addr := fmt.Sprintf("mem://node%d", i)
		apps[i] = NewCollectingApp()
		d, err := NewDisseminator(DisseminatorConfig{
			Address: addr,
			Caller:  bus,
			App:     apps[i],
			RNG:     rand.New(rand.NewSource(int64(i) + 10)),
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, d.Handler())
		dissems[i] = d
		if err := SubscribeClient(ctx, bus, "mem://coordinator", addr, RoleDisseminator); err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(RunnerConfig{
			Clock:        v,
			RNG:          rand.New(rand.NewSource(int64(i) + 100)),
			Disseminator: d,
			PullEvery:    50 * time.Millisecond,
			RepairEvery:  200 * time.Millisecond,
			JitterFrac:   0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(ctx); err != nil {
			t.Fatal(err)
		}
		runners[i] = r
	}

	// Activate a pull interaction, seed the initiator's direct targets
	// once, and have every node join.
	init, err := NewInitiator(InitiatorConfig{
		Address:    "mem://initiator",
		Caller:     bus,
		Activation: "mem://coordinator",
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartProtocolInteraction(ctx, ProtocolPullGossip)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := init.Notify(ctx, inter, quoteBody{Symbol: "PULL", Price: 7}); err != nil {
		t.Fatal(err)
	}
	for _, d := range dissems {
		if err := d.JoinInteraction(ctx, inter.Context, ProtocolPullGossip); err != nil {
			t.Fatal(err)
		}
	}

	// No harness ticks from here on: rounds fire from the runners alone.
	v.Advance(2 * time.Second)
	for i, app := range apps {
		if app.Count() != 1 {
			t.Fatalf("node %d deliveries = %d, want exactly 1", i, app.Count())
		}
	}
	for _, r := range runners {
		r.Stop()
	}
}

// TestRunnerDeferredAnnounceRounds verifies the announce loop: in deferred
// mode the IHAVE for a received notification leaves only when the announce
// timer fires, not on the receive path.
func TestRunnerDeferredAnnounceRounds(t *testing.T) {
	v := clock.NewVirtual()
	bus := soap.NewMemBus()
	coord := NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(5)),
		Style:   gossip.StyleLazyPush,
		Params:  func(int) (int, int) { return 2, 6 },
	})
	bus.Register("mem://coordinator", coord.Handler())

	const nodes = 6
	apps := make([]*CollectingApp, nodes)
	ctx := context.Background()
	var runners []*Runner
	for i := 0; i < nodes; i++ {
		addr := fmt.Sprintf("mem://node%d", i)
		apps[i] = NewCollectingApp()
		d, err := NewDisseminator(DisseminatorConfig{
			Address: addr,
			Caller:  bus,
			App:     apps[i],
			RNG:     rand.New(rand.NewSource(int64(i) + 20)),
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, d.Handler())
		if err := SubscribeClient(ctx, bus, "mem://coordinator", addr, RoleDisseminator); err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(RunnerConfig{
			Clock:         v,
			RNG:           rand.New(rand.NewSource(int64(i) + 200)),
			Disseminator:  d,
			AnnounceEvery: 30 * time.Millisecond,
			RepairEvery:   300 * time.Millisecond,
			JitterFrac:    0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(ctx); err != nil {
			t.Fatal(err)
		}
		runners = append(runners, r)
	}

	init, err := NewInitiator(InitiatorConfig{
		Address:    "mem://initiator",
		Caller:     bus,
		Activation: "mem://coordinator",
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, sent, err := init.Notify(ctx, inter, quoteBody{Symbol: "LAZY", Price: 1}); err != nil || sent == 0 {
		t.Fatalf("notify: sent=%d err=%v", sent, err)
	}

	// MemBus is synchronous, so the initiator's direct targets have the
	// payload — but deferred announcements mean nothing spread beyond them
	// yet at virtual time zero.
	direct := 0
	for _, app := range apps {
		if app.Count() > 0 {
			direct++
		}
	}
	if direct >= nodes {
		t.Fatalf("deferred mode spread to all %d nodes before any announce round", nodes)
	}

	v.Advance(2 * time.Second)
	for i, app := range apps {
		if app.Count() != 1 {
			t.Fatalf("node %d deliveries = %d after announce rounds, want 1", i, app.Count())
		}
	}
	for _, r := range runners {
		r.Stop()
	}
}

// TestRunnerConcurrentLifecycleRace exercises the wall-clock path under the
// race detector: runner rounds firing from real timers while subscriptions,
// notifications, and shutdown run concurrently.
func TestRunnerConcurrentLifecycleRace(t *testing.T) {
	bus := soap.NewMemBus()
	coord := NewCoordinator(CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(9)),
	})
	bus.Register("mem://coordinator", coord.Handler())

	ctx := context.Background()
	const nodes = 4
	var runners []*Runner
	var dissems []*Disseminator
	for i := 0; i < nodes; i++ {
		addr := fmt.Sprintf("mem://node%d", i)
		d, err := NewDisseminator(DisseminatorConfig{
			Address: addr,
			Caller:  bus,
			App:     NewCollectingApp(),
			RNG:     rand.New(rand.NewSource(int64(i) + 30)),
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, d.Handler())
		if err := SubscribeClient(ctx, bus, "mem://coordinator", addr, RoleDisseminator); err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(RunnerConfig{
			Disseminator: d, // real clock
			RNG:          rand.New(rand.NewSource(int64(i) + 300)),
			PullEvery:    5 * time.Millisecond,
			RepairEvery:  7 * time.Millisecond,
			JitterFrac:   0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(ctx); err != nil {
			t.Fatal(err)
		}
		runners = append(runners, r)
		dissems = append(dissems, d)
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // churn subscriptions
		defer wg.Done()
		for i := 0; i < 25; i++ {
			addr := fmt.Sprintf("mem://late%d", i)
			_ = SubscribeClient(ctx, bus, "mem://coordinator", addr, RoleConsumer)
			coord.Unsubscribe(addr)
		}
	}()
	go func() { // notifications racing the rounds
		defer wg.Done()
		init, err := NewInitiator(InitiatorConfig{
			Address:    "mem://initiator",
			Caller:     bus,
			Activation: "mem://coordinator",
		})
		if err != nil {
			t.Error(err)
			return
		}
		inter, err := init.StartInteraction(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 20; i++ {
			if _, _, err := init.Notify(ctx, inter, quoteBody{Symbol: "RACE", Price: float64(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // stats reads racing the rounds
		defer wg.Done()
		for i := 0; i < 100; i++ {
			for _, d := range dissems {
				_ = d.Stats()
			}
		}
	}()
	wg.Wait()
	for _, r := range runners {
		r.Stop()
	}
}

func TestRunnerAdaptiveBackoff(t *testing.T) {
	v := clock.NewVirtual()
	var activity uint64
	fired := 0
	r, err := NewRunner(RunnerConfig{
		Clock: v,
		Loops: []Loop{{
			Name:      "adaptive",
			Period:    10 * time.Millisecond,
			MaxPeriod: 80 * time.Millisecond,
			Activity:  func() uint64 { return activity },
			Tick:      func(context.Context) { fired++ },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// Quiescent: intervals double 10, 20, 40, 80, 80… After the initial
	// phase (≤10ms) the first second holds at most 1 + ceil settle fires
	// plus 1000/80 capped rounds — far below the 100 a fixed period fires.
	v.Advance(time.Second)
	quiescent := fired
	if quiescent >= 50 {
		t.Fatalf("quiescent adaptive loop fired %d rounds in 1s; backoff is not engaging", quiescent)
	}
	if quiescent < 5 {
		t.Fatalf("adaptive loop fired only %d rounds in 1s; cap overshoot", quiescent)
	}

	// Traffic resets the pace: with the counter advancing before every
	// fire, the loop runs at the 10ms base period again.
	fired = 0
	for i := 0; i < 20; i++ {
		activity++
		v.Advance(10 * time.Millisecond)
	}
	if fired < 15 {
		t.Fatalf("active adaptive loop fired %d rounds over 20 base periods, want ~20", fired)
	}
}

func TestRunnerAdaptiveWakeSnapsBack(t *testing.T) {
	v := clock.NewVirtual()
	var activity uint64
	fired := 0
	r, err := NewRunner(RunnerConfig{
		Clock: v,
		Loops: []Loop{{
			Name:      "adaptive",
			Period:    10 * time.Millisecond,
			MaxPeriod: 500 * time.Millisecond,
			Activity:  func() uint64 { return activity },
			Tick:      func(context.Context) { fired++ },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// Back the loop off to its cap, then wake it: the next fire must land
	// within one base period, not after the stretched 500ms interval.
	v.Advance(2 * time.Second)
	fired = 0
	activity++
	r.Wake()
	v.Advance(10 * time.Millisecond)
	if fired == 0 {
		t.Fatal("woken loop did not fire within one base period")
	}
	if got := r.FireCount("adaptive"); got == 0 {
		t.Fatal("FireCount lost the woken loop's rounds")
	}
}

func TestRunnerQuiescentMaxValidation(t *testing.T) {
	d, err := NewDisseminator(DisseminatorConfig{Address: "mem://d", Caller: soap.NewMemBus()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(RunnerConfig{
		Disseminator: d,
		PullEvery:    time.Second,
		QuiescentMax: time.Second, // must strictly exceed the period
	}); err == nil {
		t.Fatal("quiescent max equal to a loop period must be rejected")
	}
	if _, err := NewRunner(RunnerConfig{
		Loops: []Loop{{
			Name:      "x",
			Period:    time.Second,
			MaxPeriod: time.Second / 2,
			Activity:  func() uint64 { return 0 },
			Tick:      func(context.Context) {},
		}},
	}); err == nil {
		t.Fatal("max period below period must be rejected")
	}
	if _, err := NewRunner(RunnerConfig{
		Loops: []Loop{{
			Name:      "x",
			Period:    time.Second,
			MaxPeriod: 2 * time.Second,
			Tick:      func(context.Context) {},
		}},
	}); err == nil {
		t.Fatal("adaptive loop without an activity probe must be rejected")
	}
}
