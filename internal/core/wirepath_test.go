package core

import (
	"context"
	"encoding/xml"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
)

// Tests of the encode-once wire path at the gossip layer: template fan-out,
// the splice-resistant fallback, and the lock-free stats counters.

// TestForwardEncodeOnce: a forwarded notification reaches every sampled
// target with the right hop budget, per-target To, and an intact body.
func TestForwardEncodeOnce(t *testing.T) {
	bus := soap.NewMemBus()
	type got struct {
		to   string
		hops int
		body quoteBody
	}
	var mu sync.Mutex
	var received []got
	for i := 0; i < 4; i++ {
		addr := "mem://peer" + strconv.Itoa(i)
		bus.Register(addr, soap.HandlerFunc(func(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
			gh, err := GossipHeaderFrom(req.Envelope)
			if err != nil {
				t.Errorf("forwarded message lost gossip header: %v", err)
				return nil, nil
			}
			var q quoteBody
			if err := req.Envelope.DecodeBody(&q); err != nil {
				t.Errorf("forwarded body: %v", err)
				return nil, nil
			}
			mu.Lock()
			received = append(received, got{to: req.Addressing().To, hops: gh.Hops, body: q})
			mu.Unlock()
			return nil, nil
		}))
	}
	d, err := NewDisseminator(DisseminatorConfig{
		Address: "mem://self", Caller: bus, RNG: rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	gh := GossipHeader{InteractionID: "urn:i", MessageID: "urn:uuid:m1", Hops: 5}
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To: "mem://self", Action: ActionNotify, MessageID: wsa.MessageID(gh.MessageID),
	}); err != nil {
		t.Fatal(err)
	}
	if err := SetGossipHeader(env, gh); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(quoteBody{Symbol: "ENC1", Price: 9.5}); err != nil {
		t.Fatal(err)
	}
	state := &interactionState{
		protocol: ProtocolPushGossip,
		params: GossipParameters{
			Fanout: 4, Hops: 5,
			Targets: []string{"mem://peer0", "mem://peer1", "mem://peer2", "mem://peer3"},
		},
	}
	d.forward(context.Background(), env, gh, state)

	if len(received) != 4 {
		t.Fatalf("deliveries = %d, want 4", len(received))
	}
	seen := map[string]bool{}
	for _, g := range received {
		if g.hops != 4 {
			t.Fatalf("forwarded hops = %d, want 4", g.hops)
		}
		if g.body.Symbol != "ENC1" || g.body.Price != 9.5 {
			t.Fatalf("forwarded body = %+v", g.body)
		}
		seen[g.to] = true
	}
	if len(seen) != 4 {
		t.Fatalf("per-target To headers = %v, want 4 distinct", seen)
	}
	if s := d.Stats(); s.Forwarded != 4 || s.SendErrors != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestForwardSpliceFallback: an envelope whose body carries prefixed
// namespace declarations cannot go through the verbatim splice template;
// the fan-out must fall back to per-target encoding and still deliver.
func TestForwardSpliceFallback(t *testing.T) {
	bus := soap.NewMemBus()
	var mu sync.Mutex
	deliveries := 0
	handler := soap.HandlerFunc(func(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
		var v struct {
			XMLName xml.Name `xml:"urn:px Data"`
			Value   string   `xml:",chardata"`
		}
		if err := req.Envelope.DecodeBody(&v); err != nil {
			t.Errorf("fallback body: %v", err)
			return nil, nil
		}
		if v.Value != "pfx" {
			t.Errorf("fallback body value = %q", v.Value)
		}
		mu.Lock()
		deliveries++
		mu.Unlock()
		return nil, nil
	})
	bus.Register("mem://peer0", handler)
	bus.Register("mem://peer1", handler)
	d, err := NewDisseminator(DisseminatorConfig{
		Address: "mem://self", Caller: bus, RNG: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	gh := GossipHeader{InteractionID: "urn:i", MessageID: "urn:uuid:pfx", Hops: 2}
	env := soap.NewEnvelope()
	if err := SetGossipHeader(env, gh); err != nil {
		t.Fatal(err)
	}
	// Hand-built block with a prefixed declaration: splice-resistant.
	env.Body.Blocks = []soap.Block{{
		XMLName: xml.Name{Space: "urn:px", Local: "Data"},
		Raw:     []byte(`<p:Data xmlns:p="urn:px">pfx</p:Data>`),
	}}
	if _, err := env.EncodeTemplate(); err == nil {
		t.Fatal("prefixed block unexpectedly spliceable; fallback not exercised")
	}
	state := &interactionState{
		protocol: ProtocolPushGossip,
		params:   GossipParameters{Fanout: 2, Hops: 2, Targets: []string{"mem://peer0", "mem://peer1"}},
	}
	d.forward(context.Background(), env, gh, state)
	if deliveries != 2 {
		t.Fatalf("fallback deliveries = %d, want 2", deliveries)
	}
	if s := d.Stats(); s.Forwarded != 2 || s.SendErrors != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestStoreSharesInboundBytes: the envelope store keeps a snapshot sharing
// the inbound capture, not a deep copy, and still serves intact fetches
// after the request envelope's headers are replaced (the forward path
// mutates block lists, never block bytes).
func TestStoreSharesInboundBytes(t *testing.T) {
	bus := soap.NewMemBus()
	d, err := NewDisseminator(DisseminatorConfig{
		Address: "mem://self", Caller: bus, RNG: rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://self", d.Handler())
	gh := GossipHeader{InteractionID: "urn:i", MessageID: "urn:uuid:s1", Hops: 0}
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To: "mem://self", Action: ActionNotify, MessageID: wsa.MessageID(gh.MessageID),
	}); err != nil {
		t.Fatal(err)
	}
	if err := SetGossipHeader(env, gh); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(quoteBody{Symbol: "SHR", Price: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(context.Background(), "mem://self", env); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	stored, ok := d.store.Get(gh.MessageID)
	d.mu.Unlock()
	if !ok {
		t.Fatal("notification not stored")
	}
	var q quoteBody
	if err := stored.DecodeBody(&q); err != nil {
		t.Fatal(err)
	}
	if q.Symbol != "SHR" {
		t.Fatalf("stored body = %+v", q)
	}
	if _, err := GossipHeaderFrom(stored); err != nil {
		t.Fatalf("stored gossip header: %v", err)
	}
}

// TestStatsConcurrent: the atomic counters tolerate concurrent updates from
// handler goroutines without the disseminator mutex (run under -race).
func TestStatsConcurrent(t *testing.T) {
	bus := soap.NewMemBus()
	d, err := NewDisseminator(DisseminatorConfig{
		Address: "mem://self", Caller: bus, RNG: rand.New(rand.NewSource(6)),
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://self", d.Handler())
	const workers = 8
	const msgs = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				gh := GossipHeader{
					InteractionID: "urn:i",
					MessageID:     "urn:uuid:c" + strconv.Itoa(w) + "-" + strconv.Itoa(i),
					Hops:          0,
				}
				env := soap.NewEnvelope()
				if err := env.SetAddressing(wsa.Headers{
					To: "mem://self", Action: ActionNotify, MessageID: wsa.MessageID(gh.MessageID),
				}); err != nil {
					t.Error(err)
					return
				}
				if err := SetGossipHeader(env, gh); err != nil {
					t.Error(err)
					return
				}
				if err := env.SetBody(quoteBody{Symbol: "CC", Price: float64(i)}); err != nil {
					t.Error(err)
					return
				}
				if err := bus.Send(context.Background(), "mem://self", env); err != nil {
					t.Error(err)
					return
				}
				_ = d.Stats() // concurrent snapshot reads
			}
		}(w)
	}
	wg.Wait()
	s := d.Stats()
	if s.Received != workers*msgs || s.Delivered != workers*msgs {
		t.Fatalf("stats = %+v, want %d received/delivered", s, workers*msgs)
	}
}
