package delivery

import "time"

// breaker is one peer's circuit state. It has no lock of its own: every
// field is guarded by the owning Plane's mutex, and every timestamp is an
// offset on the plane's clock.
//
// The state machine is the classic three-state breaker with a lazy
// half-open: closed → (threshold consecutive transport failures) → open →
// (cooldown elapses, next traffic becomes the single probe) → half-open →
// closed on probe success, back to open on probe failure. "Lazy" means no
// timer flips the state — openUntil is compared against the clock whenever
// traffic wants through, so an idle open circuit costs nothing and the
// probe is always a real message, never a synthetic ping.
type breaker struct {
	open      bool
	probing   bool // a half-open probe is in flight
	fails     int  // consecutive transport failures while closed
	openUntil time.Duration
}

// probeDue reports whether the cooldown has elapsed and no probe is in
// flight: the next message may be admitted as the half-open probe.
func (b *breaker) probeDue(now time.Duration) bool {
	return b.open && !b.probing && now >= b.openUntil
}

// state names for introspection.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// label returns the human-readable state name.
func (b *breaker) label() string {
	switch {
	case b.probing:
		return breakerHalfOpen
	case b.open:
		return breakerOpen
	default:
		return breakerClosed
	}
}
