// Package delivery is the failure-aware outbound plane between the gossip
// roles and the SOAP binding: the explicit policy layer between "fire" and
// "forget". The paper's dissemination model treats a lost send as something
// epidemic redundancy will repair; under production load a node also needs
// bounded buffering, bounded retry, and a way to stop hammering peers that
// are down or drowning. Plane supplies exactly that, as a transparent
// soap.Caller wrapper, so every existing fan-out — gossip
// forward/announce/repair/pull, aggregation floods, membership exchanges —
// routes through it unchanged.
//
// Per peer, a Plane keeps a bounded FIFO queue with a capped in-flight
// window, attempts each message with a per-attempt timeout, retries
// transient failures on jittered exponential backoff up to a per-message
// attempt budget, and runs a circuit breaker: consecutive transport
// failures open the circuit (fast-failing fresh sends so epidemic
// redundancy reroutes while queued messages wait), a cooldown later one
// half-open probe decides between closing and re-opening. A receiver that
// sheds load with a retry-after fault (soap.NewOverloadedFault, produced
// by Gate) defers the peer's whole queue for the hinted duration instead
// of counting toward the breaker — an overloaded peer is alive, just busy.
//
// Every policy timer rides the shared clock.Clock, so the full retry /
// backoff / breaker / deferral state machine is deterministic under
// clock.Virtual — the chaos scenarios in internal/scenario drive it
// through flapping links and saturated receivers and assert exact metric
// counts.
//
// Key types:
//
//   - Plane — the outbound plane; implements soap.Caller and
//     soap.EncodedSender. FilterView demotes open-circuit peers from peer
//     sampling; OnPeerDown reports breaker trips to the membership layer
//     (repeated delivery failure → suspect).
//   - Gate — the inbound half: a token-bucket admission gate, exposed as
//     soap.Middleware, that sheds excess requests with a Receiver fault
//     carrying the retry-after hint Plane honors.
//
// Instrumentation (via the node's metrics.Registry): delivery_attempts_total,
// delivery_retries_total, delivery_attempt_failures_total{kind},
// delivery_drops_total{reason}, delivery_deferrals_total,
// delivery_queue_depth, delivery_inflight, delivery_breaker_open,
// delivery_breaker_transitions_total{to}, delivery_attempt_seconds, and on
// the gate delivery_shed_total plus shed_requests_total{result}. All
// series are pre-resolved at construction, so the families are visible at
// boot and the hot path never touches a registry map.
package delivery
