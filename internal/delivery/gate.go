package delivery

import (
	"context"
	"sync"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
)

// GateConfig parameterizes an admission Gate.
type GateConfig struct {
	// Clock supplies the refill timebase; clock.Virtual makes shedding
	// deterministic in tests.
	Clock clock.Clock
	// Rate is the steady-state admission rate in requests per second.
	// Default 100.
	Rate float64
	// Burst is the bucket depth: how many requests may land back-to-back
	// after an idle stretch. Default max(1, Rate).
	Burst int
	// Exempt, when set, bypasses the gate for the given WS-Addressing
	// action — control-plane exchanges (membership, coordination) usually
	// should not be shed.
	Exempt func(action string) bool
	// Metrics receives delivery_shed_total and shed_requests_total{result};
	// nil means unobserved.
	Metrics *metrics.Registry
}

// Gate is a token-bucket admission controller for the inbound SOAP path:
// the receiver-side half of the overload contract. Requests beyond the
// configured rate are refused with a Receiver fault carrying a retry-after
// hint (soap.NewOverloadedFault) — the HTTP binding maps it to 503 +
// Retry-After, and a sending Plane honors it by deferring that peer's
// queue. Shedding early, before decode-heavy handler work, is what lets a
// saturated node degrade into pacing its senders instead of collapsing.
type Gate struct {
	cfg GateConfig
	m   *gateMetrics

	mu     sync.Mutex
	tokens float64
	last   time.Duration
}

// NewGate builds a gate with a full bucket.
func NewGate(cfg GateConfig) *Gate {
	if cfg.Clock == nil {
		panic("delivery: GateConfig.Clock is required")
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	if cfg.Burst <= 0 {
		cfg.Burst = int(cfg.Rate)
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &Gate{
		cfg:    cfg,
		m:      newGateMetrics(cfg.Metrics),
		tokens: float64(cfg.Burst),
		last:   cfg.Clock.Now(),
	}
}

// Admit consumes one token if available. When the bucket is empty it
// returns false and the duration after which one token will have
// refilled — the retry-after hint to send back.
func (g *Gate) Admit() (retryAfter time.Duration, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.cfg.Clock.Now()
	if now > g.last {
		g.tokens += (now - g.last).Seconds() * g.cfg.Rate
		if max := float64(g.cfg.Burst); g.tokens > max {
			g.tokens = max
		}
		g.last = now
	}
	if g.tokens >= 1 {
		g.tokens--
		g.m.admitted.Inc()
		return 0, true
	}
	deficit := 1 - g.tokens
	retryAfter = time.Duration(deficit / g.cfg.Rate * float64(time.Second))
	g.m.shed.Inc()
	g.m.refused.Inc()
	return retryAfter, false
}

// Shed returns the number of requests refused so far (the
// delivery_shed_total counter).
func (g *Gate) Shed() int64 { return g.m.shed.Value() }

// Middleware exposes the gate as a soap.Middleware: wrap a node's
// dispatcher (or a single handler) and every non-exempt request pays one
// token or is shed with the retry-after fault.
func (g *Gate) Middleware() soap.Middleware {
	return func(next soap.Handler) soap.Handler {
		return soap.HandlerFunc(func(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
			if g.cfg.Exempt != nil && g.cfg.Exempt(req.Addressing().Action) {
				g.m.exempt.Inc()
				return next.HandleSOAP(ctx, req)
			}
			if retryAfter, ok := g.Admit(); !ok {
				return nil, soap.NewOverloadedFault("admission rate exceeded", retryAfter)
			}
			return next.HandleSOAP(ctx, req)
		})
	}
}
