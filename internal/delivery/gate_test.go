package delivery

import (
	"context"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
)

func TestGateBurstThenShed(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	g := NewGate(GateConfig{Clock: clk, Rate: 10, Burst: 3, Metrics: reg})

	for i := 0; i < 3; i++ {
		if _, ok := g.Admit(); !ok {
			t.Fatalf("burst request %d shed", i)
		}
	}
	retryAfter, ok := g.Admit()
	if ok {
		t.Fatal("request beyond the burst admitted")
	}
	// Empty bucket at 10 tokens/s: one token refills in exactly 100ms.
	if retryAfter != 100*time.Millisecond {
		t.Fatalf("retry-after = %v, want 100ms", retryAfter)
	}
	if got := g.Shed(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	if got := reg.Counter("delivery_shed_total").Value(); got != 1 {
		t.Fatalf("delivery_shed_total = %d, want 1", got)
	}
	if got := counterValue(reg, "shed_requests_total", "result", "admitted"); got != 3 {
		t.Fatalf("admitted = %d, want 3", got)
	}

	// The hint is honest: after exactly that long, one request fits.
	clk.Advance(retryAfter)
	if _, ok := g.Admit(); !ok {
		t.Fatal("request after the hinted refill shed")
	}
	if _, ok := g.Admit(); ok {
		t.Fatal("second request admitted on a single refilled token")
	}
}

func TestGateRefillCapsAtBurst(t *testing.T) {
	clk := clock.NewVirtual()
	g := NewGate(GateConfig{Clock: clk, Rate: 10, Burst: 2})
	clk.Advance(time.Hour) // long idle must not bank unlimited tokens
	admitted := 0
	for i := 0; i < 10; i++ {
		if _, ok := g.Admit(); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d back-to-back, want the burst of 2", admitted)
	}
}

func TestGateMiddlewareShedsWithFault(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	g := NewGate(GateConfig{
		Clock:   clk,
		Rate:    10,
		Burst:   1,
		Metrics: reg,
		Exempt:  func(action string) bool { return action == "urn:control" },
	})
	var handled int
	h := soap.Chain(soap.HandlerFunc(func(context.Context, *soap.Request) (*soap.Envelope, error) {
		handled++
		return nil, nil
	}), g.Middleware())

	req := func(action string) *soap.Request {
		env := testEnv(t, "x")
		a := env.Addressing()
		a.Action = action
		if err := env.SetAddressing(a); err != nil {
			t.Fatal(err)
		}
		return &soap.Request{Envelope: env}
	}

	if _, err := h.HandleSOAP(context.Background(), req("urn:data")); err != nil {
		t.Fatalf("first request: %v", err)
	}
	_, err := h.HandleSOAP(context.Background(), req("urn:data"))
	if err == nil {
		t.Fatal("second request not shed")
	}
	hint, ok := soap.RetryAfterHint(err)
	if !ok || hint != 100*time.Millisecond {
		t.Fatalf("hint = (%v, %v), want (100ms, true)", hint, ok)
	}
	if soap.IsSenderFault(err) {
		t.Fatal("shed fault blames the sender")
	}

	// Control-plane actions bypass the empty bucket.
	if _, err := h.HandleSOAP(context.Background(), req("urn:control")); err != nil {
		t.Fatalf("exempt request shed: %v", err)
	}
	if handled != 2 {
		t.Fatalf("handled = %d, want 2", handled)
	}
	if got := counterValue(reg, "shed_requests_total", "result", "exempt"); got != 1 {
		t.Fatalf("exempt = %d, want 1", got)
	}
	if got := counterValue(reg, "shed_requests_total", "result", "shed"); got != 1 {
		t.Fatalf("shed results = %d, want 1", got)
	}
}

// syncBus delivers one-way sends synchronously and surfaces the handler's
// error to the sender — the behaviour of the HTTP binding, where a send is
// a POST and a fault comes back as the response status.
type syncBus struct{ handlers map[string]soap.Handler }

func (b *syncBus) route(ctx context.Context, to string, env *soap.Envelope) (*soap.Envelope, error) {
	h, ok := b.handlers[to]
	if !ok {
		return nil, soap.ErrUnknownEndpoint
	}
	data, err := env.Encode()
	if err != nil {
		return nil, err
	}
	decoded, err := soap.Decode(data)
	if err != nil {
		return nil, err
	}
	return h.HandleSOAP(ctx, &soap.Request{Envelope: decoded, Remote: "syncbus"})
}

func (b *syncBus) Call(ctx context.Context, to string, env *soap.Envelope) (*soap.Envelope, error) {
	return b.route(ctx, to, env)
}

func (b *syncBus) Send(ctx context.Context, to string, env *soap.Envelope) error {
	_, err := b.route(ctx, to, env)
	return err
}

// TestGatePlaneContract closes the loop: a plane sending into a gated
// handler sees the shed fault, defers, retries after the hint, and lands.
func TestGatePlaneContract(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	g := NewGate(GateConfig{Clock: clk, Rate: 10, Burst: 1, Metrics: reg})

	var delivered int
	bus := &syncBus{handlers: map[string]soap.Handler{
		"mem://recv": soap.Chain(soap.HandlerFunc(
			func(context.Context, *soap.Request) (*soap.Envelope, error) {
				delivered++
				return nil, nil
			}), g.Middleware()),
	}}

	p := NewPlane(testConfig(bus, clk, reg))
	if err := p.Send(context.Background(), "mem://recv", testEnv(t, "m1")); err != nil {
		t.Fatalf("send 1: %v", err)
	}
	if err := p.Send(context.Background(), "mem://recv", testEnv(t, "m2")); err != nil {
		t.Fatalf("send 2: %v (should be shed, deferred, and retried)", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 before the deferral elapses", delivered)
	}
	clk.Advance(100 * time.Millisecond)
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 after the deferral", delivered)
	}
	if got := reg.Counter("delivery_shed_total").Value(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	if got := reg.Counter("delivery_retries_total").Value(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if got := reg.Counter("delivery_deferrals_total").Value(); got != 1 {
		t.Fatalf("deferrals = %d, want 1", got)
	}
}
