package delivery

import "wsgossip/internal/metrics"

// planeMetrics holds the plane's pre-resolved series. Labels are bounded
// (failure kind, drop reason, breaker transition) — never per-peer, which
// would make cardinality grow with the overlay; per-peer detail is served
// by Plane.States for the health endpoint instead.
type planeMetrics struct {
	attempts      *metrics.Counter         // delivery_attempts_total
	retries       *metrics.Counter         // delivery_retries_total
	failTransport *metrics.Counter         // delivery_attempt_failures_total{kind="transport"}
	failShed      *metrics.Counter         // delivery_attempt_failures_total{kind="shed"}
	failSender    *metrics.Counter         // delivery_attempt_failures_total{kind="sender_fault"}
	dropQueueFull *metrics.Counter         // delivery_drops_total{reason="queue_full"}
	dropCircuit   *metrics.Counter         // delivery_drops_total{reason="circuit_open"}
	dropBudget    *metrics.Counter         // delivery_drops_total{reason="budget"}
	dropSender    *metrics.Counter         // delivery_drops_total{reason="sender_fault"}
	dropClosed    *metrics.Counter         // delivery_drops_total{reason="closed"}
	deferrals     *metrics.Counter         // delivery_deferrals_total
	queueDepth    *metrics.Gauge           // delivery_queue_depth (all peers)
	inflight      *metrics.Gauge           // delivery_inflight (all peers)
	breakerOpen   *metrics.Gauge           // delivery_breaker_open (open circuits)
	transOpen     *metrics.Counter         // delivery_breaker_transitions_total{to="open"}
	transClosed   *metrics.Counter         // delivery_breaker_transitions_total{to="closed"}
	attemptSec    *metrics.BucketHistogram // delivery_attempt_seconds
}

// newPlaneMetrics resolves every plane series from reg; a nil reg gets a
// private throwaway registry so the hot path never branches on "metrics
// installed?".
func newPlaneMetrics(reg *metrics.Registry) *planeMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	fail := reg.CounterVec("delivery_attempt_failures_total", "kind")
	drop := reg.CounterVec("delivery_drops_total", "reason")
	trans := reg.CounterVec("delivery_breaker_transitions_total", "to")
	return &planeMetrics{
		attempts:      reg.Counter("delivery_attempts_total"),
		retries:       reg.Counter("delivery_retries_total"),
		failTransport: fail.With("transport"),
		failShed:      fail.With("shed"),
		failSender:    fail.With("sender_fault"),
		dropQueueFull: drop.With("queue_full"),
		dropCircuit:   drop.With("circuit_open"),
		dropBudget:    drop.With("budget"),
		dropSender:    drop.With("sender_fault"),
		dropClosed:    drop.With("closed"),
		deferrals:     reg.Counter("delivery_deferrals_total"),
		queueDepth:    reg.Gauge("delivery_queue_depth"),
		inflight:      reg.Gauge("delivery_inflight"),
		breakerOpen:   reg.Gauge("delivery_breaker_open"),
		transOpen:     trans.With("open"),
		transClosed:   trans.With("closed"),
		attemptSec:    reg.BucketHistogram("delivery_attempt_seconds", metrics.DefLatencyBuckets),
	}
}

// gateMetrics holds the admission gate's pre-resolved series.
type gateMetrics struct {
	shed     *metrics.Counter // delivery_shed_total
	admitted *metrics.Counter // shed_requests_total{result="admitted"}
	refused  *metrics.Counter // shed_requests_total{result="shed"}
	exempt   *metrics.Counter // shed_requests_total{result="exempt"}
}

func newGateMetrics(reg *metrics.Registry) *gateMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	res := reg.CounterVec("shed_requests_total", "result")
	return &gateMetrics{
		shed:     reg.Counter("delivery_shed_total"),
		admitted: res.With("admitted"),
		refused:  res.With("shed"),
		exempt:   res.With("exempt"),
	}
}
