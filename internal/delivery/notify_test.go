package delivery

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/metrics"
)

// settleRecorder captures settlement callbacks and asserts exactly-once.
type settleRecorder struct {
	mu    sync.Mutex
	calls []error
}

func (r *settleRecorder) settle(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, err)
}

func (r *settleRecorder) snapshot() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]error(nil), r.calls...)
}

func encodedEnv(t *testing.T, text string) []byte {
	t.Helper()
	data, err := testEnv(t, text).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestNotifySettlesNilOnInlineSuccess(t *testing.T) {
	clk := clock.NewVirtual()
	caller := &encodedScripted{*newScripted()}
	p := NewPlane(testConfig(caller, clk, metrics.NewRegistry()))
	var rec settleRecorder

	if err := p.SendEncodedNotify(context.Background(), "urn:peer", encodedEnv(t, "x"), rec.settle); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got := rec.snapshot(); len(got) != 1 || got[0] != nil {
		t.Fatalf("settle calls = %v, want exactly one nil", got)
	}
}

func TestNotifySettlesOnceAfterRetries(t *testing.T) {
	clk := clock.NewVirtual()
	caller := &encodedScripted{*newScripted()}
	caller.script("urn:peer", errConnRefused) // first attempt fails, retry lands
	p := NewPlane(testConfig(caller, clk, metrics.NewRegistry()))
	var rec settleRecorder

	if err := p.SendEncodedNotify(context.Background(), "urn:peer", encodedEnv(t, "x"), rec.settle); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("settled before the retry resolved: %v", got)
	}
	clk.Advance(100 * time.Millisecond)
	if got := rec.snapshot(); len(got) != 1 || got[0] != nil {
		t.Fatalf("settle calls = %v, want exactly one nil after the retry", got)
	}
}

func TestNotifySettlesBudgetExhaustion(t *testing.T) {
	clk := clock.NewVirtual()
	caller := &encodedScripted{*newScripted()}
	caller.script("urn:peer", errConnRefused, errConnRefused, errConnRefused)
	p := NewPlane(testConfig(caller, clk, metrics.NewRegistry())) // MaxAttempts: 3
	var rec settleRecorder

	if err := p.SendEncodedNotify(context.Background(), "urn:peer", encodedEnv(t, "x"), rec.settle); err != nil {
		t.Fatalf("send: %v", err)
	}
	for i := 0; i < 20; i++ {
		clk.Advance(time.Second)
	}
	got := rec.snapshot()
	if len(got) != 1 || !errors.Is(got[0], ErrBudgetExhausted) {
		t.Fatalf("settle calls = %v, want exactly one ErrBudgetExhausted", got)
	}
}

func TestNotifyFastFailSettlesAndReturns(t *testing.T) {
	clk := clock.NewVirtual()
	caller := &encodedScripted{*newScripted()}
	p := NewPlane(testConfig(caller, clk, metrics.NewRegistry()))
	p.Close()
	var rec settleRecorder

	err := p.SendEncodedNotify(context.Background(), "urn:peer", encodedEnv(t, "x"), rec.settle)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed plane = %v, want ErrClosed", err)
	}
	got := rec.snapshot()
	if len(got) != 1 || !errors.Is(got[0], ErrClosed) {
		t.Fatalf("settle calls = %v, want exactly one ErrClosed", got)
	}
}

func TestNotifyCloseSettlesQueuedBacklog(t *testing.T) {
	clk := clock.NewVirtual()
	caller := &encodedScripted{*newScripted()}
	caller.script("urn:peer", errConnRefused) // park the message in backoff
	p := NewPlane(testConfig(caller, clk, metrics.NewRegistry()))
	var rec settleRecorder

	if err := p.SendEncodedNotify(context.Background(), "urn:peer", encodedEnv(t, "x"), rec.settle); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("settled while queued: %v", got)
	}
	p.Close()
	got := rec.snapshot()
	if len(got) != 1 || !errors.Is(got[0], ErrClosed) {
		t.Fatalf("settle calls = %v, want exactly one ErrClosed", got)
	}
}
