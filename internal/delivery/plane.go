package delivery

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
)

// Fast-failure sentinels: a Send returning one of these means the plane
// refused responsibility for the message and the caller should treat the
// target as failed (soap.Fanout adds it to the failed list and epidemic
// redundancy reroutes).
var (
	// ErrQueueFull reports a peer whose bounded outbound queue is at
	// capacity.
	ErrQueueFull = errors.New("delivery: peer queue full")
	// ErrCircuitOpen reports a peer whose circuit breaker is open and not
	// yet due for a probe.
	ErrCircuitOpen = errors.New("delivery: circuit open")
	// ErrBudgetExhausted reports a message that consumed its whole attempt
	// budget without landing.
	ErrBudgetExhausted = errors.New("delivery: attempt budget exhausted")
	// ErrClosed reports a send after Close.
	ErrClosed = errors.New("delivery: plane closed")
)

// Config parameterizes a Plane. Caller and Clock are required; every
// numeric field falls back to the listed default when zero.
type Config struct {
	// Caller is the underlying binding. When it also implements
	// soap.EncodedSender the plane encodes once and retries the same
	// buffer; otherwise it retains a Clone of queued envelopes.
	Caller soap.Caller
	// Clock drives every policy timer (backoff, cooldown, deferral,
	// attempt timeout). Under clock.Virtual the whole plane is
	// deterministic.
	Clock clock.Clock
	// RNG seeds backoff jitter. Defaults to a fixed-seed source; pass the
	// node's seeded RNG for scenario determinism.
	RNG *rand.Rand
	// Metrics receives the delivery_* series; nil means unobserved.
	Metrics *metrics.Registry
	// QueueCap bounds each peer's outbound queue. Default 64.
	QueueCap int
	// MaxInflight caps concurrent attempts per peer. Default 1, which
	// also keeps per-peer delivery order FIFO.
	MaxInflight int
	// AttemptTimeout cancels a single attempt's context. Default 2s.
	AttemptTimeout time.Duration
	// MaxAttempts is the per-message budget, first try included. Default 4.
	MaxAttempts int
	// BackoffBase is the nominal delay before the first retry; each
	// further retry doubles it (jittered to [d/2, d]). Default 100ms.
	BackoffBase time.Duration
	// BackoffMax caps the doubling. Default 5s.
	BackoffMax time.Duration
	// BreakerThreshold is the consecutive-transport-failure count that
	// opens a peer's circuit. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fast-fails before
	// admitting a half-open probe. Default 5s.
	BreakerCooldown time.Duration
	// OnPeerDown, when set, runs (outside the plane's lock) each time a
	// peer's circuit transitions closed → open — the hook the membership
	// layer uses to mark the peer suspect (or, with an indirect prober
	// interposed, to open a confirmation round first).
	OnPeerDown func(addr string)
	// OnPeerUp, when set, runs (outside the plane's lock) each time a
	// peer's circuit transitions open → closed — the direct path works
	// again, so probe-derived degraded marks can be cleared.
	OnPeerUp func(addr string)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.QueueCap <= 0 {
		out.QueueCap = 64
	}
	if out.MaxInflight <= 0 {
		out.MaxInflight = 1
	}
	if out.AttemptTimeout <= 0 {
		out.AttemptTimeout = 2 * time.Second
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 4
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 100 * time.Millisecond
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = 5 * time.Second
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 5
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = 5 * time.Second
	}
	return out
}

// item is one queued message: encoded bytes when the binding supports
// SendEncoded (retries reuse the buffer — on attempt failure the binding
// leaves ownership with us, on success it recycles), an envelope otherwise.
type item struct {
	data     []byte
	env      *soap.Envelope
	owned    bool // env is a plane-private Clone, safe to retain
	attempts int
	// settle, when set (SendEncodedNotify), is called exactly once at the
	// message's terminal settlement: nil when an attempt landed, the
	// terminal error when the plane gave up. Always invoked outside the
	// plane lock.
	settle func(error)
}

// takeSettle detaches the settle callback bound to err as a deferred call,
// chained after notify. Detaching under the lock is what makes the
// exactly-once guarantee hold across retries, pumps, and Close.
func (it *item) takeSettle(notify func(), err error) func() {
	if it.settle == nil {
		return notify
	}
	s := it.settle
	it.settle = nil
	if notify == nil {
		return func() { s(err) }
	}
	return func() { notify(); s(err) }
}

// peerState is the per-peer half of the plane: the queue, the in-flight
// window, the breaker, and the timestamps the pump gates on. All fields
// are guarded by Plane.mu.
type peerState struct {
	addr         string
	queue        []*item
	inflight     int
	deferUntil   time.Duration // retry-after deferral from a shedding peer
	backoffUntil time.Duration // retry backoff from the last transport failure
	pumpAt       time.Duration // fire time of the scheduled pump, if any
	stopPump     func() bool
	br           breaker
}

// Plane is the failure-aware outbound delivery plane. It implements
// soap.Caller and soap.EncodedSender, so it slots between any role and the
// real binding: role code keeps calling Send/Fanout, the plane decides
// what "send" means for each peer right now.
//
// Send semantics: a nil return means the plane took responsibility — the
// message was delivered, or is queued and will be retried within its
// budget. An error return means the plane refused (queue full, circuit
// open, closed) or the receiver permanently rejected the bytes (Sender
// fault); the message will not be retried.
type Plane struct {
	cfg Config
	enc soap.EncodedSender // non-nil when cfg.Caller supports it
	m   *planeMetrics

	mu     sync.Mutex
	rng    *rand.Rand
	peers  map[string]*peerState
	closed bool
}

var (
	_ soap.Caller        = (*Plane)(nil)
	_ soap.EncodedSender = (*Plane)(nil)
)

// NewPlane wraps cfg.Caller in a delivery plane.
func NewPlane(cfg Config) *Plane {
	if cfg.Caller == nil {
		panic("delivery: Config.Caller is required")
	}
	if cfg.Clock == nil {
		panic("delivery: Config.Clock is required")
	}
	p := &Plane{
		cfg:   cfg.withDefaults(),
		m:     newPlaneMetrics(cfg.Metrics),
		rng:   cfg.RNG,
		peers: make(map[string]*peerState),
	}
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(1))
	}
	if es, ok := cfg.Caller.(soap.EncodedSender); ok {
		p.enc = es
	}
	return p
}

// Send routes a one-way message through the peer's queue/retry/breaker
// policy. See Plane for the nil-vs-error contract. The envelope is not
// retained unless it must be queued, in which case the plane keeps a
// private Clone.
func (p *Plane) Send(ctx context.Context, to string, env *soap.Envelope) error {
	if p.enc != nil {
		data, err := env.Encode()
		if err != nil {
			return err
		}
		return p.SendEncoded(ctx, to, data)
	}
	return p.submit(ctx, to, &item{env: env})
}

// SendEncoded routes an already-serialized message. Ownership follows the
// soap.EncodedSender contract: on a nil return the plane owns data (and
// passes ownership on to the binding when the attempt lands); on an error
// return data stays with the caller.
func (p *Plane) SendEncoded(ctx context.Context, to string, data []byte) error {
	if p.enc == nil {
		// Underlying binding can't take bytes; decode back to an envelope.
		env, err := soap.Decode(data)
		if err != nil {
			return err
		}
		return p.submit(ctx, to, &item{env: env})
	}
	return p.submit(ctx, to, &item{data: data})
}

// SendEncodedNotify is SendEncoded plus a settlement callback: settle runs
// exactly once when the plane is finally done with the message — with nil
// once an attempt lands at the binding, or with the terminal error when the
// plane gives up (fast-fail, retry budget spent, queue overflow, close).
// The callback fires outside the plane's lock and may re-enter the plane.
// It is how a sender with its own end-to-end contract (the aggregate
// exchange's acked shares) learns that a peer is not taking traffic without
// polling: settlement errors feed suspicion, never mass accounting — only
// the receiver's protocol-level ack can prove delivery.
func (p *Plane) SendEncodedNotify(ctx context.Context, to string, data []byte, settle func(error)) error {
	if p.enc == nil {
		env, err := soap.Decode(data)
		if err != nil {
			return err
		}
		return p.submit(ctx, to, &item{env: env, settle: settle})
	}
	return p.submit(ctx, to, &item{data: data, settle: settle})
}

// Call performs a request-response exchange through the breaker (open
// circuit → ErrCircuitOpen, due circuit → the call is the probe) with the
// per-attempt timeout applied. Calls are control-plane traffic: they are
// never queued or retried, and deferral does not hold them back — the
// response is needed now or not at all.
func (p *Plane) Call(ctx context.Context, to string, env *soap.Envelope) (*soap.Envelope, error) {
	p.mu.Lock()
	if p.closed {
		p.m.dropClosed.Inc()
		p.mu.Unlock()
		return nil, ErrClosed
	}
	ps := p.peerLocked(to)
	now := p.cfg.Clock.Now()
	if ps.br.open {
		if ps.br.probeDue(now) && ps.inflight == 0 && len(ps.queue) == 0 {
			ps.br.probing = true
		} else {
			p.m.dropCircuit.Inc()
			p.mu.Unlock()
			return nil, ErrCircuitOpen
		}
	}
	ps.inflight++
	p.m.inflight.Add(1)
	p.mu.Unlock()

	p.m.attempts.Inc()
	actx, cancel := context.WithCancel(orBackground(ctx))
	stopTimeout := p.cfg.Clock.AfterFunc(p.cfg.AttemptTimeout, cancel)
	start := p.cfg.Clock.Now()
	resp, err := p.cfg.Caller.Call(actx, to, env)
	stopTimeout()
	cancel()
	p.m.attemptSec.Observe((p.cfg.Clock.Now() - start).Seconds())

	var notify func()
	p.mu.Lock()
	ps.inflight--
	p.m.inflight.Add(-1)
	now = p.cfg.Clock.Now()
	switch {
	case err == nil:
		notify = p.noteSuccessLocked(ps)
	case soap.IsSenderFault(err):
		p.m.failSender.Inc()
		notify = p.noteSuccessLocked(ps) // the peer answered; our request was bad
	default:
		if hint, ok := soap.RetryAfterHint(err); ok {
			p.m.failShed.Inc()
			p.m.deferrals.Inc()
			p.deferLocked(ps, now, hint)
			notify = p.noteSuccessLocked(ps) // overloaded ≠ down
		} else {
			p.m.failTransport.Inc()
			notify = p.noteFailureLocked(ps, now)
		}
	}
	p.schedulePumpLocked(ps, now)
	p.mu.Unlock()
	if notify != nil {
		notify()
	}
	return resp, err
}

// submit is the shared one-way entry: decide inline attempt vs queue vs
// fast-fail under the lock, attempt outside it.
func (p *Plane) submit(ctx context.Context, to string, it *item) error {
	p.mu.Lock()
	if p.closed {
		p.m.dropClosed.Inc()
		p.mu.Unlock()
		return p.failFast(it, ErrClosed)
	}
	ps := p.peerLocked(to)
	now := p.cfg.Clock.Now()
	if ps.br.open {
		// A due circuit with nothing queued lets the fresh message probe;
		// otherwise fresh sends fast-fail so the fan-out reroutes while
		// the queued backlog waits for its pump.
		if ps.br.probeDue(now) && len(ps.queue) == 0 && ps.inflight == 0 {
			ps.br.probing = true
		} else {
			p.m.dropCircuit.Inc()
			p.mu.Unlock()
			return p.failFast(it, ErrCircuitOpen)
		}
	}
	if !ps.br.probing &&
		(len(ps.queue) > 0 || ps.inflight >= p.cfg.MaxInflight ||
			ps.deferUntil > now || ps.backoffUntil > now) {
		if !p.enqueueLocked(ps, it, false) {
			p.m.dropQueueFull.Inc()
			p.mu.Unlock()
			return p.failFast(it, ErrQueueFull)
		}
		p.schedulePumpLocked(ps, now)
		p.mu.Unlock()
		return nil
	}
	ps.inflight++
	p.m.inflight.Add(1)
	p.mu.Unlock()

	err := p.attempt(ctx, to, it)

	p.mu.Lock()
	ps.inflight--
	p.m.inflight.Add(-1)
	ret, notify := p.settleLocked(ps, it, err)
	p.mu.Unlock()
	if notify != nil {
		notify()
	}
	return ret
}

// failFast settles a refused message (never enqueued, never attempted)
// and surfaces the refusal. Called without the lock.
func (p *Plane) failFast(it *item, err error) error {
	if fin := it.takeSettle(nil, err); fin != nil {
		fin()
	}
	return err
}

// attempt performs one real send with the per-attempt timeout. Called
// without the plane lock; the item is owned by exactly one attempt at a
// time.
func (p *Plane) attempt(ctx context.Context, to string, it *item) error {
	it.attempts++
	p.m.attempts.Inc()
	if it.attempts > 1 {
		p.m.retries.Inc()
	}
	actx, cancel := context.WithCancel(orBackground(ctx))
	stopTimeout := p.cfg.Clock.AfterFunc(p.cfg.AttemptTimeout, cancel)
	start := p.cfg.Clock.Now()
	var err error
	if it.data != nil {
		err = p.enc.SendEncoded(actx, to, it.data)
	} else {
		err = p.cfg.Caller.Send(actx, to, it.env)
	}
	stopTimeout()
	cancel()
	p.m.attemptSec.Observe((p.cfg.Clock.Now() - start).Seconds())
	return err
}

// settleLocked classifies one attempt's outcome and updates the breaker,
// deferral, and queue accordingly. It returns the error the submitter
// should surface (nil when the plane keeps responsibility) and the
// OnPeerDown/OnPeerUp hook to run after unlocking, if the circuit just
// transitioned.
func (p *Plane) settleLocked(ps *peerState, it *item, err error) (ret error, notify func()) {
	now := p.cfg.Clock.Now()
	switch {
	case err == nil:
		notify = p.noteSuccessLocked(ps)
		p.schedulePumpLocked(ps, now)
		return nil, it.takeSettle(notify, nil)
	case soap.IsSenderFault(err):
		// The receiver is alive and rejected these bytes for good: drop
		// the message, never the peer.
		p.m.failSender.Inc()
		p.m.dropSender.Inc()
		notify = p.noteSuccessLocked(ps)
		p.schedulePumpLocked(ps, now)
		return err, it.takeSettle(notify, err)
	default:
		if hint, ok := soap.RetryAfterHint(err); ok {
			p.m.failShed.Inc()
			p.m.deferrals.Inc()
			p.deferLocked(ps, now, hint)
			notify = p.noteSuccessLocked(ps)
			ret = p.requeueLocked(ps, it, now)
		} else {
			p.m.failTransport.Inc()
			notify = p.noteFailureLocked(ps, now)
			ps.backoffUntil = now + p.backoffLocked(it.attempts)
			ret = p.requeueLocked(ps, it, now)
		}
		// Re-arm the pump even when this item was dropped (budget spent,
		// queue full): messages behind it must not be stranded — with the
		// breaker open, fresh sends fast-fail and would never revive them.
		p.schedulePumpLocked(ps, now)
		if ret != nil {
			// Terminal drop: the requeue was refused, the message is gone.
			notify = it.takeSettle(notify, ret)
		}
		return ret, notify
	}
}

// requeueLocked puts a failed item back at the head of its peer's queue
// for the next pump, unless its budget is spent or the queue is full.
func (p *Plane) requeueLocked(ps *peerState, it *item, now time.Duration) error {
	if it.attempts >= p.cfg.MaxAttempts {
		p.m.dropBudget.Inc()
		return ErrBudgetExhausted
	}
	if !p.enqueueLocked(ps, it, true) {
		p.m.dropQueueFull.Inc()
		return ErrQueueFull
	}
	p.schedulePumpLocked(ps, now)
	return nil
}

// enqueueLocked appends (or, for retries, prepends — preserving FIFO
// delivery order) it to the peer's bounded queue, cloning a caller-owned
// envelope on first retention.
func (p *Plane) enqueueLocked(ps *peerState, it *item, front bool) bool {
	if len(ps.queue) >= p.cfg.QueueCap {
		return false
	}
	if it.env != nil && !it.owned {
		it.env = it.env.Clone()
		it.owned = true
	}
	if front {
		ps.queue = append(ps.queue, nil)
		copy(ps.queue[1:], ps.queue)
		ps.queue[0] = it
	} else {
		ps.queue = append(ps.queue, it)
	}
	p.m.queueDepth.Add(1)
	return true
}

// noteSuccessLocked resets the peer's failure streak and closes an open
// circuit (successful half-open probe, or a send that landed anyway). It
// returns the OnPeerUp hook to run after unlocking when the circuit just
// closed.
func (p *Plane) noteSuccessLocked(ps *peerState) (up func()) {
	ps.br.fails = 0
	if ps.br.open {
		ps.br.open = false
		ps.br.probing = false
		p.m.transClosed.Inc()
		p.m.breakerOpen.Add(-1)
		if hook := p.cfg.OnPeerUp; hook != nil {
			addr := ps.addr
			return func() { hook(addr) }
		}
	}
	return nil
}

// noteFailureLocked records a transport failure against the breaker and
// returns the OnPeerDown hook when this failure opened the circuit.
func (p *Plane) noteFailureLocked(ps *peerState, now time.Duration) (down func()) {
	ps.br.fails++
	if ps.br.open {
		if ps.br.probing {
			// Failed half-open probe: stay open, restart the cooldown.
			ps.br.probing = false
			ps.br.openUntil = now + p.cfg.BreakerCooldown
		}
		return nil
	}
	if ps.br.fails >= p.cfg.BreakerThreshold {
		ps.br.open = true
		ps.br.openUntil = now + p.cfg.BreakerCooldown
		p.m.transOpen.Inc()
		p.m.breakerOpen.Add(1)
		if hook := p.cfg.OnPeerDown; hook != nil {
			addr := ps.addr
			return func() { hook(addr) }
		}
	}
	return nil
}

// deferLocked extends the peer's retry-after deferral window.
func (p *Plane) deferLocked(ps *peerState, now time.Duration, hint time.Duration) {
	if until := now + hint; until > ps.deferUntil {
		ps.deferUntil = until
	}
}

// backoffLocked returns the jittered exponential delay before retry number
// attempts+1: nominal base<<(attempts-1) capped at BackoffMax, drawn
// uniformly from [d/2, d].
func (p *Plane) backoffLocked(attempts int) time.Duration {
	d := p.cfg.BackoffMax
	if attempts < 20 {
		if nominal := p.cfg.BackoffBase << (attempts - 1); nominal < d {
			d = nominal
		}
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(p.rng.Int63n(int64(half)+1))
}

// schedulePumpLocked (re)arms the peer's pump timer for the earliest
// instant its head-of-queue message may be attempted: now, or when the
// deferral / retry backoff / breaker cooldown expires, whichever is
// latest. A pump already armed for an earlier instant is left alone — it
// re-derives the gates when it fires.
func (p *Plane) schedulePumpLocked(ps *peerState, now time.Duration) {
	if p.closed || len(ps.queue) == 0 || ps.inflight >= p.cfg.MaxInflight {
		return
	}
	if ps.br.open && ps.br.probing {
		return // the in-flight probe's outcome reschedules
	}
	at := now
	if ps.deferUntil > at {
		at = ps.deferUntil
	}
	if ps.backoffUntil > at {
		at = ps.backoffUntil
	}
	if ps.br.open && ps.br.openUntil > at {
		at = ps.br.openUntil
	}
	if ps.stopPump != nil {
		if ps.pumpAt <= at {
			return
		}
		ps.stopPump()
	}
	addr := ps.addr
	ps.pumpAt = at
	ps.stopPump = p.cfg.Clock.AfterFunc(at-now, func() { p.pump(addr) })
}

// pump drains a peer's queue: attempt the head message, and on success
// keep going; on failure settleLocked has already armed the backoff /
// cooldown / deferral pump, so stop. Runs on the clock's firing goroutine
// — under clock.Virtual that is the Advance caller, which is what makes
// the whole retry schedule deterministic.
func (p *Plane) pump(addr string) {
	var notifies []func()
	p.mu.Lock()
	ps, ok := p.peers[addr]
	if !ok {
		p.mu.Unlock()
		return
	}
	ps.pumpAt = 0
	ps.stopPump = nil
	for {
		if p.closed || len(ps.queue) == 0 || ps.inflight >= p.cfg.MaxInflight {
			break
		}
		now := p.cfg.Clock.Now()
		if ps.deferUntil > now || ps.backoffUntil > now {
			p.schedulePumpLocked(ps, now)
			break
		}
		if ps.br.open {
			if !ps.br.probeDue(now) {
				p.schedulePumpLocked(ps, now)
				break
			}
			ps.br.probing = true
		}
		it := ps.queue[0]
		ps.queue = ps.queue[1:]
		p.m.queueDepth.Add(-1)
		ps.inflight++
		p.m.inflight.Add(1)
		p.mu.Unlock()

		err := p.attempt(context.Background(), addr, it)

		p.mu.Lock()
		ps.inflight--
		p.m.inflight.Add(-1)
		_, notify := p.settleLocked(ps, it, err)
		if notify != nil {
			notifies = append(notifies, notify)
		}
		if err != nil {
			break
		}
	}
	p.mu.Unlock()
	for _, notify := range notifies {
		notify()
	}
}

// peerLocked returns (creating on first use) the peer's state.
func (p *Plane) peerLocked(addr string) *peerState {
	ps, ok := p.peers[addr]
	if !ok {
		ps = &peerState{addr: addr}
		p.peers[addr] = ps
	}
	return ps
}

// Close stops every pump timer and drops the queued backlog (counted as
// delivery_drops_total{reason="closed"}, settled with ErrClosed).
// Subsequent sends fail with ErrClosed.
func (p *Plane) Close() {
	var settles []func()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, ps := range p.peers {
		if ps.stopPump != nil {
			ps.stopPump()
			ps.stopPump = nil
		}
		if n := len(ps.queue); n > 0 {
			p.m.dropClosed.Add(int64(n))
			p.m.queueDepth.Add(-int64(n))
			for _, it := range ps.queue {
				if fin := it.takeSettle(nil, ErrClosed); fin != nil {
					settles = append(settles, fin)
				}
			}
			ps.queue = nil
		}
	}
	p.mu.Unlock()
	for _, fin := range settles {
		fin()
	}
}

// PeerState is one peer's delivery posture, for health introspection.
type PeerState struct {
	// Addr is the peer's endpoint address.
	Addr string `json:"addr"`
	// Queued is the peer's outbound backlog.
	Queued int `json:"queued"`
	// Inflight is the number of attempts currently in flight.
	Inflight int `json:"inflight"`
	// Breaker is the circuit state: "closed", "open", or "half-open".
	Breaker string `json:"breaker"`
	// ConsecutiveFails is the current transport-failure streak.
	ConsecutiveFails int `json:"consecutive_fails,omitempty"`
	// DeferredFor is the remaining retry-after deferral, when positive.
	DeferredFor time.Duration `json:"deferred_for,omitempty"`
}

// States returns every tracked peer's posture, sorted by address.
func (p *Plane) States() []PeerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.cfg.Clock.Now()
	out := make([]PeerState, 0, len(p.peers))
	for _, ps := range p.peers {
		st := PeerState{
			Addr:             ps.addr,
			Queued:           len(ps.queue),
			Inflight:         ps.inflight,
			Breaker:          ps.br.label(),
			ConsecutiveFails: ps.br.fails,
		}
		if ps.deferUntil > now {
			st.DeferredFor = ps.deferUntil - now
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Stats is the plane-wide summary the health endpoint reports.
type Stats struct {
	// Peers is the number of peers with tracked delivery state.
	Peers int `json:"peers"`
	// Queued is the total outbound backlog across peers.
	Queued int `json:"queued"`
	// Inflight is the total number of in-flight attempts.
	Inflight int `json:"inflight"`
	// OpenCircuits counts peers whose breaker is open or half-open.
	OpenCircuits int `json:"open_circuits"`
	// Deferred counts peers inside a retry-after deferral window.
	Deferred int `json:"deferred"`
}

// Stats summarizes the plane across peers.
func (p *Plane) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.cfg.Clock.Now()
	st := Stats{Peers: len(p.peers)}
	for _, ps := range p.peers {
		st.Queued += len(ps.queue)
		st.Inflight += ps.inflight
		if ps.br.open {
			st.OpenCircuits++
		}
		if ps.deferUntil > now {
			st.Deferred++
		}
	}
	return st
}

// orBackground guards against nil contexts from internal retry paths.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
