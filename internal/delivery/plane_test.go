package delivery

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/gossip"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
)

// scriptedCaller is a Caller whose per-target outcomes are scripted: each
// attempt pops the next error from the target's queue (empty queue =
// success). Successful deliveries are recorded in order.
type scriptedCaller struct {
	mu        sync.Mutex
	outcomes  map[string][]error
	delivered map[string][]*soap.Envelope
	attempts  map[string]int
}

func newScripted() *scriptedCaller {
	return &scriptedCaller{
		outcomes:  make(map[string][]error),
		delivered: make(map[string][]*soap.Envelope),
		attempts:  make(map[string]int),
	}
}

func (c *scriptedCaller) script(to string, errs ...error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.outcomes[to] = append(c.outcomes[to], errs...)
}

func (c *scriptedCaller) pop(to string, env *soap.Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.attempts[to]++
	if q := c.outcomes[to]; len(q) > 0 {
		err := q[0]
		c.outcomes[to] = q[1:]
		if err != nil {
			return err
		}
	}
	c.delivered[to] = append(c.delivered[to], env)
	return nil
}

func (c *scriptedCaller) attemptCount(to string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts[to]
}

func (c *scriptedCaller) deliveredCount(to string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.delivered[to])
}

func (c *scriptedCaller) Call(_ context.Context, to string, env *soap.Envelope) (*soap.Envelope, error) {
	return nil, c.pop(to, env)
}

func (c *scriptedCaller) Send(_ context.Context, to string, env *soap.Envelope) error {
	return c.pop(to, env)
}

// encodedScripted adds the EncodedSender path: attempts pop the same
// script, successful sends decode and record the envelope.
type encodedScripted struct{ scriptedCaller }

func (c *encodedScripted) SendEncoded(_ context.Context, to string, data []byte) error {
	env, err := soap.Decode(data)
	if err != nil {
		return err
	}
	return c.pop(to, env.Clone())
}

var (
	_ soap.Caller        = (*scriptedCaller)(nil)
	_ soap.EncodedSender = (*encodedScripted)(nil)
)

type note struct {
	XMLName struct{} `xml:"urn:test Note"`
	Text    string   `xml:"Text"`
}

func testEnv(t *testing.T, text string) *soap.Envelope {
	t.Helper()
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{Action: "urn:test/notify", MessageID: wsa.NewMessageID()}); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(note{Text: text}); err != nil {
		t.Fatal(err)
	}
	return env
}

func testConfig(caller soap.Caller, clk clock.Clock, reg *metrics.Registry) Config {
	return Config{
		Caller:           caller,
		Clock:            clk,
		RNG:              rand.New(rand.NewSource(42)),
		Metrics:          reg,
		QueueCap:         4,
		MaxInflight:      1,
		AttemptTimeout:   time.Second,
		MaxAttempts:      3,
		BackoffBase:      100 * time.Millisecond,
		BackoffMax:       time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  2 * time.Second,
	}
}

var errConnRefused = errors.New("dial: connection refused")

func counterValue(reg *metrics.Registry, family, label, value string) int64 {
	return reg.CounterVec(family, label).With(value).Value()
}

func TestPlaneSendSuccessInline(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	p := NewPlane(testConfig(caller, clk, reg))

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "hello")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got := caller.deliveredCount("urn:peer"); got != 1 {
		t.Fatalf("delivered = %d, want 1", got)
	}
	if got := reg.Counter("delivery_attempts_total").Value(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
	if got := reg.Counter("delivery_retries_total").Value(); got != 0 {
		t.Fatalf("retries = %d, want 0", got)
	}
}

func TestPlaneRetriesTransientFailure(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	caller.script("urn:peer", errConnRefused) // first attempt fails, second succeeds
	p := NewPlane(testConfig(caller, clk, reg))

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "x")); err != nil {
		t.Fatalf("send: %v (the plane should own the retry)", err)
	}
	if got := caller.deliveredCount("urn:peer"); got != 0 {
		t.Fatalf("delivered before backoff = %d", got)
	}
	// Jittered backoff is within [base/2, base]: one base advance covers it.
	clk.Advance(100 * time.Millisecond)
	if got := caller.deliveredCount("urn:peer"); got != 1 {
		t.Fatalf("delivered after backoff = %d, want 1", got)
	}
	if got := reg.Counter("delivery_retries_total").Value(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if got := counterValue(reg, "delivery_attempt_failures_total", "kind", "transport"); got != 1 {
		t.Fatalf("transport failures = %d, want 1", got)
	}
}

func TestPlaneAttemptBudget(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	caller.script("urn:peer", errConnRefused, errConnRefused, errConnRefused, errConnRefused)
	p := NewPlane(testConfig(caller, clk, reg)) // MaxAttempts: 3

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Drive well past every backoff: the message must stop at 3 attempts.
	for i := 0; i < 20; i++ {
		clk.Advance(time.Second)
	}
	if got := caller.attemptCount("urn:peer"); got != 3 {
		t.Fatalf("attempts = %d, want exactly the budget of 3", got)
	}
	if got := counterValue(reg, "delivery_drops_total", "reason", "budget"); got != 1 {
		t.Fatalf("budget drops = %d, want 1", got)
	}
	if got := reg.Counter("delivery_retries_total").Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if got := reg.Gauge("delivery_queue_depth").Value(); got != 0 {
		t.Fatalf("queue depth = %d, want 0 after drop", got)
	}
}

func TestPlaneBreakerOpensAndProbes(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	// 3 transport failures trip the threshold; the 4th attempt (the probe)
	// succeeds.
	caller.script("urn:peer", errConnRefused, errConnRefused, errConnRefused)
	cfg := testConfig(caller, clk, reg)
	cfg.MaxAttempts = 5
	var downs []string
	cfg.OnPeerDown = func(addr string) { downs = append(downs, addr) }
	p := NewPlane(cfg)

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	clk.Advance(100 * time.Millisecond) // attempt 2
	clk.Advance(200 * time.Millisecond) // attempt 3 → breaker opens
	if got := counterValue(reg, "delivery_breaker_transitions_total", "to", "open"); got != 1 {
		t.Fatalf("open transitions = %d, want 1", got)
	}
	if len(downs) != 1 || downs[0] != "urn:peer" {
		t.Fatalf("OnPeerDown calls = %v, want [urn:peer]", downs)
	}
	if got := reg.Gauge("delivery_breaker_open").Value(); got != 1 {
		t.Fatalf("open gauge = %d, want 1", got)
	}

	// Fresh sends fast-fail while the circuit is open.
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "y")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("send while open = %v, want ErrCircuitOpen", err)
	}
	if got := counterValue(reg, "delivery_drops_total", "reason", "circuit_open"); got != 1 {
		t.Fatalf("circuit drops = %d, want 1", got)
	}

	// After the cooldown the queued message is the half-open probe; its
	// success closes the circuit.
	clk.Advance(2 * time.Second)
	if got := caller.deliveredCount("urn:peer"); got != 1 {
		t.Fatalf("delivered after probe = %d, want 1", got)
	}
	if got := counterValue(reg, "delivery_breaker_transitions_total", "to", "closed"); got != 1 {
		t.Fatalf("closed transitions = %d, want 1", got)
	}
	if got := reg.Gauge("delivery_breaker_open").Value(); got != 0 {
		t.Fatalf("open gauge = %d, want 0 after recovery", got)
	}
	// And the peer accepts traffic again.
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "z")); err != nil {
		t.Fatalf("send after recovery: %v", err)
	}
	if got := caller.deliveredCount("urn:peer"); got != 2 {
		t.Fatalf("delivered = %d, want 2", got)
	}
}

// TestPlaneOnPeerUpFiresOnClose pins the recovery hook: OnPeerUp runs
// exactly once, on the open → closed transition, and never on ordinary
// successes with a closed circuit.
func TestPlaneOnPeerUpFiresOnClose(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	caller.script("urn:peer", errConnRefused, errConnRefused, errConnRefused)
	cfg := testConfig(caller, clk, reg)
	cfg.MaxAttempts = 5
	var downs, ups []string
	cfg.OnPeerDown = func(addr string) { downs = append(downs, addr) }
	cfg.OnPeerUp = func(addr string) { ups = append(ups, addr) }
	p := NewPlane(cfg)

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	clk.Advance(100 * time.Millisecond) // attempt 2
	clk.Advance(200 * time.Millisecond) // attempt 3 → breaker opens
	if len(downs) != 1 || len(ups) != 0 {
		t.Fatalf("after open: downs=%v ups=%v", downs, ups)
	}
	clk.Advance(2 * time.Second) // cooldown → half-open probe succeeds
	if len(ups) != 1 || ups[0] != "urn:peer" {
		t.Fatalf("OnPeerUp calls = %v, want [urn:peer]", ups)
	}
	// Further ordinary successes do not re-fire the hook.
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "y")); err != nil {
		t.Fatalf("send after recovery: %v", err)
	}
	if len(ups) != 1 {
		t.Fatalf("OnPeerUp re-fired on plain success: %v", ups)
	}
}

func TestPlaneFailedProbeReopens(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	caller.script("urn:peer",
		errConnRefused, errConnRefused, errConnRefused, // trip
		errConnRefused) // failed probe
	cfg := testConfig(caller, clk, reg)
	cfg.MaxAttempts = 10
	p := NewPlane(cfg)

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "x")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(100 * time.Millisecond)
	clk.Advance(200 * time.Millisecond) // breaker open
	clk.Advance(2 * time.Second)        // probe fires, fails → re-open
	if got := reg.Gauge("delivery_breaker_open").Value(); got != 1 {
		t.Fatalf("open gauge = %d, want 1 after failed probe", got)
	}
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "y")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("send = %v, want ErrCircuitOpen (cooldown restarted)", err)
	}
	// Second cooldown, successful probe.
	clk.Advance(2 * time.Second)
	if got := caller.deliveredCount("urn:peer"); got != 1 {
		t.Fatalf("delivered = %d, want 1", got)
	}
}

func TestPlaneShedDefersQueue(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	caller.script("urn:peer", soap.NewOverloadedFault("busy", 500*time.Millisecond))
	p := NewPlane(testConfig(caller, clk, reg))

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "m1")); err != nil {
		t.Fatalf("shed send: %v (plane should defer, not fail)", err)
	}
	// The peer is deferred: a second message queues behind the first.
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "m2")); err != nil {
		t.Fatalf("queued send: %v", err)
	}
	if got := caller.attemptCount("urn:peer"); got != 1 {
		t.Fatalf("attempts during deferral = %d, want 1", got)
	}
	if got := reg.Counter("delivery_deferrals_total").Value(); got != 1 {
		t.Fatalf("deferrals = %d, want 1", got)
	}
	// A shed is not a transport failure: the breaker must stay closed.
	if got := counterValue(reg, "delivery_breaker_transitions_total", "to", "open"); got != 0 {
		t.Fatalf("breaker opened on shed: %d transitions", got)
	}

	clk.Advance(500 * time.Millisecond)
	if got := caller.deliveredCount("urn:peer"); got != 2 {
		t.Fatalf("delivered after deferral = %d, want 2", got)
	}
	// m1 was re-attempted (1 retry); m2's first attempt is not a retry.
	if got := reg.Counter("delivery_retries_total").Value(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if got := counterValue(reg, "delivery_attempt_failures_total", "kind", "shed"); got != 1 {
		t.Fatalf("shed failures = %d, want 1", got)
	}
}

func TestPlaneQueueBound(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	caller.script("urn:peer", soap.NewOverloadedFault("busy", time.Second))
	cfg := testConfig(caller, clk, reg)
	cfg.QueueCap = 2
	p := NewPlane(cfg)

	// First send is shed and requeued (queue: 1). One more fits (2), the
	// next must be refused.
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "m1")); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "m2")); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "m3")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("send = %v, want ErrQueueFull", err)
	}
	if got := counterValue(reg, "delivery_drops_total", "reason", "queue_full"); got != 1 {
		t.Fatalf("queue_full drops = %d, want 1", got)
	}
	if got := reg.Gauge("delivery_queue_depth").Value(); got != 2 {
		t.Fatalf("queue depth = %d, want 2", got)
	}
}

func TestPlaneFIFOAcrossRetry(t *testing.T) {
	clk := clock.NewVirtual()
	caller := newScripted() // plain Caller: envelopes delivered in order
	caller.script("urn:peer", errConnRefused)
	p := NewPlane(testConfig(caller, clk, nil))

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "first")); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "second")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	caller.mu.Lock()
	defer caller.mu.Unlock()
	if len(caller.delivered["urn:peer"]) != 2 {
		t.Fatalf("delivered = %d, want 2", len(caller.delivered["urn:peer"]))
	}
	var texts []string
	for _, env := range caller.delivered["urn:peer"] {
		var n note
		if err := env.DecodeBody(&n); err != nil {
			t.Fatal(err)
		}
		texts = append(texts, n.Text)
	}
	if texts[0] != "first" || texts[1] != "second" {
		t.Fatalf("delivery order = %v, want [first second]", texts)
	}
}

// TestPlaneClonesQueuedEnvelope: a queued envelope must be immune to
// caller-side mutation after Send returns (retention requires Clone).
func TestPlaneClonesQueuedEnvelope(t *testing.T) {
	clk := clock.NewVirtual()
	caller := newScripted()
	caller.script("urn:peer", soap.NewOverloadedFault("busy", 100*time.Millisecond))
	p := NewPlane(testConfig(caller, clk, nil))

	env := testEnv(t, "original")
	if err := p.Send(context.Background(), "urn:peer", env); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(note{Text: "mutated"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(100 * time.Millisecond)
	caller.mu.Lock()
	defer caller.mu.Unlock()
	if len(caller.delivered["urn:peer"]) != 1 {
		t.Fatalf("delivered = %d, want 1", len(caller.delivered["urn:peer"]))
	}
	var n note
	if err := caller.delivered["urn:peer"][0].DecodeBody(&n); err != nil {
		t.Fatal(err)
	}
	if n.Text != "original" {
		t.Fatalf("delivered %q, want the pre-mutation clone", n.Text)
	}
}

func TestPlaneEncodedSenderRetriesSameBytes(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := &encodedScripted{*newScripted()}
	caller.script("urn:peer", errConnRefused)
	p := NewPlane(testConfig(caller, clk, reg))

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "enc")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	caller.mu.Lock()
	defer caller.mu.Unlock()
	if len(caller.delivered["urn:peer"]) != 1 {
		t.Fatalf("delivered = %d, want 1", len(caller.delivered["urn:peer"]))
	}
	var n note
	if err := caller.delivered["urn:peer"][0].DecodeBody(&n); err != nil {
		t.Fatal(err)
	}
	if n.Text != "enc" {
		t.Fatalf("delivered %q after encoded retry", n.Text)
	}
}

func TestPlaneSenderFaultDropsMessageNotPeer(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	caller.script("urn:peer", soap.NewFault(soap.CodeSender, "bad bytes"))
	p := NewPlane(testConfig(caller, clk, reg))

	err := p.Send(context.Background(), "urn:peer", testEnv(t, "x"))
	if !soap.IsSenderFault(err) {
		t.Fatalf("err = %v, want the sender fault surfaced", err)
	}
	clk.Advance(10 * time.Second)
	if got := caller.attemptCount("urn:peer"); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry of poisoned bytes)", got)
	}
	if got := counterValue(reg, "delivery_drops_total", "reason", "sender_fault"); got != 1 {
		t.Fatalf("sender_fault drops = %d, want 1", got)
	}
	// The peer itself is healthy: next send flows.
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "ok")); err != nil {
		t.Fatalf("send after sender fault: %v", err)
	}
}

func TestPlaneCallThroughBreaker(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	caller.script("urn:peer", errConnRefused, errConnRefused, errConnRefused)
	cfg := testConfig(caller, clk, reg)
	cfg.MaxAttempts = 1 // sends don't retry; failures come from calls too
	p := NewPlane(cfg)

	for i := 0; i < 3; i++ {
		if _, err := p.Call(context.Background(), "urn:peer", testEnv(t, "q")); err == nil {
			t.Fatal("scripted call succeeded")
		}
	}
	if _, err := p.Call(context.Background(), "urn:peer", testEnv(t, "q")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("call while open = %v, want ErrCircuitOpen", err)
	}
	clk.Advance(2 * time.Second)
	// Due circuit: the next call is the probe and closes it on success.
	if _, err := p.Call(context.Background(), "urn:peer", testEnv(t, "q")); err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if got := counterValue(reg, "delivery_breaker_transitions_total", "to", "closed"); got != 1 {
		t.Fatalf("closed transitions = %d, want 1", got)
	}
}

func TestPlaneFilterViewDemotesOpenCircuits(t *testing.T) {
	clk := clock.NewVirtual()
	caller := newScripted()
	caller.script("urn:b", errConnRefused, errConnRefused, errConnRefused)
	cfg := testConfig(caller, clk, nil)
	cfg.MaxAttempts = 1
	p := NewPlane(cfg)

	view := p.FilterView(gossip.NewStaticPeers([]string{"urn:a", "urn:b", "urn:c"}))
	rng := rand.New(rand.NewSource(7))

	// Trip urn:b's breaker: three failed sends, each past the previous
	// failure's backoff window so it is attempted (not queued).
	for i := 0; i < 3; i++ {
		_ = p.Send(context.Background(), "urn:b", testEnv(t, "x"))
		clk.Advance(200 * time.Millisecond)
	}
	got := view.SelectPeers(rng, -1, "")
	if len(got) != 2 {
		t.Fatalf("peers while urn:b open = %v, want urn:a and urn:c", got)
	}
	for _, a := range got {
		if a == "urn:b" {
			t.Fatalf("open-circuit peer sampled: %v", got)
		}
	}

	// Once the cooldown elapses the peer is probe-due and sampled again,
	// so regular traffic performs the probe.
	clk.Advance(2 * time.Second)
	got = view.SelectPeers(rng, -1, "")
	if len(got) != 3 {
		t.Fatalf("peers after cooldown = %v, want all three", got)
	}
}

func TestPlaneStatesAndStats(t *testing.T) {
	clk := clock.NewVirtual()
	caller := newScripted()
	caller.script("urn:peer", soap.NewOverloadedFault("busy", time.Second))
	p := NewPlane(testConfig(caller, clk, nil))

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "x")); err != nil {
		t.Fatal(err)
	}
	states := p.States()
	if len(states) != 1 || states[0].Addr != "urn:peer" {
		t.Fatalf("states = %+v", states)
	}
	if states[0].Queued != 1 || states[0].DeferredFor != time.Second {
		t.Fatalf("state = %+v, want queued 1, deferred 1s", states[0])
	}
	st := p.Stats()
	if st.Peers != 1 || st.Queued != 1 || st.Deferred != 1 || st.OpenCircuits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPlaneClose(t *testing.T) {
	clk := clock.NewVirtual()
	reg := metrics.NewRegistry()
	caller := newScripted()
	caller.script("urn:peer", soap.NewOverloadedFault("busy", time.Second))
	p := NewPlane(testConfig(caller, clk, reg))

	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "x")); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Send(context.Background(), "urn:peer", testEnv(t, "y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if got := counterValue(reg, "delivery_drops_total", "reason", "closed"); got != 2 {
		t.Fatalf("closed drops = %d, want 2 (1 queued + 1 refused)", got)
	}
	clk.Advance(10 * time.Second)
	if got := caller.attemptCount("urn:peer"); got != 1 {
		t.Fatalf("attempts after close = %d, want 1", got)
	}
}

// TestPlaneDeterministic pins the full schedule: two identical runs on
// fresh virtual clocks produce identical metric snapshots.
func TestPlaneDeterministic(t *testing.T) {
	run := func() string {
		clk := clock.NewVirtual()
		reg := metrics.NewRegistry()
		caller := newScripted()
		caller.script("urn:p1", errConnRefused, errConnRefused)
		caller.script("urn:p2", soap.NewOverloadedFault("busy", 300*time.Millisecond))
		p := NewPlane(testConfig(caller, clk, reg))
		for i := 0; i < 3; i++ {
			_ = p.Send(context.Background(), "urn:p1", testEnv(t, "a"))
			_ = p.Send(context.Background(), "urn:p2", testEnv(t, "b"))
		}
		for i := 0; i < 50; i++ {
			clk.Advance(100 * time.Millisecond)
		}
		return reg.Snapshot()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("runs diverged:\n--- run 1\n%s\n--- run 2\n%s", first, second)
	}
}
