package delivery

import (
	"math/rand"

	"wsgossip/internal/gossip"
)

// FilterView wraps a peer provider so sampling demotes unhealthy peers:
// addresses whose circuit is open (and not yet due for a probe) are
// excluded before the draw, steering gossip fan-out toward peers that can
// actually receive it. A circuit due for its half-open probe counts as
// healthy again, so regular traffic performs the probe and a recovered
// peer rejoins the overlay without a dedicated pinger. Deferred
// (overloaded-but-alive) peers stay eligible — their queue absorbs the
// pacing.
func (p *Plane) FilterView(inner gossip.PeerProvider) gossip.PeerProvider {
	return &filteredView{plane: p, inner: inner}
}

type filteredView struct {
	plane *Plane
	inner gossip.PeerProvider
}

var _ gossip.PeerProvider = (*filteredView)(nil)

// SelectPeers draws up to n healthy peers: the inner provider's full
// eligible set, minus open circuits, re-sampled uniformly.
func (v *filteredView) SelectPeers(rng *rand.Rand, n int, exclude string) []string {
	all := v.inner.SelectPeers(rng, -1, exclude)
	healthy := make([]string, 0, len(all))
	for _, addr := range all {
		if v.plane.admissible(addr) {
			healthy = append(healthy, addr)
		}
	}
	return gossip.SamplePeers(rng, healthy, n, "")
}

// admissible reports whether sends to addr are currently worth issuing:
// true unless the peer's circuit is open with its cooldown still running
// or its probe already in flight.
func (p *Plane) admissible(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	ps, ok := p.peers[addr]
	if !ok || !ps.br.open {
		return true
	}
	return ps.br.probeDue(p.cfg.Clock.Now())
}
