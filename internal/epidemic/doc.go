// Package epidemic provides the analytic models the paper's Section 2 rests
// on (Eugster, Guerraoui, Kermarrec, Massoulié: "Epidemic information
// dissemination in distributed systems", IEEE Computer 2004): expected
// infection growth, coverage as a function of fanout f and rounds r, and the
// rounds needed for a target coverage — plus the push-sum variance-decay
// model (Kempe et al.) behind the aggregation protocol.
//
// Key functions: ExpectedCoverage and ExpectedCoverageLossy (the
// infect-and-die fixed point, with and without message loss),
// RoundsForCoverage (inverse), PushSumContraction and PushSumRoundsToEpsilon
// (aggregation convergence). Experiments E2/E6/E10 cross-check the simulator
// against these predictions, and the virtual-time scenario suite
// (internal/scenario) derives its convergence budgets from them.
package epidemic
