package epidemic

import (
	"errors"
	"math"
)

// ErrBadParams reports out-of-range model parameters.
var ErrBadParams = errors.New("epidemic: invalid parameters")

// ExpectedCoverage returns the expected fraction of n processes infected
// after r rounds of infect-and-die push gossip with fanout f: each process
// forwards to f uniform targets exactly once, on first receipt (the
// behaviour of WS-PushGossip and of this repository's engine). Peer
// selection is uniform with replacement across the membership; links are
// lossless.
//
// The mean-field recurrence tracks the newly infected generation g_t (only
// new infectees spread): a susceptible process avoids all f·g_t
// transmissions with probability (1 - 1/n)^(f·g_t), so
//
//	g_{t+1} = s_t · (1 - (1 - 1/n)^(f·g_t)),   s_{t+1} = s_t - g_{t+1}.
//
// As r grows this converges to the classic final-size equation
// z = 1 - e^(-f·z): about 0.80 at f=2, 0.94 at f=3, 0.998 at f=6.
func ExpectedCoverage(n, f, r int) (float64, error) {
	return ExpectedCoverageLossy(n, f, r, 0)
}

// ExpectedCoverageLossy is ExpectedCoverage with per-message loss
// probability loss in [0,1): each of the f transmissions independently
// survives with probability 1-loss.
func ExpectedCoverageLossy(n, f, r int, loss float64) (float64, error) {
	if loss < 0 || loss >= 1 {
		return 0, ErrBadParams
	}
	if n <= 0 || f < 0 || r < 0 {
		return 0, ErrBadParams
	}
	if n == 1 {
		return 1, nil
	}
	nf := float64(n)
	q := 1.0 - (1.0-loss)/nf
	infected := 1.0
	fresh := 1.0
	for round := 0; round < r; round++ {
		if infected >= nf || fresh < 1e-9 {
			break
		}
		susceptible := nf - infected
		pInfect := 1.0 - math.Pow(q, float64(f)*fresh)
		fresh = susceptible * pInfect
		infected += fresh
	}
	if infected > nf {
		infected = nf
	}
	return infected / nf, nil
}

// RoundsForCoverage returns the smallest r such that ExpectedCoverage(n, f, r)
// reaches target (a fraction in (0,1]), capped at maxRounds. It returns
// maxRounds+1 when the target is unreachable within the cap (e.g. f == 0).
func RoundsForCoverage(n, f int, target float64, maxRounds int) (int, error) {
	if target <= 0 || target > 1 || maxRounds < 0 {
		return 0, ErrBadParams
	}
	for r := 0; r <= maxRounds; r++ {
		cov, err := ExpectedCoverage(n, f, r)
		if err != nil {
			return 0, err
		}
		if cov >= target {
			return r, nil
		}
	}
	return maxRounds + 1, nil
}

// LogisticRounds returns the textbook O(log n) estimate of rounds for full
// propagation with fanout f: log base (f+1) of n, rounded up, plus the
// tail-phase constant c. It is the quick sizing rule the paper alludes to
// when claiming parameters "can be configured" for a desired reach.
func LogisticRounds(n, f, c int) (int, error) {
	if n <= 0 || f <= 0 || c < 0 {
		return 0, ErrBadParams
	}
	if n == 1 {
		return 0, nil
	}
	r := math.Log(float64(n)) / math.Log(float64(f+1))
	return int(math.Ceil(r)) + c, nil
}

// AtomicityProbability estimates the probability that *every* process is
// infected after r rounds with fanout f, using the final-round expected
// miss count: with expected coverage cov, the number of missed processes is
// approximately Poisson with mean n·(1-cov), so P(all) ≈ exp(-n·(1-cov)).
// This captures the "atomic delivery with high probability" claim of
// Section 2.
func AtomicityProbability(n, f, r int) (float64, error) {
	cov, err := ExpectedCoverage(n, f, r)
	if err != nil {
		return 0, err
	}
	missed := float64(n) * (1 - cov)
	return math.Exp(-missed), nil
}
