package epidemic

import (
	"testing"
	"testing/quick"
)

func TestExpectedCoverageBasics(t *testing.T) {
	tests := []struct {
		name    string
		n, f, r int
		min     float64
		max     float64
	}{
		{"zero rounds is origin only", 100, 3, 0, 0.01, 0.011},
		{"single node", 1, 3, 5, 1, 1},
		{"f3 fixed point near 0.94", 10000, 3, 40, 0.92, 0.96},
		{"f2 fixed point near 0.80", 10000, 2, 200, 0.76, 0.84},
		{"f8 near total", 10000, 8, 40, 0.999, 1.0},
		{"zero fanout never spreads", 100, 0, 10, 0.01, 0.011},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ExpectedCoverage(tt.n, tt.f, tt.r)
			if err != nil {
				t.Fatal(err)
			}
			if got < tt.min || got > tt.max {
				t.Fatalf("coverage = %v, want in [%v, %v]", got, tt.min, tt.max)
			}
		})
	}
}

func TestExpectedCoverageErrors(t *testing.T) {
	for _, bad := range [][3]int{{0, 3, 3}, {-1, 3, 3}, {10, -1, 3}, {10, 3, -1}} {
		if _, err := ExpectedCoverage(bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("params %v accepted", bad)
		}
	}
}

func TestCoverageMonotoneInRounds(t *testing.T) {
	prev := 0.0
	for r := 0; r <= 30; r++ {
		cov, err := ExpectedCoverage(1000, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		if cov < prev {
			t.Fatalf("coverage decreased at round %d: %v < %v", r, cov, prev)
		}
		prev = cov
	}
}

func TestCoverageMonotoneInFanoutProperty(t *testing.T) {
	f := func(nRaw uint16, fRaw, rRaw uint8) bool {
		n := 2 + int(nRaw)%5000
		fan := int(fRaw)%10 + 1
		r := int(rRaw)%20 + 1
		lo, err1 := ExpectedCoverage(n, fan, r)
		hi, err2 := ExpectedCoverage(n, fan+1, r)
		if err1 != nil || err2 != nil {
			return false
		}
		return hi >= lo-1e-12 && lo >= 0 && hi <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLossyReducesCoverage(t *testing.T) {
	clean, err := ExpectedCoverageLossy(1000, 3, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := ExpectedCoverageLossy(1000, 3, 15, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if noisy >= clean {
		t.Fatalf("lossy coverage %v >= clean %v", noisy, clean)
	}
	base, err := ExpectedCoverage(1000, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	if clean != base {
		t.Fatalf("zero loss (%v) differs from lossless model (%v)", clean, base)
	}
}

func TestLossyErrors(t *testing.T) {
	if _, err := ExpectedCoverageLossy(100, 3, 3, -0.1); err == nil {
		t.Fatal("negative loss accepted")
	}
	if _, err := ExpectedCoverageLossy(100, 3, 3, 1); err == nil {
		t.Fatal("loss=1 accepted")
	}
}

func TestRoundsForCoverage(t *testing.T) {
	r, err := RoundsForCoverage(1024, 3, 0.9, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r < 5 || r > 15 {
		t.Fatalf("rounds = %d, want O(log n)", r)
	}
	// Unreachable target returns cap+1.
	r, err = RoundsForCoverage(1024, 0, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r != 11 {
		t.Fatalf("unreachable rounds = %d, want 11", r)
	}
	if _, err := RoundsForCoverage(100, 3, 0, 10); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, err := RoundsForCoverage(100, 3, 1.5, 10); err == nil {
		t.Fatal("target > 1 accepted")
	}
}

func TestLogisticRounds(t *testing.T) {
	r, err := LogisticRounds(1024, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r != 7 { // ceil(log4(1024)) + 2 = 5 + 2
		t.Fatalf("rounds = %d, want 7", r)
	}
	if r, _ := LogisticRounds(1, 3, 2); r != 0 {
		t.Fatalf("single node rounds = %d", r)
	}
	if _, err := LogisticRounds(0, 3, 2); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := LogisticRounds(10, 0, 2); err == nil {
		t.Fatal("f=0 accepted")
	}
}

func TestLogRoundsGrowth(t *testing.T) {
	// Rounds to 99% coverage must grow sub-linearly (logarithmically) in n.
	r256, err := RoundsForCoverage(256, 3, 0.9, 100)
	if err != nil {
		t.Fatal(err)
	}
	r4096, err := RoundsForCoverage(4096, 3, 0.9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r4096 <= r256 {
		t.Fatalf("rounds did not grow: %d vs %d", r256, r4096)
	}
	if r4096 > 3*r256 {
		t.Fatalf("rounds grew too fast: %d vs %d", r256, r4096)
	}
}

func TestAtomicityProbability(t *testing.T) {
	lo, err := AtomicityProbability(1024, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := AtomicityProbability(1024, 12, 20)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("atomicity not increasing in fanout: %v vs %v", lo, hi)
	}
	if hi < 0.9 {
		t.Fatalf("f=12 atomicity = %v, want near 1", hi)
	}
	if lo > 0.2 {
		t.Fatalf("f=2 atomicity = %v, want near 0", lo)
	}
}
