package epidemic

import "math"

// Analytic model for push-sum gossip aggregation (Kempe, Dobra, Gehrke,
// "Gossip-based computation of aggregate information", FOCS 2003, adapted
// to the fanout-f share-splitting variant run by internal/aggregate).
//
// Protocol: each node i holds a (sum, weight) pair. Every round it splits
// the pair into f+1 equal shares, keeps one, and sends one to each of f
// uniformly random peers. All estimates sum/weight converge to the true
// ratio Σsum/Σweight; the speed is governed by the potential
//
//	Φ_t = Σ_i (s_i - z·w_i)²,   z = Σs/Σw,
//
// which contracts by a constant expected factor per round.

// PushSumContraction returns the expected per-round contraction factor γ of
// the push-sum potential for n nodes and fanout f:
//
//	E[Φ_{t+1}] = γ·Φ_t,   γ = (1 + f·(1 - 1/n)) / (f+1)².
//
// Derivation (mean-field, shares routed uniformly with replacement): with
// keep fraction δ = 1/(f+1), a receiver's new deviation is δ·(own + Σ
// incoming). The cross terms vanish because deviations sum to zero, leaving
// the kept mass δ²·Φ plus the variance of f·n independently routed shares,
// δ²·f·(1-1/n)·Φ. For f=1 this gives the classic ≈ 1/2 per-round decay of
// Kempe et al.; for large n it approaches 1/(f+1).
func PushSumContraction(n, f int) (float64, error) {
	if n <= 1 || f < 1 {
		return 0, ErrBadParams
	}
	nf := float64(n)
	ff := float64(f)
	return (1 + ff*(1-1/nf)) / ((ff + 1) * (ff + 1)), nil
}

// PushSumExpectedPotential returns the expected potential after r rounds
// given the initial potential phi0: phi0·γ^r.
func PushSumExpectedPotential(n, f, r int, phi0 float64) (float64, error) {
	if r < 0 || phi0 < 0 {
		return 0, ErrBadParams
	}
	gamma, err := PushSumContraction(n, f)
	if err != nil {
		return 0, err
	}
	return phi0 * math.Pow(gamma, float64(r)), nil
}

// PushSumRoundsToEpsilon returns the smallest number of rounds r such that
// the expected root-mean-square estimate deviation has decayed to a
// fraction eps of its initial value: γ^r ≤ eps², i.e.
//
//	r = ⌈2·ln(1/eps) / ln(1/γ)⌉.
//
// Because γ ≈ 1/(f+1), accuracy improves geometrically: ε-accuracy costs
// O(log(1/ε)/log(f+1)) rounds, independent of n to first order — the
// variance-decay analogue of the dissemination model's O(log n) rounds.
func PushSumRoundsToEpsilon(n, f int, eps float64) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, ErrBadParams
	}
	gamma, err := PushSumContraction(n, f)
	if err != nil {
		return 0, err
	}
	r := 2 * math.Log(1/eps) / math.Log(1/gamma)
	return int(math.Ceil(r)), nil
}
