package epidemic

import (
	"math"
	"math/rand"
	"testing"
)

func TestPushSumContractionBounds(t *testing.T) {
	for _, tc := range []struct{ n, f int }{{2, 1}, {10, 1}, {64, 2}, {64, 3}, {1024, 4}} {
		gamma, err := PushSumContraction(tc.n, tc.f)
		if err != nil {
			t.Fatalf("PushSumContraction(%d,%d): %v", tc.n, tc.f, err)
		}
		if gamma <= 0 || gamma >= 1 {
			t.Fatalf("contraction γ(%d,%d)=%f out of (0,1)", tc.n, tc.f, gamma)
		}
	}
	// f=1 recovers the classic ≈1/2 per-round decay (Kempe et al. 2003).
	gamma, _ := PushSumContraction(1000, 1)
	if math.Abs(gamma-0.5) > 0.01 {
		t.Fatalf("γ(1000,1)=%f, want ≈ 1/2", gamma)
	}
	// Large-n limit approaches 1/(f+1).
	gamma, _ = PushSumContraction(1_000_000, 3)
	if math.Abs(gamma-0.25) > 0.01 {
		t.Fatalf("γ(1e6,3)=%f, want ≈ 1/4", gamma)
	}
	if _, err := PushSumContraction(1, 1); err == nil {
		t.Fatal("n=1 should be rejected")
	}
	if _, err := PushSumContraction(10, 0); err == nil {
		t.Fatal("f=0 should be rejected")
	}
}

// TestPushSumRoundsMonotone: rounds to ε-accuracy decrease with fanout and
// increase as ε tightens.
func TestPushSumRoundsMonotone(t *testing.T) {
	prev := math.MaxInt
	for f := 1; f <= 6; f++ {
		r, err := PushSumRoundsToEpsilon(256, f, 1e-4)
		if err != nil {
			t.Fatalf("RoundsToEpsilon f=%d: %v", f, err)
		}
		if r > prev {
			t.Fatalf("rounds increased with fanout: f=%d gives %d > %d", f, r, prev)
		}
		prev = r
	}
	prevR := 0
	for _, eps := range []float64{1e-1, 1e-2, 1e-4, 1e-8} {
		r, err := PushSumRoundsToEpsilon(256, 3, eps)
		if err != nil {
			t.Fatalf("RoundsToEpsilon eps=%g: %v", eps, err)
		}
		if r < prevR {
			t.Fatalf("rounds decreased as eps tightened: eps=%g gives %d < %d", eps, r, prevR)
		}
		prevR = r
	}
	if _, err := PushSumRoundsToEpsilon(64, 3, 0); err == nil {
		t.Fatal("eps=0 should be rejected")
	}
	if _, err := PushSumRoundsToEpsilon(64, 3, 1.5); err == nil {
		t.Fatal("eps>1 should be rejected")
	}
}

func TestPushSumExpectedPotentialMonotone(t *testing.T) {
	prev := math.Inf(1)
	for r := 0; r <= 30; r += 3 {
		phi, err := PushSumExpectedPotential(64, 3, r, 100)
		if err != nil {
			t.Fatalf("ExpectedPotential r=%d: %v", r, err)
		}
		if phi > prev {
			t.Fatalf("potential increased with rounds at r=%d: %g > %g", r, phi, prev)
		}
		prev = phi
	}
}

// simulatePushSumPotential runs the fanout-f share-splitting push-sum
// protocol on plain float arrays and returns the potential after the given
// number of rounds.
func simulatePushSumPotential(rng *rand.Rand, n, f, rounds int) float64 {
	s := make([]float64, n)
	w := make([]float64, n)
	var sumS float64
	for i := range s {
		s[i] = rng.Float64() * 100
		w[i] = 1
		sumS += s[i]
	}
	z := sumS / float64(n)
	for r := 0; r < rounds; r++ {
		ds := make([]float64, n)
		dw := make([]float64, n)
		for i := 0; i < n; i++ {
			parts := float64(f + 1)
			shareS, shareW := s[i]/parts, w[i]/parts
			s[i], w[i] = shareS, shareW
			for k := 0; k < f; k++ {
				j := rng.Intn(n)
				ds[j] += shareS
				dw[j] += shareW
			}
		}
		for i := 0; i < n; i++ {
			s[i] += ds[i]
			w[i] += dw[i]
		}
	}
	phi := 0.0
	for i := 0; i < n; i++ {
		d := s[i] - z*w[i]
		phi += d * d
	}
	return phi
}

// TestPushSumModelMatchesBruteForce compares the analytic expected decay
// against a brute-force simulation of the protocol, averaged over trials.
// The mean-field model should predict the per-round decay to within a small
// multiplicative band.
func TestPushSumModelMatchesBruteForce(t *testing.T) {
	const (
		n      = 64
		trials = 200
		rounds = 8
	)
	for _, f := range []int{1, 2, 3} {
		var sumRatio float64
		for trial := 0; trial < trials; trial++ {
			phi0 := simulatePushSumPotential(rand.New(rand.NewSource(int64(trial)*997+int64(f))), n, f, 0)
			phiR := simulatePushSumPotential(rand.New(rand.NewSource(int64(trial)*997+int64(f))), n, f, rounds)
			sumRatio += phiR / phi0
		}
		observed := sumRatio / trials
		gamma, err := PushSumContraction(n, f)
		if err != nil {
			t.Fatal(err)
		}
		predicted := math.Pow(gamma, rounds)
		// Per-round decay comparison: geometric mean of the observed
		// per-round factor vs γ.
		obsPerRound := math.Pow(observed, 1.0/rounds)
		if math.Abs(obsPerRound-gamma)/gamma > 0.15 {
			t.Fatalf("f=%d: observed per-round decay %.4f vs analytic γ=%.4f (total %g vs %g)",
				f, obsPerRound, gamma, observed, predicted)
		}
		t.Logf("f=%d: per-round decay observed %.4f analytic %.4f", f, obsPerRound, gamma)
	}
}

// TestPushSumRoundsDeliverAccuracy: running the simulated protocol for the
// model-recommended number of rounds reaches the requested accuracy (the
// error-bound direction of the model).
func TestPushSumRoundsDeliverAccuracy(t *testing.T) {
	const n = 64
	for _, f := range []int{2, 4} {
		eps := 1e-3
		r, err := PushSumRoundsToEpsilon(n, f, eps)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*131 + int64(f)))
			phi0 := simulatePushSumPotential(rand.New(rand.NewSource(int64(trial)*131+int64(f))), n, f, 0)
			phiR := simulatePushSumPotential(rng, n, f, r+4) // small slack over the expectation-level bound
			if phiR/phi0 > eps*eps*50 {                      // generous: individual trials fluctuate around the mean decay
				t.Fatalf("f=%d r=%d trial=%d: potential ratio %g far above ε²=%g",
					f, r, trial, phiR/phi0, eps*eps)
			}
		}
	}
}
