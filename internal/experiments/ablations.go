package experiments

import (
	"context"
	"fmt"
	"time"

	"wsgossip/internal/core"
	"wsgossip/internal/gossip"
)

// A1Styles ablates the gossip styles the framework encompasses (paper
// Section 4: "encompassing different gossip styles"): eager push, lazy push,
// pull, push-pull, and flooding, comparing coverage, payload traffic,
// control traffic, and completion time for one event.
func A1Styles(opt Options) ([]Table, error) {
	n := opt.pick(1024, 256)
	t := Table{
		ID:    "A1",
		Title: fmt.Sprintf("Gossip styles ablation (N=%d, one event, f=3)", n),
		Columns: []string{
			"style", "coverage", "payload msgs", "control msgs", "virtual ms",
		},
	}
	type styleRun struct {
		style gossip.Style
		ticks int
	}
	for _, sr := range []styleRun{
		{gossip.StylePush, 0},
		{gossip.StyleLazyPush, 0},
		{gossip.StylePull, 25},
		{gossip.StylePushPull, 10},
		{gossip.StyleCounter, 0},
		{gossip.StyleFlood, 0},
	} {
		c, err := newEngineCluster(n, opt.Seed+int64(sr.style)*111, engineParams{
			style:    sr.style,
			fanout:   3,
			hops:     defaultHops(n) + 2,
			counterK: 4,
		})
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		t0 := c.net.Now()
		r, err := c.engines[0].Publish(ctx, []byte("evt"))
		if err != nil {
			return nil, err
		}
		c.net.Run()
		if sr.ticks > 0 {
			c.tickAll(ctx, sr.ticks, 20*time.Millisecond)
		}
		st := c.totalStats()
		control := st.IHaveSent + st.IWantSent + st.PullReqs + st.PullResps
		elapsed := float64(c.net.Now()-t0) / float64(time.Millisecond)
		t.AddRow(
			sr.style.String(),
			f3(c.coverage(r.ID)),
			i642s(st.Forwarded),
			i642s(control),
			f2(elapsed),
		)
	}
	t.Notes = "push is fastest; lazy push trades payload traffic for announce/request control messages and extra latency; " +
		"pull alone needs many rounds; push-pull combines push latency with repair; counter mongering (K=4) adapts traffic " +
		"without (f, r) sizing; flood maximizes traffic (~N per forwarder)."
	return []Table{t}, nil
}

// A2DedupCache ablates the seen-cache size: undersized caches forget rumor
// IDs while copies are still circulating, causing duplicate deliveries to
// the application (DESIGN.md decision 4).
func A2DedupCache(opt Options) ([]Table, error) {
	n := opt.pick(128, 64)
	events := opt.pick(120, 60)
	t := Table{
		ID:    "A2",
		Title: fmt.Sprintf("Seen-cache sizing (N=%d, %d events, f=3)", n, events),
		Columns: []string{
			"cache size", "redeliveries", "suppressed duplicates",
		},
	}
	// Sizes below the concurrent-rumor count thrash: evicted IDs are
	// re-accepted AND re-forwarded, so traffic grows combinatorially with
	// the shortfall. Sizes are chosen so the worst case stays tractable
	// while the redelivery cliff is clearly visible.
	for _, size := range []int{16, 64, 256, 4096} {
		c, err := newEngineCluster(n, opt.Seed+int64(size), engineParams{
			style:     gossip.StylePush,
			fanout:    3,
			hops:      defaultHops(n) + 2,
			seenCache: size,
		})
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		for e := 0; e < events; e++ {
			if _, err := c.engines[e%n].Publish(ctx, []byte("evt")); err != nil {
				return nil, err
			}
			// Interleave publishes with partial network drains so many
			// rumors circulate concurrently, stressing the cache.
			if e%8 == 7 {
				c.net.RunFor(2 * time.Millisecond)
			}
		}
		c.net.Run()
		st := c.totalStats()
		t.AddRow(i2s(size), i2s(c.redeliveries), i642s(st.Duplicates))
	}
	t.Notes = "once the cache comfortably exceeds the number of concurrently circulating rumors, redeliveries drop to zero; " +
		"the default (65536) is far above any realistic concurrent-rumor count."
	return []Table{t}, nil
}

// A3TargetAssignment ablates the Coordinator's target-assignment strategy
// (DESIGN.md decision: a Coordinator that "knows the entire list of
// subscribers" can balance in-degree). Balanced assignment removes the
// low-in-degree tail that per-registration random sampling leaves, lifting
// the fraction of nodes that receive *every* event.
func A3TargetAssignment(opt Options) ([]Table, error) {
	n := opt.pick(96, 32)
	events := opt.pick(40, 10)
	t := Table{
		ID:    "A3",
		Title: fmt.Sprintf("Coordinator target assignment (N=%d dissem, %d events, f=4)", n, events),
		Columns: []string{
			"strategy", "mean delivery", "nodes w/ complete stream", "worst node misses",
		},
	}
	for _, s := range []struct {
		name     string
		strategy core.TargetStrategy
	}{
		{"balanced", core.TargetBalanced},
		{"random", core.TargetRandom},
	} {
		d, err := newE0DeploymentStrategy(n, opt.Seed+int64(s.strategy), 4, defaultHops(n)+2, s.strategy)
		if err != nil {
			return nil, err
		}
		if _, err := d.run(events); err != nil {
			return nil, err
		}
		complete, worstMiss, totalDelivered := 0, 0, 0
		for _, app := range d.apps {
			got := app.Count()
			totalDelivered += got
			if got >= events {
				complete++
			}
			if miss := events - got; miss > worstMiss {
				worstMiss = miss
			}
		}
		t.AddRow(
			s.name,
			f3(float64(totalDelivered)/float64(events*n)),
			fmt.Sprintf("%d/%d", complete, n),
			i2s(worstMiss),
		)
	}
	t.Notes = "both strategies deliver well on average; balanced assignment eliminates the unlucky low-in-degree " +
		"nodes that random sampling starves, which is what pushes per-node completeness to ~100%."
	return []Table{t}, nil
}
