package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// engineCluster is a set of gossip engines over one simulated network, with
// per-node delivery records (delivery virtual time and hop depth).
type engineCluster struct {
	net     *simnet.Network
	addrs   []string
	engines []*gossip.Engine
	// deliveries[i][rumorID] records the virtual time of first delivery.
	deliveries []map[string]time.Duration
	// depths[i][rumorID] records hopBudget - remainingHops at delivery.
	depths []map[string]int
	// redeliveries counts Deliver callbacks beyond the first per (node, rumor).
	redeliveries int
	hops         int
}

type engineParams struct {
	style     gossip.Style
	fanout    int
	hops      int
	seenCache int
	counterK  int
}

func newEngineCluster(n int, seed int64, p engineParams) (*engineCluster, error) {
	net := simnet.New(simnet.DefaultConfig(seed))
	c := &engineCluster{
		net:        net,
		addrs:      make([]string, n),
		engines:    make([]*gossip.Engine, n),
		deliveries: make([]map[string]time.Duration, n),
		depths:     make([]map[string]int, n),
		hops:       p.hops,
	}
	for i := 0; i < n; i++ {
		c.addrs[i] = fmt.Sprintf("n%04d", i)
	}
	peers := gossip.NewStaticPeers(c.addrs)
	for i := 0; i < n; i++ {
		i := i
		c.deliveries[i] = make(map[string]time.Duration)
		c.depths[i] = make(map[string]int)
		eng, err := gossip.New(gossip.Config{
			Style:         p.style,
			Fanout:        p.fanout,
			Hops:          p.hops,
			Endpoint:      net.Node(c.addrs[i]),
			Peers:         peers,
			RNG:           rand.New(rand.NewSource(seed*7919 + int64(i))),
			SeenCacheSize: p.seenCache,
			CounterK:      p.counterK,
			Deliver: func(r gossip.Rumor) {
				if _, seen := c.deliveries[i][r.ID]; seen {
					c.redeliveries++
					return
				}
				c.deliveries[i][r.ID] = net.Now()
				c.depths[i][r.ID] = c.hops - r.Hops
			},
		})
		if err != nil {
			return nil, err
		}
		mux := transport.NewMux()
		eng.Register(mux)
		mux.Bind(net.Node(c.addrs[i]))
		c.engines[i] = eng
	}
	return c, nil
}

// coverage returns the fraction of eligible nodes that received the rumor.
// Crashed nodes are excluded (they cannot deliver).
func (c *engineCluster) coverage(id string) float64 {
	eligible, reached := 0, 0
	for i := range c.engines {
		if c.net.Crashed(c.addrs[i]) {
			continue
		}
		eligible++
		if _, ok := c.deliveries[i][id]; ok {
			reached++
		}
	}
	if eligible == 0 {
		return 0
	}
	return float64(reached) / float64(eligible)
}

// maxDepth returns the deepest hop level at which the rumor was delivered.
func (c *engineCluster) maxDepth(id string) int {
	max := 0
	for i := range c.engines {
		if d, ok := c.depths[i][id]; ok && d > max {
			max = d
		}
	}
	return max
}

// deliveryTimes returns all delivery times for the rumor, relative to t0.
func (c *engineCluster) deliveryTimes(id string, t0 time.Duration) []float64 {
	var out []float64
	for i := range c.engines {
		if at, ok := c.deliveries[i][id]; ok {
			out = append(out, float64(at-t0)/float64(time.Millisecond))
		}
	}
	return out
}

// tickAll runs one Tick on every engine and advances the network interval.
func (c *engineCluster) tickAll(ctx context.Context, rounds int, interval time.Duration) {
	for r := 0; r < rounds; r++ {
		for i, e := range c.engines {
			if c.net.Crashed(c.addrs[i]) {
				continue
			}
			e.Tick(ctx)
		}
		c.net.RunFor(interval)
	}
}

// totalStats sums engine counters across the cluster.
func (c *engineCluster) totalStats() gossip.Stats {
	var t gossip.Stats
	for _, e := range c.engines {
		s := e.Stats()
		t.Published += s.Published
		t.Delivered += s.Delivered
		t.Duplicates += s.Duplicates
		t.Forwarded += s.Forwarded
		t.IHaveSent += s.IHaveSent
		t.IWantSent += s.IWantSent
		t.PullReqs += s.PullReqs
		t.PullResps += s.PullResps
		t.SendErrors += s.SendErrors
	}
	return t
}

// defaultHops returns the standard epidemic hop budget for n nodes.
func defaultHops(n int) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n)))) + 2
}

// quantile returns the q-quantile of vals (nearest rank); 0 for empty input.
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
