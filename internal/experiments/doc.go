// Package experiments regenerates every experiment table: E0 (the paper's
// Figure 1 flow) plus the claim-validation experiments E1–E11 and the
// ablations A1–A3. Each experiment returns printable tables; the same code
// backs cmd/wsgossip-bench and the root testing.B benchmarks, so every
// number in the tables is regenerable with one command.
//
// Key types: Experiment (ID, title, Run), Registry (lookup by ID), Table
// (the printable result shape). The experiments pin the reproduction to the
// paper's claims: scalability (E1), coverage vs fanout (E2), resilience vs
// the WS-Notification baseline (E3), throughput under perturbation vs
// Bimodal Multicast (E4), load balance (E5), parameter tables vs the
// analytic model (E6), middleware overhead (E7), distributed coordinators
// (E8), churn (E9), aggregation (E10), and receiver-bound fan-in (E11).
// All runs are seeded and deterministic.
package experiments
