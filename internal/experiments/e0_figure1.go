package experiments

import (
	"context"
	"encoding/xml"
	"fmt"
	"math/rand"

	"wsgossip/internal/core"
	"wsgossip/internal/soap"
)

type e0Body struct {
	XMLName xml.Name `xml:"urn:example:stock Quote"`
	Symbol  string   `xml:"Symbol"`
	Price   float64  `xml:"Price"`
}

// e0Deployment is a WS-Gossip deployment over the in-memory SOAP bus.
type e0Deployment struct {
	bus      *soap.MemBus
	coord    *core.Coordinator
	init     *core.Initiator
	dissems  []*core.Disseminator
	apps     []*core.CollectingApp
	consumer *core.CollectingApp
}

// newE0Deployment builds a coordinator, an initiator, nDissem disseminators,
// and one unchanged consumer, all subscribed — Figure 1 generalized.
func newE0Deployment(nDissem int, seed int64, fanout, hops int) (*e0Deployment, error) {
	return newE0DeploymentStrategy(nDissem, seed, fanout, hops, core.TargetBalanced)
}

// newE0DeploymentStrategy is newE0Deployment with an explicit target
// assignment strategy (ablation A3).
func newE0DeploymentStrategy(nDissem int, seed int64, fanout, hops int, strategy core.TargetStrategy) (*e0Deployment, error) {
	bus := soap.NewMemBus()
	d := &e0Deployment{bus: bus}
	d.coord = core.NewCoordinator(core.CoordinatorConfig{
		Address:              "mem://coordinator",
		RNG:                  rand.New(rand.NewSource(seed)),
		Params:               func(int) (int, int) { return fanout, hops },
		TargetsPerRegistrant: fanout + 2,
		Strategy:             strategy,
	})
	bus.Register("mem://coordinator", d.coord.Handler())

	ctx := context.Background()
	for i := 0; i < nDissem; i++ {
		addr := fmt.Sprintf("mem://app%d", i+1)
		app := core.NewCollectingApp()
		dd, err := core.NewDisseminator(core.DisseminatorConfig{
			Address: addr,
			Caller:  bus,
			App:     app,
			RNG:     rand.New(rand.NewSource(seed + 100 + int64(i))),
		})
		if err != nil {
			return nil, err
		}
		bus.Register(addr, dd.Handler())
		d.dissems = append(d.dissems, dd)
		d.apps = append(d.apps, app)
		if err := core.SubscribeClient(ctx, bus, "mem://coordinator", addr, core.RoleDisseminator); err != nil {
			return nil, err
		}
	}
	d.consumer = core.NewCollectingApp()
	bus.Register("mem://consumer", core.NewConsumer(d.consumer).Handler())
	if err := core.SubscribeClient(ctx, bus, "mem://coordinator", "mem://consumer", core.RoleConsumer); err != nil {
		return nil, err
	}
	var err error
	d.init, err = core.NewInitiator(core.InitiatorConfig{
		Address:    "mem://app0b",
		Caller:     bus,
		Activation: "mem://coordinator",
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// runE0 executes one full Figure 1 interaction and returns summary metrics.
func (d *e0Deployment) run(notifications int) (map[string]int64, error) {
	ctx := context.Background()
	inter, err := d.init.StartInteraction(ctx)
	if err != nil {
		return nil, err
	}
	for i := 0; i < notifications; i++ {
		if _, _, err := d.init.Notify(ctx, inter, e0Body{Symbol: "ACME", Price: 40 + float64(i)}); err != nil {
			return nil, err
		}
	}
	m := map[string]int64{
		"notifications": int64(notifications),
		"fanout":        int64(inter.Params.Fanout),
		"hops":          int64(inter.Params.Hops),
	}
	reached := 0
	for i, app := range d.apps {
		if app.Count() >= notifications {
			reached++
		}
		st := d.dissems[i].Stats()
		m["dissem_received"] += st.Received
		m["dissem_delivered"] += st.Delivered
		m["dissem_duplicates"] += st.Duplicates
		m["dissem_forwarded"] += st.Forwarded
		m["dissem_registrations"] += st.Registrations
	}
	m["dissem_full_coverage"] = int64(reached)
	m["dissem_total"] = int64(len(d.dissems))
	m["consumer_copies"] = int64(d.consumer.Count())
	cs := d.coord.Stats()
	m["coord_activations"] = cs.Activations
	m["coord_registrations"] = cs.Registrations
	m["coord_subscribes"] = cs.Subscribes
	return m, nil
}

// E0Figure1 reproduces the paper's Figure 1 message flow at the exact
// four-application topology of the figure and at a 64-node scale-up,
// over real SOAP envelopes (in-memory binding).
func E0Figure1(opt Options) ([]Table, error) {
	small, err := newE0Deployment(2, opt.Seed, 2, 4)
	if err != nil {
		return nil, err
	}
	smallM, err := small.run(1)
	if err != nil {
		return nil, err
	}
	bigN := opt.pick(63, 15)
	big, err := newE0Deployment(bigN, opt.Seed+1, 3, defaultHops(bigN+1))
	if err != nil {
		return nil, err
	}
	bigM, err := big.run(1)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:      "E0",
		Title:   "Figure 1 flow: Activation, Subscription, Registration, op dissemination (SOAP envelopes, in-memory binding)",
		Columns: []string{"metric", "figure-1 (2 dissem + 1 consumer)", fmt.Sprintf("scale-up (%d dissem + 1 consumer)", bigN)},
	}
	rows := []string{
		"fanout", "hops",
		"coord_activations", "coord_subscribes", "coord_registrations",
		"dissem_total", "dissem_full_coverage",
		"dissem_delivered", "dissem_duplicates", "dissem_forwarded",
		"consumer_copies",
	}
	for _, k := range rows {
		t.AddRow(k, i642s(smallM[k]), i642s(bigM[k]))
	}
	t.Notes = "dissem_full_coverage == dissem_total means every disseminator's application received the op exactly once; " +
		"consumer_copies >= 1 shows the unchanged consumer is reached (it may receive duplicates — it has no gossip layer to suppress them, by design)."
	return []Table{t}, nil
}
