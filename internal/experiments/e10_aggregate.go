package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/core"
	"wsgossip/internal/epidemic"
	"wsgossip/internal/soap"
)

// e10Deployment is an aggregation deployment over the in-memory SOAP bus:
// a coordinator, n aggregation services with known local values, and one
// querier.
type e10Deployment struct {
	bus      *soap.MemBus
	coord    *core.Coordinator
	querier  *aggregate.Querier
	services []*aggregate.Service
	values   []float64
}

func newE10Deployment(n int, seed int64) (*e10Deployment, error) {
	ctx := context.Background()
	bus := soap.NewMemBus()
	d := &e10Deployment{bus: bus}
	d.coord = core.NewCoordinator(core.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(seed)),
	})
	bus.Register("mem://coordinator", d.coord.Handler())
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("mem://agg%04d", i)
		v := rng.Float64() * 1000
		d.values = append(d.values, v)
		value := v
		svc, err := aggregate.NewService(aggregate.ServiceConfig{
			Address: addr,
			Caller:  bus,
			Value:   func() float64 { return value },
			RNG:     rand.New(rand.NewSource(seed + 100 + int64(i))),
		})
		if err != nil {
			return nil, err
		}
		bus.Register(addr, svc.Handler())
		d.services = append(d.services, svc)
		if err := core.SubscribeClient(ctx, bus, "mem://coordinator", addr,
			core.RoleDisseminator, core.ProtocolAggregate); err != nil {
			return nil, err
		}
	}
	q, err := aggregate.NewQuerier(aggregate.QuerierConfig{
		Address:    "mem://querier",
		Caller:     bus,
		Activation: "mem://coordinator",
		RNG:        rand.New(rand.NewSource(seed + 7)),
	})
	if err != nil {
		return nil, err
	}
	bus.Register("mem://querier", q.Handler())
	if err := core.SubscribeClient(ctx, bus, "mem://coordinator", "mem://querier",
		core.RoleDisseminator, core.ProtocolAggregate); err != nil {
		return nil, err
	}
	d.querier = q
	return d, nil
}

// runAggregation starts an aggregation of fn and drives exchange rounds
// until the querier converges. Returns (estimate, rounds, participants).
func (d *e10Deployment) runAggregation(fn aggregate.Func) (float64, int, int, error) {
	ctx := context.Background()
	tk, err := d.querier.StartAggregation(ctx, fn)
	if err != nil {
		return 0, 0, 0, err
	}
	maxRounds := tk.Params.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100
	}
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		for _, svc := range d.services {
			svc.Tick(ctx)
		}
		d.querier.Tick(ctx)
		if d.querier.Converged(tk.ID) {
			rounds++
			break
		}
	}
	est, _ := d.querier.Estimate(tk.ID)
	participants := 0
	for _, svc := range d.services {
		if _, _, ok := svc.Mass(tk.ID); ok {
			participants++
		}
	}
	return est, rounds, participants, nil
}

// E10Aggregation measures gossip aggregation accuracy and convergence vs N:
// for each population size a Querier activates an aggregation interaction
// over real SOAP envelopes (in-memory binding), push-sum exchanges run until
// the querier's estimate stabilizes, and the converged estimate is compared
// with ground truth and with the analytic variance-decay model's round
// prediction.
func E10Aggregation(opt Options) ([]Table, error) {
	sizes := []int{16, 64, 256}
	if opt.Quick {
		sizes = []int{16, 64}
	}
	t := Table{
		ID:    "E10",
		Title: "aggregation accuracy and convergence vs N (push-sum over SOAP, fn=avg and count)",
		Columns: []string{
			"N", "fn", "participants", "truth", "estimate", "rel_err", "rounds", "analytic ε-rounds",
		},
	}
	for _, n := range sizes {
		for _, fn := range []aggregate.Func{aggregate.FuncAvg, aggregate.FuncCount} {
			d, err := newE10Deployment(n, opt.Seed+int64(n))
			if err != nil {
				return nil, err
			}
			est, rounds, participants, err := d.runAggregation(fn)
			if err != nil {
				return nil, err
			}
			// Ground truth is over ALL services, independent of how many
			// the start flood reached — a short count is an error the
			// table must show, not redefine away.
			var truth float64
			switch fn {
			case aggregate.FuncAvg:
				for _, v := range d.values {
					truth += v
				}
				truth /= float64(len(d.values))
			case aggregate.FuncCount:
				truth = float64(n)
			}
			relErr := math.Abs(est-truth) / math.Max(math.Abs(truth), 1e-12)
			// Fanout mirrors what the coordinator assigned (default policy).
			fanout, _ := core.DefaultParamPolicy(n + 1)
			analytic, err := epidemic.PushSumRoundsToEpsilon(n+1, fanout, core.DefaultAggEpsilon)
			if err != nil {
				return nil, err
			}
			t.AddRow(i2s(n), string(fn), i2s(participants), f3(truth), f3(est),
				fmt.Sprintf("%.2e", relErr), i2s(rounds), i2s(analytic))
		}
	}
	t.Notes = "rel_err stays far below 1e-2 at every N (the paper-level claim is 1%); rounds track the analytic " +
		"O(log(1/ε)/log(f+1)) variance-decay prediction plus the convergence-detection window, largely independent of N; " +
		"participants == N shows the start flood over the coordinator-assigned overlay reached every service."
	return []Table{t}, nil
}
