package experiments

import (
	"context"
	"encoding/xml"
	"fmt"
	"strings"
	"time"

	"wsgossip/internal/core"
	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
)

type e11Payload struct {
	XMLName xml.Name `xml:"urn:example:fanin Blob"`
	Data    string   `xml:"Data"`
}

// E11FanIn measures the receiver-bound side of the wire path: many senders
// converging on one consumer stack, so per-delivery cost is dominated by
// decode, addressing extraction, and dispatch rather than by fan-out
// encoding. This is the load profile of an aggregation sink or a popular
// subscriber — the complement of the sender-bound ForwardFanout benchmark —
// and the table BENCH_04 cites for the receiver-side win of the hand-rolled
// scanner. Each message is rendered per send from an encode-once template
// (matching the fan-out paths), delivered over the in-memory binding, and
// the per-delivery figure includes that render, so it slightly overstates
// pure receiver cost.
func E11FanIn(opt Options) ([]Table, error) {
	deliveries := opt.pick(20000, 2000)
	senders := 16

	app := soap.HandlerFunc(func(context.Context, *soap.Request) (*soap.Envelope, error) {
		return nil, nil
	})
	t := Table{
		ID:      "E11",
		Title:   fmt.Sprintf("Receiver-bound fan-in (%d senders, one consumer, in-process)", senders),
		Columns: []string{"payload", "deliveries", "ns/delivery"},
	}
	ctx := context.Background()
	for _, size := range []int{256, 1 << 10, 8 << 10} {
		bus := soap.NewMemBus()
		received := 0
		counting := soap.HandlerFunc(func(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
			received++
			return app.HandleSOAP(ctx, req)
		})
		bus.Register("mem://sink", core.NewConsumer(counting).Handler())

		// One template per sender: the stable message serialized once, the
		// per-send copy rendered at wsa:To exactly as the fan-out paths do.
		templates := make([]*soap.WireTemplate, senders)
		for i := range templates {
			env := soap.NewEnvelope()
			if err := env.SetAddressing(wsa.Headers{
				Action:    core.ActionNotify,
				MessageID: wsa.MessageID(fmt.Sprintf("urn:uuid:e11-%d", i)),
			}); err != nil {
				return nil, err
			}
			if err := env.SetBody(e11Payload{Data: strings.Repeat("r", size)}); err != nil {
				return nil, err
			}
			tmpl, err := env.EncodeTemplate()
			if err != nil {
				return nil, err
			}
			templates[i] = tmpl
		}

		start := time.Now()
		for i := 0; i < deliveries; i++ {
			tmpl := templates[i%senders]
			if err := bus.SendEncoded(ctx, "mem://sink", tmpl.RenderTo("mem://sink")); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		if received != deliveries {
			return nil, fmt.Errorf("e11: delivered %d of %d", received, deliveries)
		}
		t.AddRow(
			fmt.Sprintf("%dB", size),
			i2s(deliveries),
			fmt.Sprintf("%.0f", float64(elapsed.Nanoseconds())/float64(deliveries)),
		)
	}
	t.Notes = "per-delivery cost at the sink includes render, bus hand-off, decode, lazy addressing " +
		"extraction, and dispatch; compare with E7's isolated codec rows to attribute it."
	return []Table{t}, nil
}
