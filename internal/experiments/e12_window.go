package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/faults"
	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// E12WindowSizing is the share-sizing ablation for the epoch-windowed,
// acked push-sum exchange: the per-round fan-out controls how finely each
// node's mass is diced into acked shares. Small fan-out means few, heavy
// shares — cheap on the wire but slow to mix and fragile to a single lost
// share; large fan-out mixes faster and spreads risk but multiplies
// messages, acks, and retry bookkeeping. The table runs one continuous
// count query per fan-out over the lossy simulator and reports, per closed
// epoch, how accuracy, traffic, and repair work trade off — while the
// conservation residual stays pinned at exactly zero in every cell, which
// is the loss-tolerance claim the ablation rides on.
func E12WindowSizing(opt Options) ([]Table, error) {
	const (
		window   = 500 * time.Millisecond
		tick     = 20 * time.Millisecond
		lossRate = 0.10
		epochs   = 3
	)
	n := opt.pick(64, 16)

	t := Table{
		ID: "E12",
		Title: fmt.Sprintf("windowed exchange share sizing under %d%% loss (N=%d, %v windows, continuous count)",
			int(lossRate*100), n, window),
		Columns: []string{
			"fanout", "worst_rel_err", "mass_err_max", "msgs/node/epoch", "bytes/node/epoch", "retries/node", "dups/node",
		},
	}
	for _, fanout := range []int{1, 2, 4, 8} {
		net := simnet.New(simnet.DefaultConfig(opt.Seed + int64(fanout)))
		tbl := faults.NewTable()
		tbl.SetLoss(lossRate)
		net.SetFaults(tbl)
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("e12n%04d", i)
		}
		peers := gossip.NewStaticPeers(addrs)
		nodes := make([]*aggregate.SimNode, n)
		for i, addr := range addrs {
			node, err := aggregate.NewSimNode(aggregate.SimNodeConfig{
				Endpoint: net.Node(addr),
				Peers:    peers,
				Fanout:   fanout,
				TaskID:   "e12",
				Func:     aggregate.FuncCount,
				Value:    1,
				Root:     i == 0,
				RNG:      rand.New(rand.NewSource(opt.Seed*131 + int64(fanout)*1000 + int64(i))),
				Window:   window,
				Clock:    net,
			})
			if err != nil {
				return nil, err
			}
			mux := transport.NewMux()
			node.Register(mux)
			mux.Bind(net.Node(addr))
			nodes[i] = node
		}
		ctx := context.Background()
		var massErrMax float64
		horizon := time.Duration(epochs+1) * window
		for net.Now() < horizon {
			net.RunFor(tick)
			for _, node := range nodes {
				node.Tick(ctx)
			}
			for _, node := range nodes {
				massErrMax = math.Max(massErrMax, math.Abs(node.MassError()))
			}
		}
		if massErrMax != 0 {
			return nil, fmt.Errorf("e12: fanout %d broke conservation: mass error %g", fanout, massErrMax)
		}
		var worstErr float64
		var retries, dups int64
		for _, node := range nodes {
			fr, ok := node.Frozen()
			if !ok || !fr.Defined {
				worstErr = math.Inf(1)
				continue
			}
			worstErr = math.Max(worstErr, math.Abs(fr.Estimate-float64(n))/float64(n))
			st := node.SimStats()
			retries += st.Retries
			dups += st.Duplicates
		}
		st := net.Stats()
		t.AddRow(
			i2s(fanout),
			fmt.Sprintf("%.2e", worstErr),
			fmt.Sprintf("%g", massErrMax),
			f3(float64(st.Sent)/float64(n)/float64(epochs+1)),
			f3(float64(st.Bytes)/float64(n)/float64(epochs+1)),
			f3(float64(retries)/float64(n)),
			f3(float64(dups)/float64(n)),
		)
	}
	t.Notes = "mass_err_max is exactly 0 in every row — the acked exchange's conservation contract holds at every " +
		"sampled instant regardless of share sizing; accuracy improves with fan-out while messages, bytes, and " +
		"retry work grow roughly linearly, so the sweet spot sits at small fan-out (2-4) once the epoch window " +
		"gives the slower mixing time to finish."
	return []Table{t}, nil
}
