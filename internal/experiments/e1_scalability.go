package experiments

import (
	"context"
	"time"

	"wsgossip/internal/gossip"
)

// E1Scalability measures how dissemination latency and logical rounds grow
// with system size for push gossip (paper claim: scales to large numbers of
// participants; rounds grow O(log N)). A sequential-unicast sender (the
// degenerate centralized dissemination) is the baseline: its completion time
// grows linearly because one process serializes N sends.
func E1Scalability(opt Options) ([]Table, error) {
	sizes := []int{16, 64, 256, 1024, 4096}
	if opt.Quick {
		sizes = []int{16, 64, 256}
	}
	// sendGap models per-message sender-side serialization cost.
	const sendGap = 50 * time.Microsecond

	t := Table{
		ID:    "E1",
		Title: "Scalability: push gossip (f=3) vs sequential unicast, lossless LAN",
		Columns: []string{
			"N", "coverage", "rounds used", "t50 ms", "t99 ms", "t100 ms",
			"msgs/node", "unicast t100 ms",
		},
	}
	for _, n := range sizes {
		c, err := newEngineCluster(n, opt.Seed+int64(n), engineParams{
			style:  gossip.StylePush,
			fanout: 3,
			hops:   defaultHops(n) + 2,
		})
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		t0 := c.net.Now()
		r, err := c.engines[0].Publish(ctx, []byte("evt"))
		if err != nil {
			return nil, err
		}
		c.net.Run()
		times := c.deliveryTimes(r.ID, t0)
		stats := c.totalStats()
		msgsPerNode := float64(stats.Forwarded) / float64(n)

		// Sequential unicast baseline: one sender, N-1 sends spaced by
		// sendGap, each then subject to one link latency. Completion is the
		// last send time plus its delivery latency, measured on the same
		// simulated fabric.
		unicastT100, err := sequentialUnicast(n, opt.Seed+int64(n)+1, sendGap)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			i2s(n),
			f3(c.coverage(r.ID)),
			i2s(c.maxDepth(r.ID)),
			f2(quantile(times, 0.5)),
			f2(quantile(times, 0.99)),
			f2(quantile(times, 1.0)),
			f2(msgsPerNode),
			f2(unicastT100),
		)
	}
	t.Notes = "rounds used grows ~log2(N) and msgs/node stays ~f, while the sequential unicast " +
		"completion time grows linearly in N — the paper's scalability argument."
	return []Table{t}, nil
}

// sequentialUnicast simulates one sender delivering to n-1 receivers one at
// a time and returns the completion time (last delivery) in milliseconds.
func sequentialUnicast(n int, seed int64, gap time.Duration) (float64, error) {
	c, err := newEngineCluster(n, seed, engineParams{
		style:  gossip.StylePush,
		fanout: 1,
		hops:   0, // receivers must not forward; this is pure unicast fan-out
	})
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	// Schedule the sends spaced by gap from the sender node, bypassing the
	// engine (the engine would not forward at hops 0); receivers record
	// delivery through their engines via Inject-equivalent push messages.
	var last time.Duration
	for i := 1; i < n; i++ {
		i := i
		at := time.Duration(i-1) * gap
		c.net.AfterFunc(at, func() {
			c.engines[i].Inject(ctx, gossip.Rumor{ID: "uni", Origin: c.addrs[0], Hops: 0, Payload: []byte("evt")})
		})
	}
	c.net.Run()
	for i := 1; i < n; i++ {
		if at, ok := c.deliveries[i]["uni"]; ok && at > last {
			last = at
		}
	}
	// Add one link latency (the injection shortcut skips the wire; a real
	// send pays ~3ms mean on the default LAN profile).
	return float64(last)/float64(time.Millisecond) + 3.0, nil
}
