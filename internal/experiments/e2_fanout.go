package experiments

import (
	"context"

	"wsgossip/internal/epidemic"
	"wsgossip/internal/gossip"
)

// E2FanoutCoverage measures delivery coverage as a function of fanout f and
// compares it with the analytic epidemic prediction (Eugster et al. 2004).
// This validates the paper's Section 2 claim that "parameters f and r can be
// configured such that any desired average number of receivers successfully
// get the message", and that atomic delivery is achieved with high
// probability once f clears the threshold.
func E2FanoutCoverage(opt Options) ([]Table, error) {
	n := opt.pick(1024, 256)
	trials := opt.pick(20, 5)
	hops := defaultHops(n) + 4

	t := Table{
		ID:    "E2",
		Title: "Coverage vs fanout: measured (simulated push) vs analytic prediction",
		Columns: []string{
			"f", "measured coverage", "predicted coverage", "atomic runs",
			"predicted P(atomic)",
		},
	}
	for f := 1; f <= 8; f++ {
		var covSum float64
		atomic := 0
		for trial := 0; trial < trials; trial++ {
			c, err := newEngineCluster(n, opt.Seed+int64(f*1000+trial), engineParams{
				style:  gossip.StylePush,
				fanout: f,
				hops:   hops,
			})
			if err != nil {
				return nil, err
			}
			origin := trial % n
			r, err := c.engines[origin].Publish(context.Background(), []byte("evt"))
			if err != nil {
				return nil, err
			}
			c.net.Run()
			cov := c.coverage(r.ID)
			covSum += cov
			if cov == 1.0 {
				atomic++
			}
		}
		predicted, err := epidemic.ExpectedCoverage(n, f, hops)
		if err != nil {
			return nil, err
		}
		pAtomic, err := epidemic.AtomicityProbability(n, f, hops)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			i2s(f),
			f3(covSum/float64(trials)),
			f3(predicted),
			i2s(atomic)+"/"+i2s(trials),
			f3(pAtomic),
		)
	}
	t.Notes = "coverage follows the final-size equation z = 1 - exp(-f z) (~0.80 at f=2, ~0.94 at f=3, >0.999 at f>=7); " +
		"the atomic-run fraction tracks the Poisson-miss prediction, rising towards 1 as f grows — the 'atomically delivered w.h.p.' claim."
	return []Table{t}, nil
}
