package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
	"wsgossip/internal/wsn"
)

// E3Resilience measures delivery ratio under crash faults and message loss
// for gossip dissemination versus the centralized WS-Notification broker
// (paper claim: gossip protocols are "highly resilient to network and
// process faults"; centralized dissemination is the brittle alternative).
func E3Resilience(opt Options) ([]Table, error) {
	n := opt.pick(512, 128)
	trials := opt.pick(5, 2)

	crash := Table{
		ID:    "E3a",
		Title: fmt.Sprintf("Delivery ratio among surviving nodes vs crashed fraction (N=%d)", n),
		Columns: []string{
			"crashed %", "push f=4", "push-pull f=4", "wsn broker",
		},
	}
	for _, pct := range []int{0, 10, 20, 30, 40, 50} {
		push, err := gossipUnderCrash(n, opt.Seed+int64(pct), pct, trials, gossip.StylePush, false)
		if err != nil {
			return nil, err
		}
		pushPull, err := gossipUnderCrash(n, opt.Seed+int64(pct)+500, pct, trials, gossip.StylePushPull, true)
		if err != nil {
			return nil, err
		}
		broker, err := brokerUnderCrash(n, opt.Seed+int64(pct)+900, pct, trials, 0)
		if err != nil {
			return nil, err
		}
		crash.AddRow(i2s(pct)+"%", f3(push), f3(pushPull), f3(broker))
	}
	crash.Notes = "plain push degrades gracefully: every crashed target wastes one of a node's f transmissions, so the " +
		"effective fanout falls with the crash fraction, yet even at 50% crashed most survivors are reached with no retry logic at all; " +
		"push-pull repair restores survivors to 1.0. The broker reaches survivors too (crashes of subscribers do not hurt it) but is a " +
		"single point of failure — crash the broker and delivery is 0 (see wsn tests)."

	loss := Table{
		ID:    "E3b",
		Title: fmt.Sprintf("Delivery ratio vs message loss (N=%d, no crashes)", n),
		Columns: []string{
			"loss %", "push f=4", "push-pull f=4 (+repair)", "wsn broker",
		},
	}
	for _, pct := range []int{0, 10, 20, 30, 40} {
		rate := float64(pct) / 100
		push, err := gossipUnderLoss(n, opt.Seed+int64(pct)+1300, rate, trials, gossip.StylePush, false)
		if err != nil {
			return nil, err
		}
		pushPull, err := gossipUnderLoss(n, opt.Seed+int64(pct)+1700, rate, trials, gossip.StylePushPull, true)
		if err != nil {
			return nil, err
		}
		broker, err := brokerUnderCrash(n, opt.Seed+int64(pct)+2100, 0, trials, rate)
		if err != nil {
			return nil, err
		}
		loss.AddRow(i2s(pct)+"%", f3(push), f3(pushPull), f3(broker))
	}
	loss.Notes = "the broker loses exactly the link loss rate (one try per subscriber, no redundancy); " +
		"push gossip's redundant paths absorb most loss, and push-pull anti-entropy repairs the rest to ~1.0."
	return []Table{crash, loss}, nil
}

func gossipUnderCrash(n int, seed int64, crashPct, trials int, style gossip.Style, repair bool) (float64, error) {
	var sum float64
	for trial := 0; trial < trials; trial++ {
		c, err := newEngineCluster(n, seed+int64(trial)*31, engineParams{
			style:  style,
			fanout: 4,
			hops:   defaultHops(n) + 2,
		})
		if err != nil {
			return 0, err
		}
		rng := rand.New(rand.NewSource(seed + int64(trial)))
		crashed := gossip.SamplePeers(rng, c.addrs, n*crashPct/100, c.addrs[0])
		for _, a := range crashed {
			c.net.Crash(a)
		}
		r, err := c.engines[0].Publish(context.Background(), []byte("evt"))
		if err != nil {
			return 0, err
		}
		c.net.Run()
		if repair {
			c.tickAll(context.Background(), 10, 20*time.Millisecond)
		}
		sum += c.coverage(r.ID)
	}
	return sum / float64(trials), nil
}

func gossipUnderLoss(n int, seed int64, loss float64, trials int, style gossip.Style, repair bool) (float64, error) {
	var sum float64
	for trial := 0; trial < trials; trial++ {
		c, err := newEngineCluster(n, seed+int64(trial)*37, engineParams{
			style:  style,
			fanout: 4,
			hops:   defaultHops(n) + 2,
		})
		if err != nil {
			return 0, err
		}
		c.net.SetLossRate(loss)
		r, err := c.engines[0].Publish(context.Background(), []byte("evt"))
		if err != nil {
			return 0, err
		}
		c.net.Run()
		if repair {
			c.tickAll(context.Background(), 10, 20*time.Millisecond)
		}
		sum += c.coverage(r.ID)
	}
	return sum / float64(trials), nil
}

// brokerUnderCrash runs the WS-Notification baseline with a crashed
// subscriber fraction and link loss, returning delivery ratio among
// survivors.
func brokerUnderCrash(n int, seed int64, crashPct, trials int, loss float64) (float64, error) {
	var sum float64
	for trial := 0; trial < trials; trial++ {
		net := simnet.New(simnet.DefaultConfig(seed + int64(trial)*41))
		broker := wsn.NewBroker(net.Node("broker"))
		bmux := transport.NewMux()
		broker.Register(bmux)
		bmux.Bind(net.Node("broker"))
		consumers := make([]*wsn.Consumer, n)
		addrs := make([]string, n)
		for i := 0; i < n; i++ {
			addrs[i] = fmt.Sprintf("c%04d", i)
			consumers[i] = wsn.NewConsumer(net.Node(addrs[i]))
			mux := transport.NewMux()
			consumers[i].Register(mux)
			mux.Bind(net.Node(addrs[i]))
			broker.SubscribeLocal(addrs[i])
		}
		rng := rand.New(rand.NewSource(seed + int64(trial)))
		crashed := gossip.SamplePeers(rng, addrs, n*crashPct/100, "")
		for _, a := range crashed {
			net.Crash(a)
		}
		net.SetLossRate(loss)
		if err := broker.Publish(context.Background(), wsn.Notification{ID: "evt"}); err != nil {
			return 0, err
		}
		net.Run()
		alive, reached := 0, 0
		for i := range consumers {
			if net.Crashed(addrs[i]) {
				continue
			}
			alive++
			if consumers[i].Has("evt") {
				reached++
			}
		}
		if alive > 0 {
			sum += float64(reached) / float64(alive)
		}
	}
	return sum / float64(trials), nil
}
