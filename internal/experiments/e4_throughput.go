package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"wsgossip/internal/bimodal"
	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// E4Throughput regenerates the Bimodal Multicast throughput-under-
// perturbation result (Birman et al. 1999, the paper's reference [2] and the
// source of its "stable high throughput" motivation): as a growing fraction
// of receivers is perturbed (slow, lossy processes), pbcast's healthy-node
// throughput stays flat while the ACK-based reliable multicast collapses,
// because its sender waits for the slowest receiver on every message.
func E4Throughput(opt Options) ([]Table, error) {
	n := opt.pick(128, 32)
	messages := opt.pick(150, 40)
	sendEvery := 5 * time.Millisecond
	perturbSlow := 40 * time.Millisecond
	perturbDrop := 0.5

	t := Table{
		ID:    "E4",
		Title: fmt.Sprintf("Throughput under perturbation (N=%d, %d msgs): pbcast vs ACK-based reliable multicast", n, messages),
		Columns: []string{
			"perturbed %", "pbcast healthy msg/s", "pbcast perturbed delivery", "ackmc msg/s",
		},
	}
	for _, pct := range []int{0, 5, 10, 15, 20, 25} {
		perturbed := n * pct / 100
		healthyTput, perturbedDelivery, err := pbcastRun(n, perturbed, messages, sendEvery, perturbSlow, perturbDrop, opt.Seed+int64(pct))
		if err != nil {
			return nil, err
		}
		ackTput, err := ackmcRun(n, perturbed, messages, perturbSlow, opt.Seed+int64(pct)+7000)
		if err != nil {
			return nil, err
		}
		t.AddRow(i2s(pct)+"%", f2(healthyTput), f3(perturbedDelivery), f2(ackTput))
	}
	t.Notes = "pbcast healthy throughput stays ~flat (the sender never waits) and perturbed nodes still recover " +
		"most messages through anti-entropy; the ACK-based protocol's throughput collapses as soon as any receiver is slow — " +
		"the bimodal multicast result the paper builds its motivation on."
	return []Table{t}, nil
}

// pbcastRun returns healthy-node throughput (unique deliveries per virtual
// second at healthy nodes) and the mean delivery fraction at perturbed nodes
// after repair rounds.
func pbcastRun(n, perturbed, messages int, sendEvery, slow time.Duration, drop float64, seed int64) (float64, float64, error) {
	net := simnet.New(simnet.DefaultConfig(seed))
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("p%04d", i)
	}
	peers := gossip.NewStaticPeers(addrs)
	nodes := make([]*bimodal.Node, n)
	for i := range addrs {
		dropRate := 0.0
		if i >= n-perturbed && i != 0 {
			dropRate = drop
			net.SetSlowdown(addrs[i], slow)
		}
		node, err := bimodal.NewNode(bimodal.NodeConfig{
			Endpoint: net.Node(addrs[i]),
			Peers:    peers,
			Fanout:   2,
			RNG:      rand.New(rand.NewSource(seed + int64(i))),
			DropRate: dropRate,
		})
		if err != nil {
			return 0, 0, err
		}
		mux := transport.NewMux()
		node.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		nodes[i] = node
	}
	ctx := context.Background()
	// Sender publishes at a fixed rate; all nodes gossip-repair every 10ms.
	for m := 0; m < messages; m++ {
		at := time.Duration(m) * sendEvery
		net.AfterFunc(at, func() {
			_, _ = nodes[0].Multicast(ctx, []byte("m"))
		})
	}
	span := time.Duration(messages) * sendEvery
	for tick := time.Duration(0); tick < span+300*time.Millisecond; tick += 10 * time.Millisecond {
		net.AfterFunc(tick, func() {
			for _, node := range nodes {
				node.Tick(ctx)
			}
		})
	}
	net.Run()
	elapsed := float64(span+300*time.Millisecond) / float64(time.Second)
	healthy := 0
	var healthySum float64
	var perturbedSum float64
	perturbedCount := 0
	for i := 1; i < n; i++ {
		frac := float64(nodes[i].DeliveredFrom(addrs[0]))
		if i >= n-perturbed {
			perturbedSum += frac / float64(messages)
			perturbedCount++
		} else {
			healthySum += frac
			healthy++
		}
	}
	healthyTput := 0.0
	if healthy > 0 {
		healthyTput = healthySum / float64(healthy) / elapsed
	}
	perturbedDelivery := 1.0
	if perturbedCount > 0 {
		perturbedDelivery = perturbedSum / float64(perturbedCount)
	}
	return healthyTput, perturbedDelivery, nil
}

// ackmcRun returns the ACK-based sender's completed-message throughput.
func ackmcRun(n, perturbed, messages int, slow time.Duration, seed int64) (float64, error) {
	net := simnet.New(simnet.DefaultConfig(seed))
	members := make([]string, 0, n-1)
	for i := 1; i < n; i++ {
		members = append(members, fmt.Sprintf("r%04d", i))
	}
	sender := bimodal.NewAckSender(net.Node("s"), members)
	smux := transport.NewMux()
	sender.Register(smux)
	smux.Bind(net.Node("s"))
	for i, m := range members {
		r := bimodal.NewAckReceiver(net.Node(m))
		mux := transport.NewMux()
		r.Register(mux)
		mux.Bind(net.Node(m))
		if i >= len(members)-perturbed {
			net.SetSlowdown(m, slow)
		}
	}
	ctx := context.Background()
	sent := 1
	sender.SetOnComplete(func(uint64) {
		if sent < messages {
			sent++
			_, _ = sender.Multicast(ctx, []byte("m"))
		}
	})
	if _, err := sender.Multicast(ctx, []byte("m")); err != nil {
		return 0, err
	}
	net.Run()
	elapsed := float64(net.Now()) / float64(time.Second)
	if elapsed == 0 {
		return 0, nil
	}
	return float64(sender.Completed()) / elapsed, nil
}
