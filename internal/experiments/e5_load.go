package experiments

import (
	"context"
	"fmt"

	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
	"wsgossip/internal/wsn"
)

// E5Load measures per-node message load versus system size: gossip spreads
// the forwarding work so each node sends O(f) messages per event, while the
// centralized broker's send load grows linearly with the subscriber count —
// the structural reason the paper gives for gossip's scalability.
func E5Load(opt Options) ([]Table, error) {
	sizes := []int{64, 256, 1024, 2048}
	if opt.Quick {
		sizes = []int{64, 256}
	}
	t := Table{
		ID:    "E5",
		Title: "Per-node send load per disseminated event: gossip (f=3) vs centralized broker",
		Columns: []string{
			"N", "gossip mean sends/node", "gossip max sends/node", "broker sends",
		},
	}
	for _, n := range sizes {
		c, err := newEngineCluster(n, opt.Seed+int64(n), engineParams{
			style:  gossip.StylePush,
			fanout: 3,
			hops:   defaultHops(n) + 2,
		})
		if err != nil {
			return nil, err
		}
		if _, err := c.engines[0].Publish(context.Background(), []byte("evt")); err != nil {
			return nil, err
		}
		c.net.Run()
		var total, max int64
		for _, e := range c.engines {
			f := e.Stats().Forwarded
			total += f
			if f > max {
				max = f
			}
		}
		brokerSends, err := brokerLoad(n, opt.Seed+int64(n)+1)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			i2s(n),
			f2(float64(total)/float64(n)),
			i642s(max),
			i642s(brokerSends),
		)
	}
	t.Notes = "gossip per-node load is bounded by the fanout independent of N; the broker's hotspot load equals N. " +
		"This is the load-balance argument for gossip as a structuring paradigm."
	return []Table{t}, nil
}

func brokerLoad(n int, seed int64) (int64, error) {
	net := simnet.New(simnet.DefaultConfig(seed))
	broker := wsn.NewBroker(net.Node("broker"))
	mux := transport.NewMux()
	broker.Register(mux)
	mux.Bind(net.Node("broker"))
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("c%04d", i)
		cons := wsn.NewConsumer(net.Node(addr))
		cmux := transport.NewMux()
		cons.Register(cmux)
		cmux.Bind(net.Node(addr))
		broker.SubscribeLocal(addr)
	}
	if err := broker.Publish(context.Background(), wsn.Notification{ID: "evt"}); err != nil {
		return 0, err
	}
	net.Run()
	return broker.Stats().NotifiesSent, nil
}
