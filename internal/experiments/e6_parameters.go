package experiments

import (
	"context"

	"wsgossip/internal/epidemic"
	"wsgossip/internal/gossip"
)

// E6ParameterTable sweeps the (fanout, rounds) grid and compares measured
// coverage against the analytic model, producing the configuration table a
// WS-Gossip Coordinator's parameter policy is built from (paper Section 2:
// "parameters can be configured such that any desired average number of
// receivers successfully get the message").
func E6ParameterTable(opt Options) ([]Table, error) {
	n := opt.pick(1000, 200)
	trials := opt.pick(5, 2)
	fanouts := []int{1, 2, 3, 4, 6, 8}
	rounds := []int{4, 8, 12, 16}

	t := Table{
		ID:      "E6",
		Title:   "Coverage for (f, r) configurations: measured vs predicted",
		Columns: []string{"f", "r", "measured", "predicted", "|err|"},
	}
	for _, f := range fanouts {
		for _, r := range rounds {
			var sum float64
			for trial := 0; trial < trials; trial++ {
				c, err := newEngineCluster(n, opt.Seed+int64(f*100000+r*100+trial), engineParams{
					style:  gossip.StylePush,
					fanout: f,
					hops:   r,
				})
				if err != nil {
					return nil, err
				}
				rumor, err := c.engines[trial%n].Publish(context.Background(), []byte("evt"))
				if err != nil {
					return nil, err
				}
				c.net.Run()
				sum += c.coverage(rumor.ID)
			}
			measured := sum / float64(trials)
			predicted, err := epidemic.ExpectedCoverage(n, f, r)
			if err != nil {
				return nil, err
			}
			diff := measured - predicted
			if diff < 0 {
				diff = -diff
			}
			t.AddRow(i2s(f), i2s(r), f3(measured), f3(predicted), f3(diff))
		}
	}
	t.Notes = "the mean-field model tracks the simulator within a few percent across the grid; a Coordinator " +
		"uses exactly this table (via epidemic.RoundsForCoverage) to hand out 'adequate parameter configurations'."

	sizing := Table{
		ID:      "E6b",
		Title:   "Rounds needed for 99% expected coverage (model)",
		Columns: []string{"N", "f=3", "f=4", "f=5", "f=6", "f=8"},
	}
	for _, size := range []int{100, 1000, 10000, 100000} {
		row := []string{i2s(size)}
		for _, f := range []int{3, 4, 5, 6, 8} {
			r, err := epidemic.RoundsForCoverage(size, f, 0.99, 200)
			if err != nil {
				return nil, err
			}
			if r > 200 {
				row = append(row, "n/a")
			} else {
				row = append(row, i2s(r))
			}
		}
		sizing.AddRow(row...)
	}
	sizing.Notes = "under infect-and-die push the final size is 1 - exp(-f z): f<=4 can NEVER reach 99% however many " +
		"rounds run (n/a); from f=5 the target is reachable and rounds grow ~log N. A Coordinator wanting 99% from a " +
		"low fanout must add a pull/repair phase instead (see E3b)."
	return []Table{t, sizing}, nil
}
