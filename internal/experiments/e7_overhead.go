package experiments

import (
	"context"
	"encoding/xml"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"wsgossip/internal/core"
	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
	"wsgossip/internal/wscoord"
)

type e7Payload struct {
	XMLName xml.Name `xml:"urn:example:load Blob"`
	Data    string   `xml:"Data"`
}

// E7Overhead measures the middleware cost WS-Gossip adds: SOAP envelope
// codec cost, the gossip handler's interception overhead relative to a bare
// application call, and the consumer-unchanged check (a consumer stack
// processes gossiped messages with zero gossip code and zero coordinator
// contact). These are the paper's "minimal to none application code
// changes" and Disseminator-handler claims, quantified.
func E7Overhead(opt Options) ([]Table, error) {
	iters := opt.pick(20000, 2000)

	// Representative 1 KiB notification.
	payload := e7Payload{Data: strings.Repeat("q", 1024)}
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To: "mem://x", Action: core.ActionNotify, MessageID: wsa.NewMessageID(),
	}); err != nil {
		return nil, err
	}
	if err := wscoord.AttachContext(env, wscoord.CoordinationContext{
		Identifier:          "urn:uuid:e7",
		CoordinationType:    core.CoordinationTypeGossip,
		RegistrationService: wscoord.ServiceRef{Address: "mem://coordinator"},
	}); err != nil {
		return nil, err
	}
	if err := core.SetGossipHeader(env, core.GossipHeader{
		InteractionID: "urn:uuid:e7", MessageID: "m", Hops: 5,
	}); err != nil {
		return nil, err
	}
	if err := env.SetBody(payload); err != nil {
		return nil, err
	}

	encoded, err := env.Encode()
	if err != nil {
		return nil, err
	}

	encodeNs := timeIt(iters, func() {
		_, _ = env.Encode()
	})
	decodeNs := timeIt(iters, func() {
		_, _ = soap.Decode(encoded)
	})

	// Interception overhead: bare app call vs the same call through the
	// gossip layer (seen-cache hit path and pass-through path).
	app := soap.HandlerFunc(func(context.Context, *soap.Request) (*soap.Envelope, error) {
		return nil, nil
	})
	bus := soap.NewMemBus()
	diss, err := core.NewDisseminator(core.DisseminatorConfig{
		Address: "mem://d", Caller: bus, App: app,
		RNG: rand.New(rand.NewSource(opt.Seed)),
	})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	req := &soap.Request{Envelope: env}
	handler := diss.Handler()
	// Prime the seen cache so the loop measures the duplicate-suppression
	// fast path, the steady-state cost per re-received gossip message.
	if _, err := handler.HandleSOAP(ctx, req); err != nil {
		return nil, err
	}
	bareNs := timeIt(iters, func() {
		_, _ = app.HandleSOAP(ctx, req)
	})
	dupPathNs := timeIt(iters, func() {
		_, _ = handler.HandleSOAP(ctx, req)
	})
	plainEnv := soap.NewEnvelope()
	if err := plainEnv.SetAddressing(wsa.Headers{To: "mem://d", Action: core.ActionNotify}); err != nil {
		return nil, err
	}
	if err := plainEnv.SetBody(payload); err != nil {
		return nil, err
	}
	plainReq := &soap.Request{Envelope: plainEnv}
	passNs := timeIt(iters, func() {
		_, _ = handler.HandleSOAP(ctx, plainReq)
	})

	t := Table{
		ID:      "E7",
		Title:   "Middleware overhead (1 KiB notification, in-process)",
		Columns: []string{"operation", "ns/op"},
	}
	t.AddRow("soap envelope encode", fmt.Sprintf("%.0f", encodeNs))
	t.AddRow("soap envelope decode", fmt.Sprintf("%.0f", decodeNs))
	t.AddRow("bare application call", fmt.Sprintf("%.0f", bareNs))
	t.AddRow("gossip layer, duplicate suppression path", fmt.Sprintf("%.0f", dupPathNs))
	t.AddRow("gossip layer, non-gossip pass-through", fmt.Sprintf("%.0f", passNs))
	t.AddRow("envelope size (bytes)", i2s(len(encoded)))
	t.Notes = "the gossip layer adds microseconds per message against the milliseconds of a network hop; " +
		"pass-through of non-gossip traffic costs one failed header lookup."

	// Consumer-unchanged check (boolean table).
	check, err := consumerUnchangedCheck(opt)
	if err != nil {
		return nil, err
	}
	return []Table{t, *check}, nil
}

func timeIt(iters int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// consumerUnchangedCheck runs one dissemination through a consumer whose
// handler stack contains no gossip code and verifies delivery, header
// pass-through, and zero coordinator contact from the consumer.
func consumerUnchangedCheck(opt Options) (*Table, error) {
	bus := soap.NewMemBus()
	coord := core.NewCoordinator(core.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(opt.Seed + 5)),
	})
	bus.Register("mem://coordinator", coord.Handler())
	var delivered, headerIntact bool
	app := soap.HandlerFunc(func(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
		delivered = true
		if _, err := core.GossipHeaderFrom(req.Envelope); err == nil {
			headerIntact = true
		}
		return nil, nil
	})
	bus.Register("mem://consumer", core.NewConsumer(app).Handler())
	ctx := context.Background()
	if err := coord.SubscribeLocal(ctx, "mem://consumer", core.RoleConsumer); err != nil {
		return nil, err
	}
	init, err := core.NewInitiator(core.InitiatorConfig{
		Address: "mem://init", Caller: bus, Activation: "mem://coordinator",
	})
	if err != nil {
		return nil, err
	}
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		return nil, err
	}
	if _, _, err := init.Notify(ctx, inter, e7Payload{Data: "x"}); err != nil {
		return nil, err
	}
	noConsumerRegistration := coord.Stats().Registrations == 1 // initiator only
	t := Table{
		ID:      "E7b",
		Title:   "Consumer-unchanged verification",
		Columns: []string{"check", "result"},
	}
	bool2s := func(v bool) string {
		if v {
			return "pass"
		}
		return "FAIL"
	}
	t.AddRow("consumer received notification", bool2s(delivered))
	t.AddRow("gossip header passed through unexamined", bool2s(headerIntact))
	t.AddRow("consumer never contacted the coordinator", bool2s(noConsumerRegistration))
	return &t, nil
}
