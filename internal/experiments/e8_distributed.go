package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"wsgossip/internal/core"
	"wsgossip/internal/soap"
	"wsgossip/internal/wscoord"
)

// E8DistributedCoordinator evaluates the distributed Coordinator the paper's
// Section 3 sketches ("a distributed Coordinator is supported by
// WS-Coordination ... as the list of subscribers can be maintained in a
// distributed fashion as proposed by WS-Membership"): k coordinator
// replicas share the subscription list; activities and registrations are
// spread across them. The table reports load balance and view consistency.
func E8DistributedCoordinator(opt Options) ([]Table, error) {
	subscribers := opt.pick(512, 128)
	activities := opt.pick(40, 8)
	regsPerActivity := opt.pick(10, 4)

	t := Table{
		ID:    "E8",
		Title: fmt.Sprintf("Distributed coordinator: %d subscribers, %d activities x %d registrations", subscribers, activities, regsPerActivity),
		Columns: []string{
			"coordinators", "views consistent", "max regs/coord", "min regs/coord",
			"max subs/coord", "replication msgs",
		},
	}
	for _, k := range []int{1, 2, 4, 8} {
		row, err := runE8(k, subscribers, activities, regsPerActivity, opt.Seed+int64(k))
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.Notes = "subscription views stay consistent across replicas while registration and subscribe load split ~evenly; " +
		"replication cost grows with k (each subscribe is forwarded to k-1 replicas)."
	return []Table{t}, nil
}

func runE8(k, subscribers, activities, regsPerActivity int, seed int64) ([]string, error) {
	bus := soap.NewMemBus()
	addrs := make([]string, k)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("mem://coord%d", i)
	}
	coords := make([]*core.Coordinator, k)
	for i := range addrs {
		var replicas []string
		for j, other := range addrs {
			if j != i {
				replicas = append(replicas, other)
			}
		}
		coords[i] = core.NewCoordinator(core.CoordinatorConfig{
			Address:  addrs[i],
			RNG:      rand.New(rand.NewSource(seed + int64(i))),
			Caller:   bus,
			Replicas: replicas,
		})
		bus.Register(addrs[i], coords[i].Handler())
	}
	ctx := context.Background()
	// Subscribers arrive round-robin at the k coordinators.
	for i := 0; i < subscribers; i++ {
		endpoint := fmt.Sprintf("mem://sub%04d", i)
		if err := core.SubscribeClient(ctx, bus, addrs[i%k], endpoint, core.RoleDisseminator); err != nil {
			return nil, err
		}
	}
	// Activities round-robin; each activity receives registrations at its
	// own coordinator (the context pins the Registration service).
	for a := 0; a < activities; a++ {
		owner := coords[a%k]
		cctx, err := owner.CreateActivity()
		if err != nil {
			return nil, err
		}
		for r := 0; r < regsPerActivity; r++ {
			participant := fmt.Sprintf("mem://sub%04d", (a*regsPerActivity+r)%subscribers)
			regClient := wscoord.NewRegistrationClient(bus, participant)
			if _, err := regClient.Register(ctx, cctx, core.ProtocolPushGossip, participant); err != nil {
				return nil, err
			}
		}
	}
	consistent := true
	for _, c := range coords {
		if len(c.Subscribers()) != subscribers {
			consistent = false
		}
	}
	maxRegs, minRegs := int64(-1), int64(-1)
	maxSubs := int64(0)
	var replications int64
	for _, c := range coords {
		st := c.Stats()
		if maxRegs < 0 || st.Registrations > maxRegs {
			maxRegs = st.Registrations
		}
		if minRegs < 0 || st.Registrations < minRegs {
			minRegs = st.Registrations
		}
		if st.Subscribes > maxSubs {
			maxSubs = st.Subscribes
		}
		replications += st.Replications
	}
	consStr := "yes"
	if !consistent {
		consStr = "NO"
	}
	return []string{
		i2s(k), consStr, i642s(maxRegs), i642s(minRegs), i642s(maxSubs), i642s(replications),
	}, nil
}
