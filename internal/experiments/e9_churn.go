package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"wsgossip/internal/gossip"
	"wsgossip/internal/membership"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// E9Churn measures dissemination quality while the membership itself is in
// flux — nodes crash and fresh nodes join mid-stream, with peer selection
// driven by the gossip-based membership service rather than a static list.
// This is the fully decentralized deployment the paper's Section 3 sketches
// via WS-Membership, under the heterogeneous large-scale conditions its
// introduction motivates.
func E9Churn(opt Options) ([]Table, error) {
	n := opt.pick(150, 48)
	eventsPerPhase := opt.pick(10, 4)
	churnOps := opt.pick(10, 4) // crashes and joins during the churn phase

	t := Table{
		ID:    "E9",
		Title: fmt.Sprintf("Dissemination under churn (N=%d, membership-driven peers, push-pull f=4)", n),
		Columns: []string{
			"phase", "events", "stable-cohort coverage", "joiners caught up",
		},
	}
	res, err := runChurn(n, eventsPerPhase, churnOps, opt.Seed)
	if err != nil {
		return nil, err
	}
	t.AddRow("pre-churn", i2s(eventsPerPhase), f3(res.preCoverage), "-")
	t.AddRow("during churn", i2s(eventsPerPhase), f3(res.midCoverage), "-")
	t.AddRow("post-churn", i2s(eventsPerPhase), f3(res.postCoverage), fmt.Sprintf("%d/%d", res.joinersCaughtUp, res.joiners))
	t.Notes = "the stable cohort (nodes alive throughout) keeps near-total delivery in every phase — crashes mid-epidemic " +
		"cost nothing that redundancy and pull repair do not recover — and joiners integrate via membership gossip, " +
		"receiving post-join events and pulling earlier ones through anti-entropy."
	return []Table{t}, nil
}

type churnResult struct {
	preCoverage     float64
	midCoverage     float64
	postCoverage    float64
	joiners         int
	joinersCaughtUp int
}

type churnNode struct {
	addr   string
	member *membership.Service
	engine *gossip.Engine
	got    map[string]bool
}

func runChurn(n, eventsPerPhase, churnOps int, seed int64) (churnResult, error) {
	net := simnet.New(simnet.DefaultConfig(seed))
	rng := rand.New(rand.NewSource(seed + 999))
	nodes := make(map[string]*churnNode, n)

	newNode := func(idx int) (*churnNode, error) {
		addr := fmt.Sprintf("ch%04d", idx)
		node := &churnNode{addr: addr, got: make(map[string]bool)}
		ep := net.Node(addr)
		member, err := membership.New(membership.Config{
			Endpoint:     ep,
			Clock:        net,
			RNG:          rand.New(rand.NewSource(seed + int64(idx))),
			Fanout:       3,
			SuspectAfter: 400 * time.Millisecond,
			RemoveAfter:  time.Second,
		})
		if err != nil {
			return nil, err
		}
		node.member = member
		engine, err := gossip.New(gossip.Config{
			Style:    gossip.StylePushPull,
			Fanout:   4,
			Hops:     defaultHops(n) + 2,
			Endpoint: ep,
			Peers:    member,
			RNG:      rand.New(rand.NewSource(seed + 5000 + int64(idx))),
			Deliver:  func(r gossip.Rumor) { node.got[r.ID] = true },
		})
		if err != nil {
			return nil, err
		}
		node.engine = engine
		mux := transport.NewMux()
		member.Register(mux)
		engine.Register(mux)
		mux.Bind(ep)
		return node, nil
	}

	ctx := context.Background()
	// order keeps iteration deterministic; Go map order is randomized and
	// would break run-to-run reproducibility.
	var order []string
	for i := 0; i < n; i++ {
		node, err := newNode(i)
		if err != nil {
			return churnResult{}, err
		}
		nodes[node.addr] = node
		order = append(order, node.addr)
	}
	// Bootstrap membership.
	seedAddr := fmt.Sprintf("ch%04d", 0)
	for _, addr := range order {
		if addr != seedAddr {
			nodes[addr].member.Join(ctx, []string{seedAddr})
		}
	}
	net.Run()
	tickAll := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for _, addr := range order {
				if net.Crashed(addr) {
					continue
				}
				nodes[addr].member.Tick(ctx)
				nodes[addr].engine.Tick(ctx)
			}
			net.RunFor(50 * time.Millisecond)
		}
	}
	tickAll(12)

	stable := make(map[string]bool, n)
	for _, addr := range order {
		stable[addr] = true
	}
	aliveAddrs := func() []string {
		var out []string
		for _, addr := range order {
			if !net.Crashed(addr) {
				out = append(out, addr)
			}
		}
		return out
	}
	publish := func(count int) []string {
		ids := make([]string, 0, count)
		for e := 0; e < count; e++ {
			alive := aliveAddrs()
			origin := nodes[alive[rng.Intn(len(alive))]]
			r, err := origin.engine.Publish(ctx, []byte("evt"))
			if err != nil {
				continue
			}
			ids = append(ids, r.ID)
			tickAll(2)
		}
		return ids
	}
	coverageOf := func(ids []string) float64 {
		if len(ids) == 0 {
			return 0
		}
		var sum float64
		for _, id := range ids {
			total, reached := 0, 0
			for addr, node := range nodes {
				if !stable[addr] || net.Crashed(addr) {
					continue
				}
				total++
				if node.got[id] {
					reached++
				}
			}
			if total > 0 {
				sum += float64(reached) / float64(total)
			}
		}
		return sum / float64(len(ids))
	}

	// Phase 1: steady state.
	preIDs := publish(eventsPerPhase)
	tickAll(6)

	// Phase 2: churn — interleave crashes, joins, and publishes.
	var joinersList []string
	midIDs := make([]string, 0, eventsPerPhase)
	for op := 0; op < churnOps; op++ {
		// Crash one random stable node (never the seed used by joiners).
		alive := aliveAddrs()
		victim := alive[rng.Intn(len(alive))]
		if victim != seedAddr {
			net.Crash(victim)
			stable[victim] = false
		}
		// One fresh node joins.
		joiner, err := newNode(n + op)
		if err != nil {
			return churnResult{}, err
		}
		nodes[joiner.addr] = joiner
		order = append(order, joiner.addr)
		joinersList = append(joinersList, joiner.addr)
		joiner.member.Join(ctx, []string{seedAddr})
		// Publish during the turbulence.
		if op < eventsPerPhase {
			midIDs = append(midIDs, publish(1)...)
		}
		tickAll(3)
	}
	tickAll(10)

	// Phase 3: post-churn steady state.
	postIDs := publish(eventsPerPhase)
	tickAll(10)

	// Joiners caught up: a joiner that received every post-churn event.
	caughtUp := 0
	for _, addr := range joinersList {
		node := nodes[addr]
		all := true
		for _, id := range postIDs {
			if !node.got[id] {
				all = false
			}
		}
		if all {
			caughtUp++
		}
	}
	return churnResult{
		preCoverage:     coverageOf(preIDs),
		midCoverage:     coverageOf(midIDs),
		postCoverage:    coverageOf(postIDs),
		joiners:         len(joinersList),
		joinersCaughtUp: caughtUp,
	}, nil
}
