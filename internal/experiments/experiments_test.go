package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickOpt() Options { return Options{Seed: 1, Quick: true} }

func mustCell(t *testing.T, tab Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d): %+v", tab.ID, row, col, tab.Rows)
	}
	return tab.Rows[row][col]
}

func cellFloat(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(mustCell(t, tab, row, col), "%"), 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q not numeric", tab.ID, row, col, mustCell(t, tab, row, col))
	}
	return v
}

func TestTableRender(t *testing.T) {
	tab := Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}, Notes: "n"}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"X — demo", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Description == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "a1", "a2", "a3"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing from registry", want)
		}
	}
	if _, err := Find("E2"); err != nil {
		t.Fatalf("case-insensitive find failed: %v", err)
	}
	if _, err := Find("zz"); err == nil {
		t.Fatal("unknown id found")
	}
}

func TestE0Figure1(t *testing.T) {
	tables, err := E0Figure1(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	byMetric := map[string][]string{}
	for _, row := range tab.Rows {
		byMetric[row[0]] = row[1:]
	}
	if byMetric["coord_activations"][0] != "1" {
		t.Fatalf("activations = %v", byMetric["coord_activations"])
	}
	// Every disseminator's app must reach full coverage in both deployments.
	if byMetric["dissem_full_coverage"][0] != byMetric["dissem_total"][0] {
		t.Fatalf("figure-1 coverage incomplete: %v vs %v",
			byMetric["dissem_full_coverage"], byMetric["dissem_total"])
	}
	if byMetric["dissem_full_coverage"][1] != byMetric["dissem_total"][1] {
		t.Fatalf("scale-up coverage incomplete")
	}
	if byMetric["consumer_copies"][0] == "0" {
		t.Fatal("consumer never reached")
	}
}

func TestE1ScalabilityShape(t *testing.T) {
	tables, err := E1Scalability(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) < 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Rounds must grow sublinearly: N grows 16x, rounds must grow < 4x.
	firstRounds := cellFloat(t, tab, 0, 2)
	lastRounds := cellFloat(t, tab, len(tab.Rows)-1, 2)
	if lastRounds <= firstRounds {
		t.Logf("rounds did not grow (%v -> %v); acceptable at small quick sizes", firstRounds, lastRounds)
	}
	if lastRounds > 4*firstRounds {
		t.Fatalf("rounds grew superlogarithmically: %v -> %v", firstRounds, lastRounds)
	}
	// Unicast completion must grow superlinearly relative to gossip's.
	firstUni := cellFloat(t, tab, 0, 7)
	lastUni := cellFloat(t, tab, len(tab.Rows)-1, 7)
	if lastUni < 4*firstUni {
		t.Fatalf("unicast baseline not linear: %v -> %v", firstUni, lastUni)
	}
	// msgs/node stays bounded near fanout.
	for i := range tab.Rows {
		if m := cellFloat(t, tab, i, 6); m > 6 {
			t.Fatalf("msgs/node = %v at row %d", m, i)
		}
	}
}

func TestE2CoverageMatchesModel(t *testing.T) {
	tables, err := E2FanoutCoverage(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prev := 0.0
	for i, row := range tab.Rows {
		measured := cellFloat(t, tab, i, 1)
		predicted := cellFloat(t, tab, i, 2)
		diff := measured - predicted
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.12 {
			t.Fatalf("f=%s: measured %v vs predicted %v", row[0], measured, predicted)
		}
		if measured < prev-0.05 {
			t.Fatalf("coverage decreased at f=%s", row[0])
		}
		prev = measured
	}
	// High fanout must approach 1.
	if last := cellFloat(t, tab, 7, 1); last < 0.99 {
		t.Fatalf("f=8 coverage = %v", last)
	}
}

func TestE3ResilienceShape(t *testing.T) {
	tables, err := E3Resilience(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	crash, loss := tables[0], tables[1]
	// Gossip coverage among survivors at 50% crash must stay high.
	lastRow := len(crash.Rows) - 1
	if got := cellFloat(t, crash, lastRow, 1); got < 0.8 {
		t.Fatalf("push coverage at 50%% crash = %v", got)
	}
	// Under 40% loss: push-pull must out-deliver the broker decisively.
	lastLoss := len(loss.Rows) - 1
	pp := cellFloat(t, loss, lastLoss, 2)
	broker := cellFloat(t, loss, lastLoss, 3)
	if pp < 0.95 {
		t.Fatalf("push-pull at 40%% loss = %v", pp)
	}
	if broker > 0.75 {
		t.Fatalf("broker at 40%% loss = %v, should lose ~40%%", broker)
	}
}

func TestE4ThroughputShape(t *testing.T) {
	tables, err := E4Throughput(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	// pbcast healthy throughput at max perturbation must stay within 25% of
	// the unperturbed value; ackmc must collapse by >5x.
	first := len(tab.Rows) - len(tab.Rows) // 0
	last := len(tab.Rows) - 1
	pbFirst := cellFloat(t, tab, first, 1)
	pbLast := cellFloat(t, tab, last, 1)
	ackFirst := cellFloat(t, tab, first, 3)
	ackLast := cellFloat(t, tab, last, 3)
	if pbLast < 0.75*pbFirst {
		t.Fatalf("pbcast throughput collapsed: %v -> %v", pbFirst, pbLast)
	}
	if ackLast > ackFirst/5 {
		t.Fatalf("ackmc did not collapse: %v -> %v", ackFirst, ackLast)
	}
	// Perturbed nodes still recover most messages.
	if rec := cellFloat(t, tab, last, 2); rec < 0.9 {
		t.Fatalf("perturbed recovery = %v", rec)
	}
}

func TestE5LoadShape(t *testing.T) {
	tables, err := E5Load(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	for i := range tab.Rows {
		n := cellFloat(t, tab, i, 0)
		mean := cellFloat(t, tab, i, 1)
		broker := cellFloat(t, tab, i, 3)
		if mean > 4 {
			t.Fatalf("gossip mean load %v at N=%v", mean, n)
		}
		if broker != n {
			t.Fatalf("broker load %v != N=%v", broker, n)
		}
	}
}

func TestE6ModelAgreement(t *testing.T) {
	tables, err := E6ParameterTable(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	grid := tables[0]
	for i := range grid.Rows {
		if diff := cellFloat(t, grid, i, 4); diff > 0.15 {
			t.Fatalf("row %v: model disagreement %v", grid.Rows[i], diff)
		}
	}
	sizing := tables[1]
	if len(sizing.Rows) != 4 {
		t.Fatalf("sizing rows = %d", len(sizing.Rows))
	}
	for i := range sizing.Rows {
		// f=3 (final size ~0.94) can never reach 99% coverage.
		if got := mustCell(t, sizing, i, 1); got != "n/a" {
			t.Fatalf("f=3 at row %d = %q, want n/a", i, got)
		}
		// f=6 always reaches it within the cap.
		if got := mustCell(t, sizing, i, 4); got == "n/a" {
			t.Fatalf("f=6 at row %d unreachable", i)
		}
	}
}

func TestE7OverheadChecks(t *testing.T) {
	tables, err := E7Overhead(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	check := tables[1]
	for _, row := range check.Rows {
		if row[1] != "pass" {
			t.Fatalf("consumer-unchanged check failed: %v", row)
		}
	}
	// Envelope codec must be sub-millisecond per op.
	perf := tables[0]
	if ns := cellFloat(t, perf, 0, 1); ns > 1e6 {
		t.Fatalf("encode = %v ns", ns)
	}
}

func TestE8Consistency(t *testing.T) {
	tables, err := E8DistributedCoordinator(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	for i, row := range tab.Rows {
		if row[1] != "yes" {
			t.Fatalf("row %d views inconsistent: %v", i, row)
		}
	}
	// k=1 has zero replications; k=8 the most.
	if r0 := cellFloat(t, tab, 0, 5); r0 != 0 {
		t.Fatalf("k=1 replications = %v", r0)
	}
	if rLast := cellFloat(t, tab, len(tab.Rows)-1, 5); rLast == 0 {
		t.Fatal("k=8 had no replications")
	}
}

func TestA1StylesShape(t *testing.T) {
	tables, err := A1Styles(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	byStyle := map[string][]string{}
	for _, row := range tab.Rows {
		byStyle[row[0]] = row
	}
	for _, style := range []string{"push", "lazypush", "pull", "pushpull", "flood"} {
		if _, ok := byStyle[style]; !ok {
			t.Fatalf("style %s missing", style)
		}
	}
	floodMsgs, _ := strconv.ParseFloat(byStyle["flood"][2], 64)
	pushMsgs, _ := strconv.ParseFloat(byStyle["push"][2], 64)
	if floodMsgs <= pushMsgs {
		t.Fatalf("flood (%v) not costlier than push (%v)", floodMsgs, pushMsgs)
	}
	lazyMsgs, _ := strconv.ParseFloat(byStyle["lazypush"][2], 64)
	if lazyMsgs >= pushMsgs {
		t.Fatalf("lazy push payloads (%v) not below push (%v)", lazyMsgs, pushMsgs)
	}
}

func TestA2DedupShape(t *testing.T) {
	tables, err := A2DedupCache(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	small := cellFloat(t, tab, 0, 1)
	large := cellFloat(t, tab, len(tab.Rows)-1, 1)
	if large > small {
		t.Fatalf("bigger cache produced more redeliveries: %v -> %v", small, large)
	}
	if large != 0 {
		t.Fatalf("large cache redeliveries = %v, want 0", large)
	}
}

func TestA3AssignmentShape(t *testing.T) {
	tables, err := A3TargetAssignment(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	balanced := cellFloat(t, tab, 0, 1)
	random := cellFloat(t, tab, 1, 1)
	if balanced < 0.95 {
		t.Fatalf("balanced mean delivery = %v", balanced)
	}
	// Balanced must not be worse than random.
	if balanced < random-0.02 {
		t.Fatalf("balanced (%v) worse than random (%v)", balanced, random)
	}
	balancedWorst := cellFloat(t, tab, 0, 3)
	randomWorst := cellFloat(t, tab, 1, 3)
	if balancedWorst > randomWorst {
		t.Fatalf("balanced worst miss (%v) exceeds random (%v)", balancedWorst, randomWorst)
	}
}

func TestE9ChurnShape(t *testing.T) {
	tables, err := E9Churn(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, phase := range []string{"pre-churn", "during churn", "post-churn"} {
		if got := mustCell(t, tab, i, 0); got != phase {
			t.Fatalf("row %d phase = %q", i, got)
		}
		if cov := cellFloat(t, tab, i, 2); cov < 0.95 {
			t.Fatalf("%s coverage = %v", phase, cov)
		}
	}
}

func TestE12WindowSizingShape(t *testing.T) {
	tables, err := E12WindowSizing(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, fanout := range []string{"1", "2", "4", "8"} {
		if got := mustCell(t, tab, i, 0); got != fanout {
			t.Fatalf("row %d fanout = %q", i, got)
		}
		// The ablation varies share sizing; conservation may not.
		if got := mustCell(t, tab, i, 2); got != "0" {
			t.Fatalf("fanout %s mass_err_max = %q, want exactly 0", fanout, got)
		}
		if rel := cellFloat(t, tab, i, 1); rel > 0.05 {
			t.Fatalf("fanout %s worst_rel_err = %v", fanout, rel)
		}
	}
}
