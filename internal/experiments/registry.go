package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment is one runnable entry of the per-experiment index in DESIGN.md.
type Experiment struct {
	// ID is the index key ("e0".."e10", "a1".."a3").
	ID string
	// Description summarizes what the experiment validates.
	Description string
	// Run executes the experiment.
	Run func(Options) ([]Table, error)
}

// All returns the full experiment registry, ordered by ID.
func All() []Experiment {
	list := []Experiment{
		{"e0", "Figure 1 dissemination flow over SOAP", E0Figure1},
		{"e1", "scalability: latency and rounds vs N", E1Scalability},
		{"e2", "coverage vs fanout, atomic delivery w.h.p.", E2FanoutCoverage},
		{"e3", "resilience to crashes and loss vs WS-N broker", E3Resilience},
		{"e4", "stable throughput under perturbation (pbcast)", E4Throughput},
		{"e5", "per-node load balance vs N", E5Load},
		{"e6", "(f, r) configuration table vs analytic model", E6ParameterTable},
		{"e7", "middleware overhead and consumer-unchanged check", E7Overhead},
		{"e8", "distributed coordinator load and consistency", E8DistributedCoordinator},
		{"e9", "dissemination under membership churn", E9Churn},
		{"e10", "aggregation accuracy and convergence vs N", E10Aggregation},
		{"e11", "receiver-bound fan-in: per-delivery decode cost", E11FanIn},
		{"e12", "ablation: windowed exchange share sizing under loss", E12WindowSizing},
		{"a1", "ablation: gossip styles", A1Styles},
		{"a2", "ablation: seen-cache sizing", A2DedupCache},
		{"a3", "ablation: coordinator target assignment", A3TargetAssignment},
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	return list
}

// Find returns the experiment with the given ID (case-insensitive).
func Find(id string) (Experiment, error) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll executes every experiment and returns the concatenated tables.
func RunAll(opt Options) ([]Table, error) {
	var out []Table
	for _, e := range All() {
		tables, err := e.Run(opt)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		out = append(out, tables...)
	}
	return out, nil
}
