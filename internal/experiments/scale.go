package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"wsgossip/internal/epidemic"
	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// Large-N scaling runs (wsgossip-sim -exp). The regular experiment clusters
// (cluster.go) keep one map[string]time.Duration of deliveries per node plus
// a ~5 KiB math/rand source per engine — fine at N=10^3, gigabytes at
// N=10^6. The scale harness swaps both for the memory-diet primitives the
// simulator grew for exactly this population: simnet.NewCompactRNG (16-byte
// splitmix64 state per node) and a gossip.IDIndex shared across the run so
// per-node delivery tracking is a gossip.DenseSeen bitset over dense rumor
// indices instead of string-keyed maps. Everything reported derives from the
// seeded virtual-time simulation — two runs with equal options must produce
// byte-identical summaries, which is what the determinism tests and the CI
// scale smoke assert.

// ScaleOptions parameterizes a large-N run.
type ScaleOptions struct {
	// N is the population size (10^5..10^6 is the design target).
	N int
	// Fanout and Hops are the paper's f and r; Hops 0 = ceil(log2 N)+2.
	Fanout int
	Hops   int
	// Events is the number of rumors published (default 1).
	Events int
	// Loss is the per-message loss probability in [0,1).
	Loss float64
	// Churn is the fraction of nodes that permanently leave mid-run
	// (churn experiment only), in [0,0.5).
	Churn float64
	// Seed drives every random stream in the run.
	Seed int64
}

func (o *ScaleOptions) normalize() error {
	if o.N < 16 {
		return fmt.Errorf("scale: need n >= 16, got %d", o.N)
	}
	if o.Fanout < 1 {
		o.Fanout = 3
	}
	if o.Hops <= 0 {
		o.Hops = defaultHops(o.N) + 2
	}
	if o.Events < 1 {
		o.Events = 1
	}
	if o.Loss < 0 || o.Loss >= 1 {
		return fmt.Errorf("scale: loss must be in [0,1), got %v", o.Loss)
	}
	if o.Churn < 0 || o.Churn >= 0.5 {
		return fmt.Errorf("scale: churn must be in [0,0.5), got %v", o.Churn)
	}
	return nil
}

// ScaleSummary is the deterministic outcome of one large-N coverage run.
// Every field is a pure function of ScaleOptions.
type ScaleSummary struct {
	N, Fanout, Hops, Events int
	Loss                    float64
	Coverage                float64 // mean over events, fraction of N
	Analytic                float64 // epidemic.ExpectedCoverageLossy prediction
	P50, P99, MaxMs         float64 // delivery latency, virtual milliseconds
	MaxDepth                int     // deepest hop level used by any delivery
	MsgsPerNode             float64 // payload forwards per node
	Sent, Delivered         int64
	Dropped, Bytes          int64
	VirtualMs               float64 // final virtual time
}

// scalePop is the dieted population: engines plus bitset delivery tracking.
type scalePop struct {
	net     *simnet.Network
	addrs   []string
	engines []*gossip.Engine
	idx     *gossip.IDIndex
	seen    []gossip.DenseSeen // per node, over idx indices
	// per-event accumulators, indexed by the rumor's dense index
	reached  []int
	maxDepth []int
	times    [][]float64 // delivery latency per event, virtual ms
	t0       []time.Duration
}

// newScalePop builds n engines on one simulated network using the compact
// per-node RNG and shared-index delivery tracking.
func newScalePop(n int, seed int64, style gossip.Style, fanout, hops, events int) (*scalePop, error) {
	p := &scalePop{
		net:      simnet.New(simnet.DefaultConfig(seed)),
		addrs:    make([]string, n),
		engines:  make([]*gossip.Engine, n),
		idx:      gossip.NewIDIndex(),
		seen:     make([]gossip.DenseSeen, n),
		reached:  make([]int, 0, events),
		maxDepth: make([]int, 0, events),
		times:    make([][]float64, 0, events),
		t0:       make([]time.Duration, 0, events),
	}
	for i := range p.addrs {
		p.addrs[i] = fmt.Sprintf("n%07d", i)
	}
	peers := gossip.NewUniformPeers(p.addrs)
	for i := range p.addrs {
		i := i
		eng, err := gossip.New(gossip.Config{
			Style:    style,
			Fanout:   fanout,
			Hops:     hops,
			Endpoint: p.net.Node(p.addrs[i]),
			Peers:    peers,
			RNG:      simnet.NewCompactRNG(seed*7919 + int64(i)),
			// A scale run disseminates a handful of events; the default
			// 64k-entry seen cache budget is sized for long-lived nodes.
			SeenCacheSize: 256,
			StoreSize:     64,
			Deliver: func(r gossip.Rumor) {
				k := p.idx.Index(r.ID)
				if !p.seen[i].Add(k) {
					return
				}
				// Publish delivers to the origin synchronously, before the
				// caller can register the event — grow the accumulators here.
				p.ensure(k)
				p.reached[k]++
				dt := float64(p.net.Now()-p.t0[k]) / float64(time.Millisecond)
				p.times[k] = append(p.times[k], dt)
				if d := hops - r.Hops; d > p.maxDepth[k] {
					p.maxDepth[k] = d
				}
			},
		})
		if err != nil {
			return nil, err
		}
		mux := transport.NewMux()
		eng.Register(mux)
		mux.Bind(p.net.Node(p.addrs[i]))
		p.engines[i] = eng
	}
	return p, nil
}

// ensure grows the per-event accumulators to cover dense index k, stamping
// new slots with the current virtual time.
func (p *scalePop) ensure(k int) {
	for len(p.reached) <= k {
		p.reached = append(p.reached, 0)
		p.maxDepth = append(p.maxDepth, 0)
		p.times = append(p.times, nil)
		p.t0 = append(p.t0, p.net.Now())
	}
}

// recordEvent registers a just-published rumor for delivery tracking. Called
// immediately after Publish (same virtual instant), so the publish time is
// still Now even though the origin's own delivery already fired.
func (p *scalePop) recordEvent(id string) int {
	k := p.idx.Index(id)
	p.ensure(k)
	p.t0[k] = p.net.Now()
	return k
}

// ScaleCoverage is the E1 scalability point at large N: publish opt.Events
// rumors over push gossip on a lossy LAN profile and report coverage,
// latency percentiles, dissemination depth, and traffic against the
// analytic epidemic prediction.
func ScaleCoverage(opt ScaleOptions) (*ScaleSummary, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	p, err := newScalePop(opt.N, opt.Seed, gossip.StylePush, opt.Fanout, opt.Hops, opt.Events)
	if err != nil {
		return nil, err
	}
	p.net.SetLossRate(opt.Loss)
	ctx := context.Background()
	keys := make([]int, 0, opt.Events)
	for e := 0; e < opt.Events; e++ {
		r, err := p.engines[e%opt.N].Publish(ctx, []byte("evt"))
		if err != nil {
			return nil, err
		}
		keys = append(keys, p.recordEvent(r.ID))
	}
	p.net.Run()

	s := &ScaleSummary{
		N: opt.N, Fanout: opt.Fanout, Hops: opt.Hops, Events: opt.Events,
		Loss: opt.Loss,
	}
	var all []float64
	for _, k := range keys {
		s.Coverage += float64(p.reached[k]) / float64(opt.N)
		if p.maxDepth[k] > s.MaxDepth {
			s.MaxDepth = p.maxDepth[k]
		}
		all = append(all, p.times[k]...)
	}
	s.Coverage /= float64(len(keys))
	if pred, err := epidemic.ExpectedCoverageLossy(opt.N, opt.Fanout, opt.Hops, opt.Loss); err == nil {
		s.Analytic = pred
	}
	s.P50, s.P99, s.MaxMs = quantile(all, 0.50), quantile(all, 0.99), quantile(all, 1.0)
	var forwarded int64
	for _, e := range p.engines {
		forwarded += e.Stats().Forwarded
	}
	s.MsgsPerNode = float64(forwarded) / float64(opt.N)
	st := p.net.Stats()
	s.Sent, s.Delivered, s.Dropped, s.Bytes = st.Sent, st.Delivered, st.Dropped, st.Bytes
	s.VirtualMs = float64(p.net.Now()) / float64(time.Millisecond)
	return s, nil
}

// ScaleChurnSummary is the deterministic outcome of one large-N churn run.
type ScaleChurnSummary struct {
	N, Departed, Alive int
	Fanout, Hops       int
	Loss, Churn        float64
	// PreCoverage is the pre-churn event's coverage over the full
	// population; PostCoverage is the post-churn event's coverage over the
	// surviving cohort.
	PreCoverage, PostCoverage float64
	// EffLoss is the per-message effective loss the post-churn epidemic
	// sees: a static-peer forward targets a departed node with probability
	// Churn, compounding with link loss. Analytic is the epidemic
	// prediction for the surviving cohort under that effective loss.
	EffLoss, Analytic float64
	// PendingAfterDepart is the timer-queue length immediately after the
	// departures: with enqueue-time dropping it reflects only surviving
	// traffic, not a backlog of deliveries into dead nodes.
	PendingAfterDepart       int
	Sent, Delivered, Dropped int64
	VirtualMs                float64
}

// ScaleChurn is the E9 churn point at large N: disseminate once over the
// full population, permanently Depart a Churn fraction (dropping their
// traffic at enqueue — the event queue must not fill with deliveries into
// dead nodes), then disseminate again and measure what the survivors get.
func ScaleChurn(opt ScaleOptions) (*ScaleChurnSummary, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	p, err := newScalePop(opt.N, opt.Seed, gossip.StylePush, opt.Fanout, opt.Hops, 2)
	if err != nil {
		return nil, err
	}
	p.net.SetLossRate(opt.Loss)
	ctx := context.Background()

	// Event 1 on the intact population.
	r1, err := p.engines[0].Publish(ctx, []byte("pre-churn"))
	if err != nil {
		return nil, err
	}
	k1 := p.recordEvent(r1.ID)
	p.net.Run()

	// Permanent departures (never the publisher).
	rng := rand.New(rand.NewSource(opt.Seed * 31))
	departed := rng.Perm(opt.N - 1)[:int(float64(opt.N)*opt.Churn)]
	gone := make([]bool, opt.N)
	for _, idx := range departed {
		gone[idx+1] = true
		p.net.Depart(p.addrs[idx+1])
	}
	pendingAfter := p.net.Pending()

	// Event 2 over the churned population: static peer lists still name the
	// departed nodes, so every forward risks hitting a dead target.
	r2, err := p.engines[0].Publish(ctx, []byte("post-churn"))
	if err != nil {
		return nil, err
	}
	k2 := p.recordEvent(r2.ID)
	p.net.Run()

	alive := opt.N - len(departed)
	s := &ScaleChurnSummary{
		N: opt.N, Departed: len(departed), Alive: alive,
		Fanout: opt.Fanout, Hops: opt.Hops,
		Loss: opt.Loss, Churn: opt.Churn,
		PendingAfterDepart: pendingAfter,
	}
	s.PreCoverage = float64(p.reached[k1]) / float64(opt.N)
	// Post-churn deliveries only count survivors: departed nodes receive
	// nothing after Depart, so reached[k2] is already survivor-only.
	s.PostCoverage = float64(p.reached[k2]) / float64(alive)
	churnFrac := float64(len(departed)) / float64(opt.N)
	s.EffLoss = 1 - (1-opt.Loss)*(1-churnFrac)
	if pred, err := epidemic.ExpectedCoverageLossy(alive, opt.Fanout, opt.Hops, s.EffLoss); err == nil {
		s.Analytic = pred
	}
	st := p.net.Stats()
	s.Sent, s.Delivered, s.Dropped = st.Sent, st.Delivered, st.Dropped
	s.VirtualMs = float64(p.net.Now()) / float64(time.Millisecond)
	return s, nil
}
