package experiments

import (
	"math/rand"
	"testing"

	"wsgossip/internal/gossip"
)

// Two scale runs with equal options must produce identical summaries: every
// reported field derives from the seeded virtual-time simulation, never from
// wall-clock, goroutine scheduling, or map iteration order. This is the
// in-process form of the CI scale smoke's run-twice diff.

func TestScaleCoverageDeterministic(t *testing.T) {
	opt := ScaleOptions{N: 5000, Fanout: 3, Events: 2, Loss: 0.05, Seed: 42}
	a, err := ScaleCoverage(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleCoverage(opt)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("scale coverage summaries differ between identical runs:\n  first:  %+v\n  second: %+v", *a, *b)
	}
	if a.Coverage < 0.5 {
		t.Fatalf("implausibly low coverage %v", a.Coverage)
	}
	if a.Coverage-a.Analytic > 0.1 || a.Analytic-a.Coverage > 0.1 {
		t.Fatalf("coverage %v strays from analytic prediction %v", a.Coverage, a.Analytic)
	}
}

func TestScaleChurnDeterministic(t *testing.T) {
	opt := ScaleOptions{N: 5000, Fanout: 3, Churn: 0.2, Seed: 42}
	a, err := ScaleChurn(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleChurn(opt)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("scale churn summaries differ between identical runs:\n  first:  %+v\n  second: %+v", *a, *b)
	}
	if a.PostCoverage < 0.5 || a.PostCoverage >= a.PreCoverage {
		t.Fatalf("churn coverage out of shape: pre=%v post=%v", a.PreCoverage, a.PostCoverage)
	}
	if a.PostCoverage-a.Analytic > 0.1 || a.Analytic-a.PostCoverage > 0.1 {
		t.Fatalf("post-churn coverage %v strays from analytic prediction %v", a.PostCoverage, a.Analytic)
	}
}

// TestScaleCoverageLargeDeterministic is the acceptance-size run: an
// E1-style coverage point at N=10^5 must stay byte-identical across runs,
// including under the race detector. Skipped with -short so the quick
// developer loop stays quick.
func TestScaleCoverageLargeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N scale run; skipped in -short mode")
	}
	opt := ScaleOptions{N: 100000, Fanout: 3, Seed: 3}
	a, err := ScaleCoverage(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleCoverage(opt)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("large scale summaries differ between identical runs:\n  first:  %+v\n  second: %+v", *a, *b)
	}
	if a.Coverage < 0.9 {
		t.Fatalf("coverage %v below the lossless large-N expectation", a.Coverage)
	}
}

// TestUniformPeersSampling pins the rejection sampler's contract:
// distinctness, exclusion, and the fallback to the shuffle sampler when the
// request covers most of the set.
func TestUniformPeersSampling(t *testing.T) {
	addrs := make([]string, 100)
	for i := range addrs {
		addrs[i] = string(rune('a'+i/26)) + string(rune('a'+i%26))
	}
	p := gossip.NewUniformPeers(addrs)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		got := p.SelectPeers(rng, 5, addrs[trial%len(addrs)])
		if len(got) != 5 {
			t.Fatalf("trial %d: got %d peers, want 5", trial, len(got))
		}
		seen := map[string]bool{}
		for _, a := range got {
			if a == addrs[trial%len(addrs)] {
				t.Fatalf("trial %d: excluded address %q sampled", trial, a)
			}
			if seen[a] {
				t.Fatalf("trial %d: duplicate %q", trial, a)
			}
			seen[a] = true
		}
	}
	// Requesting the whole set routes through the shuffle sampler and must
	// still honor the exclusion.
	all := p.SelectPeers(rng, -1, addrs[0])
	if len(all) != len(addrs)-1 {
		t.Fatalf("full draw returned %d peers, want %d", len(all), len(addrs)-1)
	}
	for _, a := range all {
		if a == addrs[0] {
			t.Fatal("excluded address present in full draw")
		}
	}
	// Determinism: same seed, same draws.
	r1 := p.SelectPeers(rand.New(rand.NewSource(9)), 5, "")
	r2 := p.SelectPeers(rand.New(rand.NewSource(9)), 5, "")
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("same-seed draws differ: %v vs %v", r1, r2)
		}
	}
}
