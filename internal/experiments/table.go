package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment result table.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes what the table shows.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows are the data cells, as formatted strings.
	Rows [][]string
	// Notes holds interpretation guidance printed under the table.
	Notes string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Options controls experiment sizing.
type Options struct {
	// Seed drives all randomness; equal seeds reproduce tables exactly.
	Seed int64
	// Quick shrinks problem sizes for CI and benchmarks.
	Quick bool
}

// pick returns full unless Quick, in which case quick.
func (o Options) pick(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func i2s(v int) string    { return fmt.Sprintf("%d", v) }
func i642s(v int64) string {
	return fmt.Sprintf("%d", v)
}
