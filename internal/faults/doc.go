// Package faults is the deterministic, composable fault-injection plane:
// the link faults the scenario suite's virtBus grew ad hoc (loss,
// partition, connection refusal) promoted into one first-class library that
// every harness — the virtual-time scenario bus, the scaled simulator, a
// future testlab driver — shares instead of re-implementing.
//
// The model has three parts:
//
//   - Table: a directional link model. Every rule is per-direction
//     (refuse/cut/loss/delay on from→to says nothing about to→from), so
//     asymmetric failures — the one-way-dead link that makes naive failure
//     detectors falsely suspect healthy peers — are native, not simulated
//     by hand. A NAT matrix marks nodes reachable only from designated
//     relay senders, and predicate hooks keep the old closure-style test
//     rules expressible. Every decision is counted per rule, so harnesses
//     assert exact fault↔counter accounting.
//
//   - Plan: a declarative timeline of fault events (see ParsePlan for the
//     grammar) scheduled on a clock.Clock — under clock.Virtual a whole
//     multi-fault composition (partition + churn + loss + delay at once)
//     is one script that replays byte-identically under a seed.
//
//   - Applier: the thin surface a plan drives, binding link rules to a
//     Table and crash/recover ops to whatever fabric hosts the run.
//
// Determinism contract: the Table draws no randomness of its own. Lossy
// consumes exactly one draw from the caller's seeded RNG per send, with or
// without loss configured, so installing a table does not shift the random
// stream the surrounding fabric sees for unaffected traffic.
package faults
