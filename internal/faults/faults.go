package faults

import (
	"math/rand"
	"sync"
	"time"
)

// Outcome classifies what a link-fault table decided for one send.
type Outcome uint8

// Outcomes of a Table decision, in escalating order of sender visibility.
const (
	// Deliver lets the message proceed (possibly still subject to a loss
	// draw and extra latency).
	Deliver Outcome = iota
	// Refuse fails the send synchronously back to the sender — the
	// connection-refused signal a delivery plane retries and eventually
	// circuit-breaks on.
	Refuse
	// Drop swallows the message after a successful send, the way a
	// partitioned or NAT-filtered datagram path does: the sender learns
	// nothing.
	Drop
)

// String returns the lowercase outcome name.
func (o Outcome) String() string {
	switch o {
	case Deliver:
		return "deliver"
	case Refuse:
		return "refuse"
	case Drop:
		return "drop"
	default:
		return "outcome(?)"
	}
}

// Decision is the verdict for one send plus the rule that produced it, so
// harnesses can keep exact fault↔counter accounting.
type Decision struct {
	// Outcome is the verdict.
	Outcome Outcome
	// Rule names the deciding rule ("" when the outcome is Deliver).
	Rule string
}

// Totals aggregates how many sends the table affected, by effect class.
type Totals struct {
	// Refused counts sends failed synchronously back to the sender.
	Refused int64
	// Dropped counts sends silently swallowed by cut/partition/NAT rules.
	Dropped int64
	// Lost counts sends swallowed by a loss draw.
	Lost int64
}

// Sum returns the total number of affected sends.
func (t Totals) Sum() int64 { return t.Refused + t.Dropped + t.Lost }

type ruleKind uint8

const (
	kindCut ruleKind = iota
	kindRefuse
	kindLoss
	kindDelay
	kindPartition
)

// rule is one directional link rule. from/to are matched per direction (nil
// means any endpoint), which is what makes asymmetry native: a rule for
// A→B says nothing about B→A. kindPartition reuses from as the group set
// and matches any send crossing the group boundary (both directions).
type rule struct {
	name     string
	kind     ruleKind
	from, to map[string]bool
	loss     float64
	delay    time.Duration
}

func (r *rule) matches(from, to string) bool {
	if r.kind == kindPartition {
		return r.from[from] != r.from[to]
	}
	return (r.from == nil || r.from[from]) && (r.to == nil || r.to[to])
}

// Table is a directional link-fault model: an ordered set of per-direction
// refuse/cut/loss/delay rules, a NAT reachability matrix, predicate hooks
// for ad-hoc test rules, and a global loss probability. It decides, per
// (from, to) send, whether the message is refused, dropped, lost, or
// delayed — and counts every decision per rule, so a harness can assert
// exact fault↔counter accounting against its own fabric counters.
//
// Determinism: the table itself draws no randomness. Lossy consumes exactly
// one draw from the caller's seeded RNG per call, whether or not any loss
// is configured, so installing or healing loss rules never shifts the
// random stream the surrounding fabric (virtBus, simnet) sees for
// unaffected traffic.
type Table struct {
	mu          sync.Mutex
	loss        float64
	partitionFn func(from, to string) bool
	refuseFn    func(from, to string) bool
	rules       []*rule
	nat         map[string]map[string]bool // node -> senders allowed in
	counts      map[string]int64
	totals      Totals
}

// NewTable returns an empty table: every send delivers.
func NewTable() *Table {
	return &Table{
		nat:    make(map[string]map[string]bool),
		counts: make(map[string]int64),
	}
}

func set(addrs []string) map[string]bool {
	if addrs == nil {
		return nil
	}
	m := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		m[a] = true
	}
	return m
}

func (t *Table) addRule(r *rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, r)
}

// Cut installs a named directional partition: sends matching from→to are
// silently dropped. A nil endpoint set matches any address.
func (t *Table) Cut(name string, from, to []string) {
	t.addRule(&rule{name: name, kind: kindCut, from: set(from), to: set(to)})
}

// CutBoth cuts both directions between the two endpoint sets under one name.
func (t *Table) CutBoth(name string, a, b []string) {
	t.Cut(name, a, b)
	t.Cut(name, b, a)
}

// RefuseLink installs a named directional connection fault: sends matching
// from→to fail synchronously back to the sender. A nil endpoint set matches
// any address.
func (t *Table) RefuseLink(name string, from, to []string) {
	t.addRule(&rule{name: name, kind: kindRefuse, from: set(from), to: set(to)})
}

// RefuseBoth refuses both directions between the two endpoint sets under
// one name.
func (t *Table) RefuseBoth(name string, a, b []string) {
	t.RefuseLink(name, a, b)
	t.RefuseLink(name, b, a)
}

// LinkLoss installs a named directional loss probability on matching sends,
// combined independently with the global loss and any other matching rule.
func (t *Table) LinkLoss(name string, from, to []string, p float64) {
	t.addRule(&rule{name: name, kind: kindLoss, from: set(from), to: set(to), loss: p})
}

// LinkDelay adds named extra one-way latency to matching sends.
func (t *Table) LinkDelay(name string, from, to []string, d time.Duration) {
	t.addRule(&rule{name: name, kind: kindDelay, from: set(from), to: set(to), delay: d})
}

// Partition installs a named symmetric split: sends between the group and
// its complement are silently dropped in both directions.
func (t *Table) Partition(name string, group []string) {
	g := set(group)
	if g == nil {
		g = map[string]bool{}
	}
	t.addRule(&rule{name: name, kind: kindPartition, from: g})
}

// Heal removes every rule installed under name.
func (t *Table) Heal(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.rules[:0]
	for _, r := range t.rules {
		if r.name != name {
			kept = append(kept, r)
		}
	}
	t.rules = kept
}

// HealAll removes every link rule and NAT entry and resets the global loss
// to zero. Counters are preserved: healed faults keep their history.
func (t *Table) HealAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = nil
	t.nat = make(map[string]map[string]bool)
	t.loss = 0
	t.partitionFn = nil
	t.refuseFn = nil
}

// SetLoss sets the global one-way loss probability.
func (t *Table) SetLoss(p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.loss = p
}

// Loss returns the global one-way loss probability.
func (t *Table) Loss() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.loss
}

// SetNAT puts node behind a NAT boundary: inbound sends are refused unless
// the sender is one of the designated relays (or the node itself). The
// node's own outbound traffic is unrestricted, which is what makes the
// fault asymmetric — it can reach anyone, most peers cannot reach it.
func (t *Table) SetNAT(node string, relays ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	allowed := make(map[string]bool, len(relays)+1)
	for _, r := range relays {
		allowed[r] = true
	}
	allowed[node] = true
	t.nat[node] = allowed
}

// ClearNAT removes node's NAT boundary.
func (t *Table) ClearNAT(node string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.nat, node)
}

// SetPartitionFunc installs (or, with nil, heals) a predicate partition:
// sends for which fn returns true are silently dropped. This is the
// ad-hoc-test escape hatch the scenario suite's virtBus.SetPartition rides.
func (t *Table) SetPartitionFunc(fn func(from, to string) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitionFn = fn
}

// SetRefuseFunc installs (or, with nil, heals) a predicate connection
// fault: sends for which fn returns true fail synchronously.
func (t *Table) SetRefuseFunc(fn func(from, to string) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refuseFn = fn
}

// Names of the predicate and global pseudo-rules in Counts.
const (
	// RulePartitionFunc attributes drops decided by SetPartitionFunc.
	RulePartitionFunc = "partition-fn"
	// RuleRefuseFunc attributes refusals decided by SetRefuseFunc.
	RuleRefuseFunc = "refuse-fn"
	// RuleLoss attributes losses drawn against the global loss probability.
	RuleLoss = "loss"
	// RuleNATPrefix prefixes the NAT'd node's address in NAT refusal counts.
	RuleNATPrefix = "nat:"
)

// Check evaluates the deterministic rules — refuse before drop, so a
// connection fault wins over a silent partition on the same link — and
// counts the decision against the deciding rule. It consumes no
// randomness; call Lossy afterwards for the per-message loss draw.
func (t *Table) Check(from, to string) Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.refuseFn != nil && t.refuseFn(from, to) {
		return t.countLocked(Refuse, RuleRefuseFunc)
	}
	for _, r := range t.rules {
		if r.kind == kindRefuse && r.matches(from, to) {
			return t.countLocked(Refuse, r.name)
		}
	}
	if allowed, natted := t.nat[to]; natted && !allowed[from] {
		return t.countLocked(Refuse, RuleNATPrefix+to)
	}
	if t.partitionFn != nil && t.partitionFn(from, to) {
		return t.countLocked(Drop, RulePartitionFunc)
	}
	for _, r := range t.rules {
		if (r.kind == kindCut || r.kind == kindPartition) && r.matches(from, to) {
			return t.countLocked(Drop, r.name)
		}
	}
	return Decision{Outcome: Deliver}
}

func (t *Table) countLocked(o Outcome, name string) Decision {
	t.counts[name]++
	switch o {
	case Refuse:
		t.totals.Refused++
	case Drop:
		t.totals.Dropped++
	}
	return Decision{Outcome: o, Rule: name}
}

// Lossy draws the per-message loss verdict for one send that passed Check,
// combining the global loss with every matching link-loss rule as
// independent events. It always consumes exactly one draw from rng — even
// with no loss configured — so the caller's random stream is identical
// whether or not a table is installed in place of a raw loss field. A hit
// is counted against the first matching link rule, or RuleLoss.
func (t *Table) Lossy(from, to string, rng *rand.Rand) bool {
	t.mu.Lock()
	p := t.loss
	attr := RuleLoss
	for _, r := range t.rules {
		if r.kind == kindLoss && r.matches(from, to) {
			p = 1 - (1-p)*(1-r.loss)
			if attr == RuleLoss {
				attr = r.name
			}
		}
	}
	t.mu.Unlock()
	if rng.Float64() >= p {
		return false
	}
	t.mu.Lock()
	t.counts[attr]++
	t.totals.Lost++
	t.mu.Unlock()
	return true
}

// ExtraDelay returns the summed extra one-way latency of every matching
// delay rule.
func (t *Table) ExtraDelay(from, to string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d time.Duration
	for _, r := range t.rules {
		if r.kind == kindDelay && r.matches(from, to) {
			d += r.delay
		}
	}
	return d
}

// Counts returns a copy of the per-rule affected-send counters.
func (t *Table) Counts() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// Totals returns the aggregate affected-send counters.
func (t *Table) Totals() Totals {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totals
}

// Active reports whether any rule, NAT entry, predicate, or global loss is
// currently installed.
func (t *Table) Active() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rules) > 0 || len(t.nat) > 0 || t.loss > 0 ||
		t.partitionFn != nil || t.refuseFn != nil
}
