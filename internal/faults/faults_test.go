package faults

import (
	"math/rand"
	"testing"
	"time"
)

func TestTableDirectionalRules(t *testing.T) {
	tbl := NewTable()
	tbl.RefuseLink("r1", []string{"a"}, []string{"b"})
	tbl.Cut("c1", []string{"c"}, nil)

	if d := tbl.Check("a", "b"); d.Outcome != Refuse || d.Rule != "r1" {
		t.Fatalf("a->b = %+v, want refuse by r1", d)
	}
	// Asymmetry is native: the reverse direction is untouched.
	if d := tbl.Check("b", "a"); d.Outcome != Deliver {
		t.Fatalf("b->a = %+v, want deliver", d)
	}
	// nil 'to' set matches any destination.
	if d := tbl.Check("c", "zzz"); d.Outcome != Drop || d.Rule != "c1" {
		t.Fatalf("c->zzz = %+v, want drop by c1", d)
	}
	if d := tbl.Check("zzz", "c"); d.Outcome != Deliver {
		t.Fatalf("zzz->c = %+v, want deliver", d)
	}

	tbl.Heal("r1")
	if d := tbl.Check("a", "b"); d.Outcome != Deliver {
		t.Fatalf("after heal a->b = %+v, want deliver", d)
	}
	got := tbl.Counts()
	if got["r1"] != 1 || got["c1"] != 1 {
		t.Fatalf("counts = %v, want r1:1 c1:1", got)
	}
	if tot := tbl.Totals(); tot.Refused != 1 || tot.Dropped != 1 || tot.Lost != 0 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestTableRefuseWinsOverDrop(t *testing.T) {
	tbl := NewTable()
	tbl.Cut("cut", []string{"a"}, []string{"b"})
	tbl.RefuseLink("ref", []string{"a"}, []string{"b"})
	if d := tbl.Check("a", "b"); d.Outcome != Refuse || d.Rule != "ref" {
		t.Fatalf("check = %+v, want the refuse rule to win", d)
	}
}

func TestTablePartitionRule(t *testing.T) {
	tbl := NewTable()
	tbl.Partition("split", []string{"a", "b"})
	cases := []struct {
		from, to string
		want     Outcome
	}{
		{"a", "b", Deliver}, // same side
		{"c", "d", Deliver}, // same (complement) side
		{"a", "c", Drop},    // crossing
		{"c", "b", Drop},    // crossing, other direction
	}
	for _, c := range cases {
		if d := tbl.Check(c.from, c.to); d.Outcome != c.want {
			t.Fatalf("%s->%s = %v, want %v", c.from, c.to, d.Outcome, c.want)
		}
	}
}

func TestTableNAT(t *testing.T) {
	tbl := NewTable()
	tbl.SetNAT("x", "relay1", "relay2")
	if d := tbl.Check("peer", "x"); d.Outcome != Refuse || d.Rule != RuleNATPrefix+"x" {
		t.Fatalf("peer->x = %+v, want NAT refusal", d)
	}
	if d := tbl.Check("relay1", "x"); d.Outcome != Deliver {
		t.Fatalf("relay1->x = %+v, want deliver", d)
	}
	// Outbound from the NAT'd node is unrestricted.
	if d := tbl.Check("x", "peer"); d.Outcome != Deliver {
		t.Fatalf("x->peer = %+v, want deliver", d)
	}
	tbl.ClearNAT("x")
	if d := tbl.Check("peer", "x"); d.Outcome != Deliver {
		t.Fatalf("after ClearNAT peer->x = %+v, want deliver", d)
	}
}

func TestTablePredicateHooks(t *testing.T) {
	tbl := NewTable()
	tbl.SetPartitionFunc(func(from, to string) bool { return to == "v" })
	tbl.SetRefuseFunc(func(from, to string) bool { return to == "w" })
	if d := tbl.Check("a", "v"); d.Outcome != Drop || d.Rule != RulePartitionFunc {
		t.Fatalf("a->v = %+v", d)
	}
	if d := tbl.Check("a", "w"); d.Outcome != Refuse || d.Rule != RuleRefuseFunc {
		t.Fatalf("a->w = %+v", d)
	}
	tbl.SetPartitionFunc(nil)
	tbl.SetRefuseFunc(nil)
	if d := tbl.Check("a", "v"); d.Outcome != Deliver {
		t.Fatalf("healed a->v = %+v", d)
	}
}

// TestTableLossyStreamInvariant pins the determinism contract: Lossy always
// consumes exactly one RNG draw, so a table with no loss configured leaves
// the caller's random stream identical to not consulting it at all.
func TestTableLossyStreamInvariant(t *testing.T) {
	const draws = 1000
	ref := rand.New(rand.NewSource(42))
	var want []float64
	for i := 0; i < draws; i++ {
		want = append(want, ref.Float64())
	}

	tbl := NewTable()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < draws; i++ {
		if tbl.Lossy("a", "b", rng) {
			t.Fatal("zero-loss table lost a message")
		}
	}
	after := rand.New(rand.NewSource(42))
	for i := 0; i < draws; i++ {
		if got := after.Float64(); got != want[i] {
			t.Fatalf("draw %d: stream diverged", i)
		}
	}
}

func TestTableLossyCombinesAndCounts(t *testing.T) {
	tbl := NewTable()
	tbl.SetLoss(1) // certain loss
	rng := rand.New(rand.NewSource(1))
	if !tbl.Lossy("a", "b", rng) {
		t.Fatal("p=1 did not lose")
	}
	if got := tbl.Counts()[RuleLoss]; got != 1 {
		t.Fatalf("global loss count = %d, want 1", got)
	}
	tbl.SetLoss(0)
	tbl.LinkLoss("ll", []string{"a"}, []string{"b"}, 1)
	if !tbl.Lossy("a", "b", rng) {
		t.Fatal("link loss p=1 did not lose")
	}
	if tbl.Lossy("b", "a", rng) {
		t.Fatal("link loss hit the reverse direction")
	}
	if got := tbl.Counts()["ll"]; got != 1 {
		t.Fatalf("link loss count = %d, want 1", got)
	}
	if tot := tbl.Totals(); tot.Lost != 2 {
		t.Fatalf("lost total = %d, want 2", tot.Lost)
	}
}

func TestTableExtraDelay(t *testing.T) {
	tbl := NewTable()
	tbl.LinkDelay("d1", []string{"a"}, []string{"b"}, 10*time.Millisecond)
	tbl.LinkDelay("d2", []string{"a"}, nil, 5*time.Millisecond)
	if got := tbl.ExtraDelay("a", "b"); got != 15*time.Millisecond {
		t.Fatalf("a->b delay = %v, want 15ms", got)
	}
	if got := tbl.ExtraDelay("b", "a"); got != 0 {
		t.Fatalf("b->a delay = %v, want 0", got)
	}
}

func TestTableHealAll(t *testing.T) {
	tbl := NewTable()
	tbl.Cut("c", []string{"a"}, []string{"b"})
	tbl.SetNAT("x", "r")
	tbl.SetLoss(0.5)
	tbl.SetPartitionFunc(func(string, string) bool { return true })
	if !tbl.Active() {
		t.Fatal("table with rules reports inactive")
	}
	tbl.HealAll()
	if tbl.Active() {
		t.Fatal("healed table reports active")
	}
	if d := tbl.Check("a", "b"); d.Outcome != Deliver {
		t.Fatalf("healed a->b = %+v", d)
	}
}
