package faults

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"wsgossip/internal/clock"
)

// Event is one timed fault operation in a Plan.
type Event struct {
	// At is the event's fire time, relative to Plan.Schedule.
	At time.Duration
	// Op is the canonical source text of the operation, for reports.
	Op string

	needsCrash   bool
	needsRecover bool
	apply        func(a Applier)
}

// Applier is the surface a Plan drives. Table receives every link-level
// operation; Crash and Recover handle the node-level churn operations of
// whatever fabric hosts the plan (simnet.Network.Crash, virtBus.Crash, a
// testlab SSH hook). Logf, when set, narrates each applied event.
type Applier struct {
	// Table receives link rules. Required.
	Table *Table
	// Crash takes a node offline. Required only when the plan crashes nodes.
	Crash func(addr string)
	// Recover brings a crashed node back. Required only when the plan
	// recovers nodes.
	Recover func(addr string)
	// Logf, when set, is called once per applied event.
	Logf func(format string, args ...any)
}

// Plan is a declarative timeline of fault events — the whole multi-fault
// composition (partition + churn + loss + delay at once) as one script,
// replayable under seed. Parse one with ParsePlan and arm it with Schedule.
type Plan struct {
	events []Event
}

// Events returns the plan's events in fire order.
func (p *Plan) Events() []Event {
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// Duration returns the fire time of the last event.
func (p *Plan) Duration() time.Duration {
	if len(p.events) == 0 {
		return 0
	}
	return p.events[len(p.events)-1].At
}

// Validate checks that the Applier supports every operation the plan uses.
func (p *Plan) Validate(a Applier) error {
	if a.Table == nil {
		return fmt.Errorf("faults: Applier.Table is required")
	}
	for _, ev := range p.events {
		if ev.needsCrash && a.Crash == nil {
			return fmt.Errorf("faults: plan op %q needs Applier.Crash", ev.Op)
		}
		if ev.needsRecover && a.Recover == nil {
			return fmt.Errorf("faults: plan op %q needs Applier.Recover", ev.Op)
		}
	}
	return nil
}

// Schedule validates the plan against a and arms one clk timer per event.
// Event times are relative to the call. Events sharing a fire time apply in
// source order (the clock fires equal deadlines in scheduling order), so a
// plan replays identically under a given seed.
func (p *Plan) Schedule(clk clock.Clock, a Applier) error {
	if err := p.Validate(a); err != nil {
		return err
	}
	for _, ev := range p.events {
		ev := ev
		clk.AfterFunc(ev.At, func() {
			ev.apply(a)
			if a.Logf != nil {
				a.Logf("faults: @%v %s", ev.At, ev.Op)
			}
		})
	}
	return nil
}

// ParsePlan reads a fault plan from its textual form. The grammar is
// line-based; '#' starts a comment and blank lines are ignored:
//
//	<at> <op> [args...]
//
//	500ms loss 0.2                      # global loss probability
//	1s    cut a->b                      # silent directional partition
//	1s    refuse a<->b                  # connection fault, both directions
//	1s    link-loss a->b 0.5            # directional loss probability
//	1s    delay a->b 20ms               # extra one-way latency
//	2s    partition n{00000..00009}     # group vs rest, both directions
//	2s    nat x via r1,r2               # x reachable only from r1, r2
//	3s    un-nat x
//	2s    crash n{00003..00004}
//	4s    recover n00003
//	5s    heal cut@2                    # remove rules installed under a name
//	6s    heal-all                      # remove every rule, NAT, and loss
//
// Link endpoints and node arguments are comma-separated sets; '*' matches
// any address, and a token may embed one numeric range, zero-padded to the
// width written ("n{00..49}" → n00, n01, …, n49). Rules default to the name
// "<op>@<line>"; a trailing "name=<label>" overrides it, which is what heal
// references.
func ParsePlan(src string) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		ev, err := parseEvent(fields, lineNo)
		if err != nil {
			return nil, fmt.Errorf("faults: plan line %d: %w", lineNo, err)
		}
		p.events = append(p.events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("faults: read plan: %w", err)
	}
	sort.SliceStable(p.events, func(i, j int) bool { return p.events[i].At < p.events[j].At })
	return p, nil
}

func parseEvent(fields []string, line int) (Event, error) {
	at, err := time.ParseDuration(fields[0])
	if err != nil || at < 0 {
		return Event{}, fmt.Errorf("bad time %q", fields[0])
	}
	op := fields[1]
	args := fields[2:]
	name := fmt.Sprintf("%s@%d", op, line)
	if n := len(args); n > 0 && strings.HasPrefix(args[n-1], "name=") {
		name = strings.TrimPrefix(args[n-1], "name=")
		if name == "" {
			return Event{}, fmt.Errorf("empty name=")
		}
		args = args[:n-1]
	}
	ev := Event{At: at, Op: strings.Join(fields[1:], " ")}

	arg1 := func() (string, error) {
		if len(args) != 1 {
			return "", fmt.Errorf("op %s wants 1 argument, got %d", op, len(args))
		}
		return args[0], nil
	}

	switch op {
	case "loss":
		a, err := arg1()
		if err != nil {
			return Event{}, err
		}
		pr, err := parseProb(a)
		if err != nil {
			return Event{}, err
		}
		ev.apply = func(a Applier) { a.Table.SetLoss(pr) }
	case "cut", "refuse":
		a, err := arg1()
		if err != nil {
			return Event{}, err
		}
		from, to, both, err := parseLink(a)
		if err != nil {
			return Event{}, err
		}
		refuse := op == "refuse"
		ev.apply = func(a Applier) {
			switch {
			case refuse && both:
				a.Table.RefuseBoth(name, from, to)
			case refuse:
				a.Table.RefuseLink(name, from, to)
			case both:
				a.Table.CutBoth(name, from, to)
			default:
				a.Table.Cut(name, from, to)
			}
		}
	case "link-loss":
		if len(args) != 2 {
			return Event{}, fmt.Errorf("link-loss wants <link> <p>")
		}
		from, to, both, err := parseLink(args[0])
		if err != nil {
			return Event{}, err
		}
		pr, err := parseProb(args[1])
		if err != nil {
			return Event{}, err
		}
		ev.apply = func(a Applier) {
			a.Table.LinkLoss(name, from, to, pr)
			if both {
				a.Table.LinkLoss(name, to, from, pr)
			}
		}
	case "delay":
		if len(args) != 2 {
			return Event{}, fmt.Errorf("delay wants <link> <duration>")
		}
		from, to, both, err := parseLink(args[0])
		if err != nil {
			return Event{}, err
		}
		d, err := time.ParseDuration(args[1])
		if err != nil || d < 0 {
			return Event{}, fmt.Errorf("bad duration %q", args[1])
		}
		ev.apply = func(a Applier) {
			a.Table.LinkDelay(name, from, to, d)
			if both {
				a.Table.LinkDelay(name, to, from, d)
			}
		}
	case "partition":
		a, err := arg1()
		if err != nil {
			return Event{}, err
		}
		group, err := parseSet(a)
		if err != nil || group == nil {
			return Event{}, fmt.Errorf("bad group %q", a)
		}
		ev.apply = func(a Applier) { a.Table.Partition(name, group) }
	case "nat":
		if len(args) != 3 || args[1] != "via" {
			return Event{}, fmt.Errorf("nat wants <node> via <relays>")
		}
		node := args[0]
		relays, err := parseSet(args[2])
		if err != nil || relays == nil {
			return Event{}, fmt.Errorf("bad relay set %q", args[2])
		}
		ev.apply = func(a Applier) { a.Table.SetNAT(node, relays...) }
	case "un-nat":
		node, err := arg1()
		if err != nil {
			return Event{}, err
		}
		ev.apply = func(a Applier) { a.Table.ClearNAT(node) }
	case "heal":
		target, err := arg1()
		if err != nil {
			return Event{}, err
		}
		ev.apply = func(a Applier) { a.Table.Heal(target) }
	case "heal-all":
		if len(args) != 0 {
			return Event{}, fmt.Errorf("heal-all takes no arguments")
		}
		ev.apply = func(a Applier) { a.Table.HealAll() }
	case "crash", "recover":
		a, err := arg1()
		if err != nil {
			return Event{}, err
		}
		nodes, err := parseSet(a)
		if err != nil || nodes == nil {
			return Event{}, fmt.Errorf("bad node set %q", a)
		}
		if op == "crash" {
			ev.needsCrash = true
			ev.apply = func(a Applier) {
				for _, n := range nodes {
					a.Crash(n)
				}
			}
		} else {
			ev.needsRecover = true
			ev.apply = func(a Applier) {
				for _, n := range nodes {
					a.Recover(n)
				}
			}
		}
	default:
		return Event{}, fmt.Errorf("unknown op %q", op)
	}
	return ev, nil
}

// parseLink splits "A->B" or "A<->B" into endpoint sets. A '*' endpoint
// yields a nil (match-any) set.
func parseLink(s string) (from, to []string, both bool, err error) {
	var l, r string
	if i := strings.Index(s, "<->"); i >= 0 {
		l, r, both = s[:i], s[i+3:], true
	} else if i := strings.Index(s, "->"); i >= 0 {
		l, r = s[:i], s[i+2:]
	} else {
		return nil, nil, false, fmt.Errorf("bad link %q (want A->B or A<->B)", s)
	}
	if from, err = parseSet(l); err != nil {
		return nil, nil, false, err
	}
	if to, err = parseSet(r); err != nil {
		return nil, nil, false, err
	}
	if both && (from == nil || to == nil) {
		return nil, nil, false, fmt.Errorf("bad link %q: '*' cannot be bidirectional", s)
	}
	return from, to, both, nil
}

// parseSet expands a comma-separated address set. "*" returns nil
// (match-any). A token may embed one "{A..B}" numeric range; the expansion
// zero-pads to the width A was written with.
func parseSet(s string) ([]string, error) {
	if s == "*" {
		return nil, nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok == "" {
			return nil, fmt.Errorf("empty address in set %q", s)
		}
		open := strings.IndexByte(tok, '{')
		if open < 0 {
			out = append(out, tok)
			continue
		}
		close := strings.IndexByte(tok, '}')
		if close < open {
			return nil, fmt.Errorf("bad range in %q", tok)
		}
		bounds := strings.SplitN(tok[open+1:close], "..", 2)
		if len(bounds) != 2 {
			return nil, fmt.Errorf("bad range in %q (want {lo..hi})", tok)
		}
		lo, err1 := strconv.Atoi(bounds[0])
		hi, err2 := strconv.Atoi(bounds[1])
		if err1 != nil || err2 != nil || lo > hi {
			return nil, fmt.Errorf("bad range bounds in %q", tok)
		}
		width := len(bounds[0])
		prefix, suffix := tok[:open], tok[close+1:]
		for i := lo; i <= hi; i++ {
			out = append(out, fmt.Sprintf("%s%0*d%s", prefix, width, i, suffix))
		}
	}
	return out, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("bad probability %q", s)
	}
	return p, nil
}
