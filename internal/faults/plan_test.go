package faults

import (
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/clock"
)

func TestParseSetRanges(t *testing.T) {
	got, err := parseSet("n{00..02},m7,x{8..10}s")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"n00", "n01", "n02", "m7", "x8s", "x9s", "x10s"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s, err := parseSet("*"); err != nil || s != nil {
		t.Fatalf("'*' = (%v, %v), want nil set", s, err)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"oops cut a->b",       // bad time
		"1s cut ab",           // bad link
		"1s loss 1.5",         // bad probability
		"1s frobnicate a",     // unknown op
		"1s nat x r1",         // missing 'via'
		"1s cut a->b name=",   // empty name
		"1s cut *<->b",        // '*' cannot be bidirectional
		"1s cut n{9..2}->b",   // inverted range
		"1s heal-all surplus", // surplus argument
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) accepted", bad)
		}
	}
}

// TestPlanSchedule drives a full composition over a virtual clock and
// checks each operation takes effect at its time and heals on cue.
func TestPlanSchedule(t *testing.T) {
	const src = `
# four-fault composition
100ms loss 0.5
100ms cut a->b name=ab
200ms partition g1,g2 name=split
200ms nat x via r
300ms crash c1,c2
400ms recover c1
500ms heal ab
500ms heal split
500ms un-nat x
600ms heal-all
`
	plan, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Duration(); got != 600*time.Millisecond {
		t.Fatalf("Duration = %v, want 600ms", got)
	}
	clk := clock.NewVirtual()
	tbl := NewTable()
	crashed := map[string]bool{}
	a := Applier{
		Table:   tbl,
		Crash:   func(n string) { crashed[n] = true },
		Recover: func(n string) { delete(crashed, n) },
	}
	if err := plan.Schedule(clk, a); err != nil {
		t.Fatal(err)
	}

	clk.Advance(100 * time.Millisecond)
	if got := tbl.Loss(); got != 0.5 {
		t.Fatalf("loss after 100ms = %v", got)
	}
	if d := tbl.Check("a", "b"); d.Outcome != Drop {
		t.Fatalf("a->b after 100ms = %+v", d)
	}
	clk.Advance(100 * time.Millisecond)
	if d := tbl.Check("g1", "other"); d.Outcome != Drop {
		t.Fatalf("partition not applied: %+v", d)
	}
	if d := tbl.Check("y", "x"); d.Outcome != Refuse {
		t.Fatalf("nat not applied: %+v", d)
	}
	clk.Advance(100 * time.Millisecond)
	if !crashed["c1"] || !crashed["c2"] {
		t.Fatalf("crash not applied: %v", crashed)
	}
	clk.Advance(100 * time.Millisecond)
	if crashed["c1"] || !crashed["c2"] {
		t.Fatalf("recover not applied: %v", crashed)
	}
	clk.Advance(100 * time.Millisecond)
	if d := tbl.Check("a", "b"); d.Outcome != Deliver {
		t.Fatalf("heal ab not applied: %+v", d)
	}
	if d := tbl.Check("g1", "other"); d.Outcome != Deliver {
		t.Fatalf("heal split not applied: %+v", d)
	}
	if d := tbl.Check("y", "x"); d.Outcome != Deliver {
		t.Fatalf("un-nat not applied: %+v", d)
	}
	clk.Advance(100 * time.Millisecond)
	if tbl.Active() {
		t.Fatal("heal-all left the table active")
	}
}

func TestPlanValidateMissingHooks(t *testing.T) {
	plan, err := ParsePlan("1s crash a")
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(Applier{Table: NewTable()}); err == nil {
		t.Fatal("Validate accepted a crash plan without a Crash hook")
	}
	if err := plan.Validate(Applier{}); err == nil {
		t.Fatal("Validate accepted a nil Table")
	}
}

// TestPlanReplayDeterminism applies the same plan over the same seeded
// traffic twice and requires identical per-rule accounting — the property
// the simulator's byte-identical-report CI check rests on.
func TestPlanReplayDeterminism(t *testing.T) {
	const src = `
0ms   loss 0.2
10ms  cut a->b
20ms  link-loss b->a 0.4 name=lb
30ms  heal cut@3
`
	run := func() (Totals, map[string]int64) {
		plan, err := ParsePlan(src)
		if err != nil {
			t.Fatal(err)
		}
		clk := clock.NewVirtual()
		tbl := NewTable()
		if err := plan.Schedule(clk, Applier{Table: tbl}); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for step := 0; step < 50; step++ {
			clk.Advance(time.Millisecond)
			for _, link := range [][2]string{{"a", "b"}, {"b", "a"}, {"a", "c"}} {
				if d := tbl.Check(link[0], link[1]); d.Outcome != Deliver {
					continue
				}
				tbl.Lossy(link[0], link[1], rng)
			}
		}
		return tbl.Totals(), tbl.Counts()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 {
		t.Fatalf("totals differ across replays: %+v vs %+v", t1, t2)
	}
	if len(c1) != len(c2) {
		t.Fatalf("counts differ: %v vs %v", c1, c2)
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("count %q differs: %d vs %d", k, v, c2[k])
		}
	}
	if t1.Sum() == 0 {
		t.Fatal("plan affected no traffic; the determinism check proved nothing")
	}
}
