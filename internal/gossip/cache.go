package gossip

import "container/list"

// seenCache is a bounded LRU set of rumor IDs used for duplicate
// suppression. Bounding it is what makes long-running disseminators safe;
// ablation A2 measures the duplicate-delivery cost of undersizing it.
type seenCache struct {
	cap   int
	order *list.List
	items map[string]*list.Element
}

func newSeenCache(capacity int) *seenCache {
	// The map grows on demand; preallocating the full capacity would cost
	// megabytes per engine in large simulations.
	hint := capacity
	if hint > 1024 {
		hint = 1024
	}
	return &seenCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, hint),
	}
}

// Add inserts id and reports whether it was not already present.
func (c *seenCache) Add(id string) bool {
	if el, ok := c.items[id]; ok {
		c.order.MoveToFront(el)
		return false
	}
	c.items[id] = c.order.PushFront(id)
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(string))
	}
	return true
}

// Contains reports whether id is present without refreshing recency.
func (c *seenCache) Contains(id string) bool {
	_, ok := c.items[id]
	return ok
}

// Len returns the number of cached IDs.
func (c *seenCache) Len() int { return c.order.Len() }

// rumorStore retains recent rumor bodies so the node can answer IWANT and
// pull requests. It evicts in FIFO order.
type rumorStore struct {
	cap   int
	order *list.List // of string (rumor IDs), front = newest
	items map[string]Rumor
}

func newRumorStore(capacity int) *rumorStore {
	hint := capacity
	if hint > 1024 {
		hint = 1024
	}
	return &rumorStore{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]Rumor, hint),
	}
}

// Put stores r, replacing an existing entry with the same ID (keeping the
// higher hop budget so repair is as strong as the freshest copy).
func (s *rumorStore) Put(r Rumor) {
	if old, ok := s.items[r.ID]; ok {
		if r.Hops > old.Hops {
			s.items[r.ID] = r
		}
		return
	}
	s.items[r.ID] = r
	s.order.PushFront(r.ID)
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(string))
	}
}

// Get returns the stored rumor by ID.
func (s *rumorStore) Get(id string) (Rumor, bool) {
	r, ok := s.items[id]
	return r, ok
}

// Len returns the number of stored rumors.
func (s *rumorStore) Len() int { return s.order.Len() }

// RecentRefs returns up to n references to the most recent rumors.
func (s *rumorStore) RecentRefs(n int) []RumorRef {
	if n <= 0 || n > s.order.Len() {
		n = s.order.Len()
	}
	refs := make([]RumorRef, 0, n)
	for el := s.order.Front(); el != nil && len(refs) < n; el = el.Next() {
		id := el.Value.(string)
		refs = append(refs, RumorRef{ID: id, Hops: s.items[id].Hops})
	}
	return refs
}

// MissingFrom returns stored rumors whose IDs are absent from the given set,
// newest first, capped at limit.
func (s *rumorStore) MissingFrom(have map[string]struct{}, limit int) []Rumor {
	var out []Rumor
	for el := s.order.Front(); el != nil && len(out) < limit; el = el.Next() {
		id := el.Value.(string)
		if _, ok := have[id]; ok {
			continue
		}
		out = append(out, s.items[id])
	}
	return out
}
