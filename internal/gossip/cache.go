package gossip

// Both bounded collections here used to ride on container/list, which costs
// one 48-byte heap node plus a pointer cell per entry. At simulation scales
// (10^5-10^6 engines, each with a seen cache and a rumor store) that
// overhead dominated per-node memory, so both are now slice-backed: the LRU
// is an intrusive doubly-linked list over a contiguous arena addressed by
// index, and the FIFO is a deque over a plain slice. Semantics are
// unchanged.

const noEntry = int32(-1)

// seenCache is a bounded LRU set of rumor IDs used for duplicate
// suppression. Bounding it is what makes long-running disseminators safe;
// ablation A2 measures the duplicate-delivery cost of undersizing it.
type seenCache struct {
	cap   int
	items map[string]int32 // id -> arena index
	arena []seenEntry
	free  []int32
	head  int32 // most recently used
	tail  int32 // least recently used
}

type seenEntry struct {
	id   string
	prev int32
	next int32
}

func newSeenCache(capacity int) *seenCache {
	// No size hint: a hint preallocates buckets up front, and at simulation
	// scale (10^5..10^6 engines, most of which ever see a handful of rumors)
	// even a modest hint per engine dominates resident memory. Incremental
	// map growth costs only amortized rehashing on the nodes that get busy.
	return &seenCache{
		cap:   capacity,
		items: make(map[string]int32),
		head:  noEntry,
		tail:  noEntry,
	}
}

// unlinkLocked detaches entry i from the recency list.
func (c *seenCache) unlink(i int32) {
	e := &c.arena[i]
	if e.prev != noEntry {
		c.arena[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next != noEntry {
		c.arena[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
}

// pushFront makes entry i the most recently used.
func (c *seenCache) pushFront(i int32) {
	e := &c.arena[i]
	e.prev = noEntry
	e.next = c.head
	if c.head != noEntry {
		c.arena[c.head].prev = i
	}
	c.head = i
	if c.tail == noEntry {
		c.tail = i
	}
}

// Add inserts id and reports whether it was not already present.
func (c *seenCache) Add(id string) bool {
	if i, ok := c.items[id]; ok {
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
		return false
	}
	var i int32
	if n := len(c.free); n > 0 {
		i = c.free[n-1]
		c.free = c.free[:n-1]
		c.arena[i] = seenEntry{id: id}
	} else {
		i = int32(len(c.arena))
		c.arena = append(c.arena, seenEntry{id: id})
	}
	c.items[id] = i
	c.pushFront(i)
	for len(c.items) > c.cap {
		oldest := c.tail
		c.unlink(oldest)
		delete(c.items, c.arena[oldest].id)
		c.arena[oldest].id = "" // release the string
		c.free = append(c.free, oldest)
	}
	return true
}

// Contains reports whether id is present without refreshing recency.
func (c *seenCache) Contains(id string) bool {
	_, ok := c.items[id]
	return ok
}

// Len returns the number of cached IDs.
func (c *seenCache) Len() int { return len(c.items) }

// rumorStore retains recent rumor bodies so the node can answer IWANT and
// pull requests. It evicts in FIFO order. Entries are never reordered, so
// the order index is a deque: new IDs append at the end (newest), eviction
// advances start past the oldest, and the slice compacts when the dead
// prefix dominates.
type rumorStore struct {
	cap   int
	ids   []string // insertion order; ids[start:] live, oldest first
	start int
	items map[string]Rumor
}

func newRumorStore(capacity int) *rumorStore {
	// Unhinted for the same reason as newSeenCache: per-engine resident
	// memory at large simulated populations.
	return &rumorStore{
		cap:   capacity,
		items: make(map[string]Rumor),
	}
}

// Put stores r, replacing an existing entry with the same ID (keeping the
// higher hop budget so repair is as strong as the freshest copy).
func (s *rumorStore) Put(r Rumor) {
	if old, ok := s.items[r.ID]; ok {
		if r.Hops > old.Hops {
			s.items[r.ID] = r
		}
		return
	}
	s.items[r.ID] = r
	s.ids = append(s.ids, r.ID)
	for len(s.items) > s.cap {
		delete(s.items, s.ids[s.start])
		s.ids[s.start] = ""
		s.start++
	}
	if s.start > len(s.ids)/2 && s.start > 64 {
		s.ids = append(s.ids[:0], s.ids[s.start:]...)
		s.start = 0
	}
}

// Get returns the stored rumor by ID.
func (s *rumorStore) Get(id string) (Rumor, bool) {
	r, ok := s.items[id]
	return r, ok
}

// Len returns the number of stored rumors.
func (s *rumorStore) Len() int { return len(s.items) }

// RecentRefs returns up to n references to the most recent rumors.
func (s *rumorStore) RecentRefs(n int) []RumorRef {
	if n <= 0 || n > len(s.items) {
		n = len(s.items)
	}
	refs := make([]RumorRef, 0, n)
	for i := len(s.ids) - 1; i >= s.start && len(refs) < n; i-- {
		id := s.ids[i]
		refs = append(refs, RumorRef{ID: id, Hops: s.items[id].Hops})
	}
	return refs
}

// MissingFrom returns stored rumors whose IDs are absent from the given set,
// newest first, capped at limit.
func (s *rumorStore) MissingFrom(have map[string]struct{}, limit int) []Rumor {
	var out []Rumor
	for i := len(s.ids) - 1; i >= s.start && len(out) < limit; i-- {
		id := s.ids[i]
		if _, ok := have[id]; ok {
			continue
		}
		out = append(out, s.items[id])
	}
	return out
}
