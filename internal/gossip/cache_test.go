package gossip

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSeenCacheAddAndContains(t *testing.T) {
	c := newSeenCache(4)
	if !c.Add("a") {
		t.Fatal("first add reported duplicate")
	}
	if c.Add("a") {
		t.Fatal("second add reported new")
	}
	if !c.Contains("a") || c.Contains("b") {
		t.Fatal("contains wrong")
	}
}

func TestSeenCacheEviction(t *testing.T) {
	c := newSeenCache(3)
	for _, id := range []string{"a", "b", "c", "d"} {
		c.Add(id)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Contains("a") {
		t.Fatal("oldest entry not evicted")
	}
	if !c.Contains("d") {
		t.Fatal("newest entry missing")
	}
}

func TestSeenCacheLRURefresh(t *testing.T) {
	c := newSeenCache(3)
	c.Add("a")
	c.Add("b")
	c.Add("c")
	c.Add("a") // refresh a
	c.Add("d") // evicts b, not a
	if !c.Contains("a") {
		t.Fatal("refreshed entry evicted")
	}
	if c.Contains("b") {
		t.Fatal("stale entry survived")
	}
}

func TestSeenCacheCapacityProperty(t *testing.T) {
	f := func(capRaw uint8, ids []string) bool {
		capacity := 1 + int(capRaw)%32
		c := newSeenCache(capacity)
		for _, id := range ids {
			c.Add(id)
		}
		return c.Len() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRumorStorePutGet(t *testing.T) {
	s := newRumorStore(4)
	s.Put(Rumor{ID: "r1", Hops: 3, Payload: []byte("x")})
	got, ok := s.Get("r1")
	if !ok || got.Hops != 3 {
		t.Fatalf("get = %+v, %v", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing rumor found")
	}
}

func TestRumorStoreKeepsHigherHops(t *testing.T) {
	s := newRumorStore(4)
	s.Put(Rumor{ID: "r1", Hops: 2})
	s.Put(Rumor{ID: "r1", Hops: 5})
	if got, _ := s.Get("r1"); got.Hops != 5 {
		t.Fatalf("hops = %d, want 5", got.Hops)
	}
	s.Put(Rumor{ID: "r1", Hops: 1})
	if got, _ := s.Get("r1"); got.Hops != 5 {
		t.Fatalf("hops downgraded to %d", got.Hops)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestRumorStoreFIFOEviction(t *testing.T) {
	s := newRumorStore(2)
	s.Put(Rumor{ID: "a"})
	s.Put(Rumor{ID: "b"})
	s.Put(Rumor{ID: "c"})
	if _, ok := s.Get("a"); ok {
		t.Fatal("oldest rumor survived")
	}
	if _, ok := s.Get("c"); !ok {
		t.Fatal("newest rumor evicted")
	}
}

func TestRumorStoreRecentRefs(t *testing.T) {
	s := newRumorStore(8)
	for i := 0; i < 5; i++ {
		s.Put(Rumor{ID: fmt.Sprintf("r%d", i), Hops: i})
	}
	refs := s.RecentRefs(3)
	if len(refs) != 3 {
		t.Fatalf("refs = %d", len(refs))
	}
	if refs[0].ID != "r4" {
		t.Fatalf("newest ref = %s", refs[0].ID)
	}
	all := s.RecentRefs(-1)
	if len(all) != 5 {
		t.Fatalf("all refs = %d", len(all))
	}
}

func TestRumorStoreMissingFrom(t *testing.T) {
	s := newRumorStore(8)
	for i := 0; i < 4; i++ {
		s.Put(Rumor{ID: fmt.Sprintf("r%d", i)})
	}
	have := map[string]struct{}{"r1": {}, "r3": {}}
	missing := s.MissingFrom(have, 10)
	if len(missing) != 2 {
		t.Fatalf("missing = %v", missing)
	}
	for _, m := range missing {
		if m.ID == "r1" || m.ID == "r3" {
			t.Fatalf("returned rumor the peer has: %s", m.ID)
		}
	}
	capped := s.MissingFrom(map[string]struct{}{}, 1)
	if len(capped) != 1 {
		t.Fatalf("cap ignored: %d", len(capped))
	}
}

func TestSeenSetConcurrent(t *testing.T) {
	s := NewSeenSet(1024)
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 500; i++ {
				s.Add(fmt.Sprintf("g%d-%d", g, i))
			}
			done <- true
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s.Len() != 1024 && s.Len() != 2000 {
		// All 2000 unique adds, bounded at capacity 1024.
		t.Fatalf("len = %d", s.Len())
	}
	if s.Len() > 1024 {
		t.Fatalf("len %d exceeds capacity", s.Len())
	}
}

func TestSeenSetDefaultCapacity(t *testing.T) {
	s := NewSeenSet(0)
	if !s.Add("x") || s.Add("x") {
		t.Fatal("basic add semantics broken")
	}
	if !s.Contains("x") {
		t.Fatal("contains broken")
	}
}

func TestSamplePeersProperties(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%20 + 1
		k := int(kRaw) % 25
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("p%d", i)
		}
		rng := testRand(seed)
		got := SamplePeers(rng, addrs, k, "p0")
		// Never returns the excluded element, never duplicates, never
		// exceeds k or the eligible count.
		if len(got) > k && k >= 0 {
			return false
		}
		seen := map[string]bool{}
		for _, g := range got {
			if g == "p0" || seen[g] {
				return false
			}
			seen[g] = true
		}
		all := SamplePeers(rng, addrs, -1, "p0")
		return len(all) == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePeersDoesNotMutateInput(t *testing.T) {
	addrs := []string{"a", "b", "c", "d"}
	orig := append([]string(nil), addrs...)
	SamplePeers(testRand(1), addrs, 2, "")
	for i := range addrs {
		if addrs[i] != orig[i] {
			t.Fatal("input slice mutated")
		}
	}
}

func TestStaticPeersCopies(t *testing.T) {
	in := []string{"a", "b"}
	p := NewStaticPeers(in)
	in[0] = "mutated"
	if p.Addrs()[0] != "a" {
		t.Fatal("constructor did not copy")
	}
	out := p.Addrs()
	out[0] = "mutated"
	if p.Addrs()[0] != "a" {
		t.Fatal("accessor did not copy")
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}
