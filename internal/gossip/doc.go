// Package gossip implements the epidemic dissemination engine at the core of
// WS-Gossip. It supports the gossip styles the paper's framework encompasses
// (Section 4: "encompassing different gossip styles"): eager push (the
// WS-PushGossip protocol of Section 3), lazy push (announce/request), pull
// anti-entropy, push-pull, and flooding as a degenerate baseline.
//
// The two key protocol parameters match the paper's Section 2: Fanout (f),
// the number of targets each process selects locally, and Hops (the paper's
// rounds r), the maximum number of times a message is forwarded before being
// ignored.
//
// Key types:
//
//   - Engine — one node's dissemination instance over transport.Endpoint;
//     Publish injects a rumor, Tick runs an anti-entropy round for the pull
//     styles.
//   - PeerProvider — the peer source abstraction (StaticPeers for fixed
//     sets, membership.Service for live views); SamplePeers is the shared
//     uniform-without-replacement sampler every layer draws through.
//   - SeenSet — the bounded duplicate-suppression cache.
//   - Rumor / Style — the unit of dissemination and the spread discipline.
package gossip
