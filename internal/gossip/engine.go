package gossip

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"wsgossip/internal/transport"
)

// Default engine sizing.
const (
	DefaultSeenCacheSize  = 1 << 16
	DefaultStoreSize      = 1 << 12
	DefaultPullDigestSize = 128
	DefaultPullBatchSize  = 64
)

// Config configures an Engine.
type Config struct {
	// Style selects the dissemination strategy. Required.
	Style Style
	// Fanout is the paper's f: targets selected per forwarding decision.
	Fanout int
	// Hops is the paper's rounds r: forwarding budget per rumor.
	Hops int
	// Endpoint attaches the engine to a network. Required.
	Endpoint transport.Endpoint
	// Peers supplies gossip targets. Required.
	Peers PeerProvider
	// Deliver is invoked exactly once per unique rumor (never for
	// duplicates). Optional.
	Deliver func(Rumor)
	// RNG drives peer selection and rumor IDs. Required for reproducible
	// experiments; nil falls back to a fixed-seed source.
	RNG *rand.Rand
	// SeenCacheSize bounds the duplicate-suppression cache (0 = default).
	SeenCacheSize int
	// StoreSize bounds the rumor bodies retained for lazy-push and pull
	// repair (0 = default).
	StoreSize int
	// PullDigestSize bounds the IDs advertised per pull request (0 = default).
	PullDigestSize int
	// PullBatchSize bounds the rumors returned per pull response (0 = default).
	PullBatchSize int
	// CounterK is the quiescence threshold for StyleCounter: a node stops
	// re-forwarding a rumor after hearing it this many times beyond the
	// first (0 = 2).
	CounterK int
}

func (c *Config) validate() error {
	if c.Endpoint == nil {
		return errors.New("gossip: config requires an endpoint")
	}
	if c.Peers == nil {
		return errors.New("gossip: config requires a peer provider")
	}
	if c.Style < StylePush || c.Style > StyleCounter {
		return fmt.Errorf("gossip: invalid style %d", int(c.Style))
	}
	if c.Fanout < 1 && c.Style != StyleFlood {
		return fmt.Errorf("gossip: fanout must be >= 1, got %d", c.Fanout)
	}
	if c.Hops < 0 {
		return fmt.Errorf("gossip: hops must be >= 0, got %d", c.Hops)
	}
	return nil
}

// Stats counts engine activity. Counter semantics:
// Delivered counts unique rumors handed to the application; Duplicates
// counts suppressed re-receipts; Forwarded counts payload transmissions to
// individual peers.
type Stats struct {
	Published  int64
	Delivered  int64
	Duplicates int64
	Forwarded  int64
	IHaveSent  int64
	IWantSent  int64
	PullReqs   int64
	PullResps  int64
	SendErrors int64
}

// Engine is one node's gossip protocol instance. It is safe for concurrent
// use; in the simulator all calls arrive from the event loop.
type Engine struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	seen      *seenCache
	store     *rumorStore
	requested map[string]struct{} // outstanding IWANTs
	counters  map[string]int      // StyleCounter: duplicates heard per active rumor
	stats     Stats
}

// New validates cfg and returns an engine. The caller must route the
// engine's wire actions to it, normally via Register on a transport.Mux.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.SeenCacheSize <= 0 {
		cfg.SeenCacheSize = DefaultSeenCacheSize
	}
	if cfg.StoreSize <= 0 {
		cfg.StoreSize = DefaultStoreSize
	}
	if cfg.PullDigestSize <= 0 {
		cfg.PullDigestSize = DefaultPullDigestSize
	}
	if cfg.PullBatchSize <= 0 {
		cfg.PullBatchSize = DefaultPullBatchSize
	}
	if cfg.CounterK <= 0 {
		cfg.CounterK = 2
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Engine{
		cfg:       cfg,
		rng:       rng,
		seen:      newSeenCache(cfg.SeenCacheSize),
		store:     newRumorStore(cfg.StoreSize),
		requested: make(map[string]struct{}),
		counters:  make(map[string]int),
	}, nil
}

// Register installs the engine's wire actions on the mux.
func (e *Engine) Register(mux *transport.Mux) {
	mux.Handle(ActionPush, e.handlePush)
	mux.Handle(ActionIHave, e.handleIHave)
	mux.Handle(ActionIWant, e.handleIWant)
	mux.Handle(ActionPullReq, e.handlePullReq)
	mux.Handle(ActionPullResp, e.handlePullResp)
}

// Addr returns the engine's endpoint address.
func (e *Engine) Addr() string { return e.cfg.Endpoint.Addr() }

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Style returns the configured dissemination style.
func (e *Engine) Style() Style { return e.cfg.Style }

// Publish originates a rumor with the engine's full hop budget, delivers it
// locally, and starts dissemination per the configured style.
func (e *Engine) Publish(ctx context.Context, payload []byte) (Rumor, error) {
	e.mu.Lock()
	r := Rumor{
		ID:      NewRumorID(e.rng),
		Origin:  e.cfg.Endpoint.Addr(),
		Hops:    e.cfg.Hops,
		Payload: payload,
	}
	e.stats.Published++
	e.acceptLocked(ctx, r, false)
	e.mu.Unlock()
	return r, nil
}

// Inject processes an externally created rumor exactly as if it had been
// received from a peer. WS-Gossip's Initiator role uses this to hand a
// coordinator-assigned notification to the local engine.
func (e *Engine) Inject(ctx context.Context, r Rumor) {
	e.mu.Lock()
	e.acceptLocked(ctx, r, false)
	e.mu.Unlock()
}

// acceptLocked is the single entry point for new rumors. viaPull marks
// rumors learned through anti-entropy, which are stored and delivered but
// not eagerly re-forwarded (they spread through subsequent pulls).
func (e *Engine) acceptLocked(ctx context.Context, r Rumor, viaPull bool) {
	if !e.seen.Add(r.ID) {
		e.stats.Duplicates++
		if e.cfg.Style == StyleCounter && !viaPull {
			e.duplicateFeedbackLocked(ctx, r)
		}
		return
	}
	delete(e.requested, r.ID)
	e.store.Put(r)
	e.stats.Delivered++
	if e.cfg.Deliver != nil {
		deliver := e.cfg.Deliver
		// Deliver without holding the lock-protected state hostage to
		// application work would require unlocking; the callback must not
		// call back into the engine synchronously from another goroutine.
		deliver(r)
	}
	if viaPull {
		return
	}
	switch e.cfg.Style {
	case StylePush, StylePushPull:
		e.forwardLocked(ctx, r)
	case StyleLazyPush:
		e.announceLocked(ctx, r)
	case StyleFlood:
		e.floodLocked(ctx, r)
	case StyleCounter:
		// First receipt: start mongering. The rumor stays active until
		// CounterK duplicates are heard; hop budgets are not used, so the
		// forwarded copy keeps whatever budget it arrived with.
		e.counters[r.ID] = 0
		burst := r
		if burst.Hops <= 0 {
			burst.Hops = 1 // keep receivers eligible to monger too
		}
		e.mongerBurstLocked(ctx, burst)
	case StylePull:
		// Pull spreads only through Tick.
	}
}

// duplicateFeedbackLocked implements counter mongering: each duplicate
// receipt of a still-active rumor triggers one more burst; after CounterK
// duplicates the node goes quiescent for that rumor.
func (e *Engine) duplicateFeedbackLocked(ctx context.Context, r Rumor) {
	count, active := e.counters[r.ID]
	if !active {
		return
	}
	count++
	if count >= e.cfg.CounterK {
		delete(e.counters, r.ID)
		return
	}
	e.counters[r.ID] = count
	if stored, ok := e.store.Get(r.ID); ok {
		r = stored
	}
	if r.Hops <= 0 {
		r.Hops = 1
	}
	e.mongerBurstLocked(ctx, r)
}

// mongerBurstLocked sends the rumor to f random peers without consuming a
// hop budget (counter mongering terminates by feedback, not hops).
func (e *Engine) mongerBurstLocked(ctx context.Context, r Rumor) {
	peers := e.cfg.Peers.SelectPeers(e.rng, e.cfg.Fanout, e.cfg.Endpoint.Addr())
	body, err := encodeWire(wireMsg{Rumors: []Rumor{r}})
	if err != nil {
		e.stats.SendErrors++
		return
	}
	for _, p := range peers {
		e.sendLocked(ctx, p, ActionPush, body)
		e.stats.Forwarded++
	}
}

// forwardLocked sends the payload to f random peers with a decremented hop
// budget.
func (e *Engine) forwardLocked(ctx context.Context, r Rumor) {
	if r.Hops <= 0 {
		return
	}
	next := r
	next.Hops = r.Hops - 1
	peers := e.cfg.Peers.SelectPeers(e.rng, e.cfg.Fanout, e.cfg.Endpoint.Addr())
	body, err := encodeWire(wireMsg{Rumors: []Rumor{next}})
	if err != nil {
		e.stats.SendErrors++
		return
	}
	for _, p := range peers {
		e.sendLocked(ctx, p, ActionPush, body)
		e.stats.Forwarded++
	}
}

// floodLocked sends the payload to every known peer.
func (e *Engine) floodLocked(ctx context.Context, r Rumor) {
	if r.Hops <= 0 {
		return
	}
	next := r
	next.Hops = r.Hops - 1
	peers := e.cfg.Peers.SelectPeers(e.rng, -1, e.cfg.Endpoint.Addr())
	body, err := encodeWire(wireMsg{Rumors: []Rumor{next}})
	if err != nil {
		e.stats.SendErrors++
		return
	}
	for _, p := range peers {
		e.sendLocked(ctx, p, ActionPush, body)
		e.stats.Forwarded++
	}
}

// announceLocked advertises the rumor ID to f random peers (lazy push).
func (e *Engine) announceLocked(ctx context.Context, r Rumor) {
	if r.Hops <= 0 {
		return
	}
	peers := e.cfg.Peers.SelectPeers(e.rng, e.cfg.Fanout, e.cfg.Endpoint.Addr())
	body, err := encodeWire(wireMsg{Refs: []RumorRef{{ID: r.ID, Hops: r.Hops}}})
	if err != nil {
		e.stats.SendErrors++
		return
	}
	for _, p := range peers {
		e.sendLocked(ctx, p, ActionIHave, body)
		e.stats.IHaveSent++
	}
}

func (e *Engine) sendLocked(ctx context.Context, to, action string, body []byte) {
	msg := transport.Message{To: to, Action: action, Body: body}
	if err := e.cfg.Endpoint.Send(ctx, msg); err != nil {
		e.stats.SendErrors++
	}
}

// handlePush processes an inbound payload message.
func (e *Engine) handlePush(ctx context.Context, msg transport.Message) error {
	wm, err := decodeWire(msg.Body)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range wm.Rumors {
		e.acceptLocked(ctx, r, false)
	}
	return nil
}

// handleIHave answers announcements by requesting unseen rumors.
func (e *Engine) handleIHave(ctx context.Context, msg transport.Message) error {
	wm, err := decodeWire(msg.Body)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var want []RumorRef
	for _, ref := range wm.Refs {
		if e.seen.Contains(ref.ID) {
			e.stats.Duplicates++
			continue
		}
		if _, pending := e.requested[ref.ID]; pending {
			continue
		}
		e.requested[ref.ID] = struct{}{}
		want = append(want, ref)
	}
	if len(want) == 0 {
		return nil
	}
	body, err := encodeWire(wireMsg{Refs: want})
	if err != nil {
		return err
	}
	e.sendLocked(ctx, msg.From, ActionIWant, body)
	e.stats.IWantSent++
	return nil
}

// handleIWant serves requested rumor bodies with decremented hop budgets.
func (e *Engine) handleIWant(ctx context.Context, msg transport.Message) error {
	wm, err := decodeWire(msg.Body)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Rumor
	for _, ref := range wm.Refs {
		r, ok := e.store.Get(ref.ID)
		if !ok {
			continue
		}
		if r.Hops > 0 {
			r.Hops--
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil
	}
	body, err := encodeWire(wireMsg{Rumors: out})
	if err != nil {
		return err
	}
	e.sendLocked(ctx, msg.From, ActionPush, body)
	e.stats.Forwarded += int64(len(out))
	return nil
}

// Tick runs one periodic round. For pull and push-pull styles it starts an
// anti-entropy exchange with f random peers; for other styles it is a no-op,
// letting callers drive every engine uniformly.
func (e *Engine) Tick(ctx context.Context) {
	if e.cfg.Style != StylePull && e.cfg.Style != StylePushPull {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	peers := e.cfg.Peers.SelectPeers(e.rng, e.cfg.Fanout, e.cfg.Endpoint.Addr())
	if len(peers) == 0 {
		return
	}
	refs := e.store.RecentRefs(e.cfg.PullDigestSize)
	body, err := encodeWire(wireMsg{Refs: refs})
	if err != nil {
		e.stats.SendErrors++
		return
	}
	for _, p := range peers {
		e.sendLocked(ctx, p, ActionPullReq, body)
		e.stats.PullReqs++
	}
}

// handlePullReq answers a digest with the rumors the requester is missing.
func (e *Engine) handlePullReq(ctx context.Context, msg transport.Message) error {
	wm, err := decodeWire(msg.Body)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	have := make(map[string]struct{}, len(wm.Refs))
	for _, ref := range wm.Refs {
		have[ref.ID] = struct{}{}
	}
	missing := e.store.MissingFrom(have, e.cfg.PullBatchSize)
	if len(missing) == 0 {
		return nil
	}
	out := make([]Rumor, len(missing))
	for i, r := range missing {
		if r.Hops > 0 {
			r.Hops--
		}
		out[i] = r
	}
	body, err := encodeWire(wireMsg{Rumors: out})
	if err != nil {
		return err
	}
	e.sendLocked(ctx, msg.From, ActionPullResp, body)
	e.stats.PullResps++
	return nil
}

// handlePullResp accepts repair rumors without eager re-forwarding.
func (e *Engine) handlePullResp(ctx context.Context, msg transport.Message) error {
	wm, err := decodeWire(msg.Body)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range wm.Rumors {
		e.acceptLocked(ctx, r, true)
	}
	return nil
}

// Seen reports whether the engine has already processed the rumor ID.
func (e *Engine) Seen(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seen.Contains(id)
}

// StoreLen reports the number of retained rumor bodies.
func (e *Engine) StoreLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.Len()
}
