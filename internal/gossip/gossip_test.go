package gossip

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// cluster builds n engines over a fresh simulated network.
type cluster struct {
	net     *simnet.Network
	engines []*Engine
	got     []map[string]int // per node: rumor id -> delivery count
}

func newCluster(t *testing.T, n int, seed int64, mutate func(i int, cfg *Config)) *cluster {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(seed))
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("n%03d", i)
	}
	peers := NewStaticPeers(addrs)
	c := &cluster{net: net, engines: make([]*Engine, n), got: make([]map[string]int, n)}
	for i := range addrs {
		i := i
		c.got[i] = make(map[string]int)
		cfg := Config{
			Style:    StylePush,
			Fanout:   3,
			Hops:     12,
			Endpoint: net.Node(addrs[i]),
			Peers:    peers,
			RNG:      rand.New(rand.NewSource(seed + int64(i))),
			Deliver: func(r Rumor) {
				c.got[i][r.ID]++
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		eng, err := New(cfg)
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
		mux := transport.NewMux()
		eng.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		c.engines[i] = eng
	}
	return c
}

func (c *cluster) coverage(id string) float64 {
	n := 0
	for _, m := range c.got {
		if m[id] > 0 {
			n++
		}
	}
	return float64(n) / float64(len(c.got))
}

func (c *cluster) tickAll(ctx context.Context, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, e := range c.engines {
			e.Tick(ctx)
		}
		c.net.Run()
	}
}

func TestConfigValidation(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	ep := net.Node("a")
	peers := NewStaticPeers([]string{"a", "b"})
	tests := []struct {
		name string
		cfg  Config
	}{
		{"missing endpoint", Config{Style: StylePush, Fanout: 1, Hops: 1, Peers: peers}},
		{"missing peers", Config{Style: StylePush, Fanout: 1, Hops: 1, Endpoint: ep}},
		{"bad style", Config{Style: Style(99), Fanout: 1, Hops: 1, Endpoint: ep, Peers: peers}},
		{"zero fanout", Config{Style: StylePush, Fanout: 0, Hops: 1, Endpoint: ep, Peers: peers}},
		{"negative hops", Config{Style: StylePush, Fanout: 1, Hops: -1, Endpoint: ep, Peers: peers}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
	// Flood style permits fanout 0.
	if _, err := New(Config{Style: StyleFlood, Hops: 1, Endpoint: ep, Peers: peers}); err != nil {
		t.Fatalf("flood config rejected: %v", err)
	}
}

func TestStyleStringRoundTrip(t *testing.T) {
	for _, s := range []Style{StylePush, StylePull, StylePushPull, StyleLazyPush, StyleFlood, StyleCounter} {
		got, err := ParseStyle(s.String())
		if err != nil {
			t.Fatalf("parse %v: %v", s, err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %v", s, got)
		}
	}
	if _, err := ParseStyle("nope"); err == nil {
		t.Fatal("bad style parsed")
	}
}

func TestPushCoverageNearFixedPoint(t *testing.T) {
	// Push with fanout f converges to the epidemic fixed point
	// x = 1 - e^(-f·x): about 0.94 at f=3, not 1.0. Assert the band.
	c := newCluster(t, 64, 1, nil)
	r, err := c.engines[0].Publish(context.Background(), []byte("news"))
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	if cov := c.coverage(r.ID); cov < 0.85 {
		t.Fatalf("push coverage = %v, want >= 0.85", cov)
	}
}

func TestPushHighFanoutFullCoverage(t *testing.T) {
	// With f around log N the miss probability per node is ~e^-f; at f=10
	// and N=64 a full sweep is overwhelmingly likely (and deterministic for
	// this seed).
	c := newCluster(t, 64, 1, func(_ int, cfg *Config) { cfg.Fanout = 10 })
	r, err := c.engines[0].Publish(context.Background(), []byte("news"))
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	if cov := c.coverage(r.ID); cov != 1.0 {
		t.Fatalf("high-fanout push coverage = %v, want 1.0", cov)
	}
}

func TestDeliverExactlyOnce(t *testing.T) {
	c := newCluster(t, 32, 2, nil)
	r, err := c.engines[0].Publish(context.Background(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	for i, m := range c.got {
		if m[r.ID] > 1 {
			t.Fatalf("node %d delivered rumor %d times", i, m[r.ID])
		}
	}
	// Duplicates must have been suppressed somewhere (fanout 3 over 32 nodes
	// necessarily re-hits nodes).
	var dups int64
	for _, e := range c.engines {
		dups += e.Stats().Duplicates
	}
	if dups == 0 {
		t.Fatal("expected duplicate suppressions, got none")
	}
}

func TestHopBudgetLimitsSpread(t *testing.T) {
	// Hops=1: origin forwards to fanout peers; they deliver but do not
	// forward further (hops reaches 0 at receivers).
	c := newCluster(t, 64, 3, func(_ int, cfg *Config) {
		cfg.Hops = 1
		cfg.Fanout = 3
	})
	r, err := c.engines[0].Publish(context.Background(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	reached := 0
	for _, m := range c.got {
		if m[r.ID] > 0 {
			reached++
		}
	}
	// Origin + at most fanout receivers.
	if reached > 4 {
		t.Fatalf("hops=1 reached %d nodes, want <= 4", reached)
	}
	if reached < 2 {
		t.Fatalf("hops=1 reached %d nodes, want >= 2", reached)
	}
}

func TestHopsZeroDeliversLocallyOnly(t *testing.T) {
	c := newCluster(t, 8, 4, func(_ int, cfg *Config) { cfg.Hops = 0 })
	r, err := c.engines[0].Publish(context.Background(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	for i, m := range c.got {
		want := 0
		if i == 0 {
			want = 1
		}
		if m[r.ID] != want {
			t.Fatalf("node %d deliveries = %d, want %d", i, m[r.ID], want)
		}
	}
}

func TestFloodCoverage(t *testing.T) {
	c := newCluster(t, 32, 5, func(_ int, cfg *Config) {
		cfg.Style = StyleFlood
		cfg.Hops = 2
	})
	r, err := c.engines[0].Publish(context.Background(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	if cov := c.coverage(r.ID); cov != 1.0 {
		t.Fatalf("flood coverage = %v", cov)
	}
	// Flood cost is ~N per node that forwards; verify it is much higher
	// than push's f per node.
	var fwd int64
	for _, e := range c.engines {
		fwd += e.Stats().Forwarded
	}
	if fwd < int64(31+31*3) {
		t.Fatalf("flood forwarded = %d, suspiciously low", fwd)
	}
}

func TestLazyPushCoverageAndPayloadSavings(t *testing.T) {
	seed := int64(6)
	lazy := newCluster(t, 64, seed, func(_ int, cfg *Config) { cfg.Style = StyleLazyPush })
	rl, err := lazy.engines[0].Publish(context.Background(), []byte("payload-payload-payload"))
	if err != nil {
		t.Fatal(err)
	}
	lazy.net.Run()
	if cov := lazy.coverage(rl.ID); cov < 0.85 {
		t.Fatalf("lazy push coverage = %v, want >= 0.85", cov)
	}
	var lazyPayloads, lazyIHaves int64
	for _, e := range lazy.engines {
		st := e.Stats()
		lazyPayloads += st.Forwarded
		lazyIHaves += st.IHaveSent
	}
	eager := newCluster(t, 64, seed, nil)
	re, err := eager.engines[0].Publish(context.Background(), []byte("payload-payload-payload"))
	if err != nil {
		t.Fatal(err)
	}
	eager.net.Run()
	var eagerPayloads int64
	for _, e := range eager.engines {
		eagerPayloads += e.Stats().Forwarded
	}
	if lazyPayloads >= eagerPayloads {
		t.Fatalf("lazy payload sends (%d) not below eager (%d)", lazyPayloads, eagerPayloads)
	}
	if lazyIHaves == 0 {
		t.Fatal("lazy push sent no announcements")
	}
	_ = re
}

func TestPullSpreadsViaTicks(t *testing.T) {
	c := newCluster(t, 32, 7, func(_ int, cfg *Config) {
		cfg.Style = StylePull
		cfg.Fanout = 2
	})
	r, err := c.engines[0].Publish(context.Background(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	if cov := c.coverage(r.ID); cov != 1.0/32 {
		t.Fatalf("pull pre-tick coverage = %v, want origin only", cov)
	}
	c.tickAll(context.Background(), 20)
	if cov := c.coverage(r.ID); cov < 0.95 {
		t.Fatalf("pull coverage after 20 rounds = %v", cov)
	}
}

func TestPushPullRepairsLoss(t *testing.T) {
	c := newCluster(t, 64, 8, func(_ int, cfg *Config) {
		cfg.Style = StylePushPull
		cfg.Fanout = 2
		cfg.Hops = 6
	})
	c.net.SetLossRate(0.4)
	r, err := c.engines[0].Publish(context.Background(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	lossyCov := c.coverage(r.ID)
	c.net.SetLossRate(0)
	c.tickAll(context.Background(), 25)
	finalCov := c.coverage(r.ID)
	if finalCov < 0.99 {
		t.Fatalf("push-pull final coverage = %v (post-push %v)", finalCov, lossyCov)
	}
	if finalCov < lossyCov {
		t.Fatalf("coverage regressed: %v -> %v", lossyCov, finalCov)
	}
}

func TestInjectBehavesLikeReceive(t *testing.T) {
	c := newCluster(t, 16, 9, nil)
	rumor := Rumor{ID: "manual-1", Origin: "external", Hops: 8, Payload: []byte("z")}
	c.engines[0].Inject(context.Background(), rumor)
	c.net.Run()
	if cov := c.coverage("manual-1"); cov != 1.0 {
		t.Fatalf("injected rumor coverage = %v", cov)
	}
	// Re-injecting is a duplicate.
	before := c.engines[0].Stats().Duplicates
	c.engines[0].Inject(context.Background(), rumor)
	if got := c.engines[0].Stats().Duplicates; got != before+1 {
		t.Fatalf("duplicates = %d, want %d", got, before+1)
	}
}

func TestSeenAndStoreLen(t *testing.T) {
	c := newCluster(t, 4, 10, nil)
	r, err := c.engines[0].Publish(context.Background(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.engines[0].Seen(r.ID) {
		t.Fatal("publisher has not seen its own rumor")
	}
	if c.engines[0].StoreLen() != 1 {
		t.Fatalf("store len = %d", c.engines[0].StoreLen())
	}
	if c.engines[1].Seen(r.ID) {
		t.Fatal("unseen rumor reported seen")
	}
}

func TestNewRumorIDDeterministic(t *testing.T) {
	a := NewRumorID(rand.New(rand.NewSource(5)))
	b := NewRumorID(rand.New(rand.NewSource(5)))
	if a != b {
		t.Fatal("same seed produced different IDs")
	}
	c := NewRumorID(rand.New(rand.NewSource(6)))
	if a == c {
		t.Fatal("different seeds produced equal IDs")
	}
	if len(a) != 32 {
		t.Fatalf("id length = %d", len(a))
	}
}

// TestPushCoverageProperty: with fanout >= 3 and ample hops, push reaches
// everyone on a lossless network regardless of seed and (small) size.
func TestPushCoverageProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := 8 + int(sizeRaw)%57 // 8..64
		c := newCluster(t, n, seed, func(_ int, cfg *Config) {
			cfg.Fanout = 3
			cfg.Hops = 16
		})
		r, err := c.engines[0].Publish(context.Background(), []byte("p"))
		if err != nil {
			return false
		}
		c.net.Run()
		// The f=3 fixed point is ~0.94; allow the small-N spread.
		return c.coverage(r.ID) >= 0.75
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleRumorsIndependent(t *testing.T) {
	c := newCluster(t, 32, 11, nil)
	ids := make([]string, 5)
	for i := range ids {
		r, err := c.engines[i].Publish(context.Background(), []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = r.ID
	}
	c.net.Run()
	for _, id := range ids {
		if cov := c.coverage(id); cov < 0.85 {
			t.Fatalf("rumor %s coverage = %v", id, cov)
		}
	}
}

func TestTickNoopForPushStyle(t *testing.T) {
	c := newCluster(t, 8, 12, nil)
	c.engines[0].Tick(context.Background())
	if st := c.engines[0].Stats(); st.PullReqs != 0 {
		t.Fatalf("push-style tick sent pull requests: %+v", st)
	}
}

func TestCrashedSubsetStillCovered(t *testing.T) {
	// With 20% crashed, surviving nodes should still all receive the rumor
	// (the resilience claim at small scale; E3 measures it at 512).
	c := newCluster(t, 50, 13, func(_ int, cfg *Config) {
		cfg.Fanout = 6
		cfg.Hops = 14
	})
	for i := 40; i < 50; i++ {
		c.net.Crash(fmt.Sprintf("n%03d", i))
	}
	r, err := c.engines[0].Publish(context.Background(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	alive := 0
	reached := 0
	for i := 0; i < 40; i++ {
		alive++
		if c.got[i][r.ID] > 0 {
			reached++
		}
	}
	if frac := float64(reached) / float64(alive); frac < 0.95 {
		t.Fatalf("alive coverage = %v", frac)
	}
}

func TestEngineDefaultsApplied(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	eng, err := New(Config{
		Style:    StylePush,
		Fanout:   1,
		Hops:     1,
		Endpoint: net.Node("a"),
		Peers:    NewStaticPeers([]string{"a"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.cfg.SeenCacheSize != DefaultSeenCacheSize {
		t.Fatalf("seen cache default = %d", eng.cfg.SeenCacheSize)
	}
	if eng.cfg.StoreSize != DefaultStoreSize {
		t.Fatalf("store default = %d", eng.cfg.StoreSize)
	}
	if eng.cfg.PullDigestSize != DefaultPullDigestSize || eng.cfg.PullBatchSize != DefaultPullBatchSize {
		t.Fatal("pull sizing defaults not applied")
	}
}

func TestEngineUnderWallClockTransportSmoke(t *testing.T) {
	// The engine must not depend on simnet specifics; drive it with a tiny
	// in-process loopback endpoint on the wall clock.
	lb := newLoopback()
	a := lb.endpoint("a")
	b := lb.endpoint("b")
	peers := NewStaticPeers([]string{"a", "b"})
	var gotB atomic.Int32
	gotBCh := make(chan struct{}, 4)
	mkEngine := func(ep transport.Endpoint, deliver func(Rumor)) *Engine {
		eng, err := New(Config{
			Style: StylePush, Fanout: 1, Hops: 2,
			Endpoint: ep, Peers: peers,
			RNG:     rand.New(rand.NewSource(1)),
			Deliver: deliver,
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := transport.NewMux()
		eng.Register(mux)
		mux.Bind(ep)
		return eng
	}
	ea := mkEngine(a, nil)
	mkEngine(b, func(Rumor) { gotB.Add(1); gotBCh <- struct{}{} })
	if _, err := ea.Publish(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Explicit synchronization, no polling: the delivery callback signals.
	select {
	case <-gotBCh:
	case <-time.After(5 * time.Second):
		t.Fatal("b never delivered")
	}
	if got := gotB.Load(); got != 1 {
		t.Fatalf("b deliveries = %d", got)
	}
}

// loopback is a minimal synchronous in-process transport for wall-clock
// smoke tests.
type loopback struct {
	eps map[string]*loopbackEP
}

func newLoopback() *loopback { return &loopback{eps: make(map[string]*loopbackEP)} }

func (l *loopback) endpoint(addr string) *loopbackEP {
	ep := &loopbackEP{net: l, addr: addr}
	l.eps[addr] = ep
	return ep
}

type loopbackEP struct {
	net     *loopback
	addr    string
	handler transport.Handler
}

func (e *loopbackEP) Addr() string                   { return e.addr }
func (e *loopbackEP) SetHandler(h transport.Handler) { e.handler = h }
func (e *loopbackEP) Send(ctx context.Context, msg transport.Message) error {
	dest, ok := e.net.eps[msg.To]
	if !ok || dest.handler == nil {
		return transport.ErrUnreachable
	}
	msg.From = e.addr
	go func() { _ = dest.handler(ctx, msg) }()
	return nil
}

func TestCounterMongeringFullCoverage(t *testing.T) {
	// Feedback-counter mongering needs no (f, r) sizing: it adapts until
	// the rumor is everywhere, and terminates.
	// The quiescence residue shrinks exponentially in K (Eugster et al.);
	// K=4 at this size reaches everyone.
	c := newCluster(t, 64, 14, func(_ int, cfg *Config) {
		cfg.Style = StyleCounter
		cfg.Fanout = 2
		cfg.CounterK = 4
		cfg.Hops = 1
	})
	r, err := c.engines[0].Publish(context.Background(), []byte("adaptive"))
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run() // termination: the run must drain (no infinite mongering)
	if cov := c.coverage(r.ID); cov < 0.99 {
		t.Fatalf("counter mongering coverage = %v", cov)
	}
}

func TestCounterMongeringTerminatesAndBoundsTraffic(t *testing.T) {
	c := newCluster(t, 48, 15, func(_ int, cfg *Config) {
		cfg.Style = StyleCounter
		cfg.Fanout = 2
		cfg.CounterK = 2
	})
	if _, err := c.engines[0].Publish(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	st := c.totalForwarded()
	// Total bursts are bounded by n * (K+1) * f (K=2 here).
	bound := int64(48 * 3 * 2)
	if st > bound {
		t.Fatalf("forwarded %d exceeds mongering bound %d", st, bound)
	}
	if st == 0 {
		t.Fatal("no forwarding happened")
	}
}

// totalForwarded sums Forwarded across the cluster.
func (c *cluster) totalForwarded() int64 {
	var total int64
	for _, e := range c.engines {
		total += e.Stats().Forwarded
	}
	return total
}

func TestCounterKDefaultApplied(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	eng, err := New(Config{
		Style: StyleCounter, Fanout: 1, Hops: 1,
		Endpoint: net.Node("a"),
		Peers:    NewStaticPeers([]string{"a", "b"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.cfg.CounterK != 2 {
		t.Fatalf("CounterK default = %d", eng.cfg.CounterK)
	}
}
