package gossip

import "math/rand"

// testRand returns a seeded random source for deterministic tests.
func testRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
