package gossip_test

// Integration tests composing the gossip engine with the membership service
// as its peer provider — the fully decentralized deployment mode where no
// Coordinator hands out targets (DESIGN.md: membership substrate).

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/gossip"
	"wsgossip/internal/membership"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

type decentralizedNode struct {
	addr   string
	member *membership.Service
	engine *gossip.Engine
	got    map[string]int
}

func buildDecentralized(t *testing.T, n int, seed int64) (*simnet.Network, []*decentralizedNode) {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(seed))
	nodes := make([]*decentralizedNode, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("d%03d", i)
		node := &decentralizedNode{addr: addr, got: make(map[string]int)}
		ep := net.Node(addr)
		member, err := membership.New(membership.Config{
			Endpoint:     ep,
			Clock:        net,
			RNG:          rand.New(rand.NewSource(seed + int64(i))),
			Fanout:       3,
			SuspectAfter: 300 * time.Millisecond,
			RemoveAfter:  900 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		node.member = member
		engine, err := gossip.New(gossip.Config{
			Style:    gossip.StylePush,
			Fanout:   5,
			Hops:     10,
			Endpoint: ep,
			Peers:    member, // membership drives peer selection
			RNG:      rand.New(rand.NewSource(seed + 1000 + int64(i))),
			Deliver: func(r gossip.Rumor) {
				node.got[r.ID]++
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		node.engine = engine
		mux := transport.NewMux()
		member.Register(mux)
		engine.Register(mux)
		mux.Bind(ep)
		nodes[i] = node
	}
	return net, nodes
}

// TestDecentralizedDissemination joins nodes through membership gossip, then
// disseminates a rumor using the live view as the peer provider.
func TestDecentralizedDissemination(t *testing.T) {
	const n = 40
	net, nodes := buildDecentralized(t, n, 17)
	ctx := context.Background()
	for i := 1; i < n; i++ {
		nodes[i].member.Join(ctx, []string{nodes[0].addr})
	}
	net.Run()
	for round := 0; round < 12; round++ {
		for _, node := range nodes {
			node.member.Tick(ctx)
		}
		net.RunFor(50 * time.Millisecond)
	}
	for i, node := range nodes {
		if node.member.Size() < n-1 {
			t.Fatalf("node %d view size = %d before dissemination", i, node.member.Size())
		}
	}
	r, err := nodes[0].engine.Publish(ctx, []byte("decentralized"))
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	reached := 0
	for _, node := range nodes {
		if node.got[r.ID] > 0 {
			reached++
		}
	}
	if frac := float64(reached) / n; frac < 0.95 {
		t.Fatalf("coverage through membership provider = %v", frac)
	}
}

// TestDisseminationSkipsDetectedFailures crashes nodes, lets the failure
// detector evict them, and verifies dissemination wastes no sends on them.
func TestDisseminationSkipsDetectedFailures(t *testing.T) {
	const n = 24
	net, nodes := buildDecentralized(t, n, 19)
	ctx := context.Background()
	for i := 1; i < n; i++ {
		nodes[i].member.Join(ctx, []string{nodes[0].addr})
	}
	net.Run()
	for round := 0; round < 10; round++ {
		for _, node := range nodes {
			node.member.Tick(ctx)
		}
		net.RunFor(50 * time.Millisecond)
	}
	// Crash a quarter of the nodes and let detection run.
	for i := n - n/4; i < n; i++ {
		net.Crash(nodes[i].addr)
	}
	for round := 0; round < 25; round++ {
		for i, node := range nodes {
			if net.Crashed(nodes[i].addr) {
				continue
			}
			node.member.Tick(ctx)
		}
		net.RunFor(50 * time.Millisecond)
	}
	for i := 0; i < n-n/4; i++ {
		for _, m := range nodes[i].member.Members() {
			if net.Crashed(m.Addr) {
				t.Fatalf("survivor %d still lists crashed %s", i, m.Addr)
			}
		}
	}
	net.ResetStats()
	r, err := nodes[0].engine.Publish(ctx, []byte("post-failure"))
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	reached := 0
	for i := 0; i < n-n/4; i++ {
		if nodes[i].got[r.ID] > 0 {
			reached++
		}
	}
	if frac := float64(reached) / float64(n-n/4); frac < 0.9 {
		t.Fatalf("survivor coverage = %v", frac)
	}
	// No dissemination traffic should have been addressed to evicted nodes.
	if st := net.Stats(); st.Dropped != 0 {
		t.Fatalf("dissemination sent %d messages into the void", st.Dropped)
	}
}

// TestPartitionHealRepair: a partition splits the cluster mid-dissemination;
// pull anti-entropy after healing repairs the minority side.
func TestPartitionHealRepair(t *testing.T) {
	const n = 30
	net := simnet.New(simnet.DefaultConfig(23))
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("p%03d", i)
	}
	peers := gossip.NewStaticPeers(addrs)
	got := make([]map[string]int, n)
	engines := make([]*gossip.Engine, n)
	for i := range addrs {
		i := i
		got[i] = make(map[string]int)
		eng, err := gossip.New(gossip.Config{
			Style:    gossip.StylePushPull,
			Fanout:   3,
			Hops:     8,
			Endpoint: net.Node(addrs[i]),
			Peers:    peers,
			RNG:      rand.New(rand.NewSource(23 + int64(i))),
			Deliver:  func(r gossip.Rumor) { got[i][r.ID]++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := transport.NewMux()
		eng.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		engines[i] = eng
	}
	// Partition off the last third before publishing.
	minority := addrs[20:]
	net.Partition(minority)
	ctx := context.Background()
	r, err := engines[0].Publish(ctx, []byte("split"))
	if err != nil {
		t.Fatal(err)
	}
	net.Run()
	for i := 20; i < n; i++ {
		if got[i][r.ID] != 0 {
			t.Fatalf("partitioned node %d received the rumor", i)
		}
	}
	// Heal and run anti-entropy.
	net.Heal()
	for round := 0; round < 15; round++ {
		for _, e := range engines {
			e.Tick(ctx)
		}
		net.RunFor(20 * time.Millisecond)
	}
	for i := 0; i < n; i++ {
		if got[i][r.ID] == 0 {
			t.Fatalf("node %d never repaired after heal", i)
		}
	}
}
