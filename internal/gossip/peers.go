package gossip

import "math/rand"

// PeerProvider supplies gossip targets. In WS-Gossip the Coordinator's
// Registration service plays this role ("capable of providing adequate
// parameter configurations and peers for each gossip round", Section 3);
// in fully decentralized deployments the membership service does.
type PeerProvider interface {
	// SelectPeers returns up to n distinct peer addresses, excluding the
	// given address (normally the selecting node itself). n < 0 requests
	// all known peers. The rng makes selection reproducible.
	SelectPeers(rng *rand.Rand, n int, exclude string) []string
}

// StaticPeers is a fixed peer set, useful for tests and for disseminators
// that received an explicit target list from the Coordinator.
type StaticPeers struct {
	addrs []string
}

var _ PeerProvider = (*StaticPeers)(nil)

// NewStaticPeers copies addrs into a provider.
func NewStaticPeers(addrs []string) *StaticPeers {
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return &StaticPeers{addrs: cp}
}

// Addrs returns a copy of the peer set.
func (p *StaticPeers) Addrs() []string {
	cp := make([]string, len(p.addrs))
	copy(cp, p.addrs)
	return cp
}

// Len returns the peer-set size.
func (p *StaticPeers) Len() int { return len(p.addrs) }

// SelectPeers draws up to n distinct peers uniformly without replacement.
func (p *StaticPeers) SelectPeers(rng *rand.Rand, n int, exclude string) []string {
	return SamplePeers(rng, p.addrs, n, exclude)
}

// UniformPeers is a fixed peer set sampled without copying. StaticPeers
// materializes an eligible-list copy per selection — fine when peer sets are
// small, but at simulation scale (10^5..10^6 addresses, one selection per
// forward) that is megabytes copied per message and dominates the run.
// UniformPeers rejection-samples indices instead: O(fanout) per call, no
// allocation beyond the result. Its draw sequence differs from StaticPeers,
// so swapping providers changes seeded runs — it is for new harnesses, not a
// drop-in replacement where byte-identical output matters.
type UniformPeers struct {
	addrs []string
}

var _ PeerProvider = (*UniformPeers)(nil)

// NewUniformPeers copies addrs into a provider.
func NewUniformPeers(addrs []string) *UniformPeers {
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return &UniformPeers{addrs: cp}
}

// Len returns the peer-set size.
func (p *UniformPeers) Len() int { return len(p.addrs) }

// SelectPeers draws up to n distinct peers uniformly without replacement by
// index rejection. When n asks for a large share of the set (or all of it,
// n < 0) it falls back to the shuffle-based sampler, where rejection would
// thrash. No O(len) work happens on the fast path — not even an
// eligibility count, which is why this scales where StaticPeers does not.
func (p *UniformPeers) SelectPeers(rng *rand.Rand, n int, exclude string) []string {
	if n < 0 || n*4 >= len(p.addrs) {
		return SamplePeers(rng, p.addrs, n, exclude)
	}
	if n == 0 || len(p.addrs) == 0 {
		return nil
	}
	// n*4 < len(addrs), so n distinct non-excluded picks always exist and
	// each draw succeeds with probability > 1/2.
	out := make([]string, 0, n)
draw:
	for len(out) < n {
		a := p.addrs[rng.Intn(len(p.addrs))]
		if a == exclude {
			continue
		}
		for _, picked := range out {
			if picked == a {
				continue draw
			}
		}
		out = append(out, a)
	}
	return out
}

// SamplePeers draws up to n distinct addresses from addrs excluding exclude,
// uniformly without replacement, via a partial Fisher-Yates shuffle. n < 0
// returns all eligible addresses in shuffled order. addrs is not modified.
func SamplePeers(rng *rand.Rand, addrs []string, n int, exclude string) []string {
	eligible := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if a != exclude {
			eligible = append(eligible, a)
		}
	}
	if n < 0 || n > len(eligible) {
		n = len(eligible)
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(eligible)-i)
		eligible[i], eligible[j] = eligible[j], eligible[i]
	}
	return eligible[:n]
}
