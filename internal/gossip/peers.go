package gossip

import "math/rand"

// PeerProvider supplies gossip targets. In WS-Gossip the Coordinator's
// Registration service plays this role ("capable of providing adequate
// parameter configurations and peers for each gossip round", Section 3);
// in fully decentralized deployments the membership service does.
type PeerProvider interface {
	// SelectPeers returns up to n distinct peer addresses, excluding the
	// given address (normally the selecting node itself). n < 0 requests
	// all known peers. The rng makes selection reproducible.
	SelectPeers(rng *rand.Rand, n int, exclude string) []string
}

// StaticPeers is a fixed peer set, useful for tests and for disseminators
// that received an explicit target list from the Coordinator.
type StaticPeers struct {
	addrs []string
}

var _ PeerProvider = (*StaticPeers)(nil)

// NewStaticPeers copies addrs into a provider.
func NewStaticPeers(addrs []string) *StaticPeers {
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return &StaticPeers{addrs: cp}
}

// Addrs returns a copy of the peer set.
func (p *StaticPeers) Addrs() []string {
	cp := make([]string, len(p.addrs))
	copy(cp, p.addrs)
	return cp
}

// Len returns the peer-set size.
func (p *StaticPeers) Len() int { return len(p.addrs) }

// SelectPeers draws up to n distinct peers uniformly without replacement.
func (p *StaticPeers) SelectPeers(rng *rand.Rand, n int, exclude string) []string {
	return SamplePeers(rng, p.addrs, n, exclude)
}

// SamplePeers draws up to n distinct addresses from addrs excluding exclude,
// uniformly without replacement, via a partial Fisher-Yates shuffle. n < 0
// returns all eligible addresses in shuffled order. addrs is not modified.
func SamplePeers(rng *rand.Rand, addrs []string, n int, exclude string) []string {
	eligible := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if a != exclude {
			eligible = append(eligible, a)
		}
	}
	if n < 0 || n > len(eligible) {
		n = len(eligible)
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(eligible)-i)
		eligible[i], eligible[j] = eligible[j], eligible[i]
	}
	return eligible[:n]
}
