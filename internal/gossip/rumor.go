package gossip

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
)

// Style selects the dissemination strategy.
type Style int

// Supported gossip styles.
const (
	// StylePush forwards the full payload to f peers on first receipt
	// (the paper's WS-PushGossip).
	StylePush Style = iota + 1
	// StylePull spreads only through periodic anti-entropy exchanges:
	// each Tick a node asks f peers for rumors it has not seen.
	StylePull
	// StylePushPull combines eager push with periodic pull repair.
	StylePushPull
	// StyleLazyPush announces rumor IDs to f peers; peers fetch unseen
	// payloads, trading latency for payload traffic.
	StyleLazyPush
	// StyleFlood forwards to every known peer; the classic non-scalable
	// baseline.
	StyleFlood
	// StyleCounter is feedback-counter rumor mongering (Eugster et al.
	// 2004): a node keeps re-forwarding a rumor on every duplicate receipt
	// until it has heard it CounterK times, then goes quiescent. Termination
	// is adaptive instead of hop-bounded, so no (f, r) sizing is needed.
	StyleCounter
)

var styleNames = map[Style]string{
	StylePush:     "push",
	StylePull:     "pull",
	StylePushPull: "pushpull",
	StyleLazyPush: "lazypush",
	StyleFlood:    "flood",
	StyleCounter:  "counter",
}

// String returns the lowercase style name.
func (s Style) String() string {
	if n, ok := styleNames[s]; ok {
		return n
	}
	return fmt.Sprintf("style(%d)", int(s))
}

// ParseStyle parses a style name as printed by String.
func ParseStyle(name string) (Style, error) {
	for s, n := range styleNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("gossip: unknown style %q", name)
}

// Rumor is one unit of disseminated information.
type Rumor struct {
	// ID uniquely identifies the rumor; duplicates are suppressed by ID.
	ID string `json:"id"`
	// Origin is the address of the publishing node.
	Origin string `json:"origin"`
	// Hops is the remaining forwarding budget (the paper's rounds r,
	// decremented at each transfer; a rumor with Hops 0 is delivered but
	// not forwarded).
	Hops int `json:"hops"`
	// Payload is the application data.
	Payload []byte `json:"payload,omitempty"`
}

// NewRumorID draws a 128-bit rumor identifier from rng. Taking the ID from
// the injected source keeps whole simulations reproducible.
func NewRumorID(rng *rand.Rand) string {
	var b [16]byte
	for i := 0; i < len(b); i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return hex.EncodeToString(b[:])
}

// Wire actions used by the engine. These become WS-Addressing action URIs in
// the SOAP binding and stay opaque strings in the simulator.
const (
	ActionPush     = "urn:wsgossip:gossip:push"
	ActionIHave    = "urn:wsgossip:gossip:ihave"
	ActionIWant    = "urn:wsgossip:gossip:iwant"
	ActionPullReq  = "urn:wsgossip:gossip:pullreq"
	ActionPullResp = "urn:wsgossip:gossip:pullresp"
)

// wireMsg is the engine's wire format: either a batch of rumors (push,
// pull-response) or a batch of rumor references (ihave, iwant, pull-request
// digests).
type wireMsg struct {
	Rumors []Rumor    `json:"rumors,omitempty"`
	Refs   []RumorRef `json:"refs,omitempty"`
}

// RumorRef names a rumor without its payload, with the forwarding budget it
// would be transferred at.
type RumorRef struct {
	ID   string `json:"id"`
	Hops int    `json:"hops"`
}

func encodeWire(m wireMsg) ([]byte, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("gossip: encode wire message: %w", err)
	}
	return data, nil
}

func decodeWire(data []byte) (wireMsg, error) {
	var m wireMsg
	if err := json.Unmarshal(data, &m); err != nil {
		return wireMsg{}, fmt.Errorf("gossip: decode wire message: %w", err)
	}
	return m, nil
}
