package gossip

import "sync"

// SeenSet is a concurrency-safe bounded LRU set of message identifiers,
// exported for higher layers: the WS-Gossip SOAP handler uses one to
// deduplicate gossiped notifications by WS-Addressing MessageID.
type SeenSet struct {
	mu sync.Mutex
	c  *seenCache
}

// NewSeenSet returns a set bounded to capacity entries (<=0 uses the
// engine's default).
func NewSeenSet(capacity int) *SeenSet {
	if capacity <= 0 {
		capacity = DefaultSeenCacheSize
	}
	return &SeenSet{c: newSeenCache(capacity)}
}

// Add inserts id and reports whether it was not already present.
func (s *SeenSet) Add(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Add(id)
}

// Contains reports whether id is present.
func (s *SeenSet) Contains(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Contains(id)
}

// Len returns the number of tracked identifiers.
func (s *SeenSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Len()
}
