package gossip

import "sync"

// SeenSet is a concurrency-safe bounded LRU set of message identifiers,
// exported for higher layers: the WS-Gossip SOAP handler uses one to
// deduplicate gossiped notifications by WS-Addressing MessageID.
type SeenSet struct {
	mu sync.Mutex
	c  *seenCache
}

// NewSeenSet returns a set bounded to capacity entries (<=0 uses the
// engine's default).
func NewSeenSet(capacity int) *SeenSet {
	if capacity <= 0 {
		capacity = DefaultSeenCacheSize
	}
	return &SeenSet{c: newSeenCache(capacity)}
}

// Add inserts id and reports whether it was not already present.
func (s *SeenSet) Add(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Add(id)
}

// Contains reports whether id is present.
func (s *SeenSet) Contains(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Contains(id)
}

// Len returns the number of tracked identifiers.
func (s *SeenSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Len()
}

// IDIndex interns message identifiers to dense small integers. A simulated
// population shares one index so per-node delivery tracking can be a bitset
// (DenseSeen) instead of a map of strings: at N=10^6 nodes a string-keyed
// set per node is gigabytes, a bitset over interned IDs is N bits per rumor.
// Safe for concurrent use.
type IDIndex struct {
	mu  sync.RWMutex
	idx map[string]int
	ids []string
}

// NewIDIndex returns an empty index.
func NewIDIndex() *IDIndex {
	return &IDIndex{idx: make(map[string]int)}
}

// Index returns the dense integer for id, assigning the next one on first
// sight. Indices are assigned in first-seen order starting at 0.
func (x *IDIndex) Index(id string) int {
	x.mu.RLock()
	i, ok := x.idx[id]
	x.mu.RUnlock()
	if ok {
		return i
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if i, ok := x.idx[id]; ok {
		return i
	}
	i = len(x.ids)
	x.idx[id] = i
	x.ids = append(x.ids, id)
	return i
}

// Lookup returns the index for id without assigning one.
func (x *IDIndex) Lookup(id string) (int, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	i, ok := x.idx[id]
	return i, ok
}

// ID returns the identifier for a dense index.
func (x *IDIndex) ID(i int) string {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.ids[i]
}

// Len returns the number of interned identifiers.
func (x *IDIndex) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.ids)
}

// DenseSeen is a compact seen-set over IDIndex indices: one bit per
// identifier, growing on demand. The zero value is ready to use. Not safe
// for concurrent use — in the simulator each node's set is touched only from
// the deterministic event loop.
type DenseSeen struct {
	bits []uint64
	n    int
}

// Add marks index i seen and reports whether it was newly added.
func (s *DenseSeen) Add(i int) bool {
	w, b := i>>6, uint(i&63)
	if w >= len(s.bits) {
		grown := make([]uint64, w+1)
		copy(grown, s.bits)
		s.bits = grown
	}
	if s.bits[w]&(1<<b) != 0 {
		return false
	}
	s.bits[w] |= 1 << b
	s.n++
	return true
}

// Contains reports whether index i is marked.
func (s *DenseSeen) Contains(i int) bool {
	w, b := i>>6, uint(i&63)
	return w < len(s.bits) && s.bits[w]&(1<<b) != 0
}

// Count returns the number of marked indices.
func (s *DenseSeen) Count() int { return s.n }
