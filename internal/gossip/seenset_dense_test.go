package gossip

import (
	"fmt"
	"sync"
	"testing"
)

func TestIDIndexAssignsDenseFirstSeenOrder(t *testing.T) {
	x := NewIDIndex()
	if got := x.Index("a"); got != 0 {
		t.Fatalf("first id index = %d, want 0", got)
	}
	if got := x.Index("b"); got != 1 {
		t.Fatalf("second id index = %d, want 1", got)
	}
	if got := x.Index("a"); got != 0 {
		t.Fatalf("repeat id index = %d, want 0", got)
	}
	if i, ok := x.Lookup("b"); !ok || i != 1 {
		t.Fatalf("Lookup(b) = %d,%v", i, ok)
	}
	if _, ok := x.Lookup("c"); ok {
		t.Fatal("Lookup of unknown id succeeded")
	}
	if x.ID(1) != "b" || x.Len() != 2 {
		t.Fatalf("ID(1)=%q Len=%d", x.ID(1), x.Len())
	}
}

func TestIDIndexConcurrent(t *testing.T) {
	x := NewIDIndex()
	var wg sync.WaitGroup
	const goroutines, ids = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ids; i++ {
				x.Index(fmt.Sprintf("id-%d", i))
			}
		}()
	}
	wg.Wait()
	if x.Len() != ids {
		t.Fatalf("Len = %d, want %d (duplicate assignment under concurrency)", x.Len(), ids)
	}
	seen := map[int]bool{}
	for i := 0; i < ids; i++ {
		idx := x.Index(fmt.Sprintf("id-%d", i))
		if idx < 0 || idx >= ids || seen[idx] {
			t.Fatalf("index %d for id-%d not a dense permutation", idx, i)
		}
		seen[idx] = true
	}
}

func TestDenseSeen(t *testing.T) {
	var s DenseSeen
	if s.Contains(0) || s.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	if !s.Add(5) {
		t.Fatal("first Add reported duplicate")
	}
	if s.Add(5) {
		t.Fatal("second Add reported new")
	}
	if !s.Add(64) || !s.Add(1000) { // word-boundary and growth
		t.Fatal("Add across word boundary failed")
	}
	if !s.Contains(5) || !s.Contains(64) || !s.Contains(1000) || s.Contains(999) {
		t.Fatal("Contains wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
}

// TestSeenCacheMatchesMapList cross-checks the arena LRU against a simple
// model under a long mixed workload: hits, misses, and evictions.
func TestSeenCacheMatchesModel(t *testing.T) {
	const capacity = 32
	c := newSeenCache(capacity)
	type modelEntry struct{ id string }
	var order []string // front = most recent
	model := map[string]bool{}
	touch := func(id string) bool {
		if model[id] {
			for i, v := range order {
				if v == id {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append([]string{id}, order...)
			return false
		}
		model[id] = true
		order = append([]string{id}, order...)
		for len(order) > capacity {
			oldest := order[len(order)-1]
			order = order[:len(order)-1]
			delete(model, oldest)
		}
		return true
	}
	h := uint64(0x12345)
	for i := 0; i < 20000; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		id := fmt.Sprintf("r%d", h%100) // heavy reuse to exercise LRU moves
		want := touch(id)
		if got := c.Add(id); got != want {
			t.Fatalf("step %d Add(%s) = %v, model %v", i, id, got, want)
		}
		if c.Len() != len(model) {
			t.Fatalf("step %d Len = %d, model %d", i, c.Len(), len(model))
		}
	}
	for id := range model {
		if !c.Contains(id) {
			t.Fatalf("model retains %s, cache does not", id)
		}
	}
}

// TestRumorStoreDequeCompaction exercises the FIFO deque through enough
// evictions to trigger prefix compaction and checks order-sensitive reads.
func TestRumorStoreDequeCompaction(t *testing.T) {
	const capacity = 50
	s := newRumorStore(capacity)
	for i := 0; i < 5000; i++ {
		s.Put(Rumor{ID: fmt.Sprintf("r%d", i), Hops: i % 7})
	}
	if s.Len() != capacity {
		t.Fatalf("Len = %d, want %d", s.Len(), capacity)
	}
	refs := s.RecentRefs(5)
	for j, ref := range refs {
		want := fmt.Sprintf("r%d", 4999-j)
		if ref.ID != want {
			t.Fatalf("RecentRefs[%d] = %s, want %s (newest first)", j, ref.ID, want)
		}
	}
	if _, ok := s.Get("r0"); ok {
		t.Fatal("oldest rumor not evicted")
	}
	if _, ok := s.Get("r4999"); !ok {
		t.Fatal("newest rumor missing")
	}
	have := map[string]struct{}{"r4999": {}, "r4998": {}}
	missing := s.MissingFrom(have, 3)
	if len(missing) != 3 || missing[0].ID != "r4997" || missing[1].ID != "r4996" || missing[2].ID != "r4995" {
		t.Fatalf("MissingFrom = %v", missing)
	}
}
