package gossip

import (
	"context"
	"testing"

	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// TestMalformedWireMessagesRejected: every engine handler must reject junk
// bodies with an error and leave state untouched (a byzantine or buggy peer
// must not crash or corrupt a node).
func TestMalformedWireMessagesRejected(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	eng, err := New(Config{
		Style: StylePush, Fanout: 2, Hops: 4,
		Endpoint: net.Node("a"),
		Peers:    NewStaticPeers([]string{"a", "b"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	junk := transport.Message{From: "evil", To: "a", Body: []byte("{not json")}
	ctx := context.Background()
	for name, h := range map[string]transport.Handler{
		"push":     eng.handlePush,
		"ihave":    eng.handleIHave,
		"iwant":    eng.handleIWant,
		"pullreq":  eng.handlePullReq,
		"pullresp": eng.handlePullResp,
	} {
		if err := h(ctx, junk); err == nil {
			t.Errorf("%s accepted junk", name)
		}
	}
	st := eng.Stats()
	if st.Delivered != 0 || st.Forwarded != 0 {
		t.Fatalf("junk mutated stats: %+v", st)
	}
}

// TestEmptyWireMessagesHarmless: structurally valid but empty messages are
// no-ops.
func TestEmptyWireMessagesHarmless(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(2))
	eng, err := New(Config{
		Style: StylePush, Fanout: 2, Hops: 4,
		Endpoint: net.Node("a"),
		Peers:    NewStaticPeers([]string{"a", "b"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	empty := transport.Message{From: "peer", To: "a", Body: []byte("{}")}
	ctx := context.Background()
	for name, h := range map[string]transport.Handler{
		"push":     eng.handlePush,
		"ihave":    eng.handleIHave,
		"iwant":    eng.handleIWant,
		"pullreq":  eng.handlePullReq,
		"pullresp": eng.handlePullResp,
	} {
		if err := h(ctx, empty); err != nil {
			t.Errorf("%s rejected empty message: %v", name, err)
		}
	}
}

// TestIWantForUnknownRumorIgnored: requests for rumors not in the store get
// no response rather than an error storm.
func TestIWantForUnknownRumorIgnored(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(3))
	sent := 0
	net.Node("peer").SetHandler(func(context.Context, transport.Message) error {
		sent++
		return nil
	})
	eng, err := New(Config{
		Style: StyleLazyPush, Fanout: 1, Hops: 2,
		Endpoint: net.Node("a"),
		Peers:    NewStaticPeers([]string{"a", "peer"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := encodeWire(wireMsg{Refs: []RumorRef{{ID: "ghost", Hops: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.handleIWant(context.Background(), transport.Message{From: "peer", To: "a", Body: body}); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if sent != 0 {
		t.Fatalf("responded %d times to unknown-rumor request", sent)
	}
}

// TestIHaveDuplicateRequestSuppressed: two announcements of the same rumor
// from different peers yield exactly one IWANT.
func TestIHaveDuplicateRequestSuppressed(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(4))
	requests := 0
	for _, p := range []string{"p1", "p2"} {
		net.Node(p).SetHandler(func(_ context.Context, msg transport.Message) error {
			if msg.Action == ActionIWant {
				requests++
			}
			return nil
		})
	}
	eng, err := New(Config{
		Style: StyleLazyPush, Fanout: 1, Hops: 2,
		Endpoint: net.Node("a"),
		Peers:    NewStaticPeers([]string{"a", "p1", "p2"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := encodeWire(wireMsg{Refs: []RumorRef{{ID: "r1", Hops: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := eng.handleIHave(ctx, transport.Message{From: "p1", To: "a", Body: body}); err != nil {
		t.Fatal(err)
	}
	if err := eng.handleIHave(ctx, transport.Message{From: "p2", To: "a", Body: body}); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if requests != 1 {
		t.Fatalf("IWANT requests = %d, want 1", requests)
	}
}

// TestPullDigestCapRespected: pull requests advertise at most
// PullDigestSize recent rumor IDs.
func TestPullDigestCapRespected(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(5))
	var lastDigestLen int
	net.Node("peer").SetHandler(func(_ context.Context, msg transport.Message) error {
		if msg.Action == ActionPullReq {
			wm, err := decodeWire(msg.Body)
			if err != nil {
				return err
			}
			lastDigestLen = len(wm.Refs)
		}
		return nil
	})
	eng, err := New(Config{
		Style: StylePull, Fanout: 1, Hops: 2,
		Endpoint:       net.Node("a"),
		Peers:          NewStaticPeers([]string{"a", "peer"}),
		PullDigestSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := eng.Publish(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	net.Run()
	eng.Tick(ctx)
	net.Run()
	if lastDigestLen != 8 {
		t.Fatalf("digest length = %d, want 8", lastDigestLen)
	}
}
