// Package membership implements a WS-Membership-style service (Vogels &
// van Renesse, reference [10] of the paper): a gossip-based membership view
// with heartbeat failure detection. It is the runtime's live peer-view
// layer — core.PeerView is satisfied by Service, so disseminators,
// aggregation services, and initiators can sample the current overlay for
// every fan-out instead of a coordinator-frozen target list — and
// decentralized deployments use it directly as the gossip engine's peer
// provider.
//
// The protocol is the classic epidemic membership scheme: each node keeps a
// table of (address, heartbeat, last-refresh); every Tick it increments its
// own heartbeat and pushes its table to a few random peers; receivers merge
// entries with higher heartbeats. Entries not refreshed within SuspectAfter
// become suspects, and within RemoveAfter are removed. Explicit departures
// (Leave) spread as tombstones. With Config.MaxView set the service behaves
// as a partial-view peer-sampling service, keeping per-node state O(MaxView)
// at large scale.
//
// Key types:
//
//   - Service — one node's protocol instance: Join/Tick/Leave drive it,
//     Alive/Members/SelectPeers read it. Tick satisfies the loop shape
//     core.RunnerConfig.Membership schedules, so view exchanges self-clock
//     on the same clock.Clock as every other gossip round.
//   - SOAPEndpoint — carries the view exchanges over the node's SOAP
//     binding (MemBus, HTTP, or a test bus), so the membership overlay and
//     the WS-Gossip services share one endpoint address space.
//   - Member / State — one view entry and its alive/suspect classification.
package membership
