package membership

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"wsgossip/internal/gossip"
	"wsgossip/internal/metrics"
	"wsgossip/internal/transport"
)

// Wire actions.
const (
	ActionExchange = "urn:wsgossip:membership:exchange"
	ActionLeave    = "urn:wsgossip:membership:leave"
)

// State classifies a member in the local view.
type State int

// Member states.
const (
	StateAlive State = iota + 1
	StateSuspect
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Member is one entry in the local membership view.
type Member struct {
	Addr      string
	Heartbeat uint64
	State     State
	// Refreshed is the local (virtual) time the heartbeat last advanced.
	Refreshed time.Duration
}

// entry is the wire form of a member row.
type entry struct {
	Addr      string `json:"addr"`
	Heartbeat uint64 `json:"hb"`
	Left      bool   `json:"left,omitempty"`
}

type exchangeMsg struct {
	Entries []entry `json:"entries"`
}

// Config configures a membership service.
type Config struct {
	// Endpoint attaches the service to the network. Required.
	Endpoint transport.Endpoint
	// Clock supplies time (virtual under simulation). Required.
	Clock transport.Clock
	// RNG drives peer selection. Required for reproducibility; nil falls
	// back to a fixed seed.
	RNG *rand.Rand
	// Fanout is the number of peers the view is pushed to per Tick.
	Fanout int
	// SuspectAfter is how long a heartbeat may stall before the member is
	// suspected.
	SuspectAfter time.Duration
	// RemoveAfter is how long before a stalled member is evicted. Must
	// exceed SuspectAfter.
	RemoveAfter time.Duration
	// MaxView caps the local view size (0 = unbounded full view). With a
	// cap the service behaves as a peer-sampling service: learning a new
	// member beyond the cap evicts a uniformly random existing entry, so
	// the union of partial views stays a well-mixed overlay while per-node
	// state is O(MaxView) — the standard scalability device for very large
	// memberships.
	MaxView int
	// Metrics is the registry the service resolves its series from
	// (membership_view_size, membership_exchanges_total,
	// membership_suspects_total, membership_suspect_unknown_total,
	// membership_evictions_total, membership_leaves_total). Nil uses a
	// private registry.
	Metrics *metrics.Registry
}

func (c *Config) validate() error {
	if c.Endpoint == nil {
		return errors.New("membership: config requires an endpoint")
	}
	if c.Clock == nil {
		return errors.New("membership: config requires a clock")
	}
	if c.Fanout < 1 {
		return fmt.Errorf("membership: fanout must be >= 1, got %d", c.Fanout)
	}
	if c.SuspectAfter <= 0 || c.RemoveAfter <= c.SuspectAfter {
		return fmt.Errorf("membership: need 0 < SuspectAfter (%v) < RemoveAfter (%v)",
			c.SuspectAfter, c.RemoveAfter)
	}
	return nil
}

// Service is one node's membership protocol instance.
type Service struct {
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	self    entry
	members map[string]*Member
	left    map[string]struct{} // explicit-leave tombstones
	// dead maps an evicted member to the heartbeat it stalled at; stale
	// gossip echoing that heartbeat cannot resurrect it, but a genuinely
	// recovered node (whose heartbeat advances) is readmitted.
	dead map[string]uint64
	// alive caches the sorted alive-address snapshot between view
	// mutations: fan-out sampling (SelectPeers is on the gossip hot path
	// when the service is a live PeerView) reads the cache instead of
	// rebuilding and re-sorting the list per call. aliveValid is cleared by
	// every mutation that can change the alive set.
	alive      []string
	aliveValid bool

	stats svcCounters
}

// svcCounters is the membership layer's registry-resolved series.
type svcCounters struct {
	viewSize       *metrics.Gauge   // members known, excluding self
	exchanges      *metrics.Counter // view-exchange messages handled
	suspects       *metrics.Counter // alive→suspect transitions
	suspectUnknown *metrics.Counter // Suspect calls naming an unknown member
	evictions      *metrics.Counter // members evicted after RemoveAfter stalls
	leaves         *metrics.Counter // explicit leave tombstones applied
}

func newSvcCounters(reg *metrics.Registry) svcCounters {
	return svcCounters{
		viewSize:       reg.Gauge("membership_view_size"),
		exchanges:      reg.Counter("membership_exchanges_total"),
		suspects:       reg.Counter("membership_suspects_total"),
		suspectUnknown: reg.Counter("membership_suspect_unknown_total"),
		evictions:      reg.Counter("membership_evictions_total"),
		leaves:         reg.Counter("membership_leaves_total"),
	}
}

// New validates cfg and returns a service containing only the local node.
func New(cfg Config) (*Service, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Service{
		cfg:     cfg,
		rng:     rng,
		self:    entry{Addr: cfg.Endpoint.Addr(), Heartbeat: 1},
		members: make(map[string]*Member),
		left:    make(map[string]struct{}),
		dead:    make(map[string]uint64),
		stats:   newSvcCounters(reg),
	}
	return s, nil
}

// Register installs the service's wire actions on the mux.
func (s *Service) Register(mux *transport.Mux) {
	mux.Handle(ActionExchange, s.handleExchange)
	mux.Handle(ActionLeave, s.handleLeave)
}

// Addr returns the local address.
func (s *Service) Addr() string { return s.cfg.Endpoint.Addr() }

// Join seeds the view with known addresses and immediately pushes the local
// view to them so the join propagates.
func (s *Service) Join(ctx context.Context, seeds []string) {
	s.mu.Lock()
	now := s.cfg.Clock.Now()
	for _, a := range seeds {
		if a == "" || a == s.self.Addr {
			continue
		}
		if _, ok := s.members[a]; !ok {
			s.members[a] = &Member{Addr: a, Heartbeat: 0, State: StateAlive, Refreshed: now}
			s.invalidateAliveLocked()
		}
	}
	body, err := s.encodeViewLocked()
	targets := append([]string(nil), seeds...)
	s.mu.Unlock()
	if err != nil {
		return
	}
	for _, a := range targets {
		if a == s.Addr() {
			continue
		}
		_ = s.cfg.Endpoint.Send(ctx, transport.Message{To: a, Action: ActionExchange, Body: body})
	}
}

// Tick advances the local heartbeat, ages the view, and pushes it to Fanout
// random live peers.
func (s *Service) Tick(ctx context.Context) {
	s.mu.Lock()
	s.self.Heartbeat++
	now := s.cfg.Clock.Now()
	for addr, m := range s.members {
		age := now - m.Refreshed
		switch {
		case age >= s.cfg.RemoveAfter:
			s.dead[addr] = m.Heartbeat
			delete(s.members, addr)
			s.stats.evictions.Inc()
			s.invalidateAliveLocked()
		case age >= s.cfg.SuspectAfter:
			if m.State != StateSuspect {
				m.State = StateSuspect
				s.stats.suspects.Inc()
				s.invalidateAliveLocked()
			}
		}
	}
	peers := s.alivePeersLocked()
	targets := gossip.SamplePeers(s.rng, peers, s.cfg.Fanout, s.self.Addr)
	body, err := s.encodeViewLocked()
	s.mu.Unlock()
	if err != nil {
		return
	}
	for _, p := range targets {
		_ = s.cfg.Endpoint.Send(ctx, transport.Message{To: p, Action: ActionExchange, Body: body})
	}
}

// Leave announces departure to Fanout peers; receivers tombstone the sender.
func (s *Service) Leave(ctx context.Context) {
	s.mu.Lock()
	peers := s.alivePeersLocked()
	targets := gossip.SamplePeers(s.rng, peers, s.cfg.Fanout, s.self.Addr)
	body, err := json.Marshal(exchangeMsg{Entries: []entry{{Addr: s.self.Addr, Heartbeat: s.self.Heartbeat, Left: true}}})
	s.mu.Unlock()
	if err != nil {
		return
	}
	for _, p := range targets {
		_ = s.cfg.Endpoint.Send(ctx, transport.Message{To: p, Action: ActionLeave, Body: body})
	}
}

// alivePeersLocked returns the sorted alive-address snapshot, rebuilding it
// only after a view mutation. The snapshot's backing array is pooled —
// rebuilds reuse it instead of allocating, which at heartbeat cadence across
// a large simulated population is sustained allocator pressure — so callers
// must not retain or read the slice past the lock (samplers copy eligible
// entries before shuffling, under the lock).
func (s *Service) alivePeersLocked() []string {
	if s.aliveValid {
		return s.alive
	}
	out := s.alive[:0]
	for addr, m := range s.members {
		if m.State == StateAlive {
			out = append(out, addr)
		}
	}
	sort.Strings(out) // deterministic iteration for reproducible sampling
	s.alive = out
	s.aliveValid = true
	return out
}

// invalidateAliveLocked drops the cached alive snapshot after a mutation,
// keeping its backing array for the next rebuild. Every view mutation
// funnels through here, so it doubles as the update point for the view-size
// gauge.
func (s *Service) invalidateAliveLocked() {
	s.aliveValid = false
	s.stats.viewSize.Set(int64(len(s.members)))
}

func (s *Service) encodeViewLocked() ([]byte, error) {
	entries := make([]entry, 0, len(s.members)+1)
	entries = append(entries, s.self)
	for _, m := range s.members {
		entries = append(entries, entry{Addr: m.Addr, Heartbeat: m.Heartbeat})
	}
	// Sort the advertised view (self stays first). Receivers merge entries in
	// wire order, and with a capped view each over-cap insert consumes an RNG
	// draw to pick an eviction victim — map-order encoding would make the
	// victim sequence, and hence the whole overlay, nondeterministic per run.
	sort.Slice(entries[1:], func(i, j int) bool { return entries[1+i].Addr < entries[1+j].Addr })
	return json.Marshal(exchangeMsg{Entries: entries})
}

func (s *Service) handleExchange(ctx context.Context, msg transport.Message) error {
	var em exchangeMsg
	if err := json.Unmarshal(msg.Body, &em); err != nil {
		return fmt.Errorf("membership: decode exchange: %w", err)
	}
	s.mu.Lock()
	s.stats.exchanges.Inc()
	_, knewSender := s.members[msg.From]
	now := s.cfg.Clock.Now()
	for _, e := range em.Entries {
		s.mergeLocked(e, now)
	}
	var reply []byte
	if !knewSender && msg.From != s.self.Addr {
		// A previously unknown sender is likely a newcomer whose view is
		// still tiny (with capped views it may know only its seed). Answer
		// with our view so it bootstraps immediately instead of waiting to
		// be sampled — the pull half of a view exchange.
		var err error
		reply, err = s.encodeViewLocked()
		if err != nil {
			reply = nil
		}
	}
	s.mu.Unlock()
	if reply != nil {
		_ = s.cfg.Endpoint.Send(ctx, transport.Message{To: msg.From, Action: ActionExchange, Body: reply})
	}
	return nil
}

func (s *Service) handleLeave(_ context.Context, msg transport.Message) error {
	var em exchangeMsg
	if err := json.Unmarshal(msg.Body, &em); err != nil {
		return fmt.Errorf("membership: decode leave: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range em.Entries {
		s.left[e.Addr] = struct{}{}
		delete(s.members, e.Addr)
		s.stats.leaves.Inc()
	}
	s.invalidateAliveLocked()
	return nil
}

func (s *Service) mergeLocked(e entry, now time.Duration) {
	if e.Addr == "" {
		// A malformed or empty address must not become a member: it would
		// gossip onward and burn a fan-out slot at every sampler.
		return
	}
	if e.Addr == s.self.Addr {
		// Another node may have a stale view of us; outrun it so we do not
		// get suspected by our own propagated heartbeat.
		if e.Heartbeat > s.self.Heartbeat {
			s.self.Heartbeat = e.Heartbeat + 1
		}
		return
	}
	if _, gone := s.left[e.Addr]; gone {
		return
	}
	if stalled, evicted := s.dead[e.Addr]; evicted {
		if e.Heartbeat <= stalled {
			return
		}
		delete(s.dead, e.Addr)
	}
	m, ok := s.members[e.Addr]
	if !ok {
		if s.cfg.MaxView > 0 && len(s.members) >= s.cfg.MaxView {
			s.evictRandomLocked()
		}
		s.members[e.Addr] = &Member{Addr: e.Addr, Heartbeat: e.Heartbeat, State: StateAlive, Refreshed: now}
		s.invalidateAliveLocked()
		return
	}
	if e.Heartbeat > m.Heartbeat {
		m.Heartbeat = e.Heartbeat
		if m.State != StateAlive {
			m.State = StateAlive
			s.invalidateAliveLocked()
		}
		m.Refreshed = now
	}
}

// evictRandomLocked removes one uniformly random view entry (peer-sampling
// replacement). Sorted iteration keeps the choice deterministic per seed.
func (s *Service) evictRandomLocked() {
	if len(s.members) == 0 {
		return
	}
	addrs := make([]string, 0, len(s.members))
	for a := range s.members {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	victim := addrs[s.rng.Intn(len(addrs))]
	delete(s.members, victim)
	s.invalidateAliveLocked()
}

// Suspect demotes a member to StateSuspect on external evidence of failure
// — typically the delivery plane opening the peer's circuit after repeated
// transport errors. A suspect is excluded from fan-out sampling but stays
// in the view: a later heartbeat advance (the peer gossiping again)
// restores it to alive, and the usual RemoveAfter aging evicts it if it
// never does. Already-suspect addresses are a no-op, so the hook is
// idempotent and safe to call from failure paths. An UNKNOWN address is
// also a no-op but is not silent: it usually means the failure detector
// and the view disagree (an eviction raced the circuit opening, or a
// wiring bug feeds the wrong address space), so it is counted as
// membership_suspect_unknown_total and logged once per process.
func (s *Service) Suspect(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.members[addr]
	if !ok {
		s.stats.suspectUnknown.Inc()
		suspectUnknownLogOnce.Do(func() {
			log.Printf("membership: Suspect(%q): address not in view (counted in membership_suspect_unknown_total; logged once)", addr)
		})
		return
	}
	if m.State == StateSuspect {
		return
	}
	m.State = StateSuspect
	s.stats.suspects.Inc()
	s.invalidateAliveLocked()
}

// suspectUnknownLogOnce gates the unknown-suspect log line to one per
// process: the counter carries the volume, the log carries the alert.
var suspectUnknownLogOnce sync.Once

// Alive returns the addresses currently considered alive (excluding self).
func (s *Service) Alive() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.alivePeersLocked()...)
}

// Members returns a snapshot of the full view (excluding self).
func (s *Service) Members() []Member {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Member, 0, len(s.members))
	for _, m := range s.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Size returns the number of known members excluding self.
func (s *Service) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.members)
}

var _ gossip.PeerProvider = (*Service)(nil)

// SelectPeers implements gossip.PeerProvider over the live view. Sampling
// happens under the lock: the alive snapshot's backing array is pooled, so a
// concurrent view mutation may rewrite it the moment the lock is released.
func (s *Service) SelectPeers(rng *rand.Rand, n int, exclude string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return gossip.SamplePeers(rng, s.alivePeersLocked(), n, exclude)
}
