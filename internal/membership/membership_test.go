package membership

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

type memCluster struct {
	net      *simnet.Network
	services []*Service
}

func newMemCluster(t *testing.T, n int, seed int64) *memCluster {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(seed))
	c := &memCluster{net: net}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("m%03d", i)
		svc, err := New(Config{
			Endpoint:     net.Node(addr),
			Clock:        net,
			RNG:          rand.New(rand.NewSource(seed + int64(i))),
			Fanout:       3,
			SuspectAfter: 400 * time.Millisecond,
			RemoveAfter:  time.Second,
		})
		if err != nil {
			t.Fatalf("service %d: %v", i, err)
		}
		mux := transport.NewMux()
		svc.Register(mux)
		mux.Bind(net.Node(addr))
		c.services = append(c.services, svc)
	}
	return c
}

// tick advances every service once and drains the network, spacing rounds
// interval apart in virtual time.
func (c *memCluster) tick(ctx context.Context, rounds int, interval time.Duration) {
	for r := 0; r < rounds; r++ {
		for _, s := range c.services {
			s.Tick(ctx)
		}
		c.net.RunFor(interval)
	}
}

func TestConfigValidation(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	ep := net.Node("a")
	base := Config{
		Endpoint: ep, Clock: net, Fanout: 2,
		SuspectAfter: time.Second, RemoveAfter: 2 * time.Second,
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.Endpoint = nil },
		func(c *Config) { c.Clock = nil },
		func(c *Config) { c.Fanout = 0 },
		func(c *Config) { c.SuspectAfter = 0 },
		func(c *Config) { c.RemoveAfter = c.SuspectAfter },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestJoinPropagates(t *testing.T) {
	c := newMemCluster(t, 8, 1)
	ctx := context.Background()
	// Everyone seeds from m000 only.
	for i := 1; i < 8; i++ {
		c.services[i].Join(ctx, []string{"m000"})
	}
	c.net.Run()
	c.tick(ctx, 10, 50*time.Millisecond)
	for i, s := range c.services {
		if got := s.Size(); got != 7 {
			t.Fatalf("service %d view size = %d, want 7", i, got)
		}
	}
}

func TestAliveExcludesSelf(t *testing.T) {
	c := newMemCluster(t, 4, 2)
	ctx := context.Background()
	for i := 1; i < 4; i++ {
		c.services[i].Join(ctx, []string{"m000"})
	}
	c.net.Run()
	c.tick(ctx, 8, 50*time.Millisecond)
	for i, s := range c.services {
		for _, a := range s.Alive() {
			if a == s.Addr() {
				t.Fatalf("service %d lists itself", i)
			}
		}
	}
}

func TestFailureDetection(t *testing.T) {
	c := newMemCluster(t, 8, 3)
	ctx := context.Background()
	for i := 1; i < 8; i++ {
		c.services[i].Join(ctx, []string{"m000"})
	}
	c.tick(ctx, 10, 50*time.Millisecond)
	// Crash m007: its heartbeat stops advancing.
	c.net.Crash("m007")
	c.tick(ctx, 30, 50*time.Millisecond)
	for i := 0; i < 7; i++ {
		for _, m := range c.services[i].Members() {
			if m.Addr == "m007" {
				t.Fatalf("service %d still lists crashed node (state %v)", i, m.State)
			}
		}
	}
}

func TestSuspectBeforeRemoval(t *testing.T) {
	c := newMemCluster(t, 4, 4)
	ctx := context.Background()
	for i := 1; i < 4; i++ {
		c.services[i].Join(ctx, []string{"m000"})
	}
	c.tick(ctx, 6, 50*time.Millisecond)
	c.net.Crash("m003")
	// Age past SuspectAfter (400ms) but not RemoveAfter (1s): ~10 rounds.
	c.tick(ctx, 10, 50*time.Millisecond)
	foundSuspect := false
	for _, m := range c.services[0].Members() {
		if m.Addr == "m003" && m.State == StateSuspect {
			foundSuspect = true
		}
	}
	if !foundSuspect {
		t.Fatal("crashed node not suspected in the suspect window")
	}
}

func TestLeaveTombstones(t *testing.T) {
	c := newMemCluster(t, 6, 5)
	ctx := context.Background()
	for i := 1; i < 6; i++ {
		c.services[i].Join(ctx, []string{"m000"})
	}
	c.tick(ctx, 8, 50*time.Millisecond)
	c.services[5].Leave(ctx)
	c.net.Run()
	// Leave reaches Fanout peers directly; they must drop the node at once.
	dropped := 0
	for i := 0; i < 5; i++ {
		has := false
		for _, m := range c.services[i].Members() {
			if m.Addr == "m005" {
				has = true
			}
		}
		if !has {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no peer processed the leave")
	}
}

func TestSelectPeersProvider(t *testing.T) {
	c := newMemCluster(t, 8, 6)
	ctx := context.Background()
	for i := 1; i < 8; i++ {
		c.services[i].Join(ctx, []string{"m000"})
	}
	c.tick(ctx, 10, 50*time.Millisecond)
	rng := rand.New(rand.NewSource(9))
	peers := c.services[0].SelectPeers(rng, 3, c.services[0].Addr())
	if len(peers) != 3 {
		t.Fatalf("selected %d peers", len(peers))
	}
	seen := map[string]bool{}
	for _, p := range peers {
		if p == "m000" || seen[p] {
			t.Fatalf("bad selection %v", peers)
		}
		seen[p] = true
	}
}

func TestSelfHeartbeatOutrunsStaleEcho(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(7))
	mk := func(addr string) *Service {
		svc, err := New(Config{
			Endpoint: net.Node(addr), Clock: net,
			RNG: rand.New(rand.NewSource(1)), Fanout: 1,
			SuspectAfter: 100 * time.Millisecond, RemoveAfter: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := transport.NewMux()
		svc.Register(mux)
		mux.Bind(net.Node(addr))
		return svc
	}
	a := mk("a")
	b := mk("b")
	ctx := context.Background()
	b.Join(ctx, []string{"a"})
	net.Run()
	// b's view of a has heartbeat 1; a's own heartbeat is still 1. When b
	// gossips back an inflated heartbeat for a, a must outrun it.
	for i := 0; i < 5; i++ {
		b.Tick(ctx)
		net.Run()
	}
	a.Tick(ctx)
	net.Run()
	if a.self.Heartbeat == 0 {
		t.Fatal("self heartbeat lost")
	}
	_ = a
}

func TestViewSizeNeverIncludesDuplicates(t *testing.T) {
	c := newMemCluster(t, 10, 8)
	ctx := context.Background()
	all := make([]string, 10)
	for i := range all {
		all[i] = fmt.Sprintf("m%03d", i)
	}
	for _, s := range c.services {
		s.Join(ctx, all)
	}
	c.tick(ctx, 10, 50*time.Millisecond)
	for i, s := range c.services {
		if got := s.Size(); got != 9 {
			t.Fatalf("service %d size = %d", i, got)
		}
		seen := map[string]bool{}
		for _, m := range s.Members() {
			if seen[m.Addr] {
				t.Fatalf("duplicate member %s", m.Addr)
			}
			seen[m.Addr] = true
		}
	}
}

func TestRecoveredNodeReadmitted(t *testing.T) {
	c := newMemCluster(t, 5, 9)
	ctx := context.Background()
	for i := 1; i < 5; i++ {
		c.services[i].Join(ctx, []string{"m000"})
	}
	c.tick(ctx, 8, 50*time.Millisecond)
	c.net.Crash("m004")
	c.tick(ctx, 30, 50*time.Millisecond) // well past RemoveAfter
	for _, m := range c.services[0].Members() {
		if m.Addr == "m004" {
			t.Fatal("evicted node still present")
		}
	}
	// Recovery: the node re-joins (both sides evicted each other, so a
	// recovered process must announce itself); its heartbeat has advanced
	// past the stall point recorded in the peers' tombstones, so they
	// readmit it.
	c.net.Recover("m004")
	c.services[4].Join(ctx, []string{"m000"})
	c.tick(ctx, 40, 50*time.Millisecond)
	found := false
	for _, m := range c.services[0].Members() {
		if m.Addr == "m004" && m.State == StateAlive {
			found = true
		}
	}
	if !found {
		t.Fatal("recovered node not readmitted")
	}
}

func TestMaxViewBoundsState(t *testing.T) {
	// 30 nodes with 8-entry partial views: every view stays capped while
	// dissemination over the sampled overlay still reaches everyone.
	const n = 30
	const maxView = 8
	net := simnet.New(simnet.DefaultConfig(11))
	services := make([]*Service, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("pv%03d", i)
		// Partial views refresh each entry less often than full views, so
		// failure-detection windows must scale up with n/MaxView; generous
		// windows isolate the cap invariant under test.
		svc, err := New(Config{
			Endpoint:     net.Node(addrs[i]),
			Clock:        net,
			RNG:          rand.New(rand.NewSource(11 + int64(i))),
			Fanout:       3,
			SuspectAfter: 5 * time.Second,
			RemoveAfter:  10 * time.Second,
			MaxView:      maxView,
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := transport.NewMux()
		svc.Register(mux)
		mux.Bind(net.Node(addrs[i]))
		services[i] = svc
	}
	ctx := context.Background()
	for i := 1; i < n; i++ {
		services[i].Join(ctx, []string{addrs[0]})
	}
	net.Run()
	for round := 0; round < 20; round++ {
		for _, s := range services {
			s.Tick(ctx)
		}
		net.RunFor(50 * time.Millisecond)
	}
	union := map[string]bool{}
	for i, s := range services {
		if got := s.Size(); got > maxView {
			t.Fatalf("service %d view size = %d exceeds cap %d", i, got, maxView)
		}
		if got := s.Size(); got < maxView/2 {
			t.Fatalf("service %d view size = %d suspiciously small", i, got)
		}
		for _, m := range s.Members() {
			union[m.Addr] = true
		}
	}
	// The union of partial views must cover (almost) the whole membership —
	// the overlay stays well mixed.
	if len(union) < n-2 {
		t.Fatalf("partial-view union covers only %d/%d nodes", len(union), n)
	}
}

func TestSuspectDemotesAndHeartbeatRestores(t *testing.T) {
	c := newMemCluster(t, 3, 9)
	ctx := context.Background()
	c.services[1].Join(ctx, []string{"m000"})
	c.services[2].Join(ctx, []string{"m000"})
	c.net.Run()
	c.tick(ctx, 4, 50*time.Millisecond)

	s := c.services[0]
	if got := len(s.Alive()); got != 2 {
		t.Fatalf("alive = %d, want 2 before suspicion", got)
	}

	s.Suspect("m001")
	alive := s.Alive()
	if len(alive) != 1 || alive[0] != "m002" {
		t.Fatalf("alive after Suspect = %v, want [m002]", alive)
	}
	for _, m := range s.Members() {
		if m.Addr == "m001" && m.State != StateSuspect {
			t.Fatalf("m001 state = %v, want suspect", m.State)
		}
	}
	before := s.stats.suspects.Value()
	unknownBefore := s.stats.suspectUnknown.Value()
	s.Suspect("m001") // already suspect: idempotent
	s.Suspect("mXXX") // unknown: no state change, but counted
	if got := s.stats.suspects.Value(); got != before {
		t.Fatalf("suspects counter = %d, want unchanged %d", got, before)
	}
	if got := s.stats.suspectUnknown.Value(); got != unknownBefore+1 {
		t.Fatalf("suspect-unknown counter = %d, want %d", got, unknownBefore+1)
	}

	// The suspect keeps gossiping: its heartbeat advance restores it.
	c.tick(ctx, 4, 50*time.Millisecond)
	if got := len(s.Alive()); got != 2 {
		t.Fatalf("alive = %d, want 2 after the peer's heartbeat recovers it", got)
	}
}

func TestSuspectEvictedWhenSilent(t *testing.T) {
	c := newMemCluster(t, 2, 11)
	ctx := context.Background()
	c.services[1].Join(ctx, []string{"m000"})
	c.net.Run()
	c.tick(ctx, 2, 50*time.Millisecond)

	s := c.services[0]
	if got := len(s.Alive()); got != 1 {
		t.Fatalf("alive = %d, want 1", got)
	}
	s.Suspect("m001")
	// Only m000 ticks from here: m001 never refreshes, so RemoveAfter (1s)
	// aging evicts the suspect.
	for r := 0; r < 25; r++ {
		s.Tick(ctx)
		c.net.RunFor(50 * time.Millisecond)
	}
	if got := s.Size(); got != 0 {
		t.Fatalf("view size = %d, want 0 after the silent suspect ages out", got)
	}
}
