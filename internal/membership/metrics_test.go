package membership

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"wsgossip/internal/metrics"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// TestMembershipMetrics drives a three-node cluster through join, failure,
// and leave, checking the registry series track the view at each step.
func TestMembershipMetrics(t *testing.T) {
	ctx := context.Background()
	net := simnet.New(simnet.DefaultConfig(42))
	regs := make([]*metrics.Registry, 3)
	svcs := make([]*Service, 3)
	for i := range svcs {
		addr := fmt.Sprintf("n%d", i)
		regs[i] = metrics.NewRegistry()
		svc, err := New(Config{
			Endpoint:     net.Node(addr),
			Clock:        net,
			RNG:          rand.New(rand.NewSource(int64(i) + 1)),
			Fanout:       2,
			SuspectAfter: 400 * time.Millisecond,
			RemoveAfter:  time.Second,
			Metrics:      regs[i],
		})
		if err != nil {
			t.Fatalf("service %d: %v", i, err)
		}
		mux := transport.NewMux()
		svc.Register(mux)
		mux.Bind(net.Node(addr))
		svcs[i] = svc
	}

	svcs[1].Join(ctx, []string{"n0"})
	svcs[2].Join(ctx, []string{"n0"})
	net.RunFor(50 * time.Millisecond)
	for r := 0; r < 5; r++ {
		for _, s := range svcs {
			s.Tick(ctx)
		}
		net.RunFor(100 * time.Millisecond)
	}

	for i, s := range svcs {
		if got, want := regs[i].Gauge("membership_view_size").Value(), int64(s.Size()); got != want {
			t.Fatalf("node %d view-size gauge = %d, Size() = %d", i, got, want)
		}
	}
	if regs[0].Counter("membership_exchanges_total").Value() == 0 {
		t.Fatal("no exchanges counted after five gossip rounds")
	}

	// Crash n2 (stop ticking it); the survivors must suspect then evict it.
	for r := 0; r < 25; r++ {
		svcs[0].Tick(ctx)
		svcs[1].Tick(ctx)
		net.RunFor(100 * time.Millisecond)
	}
	if regs[0].Counter("membership_suspects_total").Value() == 0 {
		t.Fatal("crashed peer never counted as suspected")
	}
	if regs[0].Counter("membership_evictions_total").Value() == 0 {
		t.Fatal("crashed peer never counted as evicted")
	}
	if got, want := regs[0].Gauge("membership_view_size").Value(), int64(svcs[0].Size()); got != want {
		t.Fatalf("view-size gauge = %d after eviction, Size() = %d", got, want)
	}

	// n1 announces departure; n0 must apply and count the tombstone.
	svcs[1].Leave(ctx)
	net.RunFor(50 * time.Millisecond)
	if regs[0].Counter("membership_leaves_total").Value() == 0 {
		t.Fatal("leave announcement never counted")
	}
	if got, want := regs[0].Gauge("membership_view_size").Value(), int64(svcs[0].Size()); got != want {
		t.Fatalf("view-size gauge = %d after leave, Size() = %d", got, want)
	}

	var sb strings.Builder
	if err := regs[0].WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"membership_view_size", "membership_exchanges_total",
		"membership_suspects_total", "membership_evictions_total",
		"membership_leaves_total",
	} {
		if !strings.Contains(sb.String(), family) {
			t.Fatalf("exposition missing %s:\n%s", family, sb.String())
		}
	}
}
