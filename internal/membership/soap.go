package membership

import (
	"context"
	"encoding/xml"
	"sync"

	"wsgossip/internal/soap"
	"wsgossip/internal/transport"
	"wsgossip/internal/wsa"
)

// SOAPEndpoint adapts the SOAP layer to transport.Endpoint so a membership
// Service rides the same fabric — MemBus, HTTP, or a test bus — as the
// WS-Gossip services it feeds. Each transport-level message travels as a
// one-way SOAP envelope whose WS-Addressing action is the membership action
// and whose body wraps the serialized view; the node's dispatcher routes
// inbound copies back through the installed transport handler.
//
// This is what promotes membership from an experiment-only transport toy to
// the runtime's live peer-view layer: the same endpoint address serves
// notifications, pulls, digests, AND view exchanges, so
// membership.Service's Alive addresses are directly usable as gossip
// fan-out targets (see core.PeerView).
type SOAPEndpoint struct {
	addr   string
	caller soap.Caller

	mu      sync.Mutex
	handler transport.Handler
}

var _ transport.Endpoint = (*SOAPEndpoint)(nil)

// envelopeBody is the SOAP body wrapping one transport-level membership
// message. The serialized view (JSON) rides as escaped character data.
type envelopeBody struct {
	XMLName xml.Name `xml:"urn:wsgossip:membership Membership"`
	From    string   `xml:"From"`
	Data    string   `xml:"Data"`
}

// NewSOAPEndpoint returns an endpoint sending via caller and identifying
// itself as addr (normally the node's SOAP endpoint address).
func NewSOAPEndpoint(addr string, caller soap.Caller) *SOAPEndpoint {
	return &SOAPEndpoint{addr: addr, caller: caller}
}

// Addr returns the endpoint address.
func (e *SOAPEndpoint) Addr() string { return e.addr }

// SetHandler installs the inbound-message handler.
func (e *SOAPEndpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Send wraps msg in a one-way SOAP envelope and sends it through the caller.
func (e *SOAPEndpoint) Send(ctx context.Context, msg transport.Message) error {
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To:        msg.To,
		Action:    msg.Action,
		MessageID: wsa.NewMessageID(),
	}); err != nil {
		return err
	}
	if err := env.SetBody(envelopeBody{From: e.addr, Data: string(msg.Body)}); err != nil {
		return err
	}
	return e.caller.Send(ctx, msg.To, env)
}

// RegisterActions installs the membership wire actions on the node's SOAP
// dispatcher, routing them into the transport handler the Service sets. Use
// it in place of Service.Register when the node's stack is SOAP-level.
func (e *SOAPEndpoint) RegisterActions(d *soap.Dispatcher) {
	h := soap.HandlerFunc(e.handleSOAP)
	d.Register(ActionExchange, h)
	d.Register(ActionLeave, h)
}

// handleSOAP unwraps one membership envelope and hands it to the transport
// handler. View exchanges are one-way gossip: handler errors are swallowed
// exactly as a lossy datagram fabric would.
func (e *SOAPEndpoint) handleSOAP(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	var body envelopeBody
	if err := req.Envelope.DecodeBody(&body); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed membership body: "+err.Error())
	}
	e.mu.Lock()
	h := e.handler
	e.mu.Unlock()
	if h == nil {
		return nil, nil
	}
	// DecodeBody copied the data out of the (possibly pooled) request
	// buffer, so the handler may retain it freely.
	_ = h(ctx, transport.Message{
		From:   body.From,
		To:     e.addr,
		Action: req.Addressing().Action,
		Body:   []byte(body.Data),
	})
	return nil, nil
}
