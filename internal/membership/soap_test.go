package membership

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/soap"
	"wsgossip/internal/transport"
)

// soapNode is one membership service riding the in-memory SOAP binding.
type soapNode struct {
	svc *Service
	ep  *SOAPEndpoint
}

func newSOAPNode(t *testing.T, bus *soap.MemBus, clk transport.Clock, addr string, seed int64) *soapNode {
	t.Helper()
	ep := NewSOAPEndpoint(addr, bus)
	svc, err := New(Config{
		Endpoint:     ep,
		Clock:        clk,
		RNG:          rand.New(rand.NewSource(seed)),
		Fanout:       3,
		SuspectAfter: 400 * time.Millisecond,
		RemoveAfter:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux()
	svc.Register(mux)
	mux.Bind(ep)
	dispatcher := soap.NewDispatcher()
	ep.RegisterActions(dispatcher)
	bus.Register(addr, dispatcher)
	return &soapNode{svc: svc, ep: ep}
}

// TestSOAPEndpointExchange runs the membership protocol entirely over the
// SOAP binding: views must converge exactly as they do over the raw
// transport, proving the bridge preserves the wire protocol.
func TestSOAPEndpointExchange(t *testing.T) {
	bus := soap.NewMemBus()
	clk := clock.NewVirtual()
	ctx := context.Background()
	const n = 8
	nodes := make([]*soapNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		addrs[i] = fmt.Sprintf("mem://m%02d", i)
		nodes[i] = newSOAPNode(t, bus, clk, addrs[i], int64(i+1))
	}
	for i := 1; i < n; i++ {
		nodes[i].svc.Join(ctx, []string{addrs[0]})
	}
	for r := 0; r < 8; r++ {
		for _, nd := range nodes {
			nd.svc.Tick(ctx)
		}
		clk.Advance(50 * time.Millisecond)
	}
	for i, nd := range nodes {
		if got := nd.svc.Size(); got != n-1 {
			t.Fatalf("node %d view size %d, want %d", i, got, n-1)
		}
	}

	// A leave over SOAP tombstones the sender at the receivers.
	nodes[n-1].svc.Leave(ctx)
	left := 0
	for i := 0; i < n-1; i++ {
		if nodes[i].svc.Size() == n-2 {
			left++
		}
	}
	if left == 0 {
		t.Fatal("no receiver processed the SOAP-carried leave")
	}
}

// TestSOAPEndpointUnknownPeer exercises the send error path: the bus
// rejects unknown endpoints and the error surfaces as a transport error.
func TestSOAPEndpointUnknownPeer(t *testing.T) {
	bus := soap.NewMemBus()
	ep := NewSOAPEndpoint("mem://only", bus)
	err := ep.Send(context.Background(), transport.Message{
		To: "mem://nowhere", Action: ActionExchange, Body: []byte("{}"),
	})
	if err == nil {
		t.Fatal("send to unregistered endpoint must error")
	}
}

// TestSelectPeersAllocationStable pins the alive-snapshot cache: once the
// view is warm, sampling must not rebuild or re-sort the alive list, so a
// SelectPeers call costs only the sampler's own output allocation.
func TestSelectPeersAllocationStable(t *testing.T) {
	c := newMemCluster(t, 16, 7)
	ctx := context.Background()
	for i := 1; i < 16; i++ {
		c.services[i].Join(ctx, []string{"m000"})
	}
	c.tick(ctx, 6, 100*time.Millisecond)
	svc := c.services[0]
	if svc.Size() == 0 {
		t.Fatal("view empty after convergence rounds")
	}
	rng := rand.New(rand.NewSource(42))
	svc.SelectPeers(rng, 3, "m000") // warm the cache
	allocs := testing.AllocsPerRun(100, func() {
		svc.SelectPeers(rng, 3, "m000")
	})
	// One allocation for the sampler's eligible-copy; anything more means
	// the per-call alive rebuild is back.
	if allocs > 2 {
		t.Fatalf("SelectPeers allocates %.1f objects per call on a warm view, want <= 2", allocs)
	}

	// The cache must not serve stale views: age the only members out and
	// the sample must come back empty.
	c.net.RunFor(2 * time.Second)
	svc.Tick(ctx)
	if got := svc.SelectPeers(rng, 3, "m000"); len(got) != 0 {
		t.Fatalf("sample from fully-aged view returned %v, want none", got)
	}
}
