package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// BucketHistogram is the bounded-memory histogram for production series:
// observations land in fixed buckets (typically exponential), so memory is
// O(buckets) regardless of how long the node runs — unlike the exact
// Histogram, whose sample slice grows forever. Observe is lock-free (one
// binary search plus three atomic adds), which keeps it safe on the gossip
// hot paths. Quantiles are bucket-resolution estimates: the reported value
// is the upper bound of the bucket holding the requested rank.
type BucketHistogram struct {
	bounds []float64 // sorted inclusive upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

var _ Observer = (*BucketHistogram)(nil)

// NewBucketHistogram returns a histogram over the given sorted upper
// bounds. An implicit +Inf bucket catches observations above the last
// bound. Empty bounds yield a count/sum-only histogram.
func NewBucketHistogram(bounds []float64) *BucketHistogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &BucketHistogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
}

// ExponentialBuckets returns n upper bounds starting at start and growing
// by factor: start, start·factor, start·factor², …. It panics if n < 1,
// start <= 0, or factor <= 1 — a misconfigured bucket layout is a
// programming error worth failing loudly on.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("metrics: ExponentialBuckets requires n >= 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets spans 1µs to ~4s in ×4 steps — wide enough for both
// in-memory fan-outs and WAN round latencies, in seconds.
var DefLatencyBuckets = ExponentialBuckets(1e-6, 4, 12)

// DefSizeBuckets spans 64 B to ~16 MiB in ×4 steps, for envelope and
// payload sizes in bytes.
var DefSizeBuckets = ExponentialBuckets(64, 4, 10)

// Observe records one sample.
func (h *BucketHistogram) Observe(v float64) {
	// Binary search for the first bound >= v; equal values land in the
	// bucket whose bound they equal (Prometheus "le" semantics).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *BucketHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *BucketHistogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *BucketHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Buckets returns the upper bounds and the per-bucket (non-cumulative)
// counts; the final count is the implicit +Inf bucket. Under concurrent
// Observe the copy may straddle an in-flight observation.
func (h *BucketHistogram) Buckets() (bounds []float64, counts []int64) {
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile returns the upper bound of the bucket containing the
// q-quantile (0 ≤ q ≤ 1) — an over-estimate by at most one bucket width.
// Samples in the +Inf bucket report the largest finite bound (there is no
// better information), and an empty histogram reports 0.
func (h *BucketHistogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Max returns the upper bound of the highest non-empty bucket, or 0 with
// no samples.
func (h *BucketHistogram) Max() float64 { return h.Quantile(1) }
