package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExponentialBuckets(1, 2, 0) },
		func() { ExponentialBuckets(0, 2, 3) },
		func() { ExponentialBuckets(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on invalid bucket layout")
				}
			}()
			bad()
		}()
	}
}

func TestBucketHistogramObserve(t *testing.T) {
	h := NewBucketHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-556.5) > 1e-9 {
		t.Fatalf("sum = %v, want 556.5", got)
	}
	_, counts := h.Buckets()
	want := []int64{2, 1, 1, 1} // le=1 gets both 0.5 and the boundary value 1
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

func TestBucketHistogramQuantile(t *testing.T) {
	h := NewBucketHistogram([]float64{1, 10, 100})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // le=1
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // le=100
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.95); got != 100 {
		t.Fatalf("p95 = %v, want 100", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
	// Samples above the last bound report the largest finite bound.
	h.Observe(1e9)
	if got := h.Max(); got != 100 {
		t.Fatalf("max with +Inf samples = %v, want 100", got)
	}
}

func TestBucketHistogramConcurrent(t *testing.T) {
	h := NewBucketHistogram(DefLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(seed*j%17) * 1e-4)
				_ = h.Quantile(0.95)
				_ = h.Sum()
			}
		}(i + 1)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestTimerVirtualClockDeterminism(t *testing.T) {
	// The timer reads the injected time source, so a virtual clock makes
	// the recorded latency exact.
	var now time.Duration
	var h Histogram
	timer := NewTimer(func() time.Duration { return now }, &h)
	stop := timer.Start()
	now += 250 * time.Millisecond
	stop()
	if got := h.Max(); got != 0.25 {
		t.Fatalf("recorded %v, want 0.25", got)
	}
}

func TestTimerInert(t *testing.T) {
	var zero Timer
	zero.Start()() // must not panic
	NewTimer(nil, &Histogram{}).Start()()
	NewTimer(func() time.Duration { return 0 }, nil).Start()()
}
