// Package metrics provides the small, dependency-free instrumentation layer
// used by the experiment harness: counters, gauges, and quantile histograms.
// All types are safe for concurrent use.
//
// Key types: Counter, Gauge, Histogram (with Quantile readout), and
// Registry for named lookup. The experiment tables (internal/experiments)
// are built from these readouts.
package metrics
