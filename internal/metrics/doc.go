// Package metrics is the node-wide instrumentation plane: dependency-free
// counters, gauges, histograms, labeled vectors, and a Registry with
// Prometheus text exposition. All types are safe for concurrent use and
// the hot-path write operations (Counter.Inc, Gauge.Set, FloatGauge.Set,
// BucketHistogram.Observe) are lock-free.
//
// Two histogram variants cover the two usage regimes. Histogram keeps
// every sample and answers exact quantiles — right for bounded runs such
// as experiments and tests. BucketHistogram lands observations in fixed
// (typically exponential) buckets, so memory stays O(buckets) over an
// unbounded production run; quantiles are bucket-resolution estimates.
// Both satisfy Observer, so instrumentation points accept either.
//
// CounterVec, GaugeVec, and BucketHistogramVec address children by an
// ordered tuple of label values (e.g. protocol={push,pull,aggregate}).
// With is identity-stable, so hot paths resolve their child once at
// construction and pay only one atomic op per event.
//
// Registry names the metrics of one node (or one simulated cluster):
// every instrumented layer resolves its series from the registry it is
// configured with, Snapshot renders a sorted human-readable dump with
// p50/p95/max for histograms, and WritePrometheus serves the text
// exposition format behind a /metrics endpoint.
//
// Timer observes elapsed seconds into an Observer through an injected
// time source: production wires clock.Real's Now, virtual-time scenarios
// wire clock.Virtual's, which makes latency histograms byte-for-byte
// deterministic in tests.
package metrics
