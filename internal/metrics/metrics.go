package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous integer value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a settable instantaneous float64 value (e.g. a
// mass-conservation error). It is lock-free: the value is stored as raw
// float64 bits in one atomic word.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Observer is anything float64 observations can be recorded into; both
// histogram variants satisfy it, so instrumentation can take either.
type Observer interface {
	Observe(v float64)
}

// Timer observes elapsed durations, in seconds, into an Observer. The time
// source is injected — production timers run on clock.Real's Now, while
// virtual-time deployments hand in clock.Virtual's, which makes latency
// histograms fully deterministic in scenario tests.
type Timer struct {
	now func() time.Duration
	obs Observer
}

// NewTimer returns a timer reading now and recording into obs. A Timer with
// a nil now or obs is inert: Start returns a no-op stop function.
func NewTimer(now func() time.Duration, obs Observer) Timer {
	return Timer{now: now, obs: obs}
}

// Start begins one measurement and returns the function that completes it:
// calling the returned stop observes the elapsed seconds since Start.
func (t Timer) Start() (stop func()) {
	if t.now == nil || t.obs == nil {
		return func() {}
	}
	start := t.now()
	return func() { t.obs.Observe((t.now() - start).Seconds()) }
}

// Histogram records float64 observations exactly and reports precise
// quantiles. It keeps every sample, so memory grows with the observation
// count: experiments and bounded test runs use it where exactness beats
// approximation; unbounded production series belong in BucketHistogram.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

var _ Observer = (*Histogram)(nil)

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank on the
// sorted samples, or 0 with no samples.
//
// Sorting happens lazily, in place, under h.mu — the same lock Observe
// takes — so there is no window where a concurrent Observe can see a
// half-sorted slice or clear the sorted flag mid-sort. The flag only
// avoids re-sorting across consecutive read calls; an Observe between two
// Quantile calls clears it and the next read pays one sort again.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// quantileLocked is Quantile's body for callers already holding h.mu.
func (h *Histogram) quantileLocked(q float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// StdDev returns the population standard deviation.
func (h *Histogram) StdDev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sorted = false
}
