package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records float64 observations and reports quantiles. It keeps all
// samples; experiments are bounded so memory stays modest, and exactness
// beats approximation when validating protocol behaviour.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank on the
// sorted samples, or 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// StdDev returns the population standard deviation.
func (h *Histogram) StdDev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sorted = false
}

// Registry is a named collection of metrics, used per experiment run.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot renders every metric as "name=value" lines, sorted by name.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s=%d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s=%d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("%s_count=%d", name, h.Count()))
		lines = append(lines, fmt.Sprintf("%s_mean=%.3f", name, h.Mean()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
