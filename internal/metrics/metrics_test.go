package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 3 {
		t.Fatalf("mean = %v, want 3", got)
	}
	if got := h.Sum(); got != 15 {
		t.Fatalf("sum = %v, want 15", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := h.Max(); got != 5 {
		t.Fatalf("max = %v", got)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Observe(1)
	if got := h.Quantile(1); got != 5 {
		t.Fatalf("max = %v", got)
	}
	h.Observe(9)
	if got := h.Quantile(1); got != 9 {
		t.Fatalf("max after re-observe = %v, want 9", got)
	}
}

func TestHistogramStdDev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Reset()
	if h.Count() != 0 {
		t.Fatalf("count after reset = %d", h.Count())
	}
}

func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Observe(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Quantiles must be actual samples, ordered, and bounded.
		q25, q50, q99 := h.Quantile(0.25), h.Quantile(0.5), h.Quantile(0.99)
		if q25 > q50 || q50 > q99 {
			return false
		}
		return h.Min() == sorted[0] && h.Max() == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("sent").Add(3)
	if got := r.Counter("sent").Value(); got != 3 {
		t.Fatalf("counter reuse = %d, want 3", got)
	}
	r.Gauge("depth").Set(7)
	if got := r.Gauge("depth").Value(); got != 7 {
		t.Fatalf("gauge = %d", got)
	}
	r.Histogram("lat").Observe(1.5)
	if got := r.Histogram("lat").Count(); got != 1 {
		t.Fatalf("histogram count = %d", got)
	}
	snap := r.Snapshot()
	if snap == "" {
		t.Fatal("empty snapshot")
	}
}
