package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4), the format a scrape of /metrics
// serves. Families are emitted in sorted name order with a # TYPE line
// each; exact histograms are rendered as summaries (precise quantiles),
// bucket histograms as histograms with cumulative le buckets. The writer
// holds the registry lock only to snapshot the metric tables, not while
// writing, so a slow scraper cannot stall metric creation.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := copyMap(r.counters)
	gauges := copyMap(r.gauges)
	floatGauges := copyMap(r.floatGauges)
	histograms := copyMap(r.histograms)
	buckets := copyMap(r.buckets)
	counterVecs := copyMap(r.counterVecs)
	gaugeVecs := copyMap(r.gaugeVecs)
	bucketVecs := copyMap(r.bucketVecs)
	r.mu.Unlock()

	var b strings.Builder

	type family struct {
		name string
		emit func(b *strings.Builder)
	}
	var fams []family
	add := func(name string, emit func(b *strings.Builder)) {
		fams = append(fams, family{name, emit})
	}

	for name, c := range counters {
		name, c := sanitizeName(name), c
		add(name, func(b *strings.Builder) {
			fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", name, name, c.Value())
		})
	}
	for name, g := range gauges {
		name, g := sanitizeName(name), g
		add(name, func(b *strings.Builder) {
			fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", name, name, g.Value())
		})
	}
	for name, g := range floatGauges {
		name, g := sanitizeName(name), g
		add(name, func(b *strings.Builder) {
			fmt.Fprintf(b, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(g.Value()))
		})
	}
	for name, h := range histograms {
		name, h := sanitizeName(name), h
		add(name, func(b *strings.Builder) {
			h.mu.Lock()
			count := len(h.samples)
			var sum float64
			for _, v := range h.samples {
				sum += v
			}
			q50, q95, q99 := h.quantileLocked(0.5), h.quantileLocked(0.95), h.quantileLocked(0.99)
			h.mu.Unlock()
			fmt.Fprintf(b, "# TYPE %s summary\n", name)
			fmt.Fprintf(b, "%s{quantile=\"0.5\"} %s\n", name, formatFloat(q50))
			fmt.Fprintf(b, "%s{quantile=\"0.95\"} %s\n", name, formatFloat(q95))
			fmt.Fprintf(b, "%s{quantile=\"0.99\"} %s\n", name, formatFloat(q99))
			fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(sum))
			fmt.Fprintf(b, "%s_count %d\n", name, count)
		})
	}
	for name, h := range buckets {
		name, h := sanitizeName(name), h
		add(name, func(b *strings.Builder) {
			fmt.Fprintf(b, "# TYPE %s histogram\n", name)
			writeBuckets(b, name, "", h)
		})
	}
	for name, v := range counterVecs {
		name, v := sanitizeName(name), v
		add(name, func(b *strings.Builder) {
			fmt.Fprintf(b, "# TYPE %s counter\n", name)
			kids := v.v.snapshot()
			for _, key := range sortedKeys(kids) {
				fmt.Fprintf(b, "%s{%s} %d\n", name, labelPairs(v.v.labels, key), kids[key].Value())
			}
		})
	}
	for name, v := range gaugeVecs {
		name, v := sanitizeName(name), v
		add(name, func(b *strings.Builder) {
			fmt.Fprintf(b, "# TYPE %s gauge\n", name)
			kids := v.v.snapshot()
			for _, key := range sortedKeys(kids) {
				fmt.Fprintf(b, "%s{%s} %d\n", name, labelPairs(v.v.labels, key), kids[key].Value())
			}
		})
	}
	for name, v := range bucketVecs {
		name, v := sanitizeName(name), v
		add(name, func(b *strings.Builder) {
			fmt.Fprintf(b, "# TYPE %s histogram\n", name)
			kids := v.v.snapshot()
			for _, key := range sortedKeys(kids) {
				writeBuckets(b, name, labelPairs(v.v.labels, key), kids[key])
			}
		})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.emit(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeBuckets emits the cumulative le series plus _sum and _count for one
// bucket histogram, with extraLabels ("k=\"v\",...") merged into each line.
func writeBuckets(b *strings.Builder, name, extraLabels string, h *BucketHistogram) {
	bounds, counts := h.Buckets()
	join := func(le string) string {
		if extraLabels == "" {
			return fmt.Sprintf("le=%q", le)
		}
		return extraLabels + ",le=" + strconv.Quote(le)
	}
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, join(formatFloat(bound)), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, join("+Inf"), cum)
	suffix := ""
	if extraLabels != "" {
		suffix = "{" + extraLabels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, cum)
}

// sanitizeName maps a registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing anything else with '_'.
func sanitizeName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		if !isNameChar(name[i]) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	out := []byte(name)
	for i, c := range out {
		if !isNameChar(c) {
			out[i] = '_'
		}
	}
	return string(out)
}

func isNameChar(c byte) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// copyMap shallow-copies a metric table so exposition can walk it without
// holding the registry lock.
func copyMap[T any](m map[string]*T) map[string]*T {
	out := make(map[string]*T, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[T any](m map[string]*T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
