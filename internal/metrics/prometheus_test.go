package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a registry with one of everything, with fixed
// values, so the exposition output is byte-for-byte reproducible.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("gossip_forwarded_total").Add(42)
	r.Gauge("membership_view_size").Set(8)
	r.FloatGauge("aggregate_mass_error").Set(0.125)
	h := r.Histogram("fanout_latency_seconds")
	for _, v := range []float64{0.001, 0.002, 0.004, 0.008, 0.1} {
		h.Observe(v)
	}
	b := r.BucketHistogram("envelope_bytes", []float64{256, 1024, 4096})
	for _, v := range []float64{100, 300, 2000, 9000} {
		b.Observe(v)
	}
	cv := r.CounterVec("deliveries_total", "protocol")
	cv.With("push").Add(30)
	cv.With("pull").Add(12)
	gv := r.GaugeVec("runner_backoff_level", "loop")
	gv.With("pull").Set(2)
	bv := r.BucketHistogramVec("tick_seconds", []float64{0.01, 0.1}, "loop")
	bv.With("pull").Observe(0.005)
	bv.With("pull").Observe(0.05)
	bv.With("repair").Observe(1.5)
	// A name and a label value that both need escaping.
	r.Counter("weird name").Inc()
	r.CounterVec("odd_labels", "path").With("a\"b\\c\nd").Inc()
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusShape(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gossip_forwarded_total counter\ngossip_forwarded_total 42\n",
		"# TYPE membership_view_size gauge\nmembership_view_size 8\n",
		"aggregate_mass_error 0.125\n",
		"# TYPE fanout_latency_seconds summary\n",
		`fanout_latency_seconds{quantile="0.95"} 0.1`,
		"fanout_latency_seconds_count 5\n",
		`envelope_bytes_bucket{le="+Inf"} 4`,
		"envelope_bytes_count 4\n",
		`deliveries_total{protocol="push"} 30`,
		`tick_seconds_bucket{loop="pull",le="0.01"} 1`,
		`tick_seconds_count{loop="repair"} 1`,
		"weird_name 1\n", // sanitized metric name
		`odd_labels{path="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: le="1024" includes le="256".
	if !strings.Contains(out, `envelope_bytes_bucket{le="256"} 1`) ||
		!strings.Contains(out, `envelope_bytes_bucket{le="1024"} 2`) {
		t.Fatalf("buckets not cumulative:\n%s", out)
	}
}

func TestConcurrentObserveQuantileWrite(t *testing.T) {
	// Writers, quantile readers, and exposition scrapers all at once;
	// run under -race this is the package's thread-safety proof.
	r := NewRegistry()
	h := r.Histogram("h")
	b := r.BucketHistogram("b", DefLatencyBuckets)
	cv := r.CounterVec("c", "k")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(j % 13))
				b.Observe(float64(j%13) * 1e-4)
				cv.With("a").Inc()
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				_ = h.Quantile(0.95)
				_ = b.Quantile(0.95)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 2000 {
		t.Fatalf("histogram count = %d, want 2000", got)
	}
	if got := cv.With("a").Value(); got != 2000 {
		t.Fatalf("counter = %d, want 2000", got)
	}
}
