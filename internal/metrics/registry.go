package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of metrics: the node-wide metric plane
// every instrumented subsystem resolves its counters from, and the unit an
// exposition endpoint (WritePrometheus) serves. Metrics are created on
// first lookup; looking a name up twice returns the same instance, so
// layers wired to the same registry share series. Experiments use
// throwaway registries the same way.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
	buckets     map[string]*BucketHistogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	bucketVecs  map[string]*BucketHistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		floatGauges: make(map[string]*FloatGauge),
		histograms:  make(map[string]*Histogram),
		buckets:     make(map[string]*BucketHistogram),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		bucketVecs:  make(map[string]*BucketHistogramVec),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.floatGauges[name]
	if !ok {
		g = &FloatGauge{}
		r.floatGauges[name] = g
	}
	return g
}

// Histogram returns the named exact histogram, creating it on first use.
// Exact histograms keep every sample: use them for bounded runs
// (experiments, tests); unbounded production series belong in
// BucketHistogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// BucketHistogram returns the named bounded histogram, creating it with
// the given bucket bounds on first use. Later lookups return the existing
// histogram regardless of the bounds argument, so call sites can all pass
// their preferred layout without coordinating.
func (r *Registry) BucketHistogram(name string, bounds []float64) *BucketHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.buckets[name]
	if !ok {
		h = NewBucketHistogram(bounds)
		r.buckets[name] = h
	}
	return h
}

// CounterVec returns the named labeled counter family, creating it on
// first use with the given label names.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{v: newVec(name, append([]string(nil), labels...), func() *Counter { return &Counter{} })}
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named labeled gauge family, creating it on first
// use with the given label names.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{v: newVec(name, append([]string(nil), labels...), func() *Gauge { return &Gauge{} })}
		r.gaugeVecs[name] = v
	}
	return v
}

// BucketHistogramVec returns the named labeled histogram family, creating
// it on first use with the given bucket bounds and label names.
func (r *Registry) BucketHistogramVec(name string, bounds []float64, labels ...string) *BucketHistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.bucketVecs[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		v = &BucketHistogramVec{
			v:      newVec(name, append([]string(nil), labels...), func() *BucketHistogram { return NewBucketHistogram(b) }),
			bounds: b,
		}
		r.bucketVecs[name] = v
	}
	return v
}

// Snapshot renders every metric as "name=value" lines, sorted by name.
// Histograms (both variants) contribute count, mean, and the p50/p95/max
// quantiles an operator or experiment table reads off directly.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s=%d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s=%d", name, g.Value()))
	}
	for name, g := range r.floatGauges {
		lines = append(lines, fmt.Sprintf("%s=%g", name, g.Value()))
	}
	addHist := func(name string, count int64, mean, p50, p95, max float64) {
		lines = append(lines, fmt.Sprintf("%s_count=%d", name, count))
		lines = append(lines, fmt.Sprintf("%s_mean=%.3f", name, mean))
		lines = append(lines, fmt.Sprintf("%s_p50=%.3f", name, p50))
		lines = append(lines, fmt.Sprintf("%s_p95=%.3f", name, p95))
		lines = append(lines, fmt.Sprintf("%s_max=%.3f", name, max))
	}
	for name, h := range r.histograms {
		h.mu.Lock()
		count, mean := len(h.samples), 0.0
		if count > 0 {
			var s float64
			for _, v := range h.samples {
				s += v
			}
			mean = s / float64(count)
		}
		p50, p95, max := h.quantileLocked(0.5), h.quantileLocked(0.95), h.quantileLocked(1)
		h.mu.Unlock()
		addHist(name, int64(count), mean, p50, p95, max)
	}
	for name, h := range r.buckets {
		addHist(name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
	}
	for name, v := range r.counterVecs {
		for key, c := range v.v.snapshot() {
			lines = append(lines, fmt.Sprintf("%s{%s}=%d", name, labelPairs(v.v.labels, key), c.Value()))
		}
	}
	for name, v := range r.gaugeVecs {
		for key, g := range v.v.snapshot() {
			lines = append(lines, fmt.Sprintf("%s{%s}=%d", name, labelPairs(v.v.labels, key), g.Value()))
		}
	}
	for name, v := range r.bucketVecs {
		for key, h := range v.v.snapshot() {
			base := fmt.Sprintf("%s{%s}", name, labelPairs(v.v.labels, key))
			addHist(base, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// labelPairs renders `l1="v1",l2="v2"` from label names and a joined key.
func labelPairs(labels []string, key string) string {
	values := strings.Split(key, "\x1f")
	parts := make([]string, 0, len(labels))
	for i, l := range labels {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		parts = append(parts, fmt.Sprintf("%s=\"%s\"", l, escapeLabel(v)))
	}
	return strings.Join(parts, ",")
}
