package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// Labeled metric vectors: one named family whose children are addressed by
// an ordered tuple of label values (e.g. protocol={push,pull,aggregate}).
// With is identity-stable — the same label values always return the same
// child — so hot paths resolve their child once at construction time and
// then pay only the child's atomic op per event, never a map lookup.

// labelKey joins label values into the child-map key. 0x1f (ASCII unit
// separator) cannot collide with printable label values.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// vec is the shared child-table machinery behind the typed vectors.
type vec[T any] struct {
	name   string
	labels []string
	mu     sync.RWMutex
	kids   map[string]*T
	mk     func() *T
}

func newVec[T any](name string, labels []string, mk func() *T) *vec[T] {
	return &vec[T]{name: name, labels: labels, kids: make(map[string]*T), mk: mk}
}

// with returns the child for the given label values, creating it on first
// use. Arity must match the declared label names.
func (v *vec[T]) with(values []string) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: vector %s has labels %v, got %d values",
			v.name, v.labels, len(values)))
	}
	key := labelKey(values)
	v.mu.RLock()
	kid, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return kid
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if kid, ok = v.kids[key]; ok {
		return kid
	}
	kid = v.mk()
	v.kids[key] = kid
	return kid
}

// snapshot returns the children keyed by their joined label values.
func (v *vec[T]) snapshot() map[string]*T {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]*T, len(v.kids))
	for k, kid := range v.kids {
		out[k] = kid
	}
	return out
}

// CounterVec is a family of counters addressed by label values.
type CounterVec struct {
	v *vec[Counter]
}

// With returns the counter for the given label values, creating it on
// first use; identical values always return the identical counter.
func (c *CounterVec) With(values ...string) *Counter { return c.v.with(values) }

// Labels returns the declared label names.
func (c *CounterVec) Labels() []string { return append([]string(nil), c.v.labels...) }

// GaugeVec is a family of gauges addressed by label values.
type GaugeVec struct {
	v *vec[Gauge]
}

// With returns the gauge for the given label values, creating it on first
// use; identical values always return the identical gauge.
func (g *GaugeVec) With(values ...string) *Gauge { return g.v.with(values) }

// Labels returns the declared label names.
func (g *GaugeVec) Labels() []string { return append([]string(nil), g.v.labels...) }

// BucketHistogramVec is a family of bounded bucket histograms addressed by
// label values; every child shares the vector's bucket layout.
type BucketHistogramVec struct {
	v      *vec[BucketHistogram]
	bounds []float64
}

// With returns the histogram for the given label values, creating it on
// first use; identical values always return the identical histogram.
func (h *BucketHistogramVec) With(values ...string) *BucketHistogram { return h.v.with(values) }

// Labels returns the declared label names.
func (h *BucketHistogramVec) Labels() []string { return append([]string(nil), h.v.labels...) }
