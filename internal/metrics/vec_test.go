package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVecIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("forwarded_total", "protocol")
	push1 := v.With("push")
	push2 := v.With("push")
	if push1 != push2 {
		t.Fatal("same labels must return the same counter")
	}
	if v.With("pull") == push1 {
		t.Fatal("different labels must return different counters")
	}
	push1.Add(3)
	if got := v.With("push").Value(); got != 3 {
		t.Fatalf("push counter = %d, want 3", got)
	}
	// The registry hands back the same vector for the same name.
	if r.CounterVec("forwarded_total", "protocol") != v {
		t.Fatal("registry must return the same vector for the same name")
	}
}

func TestVecArityPanics(t *testing.T) {
	v := NewRegistry().CounterVec("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label arity mismatch")
		}
	}()
	v.With("only-one")
}

func TestGaugeVec(t *testing.T) {
	v := NewRegistry().GaugeVec("loop_period", "loop")
	v.With("pull").Set(5)
	v.With("repair").Set(9)
	if v.With("pull").Value() != 5 || v.With("repair").Value() != 9 {
		t.Fatal("gauge vec children mixed up")
	}
	if got := v.Labels(); len(got) != 1 || got[0] != "loop" {
		t.Fatalf("labels = %v", got)
	}
}

func TestBucketHistogramVecSharedBounds(t *testing.T) {
	v := NewRegistry().BucketHistogramVec("sz", []float64{1, 2}, "dir")
	v.With("in").Observe(1.5)
	v.With("out").Observe(0.5)
	bIn, cIn := v.With("in").Buckets()
	bOut, _ := v.With("out").Buckets()
	if len(bIn) != 2 || len(bOut) != 2 {
		t.Fatalf("children must share the vector bounds, got %v / %v", bIn, bOut)
	}
	if cIn[1] != 1 {
		t.Fatalf("in counts = %v", cIn)
	}
}

func TestVecConcurrentWith(t *testing.T) {
	v := NewRegistry().CounterVec("c", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				v.With("a").Inc()
				v.With("b").Inc()
			}
		}()
	}
	wg.Wait()
	if v.With("a").Value() != 4000 || v.With("b").Value() != 4000 {
		t.Fatalf("a=%d b=%d, want 4000 each", v.With("a").Value(), v.With("b").Value())
	}
}

func TestSnapshotIncludesQuantilesAndLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	r.BucketHistogram("sz", []float64{10, 100}).Observe(42)
	r.CounterVec("fwd", "protocol").With("push").Add(7)
	r.FloatGauge("mass_err").Set(0.25)
	snap := r.Snapshot()
	for _, want := range []string{
		"lat_count=5",
		"lat_p50=3.000",
		"lat_p95=100.000",
		"lat_max=100.000",
		"sz_p50=100.000",
		`fwd{protocol="push"}=7`,
		"mass_err=0.25",
	} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
}
