// Package obs is the node-facing observability surface: it serves the
// metrics registry every middleware layer writes into as Prometheus text
// exposition on GET /metrics, and a JSON health/introspection document —
// node identity, live activity count, peer-view snapshot, and per-loop
// runner scheduling state — on GET /healthz.
//
// The endpoints can run standalone (Handler, behind a dedicated
// -metrics-addr binding) or be mounted in front of an existing HTTP handler
// (Mount), sharing the SOAP endpoint's listener so a node exposes exactly
// one port.
package obs
