package obs

import (
	"encoding/json"
	"net/http"
	"strings"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/core"
	"wsgossip/internal/delivery"
	"wsgossip/internal/metrics"
	"wsgossip/internal/probe"
)

// LoopState is the JSON form of one runner loop's introspection row.
type LoopState struct {
	Name string `json:"name"`
	// Period is the configured base interval; Current is the interval in
	// effect now (above Period while quiescence backoff is applied). Both
	// are Go duration strings.
	Period       string `json:"period"`
	Current      string `json:"current"`
	BackoffLevel int64  `json:"backoffLevel"`
	Fires        int64  `json:"fires"`
}

// Delivery is the /healthz view of the outbound delivery plane: the
// cross-peer totals plus one posture row per tracked peer (backlog,
// in-flight attempts, circuit state, remaining retry-after deferral).
type Delivery struct {
	Peers        int                  `json:"peers"`
	Queued       int                  `json:"queued"`
	Inflight     int                  `json:"inflight"`
	OpenCircuits int                  `json:"openCircuits"`
	Deferred     int                  `json:"deferred"`
	PerPeer      []delivery.PeerState `json:"perPeer,omitempty"`
}

// Probe is the /healthz view of the indirect-reachability prober: open
// adjudication rounds, links currently marked asymmetric-degraded (an
// indirect path confirmed the peer alive while the direct link failed),
// and the lifetime verdict counts.
type Probe struct {
	Pending       int      `json:"pending"`
	Degraded      []string `json:"degraded,omitempty"`
	Averted       int64    `json:"averted"`
	ConfirmedDown int64    `json:"confirmedDown"`
	NoHelpers     int64    `json:"noHelpers"`
}

// Cluster is the /healthz view of the continuous-query plane: one row per
// windowed query with the last closed epoch's stable estimate and the
// still-mixing live one. The frozen estimates are at most one window plus
// one exchange round stale.
type Cluster struct {
	Queries []aggregate.ClusterEstimate `json:"queries"`
}

// Health is the /healthz introspection document: who the node is, how busy
// it is, who it can see, what its round scheduler is doing, how its
// outbound delivery plane is coping, and what the cluster looks like
// through its continuous queries.
type Health struct {
	Node       string      `json:"node"`
	Role       string      `json:"role,omitempty"`
	Activities uint64      `json:"activities"`
	Peers      []string    `json:"peers,omitempty"`
	Loops      []LoopState `json:"loops,omitempty"`
	Delivery   *Delivery   `json:"delivery,omitempty"`
	Probe      *Probe      `json:"probe,omitempty"`
	Cluster    *Cluster    `json:"cluster,omitempty"`
}

// DeliveryFrom snapshots a delivery plane into its Health section. A nil
// plane (delivery disabled) yields nil, which the JSON encoding omits.
func DeliveryFrom(p *delivery.Plane) *Delivery {
	if p == nil {
		return nil
	}
	st := p.Stats()
	return &Delivery{
		Peers:        st.Peers,
		Queued:       st.Queued,
		Inflight:     st.Inflight,
		OpenCircuits: st.OpenCircuits,
		Deferred:     st.Deferred,
		PerPeer:      p.States(),
	}
}

// ProbeFrom snapshots a Prober into its Health section. A nil prober
// (indirect probing disabled) yields nil, which the JSON encoding omits.
func ProbeFrom(p *probe.Prober) *Probe {
	if p == nil {
		return nil
	}
	st := p.Stats()
	return &Probe{
		Pending:       st.Pending,
		Degraded:      st.Degraded,
		Averted:       st.Averted,
		ConfirmedDown: st.ConfirmedDown,
		NoHelpers:     st.NoHelpers,
	}
}

// ClusterFrom snapshots a continuous-query Window into its Health section.
// A nil window (continuous queries disabled) yields nil, which the JSON
// encoding omits.
func ClusterFrom(w *aggregate.Window) *Cluster {
	if w == nil {
		return nil
	}
	return &Cluster{Queries: w.Estimates()}
}

// LoopsFrom converts a Runner's introspection rows to their JSON form.
func LoopsFrom(states []core.LoopState) []LoopState {
	out := make([]LoopState, len(states))
	for i, st := range states {
		out[i] = LoopState{
			Name:         st.Name,
			Period:       st.Period.String(),
			Current:      st.Current.String(),
			BackoffLevel: st.BackoffLevel,
			Fires:        st.Fires,
		}
	}
	return out
}

// Handler serves GET /metrics as Prometheus 0.0.4 text exposition from reg
// and GET /healthz as the JSON document health returns. health may be nil,
// in which case /healthz answers an empty document.
func Handler(reg *metrics.Registry, health func() Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var doc Health
		if health != nil {
			doc = health()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	return mux
}

// Mount attaches the observability endpoints beside an existing handler:
// /metrics and /healthz are answered here, everything else falls through to
// app. This is how a node serves scrapes on the same binding its SOAP
// endpoint listens on.
func Mount(app http.Handler, reg *metrics.Registry, health func() Health) http.Handler {
	o := Handler(reg, health)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" || r.URL.Path == "/healthz" ||
			strings.HasPrefix(r.URL.Path, "/metrics/") || strings.HasPrefix(r.URL.Path, "/healthz/") {
			o.ServeHTTP(w, r)
			return
		}
		app.ServeHTTP(w, r)
	})
}
