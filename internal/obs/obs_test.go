package obs

import (
	"context"
	"encoding/json"
	"encoding/xml"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fmt"
	"math"
	"math/rand"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/clock"
	"wsgossip/internal/core"
	"wsgossip/internal/delivery"
	"wsgossip/internal/metrics"
	"wsgossip/internal/probe"
	"wsgossip/internal/soap"
)

func testHealth() Health {
	return Health{
		Node:       "http://node-a/",
		Role:       "disseminator",
		Activities: 3,
		Peers:      []string{"http://node-b/"},
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("gossip_received_total").Add(7)
	srv := httptest.NewServer(Handler(reg, testHealth))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q, want Prometheus 0.0.4 text", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "gossip_received_total 7") {
		t.Fatalf("exposition missing counter:\n%s", body)
	}
}

func TestHealthEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := httptest.NewServer(Handler(reg, testHealth))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var doc Health
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Node != "http://node-a/" || doc.Role != "disseminator" || doc.Activities != 3 {
		t.Fatalf("health document = %+v", doc)
	}
	if len(doc.Peers) != 1 || doc.Peers[0] != "http://node-b/" {
		t.Fatalf("peers = %v", doc.Peers)
	}
}

func TestMethodFiltering(t *testing.T) {
	srv := httptest.NewServer(Handler(metrics.NewRegistry(), nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/healthz"} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s status = %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestMountFallsThrough(t *testing.T) {
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	reg := metrics.NewRegistry()
	srv := httptest.NewServer(Mount(app, reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics through Mount status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/anything-else")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("fallthrough status = %d, want the app's 418", resp.StatusCode)
	}
}

// TestLoopsFromRunner checks the health document carries real runner
// introspection.
func TestLoopsFromRunner(t *testing.T) {
	v := clock.NewVirtual()
	r, err := core.NewRunner(core.RunnerConfig{
		Clock: v,
		Loops: []core.Loop{{
			Name:   "round",
			Period: 10 * time.Millisecond,
			Tick:   func(context.Context) {},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	v.Advance(50 * time.Millisecond)

	loops := LoopsFrom(r.LoopStates())
	if len(loops) != 1 || loops[0].Name != "round" || loops[0].Period != "10ms" {
		t.Fatalf("loops = %+v", loops)
	}
	if loops[0].Fires == 0 {
		t.Fatal("fires not carried through")
	}
}

// okCaller acknowledges every send; it exists to give the delivery plane a
// peer row to report.
type okCaller struct{}

func (okCaller) Call(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
	return nil, nil
}
func (okCaller) Send(context.Context, string, *soap.Envelope) error { return nil }

// TestDeliverySection checks the health document carries real delivery-plane
// posture end to end through the JSON encoding.
func TestDeliverySection(t *testing.T) {
	if DeliveryFrom(nil) != nil {
		t.Fatal("nil plane must yield a nil (omitted) delivery section")
	}
	v := clock.NewVirtual()
	p := delivery.NewPlane(delivery.Config{Caller: okCaller{}, Clock: v})
	defer p.Close()
	env := soap.NewEnvelope()
	if err := env.SetBody(struct {
		XMLName xml.Name `xml:"urn:t x"`
	}{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(context.Background(), "urn:peer", env); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(Handler(metrics.NewRegistry(), func() Health {
		return Health{Node: "n", Delivery: DeliveryFrom(p)}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc Health
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Delivery == nil {
		t.Fatal("delivery section missing")
	}
	if doc.Delivery.Peers != 1 || len(doc.Delivery.PerPeer) != 1 {
		t.Fatalf("delivery = %+v", doc.Delivery)
	}
	pp := doc.Delivery.PerPeer[0]
	if pp.Addr != "urn:peer" || pp.Breaker != "closed" {
		t.Fatalf("per-peer row = %+v", pp)
	}
}

// TestProbeSection checks the health document carries the indirect-probe
// posture end to end through the JSON encoding.
func TestProbeSection(t *testing.T) {
	if ProbeFrom(nil) != nil {
		t.Fatal("nil prober must yield a nil (omitted) probe section")
	}
	var downs []string
	pr := probe.New(probe.Config{
		Self:   "urn:self",
		Caller: okCaller{},
		Clock:  clock.NewVirtual(),
		OnDown: func(addr string) { downs = append(downs, addr) },
	})
	// No peer provider: the round has no helpers, so OnDown fires
	// immediately and the round lands in the NoHelpers bucket.
	pr.Confirm("urn:peer")

	srv := httptest.NewServer(Handler(metrics.NewRegistry(), func() Health {
		return Health{Node: "n", Probe: ProbeFrom(pr)}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc Health
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Probe == nil {
		t.Fatal("probe section missing")
	}
	if doc.Probe.NoHelpers != 1 || doc.Probe.ConfirmedDown != 0 || doc.Probe.Pending != 0 {
		t.Fatalf("probe = %+v", doc.Probe)
	}
	if len(downs) != 1 || downs[0] != "urn:peer" {
		t.Fatalf("downs = %v", downs)
	}
}

// TestClusterSection checks the health document carries the continuous-query
// estimates end to end through the JSON encoding: a three-node continuous
// count over the in-memory bus, run past one epoch boundary so the frozen
// estimate is populated.
func TestClusterSection(t *testing.T) {
	if ClusterFrom(nil) != nil {
		t.Fatal("nil window must yield a nil (omitted) cluster section")
	}
	ctx := context.Background()
	bus := soap.NewMemBus()
	clk := clock.NewVirtual()
	coord := core.NewCoordinator(core.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(5)),
	})
	bus.Register("mem://coordinator", coord.Handler())
	var services []*aggregate.Service
	for i := 0; i < 3; i++ {
		addr := fmt.Sprintf("mem://obs-agg%d", i)
		svc, err := aggregate.NewService(aggregate.ServiceConfig{
			Address: addr,
			Caller:  bus,
			Clock:   clk,
			Values:  map[string]func() float64{"ones": func() float64 { return 1 }},
			RNG:     rand.New(rand.NewSource(100 + int64(i))),
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, svc.Handler())
		services = append(services, svc)
		if err := core.SubscribeClient(ctx, bus, "mem://coordinator", addr,
			core.RoleDisseminator, core.ProtocolAggregate); err != nil {
			t.Fatal(err)
		}
	}
	q, err := aggregate.NewQuerier(aggregate.QuerierConfig{
		Address:    "mem://obs-querier",
		Caller:     bus,
		Activation: "mem://coordinator",
		Clock:      clk,
		Values:     map[string]func() float64{"ones": func() float64 { return 1 }},
		RNG:        rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://obs-querier", q.Handler())
	if err := core.SubscribeClient(ctx, bus, "mem://coordinator", "mem://obs-querier",
		core.RoleDisseminator, core.ProtocolAggregate); err != nil {
		t.Fatal(err)
	}
	window, err := aggregate.NewWindow(aggregate.WindowConfig{
		Querier: q,
		Window:  200 * time.Millisecond,
		Queries: []aggregate.ContinuousQuery{{Name: "ones", Func: aggregate.FuncCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Run past the first epoch boundary so a frozen estimate exists.
	for i := 0; i < 25; i++ {
		clk.Advance(20 * time.Millisecond)
		for _, svc := range services {
			svc.Tick(ctx)
		}
		window.Tick(ctx)
	}

	srv := httptest.NewServer(Handler(metrics.NewRegistry(), func() Health {
		return Health{Node: "n", Cluster: ClusterFrom(window)}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc Health
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cluster == nil || len(doc.Cluster.Queries) != 1 {
		t.Fatalf("cluster section = %+v", doc.Cluster)
	}
	ce := doc.Cluster.Queries[0]
	if ce.Query != "ones" || ce.Function != "count" {
		t.Fatalf("query row = %+v", ce)
	}
	if !ce.Defined || ce.FrozenEpoch == 0 {
		t.Fatalf("no frozen estimate in health doc: %+v", ce)
	}
	// 3 services + the querier's own anchor participant.
	if math.Abs(ce.Estimate-4) > 0.05 {
		t.Fatalf("cluster count = %v, want about 4", ce.Estimate)
	}
}
