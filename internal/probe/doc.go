// Package probe implements SWIM-style indirect reachability confirmation,
// the runtime's answer to asymmetric link failures.
//
// A delivery circuit opening proves only that WE cannot reach the peer —
// on a one-way-dead link the peer is healthy and everyone else can talk to
// it. Escalating straight to membership.Suspect would evict a live node
// from every sampler view. Instead, the Prober interposes: when a circuit
// opens it asks K other peers to ping the target on our behalf (ping-req),
// each helper probes directly (ping), forwards the target's answer
// (ping-ack) back to the origin (ping-req-ack), and a single positive
// report cancels the suspicion and marks the link asymmetric-degraded. No
// report within the timeout concedes the suspicion and OnDown fires.
//
// The protocol is four one-way SOAP actions under urn:wsgossip:probe, sent
// over the RAW caller rather than the delivery plane, so probe traffic is
// subject to the same link faults as the payload traffic it adjudicates —
// and never consults the breaker it exists to second-guess. Nonces are
// deterministic ("self#seq"), timers ride clock.Clock, and helper sampling
// uses the caller-seeded RNG, so whole confirmation rounds replay exactly
// under clock.Virtual.
//
// Exported metrics: delivery_indirect_probes_total{result},
// membership_suspicions_averted_total, probe_messages_total{type}.
package probe
