package probe

import (
	"context"
	"encoding/xml"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/gossip"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
)

// Wire actions of the indirect-probe protocol. All four are lightweight
// one-way exchanges; loss in either direction degrades to a timeout.
const (
	// ActionPingReq asks a helper peer to probe a target on the origin's
	// behalf.
	ActionPingReq = "urn:wsgossip:probe:ping-req"
	// ActionPing is a helper's direct liveness probe at the target.
	ActionPing = "urn:wsgossip:probe:ping"
	// ActionPingAck is the target's answer to a ping.
	ActionPingAck = "urn:wsgossip:probe:ping-ack"
	// ActionPingReqAck is a helper's positive report back to the origin:
	// the target answered, the suspicion is refuted.
	ActionPingReqAck = "urn:wsgossip:probe:ping-req-ack"
)

// Round results, the label values of delivery_indirect_probes_total.
const (
	// ResultAverted means a helper confirmed the target reachable.
	ResultAverted = "averted"
	// ResultTimeout means no helper confirmed within the window.
	ResultTimeout = "timeout"
	// ResultNoHelpers means no candidate helpers existed; the suspicion
	// proceeds directly, as it did before indirect probing.
	ResultNoHelpers = "no_helpers"
)

// Config parameterizes a Prober. Self, Caller, and Clock are required.
type Config struct {
	// Self is the local endpoint address, stamped into probe messages so
	// replies route back.
	Self string
	// Caller sends probe traffic. Wire the RAW binding here, not the
	// delivery plane: probes must bypass the very circuit whose opening
	// triggered them, and helper pings must observe the real link.
	Caller soap.Caller
	// Clock arms the confirmation timeout; under clock.Virtual the whole
	// protocol is deterministic.
	Clock clock.Clock
	// Peers supplies helper candidates — normally the membership service's
	// live view. Nil means no helpers are ever available: every Confirm
	// falls through to OnDown immediately (the pre-probe behaviour).
	Peers gossip.PeerProvider
	// K caps how many helpers one confirmation round enlists; <= 0 asks
	// every available candidate.
	K int
	// Timeout is how long the origin waits for a positive indirect ack
	// before conceding the suspicion. Default 2s.
	Timeout time.Duration
	// RNG drives helper sampling. Nil falls back to a fixed seed.
	RNG *rand.Rand
	// Metrics receives delivery_indirect_probes_total,
	// membership_suspicions_averted_total, and probe_messages_total.
	// Nil uses a private registry.
	Metrics *metrics.Registry
	// OnDown runs (outside the prober's lock) when a confirmation round
	// ends without a positive ack — the point to call membership.Suspect.
	OnDown func(target string)
	// OnAverted, when set, runs (outside the lock) when an indirect ack
	// cancels a suspicion.
	OnAverted func(target string)
}

// proberMetrics is the prober's registry-resolved series.
type proberMetrics struct {
	rounds  *metrics.CounterVec // delivery_indirect_probes_total{result}
	averted *metrics.Counter    // membership_suspicions_averted_total
	msgs    *metrics.CounterVec // probe_messages_total{type}
}

// Prober is the SWIM-style indirect reachability confirmer: when a
// delivery circuit opens for a peer, Confirm asks K other peers to ping
// the target on our behalf before the failure is escalated to membership.
// A positive indirect ack means the target is alive but our link to it is
// broken — an asymmetric failure — so the suspicion is averted and the
// link recorded as degraded instead of the healthy peer being evicted
// from every sampler.
//
// All four wire actions are served by the same Prober, so every node that
// registers one can originate confirmations, relay pings, and answer them.
type Prober struct {
	cfg Config
	m   proberMetrics

	mu       sync.Mutex
	rng      *rand.Rand
	seq      uint64
	pending  map[string]*pendingConfirm
	relayed  map[string]relayEntry
	degraded map[string]bool
}

// pendingConfirm is one open confirmation round at the origin.
type pendingConfirm struct {
	nonce string
	stop  func() bool
}

// relayEntry is one forwarded ping awaiting its ack at a helper.
type relayEntry struct {
	origin string
	target string
	nonce  string // the origin's round nonce, echoed back on success
}

// New returns a Prober for cfg.
func New(cfg Config) *Prober {
	if cfg.Self == "" {
		panic("probe: Config.Self is required")
	}
	if cfg.Caller == nil {
		panic("probe: Config.Caller is required")
	}
	if cfg.Clock == nil {
		panic("probe: Config.Clock is required")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Prober{
		cfg: cfg,
		m: proberMetrics{
			rounds:  reg.CounterVec("delivery_indirect_probes_total", "result"),
			averted: reg.Counter("membership_suspicions_averted_total"),
			msgs:    reg.CounterVec("probe_messages_total", "type"),
		},
		rng:      rng,
		pending:  make(map[string]*pendingConfirm),
		relayed:  make(map[string]relayEntry),
		degraded: make(map[string]bool),
	}
}

// RegisterActions installs the four probe actions on the node's SOAP
// dispatcher.
func (p *Prober) RegisterActions(d *soap.Dispatcher) {
	h := soap.HandlerFunc(p.handleSOAP)
	d.Register(ActionPingReq, h)
	d.Register(ActionPing, h)
	d.Register(ActionPingAck, h)
	d.Register(ActionPingReqAck, h)
}

// SOAP bodies. The origin/sender address rides in the body (like the
// membership envelope's From) because one-way sends have no back-channel.
type pingReqBody struct {
	XMLName xml.Name `xml:"urn:wsgossip:probe PingReq"`
	Origin  string   `xml:"Origin"`
	Target  string   `xml:"Target"`
	Nonce   string   `xml:"Nonce"`
}

type pingBody struct {
	XMLName xml.Name `xml:"urn:wsgossip:probe Ping"`
	From    string   `xml:"From"`
	Nonce   string   `xml:"Nonce"`
}

type pingAckBody struct {
	XMLName xml.Name `xml:"urn:wsgossip:probe PingAck"`
	From    string   `xml:"From"`
	Nonce   string   `xml:"Nonce"`
}

type pingReqAckBody struct {
	XMLName xml.Name `xml:"urn:wsgossip:probe PingReqAck"`
	From    string   `xml:"From"`
	Target  string   `xml:"Target"`
	Nonce   string   `xml:"Nonce"`
}

// Confirm opens an indirect confirmation round for target: K helper peers
// are asked to ping it on our behalf. If any positive ack arrives within
// the timeout the suspicion is averted and the target marked degraded;
// otherwise OnDown fires. A round already open for target is left to run —
// repeated circuit openings do not stack suspicions. Confirm returns
// immediately; resolution happens on the clock's firing goroutine.
func (p *Prober) Confirm(target string) {
	p.mu.Lock()
	if _, open := p.pending[target]; open {
		p.mu.Unlock()
		return
	}
	helpers := p.helpersLocked(target)
	if len(helpers) == 0 {
		p.mu.Unlock()
		p.m.rounds.With(ResultNoHelpers).Inc()
		if p.cfg.OnDown != nil {
			p.cfg.OnDown(target)
		}
		return
	}
	p.seq++
	nonce := fmt.Sprintf("%s#%d", p.cfg.Self, p.seq)
	pc := &pendingConfirm{nonce: nonce}
	p.pending[target] = pc
	pc.stop = p.cfg.Clock.AfterFunc(p.cfg.Timeout, func() { p.expire(target, nonce) })
	p.mu.Unlock()
	for _, h := range helpers {
		p.send(ActionPingReq, h, pingReqBody{Origin: p.cfg.Self, Target: target, Nonce: nonce}, "ping_req")
	}
}

// helpersLocked samples up to K helper candidates, excluding self and the
// target.
func (p *Prober) helpersLocked(target string) []string {
	if p.cfg.Peers == nil {
		return nil
	}
	cands := p.cfg.Peers.SelectPeers(p.rng, -1, p.cfg.Self)
	out := cands[:0]
	for _, c := range cands {
		if c != target && c != p.cfg.Self {
			out = append(out, c)
		}
	}
	if p.cfg.K > 0 && len(out) > p.cfg.K {
		out = out[:p.cfg.K] // SelectPeers shuffles, so a prefix is uniform
	}
	return out
}

// expire concedes a confirmation round: no helper vouched for the target
// within the window.
func (p *Prober) expire(target, nonce string) {
	p.mu.Lock()
	pc := p.pending[target]
	if pc == nil || pc.nonce != nonce {
		p.mu.Unlock()
		return
	}
	delete(p.pending, target)
	p.mu.Unlock()
	p.m.rounds.With(ResultTimeout).Inc()
	if p.cfg.OnDown != nil {
		p.cfg.OnDown(target)
	}
}

// handleSOAP serves all four probe actions.
func (p *Prober) handleSOAP(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	switch req.Addressing().Action {
	case ActionPingReq:
		var body pingReqBody
		if err := req.Envelope.DecodeBody(&body); err != nil {
			return nil, soap.NewFault(soap.CodeSender, "malformed ping-req: "+err.Error())
		}
		p.relayPing(body)
	case ActionPing:
		var body pingBody
		if err := req.Envelope.DecodeBody(&body); err != nil {
			return nil, soap.NewFault(soap.CodeSender, "malformed ping: "+err.Error())
		}
		p.send(ActionPingAck, body.From, pingAckBody{From: p.cfg.Self, Nonce: body.Nonce}, "ping_ack")
	case ActionPingAck:
		var body pingAckBody
		if err := req.Envelope.DecodeBody(&body); err != nil {
			return nil, soap.NewFault(soap.CodeSender, "malformed ping-ack: "+err.Error())
		}
		p.reportBack(body)
	case ActionPingReqAck:
		var body pingReqAckBody
		if err := req.Envelope.DecodeBody(&body); err != nil {
			return nil, soap.NewFault(soap.CodeSender, "malformed ping-req-ack: "+err.Error())
		}
		p.avert(body)
	}
	return nil, nil
}

// relayPing serves the helper half: forward a direct ping to the target
// and remember the round so the target's ack can be reported back.
func (p *Prober) relayPing(body pingReqBody) {
	p.mu.Lock()
	p.seq++
	relayNonce := fmt.Sprintf("%s*%d", p.cfg.Self, p.seq)
	p.relayed[relayNonce] = relayEntry{origin: body.Origin, target: body.Target, nonce: body.Nonce}
	p.cfg.Clock.AfterFunc(p.cfg.Timeout, func() {
		p.mu.Lock()
		delete(p.relayed, relayNonce)
		p.mu.Unlock()
	})
	p.mu.Unlock()
	p.send(ActionPing, body.Target, pingBody{From: p.cfg.Self, Nonce: relayNonce}, "ping")
}

// reportBack serves the helper's second half: the target answered, tell
// the origin.
func (p *Prober) reportBack(body pingAckBody) {
	p.mu.Lock()
	e, ok := p.relayed[body.Nonce]
	if ok {
		delete(p.relayed, body.Nonce)
	}
	p.mu.Unlock()
	if !ok {
		return
	}
	p.send(ActionPingReqAck, e.origin, pingReqAckBody{From: p.cfg.Self, Target: e.target, Nonce: e.nonce}, "ping_req_ack")
}

// avert resolves an open round positively: the target is reachable via the
// helper, so the failure is our link, not the peer.
func (p *Prober) avert(body pingReqAckBody) {
	p.mu.Lock()
	pc := p.pending[body.Target]
	if pc == nil || pc.nonce != body.Nonce {
		p.mu.Unlock()
		return
	}
	delete(p.pending, body.Target)
	p.degraded[body.Target] = true
	stop := pc.stop
	p.mu.Unlock()
	if stop != nil {
		stop()
	}
	p.m.rounds.With(ResultAverted).Inc()
	p.m.averted.Inc()
	if p.cfg.OnAverted != nil {
		p.cfg.OnAverted(body.Target)
	}
}

// send builds and fires one one-way probe message, counting it by type.
// Send errors are swallowed: a refused ping is exactly the negative signal
// the protocol's timeouts encode.
func (p *Prober) send(action, to string, body any, typ string) {
	p.m.msgs.With(typ).Inc()
	env := soap.NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To:        to,
		Action:    action,
		MessageID: wsa.NewMessageID(),
	}); err != nil {
		return
	}
	if err := env.SetBody(body); err != nil {
		return
	}
	_ = p.cfg.Caller.Send(context.Background(), to, env)
}

// ClearDegraded drops target from the degraded-link set — wire it to the
// delivery plane's OnPeerUp so a recovered direct path clears the flag.
func (p *Prober) ClearDegraded(target string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.degraded, target)
}

// Degraded returns the sorted peers whose direct link is marked
// asymmetric-degraded: confirmed alive via helpers while our own sends
// fail.
func (p *Prober) Degraded() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.degraded))
	for a := range p.degraded {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// IsDegraded reports whether target is currently marked degraded.
func (p *Prober) IsDegraded(target string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degraded[target]
}

// Stats is the prober's health-endpoint summary.
type Stats struct {
	// Pending is the number of confirmation rounds currently open.
	Pending int `json:"pending"`
	// Degraded lists peers with an asymmetric-degraded direct link.
	Degraded []string `json:"degraded,omitempty"`
	// Averted counts suspicions cancelled by a positive indirect ack.
	Averted int64 `json:"averted"`
	// ConfirmedDown counts rounds that timed out and escalated to OnDown.
	ConfirmedDown int64 `json:"confirmed_down"`
	// NoHelpers counts rounds that had no helper candidates to ask.
	NoHelpers int64 `json:"no_helpers"`
}

// Stats summarizes the prober for /healthz.
func (p *Prober) Stats() Stats {
	st := Stats{
		Degraded:      p.Degraded(),
		Averted:       p.m.averted.Value(),
		ConfirmedDown: p.m.rounds.With(ResultTimeout).Value(),
		NoHelpers:     p.m.rounds.With(ResultNoHelpers).Value(),
	}
	p.mu.Lock()
	st.Pending = len(p.pending)
	p.mu.Unlock()
	return st
}
