package probe

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/gossip"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
)

// probeNet is a synchronous in-memory fabric: Send dispatches straight into
// the destination's dispatcher, with directional link cuts.
type probeNet struct {
	mu    sync.Mutex
	nodes map[string]*soap.Dispatcher
	cut   map[string]bool // "from|to"
}

func newProbeNet() *probeNet {
	return &probeNet{nodes: map[string]*soap.Dispatcher{}, cut: map[string]bool{}}
}

func (n *probeNet) block(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[from+"|"+to] = true
}

type netCaller struct {
	n    *probeNet
	from string
}

func (c *netCaller) Call(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
	return nil, errors.New("probe test: no request-response traffic expected")
}

func (c *netCaller) Send(ctx context.Context, to string, env *soap.Envelope) error {
	c.n.mu.Lock()
	blocked := c.n.cut[c.from+"|"+to]
	d := c.n.nodes[to]
	c.n.mu.Unlock()
	if blocked || d == nil {
		return fmt.Errorf("probe test: connection refused: %s -> %s", c.from, to)
	}
	_, err := d.HandleSOAP(ctx, &soap.Request{Envelope: env, Remote: c.from})
	return err
}

// probeRig is one node: a prober with its dispatcher on the shared net.
type probeRig struct {
	p    *Prober
	reg  *metrics.Registry
	down []string
	avrt []string
}

func newRig(t *testing.T, net *probeNet, clk clock.Clock, self string, peers []string, k int) *probeRig {
	t.Helper()
	rig := &probeRig{reg: metrics.NewRegistry()}
	var pp gossip.PeerProvider
	if peers != nil {
		pp = gossip.NewStaticPeers(peers)
	}
	rig.p = New(Config{
		Self:      self,
		Caller:    &netCaller{n: net, from: self},
		Clock:     clk,
		Peers:     pp,
		K:         k,
		Timeout:   2 * time.Second,
		RNG:       rand.New(rand.NewSource(int64(len(self)))),
		Metrics:   rig.reg,
		OnDown:    func(a string) { rig.down = append(rig.down, a) },
		OnAverted: func(a string) { rig.avrt = append(rig.avrt, a) },
	})
	d := soap.NewDispatcher()
	rig.p.RegisterActions(d)
	net.mu.Lock()
	net.nodes[self] = d
	net.mu.Unlock()
	return rig
}

// TestConfirmAverted: the direct link a->b is dead but helpers can reach b,
// so the round resolves positively, marks b degraded, and never fires
// OnDown — not even when the timeout window later elapses.
func TestConfirmAverted(t *testing.T) {
	net := newProbeNet()
	clk := clock.NewVirtual()
	all := []string{"a", "b", "h1", "h2"}
	a := newRig(t, net, clk, "a", all, 0)
	newRig(t, net, clk, "b", all, 0)
	newRig(t, net, clk, "h1", all, 0)
	newRig(t, net, clk, "h2", all, 0)
	net.block("a", "b") // one-way: only our outbound path is dead

	a.p.Confirm("b")

	if len(a.avrt) != 1 || a.avrt[0] != "b" {
		t.Fatalf("OnAverted calls = %v, want [b]", a.avrt)
	}
	if !a.p.IsDegraded("b") {
		t.Fatal("b not marked degraded")
	}
	if got := a.reg.Counter("membership_suspicions_averted_total").Value(); got != 1 {
		t.Fatalf("averted counter = %d, want 1", got)
	}
	if got := a.reg.CounterVec("delivery_indirect_probes_total", "result").With(ResultAverted).Value(); got != 1 {
		t.Fatalf("averted rounds = %d, want 1", got)
	}
	// The stopped timeout must not resurrect the suspicion.
	clk.Advance(5 * time.Second)
	if len(a.down) != 0 {
		t.Fatalf("OnDown fired after averted round: %v", a.down)
	}
	st := a.p.Stats()
	if st.Pending != 0 || st.Averted != 1 || len(st.Degraded) != 1 {
		t.Fatalf("stats = %+v", st)
	}

	a.p.ClearDegraded("b")
	if a.p.IsDegraded("b") {
		t.Fatal("ClearDegraded left b degraded")
	}
}

// TestConfirmTimeout: nobody can reach b, so the round times out and
// escalates to OnDown exactly once.
func TestConfirmTimeout(t *testing.T) {
	net := newProbeNet()
	clk := clock.NewVirtual()
	all := []string{"a", "b", "h1", "h2"}
	a := newRig(t, net, clk, "a", all, 0)
	newRig(t, net, clk, "b", all, 0)
	newRig(t, net, clk, "h1", all, 0)
	newRig(t, net, clk, "h2", all, 0)
	net.block("a", "b")
	net.block("h1", "b")
	net.block("h2", "b")

	a.p.Confirm("b")
	if len(a.down) != 0 {
		t.Fatalf("OnDown fired before the timeout: %v", a.down)
	}
	clk.Advance(2 * time.Second)
	if len(a.down) != 1 || a.down[0] != "b" {
		t.Fatalf("OnDown calls = %v, want [b]", a.down)
	}
	if a.p.IsDegraded("b") {
		t.Fatal("timed-out target marked degraded")
	}
	if got := a.reg.CounterVec("delivery_indirect_probes_total", "result").With(ResultTimeout).Value(); got != 1 {
		t.Fatalf("timeout rounds = %d, want 1", got)
	}
	// A late positive for the dead round must be ignored: re-run with the
	// link healed and confirm a fresh round still works.
	net.mu.Lock()
	delete(net.cut, "h1|b")
	delete(net.cut, "h2|b")
	net.mu.Unlock()
	a.p.Confirm("b")
	if len(a.avrt) != 1 {
		t.Fatalf("fresh round after timeout: averted = %v", a.avrt)
	}
}

// TestConfirmNoHelpers: with no usable helper candidates the suspicion
// proceeds immediately, preserving pre-probe behaviour.
func TestConfirmNoHelpers(t *testing.T) {
	net := newProbeNet()
	clk := clock.NewVirtual()
	// Peer view contains only self and the target — no third parties.
	a := newRig(t, net, clk, "a", []string{"a", "b"}, 0)
	newRig(t, net, clk, "b", []string{"a", "b"}, 0)

	a.p.Confirm("b")
	if len(a.down) != 1 || a.down[0] != "b" {
		t.Fatalf("OnDown calls = %v, want [b]", a.down)
	}
	if got := a.reg.CounterVec("delivery_indirect_probes_total", "result").With(ResultNoHelpers).Value(); got != 1 {
		t.Fatalf("no_helpers rounds = %d, want 1", got)
	}

	// Nil provider behaves the same.
	c := newRig(t, net, clk, "c", nil, 0)
	c.p.Confirm("b")
	if len(c.down) != 1 {
		t.Fatalf("nil-provider OnDown calls = %v", c.down)
	}
}

// TestConfirmDedupAndK: repeated Confirms while a round is open do not
// stack, and K caps the helper fan-out.
func TestConfirmDedupAndK(t *testing.T) {
	net := newProbeNet()
	clk := clock.NewVirtual()
	all := []string{"a", "b", "h1", "h2", "h3"}
	a := newRig(t, net, clk, "a", all, 1)
	newRig(t, net, clk, "b", all, 0)
	for _, h := range []string{"h1", "h2", "h3"} {
		newRig(t, net, clk, h, all, 0)
	}
	net.block("a", "b")
	net.block("h1", "b")
	net.block("h2", "b")
	net.block("h3", "b")

	a.p.Confirm("b")
	a.p.Confirm("b") // open round: no second fan-out
	msgs := a.reg.CounterVec("probe_messages_total", "type")
	if got := msgs.With("ping_req").Value(); got != 1 {
		t.Fatalf("ping_req count = %d, want 1 (K=1, deduped)", got)
	}
	if st := a.p.Stats(); st.Pending != 1 {
		t.Fatalf("pending = %d, want 1", st.Pending)
	}
	clk.Advance(2 * time.Second)
	if len(a.down) != 1 {
		t.Fatalf("OnDown calls = %v, want exactly one", a.down)
	}
}
