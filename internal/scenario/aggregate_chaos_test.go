// Chaos scenarios for the continuous aggregation plane: churn mid-window
// and sustained link loss, with exact fault↔metric accounting. Both run on
// the virtual clock from fixed seeds, so they are bit-identical under
// -race -count=5 — determinism is part of what they assert.
package scenario

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/faults"
	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

const (
	aggChaosWindow = 500 * time.Millisecond
	aggChaosTick   = 20 * time.Millisecond
)

// liveSet is the membership plane's stand-in: a peer set the harness
// updates as nodes crash and join. Continuous aggregation re-tracks N
// within one epoch *given current membership* — pruning dead peers is the
// failure detector's job, not push-sum's. (Within a window, transiently
// unresponsive targets are still handled by the exchange's own suspicion.)
type liveSet struct{ addrs []string }

func (m *liveSet) SelectPeers(rng *rand.Rand, n int, exclude string) []string {
	return gossip.SamplePeers(rng, m.addrs, n, exclude)
}

// addAggNode builds one windowed count node on net and binds it. peers
// should span the full eventual membership: sends to addresses that do not
// exist yet fail synchronously, which the exchange recovers from.
func addAggNode(t *testing.T, net *simnet.Network, peers gossip.PeerProvider, addr string, root bool, seed int64) *aggregate.SimNode {
	t.Helper()
	node, err := aggregate.NewSimNode(aggregate.SimNodeConfig{
		Endpoint: net.Node(addr),
		Peers:    peers,
		Fanout:   2,
		TaskID:   "chaos",
		Func:     aggregate.FuncCount,
		Value:    1,
		Root:     root,
		RNG:      rand.New(rand.NewSource(seed)),
		Window:   aggChaosWindow,
		Clock:    net,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux()
	node.Register(mux)
	mux.Bind(net.Node(addr))
	return node
}

// TestAggregateChaosChurnMidWindow crashes 25% of a 16-node cluster and
// joins two fresh nodes in the middle of an epoch window. The epoch in
// progress is polluted by construction; the contract is that the FIRST full
// epoch after the churn already tracks the new true N on every survivor —
// re-tracking within one epoch boundary, with joiners' contributions
// deferred to that boundary rather than bleeding into the torn window.
func TestAggregateChaosChurnMidWindow(t *testing.T) {
	const (
		seed    = 47
		initial = 16
		crashes = 4 // 25% of initial
		joins   = 2
	)
	net := simnet.New(simnet.DefaultConfig(seed))
	addrs := make([]string, initial+joins)
	for i := range addrs {
		addrs[i] = consAddr(i)
	}
	// Membership starts as the sixteen initial nodes; the churn event
	// rewrites it, exactly as the failure-detector plane would.
	peers := &liveSet{addrs: addrs[:initial]}
	nodes := make([]*aggregate.SimNode, 0, initial+joins)
	for i := 0; i < initial; i++ {
		nodes = append(nodes, addAggNode(t, net, peers, addrs[i], i == 0, seed*6151+int64(i)))
	}
	down := make(map[string]bool)
	ctx := context.Background()

	tick := func() {
		net.RunFor(aggChaosTick)
		for i, node := range nodes {
			if down[addrs[i]] {
				continue
			}
			node.Tick(ctx)
		}
	}
	// Run two full epochs pre-churn; the closed epoch 2 must count all 16.
	for net.Now() < 2*aggChaosWindow+aggChaosTick {
		tick()
	}
	for i := 0; i < initial; i++ {
		fr, ok := nodes[i].Frozen()
		if !ok || fr.Epoch != 2 {
			t.Fatalf("node %s: no frozen epoch-2 estimate (have %+v, ok=%v)", addrs[i], fr, ok)
		}
		if !fr.Defined {
			t.Fatalf("node %s: epoch-2 estimate undefined", addrs[i])
		}
		if rel := math.Abs(fr.Estimate-initial) / initial; rel > 0.01 {
			t.Fatalf("node %s: pre-churn count %.3f, want %d within 1%%", addrs[i], fr.Estimate, initial)
		}
	}

	// Churn in the middle of epoch 3's window: crash the last four original
	// nodes, join two new ones, and let "membership" see both changes.
	if now := net.Now(); now <= 2*aggChaosWindow || now >= 3*aggChaosWindow {
		t.Fatalf("churn point %v not inside epoch 3's window", now)
	}
	for i := initial - crashes; i < initial; i++ {
		net.Crash(addrs[i])
		down[addrs[i]] = true
	}
	for i := initial; i < initial+joins; i++ {
		nodes = append(nodes, addAggNode(t, net, peers, addrs[i], false, seed*6151+int64(i)))
	}
	peers.addrs = append(append([]string(nil), addrs[:initial-crashes]...), addrs[initial:]...)
	const alive = initial - crashes + joins

	// Joiners defer their contribution to epoch 4, the first boundary after
	// they exist.
	for i := initial; i < initial+joins; i++ {
		nodes[i].Tick(ctx)
		if got := nodes[i].Contributed(); got != 0 {
			t.Fatalf("joiner %s contributed %g mid-window, want deferral to the next boundary", addrs[i], got)
		}
	}

	// Epoch 3 is torn by construction (its window saw both cohorts); epoch 4
	// is the first full post-churn epoch. Run to its close — the tick at
	// t=2.0s rolls every live node into epoch 5 and freezes 4 — and the
	// frozen estimate must already track the new true N on every survivor
	// and joiner: re-tracking within one epoch of the churn event.
	checkFrozen := func(epoch uint64) {
		t.Helper()
		for i, node := range nodes {
			if down[addrs[i]] {
				continue
			}
			if e := node.MassError(); e != 0 {
				t.Fatalf("node %s mass error %g under churn, want exactly 0", addrs[i], e)
			}
			fr, ok := node.Frozen()
			if !ok || fr.Epoch != epoch {
				t.Fatalf("node %s: frozen epoch %d, want %d (%+v ok=%v)", addrs[i], fr.Epoch, epoch, fr, ok)
			}
			if !fr.Defined {
				t.Fatalf("node %s: epoch-%d estimate undefined", addrs[i], epoch)
			}
			if rel := math.Abs(fr.Estimate-alive) / alive; rel > 0.01 {
				t.Fatalf("node %s: post-churn count %.3f, want %d within 1%% (frozen epoch %d)",
					addrs[i], fr.Estimate, alive, epoch)
			}
		}
	}
	for net.Now() < 4*aggChaosWindow {
		tick()
	}
	checkFrozen(4)
	// And the tracking holds, not just the first recovery epoch.
	for net.Now() < 5*aggChaosWindow {
		tick()
	}
	checkFrozen(5)

	// Exact accounting. No fault table is installed and crashed nodes never
	// tick, so every accepted send came from a live node's exchange: network
	// sends must equal the sum of per-node share and ack sends, and after a
	// drain every sent message was either delivered or dropped on a crashed
	// recipient. Joins add nothing here — sends to a not-yet-joined address
	// fail synchronously and are not counted as network sends.
	net.Run()
	var sharesSent, acksSent int64
	for _, node := range nodes {
		st := node.SimStats()
		sharesSent += st.SharesSent
		acksSent += st.AcksSent
	}
	st := net.Stats()
	if st.Sent != sharesSent+acksSent {
		t.Errorf("network sent %d, nodes sent %d shares + %d acks = %d",
			st.Sent, sharesSent, acksSent, sharesSent+acksSent)
	}
	if st.Sent != st.Delivered+st.Dropped {
		t.Errorf("sent %d != delivered %d + dropped %d after drain", st.Sent, st.Delivered, st.Dropped)
	}
	if st.FaultRefused != 0 || st.FaultDropped != 0 {
		t.Errorf("no fault table installed but fault counters read refused=%d dropped=%d",
			st.FaultRefused, st.FaultDropped)
	}
	if st.Dropped == 0 {
		t.Error("churn run dropped nothing — crashes did not bite")
	}
}

// TestAggregateChaosSustainedLinkLoss runs the windowed exchange under 10%
// fault-table link loss for four full epochs. Loss delays convergence but
// may not destroy mass: every node's conservation residual stays exactly
// zero at every tick, every closed epoch still tracks N, and at the end the
// network's fault counters and the fault table's own totals agree send for
// send.
func TestAggregateChaosSustainedLinkLoss(t *testing.T) {
	const (
		seed     = 93
		n        = 12
		lossRate = 0.10
	)
	net := simnet.New(simnet.DefaultConfig(seed))
	tbl := faults.NewTable()
	tbl.SetLoss(lossRate)
	net.SetFaults(tbl)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = consAddr(i)
	}
	peers := gossip.NewStaticPeers(addrs)
	nodes := make([]*aggregate.SimNode, n)
	for i := range addrs {
		nodes[i] = addAggNode(t, net, peers, addrs[i], i == 0, seed*9377+int64(i))
	}
	ctx := context.Background()

	for net.Now() < 5*aggChaosWindow {
		net.RunFor(aggChaosTick)
		for _, node := range nodes {
			node.Tick(ctx)
		}
		// The loss-tolerance contract, checked at every observable instant:
		// lost shares sit in the outstanding ledger until acked or retired,
		// never in the residual.
		for i, node := range nodes {
			if e := node.MassError(); e != 0 {
				t.Fatalf("t=%v node %s mass error %g under %d%% loss, want exactly 0\nstats=%+v",
					net.Now(), addrs[i], e, int(lossRate*100), node.SimStats())
			}
		}
	}

	// The final tick (t=2.5s) rolled every node into epoch 6, freezing epoch
	// 5: four full epochs ran lossy, and despite the loss every node's
	// closing estimate tracks the true count.
	var retries, recovered, duplicates int64
	for i, node := range nodes {
		fr, ok := node.Frozen()
		if !ok || fr.Epoch != 5 {
			t.Fatalf("node %s: frozen epoch %d want 5 (ok=%v)", addrs[i], fr.Epoch, ok)
		}
		if !fr.Defined {
			t.Fatalf("node %s: epoch-4 estimate undefined under loss", addrs[i])
		}
		if rel := math.Abs(fr.Estimate-n) / n; rel > 0.01 {
			t.Fatalf("node %s: lossy-epoch count %.3f, want %d within 1%%", addrs[i], fr.Estimate, n)
		}
		st := node.SimStats()
		retries += st.Retries
		recovered += st.Recovered
		duplicates += st.Duplicates
	}
	// The run must actually have exercised the loss machinery: drops
	// occurred, retries repaired them, and redeliveries were deduped.
	if retries == 0 || duplicates == 0 {
		t.Errorf("loss run too quiet: retries=%d duplicates=%d", retries, duplicates)
	}
	// Loss rules drop silently — first sends never fail synchronously, so
	// mid-epoch recovery must never have fired.
	if recovered != 0 {
		t.Errorf("recovered %d shares under silent loss — recovery requires a synchronous refusal", recovered)
	}

	// Exact fault↔metric accounting after a full drain: the table's loss
	// draws are the network's fault drops, loss is the only drop source, and
	// nothing was refused.
	net.Run()
	st := net.Stats()
	tot := tbl.Totals()
	if st.FaultDropped != tot.Lost {
		t.Errorf("network fault-dropped %d, fault table lost %d", st.FaultDropped, tot.Lost)
	}
	if tot.Refused != 0 || tot.Dropped != 0 || st.FaultRefused != 0 {
		t.Errorf("loss-only table shows refused=%d dropped=%d (net refused=%d)",
			tot.Refused, tot.Dropped, st.FaultRefused)
	}
	if st.Dropped != st.FaultDropped {
		t.Errorf("dropped %d != fault-dropped %d: something besides the table dropped traffic",
			st.Dropped, st.FaultDropped)
	}
	if st.Sent != st.Delivered+st.Dropped {
		t.Errorf("sent %d != delivered %d + dropped %d after drain", st.Sent, st.Delivered, st.Dropped)
	}
	if tot.Lost == 0 {
		t.Error("10%% loss table never fired")
	}
}
